package multicore

import (
	"nodecap/internal/cache"
	"nodecap/internal/counters"
	"nodecap/internal/cpu"
	"nodecap/internal/simtime"
	"nodecap/internal/tlb"
)

// CoreHandle is the operation API one shard drives — the multi-core
// analogue of the machine package's Compute/Load/Store surface. Each
// handle owns a core's private hierarchy levels and local clock.
type CoreHandle struct {
	m  *Machine
	id int

	core *cpu.Core
	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *cache.Cache
	itlb *tlb.TLB
	dtlb *tlb.TLB

	clock simtime.Duration
	done  bool

	ifetchDown int
	fetchSeq   uint64
	specAcc    float64

	accBusy, accStall, accIdle simtime.Duration
}

func (m *Machine) newCoreHandle(id int) *CoreHandle {
	h := m.cfg.Base.Hierarchy
	c := &CoreHandle{
		m:          m,
		id:         id,
		core:       cpu.MustCore(id, m.cfg.Base.PStates, m.cfg.Base.CStates),
		l1i:        cache.New(h.L1I),
		l1d:        cache.New(h.L1D),
		l2:         cache.New(h.L2),
		itlb:       tlb.New(h.ITLB),
		dtlb:       tlb.New(h.DTLB),
		ifetchDown: m.cfg.Base.IFetchEvery,
		fetchSeq:   (m.cfg.Base.Seed + uint64(id)*7919) * 1021,
	}
	// Stagger start phases slightly so cores do not step in lockstep.
	c.clock = simtime.Duration(id) * 137 * simtime.Nanosecond
	return c
}

// ID reports the core number.
func (c *CoreHandle) ID() int { return c.id }

// Now reports this core's local clock.
func (c *CoreHandle) Now() simtime.Duration { return c.clock }

func (c *CoreHandle) freq() int { return c.core.PState().FreqMHz }

func (c *CoreHandle) advanceBusy(d simtime.Duration) {
	c.clock += d
	c.core.AccountBusy(d)
	c.accBusy += d
}

func (c *CoreHandle) advanceStall(d simtime.Duration) {
	c.clock += d
	c.core.AccountStall(d)
	c.accStall += d
}

// AdvanceIdle moves this core's clock forward without busy or stall
// accounting — the core is parked in a C-state waiting for outside
// work (an open-loop serving shard between request arrivals). Idle
// time dilutes neither the frequency average nor the activity
// fraction, and the power model charges it no dynamic power or active
// leakage.
func (c *CoreHandle) AdvanceIdle(d simtime.Duration) {
	if d > 0 {
		c.clock += d
		c.accIdle += d
	}
}

// Compute executes instrs committed instructions over cycles core
// cycles on this core.
func (c *CoreHandle) Compute(cycles int64, instrs uint64) {
	if cycles <= 0 {
		cycles = 1
	}
	c.advanceBusy(simtime.Cycles(cycles, c.freq()))
	c.core.InstructionsCommitted += instrs
	c.core.InstructionsExecuted += instrs
	c.fetchForInstrs(instrs)
}

// Load performs one committed read at addr.
func (c *CoreHandle) Load(addr uint64) { c.memop(addr, false) }

// Store performs one committed write at addr.
func (c *CoreHandle) Store(addr uint64) { c.memop(addr, true) }

func (c *CoreHandle) memop(addr uint64, write bool) {
	c.fetchForInstrs(1)

	var cycles int64
	if !c.dtlb.Lookup(addr) {
		cycles += int64(c.m.cfg.Base.Hierarchy.DTLB.MissPenaltyCycles)
	}
	h := c.m.cfg.Base.Hierarchy
	cycles += int64(h.L1D.HitLatencyCycles)
	r1 := c.l1d.Access(addr, write)
	if r1.WritebackValid {
		// Private dirty evictions land in the shared L3 (inclusive-ish
		// behaviour); if absent there they go to memory.
		if !c.m.l3.Update(r1.WritebackAddr) {
			c.m.dramWrite(c.clock, r1.WritebackAddr)
		}
	}
	if r1.Hit {
		c.commitMemop(write, simtime.Cycles(cycles, c.freq()), true)
		c.speculate(addr)
		return
	}

	cycles += int64(h.L2.HitLatencyCycles)
	r2 := c.l2.Access(addr, write)
	if r2.WritebackValid {
		if !c.m.l3.Update(r2.WritebackAddr) {
			c.m.dramWrite(c.clock, r2.WritebackAddr)
		}
	}
	if r2.Hit {
		c.commitMemop(write, simtime.Cycles(cycles, c.freq()), true)
		c.speculate(addr)
		return
	}

	cycles += int64(h.L3.HitLatencyCycles)
	r3 := c.m.l3.Access(addr, write)
	if r3.WritebackValid {
		c.m.dramWrite(c.clock, r3.WritebackAddr)
	}
	if r3.Hit {
		c.commitMemop(write, simtime.Cycles(cycles, c.freq()), true)
		c.speculate(addr)
		return
	}

	lat := simtime.Cycles(cycles, c.freq()) + c.m.dramRead(c.clock+simtime.Cycles(cycles, c.freq()), addr)
	c.commitMemop(write, lat, false)
	c.speculate(addr)
}

// commitMemop finishes a memory operation's accounting.
func (c *CoreHandle) commitMemop(write bool, lat simtime.Duration, busy bool) {
	if busy {
		c.advanceBusy(lat)
	} else {
		c.advanceStall(lat)
	}
	c.core.InstructionsCommitted++
	c.core.InstructionsExecuted++
	if write {
		c.core.StoresExecuted++
	} else {
		c.core.LoadsExecuted++
	}
}

// speculate issues the frequency-scaled speculative next-line access.
func (c *CoreHandle) speculate(addr uint64) {
	c.specAcc += float64(c.freq()) / float64(c.m.cfg.Base.PStates.Fastest().FreqMHz) /
		float64(c.m.cfg.Base.SpecEvery)
	if c.specAcc >= 1 {
		c.specAcc--
		spec := addr + uint64(c.m.cfg.Base.Hierarchy.L1D.LineBytes)
		if !c.l1d.Access(spec, false).Hit {
			if !c.l2.Access(spec, false).Hit {
				c.m.l3.Access(spec, false)
			}
		}
		c.core.InstructionsExecuted++
		c.core.LoadsExecuted++
	}
}

// fetchForInstrs synthesizes instruction fetches, as the single-core
// machine does; the code region is shared but each core fetches
// through its own L1I/ITLB.
func (c *CoreHandle) fetchForInstrs(n uint64) {
	c.ifetchDown -= int(n)
	for c.ifetchDown <= 0 {
		c.ifetchDown += c.m.cfg.Base.IFetchEvery
		addr := c.nextFetchAddr()
		var cycles int64
		if !c.itlb.Lookup(addr) {
			cycles += int64(c.m.cfg.Base.Hierarchy.ITLB.MissPenaltyCycles)
		}
		hit := c.l1i.Access(addr, false).Hit
		if !hit {
			cycles += int64(c.m.cfg.Base.Hierarchy.L2.HitLatencyCycles)
			if !c.l2.Access(addr, false).Hit {
				cycles += int64(c.m.cfg.Base.Hierarchy.L3.HitLatencyCycles)
				c.m.l3.Access(addr, false)
			}
		}
		if cycles > 0 {
			c.advanceStall(simtime.Cycles(cycles, c.freq()))
		}
	}
}

const (
	mcCodeBase     = 16 << 20
	mcFarCodeBase  = mcCodeBase + (4096 << 12)
	mcFarCodePages = 512
)

func (c *CoreHandle) nextFetchAddr() uint64 {
	c.fetchSeq++
	seq := c.fetchSeq
	if seq%499 == 0 {
		h := seq * 0x9E3779B97F4A7C15
		return mcFarCodeBase + ((h >> 33) % mcFarCodePages * 4096)
	}
	pages := c.m.codePages
	hot := 4
	if pages < hot {
		hot = pages
	}
	var page uint64
	if seq%5 == 0 && pages > hot {
		page = (seq / 5) % uint64(pages)
	} else {
		page = seq % uint64(hot)
	}
	line := (seq * 13) % 64
	return mcCodeBase + page*4096 + line*64
}

// dramRead times a shared-channel read beginning at now, including
// queueing behind other cores' transfers.
func (m *Machine) dramRead(now simtime.Duration, addr uint64) simtime.Duration {
	start := now
	if m.ramBusyUntil > start {
		start = m.ramBusyUntil
	}
	lat := m.ram.Access(start, addr, false)
	// The channel is occupied for the data transfer (64 B at ~6.4 GB/s
	// effective: ~10 ns), not the full access latency.
	m.ramBusyUntil = start + lat - simtime.FromNanos(40)
	if m.ramBusyUntil < start {
		m.ramBusyUntil = start + simtime.FromNanos(10)
	}
	m.dramBytes += 64
	return (start - now) + lat
}

// dramWrite posts a write-back (off the critical path).
func (m *Machine) dramWrite(now simtime.Duration, addr uint64) {
	m.ram.Access(now, addr, true)
	m.dramBytes += 64
}

// coreSnapshot reads one core's private counters.
func (m *Machine) coreSnapshot(c *CoreHandle) counters.Snapshot {
	return counters.Snapshot{
		L1DMisses:             c.l1d.Stats().Misses,
		L1IMisses:             c.l1i.Stats().Misses,
		L2Misses:              c.l2.Stats().Misses,
		DTLBMisses:            c.dtlb.Stats().Misses,
		ITLBMisses:            c.itlb.Stats().Misses,
		InstructionsCommitted: c.core.InstructionsCommitted,
		InstructionsIssued:    c.core.InstructionsExecuted,
		Loads:                 c.core.LoadsExecuted,
		Stores:                c.core.StoresExecuted,
		Cycles:                c.core.Cycles,
	}
}
