package multicore

import (
	"nodecap/internal/dram"
	"nodecap/internal/power"
	"nodecap/internal/simtime"
)

// mcPlant adapts the multi-core machine to bmc.Plant. DVFS and gating
// are package-wide.
type mcPlant Machine

func (p *mcPlant) m() *Machine { return (*Machine)(p) }

func (p *mcPlant) PowerWatts() float64 { return p.m().curPower }

func (p *mcPlant) PStateIndex() int { return p.m().cores[0].core.PStateIndex() }
func (p *mcPlant) NumPStates() int  { return len(p.m().cfg.Base.PStates) }

// SetPState transitions every core (one package PLL).
func (p *mcPlant) SetPState(i int) {
	for _, c := range p.m().cores {
		stall := c.core.SetPState(i)
		if stall > 0 && !c.done {
			c.advanceStall(stall)
		}
	}
}

func (p *mcPlant) GatingLevel() int    { return p.m().gatingLevel }
func (p *mcPlant) MaxGatingLevel() int { return len(p.m().cfg.Base.Ladder) - 1 }

// SetGatingLevel applies the ladder level to the shared L3/DRAM and to
// every core's private structures (batch cores keep the deeper of this
// level and the batch-only level).
func (p *mcPlant) SetGatingLevel(l int) {
	m := p.m()
	if l < 0 {
		l = 0
	}
	if max := len(m.cfg.Base.Ladder) - 1; l > max {
		l = max
	}
	if l == m.gatingLevel {
		return
	}
	m.gatingLevel = l
	g := m.cfg.Base.Ladder[l]
	h := m.cfg.Base.Hierarchy

	or := func(v, full int) int {
		if v <= 0 {
			return full
		}
		return v
	}
	now := m.maxClock()
	for _, addr := range m.l3.SetActiveWays(or(g.L3Ways, h.L3.Ways)) {
		m.dramWrite(now, addr)
	}
	gate := g.DRAMGate
	if gate.Period == 0 {
		gate = dram.Ungated
	}
	if g.DRAMDuty > 0 {
		gate.OnFraction = g.DRAMDuty
	}
	m.ram.SetGate(gate)

	for _, c := range m.cores {
		m.applyPrivateGating(c, m.effectiveCoreGating(c.id), now)
	}
}

// effectiveCoreGating resolves the ladder level governing core id's
// private structures.
func (m *Machine) effectiveCoreGating(id int) int {
	if m.isBatchCore(id) && m.batchGatingLevel > m.gatingLevel {
		return m.batchGatingLevel
	}
	return m.gatingLevel
}

// applyPrivateGating reconfigures one core's private caches and TLBs to
// ladder level l, posting dirty write-backs at time now and charging
// the core the reconfiguration stall.
func (m *Machine) applyPrivateGating(c *CoreHandle, l int, now simtime.Duration) {
	g := m.cfg.Base.Ladder[l]
	h := m.cfg.Base.Hierarchy
	or := func(v, full int) int {
		if v <= 0 {
			return full
		}
		return v
	}
	for _, addr := range c.l1d.SetActiveWays(or(g.L1Ways, h.L1D.Ways)) {
		m.dramWrite(now, addr)
	}
	c.l1i.SetActiveWays(or(g.L1Ways, h.L1I.Ways))
	for _, addr := range c.l2.SetActiveWays(or(g.L2Ways, h.L2.Ways)) {
		m.dramWrite(now, addr)
	}
	c.itlb.SetActiveWays(or(g.ITLBWays, h.ITLB.Ways))
	c.dtlb.SetActiveWays(or(g.DTLBWays, h.DTLB.Ways))
	if !c.done {
		c.advanceStall(5 * simtime.Microsecond)
	}
}

// --- priority plant ---------------------------------------------------

// mcPriorityPlant extends mcPlant with the two-tier DVFS surface. It is
// only installed when the machine is configured with a serving tier, so
// the BMC's PriorityPlant type assertion selects the escalation path.
type mcPriorityPlant struct{ *mcPlant }

// setTierPState transitions cores [lo, hi) to P-state i.
func (p *mcPriorityPlant) setTierPState(lo, hi, i int) {
	for _, c := range p.m().cores[lo:hi] {
		stall := c.core.SetPState(i)
		if stall > 0 && !c.done {
			c.advanceStall(stall)
		}
	}
}

func (p *mcPriorityPlant) ServingPState() int {
	return p.m().cores[0].core.PStateIndex()
}

func (p *mcPriorityPlant) SetServingPState(i int) {
	p.setTierPState(0, p.m().cfg.HighPriorityCores, i)
}

func (p *mcPriorityPlant) BatchPState() int {
	m := p.m()
	return m.cores[m.cfg.HighPriorityCores].core.PStateIndex()
}

func (p *mcPriorityPlant) SetBatchPState(i int) {
	m := p.m()
	p.setTierPState(m.cfg.HighPriorityCores, m.cfg.Cores, i)
}

func (p *mcPriorityPlant) ServingFloorPState() int {
	return p.m().cfg.ServingFloorPState
}

func (p *mcPriorityPlant) BatchGatingLevel() int { return p.m().batchGatingLevel }

func (p *mcPriorityPlant) MaxBatchGatingLevel() int {
	return len(p.m().cfg.Base.Ladder) - 1
}

// SetBatchGatingLevel gates only the batch cores' private structures;
// the shared L3/DRAM stay on the package-wide ladder.
func (p *mcPriorityPlant) SetBatchGatingLevel(l int) {
	m := p.m()
	if l < 0 {
		l = 0
	}
	if max := len(m.cfg.Base.Ladder) - 1; l > max {
		l = max
	}
	if l == m.batchGatingLevel {
		return
	}
	m.batchGatingLevel = l
	now := m.maxClock()
	for _, c := range m.cores[m.cfg.HighPriorityCores:] {
		m.applyPrivateGating(c, m.effectiveCoreGating(c.id), now)
	}
}

// --- periodic events --------------------------------------------------

func (m *Machine) scheduleMeter(at simtime.Duration) {
	m.events.Schedule(at, func(now simtime.Duration) {
		m.updatePower(now)
		m.meter.Record(now, m.curPower)
		m.scheduleMeter(now + m.cfg.Base.MeterInterval)
	})
}

func (m *Machine) scheduleBMC(at simtime.Duration) {
	m.events.Schedule(at, func(now simtime.Duration) {
		m.updatePower(now)
		m.ctrl.Tick()
		m.scheduleBMC(now + m.cfg.Base.BMC.ControlPeriod)
	})
}

func (m *Machine) runDueEvents(horizon simtime.Duration) {
	if !m.hasEvent || horizon < m.nextEvent {
		return
	}
	m.events.RunUntil(horizon)
	m.refreshNextEvent()
}

func (m *Machine) refreshNextEvent() {
	m.nextEvent, m.hasEvent = m.events.PeekTime()
}

// updatePower recomputes node power from all cores' activity since the
// last update. In priority mode the two DVFS tiers are priced
// separately through NodeWattsTiered.
func (m *Machine) updatePower(now simtime.Duration) {
	dt := now - m.lastPower
	if dt <= 0 {
		return
	}
	hp := m.cfg.HighPriorityCores
	var busy, stall, idle [2]simtime.Duration // [serving, batch]; all in [0] uniform
	var active [2]int
	for _, c := range m.cores {
		tier := 0
		if m.isBatchCore(c.id) {
			tier = 1
		}
		busy[tier] += c.accBusy
		stall[tier] += c.accStall
		idle[tier] += c.accIdle
		c.accBusy, c.accStall, c.accIdle = 0, 0, 0
		if m.running && !c.done {
			active[tier]++
		}
	}
	tierActivity := func(t int) float64 {
		if busy[t]+stall[t] > 0 {
			return float64(busy[t]) / float64(busy[t]+stall[t])
		}
		return 0
	}
	// tierDuty is the C0 fraction of the tier's wall time: cores parked
	// between open-loop arrivals burn neither dynamic power nor active
	// leakage. A tier with no accounted time at all is taken as fully
	// in C0 (the pre-run steady state).
	tierDuty := func(t int) float64 {
		c0 := busy[t] + stall[t]
		if c0+idle[t] <= 0 {
			return 1
		}
		return float64(c0) / float64(c0+idle[t])
	}
	memUtil := float64(m.dramBytes) / (dt.Seconds() * m.cfg.Base.Hierarchy.PeakBytesPerSec * float64(m.cfg.Cores))
	if memUtil > 1 {
		memUtil = 1
	}
	m.dramBytes = 0
	m.lastPower = now

	g := m.cfg.Base.Ladder[m.gatingLevel]
	h := m.cfg.Base.Hierarchy
	or := func(v, full int) int {
		if v <= 0 {
			return full
		}
		return v
	}
	// Sum private-structure gating per core: batch cores may sit deeper
	// on the ladder than the package level.
	var l2Gated, l1Gated int
	for _, c := range m.cores {
		cg := m.cfg.Base.Ladder[m.effectiveCoreGating(c.id)]
		l2Gated += h.L2.Ways - or(cg.L2Ways, h.L2.Ways)
		l1Gated += 2 * (h.L1D.Ways - or(cg.L1Ways, h.L1D.Ways))
	}
	duty := m.ram.Gate().OnFraction
	if scale := m.ram.Gate().LatencyScale; scale > 1 {
		duty *= 0.6 + 0.4/scale
	}
	c0 := m.cores[0]
	st := power.NodeState{
		FreqMHz:     c0.core.PState().FreqMHz,
		VoltageMV:   c0.core.PState().VoltageMV,
		ActiveCores: active[0] + active[1],
		Activity:    tierActivity(0),
		MemUtil:     memUtil,
		L3WaysGated: h.L3.Ways - or(g.L3Ways, h.L3.Ways),
		L2WaysGated: l2Gated,
		L1WaysGated: l1Gated,
		DRAMDuty:    duty,
	}
	// Both modes price cores through the tiered model so the fair-share
	// and priority studies share one power accounting: a uniform
	// machine is a single tier (identical to NodeWatts when duty = 1).
	tiers := []power.TierState{{
		FreqMHz:     c0.core.PState().FreqMHz,
		VoltageMV:   c0.core.PState().VoltageMV,
		ActiveCores: active[0],
		Activity:    tierActivity(0),
		DutyCycle:   tierDuty(0),
	}}
	if m.priorityMode() {
		cb := m.cores[hp]
		tiers = append(tiers, power.TierState{
			FreqMHz:     cb.core.PState().FreqMHz,
			VoltageMV:   cb.core.PState().VoltageMV,
			ActiveCores: active[1],
			Activity:    tierActivity(1),
			DutyCycle:   tierDuty(1),
		})
	}
	m.curPower = m.cfg.Base.Power.NodeWattsTiered(st, tiers)
}
