package multicore

import (
	"nodecap/internal/dram"
	"nodecap/internal/power"
	"nodecap/internal/simtime"
)

// mcPlant adapts the multi-core machine to bmc.Plant. DVFS and gating
// are package-wide.
type mcPlant Machine

func (p *mcPlant) m() *Machine { return (*Machine)(p) }

func (p *mcPlant) PowerWatts() float64 { return p.m().curPower }

func (p *mcPlant) PStateIndex() int { return p.m().cores[0].core.PStateIndex() }
func (p *mcPlant) NumPStates() int  { return len(p.m().cfg.Base.PStates) }

// SetPState transitions every core (one package PLL).
func (p *mcPlant) SetPState(i int) {
	for _, c := range p.m().cores {
		stall := c.core.SetPState(i)
		if stall > 0 && !c.done {
			c.advanceStall(stall)
		}
	}
}

func (p *mcPlant) GatingLevel() int    { return p.m().gatingLevel }
func (p *mcPlant) MaxGatingLevel() int { return len(p.m().cfg.Base.Ladder) - 1 }

// SetGatingLevel applies the ladder level to the shared L3/DRAM and to
// every core's private structures.
func (p *mcPlant) SetGatingLevel(l int) {
	m := p.m()
	if l < 0 {
		l = 0
	}
	if max := len(m.cfg.Base.Ladder) - 1; l > max {
		l = max
	}
	if l == m.gatingLevel {
		return
	}
	m.gatingLevel = l
	g := m.cfg.Base.Ladder[l]
	h := m.cfg.Base.Hierarchy

	or := func(v, full int) int {
		if v <= 0 {
			return full
		}
		return v
	}
	now := m.maxClock()
	for _, addr := range m.l3.SetActiveWays(or(g.L3Ways, h.L3.Ways)) {
		m.dramWrite(now, addr)
	}
	gate := g.DRAMGate
	if gate.Period == 0 {
		gate = dram.Ungated
	}
	if g.DRAMDuty > 0 {
		gate.OnFraction = g.DRAMDuty
	}
	m.ram.SetGate(gate)

	for _, c := range m.cores {
		for _, addr := range c.l1d.SetActiveWays(or(g.L1Ways, h.L1D.Ways)) {
			m.dramWrite(now, addr)
		}
		c.l1i.SetActiveWays(or(g.L1Ways, h.L1I.Ways))
		for _, addr := range c.l2.SetActiveWays(or(g.L2Ways, h.L2.Ways)) {
			m.dramWrite(now, addr)
		}
		c.itlb.SetActiveWays(or(g.ITLBWays, h.ITLB.Ways))
		c.dtlb.SetActiveWays(or(g.DTLBWays, h.DTLB.Ways))
		if !c.done {
			c.advanceStall(5 * simtime.Microsecond)
		}
	}
}

// --- periodic events --------------------------------------------------

func (m *Machine) scheduleMeter(at simtime.Duration) {
	m.events.Schedule(at, func(now simtime.Duration) {
		m.updatePower(now)
		m.meter.Record(now, m.curPower)
		m.scheduleMeter(now + m.cfg.Base.MeterInterval)
	})
}

func (m *Machine) scheduleBMC(at simtime.Duration) {
	m.events.Schedule(at, func(now simtime.Duration) {
		m.updatePower(now)
		m.ctrl.Tick()
		m.scheduleBMC(now + m.cfg.Base.BMC.ControlPeriod)
	})
}

func (m *Machine) runDueEvents(horizon simtime.Duration) {
	if !m.hasEvent || horizon < m.nextEvent {
		return
	}
	m.events.RunUntil(horizon)
	m.refreshNextEvent()
}

func (m *Machine) refreshNextEvent() {
	m.nextEvent, m.hasEvent = m.events.PeekTime()
}

// updatePower recomputes node power from all cores' activity since the
// last update.
func (m *Machine) updatePower(now simtime.Duration) {
	dt := now - m.lastPower
	if dt <= 0 {
		return
	}
	var busy, stall simtime.Duration
	active := 0
	for _, c := range m.cores {
		busy += c.accBusy
		stall += c.accStall
		c.accBusy, c.accStall = 0, 0
		if m.running && !c.done {
			active++
		}
	}
	activity := 0.0
	if busy+stall > 0 {
		activity = float64(busy) / float64(busy+stall)
	}
	memUtil := float64(m.dramBytes) / (dt.Seconds() * m.cfg.Base.Hierarchy.PeakBytesPerSec * float64(m.cfg.Cores))
	if memUtil > 1 {
		memUtil = 1
	}
	m.dramBytes = 0
	m.lastPower = now

	g := m.cfg.Base.Ladder[m.gatingLevel]
	h := m.cfg.Base.Hierarchy
	or := func(v, full int) int {
		if v <= 0 {
			return full
		}
		return v
	}
	duty := m.ram.Gate().OnFraction
	if scale := m.ram.Gate().LatencyScale; scale > 1 {
		duty *= 0.6 + 0.4/scale
	}
	c0 := m.cores[0]
	st := power.NodeState{
		FreqMHz:     c0.core.PState().FreqMHz,
		VoltageMV:   c0.core.PState().VoltageMV,
		ActiveCores: active,
		Activity:    activity,
		MemUtil:     memUtil,
		L3WaysGated: h.L3.Ways - or(g.L3Ways, h.L3.Ways),
		L2WaysGated: (h.L2.Ways - or(g.L2Ways, h.L2.Ways)) * m.cfg.Cores,
		L1WaysGated: 2 * (h.L1D.Ways - or(g.L1Ways, h.L1D.Ways)) * m.cfg.Cores,
		DRAMDuty:    duty,
	}
	m.curPower = m.cfg.Base.Power.NodeWatts(st)
}
