package multicore

import (
	"testing"

	"nodecap/internal/machine"
	"nodecap/internal/simtime"
)

// prioShard burns compute; the simplest shard that keeps a core busy.
type prioShard struct{ left int }

func (s *prioShard) Step(c *CoreHandle) bool {
	if s.left <= 0 {
		return false
	}
	s.left--
	c.Compute(200, 160)
	c.Load(uint64(1<<30) + uint64(s.left%1024)*64)
	return true
}

type prioWorkload struct{ steps int }

func (w *prioWorkload) Name() string   { return "prio-burn" }
func (w *prioWorkload) CodePages() int { return 8 }
func (w *prioWorkload) Shards(cores int, alloc func(int) uint64) []Shard {
	out := make([]Shard, cores)
	for i := range out {
		out[i] = &prioShard{left: w.steps}
	}
	return out
}

// TestPriorityMachineStealsBatchFirst caps a 1+1 machine at a level
// the batch tier can absorb and checks the serving tier keeps its
// frequency while the batch tier pays.
func TestPriorityMachineStealsBatchFirst(t *testing.T) {
	cfg := Config{
		Cores:              2,
		HighPriorityCores:  1,
		ServingFloorPState: 2,
		Base:               machine.Romley(),
	}
	m := New(cfg)
	if err := m.SetPolicy(165); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	res := m.Run(&prioWorkload{steps: 30000})

	if res.ServingAvgFreqMHz == 0 || res.BatchAvgFreqMHz == 0 {
		t.Fatalf("priority run did not report per-tier frequencies: %+v", res)
	}
	if res.ServingAvgFreqMHz <= res.BatchAvgFreqMHz {
		t.Fatalf("serving tier (%.0f MHz) not faster than batch tier (%.0f MHz) under a 165 W cap",
			res.ServingAvgFreqMHz, res.BatchAvgFreqMHz)
	}
	st := m.BMC().Stats()
	if st.BatchSteals == 0 {
		t.Fatalf("no batch steals under a 165 W cap: %+v", st)
	}
	if st.FloorBreaks != 0 {
		t.Fatalf("feasible cap broke the serving floor: %+v", st)
	}
	// The serving tier must never have been held below its floor:
	// its busy-time-average frequency must beat the floor P-state's.
	floorMHz := float64(cfg.Base.PStates[cfg.ServingFloorPState].FreqMHz)
	if res.ServingAvgFreqMHz < floorMHz {
		t.Fatalf("serving average %.0f MHz below the %0.f MHz floor with zero floor breaks",
			res.ServingAvgFreqMHz, floorMHz)
	}
}

// TestUniformMachineHasNoTierSurface checks the fair-share machine is
// untouched by the priority extension: no per-tier result fields, no
// batch gating.
func TestUniformMachineHasNoTierSurface(t *testing.T) {
	m := New(Config{Cores: 2, Base: machine.Romley()})
	if err := m.SetPolicy(150); err == nil {
		// 150 W may or may not be infeasible for two busy cores; either
		// way the call must work. Nothing to assert on the error.
		_ = err
	}
	res := m.Run(&prioWorkload{steps: 10000})
	if res.ServingAvgFreqMHz != 0 || res.BatchAvgFreqMHz != 0 {
		t.Fatalf("uniform machine reported tier frequencies: %+v", res)
	}
	if m.BatchGatingLevel() != 0 {
		t.Fatalf("uniform machine engaged batch gating: %d", m.BatchGatingLevel())
	}
	st := m.BMC().Stats()
	if st.BatchSteals != 0 || st.FloorHolds != 0 || st.FloorBreaks != 0 {
		t.Fatalf("uniform machine recorded priority stats: %+v", st)
	}
}

// TestPriorityConfigValidation rejects impossible tier splits.
func TestPriorityConfigValidation(t *testing.T) {
	for _, bad := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HighPriorityCores=%d on 2 cores did not panic", bad)
				}
			}()
			New(Config{Cores: 2, HighPriorityCores: bad, Base: machine.Romley()})
		}()
	}
}

// TestAdvanceIdleAccountsNothing checks idle time moves the clock but
// neither busy nor stall books.
func TestAdvanceIdleAccountsNothing(t *testing.T) {
	m := New(Config{Cores: 1, Base: machine.Romley()})
	c := m.cores[0]
	before := c.clock
	c.AdvanceIdle(3 * simtime.Millisecond)
	if c.clock-before != 3*simtime.Millisecond {
		t.Fatalf("clock advanced %v, want 3ms", c.clock-before)
	}
	if c.accBusy != 0 || c.accStall != 0 {
		t.Fatalf("idle advance booked busy=%v stall=%v", c.accBusy, c.accStall)
	}
	if c.accIdle != 3*simtime.Millisecond {
		t.Fatalf("idle advance booked accIdle=%v, want 3ms", c.accIdle)
	}
	c.AdvanceIdle(-simtime.Millisecond)
	if c.clock-before != 3*simtime.Millisecond {
		t.Fatal("negative idle advance moved the clock")
	}
}
