package multicore

import (
	"testing"

	"nodecap/internal/machine"
	"nodecap/internal/simtime"
)

// spinWork is a trivially parallel compute shard set: each shard runs
// a fixed number of compute+L1 iterations.
type spinWork struct {
	iters int
	base  uint64
}

func (w *spinWork) Name() string   { return "spin" }
func (w *spinWork) CodePages() int { return 8 }
func (w *spinWork) Shards(cores int, alloc func(int) uint64) []Shard {
	w.base = alloc(1 << 20)
	out := make([]Shard, cores)
	for i := range out {
		out[i] = &spinShard{w: w, left: w.iters, off: uint64(i) * 4096}
	}
	return out
}

type spinShard struct {
	w    *spinWork
	left int
	off  uint64
	i    int
}

func (s *spinShard) Step(c *CoreHandle) bool {
	if s.left <= 0 {
		return false
	}
	s.left--
	s.i++
	c.Compute(30, 24)
	c.Load(s.w.base + s.off + uint64(s.i%64)*64)
	return s.left > 0
}

// streamWork shards stream disjoint halves of a > L3 buffer: DRAM
// channel contention limits their combined speedup.
type streamWork struct {
	bytes int
	base  uint64
}

func (w *streamWork) Name() string   { return "stream" }
func (w *streamWork) CodePages() int { return 8 }
func (w *streamWork) Shards(cores int, alloc func(int) uint64) []Shard {
	w.base = alloc(w.bytes)
	per := w.bytes / cores / 8
	out := make([]Shard, cores)
	for i := range out {
		out[i] = &streamShard{w: w, idx: i * per, end: (i + 1) * per}
	}
	return out
}

type streamShard struct {
	w        *streamWork
	idx, end int
}

func (s *streamShard) Step(c *CoreHandle) bool {
	if s.idx >= s.end {
		return false
	}
	for n := 0; n < 8 && s.idx < s.end; n++ {
		c.Load(s.w.base + uint64(s.idx)*8)
		c.Compute(4, 3)
		s.idx++
	}
	return s.idx < s.end
}

func run(t *testing.T, cores int, w Workload, capWatts float64) Result {
	t.Helper()
	m := New(DefaultConfig(cores))
	m.SetPolicy(capWatts)
	return m.Run(w)
}

func TestSingleCoreMatchesShape(t *testing.T) {
	r := run(t, 1, &spinWork{iters: 400000}, 0)
	if r.AvgPowerWatts < 140 || r.AvgPowerWatts > 158 {
		t.Errorf("1-core busy power = %.1f W", r.AvgPowerWatts)
	}
	if r.AvgFreqMHz != 2700 {
		t.Errorf("uncapped frequency = %.0f", r.AvgFreqMHz)
	}
}

func TestComputeBoundScalesNearLinearly(t *testing.T) {
	// Per-shard fixed work: wall time should stay ~constant as cores
	// grow (weak scaling) for compute-bound shards.
	one := run(t, 1, &spinWork{iters: 200000}, 0)
	four := run(t, 4, &spinWork{iters: 200000}, 0)
	ratio := four.ExecTime.Seconds() / one.ExecTime.Seconds()
	if ratio > 1.25 {
		t.Errorf("weak-scaling wall ratio 4c/1c = %.2f, want ~1.0", ratio)
	}
}

func TestMorePowerWithMoreCores(t *testing.T) {
	one := run(t, 1, &spinWork{iters: 150000}, 0)
	eight := run(t, 8, &spinWork{iters: 150000}, 0)
	if eight.AvgPowerWatts <= one.AvgPowerWatts+40 {
		t.Errorf("8-core power %.1f W not well above 1-core %.1f W",
			eight.AvgPowerWatts, one.AvgPowerWatts)
	}
}

func TestMemoryBoundContention(t *testing.T) {
	// Strong scaling of a fixed-size stream: the shared DRAM channel
	// caps speedup well below core count.
	total := 48 << 20
	one := run(t, 1, &streamWork{bytes: total}, 0)
	eight := run(t, 8, &streamWork{bytes: total}, 0)
	speedup := eight.SpeedupOver(one)
	if speedup < 1.2 {
		t.Errorf("8-core stream speedup = %.2f, want > 1.2", speedup)
	}
	if speedup > 6.5 {
		t.Errorf("8-core stream speedup = %.2f; DRAM contention should cap it below ~6.5", speedup)
	}
}

func TestCapThrottlesHarderWithMoreCores(t *testing.T) {
	// The same cap must cost multi-core runs more frequency: eight
	// busy cores draw far more than one, so a 260 W cap that leaves a
	// single core untouched forces deep DVFS on eight (eight busy
	// cores' leakage alone puts the floor near 240 W).
	one := run(t, 1, &spinWork{iters: 150000}, 260)
	eight := run(t, 8, &spinWork{iters: 150000}, 260)
	if one.AvgFreqMHz < 2650 {
		t.Errorf("1-core at 260 W cap throttled to %.0f MHz", one.AvgFreqMHz)
	}
	if eight.AvgFreqMHz > 2300 {
		t.Errorf("8-core at 260 W cap ran at %.0f MHz; expected deep throttling", eight.AvgFreqMHz)
	}
	if eight.AvgPowerWatts > 263 {
		t.Errorf("8-core capped power = %.1f W above cap", eight.AvgPowerWatts)
	}
}

func TestPackageDVFSAppliesToAllCores(t *testing.T) {
	m := New(DefaultConfig(4))
	p := (*mcPlant)(m)
	p.SetPState(10)
	for i, c := range m.cores {
		if c.core.PStateIndex() != 10 {
			t.Errorf("core %d P-state = %d", i, c.core.PStateIndex())
		}
	}
}

func TestGatingAppliesToSharedAndPrivate(t *testing.T) {
	m := New(DefaultConfig(2))
	p := (*mcPlant)(m)
	p.SetGatingLevel(5)
	if m.l3.ActiveWays() != 4 {
		t.Errorf("shared L3 ways = %d, want 4", m.l3.ActiveWays())
	}
	for i, c := range m.cores {
		if c.l2.ActiveWays() != 2 {
			t.Errorf("core %d L2 ways = %d, want 2", i, c.l2.ActiveWays())
		}
		if c.itlb.ActiveWays() != 1 {
			t.Errorf("core %d ITLB ways = %d", i, c.itlb.ActiveWays())
		}
	}
	p.SetGatingLevel(0)
	if m.l3.ActiveWays() != 20 {
		t.Errorf("L3 not ungated: %d ways", m.l3.ActiveWays())
	}
}

func TestSharedL3Visible(t *testing.T) {
	// A line loaded by core 0 must hit in L3 when core 1 misses its
	// private levels.
	m := New(DefaultConfig(2))
	w := &spinWork{iters: 1}
	_ = w
	c0, c1 := m.cores[0], m.cores[1]
	addr := uint64(1 << 31)
	c0.Load(addr)
	before := m.l3.Stats().Misses
	c1.Load(addr)
	if m.l3.Stats().Misses != before {
		t.Error("core 1 missed L3 on a line core 0 fetched")
	}
}

func TestDRAMChannelSerializes(t *testing.T) {
	m := New(DefaultConfig(2))
	// Two reads at the same instant: the second must queue.
	l1 := m.dramRead(0, 0)
	l2 := m.dramRead(0, 1<<26)
	if l2 <= l1/2 {
		t.Errorf("concurrent DRAM reads did not serialize: %v then %v", l1, l2)
	}
}

func TestRunPanicsOnShardMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on shard mismatch")
		}
	}()
	m := New(DefaultConfig(2))
	m.Run(badWorkload{})
}

type badWorkload struct{}

func (badWorkload) Name() string                         { return "bad" }
func (badWorkload) CodePages() int                       { return 1 }
func (badWorkload) Shards(int, func(int) uint64) []Shard { return nil }

func TestNewRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero cores")
		}
	}()
	New(Config{Cores: 0, Base: machine.Romley()})
}

func TestEventsAdvanceWithCores(t *testing.T) {
	m := New(DefaultConfig(2))
	m.SetPolicy(150)
	m.Run(&spinWork{iters: 100000})
	if m.BMC().Stats().Ticks == 0 {
		t.Error("no BMC ticks during multi-core run")
	}
	if m.Meter().Len() == 0 {
		t.Error("no meter samples during multi-core run")
	}
}

func TestResultCountersSummed(t *testing.T) {
	r := run(t, 4, &spinWork{iters: 50000}, 0)
	// 4 shards x 50000 iters x (24+1) committed instructions, plus
	// memops' own commits: at least 4*50000*25.
	if r.Counters.InstructionsCommitted < 4*50000*25 {
		t.Errorf("summed committed = %d", r.Counters.InstructionsCommitted)
	}
	if len(r.PerCoreBusy) != 4 {
		t.Errorf("PerCoreBusy = %d entries", len(r.PerCoreBusy))
	}
	var _ simtime.Duration = r.ExecTime
}
