// Package multicore implements the first item of the paper's future
// work: "explore how multi-core applications are affected by power
// capping".
//
// It simulates several cores executing shards of one parallel workload
// under a single node power cap. Each core owns private L1I/L1D/L2
// caches and TLBs; all cores share the 20 MB L3, and DRAM is a shared
// channel with occupancy, so co-running shards contend the way threads
// on the real part do. DVFS is package-level (one PLL for the socket,
// as on Sandy Bridge): the BMC's P-state decision applies to every
// core, and the gating ladder gates the shared structures once.
//
// The engine always advances the runnable core with the earliest local
// clock, so shared-resource timestamps (DRAM occupancy, control
// events) observe a globally monotonic time.
package multicore

import (
	"fmt"

	"nodecap/internal/bmc"
	"nodecap/internal/cache"
	"nodecap/internal/counters"
	"nodecap/internal/dram"
	"nodecap/internal/machine"
	"nodecap/internal/power"
	"nodecap/internal/sensors"
	"nodecap/internal/simtime"
)

// Config assembles a multi-core machine. Geometry and calibration are
// borrowed from the single-core machine configuration.
type Config struct {
	Cores int

	// HighPriorityCores, when in (0, Cores), splits the socket into a
	// latency-critical serving tier (cores [0, HighPriorityCores)) and
	// a batch tier (the rest) with independent DVFS — the SST-BF
	// deployment model. The BMC then escalates priority-aware: batch
	// P-state and batch private gating first, serving tier held at
	// ServingFloorPState until the cap is otherwise infeasible. Zero
	// (or Cores) keeps the uniform package-wide plant.
	HighPriorityCores int
	// ServingFloorPState is the slowest P-state index the serving tier
	// may be held at before the controller breaks the floor. Only
	// meaningful in priority mode.
	ServingFloorPState int

	Base machine.Config
}

// DefaultConfig returns the paper platform's socket with the given
// core count (the study's board has 2 x 8 cores; one socket is the
// capping domain here).
func DefaultConfig(cores int) Config {
	return Config{Cores: cores, Base: machine.Romley()}
}

// Shard is one core's portion of a parallel workload: a resumable
// iterator. Step issues a small batch of operations (an inner-loop
// iteration) against its core handle and reports whether more work
// remains. Steps on different shards interleave in simulated-time
// order.
type Shard interface {
	Step(c *CoreHandle) bool
}

// Workload is a parallel program: it splits itself into one shard per
// core and describes its instruction footprint.
type Workload interface {
	Name() string
	CodePages() int
	// Shards lays out shared data with alloc and returns exactly one
	// shard per core.
	Shards(cores int, alloc func(size int) uint64) []Shard
}

// Machine is the multi-core node.
type Machine struct {
	cfg Config

	cores  []*CoreHandle
	shards []Shard

	l3  *cache.Cache
	ram *dram.DRAM
	// ramBusyUntil serializes DRAM data transfers: a second in-flight
	// miss waits for the channel, the contention mechanism that limits
	// parallel speedup for memory-bound shards.
	ramBusyUntil simtime.Duration
	dramBytes    uint64

	meter *sensors.Meter
	ctrl  *bmc.BMC

	gatingLevel int
	// batchGatingLevel is the extra ladder position applied to batch
	// cores' private structures only (priority mode); a batch core's
	// effective private level is max(gatingLevel, batchGatingLevel).
	batchGatingLevel int
	running          bool
	codePages        int

	events    *simtime.EventQueue
	nextEvent simtime.Duration
	hasEvent  bool
	lastPower simtime.Duration
	curPower  float64

	allocNext uint64
}

// New builds a multi-core machine; invalid static configuration
// panics.
func New(cfg Config) *Machine {
	if cfg.Cores <= 0 {
		panic("multicore: non-positive core count")
	}
	if cfg.HighPriorityCores < 0 || cfg.HighPriorityCores > cfg.Cores {
		panic(fmt.Sprintf("multicore: %d high-priority cores outside [0, %d]",
			cfg.HighPriorityCores, cfg.Cores))
	}
	if err := cfg.Base.Power.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:       cfg,
		l3:        cache.New(cfg.Base.Hierarchy.L3),
		ram:       dram.New(cfg.Base.Hierarchy.DRAM),
		meter:     sensors.NewMeter(cfg.Base.MeterNoiseWatts),
		events:    simtime.NewEventQueue(),
		allocNext: 1 << 30,
		codePages: 16,
	}
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, m.newCoreHandle(i))
	}
	if m.priorityMode() {
		m.ctrl = bmc.New(cfg.Base.BMC, &mcPriorityPlant{(*mcPlant)(m)})
	} else {
		m.ctrl = bmc.New(cfg.Base.BMC, (*mcPlant)(m))
	}
	m.curPower = cfg.Base.Power.NodeWatts(power.NodeState{DRAMDuty: 1})
	m.scheduleMeter(cfg.Base.MeterInterval)
	m.scheduleBMC(cfg.Base.BMC.ControlPeriod)
	m.refreshNextEvent()
	return m
}

// Meter returns the wall power meter.
func (m *Machine) Meter() *sensors.Meter { return m.meter }

// BMC returns the capping controller.
func (m *Machine) BMC() *bmc.BMC { return m.ctrl }

// GatingLevel reports the sub-DVFS ladder position (shared
// structures; every core's private structures in uniform mode).
func (m *Machine) GatingLevel() int { return m.gatingLevel }

// BatchGatingLevel reports the batch-only private-structure ladder
// position; always 0 outside priority mode.
func (m *Machine) BatchGatingLevel() int { return m.batchGatingLevel }

// priorityMode reports whether the socket is split into serving and
// batch DVFS tiers.
func (m *Machine) priorityMode() bool {
	return m.cfg.HighPriorityCores > 0 && m.cfg.HighPriorityCores < m.cfg.Cores
}

// isBatchCore reports whether core id belongs to the batch tier.
func (m *Machine) isBatchCore(id int) bool {
	return m.priorityMode() && id >= m.cfg.HighPriorityCores
}

// Cores reports the core count.
func (m *Machine) Cores() int { return m.cfg.Cores }

// L3 exposes the shared last-level cache (tests, examples).
func (m *Machine) L3() *cache.Cache { return m.l3 }

// DRAM exposes the shared memory model.
func (m *Machine) DRAM() *dram.DRAM { return m.ram }

// SetPolicy installs the node cap (0 disables). The error is advisory
// (bmc.ErrInfeasibleCap); the policy is applied regardless.
func (m *Machine) SetPolicy(capWatts float64) error {
	return m.ctrl.SetPolicy(bmc.Policy{Enabled: capWatts > 0, CapWatts: capWatts})
}

// Alloc reserves simulated address space (shared among shards).
func (m *Machine) Alloc(size int) uint64 {
	base := m.allocNext
	pages := uint64(size+4095) / 4096
	m.allocNext += (pages + 1) * 4096
	return base
}

// Result carries one parallel run's metrics.
type Result struct {
	Workload      string
	CapWatts      float64
	ExecTime      simtime.Duration // wall time: slowest core
	AvgPowerWatts float64
	EnergyJoules  float64
	AvgFreqMHz    float64
	Counters      counters.Snapshot // summed over cores; L3 shared
	PerCoreBusy   []simtime.Duration

	// Per-tier busy-time-weighted average frequencies; zero unless the
	// machine was built with HighPriorityCores in (0, Cores).
	ServingAvgFreqMHz float64
	BatchAvgFreqMHz   float64
}

// SpeedupOver computes wall-clock speedup relative to another run of
// the same total work (typically the single-core run).
func (r Result) SpeedupOver(single Result) float64 {
	if r.ExecTime <= 0 {
		return 0
	}
	return single.ExecTime.Seconds() / r.ExecTime.Seconds()
}

// Run executes w across the configured cores to completion.
func (m *Machine) Run(w Workload) Result {
	m.codePages = w.CodePages()
	m.shards = w.Shards(m.cfg.Cores, m.Alloc)
	if len(m.shards) != m.cfg.Cores {
		panic(fmt.Sprintf("multicore: workload produced %d shards for %d cores",
			len(m.shards), m.cfg.Cores))
	}
	m.running = true
	start := m.minClock()
	m.meter.Reset()
	m.meter.Record(start, m.curPower)

	active := m.cfg.Cores
	for active > 0 {
		c := m.earliestRunnable()
		if !m.shards[c.id].Step(c) {
			c.done = true
			c.core.EnterCState(6)
			active--
			// A finished core's clock must not hold back event
			// processing: pin it forward as the others proceed.
		}
		m.runDueEvents(m.minRunnableClock())
	}
	end := m.maxClock()
	m.running = false
	m.updatePower(end)
	m.meter.Record(end, m.curPower)

	res := Result{
		Workload:      w.Name(),
		CapWatts:      m.ctrl.Policy().CapWatts,
		ExecTime:      end - start,
		AvgPowerWatts: m.meter.AverageWatts(),
		EnergyJoules:  m.meter.EnergyJoules(),
		AvgFreqMHz:    m.cores[0].core.AverageFreqMHz(),
	}
	if m.priorityMode() {
		res.ServingAvgFreqMHz = m.cores[0].core.AverageFreqMHz()
		res.BatchAvgFreqMHz = m.cores[m.cfg.HighPriorityCores].core.AverageFreqMHz()
	}
	for _, c := range m.cores {
		res.PerCoreBusy = append(res.PerCoreBusy, c.core.BusyTime())
		res.Counters = sumSnapshots(res.Counters, m.coreSnapshot(c))
	}
	res.Counters.L3Misses = m.l3.Stats().Misses
	return res
}

// earliestRunnable picks the not-done core with the smallest clock.
// Run guarantees at least one exists.
func (m *Machine) earliestRunnable() *CoreHandle {
	var best *CoreHandle
	for _, c := range m.cores {
		if c.done {
			continue
		}
		if best == nil || c.clock < best.clock {
			best = c
		}
	}
	return best
}

// minRunnableClock is the time horizon events may fire up to.
func (m *Machine) minRunnableClock() simtime.Duration {
	var min simtime.Duration
	found := false
	for _, c := range m.cores {
		if c.done {
			continue
		}
		if !found || c.clock < min {
			min, found = c.clock, true
		}
	}
	if !found {
		return m.maxClock()
	}
	return min
}

func (m *Machine) minClock() simtime.Duration {
	min := m.cores[0].clock
	for _, c := range m.cores[1:] {
		if c.clock < min {
			min = c.clock
		}
	}
	return min
}

func (m *Machine) maxClock() simtime.Duration {
	max := m.cores[0].clock
	for _, c := range m.cores[1:] {
		if c.clock > max {
			max = c.clock
		}
	}
	return max
}

func sumSnapshots(a, b counters.Snapshot) counters.Snapshot {
	a.L1DMisses += b.L1DMisses
	a.L1IMisses += b.L1IMisses
	a.L2Misses += b.L2Misses
	a.DTLBMisses += b.DTLBMisses
	a.ITLBMisses += b.ITLBMisses
	a.InstructionsCommitted += b.InstructionsCommitted
	a.InstructionsIssued += b.InstructionsIssued
	a.Loads += b.Loads
	a.Stores += b.Stores
	a.Cycles += b.Cycles
	return a
}
