package core

import (
	"reflect"
	"testing"

	"nodecap/internal/simtime"
)

// servingSLO is the study's p99 objective: comfortably above the
// steady-state p99 at full speed (~10 µs at 55-60% utilization) and
// far below the compounding open-loop backlog an overloaded core
// builds (hundreds of µs within a run).
const servingSLO = 25 * simtime.Microsecond

// TestServingStudyPriorityHoldsSLOBand pins the tentpole demonstration
// deterministically: across the top of the paper's cap ladder
// (160/155 W) fair-share capping drags every core down and the
// open-loop service overloads — p99 explodes past the SLO — while
// priority-aware capping steals the same watts from the batch tier,
// keeps the serving core at full speed without ever breaking its
// floor, and holds the SLO. One rung lower (150 W) the cap is no
// longer feasible with the floor held: the controller documents that
// with floor breaks, the paper's "cap below the platform floor"
// finding restated for mixed fleets.
func TestServingStudyPriorityHoldsSLOBand(t *testing.T) {
	run := func() []ServingPoint {
		pts, err := RunServingStudy(ServingStudyConfig{
			ServingFloorPState: 2,
			SLO:                servingSLO,
			Caps:               []float64{160, 155, 150},
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	pts := run()

	for _, p := range pts[:2] { // 160, 155: the band priority rescues
		if !p.Fair.SLOViolated {
			t.Errorf("cap %.0f: fair-share held the SLO (p99=%v); expected violation", p.CapWatts, p.Fair.P99)
		}
		if p.Priority.SLOViolated {
			t.Errorf("cap %.0f: priority-aware violated the SLO (p99=%v > %v)", p.CapWatts, p.Priority.P99, servingSLO)
		}
		if p.Priority.FloorBreaks != 0 {
			t.Errorf("cap %.0f: priority broke the serving floor %d times; cap is feasible, expected 0", p.CapWatts, p.Priority.FloorBreaks)
		}
		if p.Priority.BatchSteals == 0 {
			t.Errorf("cap %.0f: priority controller recorded no batch steals; the cap had to come from somewhere", p.CapWatts)
		}
		if p.Priority.BatchOps >= p.Fair.BatchOps {
			t.Errorf("cap %.0f: priority batch throughput %d not below fair share's %d; stealing has a cost",
				p.CapWatts, p.Priority.BatchOps, p.Fair.BatchOps)
		}
	}

	infeasible := pts[2] // 150: not feasible with the floor held
	if infeasible.Priority.FloorBreaks == 0 {
		t.Errorf("cap %.0f: expected floor breaks once the batch tier is exhausted", infeasible.CapWatts)
	}
	if infeasible.Priority.P99 >= infeasible.Fair.P99 {
		t.Errorf("cap %.0f: priority p99 %v should still degrade more gracefully than fair share's %v",
			infeasible.CapWatts, infeasible.Priority.P99, infeasible.Fair.P99)
	}

	// The study is part of the chaos-era determinism contract: a second
	// run must reproduce every number exactly.
	if again := run(); !reflect.DeepEqual(pts, again) {
		t.Errorf("serving study is not deterministic across runs:\n first=%+v\nsecond=%+v", pts, again)
	}
}

// TestServingStudySweepReport prints the full fair-vs-priority ladder
// (go test -v); it asserts only weak sanity so the table stays
// informative while TestServingStudyPriorityHoldsSLOBand pins the
// precise band.
func TestServingStudySweepReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full ladder sweep")
	}
	pts, err := RunServingStudy(ServingStudyConfig{
		ServingFloorPState: 2,
		SLO:                25 * simtime.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("cap %3.0f W | fair: p99=%-12v f=%4.0fMHz ops=%-8d pow=%5.1f viol=%-5v | prio: p99=%-12v f=%4.0fMHz ops=%-8d pow=%5.1f holds=%d breaks=%d steals=%d viol=%v",
			p.CapWatts,
			p.Fair.P99, p.Fair.ServingFreqMHz, p.Fair.BatchOps, p.Fair.AvgPowerWatts, p.Fair.SLOViolated,
			p.Priority.P99, p.Priority.ServingFreqMHz, p.Priority.BatchOps, p.Priority.AvgPowerWatts,
			p.Priority.FloorHolds, p.Priority.FloorBreaks, p.Priority.BatchSteals, p.Priority.SLOViolated)
	}
}
