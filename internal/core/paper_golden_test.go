package core

import (
	"fmt"
	"sync"
	"testing"

	"nodecap/internal/machine"
)

// The paper-fidelity golden suite locks the simulator to the shape of
// the study's results (Tables I and II, Figures 1 and 2):
//
//   - execution time and energy grow monotonically as the cap drops
//     from 160 W to 120 W;
//   - caps at or above 140 W are mild (≤ 1.4× slowdown) while the
//     120 W row blows up by an order of magnitude — the paper's
//     headline cliff;
//   - below ~135 W the core is pinned at its minimum P-state
//     (~1200 MHz on the study platform);
//   - sustained power respects every feasible cap;
//   - the committed instruction count is identical at every cap (the
//     same work, just slower).
//
// Each property is a checker over plain extracted rows, so the
// negative tests can feed doctored series and prove the tolerances
// actually bite (a golden suite that cannot fail locks nothing).

// goldenWork is a memory-heavy kernel (8 MiB working set, strided
// loads/stores between compute bursts) calibrated so the cap sweep
// spans the paper's dynamic range: ~1× at 160 W to >10× at 120 W.
type goldenWork struct{ iters int }

func (w *goldenWork) Name() string   { return "golden" }
func (w *goldenWork) CodePages() int { return 48 }
func (w *goldenWork) Run(m *machine.Machine) {
	base := m.Alloc(8 << 20)
	for i := 0; i < w.iters; i++ {
		m.Compute(12, 10)
		m.Load(base + uint64((i*4099*64)%(8<<20)))
		m.Store(base + uint64((i*8191*64)%(8<<20)))
	}
}

// goldenRow is one cap's extracted metrics, in sweep order.
type goldenRow struct {
	cap       float64
	time      float64
	energy    float64
	power     float64
	freq      float64
	committed float64
}

// Tolerance bands. monotoneSlack absorbs sub-percent trial jitter in
// the monotonicity checks; the rest mirror the paper's magnitudes.
const (
	monotoneSlack   = 0.995
	lowCapMinRatio  = 10.0 // 120 W: ≥ 10× the baseline time (Table I shows ~100×)
	highCapMaxRatio = 1.4  // ≥ 140 W: at most a mild slowdown
	pinnedCapWatts  = 130  // caps at/below this pin the min P-state...
	pinnedFreqLo    = 1150 // ...within this band (study platform ~1200 MHz)
	pinnedFreqHi    = 1260
	feasibleCapLo   = 130 // caps at/above this are above the platform floor
	powerSlackWatts = 2.0
)

var (
	goldenOnce sync.Once
	goldenBase goldenRow
	goldenRows []goldenRow // PaperCaps order: 160 down to 120
	goldenErr  error
)

// goldenSweep runs the calibrated experiment once and shares the rows
// across every golden test.
func goldenSweep(t *testing.T) (goldenRow, []goldenRow) {
	t.Helper()
	goldenOnce.Do(func() {
		e := Experiment{
			NewWorkload: func() machine.Workload { return &goldenWork{iters: 120000} },
			Caps:        PaperCaps(),
			Trials:      2,
		}
		res, err := e.Run()
		if err != nil {
			goldenErr = err
			return
		}
		extract := func(r CapResult) goldenRow {
			return goldenRow{
				cap: r.CapWatts, time: r.TimeSeconds, energy: r.EnergyJoules,
				power: r.PowerWatts, freq: r.FreqMHz,
				committed: r.Counters.Committed,
			}
		}
		goldenBase = extract(res.Baseline)
		for _, r := range res.Capped {
			goldenRows = append(goldenRows, extract(r))
		}
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenBase, goldenRows
}

// checkMonotone: metric never decreases as the cap tightens, within
// monotoneSlack (Figure 1/2 shapes).
func checkMonotone(metric string, get func(goldenRow) float64, rows []goldenRow) error {
	for i := 1; i < len(rows); i++ {
		prev, cur := get(rows[i-1]), get(rows[i])
		if cur < prev*monotoneSlack {
			return fmt.Errorf("%s not monotone: %.4g at %.0f W < %.4g at %.0f W",
				metric, cur, rows[i].cap, prev, rows[i-1].cap)
		}
	}
	return nil
}

// checkLowCapBlowup: the tightest cap's slowdown is at least an order
// of magnitude (the paper's 120 W rows).
func checkLowCapBlowup(base goldenRow, rows []goldenRow) error {
	last := rows[len(rows)-1]
	if ratio := last.time / base.time; ratio < lowCapMinRatio {
		return fmt.Errorf("cap %.0f W: slowdown ×%.2f below the paper's ≥ ×%.0f cliff", last.cap, ratio, lowCapMinRatio)
	}
	return nil
}

// checkHighCapsMild: caps at or above 140 W cost at most a mild
// slowdown (Table I's upper rows).
func checkHighCapsMild(base goldenRow, rows []goldenRow) error {
	for _, r := range rows {
		if r.cap < 140 {
			continue
		}
		if ratio := r.time / base.time; ratio > highCapMaxRatio {
			return fmt.Errorf("cap %.0f W: slowdown ×%.2f above the ×%.1f band", r.cap, ratio, highCapMaxRatio)
		}
	}
	return nil
}

// checkFreqPinned: caps at or below pinnedCapWatts hold the core at
// its minimum P-state, and the uncapped baseline runs far above it.
func checkFreqPinned(base goldenRow, rows []goldenRow) error {
	if base.freq < 2000 {
		return fmt.Errorf("baseline frequency %.0f MHz; uncapped core should run ≥ 2000", base.freq)
	}
	for _, r := range rows {
		if r.cap > pinnedCapWatts {
			continue
		}
		if r.freq < pinnedFreqLo || r.freq > pinnedFreqHi {
			return fmt.Errorf("cap %.0f W: frequency %.0f MHz outside the pinned band [%d, %d]",
				r.cap, r.freq, pinnedFreqLo, pinnedFreqHi)
		}
	}
	return nil
}

// checkPowerUnderCaps: sustained power honours every cap above the
// platform floor (below it, power pins at the floor by design — the
// paper's infeasible 120 W rows).
func checkPowerUnderCaps(rows []goldenRow) error {
	for _, r := range rows {
		if r.cap < feasibleCapLo {
			continue
		}
		if r.power > r.cap+powerSlackWatts {
			return fmt.Errorf("cap %.0f W: sustained power %.1f W over cap by more than %.1f W", r.cap, r.power, powerSlackWatts)
		}
	}
	return nil
}

// checkSameWork: capping slows the work down, it must not change it —
// committed instructions are identical at every cap.
func checkSameWork(base goldenRow, rows []goldenRow) error {
	for _, r := range rows {
		if r.committed != base.committed {
			return fmt.Errorf("cap %.0f W committed %.0f instructions, baseline %.0f — capping changed the work",
				r.cap, r.committed, base.committed)
		}
	}
	return nil
}

func TestPaperGoldenTimeMonotone(t *testing.T) {
	_, rows := goldenSweep(t)
	if err := checkMonotone("time", func(r goldenRow) float64 { return r.time }, rows); err != nil {
		t.Error(err)
	}
}

func TestPaperGoldenEnergyMonotone(t *testing.T) {
	_, rows := goldenSweep(t)
	if err := checkMonotone("energy", func(r goldenRow) float64 { return r.energy }, rows); err != nil {
		t.Error(err)
	}
}

func TestPaperGoldenLowCapCliff(t *testing.T) {
	base, rows := goldenSweep(t)
	if err := checkLowCapBlowup(base, rows); err != nil {
		t.Error(err)
	}
	if err := checkHighCapsMild(base, rows); err != nil {
		t.Error(err)
	}
}

func TestPaperGoldenFrequencyPinned(t *testing.T) {
	base, rows := goldenSweep(t)
	if err := checkFreqPinned(base, rows); err != nil {
		t.Error(err)
	}
}

func TestPaperGoldenPowerUnderCaps(t *testing.T) {
	_, rows := goldenSweep(t)
	if err := checkPowerUnderCaps(rows); err != nil {
		t.Error(err)
	}
}

func TestPaperGoldenSameWork(t *testing.T) {
	base, rows := goldenSweep(t)
	if err := checkSameWork(base, rows); err != nil {
		t.Error(err)
	}
}

// syntheticRows builds a series that satisfies every checker, for the
// negative tests to doctor.
func syntheticRows() (goldenRow, []goldenRow) {
	base := goldenRow{time: 0.01, energy: 1.5, power: 150, freq: 2700, committed: 1e7}
	var rows []goldenRow
	times := map[float64]float64{160: 0.0101, 155: 0.0102, 150: 0.0104, 145: 0.0108,
		140: 0.0115, 135: 0.013, 130: 0.016, 125: 0.09, 120: 0.23}
	freqs := map[float64]float64{160: 2650, 155: 2600, 150: 2500, 145: 2300,
		140: 2100, 135: 1600, 130: 1210, 125: 1202, 120: 1201}
	for _, cap := range PaperCaps() {
		rows = append(rows, goldenRow{
			cap: cap, time: times[cap], energy: times[cap] * 130,
			power: min(cap-1, 151), freq: freqs[cap], committed: 1e7,
		})
	}
	return base, rows
}

// TestGoldenCheckersBite: every checker must reject a series whose
// corresponding property is artificially broken — the suite's
// tolerances are real, not vacuous.
func TestGoldenCheckersBite(t *testing.T) {
	base, rows := syntheticRows()
	if err := checkMonotone("time", func(r goldenRow) float64 { return r.time }, rows); err != nil {
		t.Fatalf("synthetic series rejected by monotone: %v", err)
	}
	if err := checkLowCapBlowup(base, rows); err != nil {
		t.Fatalf("synthetic series rejected by blowup: %v", err)
	}
	if err := checkHighCapsMild(base, rows); err != nil {
		t.Fatalf("synthetic series rejected by mild-cap: %v", err)
	}
	if err := checkFreqPinned(base, rows); err != nil {
		t.Fatalf("synthetic series rejected by freq-pin: %v", err)
	}
	if err := checkPowerUnderCaps(rows); err != nil {
		t.Fatalf("synthetic series rejected by power-cap: %v", err)
	}
	if err := checkSameWork(base, rows); err != nil {
		t.Fatalf("synthetic series rejected by same-work: %v", err)
	}

	doctor := func(mutate func(base *goldenRow, rows []goldenRow)) (goldenRow, []goldenRow) {
		b, rs := syntheticRows()
		mutate(&b, rs)
		return b, rs
	}

	// A non-monotone bump (faster at a tighter cap) must be flagged.
	_, rs := doctor(func(_ *goldenRow, rows []goldenRow) { rows[6].time = rows[4].time * 0.5 })
	if checkMonotone("time", func(r goldenRow) float64 { return r.time }, rs) == nil {
		t.Error("monotone checker passed a doctored bump")
	}

	// A flattened cliff (120 W only ×3) must be flagged.
	b, rs := doctor(func(base *goldenRow, rows []goldenRow) { rows[len(rows)-1].time = base.time * 3 })
	if checkLowCapBlowup(b, rs) == nil {
		t.Error("blowup checker passed a flattened cliff")
	}

	// A heavy slowdown at 145 W must be flagged.
	b, rs = doctor(func(base *goldenRow, rows []goldenRow) { rows[3].time = base.time * 2 })
	if checkHighCapsMild(b, rs) == nil {
		t.Error("mild-cap checker passed a ×2 slowdown at 145 W")
	}

	// A core running fast under a 125 W cap must be flagged.
	b, rs = doctor(func(_ *goldenRow, rows []goldenRow) { rows[7].freq = 2400 })
	if checkFreqPinned(b, rs) == nil {
		t.Error("freq-pin checker passed an unpinned low-cap core")
	}

	// Power over a feasible cap must be flagged.
	b, rs = doctor(func(_ *goldenRow, rows []goldenRow) { rows[2].power = rows[2].cap + 10 })
	if checkPowerUnderCaps(rs) == nil {
		t.Error("power checker passed a cap breach")
	}

	// A run that did different work must be flagged.
	b, rs = doctor(func(_ *goldenRow, rows []goldenRow) { rows[0].committed *= 2 })
	if checkSameWork(b, rs) == nil {
		t.Error("same-work checker passed a changed instruction count")
	}
	_ = b
}
