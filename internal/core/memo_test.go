package core

import (
	"reflect"
	"testing"

	"nodecap/internal/machine"
	"nodecap/internal/telemetry"
)

// TestMemoizedSweepIdentical pins the cache's only correctness
// obligation: a memoized sweep is bit-identical to the uncached one,
// and a repeated sweep (all hits) is bit-identical again.
func TestMemoizedSweepIdentical(t *testing.T) {
	plain, err := miniExperiment([]float64{150, 130}, 2).Run()
	if err != nil {
		t.Fatal(err)
	}

	memo := NewMemo(0)
	reg := telemetry.NewRegistry()
	memo.SetTelemetry(reg)
	e := miniExperiment([]float64{150, 130}, 2)
	e.Memo = memo

	first, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, first) {
		t.Fatalf("memoized sweep diverged from uncached:\n%+v\nwant:\n%+v", first, plain)
	}
	runs := uint64((1 + 2) * 2)
	if h, m := reg.Counter("core_memo_hits_total").Value(), reg.Counter("core_memo_misses_total").Value(); h != 0 || m != runs {
		t.Fatalf("cold sweep counters: hits=%d misses=%d, want 0/%d", h, m, runs)
	}

	second, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, second) {
		t.Fatalf("cache-served sweep diverged from uncached:\n%+v\nwant:\n%+v", second, plain)
	}
	if h := reg.Counter("core_memo_hits_total").Value(); h != runs {
		t.Fatalf("warm sweep hits = %d, want %d", h, runs)
	}
	if m := reg.Counter("core_memo_misses_total").Value(); m != runs {
		t.Fatalf("warm sweep added misses: %d, want %d", m, runs)
	}
}

// TestMemoKeySeparatesRuns checks the key covers every axis that
// changes a run: grid position (cap, seed) and config.
func TestMemoKeySeparatesRuns(t *testing.T) {
	memo := NewMemo(0)
	e := miniExperiment([]float64{150, 130}, 2)
	e.Memo = memo
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Every (row, trial) grid point is distinct.
	if got, want := memo.Len(), (1+2)*2; got != want {
		t.Fatalf("entries after sweep = %d, want %d", got, want)
	}

	// A different machine config must not hit the first sweep's entries.
	e2 := miniExperiment([]float64{150, 130}, 2)
	e2.Memo = memo
	e2.MachineConfig = func(seed uint64) machine.Config {
		cfg := machine.Romley()
		cfg.Seed = seed
		cfg.SpecEvery = 16
		return cfg
	}
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := memo.Len(), 2*(1+2)*2; got != want {
		t.Fatalf("entries after second config = %d, want %d (config not keyed)", got, want)
	}
}

// TestMemoLRUBound fills past the bound and checks eviction order:
// the oldest untouched key leaves first, a re-read key survives.
func TestMemoLRUBound(t *testing.T) {
	m := NewMemo(3)
	k := func(i int) memoKey { return memoKey{workload: "w", seed: uint64(i)} }
	for i := 0; i < 3; i++ {
		m.put(k(i), machine.RunResult{AvgPowerWatts: float64(i)})
	}
	if _, ok := m.get(k(0)); !ok { // refresh 0; 1 becomes LRU
		t.Fatal("entry 0 missing before eviction")
	}
	m.put(k(3), machine.RunResult{})
	if m.Len() != 3 {
		t.Fatalf("len = %d, want bound 3", m.Len())
	}
	if _, ok := m.get(k(1)); ok {
		t.Error("LRU entry 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := m.get(k(i)); !ok {
			t.Errorf("entry %d evicted out of LRU order", i)
		}
	}
	// Overwriting an existing key must not grow the cache.
	m.put(k(3), machine.RunResult{AvgPowerWatts: 9})
	if m.Len() != 3 {
		t.Fatalf("len after overwrite = %d, want 3", m.Len())
	}
	if r, _ := m.get(k(3)); r.AvgPowerWatts != 9 {
		t.Errorf("overwrite not visible: %v", r.AvgPowerWatts)
	}
}

// TestMemoNilTelemetry exercises the counter-free path.
func TestMemoNilTelemetry(t *testing.T) {
	m := NewMemo(1)
	m.put(memoKey{seed: 1}, machine.RunResult{})
	if _, ok := m.get(memoKey{seed: 1}); !ok {
		t.Fatal("miss on stored key")
	}
	if _, ok := m.get(memoKey{seed: 2}); ok {
		t.Fatal("hit on absent key")
	}
}
