// Package core implements the paper's experimental methodology as a
// library: run a workload under a sweep of node power caps, several
// trials per cap, average every metric, and compare against the
// uncapped baseline — the procedure behind Tables I and II and
// Figures 1 and 2.
package core

import (
	"fmt"

	"nodecap/internal/machine"
	"nodecap/internal/pool"
	"nodecap/internal/simtime"
	"nodecap/internal/stats"
)

// PaperCaps is the cap schedule of the study: 160 down to 120 W in
// 5 W steps (Section III).
func PaperCaps() []float64 {
	return []float64{160, 155, 150, 145, 140, 135, 130, 125, 120}
}

// Experiment describes one workload's cap sweep.
type Experiment struct {
	// NewWorkload builds a fresh workload instance per run. The
	// workload input must be identical across runs (the paper feeds
	// every trial the same input).
	NewWorkload func() machine.Workload
	// MachineConfig builds the per-trial machine configuration; the
	// seed varies per (cap, trial) so trials differ in phase like real
	// repetitions.
	MachineConfig func(seed uint64) machine.Config
	// Caps is the cap schedule in watts (baseline is always run and
	// need not be listed). Defaults to PaperCaps.
	Caps []float64
	// Trials per cap; the paper uses 5.
	Trials int
	// Parallelism bounds how many (cap, trial) simulations run
	// concurrently: <= 0 selects GOMAXPROCS, 1 forces the sequential
	// schedule. Every run derives its seed from its (cap, trial) grid
	// position and trial results reduce in grid order, so the sweep
	// result is bit-identical at every parallelism level. NewWorkload
	// and MachineConfig must be safe for concurrent calls when
	// Parallelism permits more than one worker (pure constructors over
	// shared read-only configuration are).
	Parallelism int
	// Memo, when non-nil, caches each (workload, cap, seed, config)
	// run result so repeated grid points across Run calls skip the
	// simulation. Share one Memo across experiments to reuse overlap;
	// leave nil for the stock uncached behaviour. See Memo for the
	// purity requirements on injected config hooks.
	Memo *Memo
}

// Defaults fills unset fields.
func (e *Experiment) defaults() error {
	if e.NewWorkload == nil {
		return fmt.Errorf("core: NewWorkload is required")
	}
	if e.MachineConfig == nil {
		e.MachineConfig = func(seed uint64) machine.Config {
			cfg := machine.Romley()
			cfg.Seed = seed
			return cfg
		}
	}
	if len(e.Caps) == 0 {
		e.Caps = PaperCaps()
	}
	if e.Trials <= 0 {
		e.Trials = 5
	}
	return nil
}

// CounterMeans holds trial-averaged counter values.
type CounterMeans struct {
	L1Misses   float64 // L1 data-cache misses (the Table II "L1 Misses" column)
	L2Misses   float64
	L3Misses   float64
	DTLBMisses float64
	ITLBMisses float64
	Committed  float64
	Issued     float64
	Loads      float64
	Stores     float64
	Cycles     float64
}

// CapResult is the averaged outcome at one cap (or the baseline).
type CapResult struct {
	Label    string  // "baseline", "160", ...
	CapWatts float64 // 0 for baseline

	PowerWatts   float64
	EnergyJoules float64
	FreqMHz      float64
	TimeSeconds  float64
	Time         simtime.Duration

	Counters CounterMeans

	// Spread diagnostics across trials.
	TimeStddev float64
}

// Diff holds the Table II percent-difference columns for one cap
// against the baseline.
type Diff struct {
	Power, Energy, Freq, Time float64
	L1, L2, L3, DTLB, ITLB    float64
}

// SweepResult is one workload's full sweep.
type SweepResult struct {
	Workload string
	Baseline CapResult
	Capped   []CapResult
}

// Run executes the experiment: the baseline plus every cap, Trials
// runs each. The full (cap, trial) grid fans out across a bounded
// worker pool (see Parallelism); each run lands in its pre-indexed
// slot and each cap's trials reduce in trial order, so the result is
// identical to the sequential schedule no matter how the goroutines
// interleave.
func (e Experiment) Run() (SweepResult, error) {
	if err := e.defaults(); err != nil {
		return SweepResult{}, err
	}
	var out SweepResult
	out.Workload = e.NewWorkload().Name()

	// Grid row 0 is the baseline (seed base 1, as the sequential
	// schedule always had); row i+1 is Caps[i] (seed base i+2).
	rows := 1 + len(e.Caps)
	runs := make([]machine.RunResult, rows*e.Trials)
	pool.ForEach(len(runs), e.Parallelism, func(job int) {
		row, trial := job/e.Trials, job%e.Trials
		var capWatts float64
		if row > 0 {
			capWatts = e.Caps[row-1]
		}
		seed := uint64(row+1)*1000 + uint64(trial)
		cfg := e.MachineConfig(seed)
		var key memoKey
		if e.Memo != nil {
			key = memoKey{
				workload: out.Workload,
				capWatts: capWatts,
				seed:     seed,
				cfgHash:  hashConfig(cfg),
			}
			if r, ok := e.Memo.get(key); ok {
				runs[job] = r
				return
			}
		}
		m := machine.New(cfg)
		m.SetPolicy(capWatts)
		runs[job] = m.RunWorkload(e.NewWorkload())
		if e.Memo != nil {
			e.Memo.put(key, runs[job])
		}
	})

	out.Baseline = e.reduceCap(0, "baseline", runs[:e.Trials])
	for i, cap := range e.Caps {
		label := fmt.Sprintf("%.0f", cap)
		out.Capped = append(out.Capped,
			e.reduceCap(cap, label, runs[(i+1)*e.Trials:(i+2)*e.Trials]))
	}
	return out, nil
}

// reduceCap averages one cap's trial runs, in trial order.
func (e Experiment) reduceCap(capWatts float64, label string, trials []machine.RunResult) CapResult {
	var (
		power, energy, freq, tsec                        []float64
		l1, l2, l3, dtlb, itlb, com, iss, lds, strs, cyc []float64
		totalTime                                        simtime.Duration
	)
	for _, r := range trials {
		power = append(power, r.AvgPowerWatts)
		energy = append(energy, r.EnergyJoules)
		freq = append(freq, r.AvgFreqMHz)
		tsec = append(tsec, r.ExecTime.Seconds())
		totalTime += r.ExecTime
		c := r.Counters
		l1 = append(l1, float64(c.L1DMisses))
		l2 = append(l2, float64(c.L2Misses))
		l3 = append(l3, float64(c.L3Misses))
		dtlb = append(dtlb, float64(c.DTLBMisses))
		itlb = append(itlb, float64(c.ITLBMisses))
		com = append(com, float64(c.InstructionsCommitted))
		iss = append(iss, float64(c.InstructionsIssued))
		lds = append(lds, float64(c.Loads))
		strs = append(strs, float64(c.Stores))
		cyc = append(cyc, float64(c.Cycles))
	}
	return CapResult{
		Label:        label,
		CapWatts:     capWatts,
		PowerWatts:   stats.Mean(power),
		EnergyJoules: stats.Mean(energy),
		FreqMHz:      stats.Mean(freq),
		TimeSeconds:  stats.Mean(tsec),
		Time:         totalTime / simtime.Duration(e.Trials),
		TimeStddev:   stats.Stddev(tsec),
		Counters: CounterMeans{
			L1Misses:   stats.Mean(l1),
			L2Misses:   stats.Mean(l2),
			L3Misses:   stats.Mean(l3),
			DTLBMisses: stats.Mean(dtlb),
			ITLBMisses: stats.Mean(itlb),
			Committed:  stats.Mean(com),
			Issued:     stats.Mean(iss),
			Loads:      stats.Mean(lds),
			Stores:     stats.Mean(strs),
			Cycles:     stats.Mean(cyc),
		},
	}
}

// DiffVsBaseline computes the percent-difference columns for r.
func (s SweepResult) DiffVsBaseline(r CapResult) Diff {
	b := s.Baseline
	return Diff{
		Power:  stats.PercentDiff(r.PowerWatts, b.PowerWatts),
		Energy: stats.PercentDiff(r.EnergyJoules, b.EnergyJoules),
		Freq:   stats.PercentDiff(r.FreqMHz, b.FreqMHz),
		Time:   stats.PercentDiff(r.TimeSeconds, b.TimeSeconds),
		L1:     stats.PercentDiff(r.Counters.L1Misses, b.Counters.L1Misses),
		L2:     stats.PercentDiff(r.Counters.L2Misses, b.Counters.L2Misses),
		L3:     stats.PercentDiff(r.Counters.L3Misses, b.Counters.L3Misses),
		DTLB:   stats.PercentDiff(r.Counters.DTLBMisses, b.Counters.DTLBMisses),
		ITLB:   stats.PercentDiff(r.Counters.ITLBMisses, b.Counters.ITLBMisses),
	}
}

// All returns baseline plus capped results in table order.
func (s SweepResult) All() []CapResult {
	out := make([]CapResult, 0, len(s.Capped)+1)
	out = append(out, s.Baseline)
	out = append(out, s.Capped...)
	return out
}

// Series extracts one metric across All() in order, for the
// normalized figures.
func (s SweepResult) Series(metric func(CapResult) float64) []float64 {
	all := s.All()
	out := make([]float64, len(all))
	for i, r := range all {
		out[i] = metric(r)
	}
	return out
}
