// The serving study extends the paper's methodology to the mixed fleet
// question: the paper caps a node and watches one application suffer
// uniformly; production sockets run latency-critical serving next to
// batch work, and the same cap can either be spread fairly (every core
// slows together) or steered (batch cores absorb it, serving cores
// keep a frequency floor). The study sweeps the paper's cap ladder
// under both policies and reports the p99-latency SLO verdict and the
// batch throughput each policy paid for it.

package core

import (
	"fmt"

	"nodecap/internal/machine"
	"nodecap/internal/multicore"
	"nodecap/internal/simtime"
	"nodecap/internal/workloads/serving"
)

// ServingStudyConfig describes one fair-vs-priority cap sweep.
type ServingStudyConfig struct {
	// Cores is the socket size; ServingCores of them (the leading ones)
	// run the latency-critical service.
	Cores        int
	ServingCores int
	// ServingFloorPState is the priority policy's serving-tier floor.
	ServingFloorPState int
	// SLO is the p99 latency objective for the serving tier.
	SLO simtime.Duration
	// Caps is the cap schedule; defaults to PaperCaps.
	Caps []float64
	// Workload tunes the serving/batch mix; zero value takes
	// serving.DefaultConfig with ServingCores patched in.
	Workload serving.Config
	// Base is the per-node machine configuration; zero PStates selects
	// machine.Romley().
	Base machine.Config
}

func (c *ServingStudyConfig) defaults() error {
	if c.Cores <= 0 {
		c.Cores = 2
	}
	if c.ServingCores <= 0 {
		c.ServingCores = 1
	}
	if c.ServingCores >= c.Cores {
		return fmt.Errorf("core: %d serving cores need a socket larger than %d", c.ServingCores, c.Cores)
	}
	if c.SLO <= 0 {
		return fmt.Errorf("core: serving study needs a positive SLO")
	}
	if len(c.Caps) == 0 {
		c.Caps = PaperCaps()
	}
	if c.Workload.RequestsPerCore == 0 {
		c.Workload = serving.DefaultConfig()
	}
	c.Workload.ServingCores = c.ServingCores
	if c.Base.PStates == nil {
		c.Base = machine.Romley()
	}
	return nil
}

// ServingOutcome is one policy's result at one cap.
type ServingOutcome struct {
	P99           simtime.Duration
	SLOViolated   bool
	BatchOps      uint64
	AvgPowerWatts float64
	// ServingFreqMHz is the serving cores' busy-time-weighted average
	// frequency (the whole package under fair share).
	ServingFreqMHz float64
	// Priority-controller activity; always zero under fair share.
	FloorHolds  uint64
	FloorBreaks uint64
	BatchSteals uint64
}

// ServingPoint pairs the two policies at one cap.
type ServingPoint struct {
	CapWatts float64
	Fair     ServingOutcome
	Priority ServingOutcome
}

// RunServingStudy sweeps cfg.Caps under fair-share and priority-aware
// capping. Runs are deterministic: same config, same outcome.
func RunServingStudy(cfg ServingStudyConfig) ([]ServingPoint, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	out := make([]ServingPoint, 0, len(cfg.Caps))
	for _, cap := range cfg.Caps {
		pt := ServingPoint{CapWatts: cap}
		pt.Fair = runServingOnce(multicore.Config{
			Cores: cfg.Cores,
			Base:  cfg.Base,
		}, cfg.Workload, cap, cfg.SLO)
		pt.Priority = runServingOnce(multicore.Config{
			Cores:              cfg.Cores,
			HighPriorityCores:  cfg.ServingCores,
			ServingFloorPState: cfg.ServingFloorPState,
			Base:               cfg.Base,
		}, cfg.Workload, cap, cfg.SLO)
		out = append(out, pt)
	}
	return out, nil
}

func runServingOnce(mcCfg multicore.Config, wCfg serving.Config, capWatts float64, slo simtime.Duration) ServingOutcome {
	m := multicore.New(mcCfg)
	if capWatts > 0 {
		_ = m.SetPolicy(capWatts) // advisory ErrInfeasibleCap: still applied
	}
	w := serving.New(wCfg)
	res := m.Run(w)
	st := m.BMC().Stats()
	o := ServingOutcome{
		P99:            w.P99(),
		BatchOps:       w.BatchOps(),
		AvgPowerWatts:  res.AvgPowerWatts,
		ServingFreqMHz: res.AvgFreqMHz,
		FloorHolds:     st.FloorHolds,
		FloorBreaks:    st.FloorBreaks,
		BatchSteals:    st.BatchSteals,
	}
	if res.ServingAvgFreqMHz > 0 {
		o.ServingFreqMHz = res.ServingAvgFreqMHz
	}
	o.SLOViolated = o.P99 > slo
	return o
}
