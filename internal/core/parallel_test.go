package core

import (
	"reflect"
	"testing"
)

// TestParallelSweepDeterminism is the regression guarantee behind the
// Parallelism field: the same experiment run with 8 workers must
// produce a SweepResult deep-equal to the sequential schedule — same
// per-trial seeds, same counters, same averaged statistics, bit for
// bit. Any drift here means a run read another run's seed or the
// reduction left grid order.
func TestParallelSweepDeterminism(t *testing.T) {
	mk := func(par int) Experiment {
		e := miniExperiment([]float64{150, 135, 120}, 3)
		e.Parallelism = par
		return e
	}
	seq, err := mk(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	par, err := mk(8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel sweep diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestParallelismDefaultsSaturate pins the contract that an unset
// Parallelism means "use the whole host", not "sequential": defaults()
// must leave the zero value alone for pool.Workers to resolve.
func TestParallelismDefaultsSaturate(t *testing.T) {
	e := miniExperiment([]float64{150}, 1)
	if err := e.defaults(); err != nil {
		t.Fatal(err)
	}
	if e.Parallelism != 0 {
		t.Errorf("defaults() set Parallelism = %d, want 0 (GOMAXPROCS)", e.Parallelism)
	}
}
