package core

import (
	"testing"

	"nodecap/internal/machine"
)

// miniWork is a fast compute-plus-cache workload for sweep tests.
type miniWork struct{ iters int }

func (w *miniWork) Name() string   { return "mini" }
func (w *miniWork) CodePages() int { return 40 }
func (w *miniWork) Run(m *machine.Machine) {
	base := m.Alloc(1 << 20)
	for i := 0; i < w.iters; i++ {
		m.Compute(30, 24)
		m.Load(base + uint64((i*4099)%(1<<20)))
		if i%4 == 0 {
			m.Store(base + uint64((i*8191)%(1<<20)))
		}
	}
}

func miniExperiment(caps []float64, trials int) Experiment {
	return Experiment{
		NewWorkload: func() machine.Workload { return &miniWork{iters: 250000} },
		Caps:        caps,
		Trials:      trials,
	}
}

func TestRunRequiresWorkload(t *testing.T) {
	if _, err := (Experiment{}).Run(); err == nil {
		t.Error("empty experiment accepted")
	}
}

func TestDefaultsFill(t *testing.T) {
	e := Experiment{NewWorkload: func() machine.Workload { return &miniWork{} }}
	if err := e.defaults(); err != nil {
		t.Fatal(err)
	}
	if len(e.Caps) != 9 || e.Trials != 5 || e.MachineConfig == nil {
		t.Errorf("defaults wrong: caps=%d trials=%d", len(e.Caps), e.Trials)
	}
}

func TestPaperCaps(t *testing.T) {
	caps := PaperCaps()
	if len(caps) != 9 || caps[0] != 160 || caps[8] != 120 {
		t.Errorf("PaperCaps = %v", caps)
	}
}

func TestSweepShape(t *testing.T) {
	res, err := miniExperiment([]float64{150, 130}, 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "mini" {
		t.Errorf("workload = %q", res.Workload)
	}
	if res.Baseline.Label != "baseline" || res.Baseline.CapWatts != 0 {
		t.Errorf("baseline = %+v", res.Baseline)
	}
	if len(res.Capped) != 2 || res.Capped[0].Label != "150" || res.Capped[1].Label != "130" {
		t.Errorf("capped rows = %+v", res.Capped)
	}
	if got := len(res.All()); got != 3 {
		t.Errorf("All() = %d rows", got)
	}
}

func TestSweepReproducesHeadlineShape(t *testing.T) {
	res, err := miniExperiment([]float64{150, 130}, 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	d150 := res.DiffVsBaseline(res.Capped[0])
	d130 := res.DiffVsBaseline(res.Capped[1])
	// Time grows as the cap tightens.
	if !(d130.Time > d150.Time && d150.Time >= -2) {
		t.Errorf("time diffs not ordered: 150W=%+.1f%% 130W=%+.1f%%", d150.Time, d130.Time)
	}
	// Power decreases with the cap.
	if !(d130.Power < d150.Power && d150.Power < 2) {
		t.Errorf("power diffs not ordered: 150W=%+.1f%% 130W=%+.1f%%", d150.Power, d130.Power)
	}
	// Frequency drops at 130 W (pinned near the floor).
	if res.Capped[1].FreqMHz > 1400 {
		t.Errorf("130 W frequency = %.0f", res.Capped[1].FreqMHz)
	}
	// Committed instructions identical across caps.
	if res.Baseline.Counters.Committed != res.Capped[1].Counters.Committed {
		t.Errorf("committed differ: %.0f vs %.0f",
			res.Baseline.Counters.Committed, res.Capped[1].Counters.Committed)
	}
}

func TestSeriesExtraction(t *testing.T) {
	res, err := miniExperiment([]float64{150}, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series(func(r CapResult) float64 { return r.PowerWatts })
	if len(s) != 2 || s[0] != res.Baseline.PowerWatts || s[1] != res.Capped[0].PowerWatts {
		t.Errorf("series = %v", s)
	}
}

func TestTrialsAveraged(t *testing.T) {
	res, err := miniExperiment([]float64{140}, 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	// With differing per-trial seeds the spread should be non-zero but
	// small relative to the mean.
	r := res.Capped[0]
	if r.TimeStddev <= 0 {
		t.Error("trials produced identical times; seeds not varying")
	}
	if r.TimeStddev > 0.25*r.TimeSeconds {
		t.Errorf("trial spread %.4f s too large vs mean %.4f s", r.TimeStddev, r.TimeSeconds)
	}
}
