package core

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"

	"nodecap/internal/machine"
	"nodecap/internal/telemetry"
)

// memoKey identifies one simulated (cap, trial) run completely: the
// workload name, the cap, the trial seed, and a hash of the machine
// configuration the seed was folded into. Two runs with equal keys are
// the same deterministic simulation, so the second is free.
type memoKey struct {
	workload string
	capWatts float64
	seed     uint64
	cfgHash  uint64
}

// Memo is an LRU cache of simulated run results keyed on
// (workload, cap, seed, config-hash), shared across Experiment.Run
// calls. Repeated grid points — golden tests re-running the paper
// sweep, calibration loops revisiting the same caps, a Table I/II
// regeneration after a report-layer change — skip the simulation
// entirely. Safe for concurrent use by the sweep worker pool.
//
// Correctness leans on the simulator's own determinism contract: a run
// is a pure function of (workload input, machine config, cap). The
// config hash covers the printable form of machine.Config — function
// fields (ControlHook, WrapPlant, OpTrace) hash by code pointer, so
// two configs differing only in the *behaviour* of an injected closure
// over identical code pointers would collide. Experiments that inject
// stateful hooks should not enable memoization; the stock sweeps
// (which inject none) are exactly the workloads the cache exists for.
type Memo struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *memoEntry
	byKey map[memoKey]*list.Element

	hits, misses *telemetry.Counter
}

type memoEntry struct {
	key memoKey
	res machine.RunResult
}

// DefaultMemoEntries bounds a Memo built with NewMemo(0). At roughly
// one RunResult (a few hundred bytes) per entry this keeps the cache
// well under a megabyte while still covering several full paper sweeps
// (a sweep is (1 baseline + 9 caps) × trials runs).
const DefaultMemoEntries = 1024

// NewMemo builds a memo bounded to max entries (<= 0 selects
// DefaultMemoEntries). Least-recently-used entries are evicted first.
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = DefaultMemoEntries
	}
	return &Memo{
		max:   max,
		order: list.New(),
		byKey: make(map[memoKey]*list.Element),
	}
}

// SetTelemetry wires hit/miss counters (core_memo_hits_total,
// core_memo_misses_total) into reg. Nil-safe like the rest of the
// telemetry surface.
func (m *Memo) SetTelemetry(reg *telemetry.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hits = reg.Counter("core_memo_hits_total")
	m.misses = reg.Counter("core_memo_misses_total")
}

// Len reports the current entry count.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// get looks k up, refreshing its recency on a hit.
func (m *Memo) get(k memoKey) (machine.RunResult, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byKey[k]
	if !ok {
		m.misses.Inc()
		return machine.RunResult{}, false
	}
	m.order.MoveToFront(el)
	m.hits.Inc()
	return el.Value.(*memoEntry).res, true
}

// put stores k→r, evicting from the LRU tail past the bound.
func (m *Memo) put(k memoKey, r machine.RunResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[k]; ok {
		el.Value.(*memoEntry).res = r
		m.order.MoveToFront(el)
		return
	}
	m.byKey[k] = m.order.PushFront(&memoEntry{key: k, res: r})
	for m.order.Len() > m.max {
		tail := m.order.Back()
		m.order.Remove(tail)
		delete(m.byKey, tail.Value.(*memoEntry).key)
	}
}

// hashConfig fingerprints a machine configuration via FNV-1a over its
// printable form, with the seed zeroed (the seed is keyed separately,
// so one sweep's configs collapse to one hash).
func hashConfig(cfg machine.Config) uint64 {
	cfg.Seed = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}
