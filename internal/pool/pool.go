// Package pool provides the bounded worker pool shared by every
// multi-run experiment driver (core sweeps, amenability calibration,
// the bursty cap study). Each (cap, trial) simulation is fully
// independent, so the drivers fan their run grids out across
// goroutines and collect into pre-indexed slots; the pool only
// schedules indices and guarantees completion, never ordering, which
// keeps determinism a property of the callers' index math rather than
// of goroutine interleaving.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism request: values <= 0 select
// GOMAXPROCS (saturate the host), anything else is used as given.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// ForEach invokes fn(i) for every i in [0, n), running at most
// Workers(parallelism) invocations concurrently. With an effective
// worker count of one (or n <= 1) it degenerates to a plain in-order
// loop on the calling goroutine — the sequential schedule — so callers
// need one code path for both modes. fn must be safe for concurrent
// invocation when parallelism permits it; ForEach returns only after
// every invocation has completed.
//
// A panic inside fn does not crash the process from a worker
// goroutine: the remaining indices are abandoned (workers drain without
// invoking fn again), in-flight invocations finish, and ForEach
// re-panics on the calling goroutine with the first recovered value —
// the same surface a panic in a plain sequential loop presents.
func ForEach(n, parallelism int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Workers(parallelism)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		pmu      sync.Mutex
		panicked bool
		panicVal any
	)
	abort := func() bool {
		pmu.Lock()
		defer pmu.Unlock()
		return panicked
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if !panicked {
						panicked = true
						panicVal = r
					}
					pmu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || abort() {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}
