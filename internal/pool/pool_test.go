package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestForEachCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, par := range []int{1, 2, 8, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEach(n, par, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: index %d invoked %d times", par, i, got)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("sequential order = %v", order)
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(0, 4, func(i int) { t.Fatal("fn called for n=0") })
	calls := 0
	ForEach(1, 4, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1 invoked %d times", calls)
	}
}
