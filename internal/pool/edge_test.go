package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForEachWorkersExceedItems pins the clamp: more workers than
// items still covers every index exactly once and spawns no goroutine
// that could race past n.
func TestForEachWorkersExceedItems(t *testing.T) {
	const n = 3
	var hits [n]atomic.Int32
	ForEach(n, 64, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d invoked %d times", i, got)
		}
	}
}

// TestForEachPanicPropagates checks the documented panic surface: a
// panic in fn reaches the caller (not the runtime's goroutine crash),
// in-flight work completes, and remaining indices are abandoned.
func TestForEachPanicPropagates(t *testing.T) {
	for _, par := range []int{1, 4} {
		var ran atomic.Int32
		func() {
			defer func() {
				r := recover()
				if r != "boom" {
					t.Fatalf("parallelism %d: recovered %v, want \"boom\"", par, r)
				}
			}()
			ForEach(1000, par, func(i int) {
				if i == 5 {
					panic("boom")
				}
				ran.Add(1)
			})
			t.Fatalf("parallelism %d: ForEach returned instead of panicking", par)
		}()
		if got := ran.Load(); got >= 1000 {
			t.Errorf("parallelism %d: all %d non-panicking indices ran; abandonment never kicked in", par, got)
		}
	}
}

// TestGangPanicPropagates mirrors the ForEach contract on the
// persistent gang, and checks the gang survives to run again.
func TestGangPanicPropagates(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	func() {
		defer func() {
			if r := recover(); r != "shard-boom" {
				t.Fatalf("recovered %v, want \"shard-boom\"", r)
			}
		}()
		g.Run(100, func(worker, lo, hi int) {
			if lo == 0 {
				panic("shard-boom")
			}
		})
		t.Fatal("Run returned instead of panicking")
	}()
	// The gang must be reusable after a panicking dispatch.
	var covered atomic.Int64
	g.Run(100, func(worker, lo, hi int) { covered.Add(int64(hi - lo)) })
	if covered.Load() != 100 {
		t.Fatalf("post-panic dispatch covered %d of 100", covered.Load())
	}
}

// TestGangRunAfterClosePanics pins the misuse surface.
func TestGangRunAfterClosePanics(t *testing.T) {
	g := NewGang(2)
	g.Close()
	g.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("Run on closed gang did not panic")
		}
	}()
	g.Run(10, func(worker, lo, hi int) {})
}

// TestGangCoversAndIsDeterministic checks every dispatch covers
// [0, total) in contiguous disjoint ranges and that the partition for
// a given (total, workers) never varies across dispatches.
func TestGangCoversAndIsDeterministic(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	for _, total := range []int{1, 3, 4, 5, 100, 101} {
		type rng struct{ lo, hi int }
		var mu atomic.Int64
		seen := make([]rng, g.Workers())
		for i := range seen {
			seen[i] = rng{-1, -1}
		}
		g.Run(total, func(worker, lo, hi int) {
			seen[worker] = rng{lo, hi}
			mu.Add(int64(hi - lo))
		})
		if mu.Load() != int64(total) {
			t.Fatalf("total %d: covered %d", total, mu.Load())
		}
		for w := 0; w < g.Workers(); w++ {
			lo, hi := ShardRange(total, g.Workers(), w)
			if lo < hi && (seen[w].lo != lo || seen[w].hi != hi) {
				t.Fatalf("total %d worker %d: ran [%d,%d), ShardRange says [%d,%d)",
					total, w, seen[w].lo, seen[w].hi, lo, hi)
			}
			if lo >= hi && seen[w].lo != -1 {
				t.Fatalf("total %d worker %d: invoked for empty range [%d,%d)", total, w, lo, hi)
			}
		}
	}
}

// TestShardRangeProperties sweeps (total, shards) combinations and
// checks the partition invariants: disjoint, contiguous, covering,
// sizes differing by at most one with larger shards first, and
// out-of-range queries empty.
func TestShardRangeProperties(t *testing.T) {
	for total := 0; total <= 33; total++ {
		for shards := 1; shards <= 9; shards++ {
			prev, minSz, maxSz := 0, total+1, -1
			for i := 0; i < shards; i++ {
				lo, hi := ShardRange(total, shards, i)
				if lo != prev {
					t.Fatalf("total=%d shards=%d i=%d: lo=%d, want contiguous %d", total, shards, i, lo, prev)
				}
				if hi < lo {
					t.Fatalf("total=%d shards=%d i=%d: inverted range [%d,%d)", total, shards, i, lo, hi)
				}
				sz := hi - lo
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
				if i > 0 {
					pl, ph := ShardRange(total, shards, i-1)
					if ph-pl < hi-lo {
						t.Fatalf("total=%d shards=%d: shard %d larger than shard %d", total, shards, i, i-1)
					}
				}
				prev = hi
			}
			if prev != total {
				t.Fatalf("total=%d shards=%d: shards cover [0,%d)", total, shards, prev)
			}
			if total > 0 && maxSz-minSz > 1 {
				t.Fatalf("total=%d shards=%d: shard sizes span [%d,%d]", total, shards, minSz, maxSz)
			}
		}
	}
	if lo, hi := ShardRange(10, 0, 0); lo != 0 || hi != 0 {
		t.Errorf("zero shards returned [%d,%d)", lo, hi)
	}
	if lo, hi := ShardRange(10, 4, 7); lo != 0 || hi != 0 {
		t.Errorf("out-of-range shard returned [%d,%d)", lo, hi)
	}
	if lo, hi := ShardRange(10, 4, -1); lo != 0 || hi != 0 {
		t.Errorf("negative shard returned [%d,%d)", lo, hi)
	}
}

// TestGangZeroWorkerRequest checks <= 0 normalizes to GOMAXPROCS like
// the rest of the package.
func TestGangZeroWorkerRequest(t *testing.T) {
	g := NewGang(0)
	defer g.Close()
	if got := g.Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewGang(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	var covered atomic.Int64
	g.Run(17, func(worker, lo, hi int) { covered.Add(int64(hi - lo)) })
	if covered.Load() != 17 {
		t.Fatalf("covered %d of 17", covered.Load())
	}
}

// TestGangRunZeroAlloc pins the gang's reason to exist: steady-state
// dispatch allocates nothing. The closure is hoisted so the measured
// loop captures only dispatch overhead.
func TestGangRunZeroAlloc(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	var sink atomic.Int64
	fn := func(worker, lo, hi int) { sink.Add(int64(hi - lo)) }
	g.Run(1024, fn) // warm
	if avg := testing.AllocsPerRun(100, func() { g.Run(1024, fn) }); avg != 0 {
		t.Fatalf("Gang.Run allocates %.1f per dispatch, want 0", avg)
	}
}
