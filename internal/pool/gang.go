package pool

import "sync"

// Gang is a persistent crew of worker goroutines that repeatedly
// execute contiguous-range fan-outs with zero steady-state allocation.
// Where ForEach spawns goroutines per call (fine for coarse work like
// whole-machine simulations), a Gang is built once and re-dispatched
// per call, so a hot loop — the fleet engine's per-tick batch step —
// can shard across cores thousands of times per second without
// touching the allocator or the scheduler's spawn path.
//
// Dispatch semantics: Run(total, fn) partitions [0, total) into one
// contiguous range per worker (sizes differing by at most one, lower
// ranges first) and invokes fn(worker, lo, hi) on each worker whose
// range is non-empty. Range boundaries depend only on (total, workers)
// — never on timing — so callers that shard deterministic state by
// index keep bit-identical output at any worker count.
//
// A Gang is NOT safe for concurrent Run calls; Run itself serializes
// callers with a mutex, so concurrent use degrades to queueing rather
// than corruption. Close releases the workers; Run after Close panics.
type Gang struct {
	workers int
	start   []chan struct{}
	wg      sync.WaitGroup

	mu     sync.Mutex // serializes Run/Close
	fn     func(worker, lo, hi int)
	total  int
	closed bool

	pmu      sync.Mutex
	panicVal any
	panicked bool
}

// NewGang builds a gang of Workers(workers) goroutines (so <= 0 means
// GOMAXPROCS), parked until the first Run.
func NewGang(workers int) *Gang {
	w := Workers(workers)
	g := &Gang{workers: w, start: make([]chan struct{}, w)}
	for i := range g.start {
		g.start[i] = make(chan struct{}, 1)
		go g.work(i)
	}
	return g
}

// Workers reports the gang's fixed worker count.
func (g *Gang) Workers() int { return g.workers }

func (g *Gang) work(id int) {
	for range g.start[id] {
		g.runOne(id)
	}
}

// runOne executes one dispatch on worker id, converting a panic in fn
// into a recorded value re-raised by Run. Done is deferred first so it
// still fires when fn panics.
func (g *Gang) runOne(id int) {
	defer g.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			g.pmu.Lock()
			if !g.panicked {
				g.panicked = true
				g.panicVal = r
			}
			g.pmu.Unlock()
		}
	}()
	lo, hi := ShardRange(g.total, g.workers, id)
	if lo < hi {
		g.fn(id, lo, hi)
	}
}

// Run invokes fn over [0, total) partitioned across the gang, and
// returns after every worker has finished. If any fn invocation
// panicked, Run re-panics with the first recovered value once all
// workers are quiescent. Zero allocations in steady state.
func (g *Gang) Run(total int, fn func(worker, lo, hi int)) {
	if total <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		panic("pool: Run on closed Gang")
	}
	g.fn, g.total = fn, total
	g.panicked, g.panicVal = false, nil
	g.wg.Add(g.workers)
	for _, c := range g.start {
		c <- struct{}{}
	}
	g.wg.Wait()
	g.fn = nil
	if g.panicked {
		panic(g.panicVal)
	}
}

// Close releases the worker goroutines. Idempotent.
func (g *Gang) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for _, c := range g.start {
		close(c)
	}
}

// ShardRange returns the i-th of `shards` contiguous ranges covering
// [0, total): sizes differ by at most one, larger shards first. Empty
// ranges (lo == hi) occur when total < shards.
func ShardRange(total, shards, i int) (lo, hi int) {
	if shards <= 0 || total <= 0 || i < 0 || i >= shards {
		return 0, 0
	}
	base, rem := total/shards, total%shards
	lo = i * base
	if i < rem {
		lo += i
	} else {
		lo += rem
	}
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}
