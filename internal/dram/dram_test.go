package dram

import (
	"testing"
	"testing/quick"

	"nodecap/internal/simtime"
)

func std() Config {
	return Config{RowHitNanos: 50, RowMissNanos: 65, Banks: 8, RowBytes: 8192}
}

func TestValidate(t *testing.T) {
	if err := std().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{RowHitNanos: 0, RowMissNanos: 65, Banks: 8, RowBytes: 8192},
		{RowHitNanos: 70, RowMissNanos: 65, Banks: 8, RowBytes: 8192}, // miss < hit
		{RowHitNanos: 50, RowMissNanos: 65, Banks: 3, RowBytes: 8192},
		{RowHitNanos: 50, RowMissNanos: 65, Banks: 8, RowBytes: 1000},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRowBufferHitAndMiss(t *testing.T) {
	d := New(std())
	// First touch of a row: miss.
	if lat := d.Access(0, 0x0000, false); lat != simtime.FromNanos(65) {
		t.Errorf("cold access latency = %v", lat)
	}
	// Same row: hit.
	if lat := d.Access(0, 0x1000, false); lat != simtime.FromNanos(50) {
		t.Errorf("row-hit latency = %v", lat)
	}
	// Different row, same bank (banks=8, rows interleave by row index):
	// row 0 and row 8 share bank 0.
	if lat := d.Access(0, uint64(8*8192), false); lat != simtime.FromNanos(65) {
		t.Errorf("row-conflict latency = %v", lat)
	}
	// Row 0 is now closed in bank 0.
	if lat := d.Access(0, 0x0000, false); lat != simtime.FromNanos(65) {
		t.Errorf("reopened-row latency = %v", lat)
	}
	s := d.Stats()
	if s.RowHits != 1 || s.RowMisses != 3 || s.Reads != 4 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBanksIndependent(t *testing.T) {
	d := New(std())
	// Rows 0..7 land in banks 0..7; all can stay open at once.
	for r := 0; r < 8; r++ {
		d.Access(0, uint64(r*8192), false)
	}
	d.ResetStats()
	for r := 0; r < 8; r++ {
		d.Access(0, uint64(r*8192), false)
	}
	if s := d.Stats(); s.RowHits != 8 || s.RowMisses != 0 {
		t.Errorf("stats after warm pass = %+v", s)
	}
}

func TestWritesCounted(t *testing.T) {
	d := New(std())
	d.Access(0, 0, true)
	d.Access(0, 0, false)
	if s := d.Stats(); s.Writes != 1 || s.Reads != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestUngatedNoStall(t *testing.T) {
	d := New(std())
	for now := simtime.Duration(0); now < 10*simtime.Millisecond; now += 137 * simtime.Microsecond {
		d.Access(now, 0, false)
	}
	if s := d.Stats(); s.GateStalls != 0 {
		t.Errorf("ungated access stalled: %+v", s)
	}
}

func TestGateStallInOffWindow(t *testing.T) {
	d := New(std())
	d.SetGate(GateConfig{Period: 100 * simtime.Microsecond, OnFraction: 0.25, WakeNanos: 1000})
	// On window: [0, 25 µs). Access at 10 µs: no stall.
	lat := d.Access(10*simtime.Microsecond, 0, false)
	if lat != simtime.FromNanos(65) {
		t.Errorf("on-window latency = %v", lat)
	}
	// Off window: access at 50 µs waits until 100 µs + 1 µs wake.
	lat = d.Access(50*simtime.Microsecond, 0x100000, false)
	want := 50*simtime.Microsecond + simtime.Microsecond + simtime.FromNanos(65)
	if lat != want {
		t.Errorf("off-window latency = %v, want %v", lat, want)
	}
	if s := d.Stats(); s.GateStalls != 1 || s.GateStallTime != 50*simtime.Microsecond+simtime.Microsecond {
		t.Errorf("stall stats = %+v", s)
	}
}

func TestSetGateClamps(t *testing.T) {
	d := New(std())
	d.SetGate(GateConfig{Period: -5, OnFraction: 0})
	g := d.Gate()
	if g.OnFraction != 0.01 || g.Period != simtime.Millisecond {
		t.Errorf("clamped gate = %+v", g)
	}
	d.SetGate(GateConfig{Period: simtime.Millisecond, OnFraction: 7})
	if d.Gate().OnFraction != 1 {
		t.Errorf("OnFraction not clamped to 1: %+v", d.Gate())
	}
}

func TestPeakLatency(t *testing.T) {
	d := New(std())
	if got := d.PeakLatency(); got != simtime.FromNanos(65) {
		t.Errorf("ungated PeakLatency = %v", got)
	}
	d.SetGate(GateConfig{Period: 100 * simtime.Microsecond, OnFraction: 0.5, WakeNanos: 500})
	want := 50*simtime.Microsecond + simtime.FromNanos(500) + simtime.FromNanos(65)
	if got := d.PeakLatency(); got != want {
		t.Errorf("gated PeakLatency = %v, want %v", got, want)
	}
}

// TestGatingOnlyAddsLatency: for any arrival time, the gated latency is
// at least the ungated latency and at most ungated + off-window + wake.
func TestGatingOnlyAddsLatency(t *testing.T) {
	f := func(nowMicros uint32, addr uint64) bool {
		now := simtime.Duration(nowMicros) * simtime.Microsecond
		gated := New(std())
		gated.SetGate(GateConfig{Period: 100 * simtime.Microsecond, OnFraction: 0.1, WakeNanos: 2000})
		plain := New(std())
		lg := gated.Access(now, addr, false)
		lp := plain.Access(now, addr, false)
		maxExtra := 90*simtime.Microsecond + simtime.FromNanos(2000)
		return lg >= lp && lg <= lp+maxExtra
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAccountingInvariant: hits + misses == reads + writes.
func TestAccountingInvariant(t *testing.T) {
	f := func(addrs []uint32, writes []bool) bool {
		d := New(std())
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			d.Access(0, uint64(a), w)
		}
		s := d.Stats()
		return s.RowHits+s.RowMisses == s.Reads+s.Writes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeepGatingProducesHugeAverages(t *testing.T) {
	// The Figure 4 mechanism: with a 1% duty cycle, average latency
	// over uniformly spread arrivals is orders of magnitude above 65ns.
	d := New(std())
	d.SetGate(GateConfig{Period: simtime.Millisecond, OnFraction: 0.01, WakeNanos: 5000})
	var total simtime.Duration
	n := 0
	for now := simtime.Duration(0); now < 50*simtime.Millisecond; now += 97 * simtime.Microsecond {
		total += d.Access(now, uint64(n)*64, false)
		n++
	}
	avg := total.Nanos() / float64(n)
	if avg < 10_000 { // >= 10 µs average vs 65 ns ungated
		t.Errorf("deep-gated average = %.0f ns, want >= 10000", avg)
	}
}

func TestLatencyScale(t *testing.T) {
	d := New(std())
	d.SetGate(GateConfig{Period: simtime.Millisecond, OnFraction: 1, LatencyScale: 2.5})
	if lat := d.Access(0, 0, false); lat != simtime.FromNanos(65*2.5) {
		t.Errorf("scaled cold latency = %v", lat)
	}
	if lat := d.Access(0, 0x100, false); lat != simtime.FromNanos(50*2.5) {
		t.Errorf("scaled row-hit latency = %v", lat)
	}
	if got := d.PeakLatency(); got != simtime.FromNanos(65*2.5) {
		t.Errorf("scaled PeakLatency = %v", got)
	}
}

func TestLatencyScaleBelowOneClamped(t *testing.T) {
	d := New(std())
	d.SetGate(GateConfig{Period: simtime.Millisecond, OnFraction: 1, LatencyScale: 0.1})
	if lat := d.Access(0, 0, false); lat != simtime.FromNanos(65) {
		t.Errorf("sub-1 scale not clamped: %v", lat)
	}
}
