// Package dram models main-memory timing: an open-page DRAM with
// per-bank row buffers, plus memory-controller duty-cycle gating.
//
// Duty-cycle gating is the "memory gating" the paper names as the
// likely cause of the enormous, erratic access times its stride probe
// measured under a 120 W cap (Figure 4): the controller is powered for
// only a fraction of each gating period, and an access arriving in the
// off window stalls until the next on window. Because the stall depends
// on the arrival phase, average access times become both large and
// inconsistent — exactly the behaviour the authors could not reconcile
// with a static hierarchy configuration.
package dram

import (
	"fmt"
	"math/bits"

	"nodecap/internal/simtime"
)

// Config describes the DRAM geometry and timing.
type Config struct {
	// RowHitNanos and RowMissNanos are the access latencies for
	// row-buffer hits and misses. The paper's uncapped probe measured
	// ~60 ns to main memory; a 50/65 split around that reproduces it
	// for mixed workloads.
	RowHitNanos  float64
	RowMissNanos float64
	Banks        int // power of two
	RowBytes     int // power of two; bytes covered by one row buffer
}

// Validate reports an error for unrealizable geometry.
func (c Config) Validate() error {
	if c.RowHitNanos <= 0 || c.RowMissNanos < c.RowHitNanos {
		return fmt.Errorf("dram: bad latencies hit=%v miss=%v", c.RowHitNanos, c.RowMissNanos)
	}
	if c.Banks <= 0 || bits.OnesCount(uint(c.Banks)) != 1 {
		return fmt.Errorf("dram: banks %d not a positive power of two", c.Banks)
	}
	if c.RowBytes <= 0 || bits.OnesCount(uint(c.RowBytes)) != 1 {
		return fmt.Errorf("dram: row size %d not a positive power of two", c.RowBytes)
	}
	return nil
}

// GateConfig describes one memory-gating level. Two mechanisms
// compose: LatencyScale models running the memory interface at a
// reduced I/O rate (every access uniformly slower), and
// OnFraction < 1 models duty-cycling the controller (accesses arriving
// in the off window stall until the next on window).
type GateConfig struct {
	// Period is the length of one duty cycle.
	Period simtime.Duration
	// OnFraction in (0,1] is the powered fraction of each period.
	// 1 means no duty cycling.
	OnFraction float64
	// WakeNanos is charged when an access has to wait for the
	// controller to power back up (PLL relock, DLL resync).
	WakeNanos float64
	// LatencyScale >= 1 multiplies the DRAM access latencies,
	// modelling a down-clocked memory interface. Values below 1 are
	// treated as 1.
	LatencyScale float64
}

// Ungated is the gating level of an uncapped platform.
var Ungated = GateConfig{Period: simtime.Millisecond, OnFraction: 1.0, LatencyScale: 1.0}

// Stats counts DRAM activity.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	// GateStalls counts accesses that arrived in an off window;
	// GateStallTime is the total time they spent waiting.
	GateStalls    uint64
	GateStallTime simtime.Duration
}

// DRAM is the main-memory timing model.
type DRAM struct {
	cfg      Config
	gate     GateConfig
	openRows []int64 // per-bank open row, -1 when none
	stats    Stats
}

// New builds a DRAM model, panicking on invalid static geometry.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &DRAM{cfg: cfg, gate: Ungated, openRows: make([]int64, cfg.Banks)}
	for i := range d.openRows {
		d.openRows[i] = -1
	}
	return d
}

// Config returns the DRAM geometry.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a snapshot of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// ResetStats zeroes the counters, leaving row buffers open.
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// Gate returns the current gating level.
func (d *DRAM) Gate() GateConfig { return d.gate }

// SetGate installs a duty-cycle gating level. OnFraction is clamped to
// (0.01, 1]; a zero-duty controller would deadlock the machine.
func (d *DRAM) SetGate(g GateConfig) {
	if g.OnFraction > 1 {
		g.OnFraction = 1
	}
	if g.OnFraction < 0.01 {
		g.OnFraction = 0.01
	}
	if g.Period <= 0 {
		g.Period = simtime.Millisecond
	}
	if g.LatencyScale < 1 {
		g.LatencyScale = 1
	}
	d.gate = g
}

// Access times one memory access that starts at the absolute simulated
// time now, returning its total latency. write selects the direction;
// both directions cost the same in this model (write buffering is
// folded into the row-buffer behaviour).
func (d *DRAM) Access(now simtime.Duration, addr uint64, write bool) simtime.Duration {
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}

	stall := d.gateStall(now)
	if stall > 0 {
		d.stats.GateStalls++
		d.stats.GateStallTime += stall
	}

	row := int64(addr / uint64(d.cfg.RowBytes))
	bank := int(uint(row) & uint(d.cfg.Banks-1))
	var lat float64
	if d.openRows[bank] == row {
		d.stats.RowHits++
		lat = d.cfg.RowHitNanos
	} else {
		d.stats.RowMisses++
		d.openRows[bank] = row
		lat = d.cfg.RowMissNanos
	}
	if d.gate.LatencyScale > 1 {
		lat *= d.gate.LatencyScale
	}
	return stall + simtime.FromNanos(lat)
}

// gateStall reports how long an access arriving at now must wait for
// the controller's next on window (zero when ungated or arriving
// inside an on window).
func (d *DRAM) gateStall(now simtime.Duration) simtime.Duration {
	if d.gate.OnFraction >= 1 {
		return 0
	}
	period := d.gate.Period
	onLen := simtime.Duration(float64(period) * d.gate.OnFraction)
	phase := now % period
	if phase < onLen {
		return 0
	}
	wait := period - phase
	return wait + simtime.FromNanos(d.gate.WakeNanos)
}

// PeakLatency reports the worst-case single-access latency at the
// current gating level, used by capacity planning in examples.
func (d *DRAM) PeakLatency() simtime.Duration {
	scale := d.gate.LatencyScale
	if scale < 1 {
		scale = 1
	}
	worst := simtime.FromNanos(d.cfg.RowMissNanos * scale)
	if d.gate.OnFraction < 1 {
		offLen := simtime.Duration(float64(d.gate.Period) * (1 - d.gate.OnFraction))
		worst += offLen + simtime.FromNanos(d.gate.WakeNanos)
	}
	return worst
}
