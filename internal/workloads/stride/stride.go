// Package stride implements the memory-stride microbenchmark from
// Hennessy & Patterson that the paper uses to probe the memory
// hierarchy (its Figures 3 and 4): a nested loop that reads and writes
// arrays of increasing size at increasing strides, from which cache
// sizes, block sizes, associativities, and per-level access times can
// be inferred.
//
// Run under no cap the probe recovers the platform's geometry (32 KB
// L1, 256 KB L2, 20 MB L3, 64 B lines, ~1.5/3.5/8.6/60 ns access
// times). Run under a 120 W cap it reproduces the paper's Figure 4:
// every level's apparent access time inflates, and values become
// erratic and non-monotonic because the BMC is dynamically dithering
// P-states and gating levels while the loop runs.
package stride

import (
	"fmt"

	"nodecap/internal/machine"
	"nodecap/internal/simtime"
)

// Config sizes the probe.
type Config struct {
	// MinArrayBytes and MaxArrayBytes bound the array-size sweep
	// (powers of two, inclusive). The paper sweeps 4 KB to 64 MB.
	MinArrayBytes, MaxArrayBytes int
	// MinStrideBytes is the smallest stride (the paper uses 8 B);
	// strides sweep by powers of two up to half the array size.
	MinStrideBytes int
	// TouchesPerPoint is the number of measured read-modify-write
	// touches per (array, stride) point.
	TouchesPerPoint int
	// WarmCapTouches bounds the cache-warming pass per point. The
	// warm pass touches the array at line granularity, so the default
	// of 512 Ki touches covers 32 MiB — enough to fully warm anything
	// that fits the L3 and to flush it for anything that does not.
	WarmCapTouches int
}

// DefaultConfig matches the paper's sweep.
func DefaultConfig() Config {
	return Config{
		MinArrayBytes:   4 << 10,
		MaxArrayBytes:   64 << 20,
		MinStrideBytes:  8,
		TouchesPerPoint: 4096,
		WarmCapTouches:  512 << 10,
	}
}

// CappedConfig is the sweep used for the 120 W run (Figure 4): deep
// memory gating stretches every miss by tens of microseconds, so the
// probe trims per-point work to keep total simulated time sane while
// preserving the per-level shape.
func CappedConfig() Config {
	return Config{
		MinArrayBytes:   4 << 10,
		MaxArrayBytes:   64 << 20,
		MinStrideBytes:  8,
		TouchesPerPoint: 512,
		WarmCapTouches:  128 << 10,
	}
}

// SmallConfig is a reduced sweep for unit tests.
func SmallConfig() Config {
	return Config{
		MinArrayBytes:   4 << 10,
		MaxArrayBytes:   1 << 20,
		MinStrideBytes:  8,
		TouchesPerPoint: 1024,
		WarmCapTouches:  64 << 10,
	}
}

// Point is one measured (array size, stride) cell.
type Point struct {
	ArrayBytes     int
	StrideBytes    int
	AvgAccessNanos float64
}

// Probe is the runnable microbenchmark. It implements
// machine.Workload; after RunWorkload the measurements are available
// from Points.
type Probe struct {
	cfg    Config
	points []Point
}

// New builds a probe.
func New(cfg Config) *Probe {
	if cfg.TouchesPerPoint <= 0 {
		cfg.TouchesPerPoint = 4096
	}
	return &Probe{cfg: cfg}
}

// Name implements machine.Workload.
func (p *Probe) Name() string { return "stride-probe" }

// CodePages implements machine.Workload: the probe is a tiny kernel.
func (p *Probe) CodePages() int { return 4 }

// Points returns the measurements, valid after Run.
func (p *Probe) Points() []Point { return p.points }

// Run implements machine.Workload.
func (p *Probe) Run(m *machine.Machine) {
	c := p.cfg
	p.points = p.points[:0]
	base := m.Alloc(c.MaxArrayBytes)

	// Let the capping controller converge against load before
	// measuring, as a human operator waits for steady state: spin on a
	// warm region.
	settleEnd := m.Now() + 4*simtime.Millisecond
	for i := 0; m.Now() < settleEnd; i++ {
		m.Load(base + uint64(i%512)*64)
		m.Compute(20, 16)
	}

	for size := c.MinArrayBytes; size <= c.MaxArrayBytes; size *= 2 {
		for stride := c.MinStrideBytes; stride <= size/2; stride *= 2 {
			p.points = append(p.points, p.measure(m, base, size, stride))
		}
	}
}

// measure times read-modify-write touches of the size-byte array at
// the given stride.
//
// First a warm pass walks the whole array at line granularity (bounded
// by WarmCapTouches), putting the array into the same cache state a
// long-running loop would see: arrays that fit a level become resident
// there; larger arrays flush it. The measured pass then touches at the
// true stride, cycling over the array (or, when one cycle exceeds the
// touch budget, over a prefix — whose residency the warm pass has
// already made representative of steady state).
func (p *Probe) measure(m *machine.Machine, base uint64, size, stride int) Point {
	lineStride := stride
	if lineStride < 64 {
		lineStride = 64
	}
	warm := size / lineStride
	if warm > p.cfg.WarmCapTouches {
		warm = p.cfg.WarmCapTouches
	}
	for i := 0; i < warm; i++ {
		m.Load(base + uint64(i*lineStride))
		m.Compute(2, 2)
	}

	n := size / stride // touches per full cycle
	touches := p.cfg.TouchesPerPoint
	idx := 0
	start := m.Now()
	for i := 0; i < touches; i++ {
		addr := base + uint64(idx*stride)
		m.Load(addr)
		m.Store(addr)
		m.Compute(2, 2) // index update and branch
		idx++
		if idx >= n {
			idx = 0
		}
	}
	elapsed := m.Now() - start
	// Each touch is two accesses (read + write), as H&P count them.
	avg := elapsed.Nanos() / float64(2*touches)
	return Point{ArrayBytes: size, StrideBytes: stride, AvgAccessNanos: avg}
}

// SeriesByArray groups points into per-array-size series ordered by
// stride — the curves of Figures 3 and 4.
func SeriesByArray(points []Point) map[int][]Point {
	out := make(map[int][]Point)
	for _, pt := range points {
		out[pt.ArrayBytes] = append(out[pt.ArrayBytes], pt)
	}
	return out
}

// InferredGeometry extracts the hierarchy parameters the paper reads
// off Figure 3: capacity boundaries where the minimum-stride curve
// jumps, and the plateau access times per level.
type InferredGeometry struct {
	L1Bytes, L2Bytes, L3Bytes int
	L1Nanos, L2Nanos, L3Nanos float64
	MemNanos                  float64
}

// Infer analyzes a no-cap probe result. It uses each array size's
// smallest-stride average (sequential streaming amortizes line fills)
// for capacity boundaries, classifying each size by its fastest-level
// plateau.
func Infer(points []Point) (InferredGeometry, error) {
	series := SeriesByArray(points)
	if len(series) == 0 {
		return InferredGeometry{}, fmt.Errorf("stride: no points")
	}
	// For capacity detection use exactly one touch per line (stride
	// 64): it defeats spatial amortization while touching every line
	// of the array, so the distinct-line footprint equals the array
	// size. Larger strides shrink the footprint (and can drop whole
	// arrays back into the L1), hiding the capacity cliffs.
	level := func(size int) (float64, bool) {
		for _, pt := range series[size] {
			if pt.StrideBytes == 64 {
				return pt.AvgAccessNanos, true
			}
		}
		return 0, false
	}
	var g InferredGeometry
	prev := -1.0
	var sizes []int
	for s := range series {
		sizes = append(sizes, s)
	}
	sortInts(sizes)
	var plateaus []float64
	var bounds []int
	for _, s := range sizes {
		v, ok := level(s)
		if !ok {
			continue
		}
		if prev > 0 && v > prev*1.4 {
			bounds = append(bounds, s/2) // previous size was the last to fit
			plateaus = append(plateaus, prev)
		}
		prev = v
	}
	plateaus = append(plateaus, prev)
	if len(bounds) < 3 {
		return g, fmt.Errorf("stride: found %d capacity boundaries, want 3", len(bounds))
	}
	g.L1Bytes, g.L2Bytes, g.L3Bytes = bounds[0], bounds[1], bounds[2]
	g.L1Nanos, g.L2Nanos, g.L3Nanos = plateaus[0], plateaus[1], plateaus[2]
	g.MemNanos = plateaus[len(plateaus)-1]
	return g, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
