package stride

import (
	"testing"

	"nodecap/internal/machine"
)

func runProbe(t *testing.T, cfg Config, capWatts float64) []Point {
	t.Helper()
	p := New(cfg)
	m := machine.New(machine.Romley())
	m.SetPolicy(capWatts)
	m.RunWorkload(p)
	return p.Points()
}

func find(points []Point, size, stride int) (Point, bool) {
	for _, pt := range points {
		if pt.ArrayBytes == size && pt.StrideBytes == stride {
			return pt, true
		}
	}
	return Point{}, false
}

func TestSweepCoversConfiguredGrid(t *testing.T) {
	pts := runProbe(t, SmallConfig(), 0)
	// Sizes 4K..1M (9), strides 8..size/2.
	want := 0
	for size := 4 << 10; size <= 1<<20; size *= 2 {
		for stride := 8; stride <= size/2; stride *= 2 {
			want++
		}
	}
	if len(pts) != want {
		t.Errorf("points = %d, want %d", len(pts), want)
	}
	if _, ok := find(pts, 4<<10, 8); !ok {
		t.Error("missing smallest point")
	}
	if _, ok := find(pts, 1<<20, 512<<10); !ok {
		t.Error("missing largest point")
	}
}

// TestL1PlateauAndCapacityCliff: a 16 KiB array is L1-resident at
// line stride (~1.5-1.9 ns); a 64 KiB array at line stride has twice
// the L1's line footprint and must run at L2 speed.
func TestL1PlateauAndCapacityCliff(t *testing.T) {
	pts := runProbe(t, SmallConfig(), 0)
	small, _ := find(pts, 16<<10, 64)
	if small.AvgAccessNanos < 1.2 || small.AvgAccessNanos > 2.4 {
		t.Errorf("L1-resident access = %.2f ns, want ~1.5-1.9", small.AvgAccessNanos)
	}
	big, _ := find(pts, 64<<10, 64)
	if big.AvgAccessNanos < 2.6 || big.AvgAccessNanos > 4.6 {
		t.Errorf("L2-level access = %.2f ns, want ~3-4", big.AvgAccessNanos)
	}
	if big.AvgAccessNanos < small.AvgAccessNanos*1.4 {
		t.Errorf("no capacity cliff: %.2f vs %.2f", big.AvgAccessNanos, small.AvgAccessNanos)
	}
}

// TestSpatialLocalityAtSmallStride: at stride 8 only one touch in
// eight misses the line, so a >L1 array still averages well below the
// full L2 latency — the block-size signature of Figure 3.
func TestSpatialLocalityAtSmallStride(t *testing.T) {
	pts := runProbe(t, SmallConfig(), 0)
	seq, _ := find(pts, 256<<10, 8)
	jump, _ := find(pts, 256<<10, 256)
	if seq.AvgAccessNanos >= jump.AvgAccessNanos {
		t.Errorf("sequential (%.2f ns) not cheaper than line-stride (%.2f ns)",
			seq.AvgAccessNanos, jump.AvgAccessNanos)
	}
}

// TestInferRecoversGeometry runs the full sweep and checks the
// inferences the paper draws from Figure 3.
func TestInferRecoversGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	pts := runProbe(t, DefaultConfig(), 0)
	g, err := Infer(pts)
	if err != nil {
		t.Fatal(err)
	}
	if g.L1Bytes != 32<<10 {
		t.Errorf("inferred L1 = %d, want 32 KiB", g.L1Bytes)
	}
	if g.L2Bytes != 256<<10 {
		t.Errorf("inferred L2 = %d, want 256 KiB", g.L2Bytes)
	}
	// The paper: "L3 cache size is between 16MB and 32MB (actual 20MB)".
	if g.L3Bytes != 16<<20 {
		t.Errorf("inferred L3 = %d, want 16 MiB (last power of two that fits)", g.L3Bytes)
	}
	if g.L1Nanos < 1.2 || g.L1Nanos > 2.4 {
		t.Errorf("L1 time = %.2f ns, want ~1.5-1.9", g.L1Nanos)
	}
	if g.L2Nanos < 2.6 || g.L2Nanos > 4.6 {
		t.Errorf("L2 time = %.2f ns, want ~3-4", g.L2Nanos)
	}
	if g.L3Nanos < 4.5 || g.L3Nanos > 11 {
		t.Errorf("L3 time = %.2f ns, want ~5-9", g.L3Nanos)
	}
	if g.MemNanos < 25 || g.MemNanos > 110 {
		t.Errorf("memory time = %.2f ns, want ~35-90", g.MemNanos)
	}
}

// TestCappedProbeInflatesAndPerturbs reproduces Figure 4's qualitative
// findings at a 120 W cap: every level's access time rises, and the
// per-stride pattern becomes erratic.
func TestCappedProbeInflatesAndPerturbs(t *testing.T) {
	if testing.Short() {
		t.Skip("capped sweep in -short mode")
	}
	cfg := SmallConfig()
	cfg.MaxArrayBytes = 8 << 20 // exceed the 4 MiB way-gated L3
	cfg.TouchesPerPoint = 512
	base := runProbe(t, cfg, 0)
	capped := runProbe(t, cfg, 120)

	// L1-resident work slows at least by the frequency ratio (2.25x).
	b, _ := find(base, 16<<10, 64)
	c, _ := find(capped, 16<<10, 64)
	if c.AvgAccessNanos < 2*b.AvgAccessNanos {
		t.Errorf("L1-level access under cap = %.2f ns vs %.2f base; want >= 2x", c.AvgAccessNanos, b.AvgAccessNanos)
	}
	// An 8 MiB array fits the full L3 (8.6 ns level) but not the
	// way-gated one: under the cap its misses go to the duty-cycled
	// DRAM and inflate by orders of magnitude.
	bm, _ := find(base, 8<<20, 64)
	cm, _ := find(capped, 8<<20, 64)
	if cm.AvgAccessNanos < 20*bm.AvgAccessNanos {
		t.Errorf("deep-level access under cap = %.2f ns vs %.2f base; want >= 20x", cm.AvgAccessNanos, bm.AvgAccessNanos)
	}
}

func TestSeriesByArrayGroups(t *testing.T) {
	pts := []Point{
		{ArrayBytes: 4096, StrideBytes: 8},
		{ArrayBytes: 4096, StrideBytes: 16},
		{ArrayBytes: 8192, StrideBytes: 8},
	}
	s := SeriesByArray(pts)
	if len(s) != 2 || len(s[4096]) != 2 || len(s[8192]) != 1 {
		t.Errorf("grouping wrong: %v", s)
	}
}

func TestInferRejectsEmpty(t *testing.T) {
	if _, err := Infer(nil); err == nil {
		t.Error("Infer(nil) succeeded")
	}
}

func TestProbeWorkloadInterface(t *testing.T) {
	p := New(SmallConfig())
	if p.Name() != "stride-probe" || p.CodePages() <= 0 {
		t.Error("workload surface wrong")
	}
	var _ machine.Workload = p
}
