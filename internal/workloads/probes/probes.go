// Package probes implements the second item of the paper's future
// work: "determine, using microbenchmarks, what techniques other than
// DVFS are being used to manage power consumption".
//
// Each probe is a short targeted kernel that infers one architectural
// parameter from timing alone, the way the paper's stride benchmark
// inferred hierarchy geometry:
//
//   - FrequencyProbe times a fixed cycle count → effective clock.
//   - CapacityProbe walks growing line footprints → a cache level's
//     effective capacity, and with the known set count its effective
//     way count (detects way gating).
//   - TLBReachProbe touches p distinct pages for growing p → the
//     effective data-TLB capacity (detects entry gating).
//   - MemoryGatingProbe samples isolated DRAM accesses → the latency
//     distribution's median and tail (detects interface down-clocking
//     and duty cycling).
//
// Detect runs them all and assembles a GatingReport — the diagnosis
// methodology the paper's authors wanted for their own platform.
package probes

import (
	"sort"

	"nodecap/internal/machine"
)

// FrequencyEstimate is the FrequencyProbe result.
type FrequencyEstimate struct {
	MHz float64
}

// FrequencyProbe times known cycle counts against the virtual clock.
// It reports the fastest of several segments: firmware interrupts and
// fetch stalls only ever add time, so the least-disturbed segment is
// the best clock estimate (the standard min-filter of timing
// microbenchmarks, essential under deep gating where stalls are large
// and bursty).
func FrequencyProbe(m *machine.Machine) FrequencyEstimate {
	const segCycles = 200_000
	best := 0.0
	for seg := 0; seg < 12; seg++ {
		start := m.Now()
		for i := 0; i < 10; i++ {
			m.Compute(segCycles/10, segCycles/10)
		}
		elapsed := m.Now() - start
		if elapsed <= 0 {
			continue
		}
		if mhz := float64(segCycles) / elapsed.Seconds() / 1e6; mhz > best {
			best = mhz
		}
	}
	return FrequencyEstimate{MHz: best}
}

// Level selects the cache a capacity probe targets.
type Level int

// Probe targets.
const (
	L1 Level = iota
	L2
	L3
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	default:
		return "L3"
	}
}

// CapacityEstimate is the CapacityProbe result.
type CapacityEstimate struct {
	Level Level
	// Bytes is the largest probed footprint that still runs at the
	// level's hit speed: the effective capacity.
	Bytes int
	// Ways converts capacity to effective associativity using the
	// level's set count (way gating shrinks capacity one way at a
	// time).
	Ways int
	// HitNanos is the plateau access time observed while fitting.
	HitNanos float64
}

// CapacityProbe measures a level's effective capacity by walking
// line-granularity footprints of w x (one way's worth) bytes for
// w = 1..ways+2 and classifying each against an L1 reference time
// (4 KiB walk): a cyclic LRU walk runs entirely at one level's speed,
// so the time-to-reference ratio names the level serving the walk, and
// the effective capacity is the largest footprint still served at or
// above the target level's speed. Ratios of cache levels are
// frequency-invariant (all cycle-based), so the probe works unchanged
// under DVFS. Contiguous footprints keep TLB pressure amortized and
// spread lines across all sets, so — unlike a same-set probe — the
// measurement survives inner-level and TLB interference.
func CapacityProbe(m *machine.Machine, level Level) CapacityEstimate {
	h := m.Hierarchy().Config()
	var wayBytes, ways int
	var maxRatio float64
	switch level {
	case L1:
		wayBytes, ways = h.L1D.SizeBytes/h.L1D.Ways, h.L1D.Ways
		maxRatio = 1.7 // above this the walk is L2-served
	case L2:
		wayBytes, ways = h.L2.SizeBytes/h.L2.Ways, h.L2.Ways
		maxRatio = 4.5 // above this the walk is L3-served
	default:
		wayBytes, ways = h.L3.SizeBytes/h.L3.Ways, h.L3.Ways
		maxRatio = 14 // above this the walk is DRAM-served
	}
	base := m.Alloc(wayBytes*(ways+3) + 4096)
	timeFootprint(m, base, 4096) // discard: absorbs machine cold-start
	ref := minFootprintTime(m, base, 4096, 3)

	est := CapacityEstimate{Level: level, HitNanos: ref}
	for w := 1; w <= ways+2; w++ {
		avg := minFootprintTime(m, base, w*wayBytes, 2)
		if avg > ref*maxRatio {
			return est
		}
		est.Bytes = w * wayBytes
		est.Ways = w
		est.HitNanos = avg
	}
	return est
}

// minFootprintTime min-filters timeFootprint over reps repetitions,
// discarding bursty firmware and fetch-stall noise.
func minFootprintTime(m *machine.Machine, base uint64, bytes, reps int) float64 {
	best := timeFootprint(m, base, bytes)
	for i := 1; i < reps; i++ {
		if v := timeFootprint(m, base, bytes); v < best {
			best = v
		}
	}
	return best
}

// timeFootprint walks bytes of contiguous lines repeatedly and reports
// the steady-state average access time.
func timeFootprint(m *machine.Machine, base uint64, bytes int) float64 {
	lines := bytes / 64
	// Full warm pass.
	for i := 0; i < lines; i++ {
		m.Load(base + uint64(i)*64)
	}
	rounds := 3
	if lines < 4096 {
		rounds = 16384 / lines
	}
	start := m.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < lines; i++ {
			m.Load(base + uint64(i)*64)
		}
	}
	elapsed := m.Now() - start
	return elapsed.Nanos() / float64(rounds*lines)
}

// TLBEstimate is the TLBReachProbe result.
type TLBEstimate struct {
	// Entries is the largest page count that cycles without
	// translation misses: the effective (possibly gated) capacity.
	Entries int
}

// TLBReachProbe measures effective DTLB capacity: touch p pages for
// growing p until the per-access time jumps by a page-walk. The line
// within each page varies so the accesses spread over L1 sets and the
// cliff is attributable to translation alone.
func TLBReachProbe(m *machine.Machine) TLBEstimate {
	h := m.Hierarchy().Config()
	maxPages := h.DTLB.Entries * 2
	base := m.Alloc(4096 * (maxPages + 1))

	est := TLBEstimate{}
	var plateau float64
	timePageCycle(m, base, 4) // discard: absorbs cold-start
	for p := 4; p <= maxPages; p *= 2 {
		avg := minPageCycleTime(m, base, p, 2)
		if plateau == 0 {
			plateau = avg
			est.Entries = p
			continue
		}
		if avg > plateau*1.8 {
			return est
		}
		est.Entries = p
	}
	return est
}

// minPageCycleTime min-filters timePageCycle over reps repetitions.
func minPageCycleTime(m *machine.Machine, base uint64, pages, reps int) float64 {
	best := timePageCycle(m, base, pages)
	for i := 1; i < reps; i++ {
		if v := timePageCycle(m, base, pages); v < best {
			best = v
		}
	}
	return best
}

func timePageCycle(m *machine.Machine, base uint64, pages int) float64 {
	addr := func(i int) uint64 {
		return base + uint64(i)*4096 + uint64(i%64)*64
	}
	for r := 0; r < 2; r++ {
		for i := 0; i < pages; i++ {
			m.Load(addr(i))
		}
	}
	// Constant total touches so cold-start fetch effects amortize
	// equally at every page count.
	rounds := 8192 / pages
	if rounds < 4 {
		rounds = 4
	}
	start := m.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < pages; i++ {
			m.Load(addr(i))
		}
	}
	elapsed := m.Now() - start
	return elapsed.Nanos() / float64(rounds*pages)
}

// MemoryEstimate is the MemoryGatingProbe result.
type MemoryEstimate struct {
	MedianNanos float64
	P95Nanos    float64
	// DutyCycled reports whether the tail indicates controller
	// off-windows (p95 far above the median).
	DutyCycled bool
	// Downclocked reports whether even the median is well above the
	// nominal DRAM latency.
	Downclocked bool
}

// nominalDRAMNanos is the uncapped row-miss latency the probe compares
// against (a real probe calibrates this uncapped first).
const nominalDRAMNanos = 65

// MemoryGatingProbe samples isolated cold DRAM accesses spread over
// time and characterizes the latency distribution.
func MemoryGatingProbe(m *machine.Machine) MemoryEstimate {
	const samples = 160
	base := m.Alloc(samples * 1 << 20)
	lat := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		// Space the accesses out so they land at varied controller
		// phases.
		m.Compute(3000, 2400)
		start := m.Now()
		m.Load(base + uint64(i)<<20)
		lat = append(lat, (m.Now() - start).Nanos())
	}
	sort.Float64s(lat)
	med := lat[len(lat)/2]
	p95 := lat[len(lat)*95/100]
	return MemoryEstimate{
		MedianNanos: med,
		P95Nanos:    p95,
		DutyCycled:  p95 > 10*med && p95 > 1000,
		Downclocked: med > nominalDRAMNanos*1.4,
	}
}

// GatingReport is the combined detection result.
type GatingReport struct {
	Frequency  FrequencyEstimate
	L1, L2, L3 CapacityEstimate
	DTLB       TLBEstimate
	Memory     MemoryEstimate
}

// DVFSOnly reports whether the platform state is explainable by
// frequency scaling alone: full capacities, full TLB reach, and
// nominal memory behaviour.
func (r GatingReport) DVFSOnly(m *machine.Machine) bool {
	h := m.Hierarchy().Config()
	return r.L1.Ways >= h.L1D.Ways &&
		r.L2.Ways >= h.L2.Ways &&
		r.L3.Ways >= h.L3.Ways-1 && // one-way probe resolution at 20 ways
		r.DTLB.Entries >= h.DTLB.Entries/2 && // power-of-two resolution
		!r.Memory.DutyCycled && !r.Memory.Downclocked
}

// Detect runs every probe against m. The probes themselves are the
// node's load while detection runs (marked via SetBusy), which is what
// makes in-situ diagnosis under an enforced cap possible: the
// controller reacts to the probes exactly as it reacts to an
// application.
func Detect(m *machine.Machine) GatingReport {
	m.SetBusy(true)
	defer m.SetBusy(false)
	var r GatingReport
	r.Frequency = FrequencyProbe(m)
	r.L1 = CapacityProbe(m, L1)
	r.L2 = CapacityProbe(m, L2)
	r.L3 = CapacityProbe(m, L3)
	r.DTLB = TLBReachProbe(m)
	r.Memory = MemoryGatingProbe(m)
	return r
}
