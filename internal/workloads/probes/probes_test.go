package probes

import (
	"testing"

	"nodecap/internal/machine"
)

func fresh() *machine.Machine { return machine.New(machine.Romley()) }

func TestFrequencyProbeUncapped(t *testing.T) {
	f := FrequencyProbe(fresh())
	if f.MHz < 2590 || f.MHz > 2710 {
		t.Errorf("uncapped frequency estimate = %.0f MHz, want ~2700", f.MHz)
	}
}

func TestFrequencyProbeAtForcedPState(t *testing.T) {
	m := fresh()
	m.Core().SetPState(15)
	f := FrequencyProbe(m)
	// Instruction-fetch stalls shave a couple of percent off the pure
	// compute rate, as they would on hardware.
	if f.MHz < 1140 || f.MHz > 1215 {
		t.Errorf("P15 frequency estimate = %.0f MHz, want ~1200", f.MHz)
	}
}

func TestCapacityProbeFullWays(t *testing.T) {
	m := fresh()
	for _, tc := range []struct {
		level Level
		want  int
	}{{L1, 8}, {L2, 8}, {L3, 20}} {
		est := CapacityProbe(m, tc.level)
		if est.Ways < tc.want-1 || est.Ways > tc.want+2 {
			t.Errorf("%v effective ways = %d, want ~%d", tc.level, est.Ways, tc.want)
		}
	}
}

func TestCapacityProbeDetectsGating(t *testing.T) {
	m := fresh()
	m.ForceGatingLevel(6) // L3: 4 ways, L2: 1 way, L1: 2 ways
	if est := CapacityProbe(m, L1); est.Ways > 3 {
		t.Errorf("gated L1 ways = %d, want ~2", est.Ways)
	}
	if est := CapacityProbe(m, L2); est.Ways > 2 {
		t.Errorf("gated L2 ways = %d, want ~1", est.Ways)
	}
	if est := CapacityProbe(m, L3); est.Ways < 3 || est.Ways > 6 {
		t.Errorf("gated L3 ways = %d, want ~4", est.Ways)
	}
}

func TestTLBReachProbe(t *testing.T) {
	m := fresh()
	est := TLBReachProbe(m)
	// Full DTLB is 64 entries; power-of-two sweep resolves 64.
	if est.Entries != 64 {
		t.Errorf("DTLB reach = %d pages, want 64", est.Entries)
	}
	m.ForceGatingLevel(6) // DTLB gated to 2 of 4 ways: 32 entries
	est = TLBReachProbe(m)
	if est.Entries != 32 {
		t.Errorf("gated DTLB reach = %d pages, want 32", est.Entries)
	}
}

func TestMemoryGatingProbe(t *testing.T) {
	m := fresh()
	est := MemoryGatingProbe(m)
	if est.DutyCycled || est.Downclocked {
		t.Errorf("uncapped memory flagged as gated: %+v", est)
	}
	if est.MedianNanos < 40 || est.MedianNanos > 110 {
		t.Errorf("uncapped median DRAM latency = %.1f ns", est.MedianNanos)
	}

	m2 := fresh()
	m2.ForceGatingLevel(9) // scale 2.5, duty 0.3
	est2 := MemoryGatingProbe(m2)
	if !est2.Downclocked {
		t.Errorf("down-clock undetected: %+v", est2)
	}
	if !est2.DutyCycled {
		t.Errorf("duty cycling undetected: %+v", est2)
	}
}

func TestDetectUncappedIsDVFSOnly(t *testing.T) {
	m := fresh()
	r := Detect(m)
	if !r.DVFSOnly(m) {
		t.Errorf("uncapped machine not DVFS-only: %+v", r)
	}
}

// TestDetectUnderLowCap reproduces the paper's conclusion with the
// methodology it asked for: at a 120 W cap, the probes reveal that far
// more than DVFS is engaged.
func TestDetectUnderLowCap(t *testing.T) {
	m := fresh()
	m.SetPolicy(120)
	// Let the controller reach the floor while the probes run (their
	// own activity is the load); run detection twice and keep the
	// second, converged report.
	Detect(m)
	r := Detect(m)
	if r.Frequency.MHz > 1300 {
		t.Errorf("frequency = %.0f MHz, want floor", r.Frequency.MHz)
	}
	if r.DVFSOnly(m) {
		t.Error("low-cap state reported as DVFS-only")
	}
	if r.L2.Ways >= 8 {
		t.Errorf("L2 ways = %d, expected gating", r.L2.Ways)
	}
	if !r.Memory.DutyCycled && !r.Memory.Downclocked {
		t.Errorf("memory gating undetected: %+v", r.Memory)
	}
}

// TestDetectUnderModerateCap: at 140 W only DVFS should be engaged.
func TestDetectUnderModerateCap(t *testing.T) {
	m := fresh()
	m.SetPolicy(140)
	Detect(m)
	r := Detect(m)
	if r.Frequency.MHz > 2500 || r.Frequency.MHz < 1200 {
		t.Errorf("frequency = %.0f MHz, want throttled", r.Frequency.MHz)
	}
	if !r.DVFSOnly(m) {
		t.Errorf("moderate cap engaged sub-DVFS techniques: L1=%d L2=%d L3=%d mem=%+v",
			r.L1.Ways, r.L2.Ways, r.L3.Ways, r.Memory)
	}
}
