// Package stereo implements the study's second workload: computer
// stereo matching using the simulated annealing algorithm, after the
// ARL Monte Carlo image-matching code of Shires (ARL-TR-667).
//
// The paper's input is a "three-layer wedding cake": a synthetic
// stereo pair whose disparity ground truth is three nested rectangular
// layers on a background. This package generates exactly that scene,
// then recovers the disparity field by Metropolis-style simulated
// annealing over a Potts-smoothed matching energy.
//
// The working set — left/right intensity images, census-transform
// features, and the disparity field — is sized to sit in the L3 cache
// but far exceed the L2, with essentially random pixel access from the
// annealing proposals. That is the access pattern behind the paper's
// stereo-specific findings: when low power caps shrink L2/L3
// associativity, this workload's L2 and L3 misses explode (Table II
// rows A8/A9: +203% and +371%) and execution time grows by up to
// 3,467%, far worse than the streaming SAR code.
package stereo

import (
	"math"
	"math/bits"

	"nodecap/internal/machine"
)

// Config sizes the workload.
type Config struct {
	// Width and Height are the image dimensions. The default working
	// set (512x512: two float32 images, two uint64 census fields, an
	// int32 disparity field) is ~6.3 MiB — L3-resident, L2-hostile.
	Width, Height int
	// MaxDisparity bounds the disparity search range.
	MaxDisparity int
	// Sweeps is the number of annealing sweeps (proposals per pixel).
	Sweeps int
	// Lambda weighs the smoothness term against the data term.
	Lambda float64
	// T0 and Alpha define the geometric cooling schedule.
	T0, Alpha float64
	// Seed drives scene texture and the annealing chain.
	Seed uint64
}

// DefaultConfig returns the full-size workload.
func DefaultConfig() Config {
	return Config{
		Width: 512, Height: 512,
		MaxDisparity: 12,
		Sweeps:       2,
		Lambda:       1.1,
		T0:           2.0,
		Alpha:        0.72,
		Seed:         1,
	}
}

// SmallConfig returns a reduced configuration for unit tests.
func SmallConfig() Config {
	return Config{
		Width: 96, Height: 96,
		MaxDisparity: 8,
		Sweeps:       3,
		Lambda:       1.1,
		T0:           2.0,
		Alpha:        0.7,
		Seed:         1,
	}
}

// Scene is a synthesized stereo-matching problem instance: the
// wedding-cake ground truth, the rendered image pair, and the census
// features. Both the sequential Workload and the multicore parallel
// variant consume Scenes.
type Scene struct {
	Cfg              Config
	Left, Right      []float32 // intensity images
	CensusL, CensusR []uint64  // census-transform features
	Truth            []int32   // ground-truth disparity
}

// Workload is a runnable stereo-matching instance.
type Workload struct {
	cfg Config

	scene *Scene
	disp  []int32 // current disparity estimate

	leftBase, rightBase, censusLBase, censusRBase, dispBase uint64

	rng uint64
}

// New builds the workload: scene synthesis plus feature extraction
// happen off-simulation (they model data that arrives with the task).
func New(cfg Config) *Workload {
	w := &Workload{cfg: cfg, rng: sceneSeed(cfg.Seed)}
	w.scene = synthesize(cfg, &w.rng)
	w.disp = make([]int32, cfg.Width*cfg.Height)
	return w
}

// NewScene synthesizes a problem instance without binding it to a
// sequential workload.
func NewScene(cfg Config) *Scene {
	rng := sceneSeed(cfg.Seed)
	return synthesize(cfg, &rng)
}

func sceneSeed(seed uint64) uint64 {
	return seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
}

// Name implements machine.Workload. The paper labels this workload
// "Stereo Matching w/ simulated annealing".
func (w *Workload) Name() string { return "Stereo Matching" }

// CodePages implements machine.Workload.
func (w *Workload) CodePages() int { return 40 }

// Disparity returns the recovered disparity field (row-major), valid
// after Run.
func (w *Workload) Disparity() []int32 { return w.disp }

// Truth returns the ground-truth disparity field.
func (w *Workload) Truth() []int32 { return w.scene.Truth }

func (w *Workload) rand64() uint64 {
	w.rng ^= w.rng >> 12
	w.rng ^= w.rng << 25
	w.rng ^= w.rng >> 27
	return w.rng * 2685821657736338717
}

func (w *Workload) randFloat() float64 {
	return float64(w.rand64()>>11) / float64(1<<53)
}

func randFrom(rng *uint64) float64 {
	*rng ^= *rng >> 12
	*rng ^= *rng << 25
	*rng ^= *rng >> 27
	return float64(*rng*2685821657736338717>>11) / float64(1<<53)
}

// wedding builds the three-layer wedding-cake ground truth: nested
// rectangles at increasing disparity over a zero-disparity background.
func wedding(c Config) []int32 {
	truth := make([]int32, c.Width*c.Height)
	layers := []struct {
		inset float64
		d     int32
	}{
		{0.15, int32(c.MaxDisparity / 3)},
		{0.28, int32(2 * c.MaxDisparity / 3)},
		{0.40, int32(c.MaxDisparity - 1)},
	}
	for y := 0; y < c.Height; y++ {
		for x := 0; x < c.Width; x++ {
			var d int32
			for _, l := range layers {
				x0 := int(float64(c.Width) * l.inset)
				y0 := int(float64(c.Height) * l.inset)
				if x >= x0 && x < c.Width-x0 && y >= y0 && y < c.Height-y0 {
					d = l.d
				}
			}
			truth[y*c.Width+x] = d
		}
	}
	return truth
}

// synthesize renders the left image as band-limited noise texture,
// warps it by the ground-truth disparity into the right image, and
// computes census features for both.
func synthesize(c Config, rng *uint64) *Scene {
	sc := &Scene{Cfg: c, Truth: wedding(c)}
	n := c.Width * c.Height
	sc.Left = make([]float32, n)
	sc.Right = make([]float32, n)

	// Textured left image: smoothed hash noise so windows are
	// discriminative.
	raw := make([]float32, n)
	for i := range raw {
		raw[i] = float32(randFrom(rng))
	}
	for y := 0; y < c.Height; y++ {
		for x := 0; x < c.Width; x++ {
			var s float32
			var k float32
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					xx, yy := x+dx, y+dy
					if xx >= 0 && xx < c.Width && yy >= 0 && yy < c.Height {
						s += raw[yy*c.Width+xx]
						k++
					}
				}
			}
			sc.Left[y*c.Width+x] = s / k
		}
	}
	// Right image: left warped by ground truth (right camera sees the
	// scene shifted left by d), with slight photometric noise.
	for y := 0; y < c.Height; y++ {
		for x := 0; x < c.Width; x++ {
			sx := x + int(sc.Truth[y*c.Width+x])
			if sx >= c.Width {
				sx = c.Width - 1
			}
			sc.Right[y*c.Width+x] = sc.Left[y*c.Width+sx] + float32(0.01*(randFrom(rng)-0.5))
		}
	}
	sc.CensusL = censusTransform(sc.Left, c.Width, c.Height)
	sc.CensusR = censusTransform(sc.Right, c.Width, c.Height)
	return sc
}

// censusTransform computes an 8-neighbour census signature per pixel:
// bit i set iff neighbour i is brighter than the centre.
func censusTransform(img []float32, wd, ht int) []uint64 {
	out := make([]uint64, wd*ht)
	offs := [8][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}}
	for y := 0; y < ht; y++ {
		for x := 0; x < wd; x++ {
			ctr := img[y*wd+x]
			var sig uint64
			for i, o := range offs {
				xx, yy := x+o[0], y+o[1]
				if xx >= 0 && xx < wd && yy >= 0 && yy < ht && img[yy*wd+xx] > ctr {
					sig |= 1 << uint(i)
				}
			}
			out[y*wd+x] = sig
		}
	}
	return out
}

// Run implements machine.Workload: annealing over the disparity field.
func (w *Workload) Run(m *machine.Machine) {
	c := w.cfg
	n := c.Width * c.Height
	w.leftBase = m.Alloc(n * 4)
	w.rightBase = m.Alloc(n * 4)
	w.censusLBase = m.Alloc(n * 8)
	w.censusRBase = m.Alloc(n * 8)
	w.dispBase = m.Alloc(n * 4)

	// Random initial state.
	for i := range w.disp {
		w.disp[i] = int32(w.rand64() % uint64(c.MaxDisparity))
		m.Store(w.dispBase + uint64(i)*4)
		m.Compute(3, 2)
	}

	temp := c.T0
	for sweep := 0; sweep < c.Sweeps; sweep++ {
		for p := 0; p < n; p++ {
			// Monte Carlo site selection: random pixel, random move.
			idx := int(w.rand64() % uint64(n))
			x, y := idx%c.Width, idx/c.Width
			cur := w.disp[idx]
			m.Load(w.dispBase + uint64(idx)*4)
			prop := w.propose(m, x, y, cur)
			if prop == cur {
				continue
			}
			dE := w.energyDelta(m, x, y, cur, prop)
			accept := dE <= 0
			if !accept && temp > 1e-6 {
				accept = w.randFloat() < math.Exp(-dE/temp)
			}
			m.Compute(22, 18) // RNG, exp, branch bookkeeping
			if accept {
				w.disp[idx] = prop
				m.Store(w.dispBase + uint64(idx)*4)
			}
		}
		temp *= c.Alpha
	}
}

// propose draws a candidate disparity using the Monte Carlo mixture
// that makes annealing practical on images: half uniform exploration,
// a quarter copying a random neighbour (propagates correct matches
// across smooth regions), a quarter local refinement of the current
// value.
func (w *Workload) propose(m *machine.Machine, x, y int, cur int32) int32 {
	c := w.cfg
	r := w.rand64()
	switch {
	case r%4 < 2:
		return int32(w.rand64() % uint64(c.MaxDisparity))
	case r%4 == 2:
		o := [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}[(r>>8)%4]
		xx, yy := x+o[0], y+o[1]
		if xx < 0 || xx >= c.Width || yy < 0 || yy >= c.Height {
			return cur
		}
		m.Load(w.dispBase + uint64(yy*c.Width+xx)*4)
		return w.disp[yy*c.Width+xx]
	default:
		d := cur + int32((r>>8)%3) - 1
		if d < 0 {
			d = 0
		}
		if d >= int32(c.MaxDisparity) {
			d = int32(c.MaxDisparity) - 1
		}
		return d
	}
}

// energyDelta evaluates the energy change of moving pixel (x,y) from
// disparity cur to prop: census-Hamming data term plus intensity
// residual, and a Potts smoothness term over the 4-neighbourhood.
func (w *Workload) energyDelta(m *machine.Machine, x, y int, cur, prop int32) float64 {
	c := w.cfg
	idx := y*c.Width + x
	dE := w.dataCost(m, x, y, prop) - w.dataCost(m, x, y, cur)
	for _, o := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		xx, yy := x+o[0], y+o[1]
		if xx < 0 || xx >= c.Width || yy < 0 || yy >= c.Height {
			continue
		}
		nd := w.disp[yy*c.Width+xx]
		m.Load(w.dispBase + uint64(yy*c.Width+xx)*4)
		if nd != prop {
			dE += c.Lambda
		}
		if nd != cur {
			dE -= c.Lambda
		}
	}
	_ = idx
	return dE
}

// dataCost scores disparity d at (x,y): Hamming distance between the
// left census signature and the right signature at the shifted
// position, plus the absolute intensity residual.
func (w *Workload) dataCost(m *machine.Machine, x, y int, d int32) float64 {
	c := w.cfg
	idx := y*c.Width + x
	rx := x - int(d)
	if rx < 0 {
		rx = 0
	}
	ridx := y*c.Width + rx
	m.Load(w.censusLBase + uint64(idx)*8)
	m.Load(w.censusRBase + uint64(ridx)*8)
	ham := bits.OnesCount64(w.scene.CensusL[idx] ^ w.scene.CensusR[ridx])
	m.Load(w.leftBase + uint64(idx)*4)
	m.Load(w.rightBase + uint64(ridx)*4)
	diff := math.Abs(float64(w.scene.Left[idx] - w.scene.Right[ridx]))
	m.Compute(9, 7)
	return float64(ham)*0.5 + diff*4
}

// ErrorRate reports the fraction of pixels whose recovered disparity
// differs from ground truth by more than one level; tests use it to
// confirm the matcher converges.
func (w *Workload) ErrorRate() float64 {
	bad := 0
	for i := range w.disp {
		d := w.disp[i] - w.scene.Truth[i]
		if d < -1 || d > 1 {
			bad++
		}
	}
	return float64(bad) / float64(len(w.disp))
}

// WorkingSetBytes reports the data-plane footprint.
func (w *Workload) WorkingSetBytes() int {
	n := w.cfg.Width * w.cfg.Height
	return n*4*2 + n*8*2 + n*4
}
