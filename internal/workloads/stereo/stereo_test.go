package stereo

import (
	"testing"

	"nodecap/internal/machine"
)

func runCfg(t *testing.T, cfg Config, capWatts float64) (*Workload, machine.RunResult) {
	t.Helper()
	w := New(cfg)
	mcfg := machine.Romley()
	mcfg.Seed = cfg.Seed
	m := machine.New(mcfg)
	m.SetPolicy(capWatts)
	res := m.RunWorkload(w)
	return w, res
}

func convergeCfg() Config {
	cfg := SmallConfig()
	cfg.Sweeps = 20
	return cfg
}

func TestWorkingSetSitsBetweenL2AndL3(t *testing.T) {
	w := New(DefaultConfig())
	ws := w.WorkingSetBytes()
	if ws <= 4<<20 {
		t.Errorf("working set %d B must exceed the 4 MiB way-gated L3", ws)
	}
	if ws >= 20<<20 {
		t.Errorf("working set %d B must fit the 20 MiB L3", ws)
	}
}

func TestWeddingCakeGroundTruth(t *testing.T) {
	w := New(SmallConfig())
	c := w.cfg
	// Background at the border, max layer at the centre.
	if w.Truth()[0] != 0 {
		t.Errorf("corner truth = %d, want 0", w.Truth()[0])
	}
	centre := w.Truth()[(c.Height/2)*c.Width+c.Width/2]
	if centre != int32(c.MaxDisparity-1) {
		t.Errorf("centre truth = %d, want %d", centre, c.MaxDisparity-1)
	}
	// Exactly four distinct levels (background + three layers).
	levels := map[int32]bool{}
	for _, d := range w.Truth() {
		levels[d] = true
	}
	if len(levels) != 4 {
		t.Errorf("wedding cake has %d levels, want 4", len(levels))
	}
}

func TestAnnealingConverges(t *testing.T) {
	w, _ := runCfg(t, convergeCfg(), 0)
	if er := w.ErrorRate(); er > 0.15 {
		t.Errorf("error rate after annealing = %.3f, want <= 0.15", er)
	}
}

func TestAnnealingImprovesOverRandomInit(t *testing.T) {
	// A random field mismatches by ~ (D-1)/D beyond one level; the
	// annealer must do much better than that.
	w, _ := runCfg(t, convergeCfg(), 0)
	random := 1.0 - 3.0/float64(w.cfg.MaxDisparity) // |d-t|<=1 covers ~3 of D values
	if er := w.ErrorRate(); er > random/3 {
		t.Errorf("error rate %.3f not well below random-ish %.3f", er, random)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := SmallConfig()
	a, _ := runCfg(t, cfg, 0)
	b, _ := runCfg(t, cfg, 0)
	for i := range a.Disparity() {
		if a.Disparity()[i] != b.Disparity()[i] {
			t.Fatalf("disparity differs at %d with identical seeds", i)
		}
	}
}

func TestResultIndependentOfCap(t *testing.T) {
	cfg := SmallConfig()
	a, ra := runCfg(t, cfg, 0)
	b, rb := runCfg(t, cfg, 125)
	for i := range a.Disparity() {
		if a.Disparity()[i] != b.Disparity()[i] {
			t.Fatalf("capped run changed the computation at %d", i)
		}
	}
	if rb.ExecTime <= ra.ExecTime {
		t.Errorf("capped run (%v) not slower than baseline (%v)", rb.ExecTime, ra.ExecTime)
	}
	if ra.Counters.InstructionsCommitted != rb.Counters.InstructionsCommitted {
		t.Error("committed instructions differ across caps")
	}
}

func TestCensusTransform(t *testing.T) {
	// 3x3 image with a bright centre: centre signature must be 0 (no
	// neighbour brighter); a dim corner must see brighter neighbours.
	img := []float32{
		0.1, 0.2, 0.1,
		0.2, 0.9, 0.2,
		0.1, 0.2, 0.1,
	}
	sig := censusTransform(img, 3, 3)
	if sig[4] != 0 {
		t.Errorf("bright centre census = %b, want 0", sig[4])
	}
	if sig[0] == 0 {
		t.Errorf("dim corner census = 0, want neighbours set")
	}
}

func TestNameAndCodePages(t *testing.T) {
	w := New(SmallConfig())
	if w.Name() != "Stereo Matching" {
		t.Errorf("Name = %q", w.Name())
	}
	if w.CodePages() <= 0 {
		t.Error("no code footprint")
	}
}

func TestL3MissesExplodeUnderDeepCapButNotForStream(t *testing.T) {
	// The paper's central contrast (Section IV-B): stereo's cache-
	// resident random working set suffers badly from way gating.
	cfg := SmallConfig()
	// Enlarge so the working set straddles the gated-L3 boundary the
	// way the full config straddles the real one. 416x416 -> ~4.8 MiB
	// working set vs 4 MiB gated L3.
	cfg.Width, cfg.Height = 416, 416
	cfg.Sweeps = 1
	base, rbase := runCfg(t, cfg, 0)
	_, rdeep := runCfg(t, cfg, 120)
	_ = base
	b := float64(rbase.Counters.L3Misses)
	d := float64(rdeep.Counters.L3Misses)
	if b == 0 {
		t.Fatal("no baseline L3 misses")
	}
	if d < 1.5*b {
		t.Errorf("L3 misses under 120 W cap = %.0f vs baseline %.0f; want large growth (paper: +371%%)", d, b)
	}
}

// TestGoldenDisparityChecksum guards the annealer's computation: for a
// fixed seed the recovered field is deterministic, so its checksum
// must be stable across runs.
func TestGoldenDisparityChecksum(t *testing.T) {
	sum := func() int64 {
		w, _ := runCfg(t, SmallConfig(), 0)
		var s int64
		for i, d := range w.Disparity() {
			s += int64(d) * int64(i%97+1)
		}
		return s
	}
	a, b := sum(), sum()
	if a != b {
		t.Errorf("disparity checksum drifted: %d vs %d", a, b)
	}
	if a == 0 {
		t.Error("all-zero disparity field")
	}
}
