package bursty

import (
	"testing"

	"nodecap/internal/machine"
)

func runBursty(t *testing.T, cfg Config, capWatts float64) (*Workload, machine.RunResult, *machine.Machine) {
	t.Helper()
	mcfg := machine.Romley()
	mcfg.Seed = cfg.Seed
	m := machine.New(mcfg)
	m.SetPolicy(capWatts)
	w := New(cfg)
	res := m.RunWorkload(w)
	return w, res, m
}

func TestPhaseMixCoversAllKinds(t *testing.T) {
	w, _, _ := runBursty(t, DefaultConfig(), 0)
	seen := map[PhaseKind]int{}
	for _, k := range w.Trace {
		seen[k]++
	}
	for _, k := range []PhaseKind{PhaseCompute, PhaseMemory, PhaseIdle} {
		if seen[k] == 0 {
			t.Errorf("no %v phases in %d-phase schedule", k, len(w.Trace))
		}
	}
}

func TestUnpredictablePowerSwings(t *testing.T) {
	// Uncapped: the meter must see both near-idle valleys and busy
	// peaks — the wide, unpredictable draw the paper's Discussion
	// targets.
	_, _, m := runBursty(t, DefaultConfig(), 0)
	p := Analyze(m.Meter(), 0)
	if p.PeakWatts < 145 {
		t.Errorf("peak = %.1f W, want busy-level", p.PeakWatts)
	}
	if p.MinWatts > 115 {
		t.Errorf("min = %.1f W, want near-idle valleys", p.MinWatts)
	}
	if p.PeakWatts-p.MinWatts < 35 {
		t.Errorf("swing = %.1f W, want wide", p.PeakWatts-p.MinWatts)
	}
}

func TestCapHoldsPeakUnderBudget(t *testing.T) {
	const budget = 135
	uncapped, _, mu := runBursty(t, DefaultConfig(), 0)
	_ = uncapped
	pu := Analyze(mu.Meter(), budget)
	if pu.OverBudgetFraction < 0.10 {
		t.Fatalf("uncapped workload only exceeds a %d W budget %.0f%% of the time; scenario too easy",
			budget, pu.OverBudgetFraction*100)
	}

	_, _, mc := runBursty(t, DefaultConfig(), budget)
	pc := Analyze(mc.Meter(), budget)
	// The controller needs a convergence transient and dithers near
	// the cap, so allow a small residual.
	if pc.OverBudgetFraction > pu.OverBudgetFraction/3 {
		t.Errorf("capped over-budget fraction %.2f not well below uncapped %.2f",
			pc.OverBudgetFraction, pu.OverBudgetFraction)
	}
	if pc.PeakWatts > pu.PeakWatts {
		t.Errorf("capped peak %.1f W above uncapped %.1f W", pc.PeakWatts, pu.PeakWatts)
	}
}

func TestCapCostsTime(t *testing.T) {
	_, base, _ := runBursty(t, DefaultConfig(), 0)
	_, capped, _ := runBursty(t, DefaultConfig(), 135)
	if capped.ExecTime <= base.ExecTime {
		t.Errorf("cap did not slow the bursty run: %v vs %v", capped.ExecTime, base.ExecTime)
	}
	if capped.Counters.InstructionsCommitted != base.Counters.InstructionsCommitted {
		t.Error("committed instructions differ across caps")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	a, _, _ := runBursty(t, DefaultConfig(), 0)
	b, _, _ := runBursty(t, DefaultConfig(), 0)
	if len(a.Trace) != len(b.Trace) {
		t.Fatal("schedule lengths differ")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("schedule differs at %d", i)
		}
	}
}

func TestRunStudyShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Phases = 60
	rows := RunStudy(cfg, []float64{140, 130}, 135, 0)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].CapWatts != 0 || rows[1].CapWatts != 140 || rows[2].CapWatts != 130 {
		t.Errorf("row order wrong: %+v", rows)
	}
	// Deeper caps: lower peaks, more time.
	if rows[2].Profile.PeakWatts > rows[0].Profile.PeakWatts {
		t.Errorf("130 W peak %.1f above uncapped %.1f",
			rows[2].Profile.PeakWatts, rows[0].Profile.PeakWatts)
	}
	if rows[2].Result.ExecTime <= rows[0].Result.ExecTime {
		t.Error("deep cap not slower")
	}
}

func TestAnalyzeEmptyMeter(t *testing.T) {
	m := machine.New(machine.Romley())
	m.Meter().Reset()
	p := Analyze(m.Meter(), 100)
	if p != (PowerProfile{}) {
		t.Errorf("empty profile = %+v", p)
	}
}

func TestPhaseKindStrings(t *testing.T) {
	if PhaseCompute.String() != "compute" || PhaseMemory.String() != "memory" || PhaseIdle.String() != "idle" {
		t.Error("phase names wrong")
	}
}
