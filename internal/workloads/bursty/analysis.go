package bursty

import (
	"nodecap/internal/machine"
	"nodecap/internal/pool"
	"nodecap/internal/sensors"
)

// PowerProfile summarizes a run's meter trace for the Discussion's
// battery-vs-generator analysis.
type PowerProfile struct {
	PeakWatts    float64
	MeanWatts    float64
	MinWatts     float64
	EnergyJoules float64
	// OverBudgetFraction is the fraction of samples above the supply
	// budget passed to Analyze (0 when no budget given).
	OverBudgetFraction float64
}

// Analyze derives a profile from a meter trace. budgetWatts is the
// power supply's rating (generator size or battery regulator limit);
// pass 0 to skip the over-budget accounting.
func Analyze(meter *sensors.Meter, budgetWatts float64) PowerProfile {
	samples := meter.Samples()
	if len(samples) == 0 {
		return PowerProfile{}
	}
	p := PowerProfile{PeakWatts: samples[0].Watts, MinWatts: samples[0].Watts}
	over := 0
	for _, s := range samples {
		if s.Watts > p.PeakWatts {
			p.PeakWatts = s.Watts
		}
		if s.Watts < p.MinWatts {
			p.MinWatts = s.Watts
		}
		if budgetWatts > 0 && s.Watts > budgetWatts {
			over++
		}
	}
	p.MeanWatts = meter.AverageWatts()
	p.EnergyJoules = meter.EnergyJoules()
	if budgetWatts > 0 {
		p.OverBudgetFraction = float64(over) / float64(len(samples))
	}
	return p
}

// CapStudy is one row of the unpredictable-workload experiment.
type CapStudy struct {
	CapWatts float64 // 0 = uncapped
	Profile  PowerProfile
	Result   machine.RunResult
}

// RunStudy executes the workload uncapped and under each cap,
// analyzing every run against budgetWatts. It answers the Discussion's
// question concretely: an uncapped unpredictable workload violates a
// tight supply budget during bursts, while a cap at the budget holds
// the peak at the cost of time.
//
// The runs execute on up to parallelism workers (<= 0 means one per
// CPU). Each row is an independent machine writing a pre-indexed slot,
// so the study is identical at any width.
func RunStudy(cfg Config, caps []float64, budgetWatts float64, parallelism int) []CapStudy {
	rows := append([]float64{0}, caps...)
	out := make([]CapStudy, len(rows))
	pool.ForEach(len(rows), parallelism, func(i int) {
		mcfg := machine.Romley()
		mcfg.Seed = cfg.Seed
		m := machine.New(mcfg)
		m.SetPolicy(rows[i])
		res := m.RunWorkload(New(cfg))
		out[i] = CapStudy{
			CapWatts: rows[i],
			Profile:  Analyze(m.Meter(), budgetWatts),
			Result:   res,
		}
	})
	return out
}
