// Package bursty implements the third item of the paper's future work:
// "experiment using unpredictable workloads".
//
// The workload cycles through pseudo-random phases — compute bursts,
// memory bursts, and idle gaps — so its power draw varies widely and
// unpredictably, the profile the paper's Discussion says power capping
// is actually for: "power capping is best used when the workload is
// unpredictable in terms of its power consumption". The package also
// provides the analysis helpers for the battery-vs-generator question
// the Discussion raises: peak draw (what a generator must be sized
// for), energy (what drains a battery), and how a cap trades between
// them.
package bursty

import (
	"nodecap/internal/machine"
	"nodecap/internal/simtime"
)

// PhaseKind labels one burst type.
type PhaseKind int

// Phase kinds.
const (
	PhaseCompute PhaseKind = iota
	PhaseMemory
	PhaseIdle
)

func (k PhaseKind) String() string {
	switch k {
	case PhaseCompute:
		return "compute"
	case PhaseMemory:
		return "memory"
	default:
		return "idle"
	}
}

// Config sizes the workload.
type Config struct {
	// Phases is the number of bursts executed.
	Phases int
	// MeanPhaseOps scales burst lengths (operations per burst).
	MeanPhaseOps int
	// MemFootprintBytes is the memory bursts' streaming buffer; the
	// default exceeds the L3 so memory bursts draw DRAM power.
	MemFootprintBytes int
	// IdleSlice is the simulated duration of one idle phase.
	IdleSlice simtime.Duration
	// Seed drives the phase schedule.
	Seed uint64
}

// DefaultConfig returns a several-millisecond unpredictable workload.
func DefaultConfig() Config {
	return Config{
		Phases:            60,
		MeanPhaseOps:      70000,
		MemFootprintBytes: 24 << 20,
		IdleSlice:         400 * simtime.Microsecond,
		Seed:              1,
	}
}

// Workload is a runnable bursty instance.
type Workload struct {
	cfg  Config
	rng  uint64
	base uint64

	// Trace records the executed phase schedule for analysis.
	Trace []PhaseKind
}

// New builds the workload.
func New(cfg Config) *Workload {
	if cfg.Phases <= 0 {
		cfg.Phases = 1
	}
	if cfg.MeanPhaseOps <= 0 {
		cfg.MeanPhaseOps = 1000
	}
	return &Workload{cfg: cfg, rng: cfg.Seed*0x9E3779B97F4A7C15 + 1}
}

// Name implements machine.Workload.
func (w *Workload) Name() string { return "bursty" }

// CodePages implements machine.Workload: phase dispatch plus three
// kernels.
func (w *Workload) CodePages() int { return 24 }

func (w *Workload) rand() uint64 {
	w.rng ^= w.rng >> 12
	w.rng ^= w.rng << 25
	w.rng ^= w.rng >> 27
	return w.rng * 2685821657736338717
}

// Run implements machine.Workload.
func (w *Workload) Run(m *machine.Machine) {
	w.base = m.Alloc(w.cfg.MemFootprintBytes)
	w.Trace = w.Trace[:0]
	memPos := 0
	elems := w.cfg.MemFootprintBytes / 8

	for p := 0; p < w.cfg.Phases; p++ {
		r := w.rand()
		kind := PhaseKind(r % 3)
		w.Trace = append(w.Trace, kind)
		// Burst length varies 0.25x-1.75x around the mean.
		ops := w.cfg.MeanPhaseOps/4 + int(r>>32)%(w.cfg.MeanPhaseOps*3/2)

		switch kind {
		case PhaseCompute:
			for i := 0; i < ops; i++ {
				m.Compute(34, 28)
				if i%8 == 0 {
					m.Load(w.base + uint64(i%512)*64)
				}
			}
		case PhaseMemory:
			for i := 0; i < ops; i++ {
				m.Load(w.base + uint64(memPos)*8)
				m.Compute(5, 4)
				memPos++
				if memPos >= elems {
					memPos = 0
				}
			}
		case PhaseIdle:
			m.AdvanceIdle(w.cfg.IdleSlice)
		}
	}
}
