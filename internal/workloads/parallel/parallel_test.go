package parallel

import (
	"math"
	"testing"

	"nodecap/internal/multicore"
	"nodecap/internal/workloads/sar"
	"nodecap/internal/workloads/stereo"
)

func stereoCfg() stereo.Config {
	cfg := stereo.SmallConfig()
	cfg.Width, cfg.Height = 256, 256
	cfg.Sweeps = 14
	return cfg
}

func sarCfg() sar.Config {
	cfg := sar.SmallConfig()
	cfg.Apertures = 64
	cfg.SamplesPerAperture = 4096
	cfg.ImageSize = 32
	cfg.BPAperturesPerIter = 16
	return cfg
}

func runStereo(t *testing.T, cores int, capWatts float64) (*Stereo, multicore.Result) {
	t.Helper()
	w := NewStereo(stereoCfg())
	m := multicore.New(multicore.DefaultConfig(cores))
	m.SetPolicy(capWatts)
	res := m.Run(w)
	return w, res
}

func TestParallelStereoConverges(t *testing.T) {
	w, res := runStereo(t, 4, 0)
	if er := w.ErrorRate(); er > 0.15 {
		t.Errorf("4-core annealing error rate = %.3f", er)
	}
	if res.Workload != "Stereo Matching (parallel)" {
		t.Errorf("name = %q", res.Workload)
	}
}

func TestParallelStereoSpeedup(t *testing.T) {
	_, one := runStereo(t, 1, 0)
	_, four := runStereo(t, 4, 0)
	speedup := four.SpeedupOver(one)
	if speedup < 2.0 {
		t.Errorf("4-core stereo speedup = %.2f, want >= 2", speedup)
	}
	// Stripe decomposition shrinks each core's working set into its
	// private L2 and DTLB reach, so superlinear speedup is legitimate
	// here (the counters confirm the mechanism below); bound it.
	if speedup > 7.0 {
		t.Errorf("4-core stereo speedup = %.2f implausibly superlinear", speedup)
	}
	if four.Counters.L2Misses >= one.Counters.L2Misses {
		t.Errorf("partitioning did not reduce L2 misses: %d vs %d",
			four.Counters.L2Misses, one.Counters.L2Misses)
	}
	if four.Counters.DTLBMisses >= one.Counters.DTLBMisses {
		t.Errorf("partitioning did not reduce DTLB misses: %d vs %d",
			four.Counters.DTLBMisses, one.Counters.DTLBMisses)
	}
}

func TestParallelStereoUnderCap(t *testing.T) {
	// Future-work experiment: 4 busy cores under a 200 W cap must
	// throttle (4-core uncapped draw is ~250 W) and still converge.
	w, res := runStereo(t, 4, 200)
	if res.AvgPowerWatts > 203 {
		t.Errorf("capped parallel power = %.1f W", res.AvgPowerWatts)
	}
	if res.AvgFreqMHz > 2400 {
		t.Errorf("capped parallel frequency = %.0f MHz; expected throttling", res.AvgFreqMHz)
	}
	// Parallel SA is interleaving-dependent (racy cross-stripe reads
	// cascade through the smoothness term), and throttling changes the
	// interleaving, so this realization differs from the uncapped one.
	// Require a clear improvement over the random-init error (~0.62)
	// rather than a tight threshold.
	if er := w.ErrorRate(); er > 0.45 {
		t.Errorf("capped run error rate = %.3f, want well below random-init ~0.62", er)
	}
}

func TestParallelSARFormsImage(t *testing.T) {
	w := NewSAR(sarCfg())
	m := multicore.New(multicore.DefaultConfig(4))
	res := m.Run(w)
	if res.ExecTime <= 0 {
		t.Fatal("no execution time")
	}
	// The image must have a dominant peak (a focused target).
	var peak, sum float64
	for _, v := range w.Image() {
		sum += v
		if v > peak {
			peak = v
		}
	}
	mean := sum / float64(len(w.Image()))
	if peak < 3*mean {
		t.Errorf("peak %.2f not well above mean %.2f", peak, mean)
	}
}

func TestParallelSARBarrierOrdersPhases(t *testing.T) {
	// With the spin barrier, the backprojection must read fully
	// denoised data: the resulting image is identical regardless of
	// core count.
	image := func(cores int) []float64 {
		w := NewSAR(sarCfg())
		m := multicore.New(multicore.DefaultConfig(cores))
		m.Run(w)
		return w.Image()
	}
	a, b := image(1), image(4)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("image differs at %d across core counts: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParallelSARSpeedup(t *testing.T) {
	runN := func(cores int) multicore.Result {
		w := NewSAR(sarCfg())
		m := multicore.New(multicore.DefaultConfig(cores))
		return m.Run(w)
	}
	one := runN(1)
	four := runN(4)
	speedup := four.SpeedupOver(one)
	if speedup < 1.5 {
		t.Errorf("4-core SAR speedup = %.2f, want >= 1.5 (memory-bound)", speedup)
	}
	if speedup > 4.4 {
		t.Errorf("4-core SAR speedup = %.2f exceeds core count", speedup)
	}
}

func TestCapCostsMoreTimeInParallel(t *testing.T) {
	// The future-work headline: the cap-vs-time trade persists on
	// multiple cores, and because N cores share one budget, a node cap
	// that is mild for one core is severe for four.
	runCap := func(capWatts float64) multicore.Result {
		w := NewSAR(sarCfg())
		m := multicore.New(multicore.DefaultConfig(4))
		m.SetPolicy(capWatts)
		return m.Run(w)
	}
	base := runCap(0)
	capped := runCap(190)
	if capped.ExecTime <= base.ExecTime {
		t.Errorf("190 W cap did not slow a 4-core run (%v vs %v)", capped.ExecTime, base.ExecTime)
	}
}
