// Package parallel provides multi-core versions of the study's two
// applications for the future-work experiment ("explore how multi-core
// applications are affected by power capping"):
//
//   - Stereo matching with stripe-decomposed simulated annealing: each
//     core anneals a horizontal band of the disparity field, reading
//     (but not writing) neighbour disparities across stripe borders —
//     the standard domain decomposition for Monte Carlo relaxation.
//   - SIRE/RSM with aperture-decomposed noise removal followed by
//     pixel-decomposed backprojection, separated by a spin barrier
//     (each core burns cycles at the barrier until the last one
//     arrives, as an OpenMP-style busy-wait does).
//
// Both produce one shard per core against the multicore engine's
// CoreHandle API; data is shared, private caches contend in the shared
// L3 and DRAM channel.
package parallel

import (
	"math/bits"

	"nodecap/internal/multicore"
	"nodecap/internal/workloads/stereo"
)

// --- parallel stereo matching ----------------------------------------

// Stereo is the stripe-parallel annealer.
type Stereo struct {
	cfg   stereo.Config
	scene *stereo.Scene
	disp  []int32

	leftBase, rightBase, censusLBase, censusRBase, dispBase uint64
}

// NewStereo synthesizes the scene once; shards share it. The
// disparity field starts from the same random initialization the
// sequential annealer uses (a zero field biases the Potts smoothness
// term toward the background and traps the chain).
func NewStereo(cfg stereo.Config) *Stereo {
	s := &Stereo{
		cfg:   cfg,
		scene: stereo.NewScene(cfg),
		disp:  make([]int32, cfg.Width*cfg.Height),
	}
	rng := cfg.Seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for i := range s.disp {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		s.disp[i] = int32((rng * 2685821657736338717) % uint64(cfg.MaxDisparity))
	}
	return s
}

// Name implements multicore.Workload.
func (s *Stereo) Name() string { return "Stereo Matching (parallel)" }

// CodePages implements multicore.Workload.
func (s *Stereo) CodePages() int { return 40 }

// Disparity returns the recovered field, valid after a run.
func (s *Stereo) Disparity() []int32 { return s.disp }

// ErrorRate reports the fraction of pixels off by more than one level.
func (s *Stereo) ErrorRate() float64 {
	bad := 0
	for i := range s.disp {
		d := s.disp[i] - s.scene.Truth[i]
		if d < -1 || d > 1 {
			bad++
		}
	}
	return float64(bad) / float64(len(s.disp))
}

// Shards implements multicore.Workload: one horizontal stripe per
// core.
func (s *Stereo) Shards(cores int, alloc func(int) uint64) []multicore.Shard {
	n := s.cfg.Width * s.cfg.Height
	s.leftBase = alloc(n * 4)
	s.rightBase = alloc(n * 4)
	s.censusLBase = alloc(n * 8)
	s.censusRBase = alloc(n * 8)
	s.dispBase = alloc(n * 4)

	out := make([]multicore.Shard, cores)
	rows := s.cfg.Height / cores
	for i := 0; i < cores; i++ {
		y0 := i * rows
		y1 := y0 + rows
		if i == cores-1 {
			y1 = s.cfg.Height
		}
		out[i] = &stereoShard{
			w: s, y0: y0, y1: y1,
			rng:       uint64(i+1)*0x9E3779B97F4A7C15 + s.cfg.Seed,
			remaining: s.cfg.Sweeps * (y1 - y0) * s.cfg.Width,
			temp:      s.cfg.T0,
		}
	}
	return out
}

type stereoShard struct {
	w         *Stereo
	y0, y1    int
	rng       uint64
	remaining int
	sweepLeft int
	temp      float64
}

func (sh *stereoShard) rand64() uint64 {
	sh.rng ^= sh.rng >> 12
	sh.rng ^= sh.rng << 25
	sh.rng ^= sh.rng >> 27
	return sh.rng * 2685821657736338717
}

// Step implements multicore.Shard: one annealing proposal.
func (sh *stereoShard) Step(c *multicore.CoreHandle) bool {
	if sh.remaining <= 0 {
		return false
	}
	sh.remaining--
	w := sh.w
	cfg := w.cfg

	stripeRows := sh.y1 - sh.y0
	if sh.sweepLeft == 0 {
		sh.sweepLeft = stripeRows * cfg.Width
		sh.temp *= cfg.Alpha
	}
	sh.sweepLeft--

	r := sh.rand64()
	y := sh.y0 + int(r%uint64(stripeRows))
	x := int((r >> 20) % uint64(cfg.Width))
	idx := y*cfg.Width + x

	c.Load(w.dispBase + uint64(idx)*4)
	cur := w.disp[idx]
	prop := sh.propose(c, x, y, cur)
	if prop == cur {
		c.Compute(6, 5)
		return sh.remaining > 0
	}

	dE := sh.dataCost(c, x, y, prop) - sh.dataCost(c, x, y, cur)
	for _, o := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		xx, yy := x+o[0], y+o[1]
		if xx < 0 || xx >= cfg.Width || yy < 0 || yy >= cfg.Height {
			continue
		}
		nIdx := yy*cfg.Width + xx
		c.Load(w.dispBase + uint64(nIdx)*4)
		nd := w.disp[nIdx] // cross-stripe reads are racy-by-design, as in parallel SA
		if nd != prop {
			dE += cfg.Lambda
		}
		if nd != cur {
			dE -= cfg.Lambda
		}
	}
	accept := dE <= 0
	if !accept && sh.temp > 1e-6 {
		accept = float64(sh.rand64()>>11)/float64(1<<53) < fastExp(-dE/sh.temp)
	}
	c.Compute(22, 18)
	if accept {
		w.disp[idx] = prop
		c.Store(w.dispBase + uint64(idx)*4)
	}
	return sh.remaining > 0
}

// propose mirrors the sequential annealer's Monte Carlo mixture:
// uniform exploration, neighbour copying, local refinement.
func (sh *stereoShard) propose(c *multicore.CoreHandle, x, y int, cur int32) int32 {
	w := sh.w
	cfg := w.cfg
	r := sh.rand64()
	switch {
	case r%4 < 2:
		return int32(sh.rand64() % uint64(cfg.MaxDisparity))
	case r%4 == 2:
		o := [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}[(r>>8)%4]
		xx, yy := x+o[0], y+o[1]
		if xx < 0 || xx >= cfg.Width || yy < 0 || yy >= cfg.Height {
			return cur
		}
		c.Load(w.dispBase + uint64(yy*cfg.Width+xx)*4)
		return w.disp[yy*cfg.Width+xx]
	default:
		d := cur + int32((r>>8)%3) - 1
		if d < 0 {
			d = 0
		}
		if d >= int32(cfg.MaxDisparity) {
			d = int32(cfg.MaxDisparity) - 1
		}
		return d
	}
}

func (sh *stereoShard) dataCost(c *multicore.CoreHandle, x, y int, d int32) float64 {
	w := sh.w
	cfg := w.cfg
	idx := y*cfg.Width + x
	rx := x - int(d)
	if rx < 0 {
		rx = 0
	}
	ridx := y*cfg.Width + rx
	c.Load(w.censusLBase + uint64(idx)*8)
	c.Load(w.censusRBase + uint64(ridx)*8)
	ham := bits.OnesCount64(w.scene.CensusL[idx] ^ w.scene.CensusR[ridx])
	c.Load(w.leftBase + uint64(idx)*4)
	c.Load(w.rightBase + uint64(ridx)*4)
	diff := float64(w.scene.Left[idx] - w.scene.Right[ridx])
	if diff < 0 {
		diff = -diff
	}
	c.Compute(9, 7)
	return float64(ham)*0.5 + diff*4
}

// fastExp is a cheap exp approximation adequate for Metropolis
// acceptance (inputs in [-20, 0]).
func fastExp(x float64) float64 {
	if x < -20 {
		return 0
	}
	// exp(x) ~= (1 + x/64)^64 for small |x|.
	v := 1 + x/64
	if v < 0 {
		return 0
	}
	v2 := v * v    // ^2
	v2 = v2 * v2   // ^4
	v2 = v2 * v2   // ^8
	v2 = v2 * v2   // ^16
	v2 = v2 * v2   // ^32
	return v2 * v2 // ^64
}
