package parallel

import (
	"math"

	"nodecap/internal/multicore"
	"nodecap/internal/workloads/sar"
)

// SAR is the parallel SIRE/RSM workload: aperture-decomposed streaming
// noise removal, a spin barrier, then pixel-decomposed backprojection.
type SAR struct {
	cfg sar.Config

	data  []float64
	image []float64

	dataBase, imageBase uint64

	// barrier state shared by the shards.
	arrived int
	cores   int
}

// NewSAR synthesizes the radar returns once; shards share them.
func NewSAR(cfg sar.Config) *SAR {
	p := &SAR{cfg: cfg}
	p.synthesize()
	return p
}

// synthesize builds returns with the same shape the sequential
// implementation uses: pulses at two-way-delay samples plus noise.
func (p *SAR) synthesize() {
	c := p.cfg
	rng := c.Seed*2654435761 + 1
	rand := func() float64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return float64(rng*2685821657736338717>>11) / float64(1<<53)
	}
	p.data = make([]float64, c.Apertures*c.SamplesPerAperture)
	p.image = make([]float64, c.ImageSize*c.ImageSize)
	type tgt struct{ x, y, a float64 }
	targets := make([]tgt, c.Targets)
	for i := range targets {
		targets[i] = tgt{0.15 + 0.7*rand(), 0.15 + 0.7*rand(), 0.7 + 0.6*rand()}
	}
	for k := 0; k < c.Apertures; k++ {
		ax := float64(k) / float64(c.Apertures)
		row := p.data[k*c.SamplesPerAperture : (k+1)*c.SamplesPerAperture]
		for i := range row {
			row[i] = 0.12 * (rand() - 0.5)
		}
		for _, t := range targets {
			idx := delayIdx(ax, t.x, t.y, c.SamplesPerAperture)
			for off, amp := range [...]float64{1.0, 0.6, -0.4, 0.2} {
				if idx+off < len(row) {
					row[idx+off] += t.a * amp
				}
			}
		}
	}
}

func delayIdx(ax, tx, ty float64, samples int) int {
	dx := tx - ax
	r := math.Sqrt(dx*dx+ty*ty) / math.Sqrt2
	idx := int(r * float64(samples-8))
	if idx < 0 {
		idx = 0
	}
	if idx >= samples {
		idx = samples - 1
	}
	return idx
}

// Name implements multicore.Workload.
func (p *SAR) Name() string { return "SIRE/RSM (parallel)" }

// CodePages implements multicore.Workload.
func (p *SAR) CodePages() int { return 56 }

// Image returns the formed image, valid after a run.
func (p *SAR) Image() []float64 { return p.image }

// Shards implements multicore.Workload.
func (p *SAR) Shards(cores int, alloc func(int) uint64) []multicore.Shard {
	p.dataBase = alloc(len(p.data) * 8)
	p.imageBase = alloc(len(p.image) * 8)
	p.cores = cores
	p.arrived = 0

	c := p.cfg
	out := make([]multicore.Shard, cores)
	apPer := (c.Apertures + cores - 1) / cores
	rowPer := (c.ImageSize + cores - 1) / cores
	for i := 0; i < cores; i++ {
		sh := &sarShard{w: p}
		sh.apLo = i * apPer
		sh.apHi = min(c.Apertures, sh.apLo+apPer)
		sh.rowLo = i * rowPer
		sh.rowHi = min(c.ImageSize, sh.rowLo+rowPer)
		sh.denoiseIdx = sh.apLo * c.SamplesPerAperture
		out[i] = sh
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type sarShard struct {
	w *SAR

	apLo, apHi   int // denoise aperture range
	rowLo, rowHi int // backprojection pixel-row range

	phase      int // 0 denoise, 1 barrier, 2 backproject, 3 done
	denoiseIdx int
	px, py     int
	atBarrier  bool
}

// Step implements multicore.Shard.
func (sh *sarShard) Step(c *multicore.CoreHandle) bool {
	w := sh.w
	cfg := w.cfg
	switch sh.phase {
	case 0: // streaming three-tap noise removal over our apertures
		end := sh.apHi * cfg.SamplesPerAperture
		// One batch: 16 elements, keeping scheduling quanta small.
		for n := 0; n < 16 && sh.denoiseIdx < end; n++ {
			i := sh.denoiseIdx
			c.Load(w.dataBase + uint64(i)*8)
			prev, next := 0.0, 0.0
			if i > sh.apLo*cfg.SamplesPerAperture {
				prev = w.data[i-1]
			}
			if i+1 < end {
				c.Load(w.dataBase + uint64(i+1)*8)
				next = w.data[i+1]
			}
			f := 0.25*prev + 0.5*w.data[i] + 0.25*next
			if math.Abs(f) < 0.05 {
				f = 0
			}
			w.data[i] = f
			c.Store(w.dataBase + uint64(i)*8)
			c.Compute(7, 6)
			sh.denoiseIdx++
		}
		if sh.denoiseIdx >= end {
			sh.phase = 1
		}
		return true
	case 1: // spin barrier: everyone must finish denoising first
		if !sh.atBarrier {
			sh.atBarrier = true
			w.arrived++
		}
		if w.arrived < w.cores {
			c.Compute(60, 12) // busy-wait iteration
			return true
		}
		sh.phase = 2
		sh.py = sh.rowLo
		return true
	case 2: // backproject our pixel rows over all apertures
		if sh.py >= sh.rowHi {
			sh.phase = 3
			return false
		}
		// One batch: one pixel.
		ty := (float64(sh.py) + 0.5) / float64(cfg.ImageSize)
		tx := (float64(sh.px) + 0.5) / float64(cfg.ImageSize)
		var sum float64
		step := cfg.Apertures / cfg.BPAperturesPerIter
		if step < 1 {
			step = 1
		}
		for a := 0; a < cfg.BPAperturesPerIter; a++ {
			k := (a * step) % cfg.Apertures
			idx := delayIdx(float64(k)/float64(cfg.Apertures), tx, ty, cfg.SamplesPerAperture)
			off := k*cfg.SamplesPerAperture + idx
			c.Load(w.dataBase + uint64(off)*8)
			sum += w.data[off]
			c.Compute(11, 9)
		}
		pix := sh.py*cfg.ImageSize + sh.px
		w.image[pix] = math.Abs(sum)
		c.Store(w.imageBase + uint64(pix)*8)
		sh.px++
		if sh.px >= cfg.ImageSize {
			sh.px = 0
			sh.py++
		}
		return true
	default:
		return false
	}
}
