// Package trace records and replays workload operation traces, so an
// application that exists only as a memory/compute trace — captured
// from this simulator or converted from an external profiler — can be
// characterized under power caps exactly like the built-in workloads.
//
// This is the bridge a downstream adopter needs: the paper's
// conclusion says "case studies are essential to identify target
// applications amenable to power capped execution", and a trace of the
// target application is the cheapest artifact such a case study can
// start from.
//
// The format is line-oriented text, one operation per line:
//
//	# nodecap-trace v1
//	# name: <workload name>
//	# codepages: <n>
//	c <cycles> <instrs>
//	l <hex address>
//	s <hex address>
//
// Lines starting with '#' are comments; the name and codepages headers
// are recognized when present.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nodecap/internal/machine"
)

// magic is the required first line.
const magic = "# nodecap-trace v1"

// Trace is a parsed operation trace.
type Trace struct {
	Name      string
	CodePages int
	Ops       []machine.TraceOp
}

// Recorder tees a machine's operation stream into a writer in trace
// format. Install with Attach before building the machine's config is
// frozen; close over the same writer until the run finishes.
type Recorder struct {
	w   *bufio.Writer
	err error
}

// NewRecorder writes the header for a workload with the given name and
// code-page footprint and returns the recorder.
func NewRecorder(w io.Writer, name string, codePages int) (*Recorder, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "%s\n# name: %s\n# codepages: %d\n", magic, name, codePages); err != nil {
		return nil, err
	}
	return &Recorder{w: bw}, nil
}

// Hook returns the machine OpTrace callback that records operations.
func (r *Recorder) Hook() func(machine.TraceOp) {
	return func(op machine.TraceOp) {
		if r.err != nil {
			return
		}
		switch op.Kind {
		case machine.TraceCompute:
			_, r.err = fmt.Fprintf(r.w, "c %d %d\n", op.Cycles, op.Instrs)
		case machine.TraceLoad:
			_, r.err = fmt.Fprintf(r.w, "l %x\n", op.Addr)
		case machine.TraceStore:
			_, r.err = fmt.Fprintf(r.w, "s %x\n", op.Addr)
		}
	}
}

// Flush completes the recording, reporting any write error.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Record runs w on a fresh machine built from cfg while writing its
// operation trace to out, returning the run result.
func Record(cfg machine.Config, w machine.Workload, out io.Writer) (machine.RunResult, error) {
	rec, err := NewRecorder(out, w.Name(), w.CodePages())
	if err != nil {
		return machine.RunResult{}, err
	}
	cfg.OpTrace = rec.Hook()
	m := machine.New(cfg)
	res := m.RunWorkload(w)
	if err := rec.Flush(); err != nil {
		return res, fmt.Errorf("trace: recording: %w", err)
	}
	return res, nil
}

// Read parses a trace.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	if strings.TrimSpace(sc.Text()) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", sc.Text())
	}
	t := &Trace{Name: "trace", CodePages: 16}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if v, ok := strings.CutPrefix(text, "# name: "); ok {
				t.Name = v
			} else if v, ok := strings.CutPrefix(text, "# codepages: "); ok {
				n, err := strconv.Atoi(v)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("trace: line %d: bad codepages %q", line, v)
				}
				t.CodePages = n
			}
			continue
		}
		fields := strings.Fields(text)
		switch {
		case fields[0] == "c" && len(fields) == 3:
			cycles, err1 := strconv.ParseInt(fields[1], 10, 64)
			instrs, err2 := strconv.ParseUint(fields[2], 10, 64)
			if err1 != nil || err2 != nil || cycles <= 0 {
				return nil, fmt.Errorf("trace: line %d: bad compute %q", line, text)
			}
			t.Ops = append(t.Ops, machine.TraceOp{Kind: machine.TraceCompute, Cycles: cycles, Instrs: instrs})
		case (fields[0] == "l" || fields[0] == "s") && len(fields) == 2:
			addr, err := strconv.ParseUint(fields[1], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad address %q", line, text)
			}
			kind := machine.TraceLoad
			if fields[0] == "s" {
				kind = machine.TraceStore
			}
			t.Ops = append(t.Ops, machine.TraceOp{Kind: kind, Addr: addr})
		default:
			return nil, fmt.Errorf("trace: line %d: unrecognized %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Write serializes a trace (the inverse of Read).
func Write(w io.Writer, t *Trace) error {
	rec, err := NewRecorder(w, t.Name, t.CodePages)
	if err != nil {
		return err
	}
	hook := rec.Hook()
	for _, op := range t.Ops {
		hook(op)
	}
	return rec.Flush()
}

// Player replays a trace as a machine.Workload.
//
// Recorded addresses are replayed verbatim: the fresh machine's
// allocator hands out the same region layout it did during recording
// (allocation is deterministic), so residency behaviour matches the
// original run.
type Player struct {
	t *Trace
}

// NewPlayer wraps a parsed trace.
func NewPlayer(t *Trace) *Player { return &Player{t: t} }

// Name implements machine.Workload.
func (p *Player) Name() string { return p.t.Name }

// CodePages implements machine.Workload.
func (p *Player) CodePages() int { return p.t.CodePages }

// Ops reports the trace length.
func (p *Player) Ops() int { return len(p.t.Ops) }

// Run implements machine.Workload.
func (p *Player) Run(m *machine.Machine) {
	for _, op := range p.t.Ops {
		switch op.Kind {
		case machine.TraceCompute:
			m.Compute(op.Cycles, op.Instrs)
		case machine.TraceLoad:
			m.Load(op.Addr)
		case machine.TraceStore:
			m.Store(op.Addr)
		}
	}
}
