package trace

import (
	"bytes"
	"strings"
	"testing"

	"nodecap/internal/machine"
	"nodecap/internal/workloads/stereo"
)

func stereoSmall() machine.Workload {
	cfg := stereo.SmallConfig()
	return stereo.New(cfg)
}

func TestRecordReplayFidelity(t *testing.T) {
	// Recording a workload and replaying the trace on a fresh machine
	// must reproduce the original run exactly: same committed
	// instructions, same cache misses, same virtual time.
	var buf bytes.Buffer
	orig, err := Record(machine.Romley(), stereoSmall(), &buf)
	if err != nil {
		t.Fatal(err)
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "Stereo Matching" || tr.CodePages != 40 {
		t.Errorf("header = %q, %d", tr.Name, tr.CodePages)
	}

	m := machine.New(machine.Romley())
	replay := m.RunWorkload(NewPlayer(tr))

	if replay.ExecTime != orig.ExecTime {
		t.Errorf("replay time %v != original %v", replay.ExecTime, orig.ExecTime)
	}
	if replay.Counters.InstructionsCommitted != orig.Counters.InstructionsCommitted {
		t.Errorf("replay committed %d != original %d",
			replay.Counters.InstructionsCommitted, orig.Counters.InstructionsCommitted)
	}
	if replay.Counters.L2Misses != orig.Counters.L2Misses {
		t.Errorf("replay L2 misses %d != original %d",
			replay.Counters.L2Misses, orig.Counters.L2Misses)
	}
	if replay.Counters.ITLBMisses != orig.Counters.ITLBMisses {
		t.Errorf("replay iTLB misses %d != original %d",
			replay.Counters.ITLBMisses, orig.Counters.ITLBMisses)
	}
}

func TestReplayUnderCapThrottles(t *testing.T) {
	var buf bytes.Buffer
	base, err := Record(machine.Romley(), stereoSmall(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.Romley())
	m.SetPolicy(130)
	capped := m.RunWorkload(NewPlayer(tr))
	if capped.ExecTime <= base.ExecTime {
		t.Errorf("capped replay (%v) not slower than baseline (%v)", capped.ExecTime, base.ExecTime)
	}
	if capped.AvgFreqMHz > 1500 {
		t.Errorf("capped replay frequency = %.0f", capped.AvgFreqMHz)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	in := &Trace{
		Name:      "hand-built",
		CodePages: 7,
		Ops: []machine.TraceOp{
			{Kind: machine.TraceCompute, Cycles: 12, Instrs: 10},
			{Kind: machine.TraceLoad, Addr: 0xdeadbeef},
			{Kind: machine.TraceStore, Addr: 0x40001000},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.CodePages != in.CodePages || len(out.Ops) != len(in.Ops) {
		t.Fatalf("round trip = %+v", out)
	}
	for i := range in.Ops {
		if in.Ops[i] != out.Ops[i] {
			t.Errorf("op %d: %+v vs %+v", i, in.Ops[i], out.Ops[i])
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"not a trace\n",
		"# nodecap-trace v1\nz 123\n",
		"# nodecap-trace v1\nc nope 5\n",
		"# nodecap-trace v1\nc -4 5\n",
		"# nodecap-trace v1\nl zz\n",
		"# nodecap-trace v1\nc 5\n",
		"# nodecap-trace v1\n# codepages: -3\n",
	}
	for i, s := range bad {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("malformed trace %d accepted", i)
		}
	}
}

func TestReadTolerantOfCommentsAndBlanks(t *testing.T) {
	src := "# nodecap-trace v1\n\n# a remark\nc 5 4\n\nl ff\n"
	tr, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 2 {
		t.Errorf("ops = %d", len(tr.Ops))
	}
}

func TestPlayerSurface(t *testing.T) {
	tr := &Trace{Name: "x", CodePages: 3, Ops: []machine.TraceOp{{Kind: machine.TraceCompute, Cycles: 1, Instrs: 1}}}
	p := NewPlayer(tr)
	if p.Name() != "x" || p.CodePages() != 3 || p.Ops() != 1 {
		t.Error("player surface wrong")
	}
	var _ machine.Workload = p
}
