package serving

import (
	"reflect"
	"testing"

	"nodecap/internal/machine"
	"nodecap/internal/multicore"
	"nodecap/internal/simtime"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.RequestsPerCore = 300
	cfg.WarmupRequests = 50
	return cfg
}

func runOnce(t *testing.T, cfg Config) (*Workload, multicore.Result) {
	t.Helper()
	m := multicore.New(multicore.Config{Cores: 2, Base: machine.Romley()})
	w := New(cfg)
	return w, m.Run(w)
}

// TestServingDeterministic runs the same seed twice and expects
// bit-identical latencies and batch throughput.
func TestServingDeterministic(t *testing.T) {
	w1, _ := runOnce(t, smallConfig())
	w2, _ := runOnce(t, smallConfig())
	if !reflect.DeepEqual(w1.Latencies(), w2.Latencies()) {
		t.Fatal("latency records differ across identical runs")
	}
	if w1.BatchOps() != w2.BatchOps() {
		t.Fatalf("batch throughput differs: %d vs %d", w1.BatchOps(), w2.BatchOps())
	}
}

// TestServingSeedMatters checks a different seed shifts the arrival
// process (different latencies).
func TestServingSeedMatters(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 99
	w1, _ := runOnce(t, smallConfig())
	w2, _ := runOnce(t, cfg2)
	if reflect.DeepEqual(w1.Latencies(), w2.Latencies()) {
		t.Fatal("different seeds produced identical latency records")
	}
}

// TestWarmupExcluded checks exactly RequestsPerCore-WarmupRequests
// latencies are recorded per serving core, and that every request was
// still processed (batch work ran the whole span).
func TestWarmupExcluded(t *testing.T) {
	cfg := smallConfig()
	w, _ := runOnce(t, cfg)
	want := cfg.RequestsPerCore - cfg.WarmupRequests
	if got := len(w.Latencies()); got != want {
		t.Fatalf("recorded %d latencies, want %d (warmup excluded)", got, want)
	}
	if w.BatchOps() == 0 {
		t.Fatal("batch shard did no work")
	}
}

// TestPercentiles checks the percentile math on the recorded data.
func TestPercentiles(t *testing.T) {
	w, _ := runOnce(t, smallConfig())
	if w.Percentile(0.5) > w.P99() {
		t.Fatalf("p50 %v > p99 %v", w.Percentile(0.5), w.P99())
	}
	if w.P99() > w.Percentile(1.0) {
		t.Fatalf("p99 %v > max %v", w.P99(), w.Percentile(1.0))
	}
	if w.P99() <= 0 {
		t.Fatalf("p99 %v not positive", w.P99())
	}
	empty := New(smallConfig())
	if empty.P99() != 0 {
		t.Fatal("P99 before a run should be zero")
	}
}

// TestServingLatencyRisesWhenSlowed pins the workload's core property:
// the open-loop service run on a machine pinned to a slow frequency
// must record a much worse tail than at full speed.
func TestServingLatencyRisesWhenSlowed(t *testing.T) {
	fast, _ := runOnce(t, smallConfig())

	base := machine.Romley()
	m := multicore.New(multicore.Config{Cores: 2, Base: base})
	// An aggressive cap drags the whole package down (fair share).
	_ = m.SetPolicy(140)
	slow := New(smallConfig())
	m.Run(slow)

	if slow.P99() < 4*fast.P99() {
		t.Fatalf("slowed p99 %v not clearly above full-speed p99 %v", slow.P99(), fast.P99())
	}
}

// TestConfigValidation rejects nonsense.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{ServingCores: 1, RequestsPerCore: 10, ArrivalRatePerSec: 0, RequestOps: 1},
		{ServingCores: 0, RequestsPerCore: 10, ArrivalRatePerSec: 1, RequestOps: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
	// A socket with no room for batch shards must panic at sharding.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("single-core socket with one serving core did not panic")
			}
		}()
		m := multicore.New(multicore.Config{Cores: 1, Base: machine.Romley()})
		m.Run(New(smallConfig()))
	}()
}

// TestArrivalsAreOpenLoop checks the recorded latency can exceed the
// inter-arrival gap — the queue is real, not regenerated per request.
func TestArrivalsAreOpenLoop(t *testing.T) {
	cfg := smallConfig()
	w, _ := runOnce(t, cfg)
	gap := simtime.FromSeconds(1 / cfg.ArrivalRatePerSec)
	if w.Percentile(1.0) <= gap {
		t.Skipf("max latency %v under one arrival gap %v; queue never formed", w.Percentile(1.0), gap)
	}
}
