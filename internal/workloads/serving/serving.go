// Package serving models the mixed fleet the priority study needs: an
// open-loop latency-critical service sharing a capped socket with
// best-effort batch work.
//
// The serving shards receive requests on a pre-generated Poisson
// arrival process (seeded, exponential inter-arrivals) and answer them
// one at a time; because the process is open loop, a slowed core does
// not slow the offered load — requests queue and latency compounds,
// which is exactly how a power cap turns into an SLO violation in
// production. The batch shards grind a compute/memory loop for as long
// as the service is live and report throughput as operations
// completed: the work a priority-aware controller sacrifices first.
package serving

import (
	"fmt"
	"math"
	"sort"

	"nodecap/internal/multicore"
	"nodecap/internal/simtime"
)

// Config sizes the mixed workload.
type Config struct {
	// ServingCores is how many leading cores run the service; the
	// remaining cores of the machine run batch shards (at least one).
	ServingCores int
	// RequestsPerCore is the arrival-process length per serving core.
	RequestsPerCore int
	// WarmupRequests per serving core are processed but excluded from
	// the latency record: they cover the cold-cache transient and the
	// capping controller's convergence, the standard steady-state
	// benchmarking discipline.
	WarmupRequests int
	// ArrivalRatePerSec is the mean request arrival rate per serving
	// core (open loop: independent of completion).
	ArrivalRatePerSec float64
	// RequestOps is the number of inner-loop iterations one request
	// costs; service time scales inversely with core frequency.
	RequestOps int
	// WorkingSetBytes is each serving core's private request state,
	// touched with a 64 B stride (mostly cache-resident; the service is
	// deliberately compute-bound so DVFS dominates its latency).
	WorkingSetBytes int
	// BatchBytes is each batch core's scan buffer (larger: batch work
	// leans on the shared L3 and DRAM channel).
	BatchBytes int
	// Seed drives the arrival processes; shard i derives its own
	// stream from Seed and i.
	Seed uint64
}

// DefaultConfig returns a service tuned so one serving core is ~55%
// utilized at full speed — stable at the study's frequency floor,
// overloaded (utilization > 1) when a fair-share cap drags the core to
// the slowest P-states.
func DefaultConfig() Config {
	return Config{
		ServingCores:      1,
		RequestsPerCore:   2000,
		WarmupRequests:    200,
		ArrivalRatePerSec: 300_000,
		RequestOps:        40,
		WorkingSetBytes:   64 << 10,
		BatchBytes:        4 << 20,
		Seed:              1,
	}
}

// Workload implements multicore.Workload. Run it once; latency and
// throughput accessors are valid after the run completes.
type Workload struct {
	cfg Config

	lat         []simtime.Duration
	batchOps    uint64
	servingLive int
}

// New builds the mixed workload; panics on nonsensical configuration.
func New(cfg Config) *Workload {
	if cfg.ServingCores <= 0 || cfg.RequestsPerCore <= 0 || cfg.ArrivalRatePerSec <= 0 || cfg.RequestOps <= 0 {
		panic("serving: non-positive configuration")
	}
	return &Workload{cfg: cfg}
}

// Name implements multicore.Workload.
func (w *Workload) Name() string { return "Open-Loop Serving + Batch" }

// CodePages implements multicore.Workload.
func (w *Workload) CodePages() int { return 24 }

// Shards implements multicore.Workload: ServingCores serving shards
// first (matching a priority machine's leading high-priority cores),
// batch shards on the rest.
func (w *Workload) Shards(cores int, alloc func(int) uint64) []multicore.Shard {
	if cores <= w.cfg.ServingCores {
		panic(fmt.Sprintf("serving: %d cores cannot host %d serving cores plus batch",
			cores, w.cfg.ServingCores))
	}
	w.lat = w.lat[:0]
	w.batchOps = 0
	w.servingLive = w.cfg.ServingCores

	out := make([]multicore.Shard, cores)
	for i := 0; i < w.cfg.ServingCores; i++ {
		out[i] = &servingShard{
			w:        w,
			arrivals: arrivalTimes(w.cfg.Seed+uint64(i)*0x9E3779B9, w.cfg.RequestsPerCore, w.cfg.ArrivalRatePerSec),
			base:     alloc(w.cfg.WorkingSetBytes),
		}
	}
	for i := w.cfg.ServingCores; i < cores; i++ {
		out[i] = &batchShard{w: w, base: alloc(w.cfg.BatchBytes)}
	}
	return out
}

// arrivalTimes pre-generates an exponential arrival process.
func arrivalTimes(seed uint64, n int, ratePerSec float64) []simtime.Duration {
	out := make([]simtime.Duration, n)
	var t float64 // seconds
	for i := range out {
		u := float64(splitmix(&seed)>>11) / (1 << 53)
		t += -math.Log(1-u) / ratePerSec
		out[i] = simtime.FromSeconds(t)
	}
	return out
}

func splitmix(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// --- serving shard ----------------------------------------------------

type servingShard struct {
	w        *Workload
	arrivals []simtime.Duration
	base     uint64
	next     int
	pos      uint64
}

// Step services one request: sleep until its arrival if the queue is
// empty, run the request body, and record arrival-to-completion
// latency (queueing included — the open-loop tail the SLO watches).
func (sh *servingShard) Step(c *multicore.CoreHandle) bool {
	if sh.next >= len(sh.arrivals) {
		sh.w.servingLive--
		return false
	}
	t := sh.arrivals[sh.next]
	sh.next++
	if c.Now() < t {
		c.AdvanceIdle(t - c.Now())
	}
	for i := 0; i < sh.w.cfg.RequestOps; i++ {
		c.Compute(120, 96)
		c.Load(sh.base + sh.pos)
		sh.pos = (sh.pos + 64) % uint64(sh.w.cfg.WorkingSetBytes)
	}
	if sh.next > sh.w.cfg.WarmupRequests {
		sh.w.lat = append(sh.w.lat, c.Now()-t)
	}
	return true
}

// --- batch shard ------------------------------------------------------

type batchShard struct {
	w    *Workload
	base uint64
	pos  uint64
}

// Step grinds one batch slice; the shard retires once every serving
// shard has drained its arrival process (best-effort work has no
// completion target of its own).
func (sh *batchShard) Step(c *multicore.CoreHandle) bool {
	if sh.w.servingLive == 0 {
		return false
	}
	for i := 0; i < 64; i++ {
		c.Compute(100, 80)
		c.Load(sh.base + sh.pos)
		sh.pos = (sh.pos + 256) % uint64(sh.w.cfg.BatchBytes)
		sh.w.batchOps++
	}
	return true
}

// --- metrics ----------------------------------------------------------

// Latencies returns every recorded request latency (completion order).
func (w *Workload) Latencies() []simtime.Duration { return w.lat }

// BatchOps reports total best-effort operations completed.
func (w *Workload) BatchOps() uint64 { return w.batchOps }

// P99 reports the 99th-percentile request latency (zero before a run).
func (w *Workload) P99() simtime.Duration { return w.Percentile(0.99) }

// Percentile reports the q-th latency percentile, q in (0, 1].
func (w *Workload) Percentile(q float64) simtime.Duration {
	if len(w.lat) == 0 {
		return 0
	}
	s := make([]simtime.Duration, len(w.lat))
	copy(s, w.lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
