package sar

import (
	"math"
	"testing"

	"nodecap/internal/machine"
)

func runSmall(t *testing.T, capWatts float64, seed uint64) (*Workload, machine.RunResult) {
	t.Helper()
	cfg := SmallConfig()
	cfg.Seed = seed
	w := New(cfg)
	mcfg := machine.Romley()
	mcfg.Seed = seed
	m := machine.New(mcfg)
	m.SetPolicy(capWatts)
	res := m.RunWorkload(w)
	return w, res
}

func TestDefaultFootprintExceedsL3(t *testing.T) {
	c := DefaultConfig()
	bytes := c.Apertures * c.SamplesPerAperture * 8
	if bytes <= 20<<20 {
		t.Errorf("raw data footprint %d B does not exceed the 20 MiB L3", bytes)
	}
}

func TestImageFormsAtTargets(t *testing.T) {
	w, _ := runSmall(t, 0, 3)
	n := w.cfg.ImageSize
	// The strongest target should produce a bright pixel near its
	// scene position, well above the image median.
	px, py, peak := w.PeakPixel()
	if peak <= 0 {
		t.Fatalf("empty image: peak = %v", peak)
	}
	best := math.Inf(1)
	for _, tg := range w.Targets() {
		tx, ty := int(tg[0]*float64(n)), int(tg[1]*float64(n))
		d := math.Hypot(float64(px-tx), float64(py-ty))
		if d < best {
			best = d
		}
	}
	if best > 3.5 {
		t.Errorf("peak pixel (%d,%d) is %.1f pixels from the nearest target", px, py, best)
	}
}

func TestPeakDominatesBackground(t *testing.T) {
	w, _ := runSmall(t, 0, 4)
	_, _, peak := w.PeakPixel()
	var sum float64
	var cnt int
	for _, v := range w.Image() {
		if !math.IsInf(v, 1) {
			sum += v
			cnt++
		}
	}
	mean := sum / float64(cnt)
	if peak < 3*mean {
		t.Errorf("peak %.2f not well above mean %.2f: imaging is not working", peak, mean)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, _ := runSmall(t, 0, 7)
	b, _ := runSmall(t, 0, 7)
	for i := range a.Image() {
		if a.Image()[i] != b.Image()[i] {
			t.Fatalf("image differs at %d with identical seeds", i)
		}
	}
}

func TestResultIndependentOfCap(t *testing.T) {
	// Power capping slows the run but must not change the computation.
	a, ra := runSmall(t, 0, 9)
	b, rb := runSmall(t, 125, 9)
	for i := range a.Image() {
		if a.Image()[i] != b.Image()[i] {
			t.Fatalf("capped image differs at %d", i)
		}
	}
	if rb.ExecTime <= ra.ExecTime {
		t.Errorf("125 W run (%v) not slower than baseline (%v)", rb.ExecTime, ra.ExecTime)
	}
	if ra.Counters.InstructionsCommitted != rb.Counters.InstructionsCommitted {
		t.Errorf("committed instructions differ across caps: %d vs %d",
			ra.Counters.InstructionsCommitted, rb.Counters.InstructionsCommitted)
	}
}

func TestStreamingPhaseMissesCompulsory(t *testing.T) {
	// The denoise stream over a > L3 array must produce roughly one L3
	// miss per line (64 B = 8 elements), unchanged by way gating.
	cfg := SmallConfig()
	cfg.Apertures = 64
	cfg.SamplesPerAperture = 4096 // 2 MiB: small for test speed
	cfg.RSMIterations = 1
	w := New(cfg)
	m := machine.New(machine.Romley())
	res := m.RunWorkload(w)
	elems := uint64(cfg.Apertures * cfg.SamplesPerAperture)
	wantLines := elems / 8
	got := res.Counters.L3Misses
	if got < wantLines/2 {
		t.Errorf("L3 misses = %d, want at least ~%d (compulsory stream)", got, wantLines/2)
	}
}

func TestNameAndCodePages(t *testing.T) {
	w := New(SmallConfig())
	if w.Name() != "SIRE/RSM" {
		t.Errorf("Name = %q", w.Name())
	}
	if w.CodePages() <= 0 {
		t.Errorf("CodePages = %d", w.CodePages())
	}
}

// TestGoldenImageChecksum guards the workload's computation against
// accidental behavioural drift: the formed image for a fixed seed is a
// deterministic function of the algorithm.
func TestGoldenImageChecksum(t *testing.T) {
	w, _ := runSmall(t, 0, 42)
	var sum float64
	for _, v := range w.Image() {
		if !math.IsInf(v, 1) {
			sum += v
		}
	}
	// Re-run must match bit-for-bit.
	w2, _ := runSmall(t, 0, 42)
	var sum2 float64
	for _, v := range w2.Image() {
		if !math.IsInf(v, 1) {
			sum2 += v
		}
	}
	if sum != sum2 {
		t.Errorf("image checksum drifted: %v vs %v", sum, sum2)
	}
	if sum == 0 {
		t.Error("empty image")
	}
}
