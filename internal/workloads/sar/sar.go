// Package sar implements the SIRE/RSM workload of the study: synthetic
// aperture radar image formation for the Army Research Laboratory's
// ultra-wideband Synchronous Impulse Reconstruction (SIRE) radar, with
// Recursive Sidelobe Minimization (RSM).
//
// The paper uses the ARL code on the Lam dataset; neither is public,
// so this package implements the published algorithm on synthetic
// radar returns with the memory behaviour the paper describes: the
// dominant phase "processes, in a stream-like fashion, data stored in
// an array that is too large to fit in any one of the caches" and
// "iteratively loops through the array elements to remove noise,
// generating a sequence of compulsory misses, followed by sequences of
// conflict misses" (Section IV-B). Image formation then backprojects
// the cleaned returns onto a ground plane, and RSM repeats the
// projection with pseudo-random aperture weightings, keeping the
// per-pixel minimum magnitude to suppress sidelobes.
//
// Every touch of the radar-data, image, and scratch arrays is mirrored
// into the simulated memory hierarchy, so counter and timing behaviour
// under power caps emerges from the real algorithm's access pattern.
package sar

import (
	"math"

	"nodecap/internal/machine"
)

// Config sizes the workload.
type Config struct {
	// Apertures and SamplesPerAperture size the raw data array. The
	// default footprint (184 x 16384 float64 = 23 MiB) exceeds the
	// 20 MiB L3, as the paper requires.
	Apertures          int
	SamplesPerAperture int
	// NoisePasses is the number of streaming noise-removal passes.
	NoisePasses int
	// ImageSize is the output grid edge (pixels).
	ImageSize int
	// RSMIterations is the number of weighted backprojections whose
	// pointwise minimum forms the final image.
	RSMIterations int
	// BPAperturesPerIter is how many apertures each RSM iteration
	// integrates per pixel.
	BPAperturesPerIter int
	// Targets is the number of synthetic point scatterers.
	Targets int
	// Seed drives waveform noise and RSM weight selection.
	Seed uint64
}

// DefaultConfig returns the full-size workload (the "large image"
// configuration of Table I, scaled to simulator run lengths).
func DefaultConfig() Config {
	return Config{
		Apertures:          184,
		SamplesPerAperture: 16384,
		NoisePasses:        1,
		ImageSize:          96,
		RSMIterations:      3,
		BPAperturesPerIter: 24,
		Targets:            5,
		Seed:               1,
	}
}

// SmallConfig returns a reduced configuration for unit tests.
func SmallConfig() Config {
	return Config{
		Apertures:          32,
		SamplesPerAperture: 1024,
		NoisePasses:        1,
		ImageSize:          24,
		RSMIterations:      2,
		BPAperturesPerIter: 16,
		Targets:            2,
		Seed:               1,
	}
}

// Workload is the runnable SIRE/RSM instance.
type Workload struct {
	cfg Config

	data  []float64 // raw (then denoised) returns, apertures x samples
	image []float64 // final RSM image, ImageSize x ImageSize
	work  []float64 // per-iteration backprojection scratch

	dataBase, imageBase, workBase uint64

	targets []target
	rng     uint64
}

type target struct {
	x, y      float64 // scene coordinates in [0,1)
	amplitude float64
}

// New builds the workload and synthesizes its radar returns.
func New(cfg Config) *Workload {
	w := &Workload{cfg: cfg, rng: cfg.Seed*2654435761 + 1}
	w.synthesize()
	return w
}

// Name implements machine.Workload.
func (w *Workload) Name() string { return "SIRE/RSM" }

// CodePages implements machine.Workload: the ARL image-formation code
// is a mid-sized signal-processing binary.
func (w *Workload) CodePages() int { return 56 }

// Image returns the formed image (row-major ImageSize x ImageSize),
// valid after Run.
func (w *Workload) Image() []float64 { return w.image }

// Targets returns the synthetic scatterer positions in [0,1) scene
// coordinates.
func (w *Workload) Targets() [][2]float64 {
	out := make([][2]float64, len(w.targets))
	for i, t := range w.targets {
		out[i] = [2]float64{t.x, t.y}
	}
	return out
}

func (w *Workload) rand() float64 {
	// xorshift64*, deterministic across runs with the same seed.
	w.rng ^= w.rng >> 12
	w.rng ^= w.rng << 25
	w.rng ^= w.rng >> 27
	return float64(w.rng*2685821657736338717>>11) / float64(1<<53)
}

// synthesize builds the scene and the raw returns: each aperture
// records each target's pulse at the two-way-delay sample index, plus
// additive noise.
func (w *Workload) synthesize() {
	c := w.cfg
	w.data = make([]float64, c.Apertures*c.SamplesPerAperture)
	w.image = make([]float64, c.ImageSize*c.ImageSize)
	w.work = make([]float64, c.ImageSize*c.ImageSize)

	w.targets = make([]target, c.Targets)
	for i := range w.targets {
		w.targets[i] = target{
			x:         0.15 + 0.7*w.rand(),
			y:         0.15 + 0.7*w.rand(),
			amplitude: 0.7 + 0.6*w.rand(),
		}
	}
	for k := 0; k < c.Apertures; k++ {
		ax := apertureX(k, c.Apertures)
		row := w.data[k*c.SamplesPerAperture : (k+1)*c.SamplesPerAperture]
		for i := range row {
			row[i] = 0.12 * (w.rand() - 0.5) // receiver noise
		}
		for _, t := range w.targets {
			idx := delaySample(ax, t.x, t.y, c.SamplesPerAperture)
			// A short impulse with a ringing tail, SIRE-style.
			for off, amp := range [...]float64{1.0, 0.6, -0.4, 0.2} {
				if idx+off < len(row) {
					row[idx+off] += t.amplitude * amp
				}
			}
		}
	}
}

// apertureX places aperture k along the radar's forward path.
func apertureX(k, n int) float64 {
	return float64(k) / float64(n)
}

// delaySample maps an aperture position and scene point to the sample
// index of the two-way delay.
func delaySample(ax, tx, ty float64, samples int) int {
	dx := tx - ax
	r := math.Sqrt(dx*dx+ty*ty) / math.Sqrt2 // normalized range in [0,1)
	idx := int(r * float64(samples-8))
	if idx < 0 {
		idx = 0
	}
	if idx >= samples {
		idx = samples - 1
	}
	return idx
}

// Run implements machine.Workload. Phases: streaming noise removal
// over the raw array, then RSM backprojection iterations.
func (w *Workload) Run(m *machine.Machine) {
	w.dataBase = m.Alloc(len(w.data) * 8)
	w.imageBase = m.Alloc(len(w.image) * 8)
	w.workBase = m.Alloc(len(w.work) * 8)

	w.removeNoise(m)
	w.formImage(m)
}

// removeNoise streams the full data array NoisePasses times applying a
// three-tap filter in place — the too-big-for-cache loop the paper
// calls out.
func (w *Workload) removeNoise(m *machine.Machine) {
	n := len(w.data)
	for pass := 0; pass < w.cfg.NoisePasses; pass++ {
		prev, cur := 0.0, w.data[0]
		m.Load(w.dataBase)
		for i := 0; i < n; i++ {
			next := 0.0
			if i+1 < n {
				m.Load(w.dataBase + uint64(i+1)*8)
				next = w.data[i+1]
			}
			filtered := 0.25*prev + 0.5*cur + 0.25*next
			// Soft-threshold small values: impulse noise removal.
			if math.Abs(filtered) < 0.05 {
				filtered = 0
			}
			m.Store(w.dataBase + uint64(i)*8)
			prev, cur = cur, next
			w.data[i] = filtered
			m.Compute(7, 6)
		}
	}
}

// formImage runs RSM: each iteration backprojects a pseudo-randomly
// weighted aperture subset into the scratch image; the final image is
// the pointwise minimum magnitude across iterations.
func (w *Workload) formImage(m *machine.Machine) {
	c := w.cfg
	for i := range w.image {
		w.image[i] = math.Inf(1)
	}
	for it := 0; it < c.RSMIterations; it++ {
		// Choose this iteration's aperture subset deterministically
		// from the seed (RSM's "random" compensation weights).
		start := int(w.rng % uint64(c.Apertures))
		step := 1 + int(w.rng%7)
		w.rand()

		for p := range w.work {
			w.work[p] = 0
		}
		for py := 0; py < c.ImageSize; py++ {
			ty := (float64(py) + 0.5) / float64(c.ImageSize)
			for px := 0; px < c.ImageSize; px++ {
				tx := (float64(px) + 0.5) / float64(c.ImageSize)
				pixIdx := py*c.ImageSize + px
				var sum float64
				for a := 0; a < c.BPAperturesPerIter; a++ {
					k := (start + a*step) % c.Apertures
					idx := delaySample(apertureX(k, c.Apertures), tx, ty, c.SamplesPerAperture)
					off := k*c.SamplesPerAperture + idx
					m.Load(w.dataBase + uint64(off)*8)
					sum += w.data[off]
					m.Compute(11, 9) // range, interpolation, accumulate
				}
				m.Load(w.workBase + uint64(pixIdx)*8)
				m.Store(w.workBase + uint64(pixIdx)*8)
				w.work[pixIdx] = sum
			}
		}
		// RSM minimum combining.
		for p := range w.image {
			m.Load(w.workBase + uint64(p)*8)
			m.Load(w.imageBase + uint64(p)*8)
			v := math.Abs(w.work[p])
			if v < w.image[p] {
				m.Store(w.imageBase + uint64(p)*8)
				w.image[p] = v
			}
			m.Compute(4, 3)
		}
	}
}

// PeakPixel reports the brightest image pixel (x, y, value) after Run;
// tests use it to confirm the imaging actually works.
func (w *Workload) PeakPixel() (int, int, float64) {
	best, bi := -1.0, 0
	for i, v := range w.image {
		if !math.IsInf(v, 1) && v > best {
			best, bi = v, i
		}
	}
	return bi % w.cfg.ImageSize, bi / w.cfg.ImageSize, best
}
