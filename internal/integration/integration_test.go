// Package integration holds cross-module tests: full experiment sweeps
// rendered through the report layer, the management plane driving
// machines end to end, and consistency checks between independently
// computed quantities (meter energy vs power x time, counter snapshots
// vs hierarchy stats).
package integration

import (
	"math"
	"strings"
	"testing"
	"time"

	"nodecap/internal/core"
	"nodecap/internal/counters"
	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
	"nodecap/internal/report"
	"nodecap/internal/workloads/sar"
	"nodecap/internal/workloads/stereo"
	"nodecap/internal/workloads/stride"
)

// sweepOnce runs a compact two-cap sweep for the given workload
// constructor; used by several tests below.
func sweepOnce(t *testing.T, mk func() machine.Workload) core.SweepResult {
	t.Helper()
	res, err := core.Experiment{
		NewWorkload: mk,
		Caps:        []float64{140, 120},
		Trials:      1,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func smallStereo() machine.Workload {
	// 416x416 gives a ~4.8 MiB working set: inside the full 20 MiB L3,
	// outside the deepest way-gated one (4 MiB) — the configuration
	// the paper's stereo findings hinge on, at test-friendly size.
	cfg := stereo.SmallConfig()
	cfg.Width, cfg.Height = 416, 416
	cfg.Sweeps = 1
	return stereo.New(cfg)
}

func smallSAR() machine.Workload {
	cfg := sar.SmallConfig()
	cfg.Apertures = 96
	cfg.SamplesPerAperture = 8192
	return sar.New(cfg)
}

// TestSweepThroughReportPipeline exercises experiment -> diff ->
// renderers without any fixture shortcuts.
func TestSweepThroughReportPipeline(t *testing.T) {
	res := sweepOnce(t, smallStereo)

	t1 := report.TableI([]core.SweepResult{res})
	if !strings.Contains(t1, "Stereo Matching") {
		t.Errorf("Table I missing workload:\n%s", t1)
	}
	t2 := report.TableII(res, "A")
	for _, want := range []string{"A0", "A1", "A2", "baseline", "140", "120"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	fig := report.Figure12(res, "Figure 2", true)
	if !strings.Contains(fig, "L3 Miss Rate") {
		t.Errorf("Figure missing series:\n%s", fig)
	}
	csv := report.Figure12CSV(res, true)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 4 {
		t.Errorf("CSV row count wrong:\n%s", csv)
	}
}

// TestEnergyConsistentWithPowerAndTime: Table II's energy column must
// equal average power times execution time (within integration error),
// since the paper computes energy exactly that way.
func TestEnergyConsistentWithPowerAndTime(t *testing.T) {
	res := sweepOnce(t, smallStereo)
	for _, r := range res.All() {
		want := r.PowerWatts * r.TimeSeconds
		if math.Abs(r.EnergyJoules-want) > 0.05*want {
			t.Errorf("%s: energy %.2f J vs power*time %.2f J", r.Label, r.EnergyJoules, want)
		}
	}
}

// TestPaperHeadlineShapeBothWorkloads checks the cross-workload
// findings on a compact sweep: both slow down monotonically, the cap
// floor is unreachable at 120 W, and the stereo workload's L3 misses
// explode while the streaming SAR workload's stay within a factor.
func TestPaperHeadlineShapeBothWorkloads(t *testing.T) {
	stereoRes := sweepOnce(t, smallStereo)
	sarRes := sweepOnce(t, smallSAR)

	for _, res := range []core.SweepResult{stereoRes, sarRes} {
		base := res.Baseline.TimeSeconds
		if res.Capped[0].TimeSeconds <= base {
			t.Errorf("%s: no slowdown at 140 W", res.Workload)
		}
		if res.Capped[1].TimeSeconds <= res.Capped[0].TimeSeconds {
			t.Errorf("%s: 120 W not slower than 140 W", res.Workload)
		}
		if p := res.Capped[1].PowerWatts; p <= 120 || p > 127 {
			t.Errorf("%s: 120 W cap power = %.1f, want floor in (120, 127]", res.Workload, p)
		}
	}

	stereoGrowth := stereoRes.Capped[1].Counters.L3Misses / stereoRes.Baseline.Counters.L3Misses
	sarGrowth := sarRes.Capped[1].Counters.L3Misses / sarRes.Baseline.Counters.L3Misses
	if stereoGrowth < 1.5 {
		t.Errorf("stereo L3 miss growth = %.2fx, want explosive", stereoGrowth)
	}
	if sarGrowth > 1.6 {
		t.Errorf("SAR L3 miss growth = %.2fx, want stream-stable", sarGrowth)
	}
	if stereoGrowth <= sarGrowth {
		t.Errorf("ordering lost: stereo %.2fx vs SAR %.2fx", stereoGrowth, sarGrowth)
	}
}

// TestCountersMatchHierarchyStats: the PAPI layer and the machine's
// raw hierarchy must agree on what happened during a run.
func TestCountersMatchHierarchyStats(t *testing.T) {
	m := machine.New(machine.Romley())
	es := counters.NewEventSet(m)
	if err := es.Add(counters.L2TCM, counters.TLBIM, counters.TOTINS); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	res := m.RunWorkload(smallStereo())
	if err := es.Stop(); err != nil {
		t.Fatal(err)
	}
	l2, _ := es.Read(counters.L2TCM)
	if l2 != res.Counters.L2Misses {
		t.Errorf("PAPI L2 %d != run result %d", l2, res.Counters.L2Misses)
	}
	itlb, _ := es.Read(counters.TLBIM)
	if itlb != res.Counters.ITLBMisses {
		t.Errorf("PAPI iTLB %d != run result %d", itlb, res.Counters.ITLBMisses)
	}
	ins, _ := es.Read(counters.TOTINS)
	if ins != res.Counters.InstructionsCommitted {
		t.Errorf("PAPI TOT_INS %d != run result %d", ins, res.Counters.InstructionsCommitted)
	}
}

// TestManagementPlaneEnforcesSweep drives the sweep through the full
// DCM -> IPMI -> agent stack instead of calling SetPolicy directly,
// checking that out-of-band management produces the same throttling.
func TestManagementPlaneEnforcesSweep(t *testing.T) {
	agent := nodeagent.New(machine.Romley(), nodeagent.Options{
		Workload: smallStereo,
	})
	defer agent.Stop()
	srv := ipmi.NewServer(agent)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mgr := dcm.NewManager(nil)
	defer mgr.Close()
	if err := mgr.AddNode("n0", addr); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetNodeCap("n0", 130); err != nil {
		t.Fatal(err)
	}

	// Wait for a run that completed fully under the cap.
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, n := agent.LastRun()
		if n >= 3 && r.CapWatts == 130 && r.AvgFreqMHz < 1500 {
			if r.AvgPowerWatts > 131.5 {
				t.Errorf("managed node power %.1f W above cap", r.AvgPowerWatts)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cap never converged via management plane: runs=%d freq=%.0f", n, r.AvgFreqMHz)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mgr.Poll()
	st := mgr.Nodes()[0]
	if !st.Reachable || st.Last.FreqMHz > 1500 {
		t.Errorf("manager view = %+v", st)
	}
}

// TestStrideProbeUnderSweepMachine: the probe and the table sweeps
// share one machine implementation; a capped probe must show the same
// frequency floor the table rows show.
func TestStrideProbeUnderSweepMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("probe sweep in -short mode")
	}
	cfg := stride.SmallConfig()
	p := stride.New(cfg)
	m := machine.New(machine.Romley())
	m.SetPolicy(125)
	res := m.RunWorkload(p)
	if res.AvgFreqMHz > 1350 {
		t.Errorf("probe under 125 W ran at %.0f MHz", res.AvgFreqMHz)
	}
	if len(p.Points()) == 0 {
		t.Fatal("no probe points")
	}
	// Figure 4's qualitative marker: some L1-resident point is slower
	// than the same point would be at full speed (~1.85 ns).
	for _, pt := range p.Points() {
		if pt.ArrayBytes == 16<<10 && pt.StrideBytes == 64 {
			if pt.AvgAccessNanos < 3.0 {
				t.Errorf("L1-level point at 125 W = %.2f ns, want >= 2x uncapped", pt.AvgAccessNanos)
			}
		}
	}
}

// TestDeterminismAcrossFullStack: identical seeds must give identical
// results through the whole experiment pipeline.
func TestDeterminismAcrossFullStack(t *testing.T) {
	run := func() core.SweepResult { return sweepOnce(t, smallStereo) }
	a, b := run(), run()
	if a.Baseline.Time != b.Baseline.Time {
		t.Errorf("baseline time differs: %v vs %v", a.Baseline.Time, b.Baseline.Time)
	}
	if a.Capped[1].Counters.L3Misses != b.Capped[1].Counters.L3Misses {
		t.Error("counter totals differ across identical sweeps")
	}
	if a.Capped[1].EnergyJoules != b.Capped[1].EnergyJoules {
		t.Error("energy differs across identical sweeps")
	}
}
