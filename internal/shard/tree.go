package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/telemetry"
)

// BatchTransport pushes fence-advancing batch operations at the node
// plane during a handoff. *ipmi.Client satisfies it over a real
// multiplexed connection; the chaos harness satisfies it in-process
// through ipmi.Mux. A nil transport skips the eager fence advance —
// fences then advance lazily on the new owner's first cap push, which
// leaves a window where a deposed leaf's same-epoch push would still
// be admitted; deployments that migrate under contention must wire it.
type BatchTransport interface {
	BatchPoll(ids []uint32) ([]ipmi.BatchPollResult, error)
	BatchSet(entries []ipmi.BatchSetEntry) ([]ipmi.BatchSetResult, error)
}

// NodeInfo is one node's identity in the tree.
type NodeInfo struct {
	Name string
	Addr string
	// ID is the consistent-hash key (assigned by the operator; the
	// chaos harness uses the engine index).
	ID uint32
}

// leafState is one leaf manager's slot. mgr == nil means the leaf is
// known from a restored snapshot but not (re)attached yet: it stays a
// member — its ownership survives an aggregator restart — but cannot
// be pushed to until Attach or seized via Seize.
type leafState struct {
	name       string
	mgr        *dcm.Manager
	budget     float64
	infeasible bool
}

// Tree is the aggregator: the root of the two-level control plane. It
// owns the node→leaf assignment (consistent-hash ring over member
// leaves), migrates ownership with fenced handoff on membership
// changes, and cascades the datacenter budget down the topology on
// Rebalance. All mutations persist the shard map to snapPath (when
// set) so a restarted aggregator resumes with the same ownership.
//
// Handoff fencing protocol (migrate): every membership change bumps
// the tree's fencing epoch once, installs it on every destination
// leaf, drops the moved nodes from their live old owners (desired
// state only — the applied caps keep standing on the BMCs), then
// re-asserts each moved node's *applied* limit through the batch
// transport at the new epoch. That last step advances the per-node
// fence watermark immediately — even for nodes with no active cap —
// so a deposed or isolated previous owner is refused by the plant
// itself (ipmi.CCStaleEpoch) from the moment the handoff completes,
// not from whenever the new owner happens to push a cap.
type Tree struct {
	mu        sync.Mutex
	ring      *Ring
	transport BatchTransport
	snapPath  string
	trace     *telemetry.Trace // nil = no decision trace

	seed   uint64
	vnodes int

	leaves map[string]*leafState
	nodes  map[string]NodeInfo
	owners map[string]string // node name -> leaf name

	epoch      uint64 // fencing epoch; bumped once per migration batch
	rebalances uint64
	budget     float64 // last cascaded datacenter budget
	infeasible bool

	// BreakHandoff skips the fencing-epoch bump on migration, so a
	// deposed owner keeps pushing at the same epoch the new owner uses
	// and the plant admits both writers. It exists only so the chaos
	// harness can prove its single_owner invariant catches a broken
	// handoff (chaos -break-handoff).
	BreakHandoff bool
	// BreakAggregator makes the cascade hand each leaf 1.5× its share —
	// a cascade that no longer conserves budget across tree levels. It
	// exists only for the chaos -break-aggregator self-test proving
	// tree_budget_conserved fires.
	BreakAggregator bool
}

// NewTree builds an empty aggregator. vnodes <= 0 selects
// DefaultVnodes; transport may be nil (see BatchTransport); snapPath
// "" disables persistence.
func NewTree(seed uint64, vnodes int, transport BatchTransport, snapPath string) *Tree {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Tree{
		ring:      NewRing(seed, vnodes),
		transport: transport,
		snapPath:  snapPath,
		seed:      seed,
		vnodes:    vnodes,
		leaves:    make(map[string]*leafState),
		nodes:     make(map[string]NodeInfo),
		owners:    make(map[string]string),
		epoch:     1, // 0 is the unfenced legacy epoch; leaves start fenced
	}
}

// SetTelemetry wires a decision trace; handoffs and cascades emit
// EvHandoff / EvShardRebalance events onto it.
func (t *Tree) SetTelemetry(trace *telemetry.Trace) {
	t.mu.Lock()
	t.trace = trace
	t.mu.Unlock()
}

// memberNames reports the sorted member leaf names. Callers hold t.mu.
func (t *Tree) memberNames() []string {
	names := make([]string, 0, len(t.leaves))
	for name := range t.leaves {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// nodeNames reports the sorted node names. Callers hold t.mu.
func (t *Tree) nodeNames() []string {
	names := make([]string, 0, len(t.nodes))
	for name := range t.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AddLeaf admits a leaf manager into the tree and migrates the nodes
// the ring assigns it. Returns how many nodes moved.
func (t *Tree) AddLeaf(name string, mgr *dcm.Manager) (int, error) {
	if mgr == nil {
		return 0, fmt.Errorf("shard: leaf %q needs a manager", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.leaves[name]; ok {
		return 0, fmt.Errorf("shard: leaf %q already a member", name)
	}
	t.leaves[name] = &leafState{name: name, mgr: mgr}
	mgr.SetFencing(dcm.RolePrimary, t.epoch)
	moved, err := t.migrate()
	return moved, errors.Join(err, t.persist())
}

// Rejoin readmits a previously seized leaf with a (possibly restarted)
// manager. The manager's registrations and desired caps are purged
// first: whatever it believed it owned before the crash or partition
// is stale — counting those caps again, next to the nodes' current
// owners, is exactly the double-budget-count the tree exists to
// prevent. The nodes the ring hands back arrive capless and receive
// fresh caps at the next Rebalance (their applied limits keep standing
// on the BMCs meanwhile).
func (t *Tree) Rejoin(name string, mgr *dcm.Manager) (int, error) {
	if mgr == nil {
		return 0, fmt.Errorf("shard: leaf %q needs a manager", name)
	}
	for _, st := range mgr.Nodes() {
		_ = mgr.RemoveNode(st.Name)
	}
	return t.AddLeaf(name, mgr)
}

// Attach re-binds a live manager to a leaf restored from a snapshot
// (mgr == nil until then). Ownership is unchanged — that is the point
// of restoring — the fencing epoch is reinstalled, and any node a
// handoff assigned to this leaf while it was unattached (migrate
// defers registration rather than dereferencing a nil manager) is
// registered with the manager now. The attachment itself stands even
// when some registrations fail — those errors come back joined; the
// nodes re-register when the operator re-adds them.
func (t *Tree) Attach(name string, mgr *dcm.Manager) error {
	if mgr == nil {
		return fmt.Errorf("shard: leaf %q needs a manager", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ls, ok := t.leaves[name]
	if !ok {
		return fmt.Errorf("shard: unknown leaf %q", name)
	}
	if ls.mgr != nil {
		return fmt.Errorf("shard: leaf %q already attached", name)
	}
	ls.mgr = mgr
	mgr.SetFencing(dcm.RolePrimary, t.epoch)
	known := make(map[string]bool)
	for _, st := range mgr.Nodes() {
		known[st.Name] = true
	}
	var errs []error
	for _, node := range t.nodeNames() {
		if t.owners[node] != name || known[node] {
			continue
		}
		if err := mgr.AddNode(node, t.nodes[node].Addr); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Seize expels a crashed, isolated, or decommissioned leaf and
// migrates its nodes to the survivors with fenced handoff. The leaf's
// manager (if any — it may be dead) is not touched: if it is still
// running somewhere beyond a partition, the epoch bump is what stops
// it. Returns how many nodes moved.
func (t *Tree) Seize(name string) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.leaves[name]; !ok {
		return 0, fmt.Errorf("shard: unknown leaf %q", name)
	}
	delete(t.leaves, name)
	moved, err := t.migrate()
	return moved, errors.Join(err, t.persist())
}

// AddNode registers a node with the tree, routing it to its ring
// owner.
func (t *Tree) AddNode(name, addr string, id uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.nodes[name]; ok {
		return fmt.Errorf("shard: node %q already registered", name)
	}
	if len(t.leaves) == 0 {
		return fmt.Errorf("shard: no member leaves")
	}
	owner, ok := t.ring.Owner(id)
	if !ok {
		return fmt.Errorf("shard: no member leaves")
	}
	ls := t.leaves[owner]
	if ls.mgr == nil {
		return fmt.Errorf("shard: owner leaf %q not attached", owner)
	}
	if err := ls.mgr.AddNode(name, addr); err != nil {
		return err
	}
	t.nodes[name] = NodeInfo{Name: name, Addr: addr, ID: id}
	t.owners[name] = owner
	return t.persist()
}

// AddNodes bulk-registers nodes, persisting the shard map once at the
// end — registering a fleet node-by-node would rewrite the snapshot
// per node, O(n²) at datacenter scale. Nodes are routed in input
// order; the first routing failure aborts, but the nodes already
// registered in the batch stay registered and are persisted before the
// error returns — an aggregator crash right after must not silently
// drop them from the restored map.
func (t *Tree) AddNodes(infos []NodeInfo) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, info := range infos {
		if _, ok := t.nodes[info.Name]; ok {
			return errors.Join(fmt.Errorf("shard: node %q already registered", info.Name), t.persist())
		}
		owner, ok := t.ring.Owner(info.ID)
		if !ok {
			return errors.Join(fmt.Errorf("shard: no member leaves"), t.persist())
		}
		ls := t.leaves[owner]
		if ls.mgr == nil {
			return errors.Join(fmt.Errorf("shard: owner leaf %q not attached", owner), t.persist())
		}
		if err := ls.mgr.AddNode(info.Name, info.Addr); err != nil {
			return errors.Join(err, t.persist())
		}
		t.nodes[info.Name] = info
		t.owners[info.Name] = owner
	}
	return t.persist()
}

// RemoveNode deregisters a node from the tree and its owning leaf.
func (t *Tree) RemoveNode(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.nodes[name]; !ok {
		return fmt.Errorf("shard: unknown node %q", name)
	}
	if ls := t.leaves[t.owners[name]]; ls != nil && ls.mgr != nil {
		_ = ls.mgr.RemoveNode(name)
	}
	delete(t.nodes, name)
	delete(t.owners, name)
	return t.persist()
}

// migrate recomputes the ring over the current membership, diffs the
// assignment against current ownership, and executes the fenced
// handoff for every node that moved. Callers hold t.mu.
func (t *Tree) migrate() (int, error) {
	t.ring.SetLeaves(t.memberNames())
	if len(t.leaves) == 0 {
		return 0, nil
	}
	type move struct {
		info     NodeInfo
		from, to string
	}
	var moves []move
	for _, name := range t.nodeNames() {
		info := t.nodes[name]
		owner, ok := t.ring.Owner(info.ID)
		if !ok {
			continue
		}
		if cur := t.owners[name]; cur != owner {
			moves = append(moves, move{info: info, from: cur, to: owner})
		}
	}
	if len(moves) == 0 {
		return 0, nil
	}

	// One epoch bump covers the whole batch; every destination leaf
	// actuates at the new epoch from here on.
	if !t.BreakHandoff {
		t.epoch++
	}
	dsts := make(map[string]bool)
	for _, mv := range moves {
		dsts[mv.to] = true
	}
	for name := range dsts {
		// A destination may be a snapshot-restored member not yet
		// re-bound to a live manager (leafState.mgr == nil): ownership
		// still moves — the map must stay consistent with the ring — but
		// fencing and registration wait for Attach, which reinstalls the
		// then-current epoch and reconciles owned nodes into the manager.
		if ls := t.leaves[name]; ls.mgr != nil {
			ls.mgr.SetFencing(dcm.RolePrimary, t.epoch)
		}
	}

	// Release from live old owners: desired state only. The applied
	// caps keep standing on the BMCs until the new owner re-caps.
	var errs []error
	ids := make([]uint32, 0, len(moves))
	for _, mv := range moves {
		if from := t.leaves[mv.from]; from != nil && from.mgr != nil {
			_ = from.mgr.RemoveNode(mv.info.Name)
		}
		ids = append(ids, mv.info.ID)
	}

	// Advance the plant-side fences before the new owners register.
	errs = append(errs, t.fenceNodes(ids))

	for _, mv := range moves {
		t.owners[mv.info.Name] = mv.to
		if dst := t.leaves[mv.to]; dst.mgr == nil {
			errs = append(errs, fmt.Errorf("shard: node %q handed to unattached leaf %q; registration deferred to attach", mv.info.Name, mv.to))
		} else if err := dst.mgr.AddNode(mv.info.Name, mv.info.Addr); err != nil {
			errs = append(errs, err)
		}
		t.trace.Append(telemetry.Event{
			Node: mv.info.Name, Kind: telemetry.EvHandoff,
			N: int64(t.epoch), Err: mv.from + "->" + mv.to,
		})
	}
	return len(moves), errors.Join(errs...)
}

// fenceNodes re-asserts each node's applied limit at the tree's
// current epoch through the batch transport: the values are unchanged,
// only the fence watermark advances. Callers hold t.mu.
func (t *Tree) fenceNodes(ids []uint32) error {
	if t.transport == nil || len(ids) == 0 {
		return nil
	}
	var errs []error
	for len(ids) > 0 {
		n := min(len(ids), ipmi.MaxBatchEntries)
		polls, err := t.transport.BatchPoll(ids[:n])
		ids = ids[n:]
		if err != nil {
			errs = append(errs, err)
			continue
		}
		entries := make([]ipmi.BatchSetEntry, 0, len(polls))
		for _, p := range polls {
			if p.CC != ipmi.CCOK {
				errs = append(errs, fmt.Errorf("shard: handoff poll of node id %d: cc %#x", p.ID, p.CC))
				continue
			}
			lim := p.Limit
			lim.Epoch = t.epoch
			entries = append(entries, ipmi.BatchSetEntry{ID: p.ID, Limit: lim})
		}
		if len(entries) == 0 {
			continue
		}
		results, err := t.transport.BatchSet(entries)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for _, r := range results {
			if r.CC != ipmi.CCOK {
				errs = append(errs, fmt.Errorf("shard: handoff fence of node id %d: cc %#x", r.ID, r.CC))
			}
		}
	}
	return errors.Join(errs...)
}

// Owner reports the leaf owning the named node.
func (t *Tree) Owner(node string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf, ok := t.owners[node]
	return leaf, ok
}

// Leaf returns the named leaf's manager (nil when unattached).
func (t *Tree) Leaf(name string) *dcm.Manager {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ls, ok := t.leaves[name]; ok {
		return ls.mgr
	}
	return nil
}

// Leaves reports the sorted member leaf names.
func (t *Tree) Leaves() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.memberNames()
}

// Epoch reports the current fencing epoch.
func (t *Tree) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// DesiredSum sums the enabled desired caps across every *attached*
// member leaf — each node counted once, under its current owner. This
// is the quantity the tree_budget_conserved invariant audits each
// tick: a seized or unattached leaf's desired caps are fenced void
// (their non-actuation is single_owner's department), so counting
// them would double-charge nodes already counted under new owners.
func (t *Tree) DesiredSum() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum float64
	for _, ls := range t.leaves {
		if ls.mgr != nil {
			sum += ls.mgr.DesiredCapSum()
		}
	}
	return sum
}

// Status reports per-shard state, sorted by leaf name.
func (t *Tree) Status() []dcm.ShardStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	counts := make(map[string]int, len(t.leaves))
	for _, leaf := range t.owners {
		counts[leaf]++
	}
	out := make([]dcm.ShardStatus, 0, len(t.leaves))
	for _, name := range t.memberNames() {
		ls := t.leaves[name]
		out = append(out, dcm.ShardStatus{
			Leaf:        name,
			Alive:       ls.mgr != nil,
			Epoch:       t.epoch,
			Nodes:       counts[name],
			BudgetWatts: ls.budget,
			Infeasible:  ls.infeasible,
		})
	}
	return out
}

// Infeasible reports whether the last cascade could not fit the
// datacenter budget above the platform minimums.
func (t *Tree) Infeasible() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.infeasible
}
