package shard

import (
	"fmt"
	"io"
	"sync"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
)

// The test plant: a set of in-process BMC endpoints sharing one
// ipmi.Mux, so the per-node leaf connections and the tree's batch
// transport exercise the same dispatch — and the same fence
// watermarks — the real deployment would.

type plantNode struct {
	mu       sync.Mutex
	min, max float64
	watts    float64
	limit    ipmi.PowerLimit
	srv      *ipmi.Server
}

func (n *plantNode) DeviceInfo() ipmi.DeviceInfo { return ipmi.DeviceInfo{DeviceID: 1} }
func (n *plantNode) PowerReading() ipmi.PowerReading {
	n.mu.Lock()
	defer n.mu.Unlock()
	return ipmi.PowerReading{CurrentWatts: n.watts, AverageWatts: n.watts}
}
func (n *plantNode) SetPowerLimit(l ipmi.PowerLimit) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.limit = l
	return nil
}
func (n *plantNode) PowerLimit() ipmi.PowerLimit {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.limit
}
func (n *plantNode) PStateInfo() ipmi.PStateInfo { return ipmi.PStateInfo{Count: 16, FreqMHz: 2400} }
func (n *plantNode) GatingLevel() int            { return 0 }
func (n *plantNode) Capabilities() ipmi.Capabilities {
	n.mu.Lock()
	defer n.mu.Unlock()
	return ipmi.Capabilities{MinCapWatts: n.min, MaxCapWatts: n.max}
}
func (n *plantNode) Health() ipmi.Health { return ipmi.Health{} }

type plant struct {
	mu    sync.Mutex
	mux   *ipmi.Mux
	nodes map[string]*plantNode // by addr
	down  bool                  // all dials and exchanges fail
}

func newPlant() *plant {
	return &plant{mux: ipmi.NewMux(), nodes: make(map[string]*plantNode)}
}

func (p *plant) addNode(addr string, id uint32, min, max, watts float64) *plantNode {
	n := &plantNode{min: min, max: max, watts: watts}
	n.srv = ipmi.NewServer(n)
	p.mu.Lock()
	p.nodes[addr] = n
	p.mu.Unlock()
	p.mux.Register(id, n.srv)
	return n
}

func (p *plant) setDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

func (p *plant) isDown() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// dial is the leaf managers' dcm.Dialer: an in-process BMC that
// round-trips real frames through the node's ipmi.Server dispatch.
func (p *plant) dial(addr string) (dcm.BMC, error) {
	if p.isDown() {
		return nil, fmt.Errorf("plant: link down")
	}
	p.mu.Lock()
	n := p.nodes[addr]
	p.mu.Unlock()
	if n == nil {
		return nil, fmt.Errorf("plant: unknown addr %q", addr)
	}
	return &loopBMC{plant: p, srv: n.srv}, nil
}

// loopBMC drives one node's server dispatch in-process.
type loopBMC struct {
	plant *plant
	srv   *ipmi.Server
	seq   uint32
}

func (b *loopBMC) call(cmd uint8, payload []byte) ([]byte, error) {
	if b.plant.isDown() {
		return nil, fmt.Errorf("plant: link down")
	}
	b.seq++
	resp := b.srv.Handle(ipmi.Frame{Seq: b.seq, NetFn: ipmi.NetFnOEM, Cmd: cmd, Payload: payload})
	if len(resp.Payload) < 1 {
		return nil, io.ErrUnexpectedEOF
	}
	switch cc := resp.Payload[0]; cc {
	case ipmi.CCOK:
		return resp.Payload[1:], nil
	case ipmi.CCStaleEpoch:
		return nil, ipmi.ErrStaleEpoch
	default:
		return nil, fmt.Errorf("plant: completion code %#x", cc)
	}
}

func (b *loopBMC) GetDeviceID() (ipmi.DeviceInfo, error) {
	p, err := b.call(ipmi.CmdGetDeviceID, nil)
	if err != nil {
		return ipmi.DeviceInfo{}, err
	}
	return ipmi.DecodeDeviceInfo(p)
}
func (b *loopBMC) GetPowerReading() (ipmi.PowerReading, error) {
	p, err := b.call(ipmi.CmdGetPowerReading, nil)
	if err != nil {
		return ipmi.PowerReading{}, err
	}
	return ipmi.DecodePowerReading(p)
}
func (b *loopBMC) SetPowerLimit(l ipmi.PowerLimit) error {
	_, err := b.call(ipmi.CmdSetPowerLimit, ipmi.EncodePowerLimit(l))
	return err
}
func (b *loopBMC) GetPowerLimit() (ipmi.PowerLimit, error) {
	p, err := b.call(ipmi.CmdGetPowerLimit, nil)
	if err != nil {
		return ipmi.PowerLimit{}, err
	}
	return ipmi.DecodePowerLimit(p)
}
func (b *loopBMC) GetPStateInfo() (ipmi.PStateInfo, error) {
	p, err := b.call(ipmi.CmdGetPStateInfo, nil)
	if err != nil {
		return ipmi.PStateInfo{}, err
	}
	return ipmi.DecodePStateInfo(p)
}
func (b *loopBMC) GetGatingLevel() (int, error) {
	p, err := b.call(ipmi.CmdGetGatingLevel, nil)
	if err != nil {
		return 0, err
	}
	if len(p) != 1 {
		return 0, fmt.Errorf("plant: gating payload length %d", len(p))
	}
	return int(p[0]), nil
}
func (b *loopBMC) GetCapabilities() (ipmi.Capabilities, error) {
	p, err := b.call(ipmi.CmdGetCapabilities, nil)
	if err != nil {
		return ipmi.Capabilities{}, err
	}
	return ipmi.DecodeCapabilities(p)
}
func (b *loopBMC) GetHealth() (ipmi.Health, error) {
	p, err := b.call(ipmi.CmdGetHealth, nil)
	if err != nil {
		return ipmi.Health{}, err
	}
	return ipmi.DecodeHealth(p)
}
func (b *loopBMC) Close() error { return nil }

// muxTransport is the tree's BatchTransport over the plant's mux,
// round-tripping real batch frames through Mux.Handle.
type muxTransport struct {
	mux *ipmi.Mux
	seq uint32
}

func (m *muxTransport) exchange(cmd uint8, payload []byte) ([]byte, error) {
	m.seq++
	resp := m.mux.Handle(ipmi.Frame{Seq: m.seq, NetFn: ipmi.NetFnOEM, Cmd: cmd, Payload: payload})
	if len(resp.Payload) < 1 {
		return nil, io.ErrUnexpectedEOF
	}
	if cc := resp.Payload[0]; cc != ipmi.CCOK {
		return nil, fmt.Errorf("plant: batch completion code %#x", cc)
	}
	return resp.Payload[1:], nil
}

func (m *muxTransport) BatchPoll(ids []uint32) ([]ipmi.BatchPollResult, error) {
	payload, err := ipmi.EncodeBatchPollRequest(ids)
	if err != nil {
		return nil, err
	}
	b, err := m.exchange(ipmi.CmdBatchPoll, payload)
	if err != nil {
		return nil, err
	}
	return ipmi.DecodeBatchPollResponse(b)
}

func (m *muxTransport) BatchSet(entries []ipmi.BatchSetEntry) ([]ipmi.BatchSetResult, error) {
	payload, err := ipmi.EncodeBatchSetRequest(entries)
	if err != nil {
		return nil, err
	}
	b, err := m.exchange(ipmi.CmdBatchSet, payload)
	if err != nil {
		return nil, err
	}
	return ipmi.DecodeBatchSetResponse(b)
}

// fakeClock is the injected manager clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newLeafMgr builds a deterministic, fast-failing leaf manager over
// the plant.
func newLeafMgr(p *plant, clock *fakeClock) *dcm.Manager {
	m := dcm.NewManager(p.dial)
	m.RetryBaseDelay = time.Nanosecond
	m.RetryMaxDelay = time.Nanosecond
	m.StaleAfter = time.Millisecond
	m.PollConcurrency = 1
	m.Clock = clock.now
	m.Breaker = dcm.BreakerConfig{FailureThreshold: -1}
	return m
}
