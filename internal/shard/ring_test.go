package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

func leafNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("leaf-%d", i)
	}
	return out
}

func assign(r *Ring, nodes int) map[uint32]string {
	out := make(map[uint32]string, nodes)
	for id := uint32(0); id < uint32(nodes); id++ {
		leaf, ok := r.Owner(id)
		if !ok {
			panic("empty ring")
		}
		out[id] = leaf
	}
	return out
}

// TestRingDeterministicPerSeed: the assignment is a pure function of
// (seed, membership) — rebuilt rings agree exactly, different seeds
// disagree somewhere.
func TestRingDeterministicPerSeed(t *testing.T) {
	const nodes = 4096
	for _, seed := range []uint64{0, 1, 7, 0xDEADBEEF} {
		a := NewRing(seed, 64)
		a.SetLeaves(leafNames(5))
		b := NewRing(seed, 64)
		b.SetLeaves(leafNames(5))
		ga, gb := assign(a, nodes), assign(b, nodes)
		for id := range ga {
			if ga[id] != gb[id] {
				t.Fatalf("seed %d: node %d owner %s vs %s", seed, id, ga[id], gb[id])
			}
		}
	}
	a := NewRing(1, 64)
	a.SetLeaves(leafNames(5))
	b := NewRing(2, 64)
	b.SetLeaves(leafNames(5))
	ga, gb := assign(a, nodes), assign(b, nodes)
	same := 0
	for id := range ga {
		if ga[id] == gb[id] {
			same++
		}
	}
	if same == nodes {
		t.Fatal("different seeds produced identical assignments")
	}
}

// TestRingPermutationInvariance: ownership cannot depend on the order
// leaves joined — only on the membership set.
func TestRingPermutationInvariance(t *testing.T) {
	const nodes = 2048
	names := leafNames(7)
	base := NewRing(42, 64)
	base.SetLeaves(names)
	want := assign(base, nodes)

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		perm := append([]string(nil), names...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		r := NewRing(42, 64)
		r.SetLeaves(perm)
		got := assign(r, nodes)
		for id := range want {
			if got[id] != want[id] {
				t.Fatalf("trial %d: node %d owner %s vs %s", trial, id, got[id], want[id])
			}
		}
	}
}

// TestRingBalance: at 64 vnodes every leaf's share stays within ±20%
// of even.
func TestRingBalance(t *testing.T) {
	const nodes = 20000
	for _, leaves := range []int{2, 4, 8} {
		for _, seed := range []uint64{1, 7, 99} {
			r := NewRing(seed, 64)
			r.SetLeaves(leafNames(leaves))
			counts := make(map[string]int)
			for id, leaf := range assign(r, nodes) {
				_ = id
				counts[leaf]++
			}
			even := float64(nodes) / float64(leaves)
			for leaf, c := range counts {
				if dev := float64(c)/even - 1; dev > 0.20 || dev < -0.20 {
					t.Errorf("leaves=%d seed=%d: %s holds %d nodes (%.0f%% of even)",
						leaves, seed, leaf, c, 100*float64(c)/even)
				}
			}
			if len(counts) != leaves {
				t.Errorf("leaves=%d seed=%d: only %d leaves own nodes", leaves, seed, len(counts))
			}
		}
	}
}

// TestRingMinimalDisruption: adding or removing one leaf moves at most
// a 2/leaves + ε fraction of nodes, and every move on an add goes TO
// the new leaf (no unrelated churn).
func TestRingMinimalDisruption(t *testing.T) {
	const nodes = 20000
	const eps = 0.05
	for _, leaves := range []int{4, 8} {
		for _, seed := range []uint64{1, 7, 99} {
			names := leafNames(leaves)
			r := NewRing(seed, 64)
			r.SetLeaves(names)
			before := assign(r, nodes)

			// Add one leaf.
			r.SetLeaves(append(append([]string(nil), names...), "leaf-new"))
			after := assign(r, nodes)
			moved := 0
			for id := range before {
				if after[id] != before[id] {
					moved++
					if after[id] != "leaf-new" {
						t.Fatalf("leaves=%d seed=%d: node %d moved %s -> %s, not to the new leaf",
							leaves, seed, id, before[id], after[id])
					}
				}
			}
			if frac := float64(moved) / nodes; frac > 2.0/float64(leaves)+eps {
				t.Errorf("leaves=%d seed=%d: add moved %.1f%% > %.1f%%",
					leaves, seed, 100*frac, 100*(2.0/float64(leaves)+eps))
			}

			// Remove one leaf (back to the original membership).
			r.SetLeaves(names)
			restored := assign(r, nodes)
			for id := range before {
				if restored[id] != before[id] {
					t.Fatalf("leaves=%d seed=%d: remove did not restore node %d", leaves, seed, id)
				}
			}
			removed := names[leaves-1]
			r.SetLeaves(names[:leaves-1])
			shrunk := assign(r, nodes)
			moved = 0
			for id := range before {
				if shrunk[id] != before[id] {
					moved++
					if before[id] != removed {
						t.Fatalf("leaves=%d seed=%d: node %d moved off surviving leaf %s",
							leaves, seed, id, before[id])
					}
				}
			}
			if frac := float64(moved) / nodes; frac > 2.0/float64(leaves)+eps {
				t.Errorf("leaves=%d seed=%d: remove moved %.1f%% > %.1f%%",
					leaves, seed, 100*frac, 100*(2.0/float64(leaves)+eps))
			}
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(1, 64)
	if _, ok := r.Owner(5); ok {
		t.Error("empty ring claimed an owner")
	}
	r.SetLeaves([]string{"only"})
	if leaf, ok := r.Owner(5); !ok || leaf != "only" {
		t.Errorf("single-leaf ring: %q %v", leaf, ok)
	}
}
