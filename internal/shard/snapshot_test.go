package shard

import (
	"bytes"
	"testing"
)

func sampleStates() []TreeState {
	return []TreeState{
		{Seed: 7, Vnodes: 64, Epoch: 1},
		{
			Seed: 42, Vnodes: 16, Epoch: 9, Rebalances: 3, Budget: 1234.5, Infeasible: true,
			Leaves: []LeafRecord{
				{Name: "leaf-a", Budget: 400.25},
				{Name: "leaf-b", Budget: 300, Infeasible: true},
			},
			Nodes: []NodeRecord{
				{Name: "n0", Addr: "10.0.0.1:623", Owner: "leaf-a", ID: 1},
				{Name: "n1", Addr: "10.0.0.2:623", Owner: "leaf-b", ID: 2},
				{Name: "n2", Addr: "10.0.0.3:623", Owner: "leaf-a", ID: 3},
			},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, st := range sampleStates() {
		b, err := EncodeSnapshot(st)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeSnapshot(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		b2, err := EncodeSnapshot(got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatal("snapshot round trip is not byte-stable")
		}
	}
}

func TestSnapshotCRCDetectsCorruption(t *testing.T) {
	b, err := EncodeSnapshot(sampleStates()[1])
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for i := range b {
		for _, flip := range []byte{0x01, 0x80} {
			c := append([]byte(nil), b...)
			c[i] ^= flip
			if _, err := DecodeSnapshot(c); err == nil {
				t.Fatalf("corruption at byte %d (flip %#x) decoded cleanly", i, flip)
			}
		}
	}
}

// FuzzAggregatorSnapshot pins the canonical-form property: any byte
// string DecodeSnapshot accepts re-encodes to exactly those bytes, and
// no input panics the decoder.
func FuzzAggregatorSnapshot(f *testing.F) {
	for _, st := range sampleStates() {
		if b, err := EncodeSnapshot(st); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte("NCSM"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		b, err := EncodeSnapshot(st)
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(b, data) {
			t.Fatalf("decode∘encode not identity:\n in: %x\nout: %x", data, b)
		}
	})
}
