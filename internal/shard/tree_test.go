package shard

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
)

// env is one assembled two-level control plane over an in-process
// plant: a tree, its leaves, and the node population.
type env struct {
	t     *testing.T
	plant *plant
	clock *fakeClock
	tree  *Tree
	mgrs  map[string]*dcm.Manager
	nodes map[string]*plantNode // node name -> plant endpoint
	addrs map[string]string     // node name -> addr
	ids   map[string]uint32     // node name -> ring id
}

func newEnv(t *testing.T, leaves []string, nodes int) *env {
	t.Helper()
	e := &env{
		t:     t,
		plant: newPlant(),
		clock: newFakeClock(),
		mgrs:  make(map[string]*dcm.Manager),
		nodes: make(map[string]*plantNode),
		addrs: make(map[string]string),
		ids:   make(map[string]uint32),
	}
	e.tree = NewTree(7, 16, &muxTransport{mux: e.plant.mux}, "")
	for _, name := range leaves {
		mgr := newLeafMgr(e.plant, e.clock)
		e.mgrs[name] = mgr
		if _, err := e.tree.AddLeaf(name, mgr); err != nil {
			t.Fatalf("AddLeaf(%s): %v", name, err)
		}
	}
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("node-%02d", i)
		addr := fmt.Sprintf("10.0.0.%d:623", i+1)
		id := uint32(i + 1)
		e.nodes[name] = e.plant.addNode(addr, id, 80, 200, 120)
		e.addrs[name] = addr
		e.ids[name] = id
		if err := e.tree.AddNode(name, addr, id); err != nil {
			t.Fatalf("AddNode(%s): %v", name, err)
		}
	}
	e.pollAll()
	return e
}

func (e *env) pollAll() {
	for _, name := range e.tree.Leaves() {
		if mgr := e.tree.Leaf(name); mgr != nil {
			mgr.Poll()
		}
	}
}

// attachedMinSum sums platform minimums over every node registered
// with an attached leaf — the infeasible-case conservation bound.
func (e *env) attachedMinSum() float64 {
	var sum float64
	for _, name := range e.tree.Leaves() {
		mgr := e.tree.Leaf(name)
		if mgr == nil {
			continue
		}
		for _, n := range mgr.Nodes() {
			sum += n.MinCapWatts
		}
	}
	return sum
}

// assertTreeBudgetConserved is the test-side statement of the
// tree_budget_conserved invariant: the sum of enabled desired caps
// across attached leaves never exceeds the datacenter budget — or the
// platform-minimum floor when the budget is infeasible.
func (e *env) assertTreeBudgetConserved(budget float64) {
	e.t.Helper()
	const tol = 1e-6
	bound := budget
	if e.tree.Infeasible() {
		bound = e.attachedMinSum()
	}
	if sum := e.tree.DesiredSum(); sum > bound+tol {
		e.t.Fatalf("tree_budget_conserved violated: desired sum %.6f > bound %.6f (budget %.1f, infeasible %v)",
			sum, bound, budget, e.tree.Infeasible())
	}
}

// assertSingleOwner checks that every tree node is registered with
// exactly one attached leaf manager.
func (e *env) assertSingleOwner() {
	e.t.Helper()
	seen := make(map[string]string)
	for _, leaf := range e.tree.Leaves() {
		mgr := e.tree.Leaf(leaf)
		if mgr == nil {
			continue
		}
		for _, n := range mgr.Nodes() {
			if prev, dup := seen[n.Name]; dup {
				e.t.Fatalf("node %s registered with both %s and %s", n.Name, prev, leaf)
			}
			seen[n.Name] = leaf
		}
	}
	for name := range e.nodes {
		if owner, ok := e.tree.Owner(name); ok {
			if got := seen[name]; got != owner {
				e.t.Fatalf("node %s: tree owner %s, registered with %q", name, owner, got)
			}
		}
	}
}

// ownedBy lists the node names the tree assigns to leaf, sorted.
func (e *env) ownedBy(leaf string) []string {
	var out []string
	for name := range e.nodes {
		if owner, ok := e.tree.Owner(name); ok && owner == leaf {
			out = append(out, name)
		}
	}
	return out
}

func TestTreeOwnershipMatchesRingAndLeaves(t *testing.T) {
	e := newEnv(t, []string{"leaf-a", "leaf-b", "leaf-c"}, 9)
	e.assertSingleOwner()
	total := 0
	for _, leaf := range e.tree.Leaves() {
		total += len(e.ownedBy(leaf))
	}
	if total != 9 {
		t.Fatalf("owned nodes = %d, want 9", total)
	}
	if got := e.tree.Epoch(); got != 1 {
		t.Fatalf("epoch after assembly = %d, want 1 (no handoffs yet)", got)
	}
}

// TestBudgetCascadeEdgeCases is the table the ISSUE asks for: every
// edge case ends with the tree_budget_conserved assertion.
func TestBudgetCascadeEdgeCases(t *testing.T) {
	cases := []struct {
		name           string
		leaves         []string
		nodes          int
		budget         float64
		prep           func(e *env)
		wantInfeasible bool
		allowApplyErr  bool
		check          func(e *env, res CascadeResult)
	}{
		{
			name:   "feasible-three-leaves",
			leaves: []string{"leaf-a", "leaf-b", "leaf-c"},
			nodes:  6, budget: 900,
			check: func(e *env, res CascadeResult) {
				var granted float64
				for _, g := range res.Leaves {
					granted += g
				}
				if granted > 900+1e-6 {
					e.t.Fatalf("granted %.3f > budget 900", granted)
				}
			},
		},
		{
			name:   "budget-below-shard-minimums",
			leaves: []string{"leaf-a", "leaf-b", "leaf-c"},
			nodes:  6, budget: 300, // Σ min = 6×80 = 480
			wantInfeasible: true,
			check: func(e *env, res CascadeResult) {
				// Pinned to minimums: each leaf's grant is exactly its
				// nodes' platform-minimum sum.
				for _, leaf := range e.tree.Leaves() {
					var minSum float64
					for _, n := range e.tree.Leaf(leaf).Nodes() {
						minSum += n.MinCapWatts
					}
					if g := res.Leaves[leaf]; g != minSum {
						e.t.Fatalf("leaf %s grant %.3f, want pinned minimum %.3f", leaf, g, minSum)
					}
				}
			},
		},
		{
			name:   "empty-shard",
			leaves: []string{"leaf-a", "leaf-b", "leaf-c"},
			nodes:  1, budget: 400,
			check: func(e *env, res CascadeResult) {
				empties := 0
				for _, leaf := range e.tree.Leaves() {
					if len(e.ownedBy(leaf)) == 0 {
						empties++
						if g := res.Leaves[leaf]; g != 0 {
							e.t.Fatalf("empty leaf %s granted %.3f, want 0", leaf, g)
						}
					}
				}
				if empties == 0 {
					e.t.Fatal("fixture error: 1 node over 3 leaves left no shard empty")
				}
			},
		},
		{
			name:   "all-leaves-stale",
			leaves: []string{"leaf-a", "leaf-b"},
			nodes:  4, budget: 700,
			prep: func(e *env) {
				e.plant.setDown(true)
				e.pollAll() // marks every node unreachable
				e.clock.advance(2 * time.Millisecond)
			},
			allowApplyErr: true,
			check: func(e *env, res CascadeResult) {
				// Stale nodes are pinned to their minimums by each leaf's
				// allocator; the desired sum collapses to the floor.
				const wantSum = 4 * 80.0
				if sum := e.tree.DesiredSum(); math.Abs(sum-wantSum) > 1e-6 {
					e.t.Fatalf("stale desired sum %.3f, want %.3f", sum, wantSum)
				}
			},
		},
		{
			name:   "leaf-rejoining-mid-epoch",
			leaves: []string{"leaf-a", "leaf-b", "leaf-c"},
			nodes:  6, budget: 900,
			prep: func(e *env) {
				if _, err := e.tree.Rebalance(900); err != nil {
					e.t.Fatalf("initial rebalance: %v", err)
				}
				if _, err := e.tree.Seize("leaf-c"); err != nil {
					e.t.Fatalf("seize: %v", err)
				}
				if _, err := e.tree.Rebalance(900); err != nil {
					e.t.Fatalf("mid-epoch rebalance: %v", err)
				}
				// The leaf returns with a fresh (restarted) manager while
				// the epoch has moved on underneath it.
				if _, err := e.tree.Rejoin("leaf-c", newLeafMgr(e.plant, e.clock)); err != nil {
					e.t.Fatalf("rejoin: %v", err)
				}
				e.pollAll()
			},
			check: func(e *env, res CascadeResult) {
				e.assertSingleOwner()
				if len(e.ownedBy("leaf-c")) == 0 {
					e.t.Fatal("rejoined leaf owns no nodes")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t, tc.leaves, tc.nodes)
			if tc.prep != nil {
				tc.prep(e)
			}
			res, err := e.tree.Rebalance(tc.budget)
			if err != nil && !tc.allowApplyErr {
				t.Fatalf("Rebalance: %v", err)
			}
			if res.Infeasible != tc.wantInfeasible {
				t.Fatalf("Infeasible = %v, want %v", res.Infeasible, tc.wantInfeasible)
			}
			e.assertTreeBudgetConserved(tc.budget)
			if tc.check != nil {
				tc.check(e, res)
			}
		})
	}
}

// TestCascadeWideTrees pins the regression where the top-level divide
// consumed every group in one call but the group loop still re-entered
// for trees with 9+ leaves, indexing past the single root grant. The
// cascade must hold its shape — one grant per leaf, conservation, the
// min floor — at every width the daemon accepts (-shards goes to 99).
func TestCascadeWideTrees(t *testing.T) {
	const budget = 10_000.0
	for n := 1; n <= 99; n++ {
		leaves := make([]demandSummary, n)
		var minSum float64
		for i := range leaves {
			leaves[i] = demandSummary{
				min:  40 + float64(i%7)*10,
				want: 90 + float64(i%13)*15,
				max:  200 + float64(i%5)*25,
			}
			minSum += leaves[i].min
		}
		grants := cascade(budget, leaves)
		if len(grants) != n {
			t.Fatalf("cascade over %d leaves returned %d grants", n, len(grants))
		}
		var sum float64
		for i, g := range grants {
			if g < leaves[i].min-1e-6 {
				t.Fatalf("%d leaves: grant[%d] = %.3f below min %.3f", n, i, g, leaves[i].min)
			}
			sum += g
		}
		if bound := math.Max(budget, minSum); sum > bound+1e-6 {
			t.Fatalf("%d leaves: granted %.3f > bound %.3f", n, sum, bound)
		}
	}
}

// TestRebalanceNineLeaves drives the 9+-shard rebalance end-to-end —
// the call that crashed the aggregator before the cascade fix.
func TestRebalanceNineLeaves(t *testing.T) {
	leaves := make([]string, 9)
	for i := range leaves {
		leaves[i] = fmt.Sprintf("leaf-%02d", i)
	}
	e := newEnv(t, leaves, 27)
	res, err := e.tree.Rebalance(4000)
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if len(res.Leaves) != 9 {
		t.Fatalf("rebalance granted %d leaves, want 9", len(res.Leaves))
	}
	e.assertTreeBudgetConserved(4000)
}

// TestSeizeBeforeAttachDefersRegistration pins the restore-flow
// nil-dereference: seizing a dead leaf before the survivors are
// re-attached hands nodes to unattached destinations. The handoff must
// move ownership without touching the nil managers, and Attach must
// reconcile the deferred nodes into the manager it binds.
func TestSeizeBeforeAttachDefersRegistration(t *testing.T) {
	e := newEnv(t, []string{"leaf-a", "leaf-b", "leaf-c"}, 9)
	if _, err := e.tree.Rebalance(1500); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	st := e.tree.State()

	restored, err := NewTreeFromState(st, &muxTransport{mux: e.plant.mux}, "")
	if err != nil {
		t.Fatalf("NewTreeFromState: %v", err)
	}
	lost := e.ownedBy("leaf-a")
	if len(lost) == 0 {
		t.Fatal("fixture error: leaf-a owns no nodes before seize")
	}
	// Seize the casualty while every survivor is still unattached: the
	// move is deferred, not a panic — and the deferral is reported.
	moved, err := restored.Seize("leaf-a")
	if err == nil {
		t.Fatal("Seize with unattached destinations reported no deferral")
	}
	if moved != len(lost) {
		t.Fatalf("Seize moved %d nodes, want %d", moved, len(lost))
	}
	for _, name := range lost {
		owner, ok := restored.Owner(name)
		if !ok || (owner != "leaf-b" && owner != "leaf-c") {
			t.Fatalf("node %s owner after seize = %q", name, owner)
		}
	}

	// Attach heals the deferral: every owned node registers with the
	// manager the leaf binds.
	for _, leaf := range []string{"leaf-b", "leaf-c"} {
		if err := restored.Attach(leaf, e.mgrs[leaf]); err != nil {
			t.Fatalf("Attach(%s): %v", leaf, err)
		}
		mgr := restored.Leaf(leaf)
		known := make(map[string]bool)
		for _, n := range mgr.Nodes() {
			known[n.Name] = true
		}
		for name := range e.nodes {
			if owner, _ := restored.Owner(name); owner == leaf && !known[name] {
				t.Fatalf("node %s owned by %s but not registered after Attach", name, leaf)
			}
		}
	}
}

// TestAddNodesPersistsPartialBatch pins the crash-window fix: a batch
// that fails partway must persist the nodes it already registered, so
// an aggregator restart does not silently drop them from the map.
func TestAddNodesPersistsPartialBatch(t *testing.T) {
	dir := t.TempDir()
	path := SnapshotPathIn(dir)
	plant := newPlant()
	clock := newFakeClock()
	tree := NewTree(11, 8, &muxTransport{mux: plant.mux}, path)
	for _, leaf := range []string{"l0", "l1"} {
		if _, err := tree.AddLeaf(leaf, newLeafMgr(plant, clock)); err != nil {
			t.Fatalf("AddLeaf: %v", err)
		}
	}
	plant.addNode("10.2.0.1:623", 1, 60, 150, 90)
	err := tree.AddNodes([]NodeInfo{
		{Name: "n0", Addr: "10.2.0.1:623", ID: 1},
		{Name: "n1", Addr: "10.2.0.99:623", ID: 2}, // unknown addr: dial fails
	})
	if err == nil {
		t.Fatal("AddNodes with an unreachable node reported no error")
	}
	st, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot after partial batch: %v", err)
	}
	found := false
	for _, n := range st.Nodes {
		if n.Name == "n0" {
			found = true
		}
	}
	if !found {
		t.Fatal("partial batch not persisted: n0 absent from the snapshot")
	}
}

func TestHandoffFencesDeposedLeaf(t *testing.T) {
	e := newEnv(t, []string{"leaf-a", "leaf-b"}, 8)
	if _, err := e.tree.Rebalance(1200); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	moved := e.ownedBy("leaf-b")
	if len(moved) == 0 {
		t.Fatal("fixture error: leaf-b owns no nodes before seize")
	}
	deposed := e.mgrs["leaf-b"]
	epochBefore := e.tree.Epoch()

	n, err := e.tree.Seize("leaf-b")
	if err != nil {
		t.Fatalf("Seize: %v", err)
	}
	if n != len(moved) {
		t.Fatalf("Seize moved %d nodes, want %d", n, len(moved))
	}
	if got := e.tree.Epoch(); got != epochBefore+1 {
		t.Fatalf("epoch after seize = %d, want %d", got, epochBefore+1)
	}
	e.assertSingleOwner()

	// The deposed leaf still thinks it owns its nodes; the plant must
	// refuse its pushes from the moment the handoff completed.
	victim := moved[0]
	limitBefore := e.nodes[victim].PowerLimit()
	if err := deposed.SetNodeCap(victim, 155); !errors.Is(err, ipmi.ErrStaleEpoch) {
		t.Fatalf("deposed push error = %v, want ErrStaleEpoch", err)
	}
	if got := e.nodes[victim].PowerLimit(); got != limitBefore {
		t.Fatalf("deposed push changed the plant limit: %+v -> %+v", limitBefore, got)
	}

	// The new owner's push lands.
	newOwner, _ := e.tree.Owner(victim)
	if err := e.tree.Leaf(newOwner).SetNodeCap(victim, 155); err != nil {
		t.Fatalf("new owner push: %v", err)
	}
	if got := e.nodes[victim].PowerLimit(); !got.Enabled || got.CapWatts != 155 {
		t.Fatalf("new owner push not applied: %+v", got)
	}
	e.assertTreeBudgetConserved(1200)
}

func TestBreakHandoffAdmitsDualWriters(t *testing.T) {
	e := newEnv(t, []string{"leaf-a", "leaf-b"}, 8)
	e.tree.BreakHandoff = true
	if _, err := e.tree.Rebalance(1200); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	moved := e.ownedBy("leaf-b")
	if len(moved) == 0 {
		t.Fatal("fixture error: leaf-b owns no nodes before seize")
	}
	deposed := e.mgrs["leaf-b"]
	epochBefore := e.tree.Epoch()
	if _, err := e.tree.Seize("leaf-b"); err != nil {
		t.Fatalf("Seize: %v", err)
	}
	if got := e.tree.Epoch(); got != epochBefore {
		t.Fatalf("broken handoff bumped the epoch: %d -> %d", epochBefore, got)
	}
	// With the bump sabotaged, the plant admits the deposed writer —
	// the dual-writer hazard single_owner exists to catch.
	if err := deposed.SetNodeCap(moved[0], 155); err != nil {
		t.Fatalf("deposed push unexpectedly rejected: %v", err)
	}
	if got := e.nodes[moved[0]].PowerLimit(); !got.Enabled || got.CapWatts != 155 {
		t.Fatalf("deposed push not applied under -break-handoff: %+v", got)
	}
}

func TestAggregatorRestartFromSnapshot(t *testing.T) {
	e := newEnv(t, []string{"leaf-a", "leaf-b", "leaf-c"}, 6)
	if _, err := e.tree.Rebalance(900); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	st := e.tree.State()

	restored, err := NewTreeFromState(st, &muxTransport{mux: e.plant.mux}, "")
	if err != nil {
		t.Fatalf("NewTreeFromState: %v", err)
	}
	if restored.Epoch() != st.Epoch {
		t.Fatalf("restored epoch %d, want %d", restored.Epoch(), st.Epoch)
	}
	// Ownership survives the restart byte-for-byte.
	for _, n := range st.Nodes {
		owner, ok := restored.Owner(n.Name)
		if !ok || owner != n.Owner {
			t.Fatalf("restored owner of %s = %q, want %q", n.Name, owner, n.Owner)
		}
	}
	// leaf-a and leaf-b survived the aggregator crash; leaf-c died with
	// it. Re-bind the survivors, seize the casualty.
	for _, name := range []string{"leaf-a", "leaf-b"} {
		if err := restored.Attach(name, e.mgrs[name]); err != nil {
			t.Fatalf("Attach(%s): %v", name, err)
		}
	}
	if _, err := restored.Seize("leaf-c"); err != nil {
		t.Fatalf("Seize: %v", err)
	}
	if restored.Epoch() <= st.Epoch {
		t.Fatalf("seize after restore did not advance the epoch: %d", restored.Epoch())
	}
	for name := range e.nodes {
		owner, ok := restored.Owner(name)
		if !ok || (owner != "leaf-a" && owner != "leaf-b") {
			t.Fatalf("node %s owner after seize = %q", name, owner)
		}
	}
	// The dead leaf's manager — if it were still running somewhere —
	// is fenced out by the post-restart epoch.
	var lost string
	for name := range e.nodes {
		if owner, _ := e.tree.Owner(name); owner == "leaf-c" {
			lost = name
			break
		}
	}
	if lost != "" {
		if err := e.mgrs["leaf-c"].SetNodeCap(lost, 140); !errors.Is(err, ipmi.ErrStaleEpoch) {
			t.Fatalf("dead leaf push error = %v, want ErrStaleEpoch", err)
		}
	}
}

func TestSnapshotPersistAndLoad(t *testing.T) {
	dir := t.TempDir()
	path := SnapshotPathIn(dir)
	plant := newPlant()
	clock := newFakeClock()
	tree := NewTree(11, 8, &muxTransport{mux: plant.mux}, path)
	for _, leaf := range []string{"l0", "l1"} {
		if _, err := tree.AddLeaf(leaf, newLeafMgr(plant, clock)); err != nil {
			t.Fatalf("AddLeaf: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		addr := fmt.Sprintf("10.1.0.%d:623", i+1)
		plant.addNode(addr, uint32(i+1), 60, 150, 90)
		if err := tree.AddNode(fmt.Sprintf("n%d", i), addr, uint32(i+1)); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	if _, err := tree.Rebalance(500); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	st, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	want := tree.State()
	a, _ := EncodeSnapshot(st)
	b, _ := EncodeSnapshot(want)
	if string(a) != string(b) {
		t.Fatal("persisted snapshot disagrees with live state")
	}
}

func TestHandleControlRoutesAcrossLeaves(t *testing.T) {
	e := newEnv(t, []string{"leaf-a", "leaf-b"}, 6)

	resp := e.tree.HandleControl(dcm.Request{Op: "nodes"})
	if !resp.OK || resp.Role != RoleAggregator {
		t.Fatalf("nodes resp: %+v", resp)
	}
	if len(resp.Nodes) != 6 {
		t.Fatalf("nodes merged %d entries, want 6", len(resp.Nodes))
	}
	for i := 1; i < len(resp.Nodes); i++ {
		if resp.Nodes[i-1].Name >= resp.Nodes[i].Name {
			t.Fatalf("merged nodes not sorted at %d: %s >= %s", i, resp.Nodes[i-1].Name, resp.Nodes[i].Name)
		}
	}

	// add: a node the control plane names; the tree hashes the ID.
	addr := "10.0.0.99:623"
	e.plant.addNode(addr, uint32(fnv64a("node-99")), 80, 200, 110)
	if resp := e.tree.HandleControl(dcm.Request{Op: "add", Name: "node-99", Addr: addr}); !resp.OK {
		t.Fatalf("add resp: %+v", resp)
	}
	if _, ok := e.tree.Owner("node-99"); !ok {
		t.Fatal("added node has no owner")
	}

	// setcap routes to the owning leaf.
	if resp := e.tree.HandleControl(dcm.Request{Op: "setcap", Name: "node-99", Cap: 130}); !resp.OK {
		t.Fatalf("setcap resp: %+v", resp)
	}
	owner, _ := e.tree.Owner("node-99")
	var found bool
	for _, n := range e.tree.Leaf(owner).Nodes() {
		if n.Name == "node-99" && n.CapWatts == 130 {
			found = true
		}
	}
	if !found {
		t.Fatal("setcap did not reach the owning leaf")
	}

	// budget cascades; allocations come back sorted by leaf.
	resp = e.tree.HandleControl(dcm.Request{Op: "budget", Budget: 1000})
	if !resp.OK || len(resp.Allocs) != 2 {
		t.Fatalf("budget resp: %+v", resp)
	}
	if resp.Allocs[0].Name != "leaf-a" || resp.Allocs[1].Name != "leaf-b" {
		t.Fatalf("allocs not sorted by leaf: %+v", resp.Allocs)
	}

	resp = e.tree.HandleControl(dcm.Request{Op: "shards"})
	if !resp.OK || len(resp.Shards) != 2 {
		t.Fatalf("shards resp: %+v", resp)
	}
	if !resp.Shards[0].Alive || resp.Shards[0].Leaf != "leaf-a" {
		t.Fatalf("shards[0]: %+v", resp.Shards[0])
	}

	// trace answers from any attached leaf (dcmd shares one ring).
	if resp := e.tree.HandleControl(dcm.Request{Op: "trace"}); !resp.OK {
		t.Fatalf("trace resp: %+v", resp)
	}

	if resp := e.tree.HandleControl(dcm.Request{Op: "no-such-op"}); resp.OK || resp.Error == "" {
		t.Fatalf("unsupported op should fail: %+v", resp)
	}
}
