package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// The aggregator journals its shard map — membership, node identities,
// ownership, epochs, budgets — as a single-frame snapshot rewritten
// atomically on every mutation. A restarted aggregator restores the
// map and resumes with the same ownership (Attach re-binds live leaf
// managers; Seize expels the ones that died with it). The snapshot is
// CRC-32-framed and canonically ordered, so decode∘encode is the
// identity on the accepted set — the property FuzzAggregatorSnapshot
// pins.

// Snapshot frame layout (big-endian):
//
//	magic "NCSM" version(1)
//	seed(8) vnodes(4) epoch(8) rebalances(8) budget(8 float bits)
//	flags(1: bit0 infeasible)
//	leafCount(2) × [ nameLen(2) name budget(8) flags(1) ]
//	nodeCount(4) × [ nameLen(2) name addrLen(2) addr ownerLen(2) owner id(4) ]
//	crc32(4) over everything above
const (
	snapMagic   = "NCSM"
	snapVersion = 1
)

// TreeState is the aggregator's journaled shard map.
type TreeState struct {
	Seed       uint64
	Vnodes     int
	Epoch      uint64
	Rebalances uint64
	Budget     float64
	Infeasible bool
	Leaves     []LeafRecord // sorted by name
	Nodes      []NodeRecord // sorted by name
}

// LeafRecord is one member leaf's persisted state.
type LeafRecord struct {
	Name       string
	Budget     float64
	Infeasible bool
}

// NodeRecord is one node's persisted identity and ownership.
type NodeRecord struct {
	Name  string
	Addr  string
	Owner string
	ID    uint32
}

func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("shard: snapshot string of %d bytes", len(s))
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}

// EncodeSnapshot packs st canonically: leaves and nodes are sorted by
// name first, so two aggregators with the same state emit identical
// bytes.
func EncodeSnapshot(st TreeState) ([]byte, error) {
	leaves := append([]LeafRecord(nil), st.Leaves...)
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Name < leaves[j].Name })
	nodes := append([]NodeRecord(nil), st.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	if len(leaves) > math.MaxUint16 {
		return nil, fmt.Errorf("shard: %d leaves exceed snapshot format", len(leaves))
	}
	if len(nodes) > math.MaxUint32 {
		return nil, fmt.Errorf("shard: %d nodes exceed snapshot format", len(nodes))
	}

	b := append([]byte(nil), snapMagic...)
	b = append(b, snapVersion)
	b = binary.BigEndian.AppendUint64(b, st.Seed)
	b = binary.BigEndian.AppendUint32(b, uint32(st.Vnodes))
	b = binary.BigEndian.AppendUint64(b, st.Epoch)
	b = binary.BigEndian.AppendUint64(b, st.Rebalances)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(st.Budget))
	var flags byte
	if st.Infeasible {
		flags |= 1
	}
	b = append(b, flags)

	b = binary.BigEndian.AppendUint16(b, uint16(len(leaves)))
	var err error
	for _, l := range leaves {
		if b, err = appendString(b, l.Name); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(l.Budget))
		var lf byte
		if l.Infeasible {
			lf |= 1
		}
		b = append(b, lf)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(nodes)))
	for _, n := range nodes {
		if b, err = appendString(b, n.Name); err != nil {
			return nil, err
		}
		if b, err = appendString(b, n.Addr); err != nil {
			return nil, err
		}
		if b, err = appendString(b, n.Owner); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint32(b, n.ID)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// snapReader walks an encoded snapshot with bounds checking.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("shard: snapshot truncated at byte %d", r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *snapReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.BigEndian.Uint16(b)
	}
	return 0
}

func (r *snapReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.BigEndian.Uint32(b)
	}
	return 0
}

func (r *snapReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.BigEndian.Uint64(b)
	}
	return 0
}

func (r *snapReader) str() string {
	n := int(r.u16())
	if b := r.take(n); b != nil {
		return string(b)
	}
	return ""
}

// DecodeSnapshot unpacks and validates an encoded snapshot: magic,
// version, CRC, exact length, and canonical (sorted, duplicate-free)
// ordering — a snapshot that decodes is one EncodeSnapshot could have
// produced.
func DecodeSnapshot(b []byte) (TreeState, error) {
	if len(b) < len(snapMagic)+1+4 {
		return TreeState{}, fmt.Errorf("shard: snapshot of %d bytes", len(b))
	}
	if string(b[:len(snapMagic)]) != snapMagic {
		return TreeState{}, fmt.Errorf("shard: bad snapshot magic")
	}
	if b[len(snapMagic)] != snapVersion {
		return TreeState{}, fmt.Errorf("shard: unsupported snapshot version %d", b[len(snapMagic)])
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if got, want := binary.BigEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return TreeState{}, fmt.Errorf("shard: snapshot crc mismatch: got %#x want %#x", got, want)
	}

	r := &snapReader{b: body, off: len(snapMagic) + 1}
	st := TreeState{
		Seed:       r.u64(),
		Vnodes:     int(r.u32()),
		Epoch:      r.u64(),
		Rebalances: r.u64(),
		Budget:     math.Float64frombits(r.u64()),
	}
	st.Infeasible = len(r.take(1)) == 1 && r.b[r.off-1]&1 != 0

	nLeaves := int(r.u16())
	for i := 0; i < nLeaves && r.err == nil; i++ {
		l := LeafRecord{Name: r.str(), Budget: math.Float64frombits(r.u64())}
		if f := r.take(1); f != nil {
			l.Infeasible = f[0]&1 != 0
		}
		st.Leaves = append(st.Leaves, l)
	}
	nNodes := int(r.u32())
	for i := 0; i < nNodes && r.err == nil; i++ {
		st.Nodes = append(st.Nodes, NodeRecord{
			Name: r.str(), Addr: r.str(), Owner: r.str(), ID: r.u32(),
		})
	}
	if r.err != nil {
		return TreeState{}, r.err
	}
	if r.off != len(body) {
		return TreeState{}, fmt.Errorf("shard: %d trailing snapshot bytes", len(body)-r.off)
	}
	for i := 1; i < len(st.Leaves); i++ {
		if st.Leaves[i-1].Name >= st.Leaves[i].Name {
			return TreeState{}, fmt.Errorf("shard: snapshot leaves not canonical at %d", i)
		}
	}
	leafSet := make(map[string]bool, len(st.Leaves))
	for _, l := range st.Leaves {
		leafSet[l.Name] = true
	}
	for i, n := range st.Nodes {
		if i > 0 && st.Nodes[i-1].Name >= n.Name {
			return TreeState{}, fmt.Errorf("shard: snapshot nodes not canonical at %d", i)
		}
		if !leafSet[n.Owner] {
			return TreeState{}, fmt.Errorf("shard: node %q owned by unknown leaf %q", n.Name, n.Owner)
		}
	}
	return st, nil
}

// state builds the persistable view. Callers hold t.mu.
func (t *Tree) state() TreeState {
	st := TreeState{
		Seed:       t.seed,
		Vnodes:     t.vnodes,
		Epoch:      t.epoch,
		Rebalances: t.rebalances,
		Budget:     t.budget,
		Infeasible: t.infeasible,
	}
	for _, name := range t.memberNames() {
		ls := t.leaves[name]
		st.Leaves = append(st.Leaves, LeafRecord{
			Name: name, Budget: ls.budget, Infeasible: ls.infeasible,
		})
	}
	for _, name := range t.nodeNames() {
		info := t.nodes[name]
		st.Nodes = append(st.Nodes, NodeRecord{
			Name: name, Addr: info.Addr, Owner: t.owners[name], ID: info.ID,
		})
	}
	return st
}

// State exposes the current shard map (for status surfaces and tests).
func (t *Tree) State() TreeState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state()
}

// persist rewrites the snapshot atomically (write-temp + rename).
// Callers hold t.mu; a "" snapPath disables persistence.
func (t *Tree) persist() error {
	if t.snapPath == "" {
		return nil
	}
	b, err := EncodeSnapshot(t.state())
	if err != nil {
		return err
	}
	tmp := t.snapPath + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, t.snapPath)
}

// LoadSnapshot reads and decodes a persisted shard map.
func LoadSnapshot(path string) (TreeState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return TreeState{}, err
	}
	return DecodeSnapshot(b)
}

// NewTreeFromState rebuilds an aggregator from a restored shard map.
// Every leaf starts unattached (mgr nil): the caller re-binds the
// managers that survived via Attach and expels the rest via Seize.
// Ownership, epochs and budgets resume exactly where the snapshot left
// them — in particular the fencing epoch, so the restarted aggregator's
// first handoff still outranks every pre-restart writer.
func NewTreeFromState(st TreeState, transport BatchTransport, snapPath string) (*Tree, error) {
	t := NewTree(st.Seed, st.Vnodes, transport, snapPath)
	t.epoch = st.Epoch
	if t.epoch == 0 {
		t.epoch = 1
	}
	t.rebalances = st.Rebalances
	t.budget = st.Budget
	t.infeasible = st.Infeasible
	for _, l := range st.Leaves {
		t.leaves[l.Name] = &leafState{name: l.Name, budget: l.Budget, infeasible: l.Infeasible}
	}
	for _, n := range st.Nodes {
		if _, ok := t.leaves[n.Owner]; !ok {
			return nil, fmt.Errorf("shard: node %q owned by unknown leaf %q", n.Name, n.Owner)
		}
		t.nodes[n.Name] = NodeInfo{Name: n.Name, Addr: n.Addr, ID: n.ID}
		t.owners[n.Name] = n.Owner
	}
	t.ring.SetLeaves(t.memberNames())
	return t, nil
}

// SnapshotPathIn names the aggregator snapshot inside a state dir.
func SnapshotPathIn(dir string) string { return filepath.Join(dir, "shardmap.snap") }
