// Package shard implements the two-level sharded control plane: leaf
// dcm.Managers own node shards assigned by consistent hashing, and an
// aggregator cascades the datacenter power budget down the topology
// tree (datacenter → row → rack → shard), rebalancing from leaf demand
// summaries and migrating node ownership with fenced handoff when
// leaves join, leave, or crash.
package shard

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node granularity per leaf. 64 keeps the
// assignment balanced within a few percent of even while the ring
// rebuild on a membership change stays trivial.
const DefaultVnodes = 64

// ringLeafSlots sizes the arc table: vnodes × ringLeafSlots equal
// arcs, so each leaf still owns ≈vnodes arcs at the design-max leaf
// count.
const ringLeafSlots = 64

// splitmix64 is the finalizer from Vigna's SplitMix64: a cheap,
// stateless 64-bit mixer whose output streams are deterministic per
// input — the same property the chaos harness relies on for
// reproducible runs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64a hashes a string (FNV-1a), feeding leaf names into the mixer.
func fnv64a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Ring is a consistent-hash ring mapping node IDs to leaf names. The
// hash space is divided into a fixed number of equal arcs (virtual
// nodes); each arc is claimed by the leaf with the highest seeded
// (arc, leaf) weight — highest-random-weight assignment per arc. The
// fixed arc grid keeps shares within a few percent of even (a raw
// vnode scatter wanders ±30% at this granularity), while HRW keeps the
// classic consistent-hashing contract: adding a leaf moves only the
// arcs the newcomer wins (≈1/(n+1) of them, all TO the newcomer) and
// removing one moves only the arcs it held.
//
// The whole assignment is a pure function of (seed, membership set,
// node ID): join order cannot influence ownership, and two aggregators
// with the same seed and membership always agree.
type Ring struct {
	seed   uint64
	vnodes int
	leaves []string // sorted
	slots  []int32  // arc -> index into leaves, -1 when empty
}

// NewRing builds an empty ring. vnodes <= 0 selects DefaultVnodes.
func NewRing(seed uint64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{seed: seed, vnodes: vnodes, slots: make([]int32, vnodes*ringLeafSlots)}
}

// SetLeaves replaces the membership and reassigns every arc.
func (r *Ring) SetLeaves(leaves []string) {
	r.leaves = append(r.leaves[:0], leaves...)
	sort.Strings(r.leaves)
	hashes := make([]uint64, len(r.leaves))
	for i, leaf := range r.leaves {
		hashes[i] = splitmix64(r.seed ^ splitmix64(fnv64a(leaf)))
	}
	for s := range r.slots {
		sh := splitmix64(r.seed ^ splitmix64(uint64(s)+0x51C))
		best, bestW := int32(-1), uint64(0)
		for li, lh := range hashes {
			// Ties cannot survive the strict >: equal weights keep the
			// lexicographically smaller leaf (smaller sorted index), a
			// membership-pure tie-break.
			if w := splitmix64(sh ^ lh); best < 0 || w > bestW {
				best, bestW = int32(li), w
			}
		}
		r.slots[s] = best
	}
}

// Leaves reports the current membership, sorted.
func (r *Ring) Leaves() []string {
	return append([]string(nil), r.leaves...)
}

// Owner maps one node ID to its owning leaf via the node's arc.
func (r *Ring) Owner(id uint32) (string, bool) {
	if len(r.leaves) == 0 {
		return "", false
	}
	h := splitmix64(r.seed ^ splitmix64(uint64(id)|1<<40))
	li := r.slots[h%uint64(len(r.slots))]
	if li < 0 {
		return "", false
	}
	return r.leaves[li], true
}

// Validate sanity-checks construction parameters.
func (r *Ring) Validate() error {
	if r.vnodes <= 0 || len(r.slots) == 0 {
		return fmt.Errorf("shard: ring vnodes %d", r.vnodes)
	}
	return nil
}
