package shard

import (
	"errors"

	"nodecap/internal/dcm"
	"nodecap/internal/telemetry"
)

// The budget cascade divides the datacenter budget down a synthetic
// topology tree — datacenter → rows → racks → shards — instead of
// flat across every node. Each level sees only its children's demand
// summaries (Σ platform minimum, Σ recent demand, Σ platform maximum)
// and divides its grant among them with the same min-floor +
// demand-proportional shape dcm's per-node waterfill uses. Conservation
// is structural: every divide hands out at most its own grant, so the
// sum of leaf budgets can never exceed the datacenter budget (except
// when that budget is below the platform minimums — then every level
// pins to minimums and flags the allocation infeasible rather than
// issuing caps the plants cannot honour).

// cascadeFanout is how many children each internal tree level groups.
const cascadeFanout = 2

// demandSummary is one subtree's aggregated demand.
type demandSummary struct {
	min, want, max float64
}

// CascadeResult reports one Rebalance pass.
type CascadeResult struct {
	Budget     float64
	Leaves     map[string]float64 // leaf name -> granted shard budget
	Infeasible bool               // datacenter budget below platform minimums
	Applied    int                // leaves whose budget was applied
}

// divide grants budget across children: every child gets its minimum
// first; the remainder is distributed proportionally to demand above
// the minimum, capped at each child's maximum; spare budget tops
// children toward their maximums in index order. When the budget does
// not cover the minimums the grants pin to the minimums (the
// infeasible verdict is the root's to flag). Children arrive in a
// deterministic order, so the division is too.
func divide(budget float64, children []demandSummary) []float64 {
	grants := make([]float64, len(children))
	var minSum float64
	for i, c := range children {
		grants[i] = c.min
		minSum += c.min
	}
	remaining := budget - minSum
	if remaining <= 0 {
		return grants
	}
	// Demand-proportional passes until the pool drains or everyone
	// saturates at max.
	for pass := 0; pass < 8 && remaining > 1e-9; pass++ {
		var claimSum float64
		for i, c := range children {
			if room := c.max - grants[i]; room > 1e-9 {
				claim := c.want - grants[i]
				if claim > room {
					claim = room
				}
				if claim > 0 {
					claimSum += claim
				}
			}
		}
		if claimSum <= 1e-9 {
			break
		}
		distributed := false
		for i, c := range children {
			room := c.max - grants[i]
			if room <= 1e-9 {
				continue
			}
			claim := c.want - grants[i]
			if claim > room {
				claim = room
			}
			if claim <= 0 {
				continue
			}
			give := remaining * claim / claimSum
			if give > claim {
				give = claim
			}
			if give > 0 {
				grants[i] += give
				distributed = true
			}
		}
		var granted float64
		for _, g := range grants {
			granted += g
		}
		remaining = budget - granted
		if !distributed {
			break
		}
	}
	// Spare pass: everyone's demand is met, raise toward maximums.
	for i, c := range children {
		if remaining <= 1e-9 {
			break
		}
		if room := c.max - grants[i]; room > 0 {
			give := remaining
			if give > room {
				give = room
			}
			grants[i] += give
			remaining -= give
		}
	}
	return grants
}

// cascade runs budget down the synthetic topology over the given
// (deterministically ordered) leaf summaries: leaves pair into racks,
// racks into rows, rows under the datacenter root. Aggregation then
// division level by level — the row split sees only rack totals, the
// rack split only its own leaves — so no level needs (or gets) global
// state, the property that lets the real DCM scale this shape out.
func cascade(budget float64, leaves []demandSummary) []float64 {
	if len(leaves) == 0 {
		return nil
	}
	// Build level groupings bottom-up: each level is a list of index
	// ranges [start, end) over the level below.
	levels := [][]demandSummary{leaves}
	for len(levels[len(levels)-1]) > 1 && len(levels) < 3 {
		below := levels[len(levels)-1]
		var above []demandSummary
		for i := 0; i < len(below); i += cascadeFanout {
			end := min(i+cascadeFanout, len(below))
			var s demandSummary
			for _, c := range below[i:end] {
				s.min += c.min
				s.want += c.want
				s.max += c.max
			}
			above = append(above, s)
		}
		levels = append(levels, above)
	}
	// Divide top-down. The datacenter root divides among the highest
	// level's groups, each group among its children, down to leaves.
	grants := []float64{budget}
	for li := len(levels) - 1; li >= 0; li-- {
		below := levels[li]
		if li == len(levels)-1 {
			// Top level: one parent (the datacenter) over every group the
			// level cap left — however many that is — in a single divide.
			grants = divide(grants[0], below)
			continue
		}
		next := make([]float64, 0, len(below))
		gi := 0
		for i := 0; i < len(below); i += cascadeFanout {
			end := min(i+cascadeFanout, len(below))
			next = append(next, divide(grants[gi], below[i:end])...)
			gi++
		}
		grants = next
	}
	return grants
}

// leafSummary aggregates one attached leaf's demand from its manager's
// node view, mirroring dcm.AllocateBudget's per-node demand shape
// (recent average + 5% headroom, platform max when no sample yet).
func leafSummary(mgr *dcm.Manager) demandSummary {
	var s demandSummary
	for _, n := range mgr.Nodes() {
		s.min += n.MinCapWatts
		s.max += n.MaxCapWatts
		want := n.Last.AverageWatts
		if want <= 0 {
			want = n.MaxCapWatts
		}
		want *= 1.05
		if want < n.MinCapWatts {
			want = n.MinCapWatts
		}
		s.want += want
	}
	return s
}

// Rebalance cascades budget down the tree and applies each attached
// leaf's grant through its manager. Leaves whose grant shrinks (at or
// below their current enabled desired sum) apply before leaves whose
// grant grows, so — combined with each manager's own decreases-first
// push order — the tree-wide desired sum never transiently exceeds
// max(previous sum, budget) mid-sweep. Apply errors (unreachable
// nodes, a leaf that crashed between summary and apply) are joined and
// returned; the desired state those applies recorded still reconciles
// when the nodes return.
func (t *Tree) Rebalance(budget float64) (CascadeResult, error) {
	t.mu.Lock()
	defer t.mu.Unlock()

	res := CascadeResult{Budget: budget, Leaves: make(map[string]float64)}
	type member struct {
		ls    *leafState
		sum   demandSummary
		nodes []string
	}
	// Attached leaves in name order — the deterministic child order the
	// whole cascade inherits.
	var members []member
	for _, name := range t.memberNames() {
		ls := t.leaves[name]
		if ls.mgr == nil {
			continue
		}
		members = append(members, member{ls: ls, sum: leafSummary(ls.mgr)})
	}
	if len(members) == 0 {
		t.budget, t.infeasible = budget, false
		return res, errors.Join(t.persist())
	}
	for _, name := range t.nodeNames() {
		owner := t.owners[name]
		for i := range members {
			if members[i].ls.name == owner {
				members[i].nodes = append(members[i].nodes, name)
				break
			}
		}
	}

	summaries := make([]demandSummary, len(members))
	var minSum float64
	for i, m := range members {
		summaries[i] = m.sum
		minSum += m.sum.min
	}
	res.Infeasible = budget < minSum
	grants := cascade(budget, summaries)
	if res.Infeasible {
		// Cannot fit above the platform floors: pin every shard to its
		// minimums and say so, rather than pushing caps below what the
		// plants can honour.
		for i, m := range members {
			grants[i] = m.sum.min
		}
	}
	if t.BreakAggregator {
		// Self-test sabotage: a cascade that over-allocates at an
		// internal level. tree_budget_conserved must catch this.
		for i := range grants {
			grants[i] *= 1.5
		}
	}

	// Shrinking leaves first: see the method comment.
	order := make([]int, 0, len(members))
	for i, m := range members {
		if len(m.nodes) > 0 && grants[i] <= m.ls.mgr.DesiredCapSum()+1e-9 {
			order = append(order, i)
		}
	}
	for i, m := range members {
		if len(m.nodes) > 0 && grants[i] > m.ls.mgr.DesiredCapSum()+1e-9 {
			order = append(order, i)
		}
	}

	var errs []error
	for _, i := range order {
		m := members[i]
		if _, err := m.ls.mgr.ApplyBudget(grants[i], m.nodes); err != nil {
			errs = append(errs, err)
		}
		res.Applied++
	}
	for i, m := range members {
		m.ls.budget = grants[i]
		m.ls.infeasible = res.Infeasible
		res.Leaves[m.ls.name] = grants[i]
	}
	t.budget, t.infeasible = budget, res.Infeasible
	t.rebalances++
	ev := telemetry.Event{Kind: telemetry.EvShardRebalance, Watts: budget, N: int64(res.Applied)}
	if res.Infeasible {
		ev.Err = "infeasible"
	}
	t.trace.Append(ev)
	errs = append(errs, t.persist())
	return res, errors.Join(errs...)
}
