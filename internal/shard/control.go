package shard

import (
	"fmt"
	"sort"

	"nodecap/internal/dcm"
)

// RoleAggregator is what a sharded control plane reports as its role:
// it is neither a solo manager nor half of an HA pair.
const RoleAggregator = "aggregator"

// NodeID derives the stable ring ID the control plane hashes a node
// name to. Anything that registers nodes outside HandleControl (dcmd's
// journal-recovery reconcile, tests) must use the same derivation or
// the same node would route to a different leaf on re-registration.
func NodeID(name string) uint32 { return uint32(fnv64a(name)) }

// HandleControl serves the dcmctl control-plane protocol for a sharded
// daemon: per-node ops route to the owning leaf, fleet-wide ops fan
// out across every attached leaf and merge, and the sharded-only
// "shards" op reports the tree. Install it with dcm.Server.SetHandler.
func (t *Tree) HandleControl(req dcm.Request) dcm.Response {
	fail := func(err error) dcm.Response { return dcm.Response{Error: err.Error()} }
	switch req.Op {
	case "add":
		// The control plane addresses nodes by name; the ring hashes a
		// stable ID derived from it.
		if req.Name == "" {
			return fail(fmt.Errorf("shard: add requires a node name"))
		}
		if err := t.AddNode(req.Name, req.Addr, NodeID(req.Name)); err != nil {
			return fail(err)
		}
		return dcm.Response{OK: true}
	case "remove":
		if err := t.RemoveNode(req.Name); err != nil {
			return fail(err)
		}
		return dcm.Response{OK: true}
	case "nodes":
		return dcm.Response{
			OK: true, Nodes: t.allNodes(false),
			Role: RoleAggregator, Epoch: t.Epoch(),
		}
	case "leader":
		return dcm.Response{OK: true, Role: RoleAggregator, Epoch: t.Epoch()}
	case "poll":
		return dcm.Response{OK: true, Nodes: t.allNodes(true), Role: RoleAggregator, Epoch: t.Epoch()}
	case "setcap":
		mgr, err := t.ownerManager(req.Name)
		if err != nil {
			return fail(err)
		}
		if err := mgr.SetNodeCap(req.Name, req.Cap); err != nil {
			return fail(err)
		}
		return dcm.Response{OK: true}
	case "settier":
		mgr, err := t.ownerManager(req.Name)
		if err != nil {
			return fail(err)
		}
		tier, err := dcm.ParseTier(req.Tier)
		if err != nil {
			return fail(err)
		}
		if err := mgr.SetNodeTier(req.Name, tier); err != nil {
			return fail(err)
		}
		return dcm.Response{OK: true}
	case "history":
		mgr, err := t.ownerManager(req.Name)
		if err != nil {
			return fail(err)
		}
		h, err := mgr.History(req.Name)
		if err != nil {
			return fail(err)
		}
		if req.Limit > 0 && len(h) > req.Limit {
			h = h[len(h)-req.Limit:]
		}
		return dcm.Response{OK: true, History: h}
	case "budget":
		// The group is implicit — the whole tree; the cascade divides it.
		res, err := t.Rebalance(req.Budget)
		if err != nil {
			return fail(err)
		}
		allocs := make([]dcm.Allocation, 0, len(res.Leaves))
		for _, name := range sortedKeys(res.Leaves) {
			allocs = append(allocs, dcm.Allocation{Name: name, CapWatts: res.Leaves[name]})
		}
		return dcm.Response{OK: true, Allocs: allocs}
	case "trace":
		// dcmd wires every leaf to one shared trace ring, so any attached
		// leaf answers for the whole tree.
		mgr := t.anyAttached()
		if mgr == nil {
			return fail(fmt.Errorf("shard: no attached leaves"))
		}
		return dcm.Response{OK: true, Trace: mgr.TraceEvents(req.Since, req.Name, req.Limit)}
	case "shards":
		return dcm.Response{OK: true, Shards: t.Status(), Role: RoleAggregator, Epoch: t.Epoch()}
	default:
		return fail(fmt.Errorf("shard: op %q not supported by the sharded control plane", req.Op))
	}
}

// anyAttached returns the first attached leaf manager in name order.
func (t *Tree) anyAttached() *dcm.Manager {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, name := range t.memberNames() {
		if ls := t.leaves[name]; ls.mgr != nil {
			return ls.mgr
		}
	}
	return nil
}

// ownerManager resolves a node's owning leaf manager.
func (t *Tree) ownerManager(node string) (*dcm.Manager, error) {
	if node == "" {
		return nil, fmt.Errorf("shard: a node name is required")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	owner, ok := t.owners[node]
	if !ok {
		return nil, fmt.Errorf("shard: unknown node %q", node)
	}
	ls := t.leaves[owner]
	if ls == nil || ls.mgr == nil {
		return nil, fmt.Errorf("shard: node %q owner %q not attached", node, owner)
	}
	return ls.mgr, nil
}

// allNodes merges every attached leaf's node view, sorted by name —
// the aggregate a flat Manager.Nodes() would have reported. poll first
// sweeps each leaf (in leaf-name order) when asked.
func (t *Tree) allNodes(poll bool) []dcm.NodeStatus {
	t.mu.Lock()
	var mgrs []*dcm.Manager
	for _, name := range t.memberNames() {
		if ls := t.leaves[name]; ls.mgr != nil {
			mgrs = append(mgrs, ls.mgr)
		}
	}
	t.mu.Unlock()
	var out []dcm.NodeStatus
	for _, mgr := range mgrs {
		if poll {
			mgr.Poll()
		}
		out = append(out, mgr.Nodes()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sortedKeys lists a map's keys in order.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
