package counters_test

import (
	"fmt"

	"nodecap/internal/counters"
)

// scripted is a Source replaying fixed snapshots, standing in for a
// machine.
type scripted struct {
	snaps []counters.Snapshot
	i     int
}

func (s *scripted) CounterSnapshot() counters.Snapshot {
	v := s.snaps[s.i]
	if s.i < len(s.snaps)-1 {
		s.i++
	}
	return v
}

// The PAPI lifecycle the study used: build an event set, start it
// around the region of interest, stop, read deltas.
func ExampleEventSet() {
	src := &scripted{snaps: []counters.Snapshot{
		{Cycles: 1000, L2Misses: 10, ITLBMisses: 1},
		{Cycles: 250_000, L2Misses: 840, ITLBMisses: 7},
	}}

	es := counters.NewEventSet(src)
	if err := es.Add(counters.TOTCYC, counters.L2TCM, counters.TLBIM); err != nil {
		panic(err)
	}
	es.Start()
	// ... region of interest executes ...
	es.Stop()

	for _, e := range es.Events() {
		v, _ := es.Read(e)
		fmt.Printf("%s = %d\n", e, v)
	}
	// Output:
	// PAPI_L2_TCM = 830
	// PAPI_TLB_IM = 6
	// PAPI_TOT_CYC = 249000
}
