// Package counters provides a PAPI-style performance-counter
// interface over the simulated machine, mirroring how the study
// collected its Table II metrics: build an event set, start it around
// a region of interest, stop it, and read event deltas.
package counters

import (
	"fmt"
	"sort"
)

// Event names a hardware performance event. The constants use PAPI's
// preset names for the events the paper measured.
type Event string

const (
	L1DCM  Event = "PAPI_L1_DCM"  // L1 data cache misses
	L1ICM  Event = "PAPI_L1_ICM"  // L1 instruction cache misses
	L1TCM  Event = "PAPI_L1_TCM"  // L1 total cache misses
	L2TCM  Event = "PAPI_L2_TCM"  // L2 total cache misses
	L3TCM  Event = "PAPI_L3_TCM"  // L3 total cache misses
	TLBDM  Event = "PAPI_TLB_DM"  // data TLB misses
	TLBIM  Event = "PAPI_TLB_IM"  // instruction TLB misses
	TOTINS Event = "PAPI_TOT_INS" // instructions committed
	TOTIIS Event = "PAPI_TOT_IIS" // instructions issued (incl. speculative)
	LDINS  Event = "PAPI_LD_INS"  // load instructions executed
	SRINS  Event = "PAPI_SR_INS"  // store instructions executed
	TOTCYC Event = "PAPI_TOT_CYC" // total cycles
)

// AllEvents lists every supported event in a stable order.
func AllEvents() []Event {
	return []Event{L1DCM, L1ICM, L1TCM, L2TCM, L3TCM, TLBDM, TLBIM, TOTINS, TOTIIS, LDINS, SRINS, TOTCYC}
}

// Snapshot is a point-in-time reading of every countable quantity.
// The machine package produces these.
type Snapshot struct {
	L1DMisses             uint64
	L1IMisses             uint64
	L2Misses              uint64
	L3Misses              uint64
	DTLBMisses            uint64
	ITLBMisses            uint64
	InstructionsCommitted uint64
	InstructionsIssued    uint64
	Loads                 uint64
	Stores                uint64
	Cycles                uint64
}

// Source is anything that can be sampled for a Snapshot.
type Source interface {
	CounterSnapshot() Snapshot
}

func (s Snapshot) event(e Event) (uint64, bool) {
	switch e {
	case L1DCM:
		return s.L1DMisses, true
	case L1ICM:
		return s.L1IMisses, true
	case L1TCM:
		return s.L1DMisses + s.L1IMisses, true
	case L2TCM:
		return s.L2Misses, true
	case L3TCM:
		return s.L3Misses, true
	case TLBDM:
		return s.DTLBMisses, true
	case TLBIM:
		return s.ITLBMisses, true
	case TOTINS:
		return s.InstructionsCommitted, true
	case TOTIIS:
		return s.InstructionsIssued, true
	case LDINS:
		return s.Loads, true
	case SRINS:
		return s.Stores, true
	case TOTCYC:
		return s.Cycles, true
	default:
		return 0, false
	}
}

// EventSet mirrors PAPI's event-set lifecycle: add events, Start,
// Stop, Read. Reading a running set reports counts so far.
type EventSet struct {
	src     Source
	events  map[Event]bool
	start   Snapshot
	stop    Snapshot
	running bool
	started bool
	stopped bool
}

// NewEventSet builds an event set bound to src.
func NewEventSet(src Source) *EventSet {
	return &EventSet{src: src, events: make(map[Event]bool)}
}

// Add registers an event with the set. Unknown events are rejected,
// like PAPI_ENOEVNT.
func (es *EventSet) Add(events ...Event) error {
	for _, e := range events {
		if _, ok := (Snapshot{}).event(e); !ok {
			return fmt.Errorf("counters: unknown event %q", e)
		}
		es.events[e] = true
	}
	return nil
}

// Events lists the registered events in sorted order.
func (es *EventSet) Events() []Event {
	out := make([]Event, 0, len(es.events))
	for e := range es.events {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Start snapshots the counters and begins measurement.
func (es *EventSet) Start() error {
	if es.running {
		return fmt.Errorf("counters: event set already running")
	}
	if len(es.events) == 0 {
		return fmt.Errorf("counters: no events registered")
	}
	es.start = es.src.CounterSnapshot()
	es.running = true
	es.started = true
	es.stopped = false
	return nil
}

// Stop ends measurement.
func (es *EventSet) Stop() error {
	if !es.running {
		return fmt.Errorf("counters: event set not running")
	}
	es.stop = es.src.CounterSnapshot()
	es.running = false
	es.stopped = true
	return nil
}

// Read reports the measured delta for event e: current-so-far when
// running, the stopped interval after Stop.
func (es *EventSet) Read(e Event) (uint64, error) {
	if !es.events[e] {
		return 0, fmt.Errorf("counters: event %q not in set", e)
	}
	if !es.started {
		return 0, fmt.Errorf("counters: event set never started")
	}
	end := es.stop
	if es.running {
		end = es.src.CounterSnapshot()
	}
	b, _ := es.start.event(e)
	a, _ := end.event(e)
	if a < b {
		return 0, fmt.Errorf("counters: event %q went backwards (%d -> %d)", e, b, a)
	}
	return a - b, nil
}

// ReadAll returns every registered event's delta.
func (es *EventSet) ReadAll() (map[Event]uint64, error) {
	out := make(map[Event]uint64, len(es.events))
	for e := range es.events {
		v, err := es.Read(e)
		if err != nil {
			return nil, err
		}
		out[e] = v
	}
	return out, nil
}
