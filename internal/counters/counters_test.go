package counters

import "testing"

// fakeSource replays scripted snapshots.
type fakeSource struct {
	snaps []Snapshot
	i     int
}

func (f *fakeSource) CounterSnapshot() Snapshot {
	s := f.snaps[f.i]
	if f.i < len(f.snaps)-1 {
		f.i++
	}
	return s
}

func TestLifecycle(t *testing.T) {
	src := &fakeSource{snaps: []Snapshot{
		{Cycles: 100, InstructionsCommitted: 50, L2Misses: 7},
		{Cycles: 400, InstructionsCommitted: 230, L2Misses: 19},
	}}
	es := NewEventSet(src)
	if err := es.Add(TOTCYC, TOTINS, L2TCM); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es.Stop(); err != nil {
		t.Fatal(err)
	}
	cases := map[Event]uint64{TOTCYC: 300, TOTINS: 180, L2TCM: 12}
	for e, want := range cases {
		got, err := es.Read(e)
		if err != nil {
			t.Fatalf("Read(%s): %v", e, err)
		}
		if got != want {
			t.Errorf("Read(%s) = %d, want %d", e, got, want)
		}
	}
}

func TestReadWhileRunning(t *testing.T) {
	src := &fakeSource{snaps: []Snapshot{
		{Cycles: 100},
		{Cycles: 150},
		{Cycles: 900},
	}}
	es := NewEventSet(src)
	es.Add(TOTCYC)
	es.Start()
	got, err := es.Read(TOTCYC)
	if err != nil || got != 50 {
		t.Errorf("running Read = %d, %v", got, err)
	}
}

func TestErrors(t *testing.T) {
	src := &fakeSource{snaps: []Snapshot{{}}}
	es := NewEventSet(src)
	if err := es.Add("PAPI_NOPE"); err == nil {
		t.Error("unknown event accepted")
	}
	if err := es.Start(); err == nil {
		t.Error("Start with no events accepted")
	}
	es.Add(TOTCYC)
	if _, err := es.Read(TOTCYC); err == nil {
		t.Error("Read before Start accepted")
	}
	if err := es.Stop(); err == nil {
		t.Error("Stop before Start accepted")
	}
	es.Start()
	if err := es.Start(); err == nil {
		t.Error("double Start accepted")
	}
	if _, err := es.Read(L2TCM); err == nil {
		t.Error("Read of unregistered event accepted")
	}
}

func TestBackwardsCounterDetected(t *testing.T) {
	src := &fakeSource{snaps: []Snapshot{{Cycles: 100}, {Cycles: 50}}}
	es := NewEventSet(src)
	es.Add(TOTCYC)
	es.Start()
	es.Stop()
	if _, err := es.Read(TOTCYC); err == nil {
		t.Error("backwards counter not detected")
	}
}

func TestDerivedEvents(t *testing.T) {
	src := &fakeSource{snaps: []Snapshot{
		{},
		{L1DMisses: 10, L1IMisses: 3},
	}}
	es := NewEventSet(src)
	es.Add(L1TCM, L1DCM, L1ICM)
	es.Start()
	es.Stop()
	if v, _ := es.Read(L1TCM); v != 13 {
		t.Errorf("L1_TCM = %d, want 13", v)
	}
}

func TestReadAllAndEvents(t *testing.T) {
	src := &fakeSource{snaps: []Snapshot{
		{},
		{DTLBMisses: 4, ITLBMisses: 9, Loads: 2, Stores: 1, InstructionsIssued: 99},
	}}
	es := NewEventSet(src)
	if err := es.Add(AllEvents()...); err != nil {
		t.Fatal(err)
	}
	es.Start()
	es.Stop()
	all, err := es.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if all[TLBDM] != 4 || all[TLBIM] != 9 || all[LDINS] != 2 || all[SRINS] != 1 || all[TOTIIS] != 99 {
		t.Errorf("ReadAll = %v", all)
	}
	evs := es.Events()
	if len(evs) != len(AllEvents()) {
		t.Errorf("Events() = %v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1] >= evs[i] {
			t.Errorf("Events not sorted: %v", evs)
		}
	}
}

func TestRestartAfterStop(t *testing.T) {
	src := &fakeSource{snaps: []Snapshot{
		{Cycles: 0}, {Cycles: 10}, {Cycles: 25}, {Cycles: 100},
	}}
	es := NewEventSet(src)
	es.Add(TOTCYC)
	es.Start()
	es.Stop()
	if err := es.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	es.Stop()
	if v, _ := es.Read(TOTCYC); v != 75 {
		t.Errorf("second interval = %d, want 75", v)
	}
}
