// Package fleet is the batch simulation engine behind fleet-scale
// chaos: the state of every simulated node — analytic plant, defensive
// BMC controller, sensor-fault injection, and the per-tick observations
// the invariant checker audits — held as structure-of-arrays slices and
// advanced by one cache-friendly pass per tick instead of one
// heap-allocated object, mutex and *rand.Rand pointer chase per node.
//
// The per-node control semantics are an exact port of the scalar stack
// the chaos harness used to build per node (bmc.BMC over a
// faults.FaultyPlant over an analytic plant), with two deliberate
// substitutions:
//
//   - Randomness is counter-based (SplitMix64 streams keyed per node)
//     instead of math/rand: one uint64 of state per node, advanced in
//     registers, no pointer-chased generator objects. Noise is drawn
//     only when the legacy layering would have drawn it (never during
//     a dropout, never for a management read).
//   - Sensor storms are modelled as a per-node dropout switch (the only
//     fault profile the chaos scenarios inject) rather than a
//     probability draw per read.
//
// The byte-identical equivalence of Tick against the legacy per-node
// object stepping is pinned by TestEngineMatchesLegacyStepping, which
// drives both through 1k random seeded scenarios.
//
// Concurrency: Tick shards nodes across a persistent pool.Gang in
// contiguous index ranges. Nodes are mutually independent within a
// tick (management traffic lands between ticks), so shard boundaries
// cannot change any node's trajectory and the result is bit-identical
// at every parallelism. Trace events produced mid-tick (fail-safe
// transitions) are buffered per shard and merged in node order after
// the barrier, so even the observability stream replays identically at
// any worker count. The engine's mutex serializes Tick against the
// management surface (policy pushes, health reads) for wire-mode
// callers whose IPMI server goroutines run concurrently.
package fleet

import (
	"fmt"
	"math"
	"sync"

	"nodecap/internal/bmc"
	"nodecap/internal/pool"
	"nodecap/internal/telemetry"
)

// The simulated platform envelope: ~157 W busy at P0, DVFS worth 2 W
// per P-state down to 127 W, then a 4-level gating ladder worth 1.2 W
// each, for a ~122.2 W floor (the paper's nodes floor at ~123-125 W).
const (
	NumPStates     = 16
	MaxGatingLevel = 4
	P0Watts        = 157.0
	WattsPerPState = 2.0
	WattsPerGate   = 1.2
	NoiseWatts     = 0.4 // sensor noise amplitude (uniform ±)

	// FailSafePState is the fail-safe floor the fleet's BMCs hold
	// (P12 ≈ 133 W — safely under every feasible cap).
	FailSafePState = 12
)

// Params is the per-node plant envelope plus the BMC control tuning,
// shared by every node in an Engine.
type Params struct {
	NumPStates     int
	MaxGatingLevel int
	P0Watts        float64
	WattsPerPState float64
	WattsPerGate   float64
	NoiseWatts     float64

	// Controller tuning (the bmc.Config subset the analytic fleet
	// exercises; stuck-at detection is not modelled — the chaos
	// scenarios never inject it and the simulated sensor is noisy).
	GuardBandWatts           float64
	HysteresisWatts          float64
	GateRelaxHysteresisWatts float64
	Smoothing                float64
	StepWattsPerPState       float64
	MinPlausibleWatts        float64
	MaxPlausibleWatts        float64
	FaultToleranceTicks      int
	RecoveryTicks            int
	FailSafePState           int
}

// DefaultParams returns the chaos fleet's envelope with the hardened
// (fail-safe) BMC tuning.
func DefaultParams() Params {
	c := bmc.FailSafeConfig()
	return Params{
		NumPStates:     NumPStates,
		MaxGatingLevel: MaxGatingLevel,
		P0Watts:        P0Watts,
		WattsPerPState: WattsPerPState,
		WattsPerGate:   WattsPerGate,
		NoiseWatts:     NoiseWatts,

		GuardBandWatts:           c.GuardBandWatts,
		HysteresisWatts:          c.HysteresisWatts,
		GateRelaxHysteresisWatts: c.GateRelaxHysteresisWatts,
		Smoothing:                c.Smoothing,
		StepWattsPerPState:       c.StepWattsPerPState,
		MinPlausibleWatts:        c.MinPlausibleWatts,
		MaxPlausibleWatts:        c.MaxPlausibleWatts,
		FaultToleranceTicks:      c.FaultToleranceTicks,
		RecoveryTicks:            c.RecoveryTicks,
		FailSafePState:           FailSafePState,
	}
}

// FloorWatts is the platform's minimum achievable power: full DVFS
// descent plus the whole gating ladder.
func (p Params) FloorWatts() float64 {
	return p.P0Watts - p.WattsPerPState*float64(p.NumPStates-1) - p.WattsPerGate*float64(p.MaxGatingLevel)
}

// failSafeFloor resolves the configured fail-safe P-state exactly as
// bmc.failSafeFloor does: out-of-range configs mean the slowest state.
func (p Params) failSafeFloor() int {
	slowest := p.NumPStates - 1
	if f := p.FailSafePState; f > 0 && f <= slowest {
		return f
	}
	return slowest
}

// Config assembles an Engine.
type Config struct {
	Nodes int
	// Seed keys every node's noise stream; same (Seed, node index) —
	// same noise, forever, independent of fleet size or parallelism.
	Seed int64
	// Params defaults to DefaultParams when zero.
	Params Params
	// NamePrefix labels nodes ("node-" → "node-0" …) in trace events.
	NamePrefix string
	// BreakFailSafeFloor makes the plant ignore the fail-safe clamp
	// and creep back toward full speed on untrusted sensor data — the
	// deliberate bug the no_failsafe_speedup checker must catch.
	BreakFailSafeFloor bool
	// Parallelism bounds the tick shards: <= 0 selects GOMAXPROCS, 1
	// forces the inline single-goroutine pass. Output is bit-identical
	// at every setting.
	Parallelism int
}

// Health is one node's defensive-controller status.
type Health struct {
	FailSafe      bool
	SensorFaults  uint64
	InfeasibleCap bool
}

// Stats aggregates controller activity across the fleet.
type Stats struct {
	Ticks           uint64
	StepsDown       uint64
	StepsUp         uint64
	GateEscalate    uint64
	GateRelax       uint64
	OverCapTicks    uint64
	AtFloorTicks    uint64
	SensorFaults    uint64
	FailSafeEntries uint64
	FailSafeTicks   uint64
}

// shardEvt is one buffered mid-tick trace event (fail-safe enter or
// exit), merged into the trace in node order after the tick barrier.
type shardEvt struct {
	node  int32
	enter bool
}

// Engine holds the whole fleet's state as structure-of-arrays slices.
type Engine struct {
	mu sync.Mutex

	p          Params
	n          int
	floor      float64
	fsFloor    int32
	breakFloor bool
	names      []string

	// Plant.
	pstate []int32
	gating []int32
	// Policy (what the last admitted push installed).
	capEnabled []bool
	capWatts   []float64
	infeasible []bool
	// Controller.
	smoothed  []float64
	haveEWMA  []bool
	failSafe  []bool
	badTicks  []int32
	saneTicks []int32
	// Sensor-fault injection: a storming node's sensor delivers
	// nothing (the only profile the chaos scenarios use).
	dropout []bool
	// Counter-based noise streams, one uint64 of state per node.
	noise []uint64

	// Per-node activity counters (shard-local writes, summed on read).
	stTicks        []uint64
	stStepsDown    []uint64
	stStepsUp      []uint64
	stGateEscalate []uint64
	stGateRelax    []uint64
	stOverCap      []uint64
	stAtFloor      []uint64
	stSensorFault  []uint64
	stFSEntries    []uint64
	stFSTicks      []uint64

	// Per-tick observations for the invariant checker: pre/post
	// snapshots bracket the LAST tick of a batch (the chaos run loop
	// ticks one at a time, so they bracket every tick it audits).
	prePState    []int32
	postPState   []int32
	preFailSafe  []bool
	postFailSafe []bool
	// sinceCapChange counts ticks since the last material policy
	// change; overTicks and regSeen are checker-owned accumulators
	// carried here so the whole audit surface lives in one place.
	sinceCapChange   []int32
	overTicks        []int32
	actEpoch         []uint64
	epochRegressions []int32
	regSeen          []int32

	// Telemetry (nil-safe).
	trace         *telemetry.Trace
	mSensorFaults *telemetry.Counter
	mFSEnters     *telemetry.Counter
	mFSExits      *telemetry.Counter

	// Tick sharding.
	workers     int
	gang        *pool.Gang
	shardEvents [][]shardEvt
	batch       int
	shardFn     func(worker, lo, hi int)
}

// New builds an engine; panics on a non-positive node count (a
// misassembled harness, not a runtime condition).
func New(cfg Config) *Engine {
	if cfg.Nodes <= 0 {
		panic(fmt.Sprintf("fleet: non-positive node count %d", cfg.Nodes))
	}
	p := cfg.Params
	if p == (Params{}) {
		p = DefaultParams()
	}
	prefix := cfg.NamePrefix
	if prefix == "" {
		prefix = "node-"
	}
	n := cfg.Nodes
	e := &Engine{
		p:          p,
		n:          n,
		floor:      p.FloorWatts(),
		fsFloor:    int32(p.failSafeFloor()),
		breakFloor: cfg.BreakFailSafeFloor,
		names:      make([]string, n),

		pstate:     make([]int32, n),
		gating:     make([]int32, n),
		capEnabled: make([]bool, n),
		capWatts:   make([]float64, n),
		infeasible: make([]bool, n),
		smoothed:   make([]float64, n),
		haveEWMA:   make([]bool, n),
		failSafe:   make([]bool, n),
		badTicks:   make([]int32, n),
		saneTicks:  make([]int32, n),
		dropout:    make([]bool, n),
		noise:      make([]uint64, n),

		stTicks:        make([]uint64, n),
		stStepsDown:    make([]uint64, n),
		stStepsUp:      make([]uint64, n),
		stGateEscalate: make([]uint64, n),
		stGateRelax:    make([]uint64, n),
		stOverCap:      make([]uint64, n),
		stAtFloor:      make([]uint64, n),
		stSensorFault:  make([]uint64, n),
		stFSEntries:    make([]uint64, n),
		stFSTicks:      make([]uint64, n),

		prePState:        make([]int32, n),
		postPState:       make([]int32, n),
		preFailSafe:      make([]bool, n),
		postFailSafe:     make([]bool, n),
		sinceCapChange:   make([]int32, n),
		overTicks:        make([]int32, n),
		actEpoch:         make([]uint64, n),
		epochRegressions: make([]int32, n),
		regSeen:          make([]int32, n),
	}
	for i := 0; i < n; i++ {
		e.names[i] = fmt.Sprintf("%s%d", prefix, i)
		e.noise[i] = noiseStreamKey(cfg.Seed, i)
	}
	e.workers = pool.Workers(cfg.Parallelism)
	if e.workers > n {
		e.workers = n
	}
	e.shardEvents = make([][]shardEvt, e.workers)
	e.shardFn = e.runShard
	return e
}

// Close releases the tick shard workers (if any were ever started).
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gang != nil {
		e.gang.Close()
		e.gang = nil
	}
}

// Nodes reports the fleet size.
func (e *Engine) Nodes() int { return e.n }

// Params returns the shared plant/controller tuning.
func (e *Engine) Params() Params { return e.p }

// Name returns node i's trace label.
func (e *Engine) Name(i int) string { return e.names[i] }

// FloorWatts is the platform floor shared by every node.
func (e *Engine) FloorWatts() float64 { return e.floor }

// SetTelemetry wires the fleet counters and the decision trace; either
// may be nil. Tick remains allocation-free when wired.
func (e *Engine) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Trace) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.trace = tr
	e.mSensorFaults = reg.Counter("bmc_sensor_faults_total")
	e.mFSEnters = reg.Counter("bmc_failsafe_entries_total")
	e.mFSExits = reg.Counter("bmc_failsafe_exits_total")
}

// Tick advances every node n control periods in one batched pass.
func (e *Engine) Tick(n int) {
	if n <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.batch = n
	if e.workers <= 1 {
		e.stepRange(0, 0, e.n)
	} else {
		if e.gang == nil {
			e.gang = pool.NewGang(e.workers)
		}
		e.gang.Run(e.n, e.shardFn)
	}
	// Deterministic merge: mid-tick trace events surface in node order
	// (shard ranges are contiguous and ascending), independent of how
	// the shards interleaved.
	if e.trace != nil {
		for _, evs := range e.shardEvents {
			for _, ev := range evs {
				kind := telemetry.EvFailSafeEnter
				if !ev.enter {
					kind = telemetry.EvFailSafeExit
				}
				e.trace.Append(telemetry.Event{Node: e.names[ev.node], Kind: kind})
			}
		}
	}
}

func (e *Engine) runShard(worker, lo, hi int) {
	e.stepRange(worker, lo, hi)
}

// stepRange advances nodes [lo, hi) by the current batch. The tick
// loop is innermost per node, so one node's whole working set stays in
// registers for the batch; nodes never interact within a tick, so the
// node-major order is unobservable.
func (e *Engine) stepRange(worker, lo, hi int) {
	evs := e.shardEvents[worker][:0]
	p := &e.p
	kTol := int32(p.FaultToleranceTicks)
	mRec := int32(p.RecoveryTicks)
	if mRec < 1 {
		mRec = 1
	}
	numP := int32(p.NumPStates)
	maxG := int32(p.MaxGatingLevel)
	fsFloor := e.fsFloor
	batch := e.batch

	for i := lo; i < hi; i++ {
		ps, gt := e.pstate[i], e.gating[i]
		fs := e.failSafe[i]
		enabled := e.capEnabled[i]
		capW := e.capWatts[i]
		sm, haveEWMA := e.smoothed[i], e.haveEWMA[i]
		bad, sane := e.badTicks[i], e.saneTicks[i]
		drop := e.dropout[i]
		rng := e.noise[i]

		var pre, post int32
		var preFS, postFS bool

		for t := 0; t < batch; t++ {
			pre, preFS = ps, fs
			e.stTicks[i]++
			if !enabled {
				goto plantQuirks
			}
			{
				var w float64
				delivered := !drop
				if delivered {
					rng += splitmixGamma
					f := float64(splitmix(rng)>>11) / (1 << 53)
					w = p.P0Watts - p.WattsPerPState*float64(ps) - p.WattsPerGate*float64(gt) +
						(f*2-1)*p.NoiseWatts
				}
				trusted := delivered &&
					!(math.IsNaN(w) || math.IsInf(w, 0) || w < 0) &&
					!(p.MinPlausibleWatts > 0 && w < p.MinPlausibleWatts) &&
					!(p.MaxPlausibleWatts > 0 && w > p.MaxPlausibleWatts)
				if !trusted {
					// Never actuate — in particular never step up — on
					// data the controller cannot trust.
					e.stSensorFault[i]++
					e.mSensorFaults.Inc()
					sane = 0
					bad++
					if kTol > 0 && !fs && bad >= kTol {
						fs = true
						e.stFSEntries[i]++
						e.mFSEnters.Inc()
						evs = append(evs, shardEvt{node: int32(i), enter: true})
						haveEWMA = false
					}
					if fs {
						e.stFSTicks[i]++
						if ps < fsFloor {
							ps = fsFloor
							e.stStepsDown[i]++
						}
					}
					goto plantQuirks
				}
				bad = 0
				if fs {
					e.stFSTicks[i]++
					sane++
					if sane < mRec {
						if ps < fsFloor {
							ps = fsFloor
							e.stStepsDown[i]++
						}
						goto plantQuirks
					}
					// M consecutive sane readings: resume control with a
					// fresh EWMA so stale pre-fault history cannot drive
					// the first step.
					fs = false
					sane = 0
					haveEWMA = false
					e.mFSExits.Inc()
					evs = append(evs, shardEvt{node: int32(i), enter: false})
				}

				if !haveEWMA {
					sm = w
					haveEWMA = true
				} else {
					a := p.Smoothing
					sm = a*w + (1-a)*sm
				}

				target := capW - p.GuardBandWatts
				if sm > capW {
					e.stOverCap[i]++
				}
				switch {
				case sm > target:
					// Too hot: slow down (proportionally to the excess),
					// then gate.
					if ps < numP-1 {
						steps := int32(1)
						if p.StepWattsPerPState > 0 {
							steps += int32((sm - target) / p.StepWattsPerPState)
						}
						ps += steps
						if ps > numP-1 {
							ps = numP - 1
						}
						e.stStepsDown[i]++
					} else if gt < maxG {
						gt++
						e.stGateEscalate[i]++
					} else {
						e.stAtFloor[i]++
					}
				default:
					if gt > 0 {
						if sm < target-p.GateRelaxHysteresisWatts {
							gt--
							e.stGateRelax[i]++
						}
					} else if sm < target-p.HysteresisWatts && ps > 0 {
						ps--
						e.stStepsUp[i]++
					}
				}
			}

		plantQuirks:
			if e.breakFloor && fs && ps > 0 {
				// The "broken guard": the plant ignores the fail-safe
				// clamp and creeps back toward full speed.
				ps--
			}
			post, postFS = ps, fs
			e.sinceCapChange[i]++
		}

		e.pstate[i], e.gating[i] = ps, gt
		e.failSafe[i] = fs
		e.smoothed[i], e.haveEWMA[i] = sm, haveEWMA
		e.badTicks[i], e.saneTicks[i] = bad, sane
		e.noise[i] = rng
		e.prePState[i], e.postPState[i] = pre, post
		e.preFailSafe[i], e.postFailSafe[i] = preFS, postFS
	}
	e.shardEvents[worker] = evs
}

// PushPolicy installs a capping policy on node i, mirroring the legacy
// management path end to end: fencing-epoch bookkeeping (a push
// carrying an epoch below the node's high-water mark is counted as a
// split-brain actuation), bmc.SetPolicy's state machine (same-policy
// re-pushes preserve defensive state; a changed policy clears
// fail-safe; disabling restores full speed; an infeasible cap is
// applied but flagged), and the checker's settle-window reset on a
// material change (> 1 W or an enabled flip).
func (e *Engine) PushPolicy(i int, enabled bool, capWatts float64, epoch uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if epoch < e.actEpoch[i] {
		e.epochRegressions[i]++
	} else {
		e.actEpoch[i] = epoch
	}
	oldEn, oldCap := e.capEnabled[i], e.capWatts[i]
	if oldEn != enabled || oldCap != capWatts {
		if e.failSafe[i] {
			// The operator's changed intent overrides the defensive
			// clamp.
			e.mFSExits.Inc()
			if e.trace != nil {
				e.trace.Append(telemetry.Event{Node: e.names[i], Kind: telemetry.EvFailSafeExit})
			}
		}
		e.capEnabled[i], e.capWatts[i] = enabled, capWatts
		e.failSafe[i] = false
		e.badTicks[i] = 0
		e.saneTicks[i] = 0
		e.infeasible[i] = false
		if !enabled {
			e.gating[i] = 0
			e.pstate[i] = 0
			e.haveEWMA[i] = false
		} else if capWatts < e.floor {
			e.infeasible[i] = true
		}
	}
	if oldEn != enabled || math.Abs(oldCap-capWatts) > 1 {
		e.sinceCapChange[i] = 0
		e.overTicks[i] = 0
	}
}

// Policy reports node i's active policy.
func (e *Engine) Policy(i int) (enabled bool, capWatts float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.capEnabled[i], e.capWatts[i]
}

// SetDropout switches node i's sensor storm: while on, the sensor
// delivers nothing and the BMC must ride through on fail-safe.
func (e *Engine) SetDropout(i int, on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dropout[i] = on
}

// TrueWatts is node i's actual draw — what the invariant checker
// audits. It never consumes randomness.
func (e *Engine) TrueWatts(i int) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.trueWattsLocked(i)
}

func (e *Engine) trueWattsLocked(i int) float64 {
	return e.p.P0Watts - e.p.WattsPerPState*float64(e.pstate[i]) - e.p.WattsPerGate*float64(e.gating[i])
}

// ManagementWatts is the reading served to management polls: the
// controller's smoothed estimate, or truth before the first sample —
// never a fresh sensor draw, so polling cannot perturb the seeded
// noise streams.
func (e *Engine) ManagementWatts(i int) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if w := e.smoothed[i]; w != 0 {
		return w
	}
	return e.trueWattsLocked(i)
}

// PState reports node i's DVFS position.
func (e *Engine) PState(i int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int(e.pstate[i])
}

// GatingLevel reports node i's gating-ladder position.
func (e *Engine) GatingLevel(i int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int(e.gating[i])
}

// NodeHealth reports node i's defensive-controller status.
func (e *Engine) NodeHealth(i int) Health {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Health{
		FailSafe:      e.failSafe[i],
		SensorFaults:  e.stSensorFault[i],
		InfeasibleCap: e.infeasible[i],
	}
}

// Stats sums the per-node activity counters into fleet totals.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var s Stats
	for i := 0; i < e.n; i++ {
		s.Ticks += e.stTicks[i]
		s.StepsDown += e.stStepsDown[i]
		s.StepsUp += e.stStepsUp[i]
		s.GateEscalate += e.stGateEscalate[i]
		s.GateRelax += e.stGateRelax[i]
		s.OverCapTicks += e.stOverCap[i]
		s.AtFloorTicks += e.stAtFloor[i]
		s.SensorFaults += e.stSensorFault[i]
		s.FailSafeEntries += e.stFSEntries[i]
		s.FailSafeTicks += e.stFSTicks[i]
	}
	return s
}

// Audit exposes the SoA state an invariant checker reads (and the two
// accumulators it owns: OverTicks and RegSeen). The slices alias
// engine state — bracket every use with Lock/Unlock. Auditing this way
// costs one mutex acquisition per fleet-wide pass instead of one per
// node.
type Audit struct {
	PState           []int32
	Gating           []int32
	CapEnabled       []bool
	CapWatts         []float64
	Infeasible       []bool
	Dropout          []bool
	PrePState        []int32
	PostPState       []int32
	PreFailSafe      []bool
	PostFailSafe     []bool
	SinceCapChange   []int32
	OverTicks        []int32
	EpochRegressions []int32
	RegSeen          []int32
}

// Audit returns the aliased audit view; see Audit's locking contract.
func (e *Engine) Audit() Audit {
	return Audit{
		PState:           e.pstate,
		Gating:           e.gating,
		CapEnabled:       e.capEnabled,
		CapWatts:         e.capWatts,
		Infeasible:       e.infeasible,
		Dropout:          e.dropout,
		PrePState:        e.prePState,
		PostPState:       e.postPState,
		PreFailSafe:      e.preFailSafe,
		PostFailSafe:     e.postFailSafe,
		SinceCapChange:   e.sinceCapChange,
		OverTicks:        e.overTicks,
		EpochRegressions: e.epochRegressions,
		RegSeen:          e.regSeen,
	}
}

// Lock serializes an audit pass (or any multi-read) against ticks and
// management pushes.
func (e *Engine) Lock() { e.mu.Lock() }

// Unlock releases Lock.
func (e *Engine) Unlock() { e.mu.Unlock() }
