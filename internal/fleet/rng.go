package fleet

// Counter-based randomness: each node carries one uint64 of stream
// state, advanced by the SplitMix64 increment and finalized into an
// output word on demand. Unlike math/rand generators there is no
// object to pointer-chase and no hidden shared state — the stream is a
// pure function of (seed, node index, draw count), which is exactly
// the property the parallel tick needs: any shard can draw node i's
// next value without observing any other node.
const splitmixGamma = 0x9e3779b97f4a7c15

// splitmix finalizes a SplitMix64 state word into an output word.
func splitmix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// noiseStreamKey derives node i's initial stream state from the fleet
// seed. The multipliers are odd constants chosen to decorrelate
// adjacent nodes; the finalizer then whitens the combination.
func noiseStreamKey(seed int64, i int) uint64 {
	return splitmix(uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xd1342543de82ef95 + 1)
}
