package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"nodecap/internal/bmc"
	"nodecap/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Legacy-style reference: one heap object per node, layered exactly like
// the chaos harness used to build nodes — an analytic plant implementing
// bmc.Plant/PowerSampler/FloorReporter underneath the REAL bmc.BMC
// controller, plus the simNode bookkeeping (pre/post snapshots, settle
// window, fencing epochs, broken-floor creep). The engine must be
// byte-identical to stepping these objects one at a time.
// ---------------------------------------------------------------------------

type refPlant struct {
	p       Params
	pstate  int
	gating  int
	rng     uint64
	dropout bool
}

func (r *refPlant) trueWatts() float64 {
	return r.p.P0Watts - r.p.WattsPerPState*float64(r.pstate) - r.p.WattsPerGate*float64(r.gating)
}

func (r *refPlant) PowerWatts() float64 {
	r.rng += splitmixGamma
	f := float64(splitmix(r.rng)>>11) / (1 << 53)
	return r.trueWatts() + (f*2-1)*r.p.NoiseWatts
}

func (r *refPlant) PowerSample() (float64, bool) {
	if r.dropout {
		return 0, false
	}
	return r.PowerWatts(), true
}

func (r *refPlant) PStateIndex() int { return r.pstate }
func (r *refPlant) NumPStates() int  { return r.p.NumPStates }
func (r *refPlant) SetPState(i int) {
	if i < 0 {
		i = 0
	}
	if max := r.p.NumPStates - 1; i > max {
		i = max
	}
	r.pstate = i
}
func (r *refPlant) GatingLevel() int    { return r.gating }
func (r *refPlant) MaxGatingLevel() int { return r.p.MaxGatingLevel }
func (r *refPlant) SetGatingLevel(l int) {
	if l < 0 {
		l = 0
	}
	if l > r.p.MaxGatingLevel {
		l = r.p.MaxGatingLevel
	}
	r.gating = l
}
func (r *refPlant) CapFloorWatts() float64 { return r.p.FloorWatts() }

type refNode struct {
	plant      *refPlant
	ctl        *bmc.BMC
	breakFloor bool

	prePState, postPState int
	preFailSafe           bool
	postFailSafe          bool
	sinceCapChange        int
	overTicks             int
	actEpoch              uint64
	epochRegressions      int
}

func newRefNode(i int, seed int64, p Params, breakFloor bool) *refNode {
	cfg := bmc.FailSafeConfig()
	cfg.GuardBandWatts = p.GuardBandWatts
	cfg.HysteresisWatts = p.HysteresisWatts
	cfg.GateRelaxHysteresisWatts = p.GateRelaxHysteresisWatts
	cfg.Smoothing = p.Smoothing
	cfg.StepWattsPerPState = p.StepWattsPerPState
	cfg.MinPlausibleWatts = p.MinPlausibleWatts
	cfg.MaxPlausibleWatts = p.MaxPlausibleWatts
	cfg.FaultToleranceTicks = p.FaultToleranceTicks
	cfg.RecoveryTicks = p.RecoveryTicks
	cfg.FailSafePState = p.FailSafePState
	plant := &refPlant{p: p, rng: noiseStreamKey(seed, i)}
	return &refNode{plant: plant, ctl: bmc.New(cfg, plant), breakFloor: breakFloor}
}

// tick mirrors the legacy simNode.tick exactly: snapshot, controller
// tick, broken-floor creep, snapshot, settle counter.
func (n *refNode) tick() {
	n.prePState, n.preFailSafe = n.plant.pstate, n.ctl.FailSafe()
	n.ctl.Tick()
	if n.breakFloor && n.ctl.FailSafe() && n.plant.pstate > 0 {
		n.plant.pstate--
	}
	n.postPState, n.postFailSafe = n.plant.pstate, n.ctl.FailSafe()
	n.sinceCapChange++
}

// push mirrors the legacy nodeCtl.SetPowerLimit: fencing-epoch
// bookkeeping, SetPolicy, settle-window reset on a material change.
func (n *refNode) push(enabled bool, capW float64, epoch uint64) {
	if epoch < n.actEpoch {
		n.epochRegressions++
	} else {
		n.actEpoch = epoch
	}
	old := n.ctl.Policy()
	_ = n.ctl.SetPolicy(bmc.Policy{Enabled: enabled, CapWatts: capW}) // advisory ErrInfeasibleCap
	if old.Enabled != enabled || math.Abs(old.CapWatts-capW) > 1 {
		n.sinceCapChange = 0
		n.overTicks = 0
	}
}

func (n *refNode) managementWatts() float64 {
	if w := n.ctl.SmoothedWatts(); w != 0 {
		return w
	}
	return n.plant.trueWatts()
}

// snapshot renders every field the invariant checker or the management
// plane can observe; the property test compares these strings, so any
// divergence — even in the last bit of a float — fails.
func snapshotRef(nodes []*refNode) string {
	s := ""
	for i, n := range nodes {
		pol := n.ctl.Policy()
		h := n.ctl.Health()
		st := n.ctl.Stats()
		s += fmt.Sprintf("n%d ps=%d gt=%d true=%b mgmt=%b pol=%v/%b inf=%v fs=%v "+
			"pre=%d/%v post=%d/%v settle=%d epoch=%d reg=%d "+
			"stats=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			i, n.plant.pstate, n.plant.gating, n.plant.trueWatts(), n.managementWatts(),
			pol.Enabled, pol.CapWatts, h.InfeasibleCap, h.FailSafe,
			n.prePState, n.preFailSafe, n.postPState, n.postFailSafe,
			n.sinceCapChange, n.actEpoch, n.epochRegressions,
			st.Ticks, st.StepsDown, st.StepsUp, st.GateEscalate, st.GateRelax,
			st.OverCapTicks, st.AtFloorTicks, st.SensorFaults, st.FailSafeEntries, st.FailSafeTicks)
	}
	return s
}

func snapshotEngine(e *Engine) string {
	e.Lock()
	defer e.Unlock()
	a := e.Audit()
	s := ""
	for i := 0; i < e.n; i++ {
		mgmt := e.smoothed[i]
		if mgmt == 0 {
			mgmt = e.trueWattsLocked(i)
		}
		s += fmt.Sprintf("n%d ps=%d gt=%d true=%b mgmt=%b pol=%v/%b inf=%v fs=%v "+
			"pre=%d/%v post=%d/%v settle=%d epoch=%d reg=%d "+
			"stats=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			i, a.PState[i], a.Gating[i], e.trueWattsLocked(i), mgmt,
			a.CapEnabled[i], a.CapWatts[i], a.Infeasible[i], e.failSafe[i],
			a.PrePState[i], a.PreFailSafe[i], a.PostPState[i], a.PostFailSafe[i],
			a.SinceCapChange[i], e.actEpoch[i], a.EpochRegressions[i],
			e.stTicks[i], e.stStepsDown[i], e.stStepsUp[i], e.stGateEscalate[i], e.stGateRelax[i],
			e.stOverCap[i], e.stAtFloor[i], e.stSensorFault[i], e.stFSEntries[i], e.stFSTicks[i])
	}
	return s
}

// TestEngineMatchesLegacyStepping is the property test that retired the
// per-node object path: 1k random seeded scenarios — random fleet
// sizes, cap pushes (feasible, marginal, and infeasible), fencing-epoch
// regressions, sensor storms, policy disables, broken-floor fleets, and
// random batch sizes at random parallelism — each driven through both
// the SoA engine and per-node reference objects layered on the real
// bmc.BMC, comparing every observable field (rendered with %b floats,
// so equality is bit-exact) after every operation.
func TestEngineMatchesLegacyStepping(t *testing.T) {
	scenarios := 1000
	if testing.Short() {
		scenarios = 100
	}
	for sc := 0; sc < scenarios; sc++ {
		rng := rand.New(rand.NewSource(int64(sc) * 7919))
		nodes := 1 + rng.Intn(8)
		seed := rng.Int63()
		breakFloor := rng.Intn(8) == 0
		par := []int{1, 2, 4, runtime.NumCPU()}[rng.Intn(4)]

		e := New(Config{Nodes: nodes, Seed: seed, BreakFailSafeFloor: breakFloor, Parallelism: par})
		defer e.Close()
		ref := make([]*refNode, nodes)
		for i := range ref {
			ref[i] = newRefNode(i, seed, e.Params(), breakFloor)
		}

		ops := 30 + rng.Intn(70)
		for op := 0; op < ops; op++ {
			switch k := rng.Intn(10); {
			case k < 5: // advance a batch of ticks
				batch := 1 + rng.Intn(12)
				e.Tick(batch)
				// The reference steps node-major like the engine; nodes
				// are independent, so per-node order is unobservable.
				for _, n := range ref {
					for t := 0; t < batch; t++ {
						n.tick()
					}
				}
			case k < 8: // push a policy (occasionally stale-epoch, rarely infeasible)
				i := rng.Intn(nodes)
				enabled := rng.Intn(10) != 0
				capW := 100 + float64(rng.Intn(900))/10 // 100.0 .. 189.9 W — spans the floor
				epoch := uint64(rng.Intn(6))
				e.PushPolicy(i, enabled, capW, epoch)
				ref[i].push(enabled, capW, epoch)
			default: // toggle a sensor storm
				i := rng.Intn(nodes)
				on := rng.Intn(2) == 0
				e.SetDropout(i, on)
				ref[i].plant.dropout = on
			}
			got, want := snapshotEngine(e), snapshotRef(ref)
			if got != want {
				t.Fatalf("scenario %d (nodes=%d seed=%d par=%d breakFloor=%v) diverged after op %d:\nengine:\n%s\nreference:\n%s",
					sc, nodes, seed, par, breakFloor, op, got, want)
			}
		}
		e.Close()
	}
}

// TestTickParallelismDeterminism pins the shard/merge rule: the same
// scenario at parallelism 1, 4, and NumCPU yields bit-identical state
// and a bit-identical trace.
func TestTickParallelismDeterminism(t *testing.T) {
	run := func(par int) (string, []telemetry.Event) {
		reg := telemetry.NewRegistry()
		tr := telemetry.NewTrace(4096)
		tr.SetWallClock(nil)
		e := New(Config{Nodes: 257, Seed: 42, Parallelism: par})
		defer e.Close()
		e.SetTelemetry(reg, tr)
		for i := 0; i < e.Nodes(); i++ {
			e.PushPolicy(i, true, 125+float64(i%40), 1)
		}
		e.Tick(50)
		for i := 0; i < e.Nodes(); i += 3 {
			e.SetDropout(i, true)
		}
		e.Tick(30)
		for i := 0; i < e.Nodes(); i += 3 {
			e.SetDropout(i, false)
		}
		e.Tick(40)
		return snapshotEngine(e), tr.Tail(4096, "")
	}
	base, baseTr := run(1)
	for _, par := range []int{4, runtime.NumCPU()} {
		got, gotTr := run(par)
		if got != base {
			t.Fatalf("parallelism %d: state diverged from sequential run", par)
		}
		if len(gotTr) != len(baseTr) {
			t.Fatalf("parallelism %d: trace length %d != %d", par, len(gotTr), len(baseTr))
		}
		for i := range gotTr {
			if gotTr[i] != baseTr[i] {
				t.Fatalf("parallelism %d: trace event %d = %+v, want %+v", par, i, gotTr[i], baseTr[i])
			}
		}
	}
}

// TestTickZeroAlloc pins the perf contract: the batched step allocates
// nothing in steady state, sequential or sharded, telemetry wired.
func TestTickZeroAlloc(t *testing.T) {
	for _, par := range []int{1, 4} {
		e := New(Config{Nodes: 512, Seed: 7, Parallelism: par})
		e.SetTelemetry(telemetry.NewRegistry(), nil)
		for i := 0; i < e.Nodes(); i++ {
			e.PushPolicy(i, true, 140, 1)
		}
		e.Tick(10) // warm up (EWMA seeded, shard buffers sized)
		if n := testing.AllocsPerRun(20, func() { e.Tick(5) }); n != 0 {
			t.Errorf("parallelism %d: Tick allocates %.1f allocs/run, want 0", par, n)
		}
		e.Close()
	}
}

func TestPolicyLifecycle(t *testing.T) {
	e := New(Config{Nodes: 2, Seed: 3, Parallelism: 1})
	defer e.Close()

	// Infeasible cap: applied, flagged, node pins at the floor.
	e.PushPolicy(0, true, 100, 1)
	if h := e.NodeHealth(0); !h.InfeasibleCap {
		t.Fatal("cap below floor not flagged infeasible")
	}
	e.Tick(300)
	if got, want := e.TrueWatts(0), e.FloorWatts(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("infeasible cap: node at %.2f W, want pinned at floor %.2f W", got, want)
	}
	if e.PState(0) != NumPStates-1 || e.GatingLevel(0) != MaxGatingLevel {
		t.Fatalf("infeasible cap: ps=%d gt=%d, want fully escalated", e.PState(0), e.GatingLevel(0))
	}

	// Feasible cap converges under it (modulo noise on the sensor,
	// truth is noise-free).
	e.PushPolicy(1, true, 140, 1)
	e.Tick(300)
	if w := e.TrueWatts(1); w > 140 {
		t.Fatalf("feasible 140 W cap: true draw %.2f W still over", w)
	}

	// Disable restores full speed and clears gating.
	e.PushPolicy(0, false, 0, 2)
	if e.PState(0) != 0 || e.GatingLevel(0) != 0 {
		t.Fatalf("disable: ps=%d gt=%d, want full speed", e.PState(0), e.GatingLevel(0))
	}
	if h := e.NodeHealth(0); h.InfeasibleCap {
		t.Fatal("disable left infeasible flag set")
	}
}

func TestFailSafeRoundTrip(t *testing.T) {
	p := DefaultParams()
	e := New(Config{Nodes: 1, Seed: 11, Parallelism: 1})
	defer e.Close()
	e.PushPolicy(0, true, 140, 1)
	e.Tick(20)

	e.SetDropout(0, true)
	e.Tick(p.FaultToleranceTicks - 1)
	if e.NodeHealth(0).FailSafe {
		t.Fatal("entered fail-safe before FaultToleranceTicks")
	}
	e.Tick(1)
	if !e.NodeHealth(0).FailSafe {
		t.Fatal("did not enter fail-safe after FaultToleranceTicks dropouts")
	}
	if ps := e.PState(0); ps < p.FailSafePState {
		t.Fatalf("fail-safe holding ps=%d, want >= floor %d", ps, p.FailSafePState)
	}

	e.SetDropout(0, false)
	e.Tick(p.RecoveryTicks - 1)
	if !e.NodeHealth(0).FailSafe {
		t.Fatal("left fail-safe before RecoveryTicks sane readings")
	}
	e.Tick(1)
	if e.NodeHealth(0).FailSafe {
		t.Fatal("still in fail-safe after RecoveryTicks sane readings")
	}

	st := e.Stats()
	if st.FailSafeEntries != 1 || st.SensorFaults == 0 {
		t.Fatalf("stats = %+v, want 1 fail-safe entry and >0 sensor faults", st)
	}
}

func TestEpochFencing(t *testing.T) {
	e := New(Config{Nodes: 1, Seed: 1, Parallelism: 1})
	defer e.Close()
	e.PushPolicy(0, true, 140, 5)
	e.PushPolicy(0, true, 150, 3) // stale epoch: counted, policy still lands (legacy parity)
	e.Lock()
	a := e.Audit()
	regs, epoch := a.EpochRegressions[0], e.actEpoch[0]
	e.Unlock()
	if regs != 1 || epoch != 5 {
		t.Fatalf("regressions=%d epoch=%d, want 1 regression and high-water 5", regs, epoch)
	}
}

func BenchmarkEngineTick(b *testing.B) {
	for _, par := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			const nodes = 10000
			e := New(Config{Nodes: nodes, Seed: 1, Parallelism: par})
			defer e.Close()
			for i := 0; i < nodes; i++ {
				e.PushPolicy(i, true, 140, 1)
			}
			e.Tick(5)
			b.ReportAllocs()
			b.ResetTimer()
			e.Tick(b.N)
			b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "node-ticks/s")
		})
	}
}
