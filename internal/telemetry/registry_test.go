package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("re-registration did not return the same counter")
	}
	g := r.Gauge("y")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics must read zero")
	}
	var tr *Trace
	tr.Append(Event{Kind: EvCapPush})
	tr.SetTick(3)
	tr.SetWallClock(nil)
	if tr.Total() != 0 || tr.Tail(10, "") != nil || tr.Since(0, "", 0) != nil {
		t.Fatal("nil trace must be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestTypeCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("name")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1} // <=1: {0.5, 1}; <=2: {1.5}; <=4: {3}; +Inf: {100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || math.Abs(s.Sum-106) > 1e-12 {
		t.Fatalf("count=%d sum=%v, want 5 / 106", s.Count, s.Sum)
	}
}

// TestConcurrentWritersVsSnapshotReaders is the -race workout: many
// goroutines hammer a counter, a gauge, and a histogram while others
// take registry snapshots and render Prometheus text.
func TestConcurrentWritersVsSnapshotReaders(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{0.25, 0.5, 0.75})
	tr := NewTrace(64)

	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Snapshot()
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
				_ = tr.Tail(16, "")
			}
		}()
	}
	var ww sync.WaitGroup
	for i := 0; i < writers; i++ {
		ww.Add(1)
		go func(i int) {
			defer ww.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%100) / 100)
				tr.Append(Event{Node: "n", Kind: EvCapPush, Watts: float64(j)})
			}
		}(i)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != writers*perWriter {
		t.Fatalf("gauge = %v, want %d", got, writers*perWriter)
	}
	if got := h.Snapshot().Count; got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	if got := tr.Total(); got != writers*perWriter {
		t.Fatalf("trace total = %d, want %d", got, writers*perWriter)
	}
}

// TestHistogramMergeAssociativity property-checks the fleet-merge
// algebra: merge(a, merge(b, c)) == merge(merge(a, b), c) for random
// bucket populations over shared bounds.
func TestHistogramMergeAssociativity(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	mk := func(counts [5]uint16, sumCenti uint32) HistSnapshot {
		s := HistSnapshot{Bounds: bounds, Counts: make([]uint64, 5), Sum: float64(sumCenti) / 100}
		for i, c := range counts {
			s.Counts[i] = uint64(c)
			s.Count += uint64(c)
		}
		return s
	}
	eq := func(a, b HistSnapshot) bool {
		// Counts must match exactly; float sums only up to the
		// re-association rounding inherent in a different merge order.
		sumTol := 1e-9 * math.Max(1, math.Abs(a.Sum)+math.Abs(b.Sum))
		if a.Count != b.Count || math.Abs(a.Sum-b.Sum) > sumTol || len(a.Counts) != len(b.Counts) {
			return false
		}
		for i := range a.Counts {
			if a.Counts[i] != b.Counts[i] {
				return false
			}
		}
		return true
	}
	prop := func(ca, cb, cc [5]uint16, sa, sb, sc uint32) bool {
		a, b, c := mk(ca, sa), mk(cb, sb), mk(cc, sc)
		bc, err1 := b.Merge(c)
		left, err2 := a.Merge(bc)
		ab, err3 := a.Merge(b)
		right, err4 := ab.Merge(c)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return eq(left, right)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a := HistSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 0, 0}}
	b := HistSnapshot{Bounds: []float64{1, 3}, Counts: []uint64{0, 0, 0}}
	if _, err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched bounds did not fail")
	}
}

func TestSnapshotMerge(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("c").Add(3)
	rb.Counter("c").Add(4)
	rb.Counter("only_b").Inc()
	ra.Gauge("g").Set(1)
	rb.Gauge("g").Set(2)
	ra.Histogram("h", []float64{1}).Observe(0.5)
	rb.Histogram("h", []float64{1}).Observe(2)

	m, err := ra.Snapshot().Merge(rb.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["c"] != 7 || m.Counters["only_b"] != 1 {
		t.Fatalf("merged counters: %v", m.Counters)
	}
	if m.Gauges["g"] != 3 {
		t.Fatalf("merged gauge = %v, want 3 (sum semantics)", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Fatalf("merged histogram: %+v", h)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcm_cap_pushes_total").Add(3)
	r.Gauge("dcm_nodes").Set(6)
	h := r.Histogram("dcm_poll_seconds", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# TYPE dcm_cap_pushes_total counter
dcm_cap_pushes_total 3
# TYPE dcm_nodes gauge
dcm_nodes 6
# TYPE dcm_poll_seconds histogram
dcm_poll_seconds_bucket{le="0.5"} 1
dcm_poll_seconds_bucket{le="1"} 2
dcm_poll_seconds_bucket{le="+Inf"} 3
dcm_poll_seconds_sum 9.9
dcm_poll_seconds_count 3
`
	if got != want {
		t.Fatalf("prometheus text:\n%s\nwant:\n%s", got, want)
	}
}

// Zero-alloc pins for the hot paths: a BMC tick and an IPMI exchange
// increment counters / observe histograms / append trace events every
// control period; none of those may allocate.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", DefSecondsBuckets)
	tr := NewTrace(128)
	tr.SetWallClock(nil)

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.01) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.Append(Event{Node: "node-1", Kind: EvFailSafeEnter, Watts: 140})
	}); n != 0 {
		t.Errorf("Trace.Append allocates %.1f per op", n)
	}
	// The wall clock stays allocation-free too.
	tr2 := NewTrace(128)
	if n := testing.AllocsPerRun(1000, func() {
		tr2.Append(Event{Node: "node-1", Kind: EvCapPush})
	}); n != 0 {
		t.Errorf("Trace.Append with wall clock allocates %.1f per op", n)
	}
}
