package telemetry

import (
	"sync"
	"time"
)

// Decision-trace event kinds — the control-plane taxonomy (DESIGN §9).
// Producers share these constants so a trace from any subsystem reads
// as one timeline.
const (
	// EvCapPush: a capping policy was successfully pushed to a node's
	// BMC (Watts = the cap; 0 = capping disabled).
	EvCapPush = "cap-push"
	// EvCapPushFail: the push failed (Err = reason); the desired state
	// was journaled first, so reconciliation will re-push it.
	EvCapPushFail = "cap-push-fail"
	// EvDrift: a poll found the BMC's reported policy disagreeing with
	// desired state (Watts = the reported cap).
	EvDrift = "drift"
	// EvReconcile: the drifted node was re-pushed back to desired
	// (Watts = the desired cap).
	EvReconcile = "reconcile"
	// EvBackoff: an exchange failed and the redial backoff gate was
	// armed (N = consecutive failures, Err = reason).
	EvBackoff = "backoff"
	// EvRedial: a disconnected node was successfully redialed
	// (N = reconnects since registration).
	EvRedial = "redial"
	// EvFailSafeEnter / EvFailSafeExit: a BMC began or stopped
	// distrusting its power sensor and clamping to the fail-safe floor.
	EvFailSafeEnter = "failsafe-enter"
	EvFailSafeExit  = "failsafe-exit"
	// EvBudgetRealloc: a group budget was re-divided (Watts = budget,
	// N = allocations pushed).
	EvBudgetRealloc = "budget-realloc"
	// EvTierSet: a node's priority tier changed (Err field carries the
	// tier name, Watts the allocation weight it maps to).
	EvTierSet = "tier-set"
	// EvBatchSteal: a priority-aware BMC took power from the batch tier
	// (P-state drop or batch-side gating) while leaving the serving
	// tier untouched (N = the batch P-state or gating level reached).
	EvBatchSteal = "batch-steal"
	// EvFloorHold: the serving tier reached its configured frequency
	// floor and the controller held it there, escalating elsewhere
	// (N = the floor P-state).
	EvFloorHold = "floor-hold"
	// EvFloorBreak: every other mechanism was exhausted and the serving
	// tier was pushed below its floor — the cap is otherwise infeasible
	// (N = the serving P-state reached).
	EvFloorBreak = "floor-break"
	// EvCompact: the state journal was folded into a snapshot
	// (N = records compacted away).
	EvCompact = "compact"
	// EvLeaderChange: a manager took or lost HA leadership
	// (N = the new fencing epoch, Err = the transition, e.g.
	// "promoted" or "stepped-down").
	EvLeaderChange = "leader-change"
	// EvFenced: a cap push was rejected by a node because its fencing
	// epoch was stale — a newer leader has actuated there (N = the
	// stale epoch that was rejected).
	EvFenced = "fenced"

	// Gray-failure defense events (DESIGN §12).

	// EvBreakerOpen: a node's circuit breaker tripped open — too many
	// consecutive failures, or persistently slow exchanges (N = total
	// opens for the node, Err = the trip reason, "slow" for latency).
	EvBreakerOpen = "breaker-open"
	// EvBreakerHalfOpen: the open hold expired and a single probe was
	// admitted to decide between closing and re-opening.
	EvBreakerHalfOpen = "breaker-half-open"
	// EvBreakerClose: a healthy exchange closed the breaker.
	EvBreakerClose = "breaker-close"
	// EvQuarantine: the breaker opened too many times within the flap
	// window; the node is held under the longer quarantine hold
	// (Err = the reason of the final trip).
	EvQuarantine = "quarantine"
	// EvShed: a poll round overran its interval budget, so the next
	// round sheds lowest-value work (N = the new shed level, Watts =
	// the overrunning round's duration in seconds).
	EvShed = "shed"
	// EvBusyStarve: a node's poll slot was busy-skipped k rounds in a
	// row — another operation owned it every time (N = the streak).
	EvBusyStarve = "busy-starve"
	// EvHedge: a cap push exceeded the hedge delay on its primary
	// connection, so a duplicate was raced on a fresh one (idempotent
	// and epoch-fenced, so whichever lands twice is harmless).
	EvHedge = "hedge"

	// Sharded control-plane events (DESIGN §13).

	// EvHandoff: a node's ownership migrated between leaf managers with
	// fenced handoff (Node = the node, Err = "from→to", N = the fencing
	// epoch the handoff installed).
	EvHandoff = "handoff"
	// EvShardRebalance: the aggregator cascaded the datacenter budget
	// down the tree (Watts = the budget, N = leaves applied; Err is
	// "infeasible" when the budget sat below the platform minimums).
	EvShardRebalance = "shard-rebalance"
)

// Event is one decision-trace entry. Seq is assigned by Append and
// increases monotonically; Tick is the simulated-time tick (SetTick),
// zero outside simulations; WallNS is wall-clock nanoseconds, omitted
// when the trace's wall clock is disabled (deterministic replays).
type Event struct {
	Seq    uint64  `json:"seq"`
	Tick   int64   `json:"tick,omitempty"`
	WallNS int64   `json:"wall_ns,omitempty"`
	Node   string  `json:"node,omitempty"`
	Kind   string  `json:"kind"`
	Watts  float64 `json:"watts,omitempty"`
	N      int64   `json:"n,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// Trace is a bounded ring buffer of decision events. Appends are
// O(1), lock-guarded, and allocation-free; readers copy slices out.
// A nil *Trace is a valid no-op sink.
type Trace struct {
	mu    sync.Mutex
	ring  []Event
	total uint64       // events ever appended; the next event's Seq
	tick  int64        // current simulated tick, stamped onto appends
	wall  func() int64 // nil = wall stamping disabled
}

// DefaultTraceCapacity bounds the ring when NewTrace is given n <= 0.
const DefaultTraceCapacity = 4096

// NewTrace builds a trace retaining the last n events (n <= 0 means
// DefaultTraceCapacity). Wall timestamps default to time.Now; disable
// or replace them with SetWallClock for deterministic replays.
func NewTrace(n int) *Trace {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	return &Trace{
		ring: make([]Event, n),
		wall: func() int64 { return time.Now().UnixNano() },
	}
}

// SetWallClock replaces the wall-clock source; nil disables wall
// stamping entirely (events carry WallNS == 0, omitted from JSON), the
// chaos harness's bit-determinism mode.
func (t *Trace) SetWallClock(f func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.wall = f
	t.mu.Unlock()
}

// SetTick sets the simulated-time tick stamped onto subsequent
// appends. Simulation drivers call it once per tick.
func (t *Trace) SetTick(tick int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tick = tick
	t.mu.Unlock()
}

// Append records ev, assigning Seq/Tick/WallNS. Allocation-free.
func (t *Trace) Append(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total++
	ev.Seq = t.total
	ev.Tick = t.tick
	if t.wall != nil {
		ev.WallNS = t.wall()
	}
	t.ring[int((t.total-1)%uint64(len(t.ring)))] = ev
	t.mu.Unlock()
}

// Total reports how many events were ever appended (the highest Seq).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Tail returns the last n retained events (oldest first), optionally
// filtered to one node ("" = all).
func (t *Trace) Tail(n int, node string) []Event {
	if t == nil || n <= 0 {
		return nil
	}
	return t.collect(0, node, n, true)
}

// Since returns retained events with Seq >= seq (oldest first),
// optionally filtered to one node, capped to max (<= 0 = no cap). The
// follow cursor: pass lastSeen+1.
func (t *Trace) Since(seq uint64, node string, max int) []Event {
	if t == nil {
		return nil
	}
	return t.collect(seq, node, max, false)
}

// collect walks the retained window oldest→newest. When lastN is true,
// limit selects the *last* limit matches; otherwise the first limit.
func (t *Trace) collect(minSeq uint64, node string, limit int, lastN bool) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	cap64 := uint64(len(t.ring))
	start := uint64(1)
	if t.total > cap64 {
		start = t.total - cap64 + 1
	}
	if minSeq > start {
		start = minSeq
	}
	var out []Event
	for s := start; s <= t.total; s++ {
		ev := t.ring[int((s-1)%cap64)]
		if node != "" && ev.Node != node {
			continue
		}
		out = append(out, ev)
		if !lastN && limit > 0 && len(out) >= limit {
			break
		}
	}
	if lastN && limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}
