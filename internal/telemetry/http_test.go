package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dcm_cap_pushes_total").Add(2)
	h := Handler(reg, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "dcm_cap_pushes_total 2") {
		t.Fatalf("metrics body missing series:\n%s", rec.Body.String())
	}
}

func TestHandlerTrace(t *testing.T) {
	tr := NewTrace(16)
	tr.SetWallClock(nil)
	tr.Append(Event{Node: "a", Kind: EvCapPush, Watts: 140})
	tr.Append(Event{Node: "b", Kind: EvDrift})
	tr.Append(Event{Node: "a", Kind: EvReconcile, Watts: 140})
	h := Handler(nil, tr)

	get := func(url string) []Event {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", url, rec.Code)
		}
		var out []Event
		sc := bufio.NewScanner(rec.Body)
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("%s: bad NDJSON line %q: %v", url, sc.Text(), err)
			}
			out = append(out, ev)
		}
		return out
	}

	if all := get("/trace"); len(all) != 3 || all[0].Seq != 1 {
		t.Fatalf("/trace = %+v", all)
	}
	if a := get("/trace?node=a"); len(a) != 2 || a[1].Kind != EvReconcile {
		t.Fatalf("/trace?node=a = %+v", a)
	}
	if tail := get("/trace?n=1"); len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("/trace?n=1 = %+v", tail)
	}
	if since := get("/trace?since=2"); len(since) != 2 || since[0].Seq != 2 {
		t.Fatalf("/trace?since=2 = %+v", since)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?since=junk", nil))
	if rec.Code != 400 {
		t.Fatalf("bad cursor: status %d, want 400", rec.Code)
	}
}
