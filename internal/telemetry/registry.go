// Package telemetry is the observability layer of the control plane: a
// dependency-free, race-safe metrics registry (atomic counters, gauges,
// and fixed-bucket histograms with mergeable snapshots) plus a bounded
// ring-buffer decision trace (trace.go) that records every control
// decision the DCM↔BMC stack makes.
//
// Design constraints, in order:
//
//   - Zero-alloc hot paths. A BMC control tick and an IPMI exchange
//     increment counters and append trace events; neither may allocate
//     (pinned by AllocsPerRun tests). Callers therefore hold *Counter /
//     *Gauge / *Histogram handles resolved once at wiring time — there
//     are no name lookups on the hot path.
//   - Nil-safety. Every method is a no-op on a nil receiver, so
//     instrumentation is wired unconditionally and "telemetry disabled"
//     is simply a nil registry/trace — no branches at call sites, no
//     interface indirection.
//   - Determinism. Nothing in this package feeds back into control
//     decisions, and the trace's wall clock is injectable (and can be
//     disabled outright), so chaos replays stay bit-identical with
//     telemetry enabled.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; safe for concurrent use).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Bucket i counts observations
// v <= bounds[i]; one implicit overflow bucket (+Inf) catches the rest.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, fixed at creation
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefSecondsBuckets suits sub-second control-plane latencies.
var DefSecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram. Counts has
// len(Bounds)+1 entries; the last is the +Inf overflow bucket.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. The snapshot is not
// atomic across buckets — concurrent observers may straddle it — but
// every read is individually atomic, so it is race-free and each
// bucket is internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Merge combines two snapshots of histograms with identical bounds —
// the fleet-aggregation primitive. Merging is commutative and
// associative (counts and sums add), so any merge tree over per-node
// snapshots yields the same aggregate.
func (s HistSnapshot) Merge(o HistSnapshot) (HistSnapshot, error) {
	if len(s.Bounds) == 0 && len(s.Counts) == 0 {
		return o, nil
	}
	if len(o.Bounds) == 0 && len(o.Counts) == 0 {
		return s, nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return HistSnapshot{}, fmt.Errorf("telemetry: merging histograms with %d vs %d bounds", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return HistSnapshot{}, fmt.Errorf("telemetry: merging histograms with different bounds at %d: %v vs %v", i, s.Bounds[i], o.Bounds[i])
		}
	}
	out := HistSnapshot{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out, nil
}

// Registry holds named metrics. Registration (Counter/Gauge/Histogram)
// takes a lock; the returned handles are lock-free. Re-registering a
// name returns the existing metric; registering it as a different type
// (or a histogram with different bounds) panics — that is a wiring bug.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

func (r *Registry) taken(name, as string) {
	if _, ok := r.counters[name]; ok && as != "counter" {
		panic("telemetry: " + name + " already registered as counter")
	}
	if _, ok := r.gauges[name]; ok && as != "gauge" {
		panic("telemetry: " + name + " already registered as gauge")
	}
	if _, ok := r.histograms[name]; ok && as != "histogram" {
		panic("telemetry: " + name + " already registered as histogram")
	}
}

// Counter returns (registering if needed) the named counter. Nil
// registries return a nil handle, whose methods are all no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.taken(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.taken(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (registering if needed) the named histogram with
// the given ascending bucket bounds. Re-registering with different
// bounds panics.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram " + name + " bounds not ascending")
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic("telemetry: " + name + " re-registered with different bounds")
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic("telemetry: " + name + " re-registered with different bounds")
			}
		}
		return h
	}
	r.taken(name, "histogram")
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Snapshot is a point-in-time copy of a whole registry, suitable for
// merging across processes or diffing in tests.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Merge combines two registry snapshots: counters and histograms add,
// gauges sum (the fleet-aggregation semantic — e.g. nodes-reachable
// across managers). Histogram merges with mismatched bounds fail.
func (s Snapshot) Merge(o Snapshot) (Snapshot, error) {
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range o.Histograms {
		m, err := out.Histograms[k].Merge(v)
		if err != nil {
			return Snapshot{}, fmt.Errorf("%s: %w", k, err)
		}
		out.Histograms[k] = m
	}
	return out, nil
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format, names sorted for stable diffs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
				return err
			}
		}
		if len(h.Counts) > 0 {
			cum += h.Counts[len(h.Counts)-1]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, cum, name, formatFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
