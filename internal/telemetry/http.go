package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the observability endpoints over HTTP:
//
//	GET /metrics — the registry in Prometheus text exposition format.
//	GET /trace   — the decision trace as NDJSON (bounded tail).
//	               Query params: n (tail length, default 256),
//	               node (filter), since (sequence cursor for polling).
//
// Either argument may be nil; the corresponding endpoint then serves
// an empty body.
func Handler(reg *Registry, tr *Trace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		n := 256
		if s := q.Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		node := q.Get("node")
		var events []Event
		if s := q.Get("since"); s != "" {
			since, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since cursor", http.StatusBadRequest)
				return
			}
			events = tr.Since(since, node, n)
		} else {
			events = tr.Tail(n, node)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
	})
	return mux
}
