package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceAppendAndTail(t *testing.T) {
	tr := NewTrace(4)
	tr.SetWallClock(nil)
	for i := 0; i < 6; i++ {
		tr.SetTick(int64(i))
		tr.Append(Event{Node: "n", Kind: EvCapPush, Watts: float64(i)})
	}
	if tr.Total() != 6 {
		t.Fatalf("total = %d, want 6", tr.Total())
	}
	// Capacity 4: events 3..6 retained.
	tail := tr.Tail(10, "")
	if len(tail) != 4 {
		t.Fatalf("tail length = %d, want 4", len(tail))
	}
	for i, ev := range tail {
		wantSeq := uint64(i + 3)
		if ev.Seq != wantSeq || ev.Tick != int64(wantSeq-1) || ev.Watts != float64(wantSeq-1) {
			t.Fatalf("tail[%d] = %+v, want seq %d", i, ev, wantSeq)
		}
	}
	if got := tr.Tail(2, ""); len(got) != 2 || got[1].Seq != 6 {
		t.Fatalf("tail(2) = %+v", got)
	}
}

func TestTraceNodeFilterAndSince(t *testing.T) {
	tr := NewTrace(16)
	tr.SetWallClock(nil)
	for i := 0; i < 8; i++ {
		node := "a"
		if i%2 == 1 {
			node = "b"
		}
		tr.Append(Event{Node: node, Kind: EvDrift})
	}
	a := tr.Tail(10, "a")
	if len(a) != 4 {
		t.Fatalf("filtered tail length = %d, want 4", len(a))
	}
	for _, ev := range a {
		if ev.Node != "a" {
			t.Fatalf("filter leaked %+v", ev)
		}
	}
	since := tr.Since(6, "", 0)
	if len(since) != 3 || since[0].Seq != 6 {
		t.Fatalf("since(6) = %+v", since)
	}
	if capped := tr.Since(1, "", 2); len(capped) != 2 || capped[0].Seq != 1 {
		t.Fatalf("since(1, max 2) = %+v", capped)
	}
	if none := tr.Since(100, "", 0); len(none) != 0 {
		t.Fatalf("since past the end = %+v", none)
	}
}

// TestTraceDeterministicJSON: with the wall clock disabled, the same
// append sequence marshals to identical bytes — the property chaos
// verdicts rely on.
func TestTraceDeterministicJSON(t *testing.T) {
	render := func() string {
		tr := NewTrace(8)
		tr.SetWallClock(nil)
		tr.SetTick(42)
		tr.Append(Event{Node: "node-1", Kind: EvBackoff, N: 3, Err: "link partitioned"})
		tr.Append(Event{Node: "node-2", Kind: EvCapPush, Watts: 137.5})
		b, err := json.Marshal(tr.Tail(8, ""))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("trace JSON diverges:\n%s\n%s", a, b)
	}
	// No wall_ns field may appear with the clock disabled.
	if strings.Contains(a, `"wall_ns"`) {
		t.Fatalf("disabled wall clock leaked into JSON: %s", a)
	}
}

func TestTraceInjectedWallClock(t *testing.T) {
	tr := NewTrace(8)
	var now int64 = 1000
	tr.SetWallClock(func() int64 { return now })
	tr.Append(Event{Kind: EvCompact})
	now = 2000
	tr.Append(Event{Kind: EvCompact})
	tail := tr.Tail(8, "")
	if tail[0].WallNS != 1000 || tail[1].WallNS != 2000 {
		t.Fatalf("injected wall clock not stamped: %+v", tail)
	}
}
