package sensors

import (
	"math"
	"testing"
	"testing/quick"

	"nodecap/internal/simtime"
)

func TestEmptyMeter(t *testing.T) {
	m := NewMeter(0)
	if m.AverageWatts() != 0 || m.EnergyJoules() != 0 || m.Len() != 0 {
		t.Error("empty meter not zero")
	}
	if _, ok := m.Last(); ok {
		t.Error("Last on empty meter ok")
	}
}

func TestConstantPower(t *testing.T) {
	m := NewMeter(0)
	for i := 0; i <= 10; i++ {
		m.Record(simtime.Duration(i)*simtime.Second, 150)
	}
	if got := m.AverageWatts(); got != 150 {
		t.Errorf("AverageWatts = %v", got)
	}
	// 150 W for 10 s = 1500 J.
	if got := m.EnergyJoules(); math.Abs(got-1500) > 1e-9 {
		t.Errorf("EnergyJoules = %v", got)
	}
}

func TestTrapezoidalIntegration(t *testing.T) {
	m := NewMeter(0)
	m.Record(0, 100)
	m.Record(2*simtime.Second, 200)
	// Trapezoid: (100+200)/2 * 2 s = 300 J.
	if got := m.EnergyJoules(); math.Abs(got-300) > 1e-9 {
		t.Errorf("EnergyJoules = %v", got)
	}
	if got := m.AverageWatts(); math.Abs(got-150) > 1e-9 {
		t.Errorf("AverageWatts = %v", got)
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	// 1 s at ~100 W then 9 s at ~200 W: the time-weighted average must
	// be near 190, not the sample mean.
	m := NewMeter(0)
	m.Record(0, 100)
	m.Record(simtime.Second, 100)
	m.Record(10*simtime.Second, 200)
	got := m.AverageWatts()
	want := (100*1 + 150*9) / 10.0 // trapezoid on second span
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AverageWatts = %v, want %v", got, want)
	}
}

func TestWindowAverage(t *testing.T) {
	m := NewMeter(0)
	for i := 0; i <= 9; i++ {
		w := 100.0
		if i >= 5 {
			w = 200
		}
		m.Record(simtime.Duration(i)*simtime.Second, w)
	}
	// Last 4 s: samples at 5..9 s, all 200 W.
	if got := m.WindowAverageWatts(4 * simtime.Second); got != 200 {
		t.Errorf("WindowAverageWatts(4s) = %v", got)
	}
	// Whole span.
	full := m.WindowAverageWatts(100 * simtime.Second)
	if full <= 100 || full >= 200 {
		t.Errorf("WindowAverageWatts(100s) = %v", full)
	}
}

func TestWindowAverageSingleSample(t *testing.T) {
	m := NewMeter(0)
	m.Record(simtime.Second, 123)
	if got := m.WindowAverageWatts(simtime.Second); got != 123 {
		t.Errorf("WindowAverageWatts = %v", got)
	}
}

func TestLastAndReset(t *testing.T) {
	m := NewMeter(0)
	m.Record(simtime.Second, 111)
	m.Record(2*simtime.Second, 222)
	s, ok := m.Last()
	if !ok || s.Watts != 222 || s.At != 2*simtime.Second {
		t.Errorf("Last = %+v, %v", s, ok)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Error("Reset kept samples")
	}
}

func TestNoiseBoundedAndDeterministic(t *testing.T) {
	a := NewMeter(1.5)
	b := NewMeter(1.5)
	for i := 0; i < 200; i++ {
		a.Record(simtime.Duration(i)*simtime.Second, 150)
		b.Record(simtime.Duration(i)*simtime.Second, 150)
	}
	for i, s := range a.Samples() {
		if math.Abs(s.Watts-150) > 1.5 {
			t.Fatalf("sample %d = %v exceeds noise bound", i, s.Watts)
		}
		if s.Watts != b.Samples()[i].Watts {
			t.Fatal("noise not deterministic across meters")
		}
	}
	// Noise should actually perturb something.
	var any bool
	for _, s := range a.Samples() {
		if s.Watts != 150 {
			any = true
			break
		}
	}
	if !any {
		t.Error("noise amplitude 1.5 produced no perturbation")
	}
}

func TestNoiseAveragesOut(t *testing.T) {
	m := NewMeter(2)
	for i := 0; i <= 5000; i++ {
		m.Record(simtime.Duration(i)*simtime.Second, 150)
	}
	if got := m.AverageWatts(); math.Abs(got-150) > 0.2 {
		t.Errorf("noisy average = %v, want ~150", got)
	}
}

func TestRecordClampsNegativeNoise(t *testing.T) {
	// Huge noise amplitude around a near-zero reading: without the 0 W
	// clamp some samples go negative and poison trapezoidal energy.
	m := NewMeter(50)
	for i := 0; i < 500; i++ {
		m.Record(simtime.Duration(i)*simtime.Second, 1)
	}
	for i, s := range m.Samples() {
		if s.Watts < 0 {
			t.Fatalf("sample %d = %v W, want >= 0", i, s.Watts)
		}
	}
	if e := m.EnergyJoules(); e < 0 {
		t.Errorf("EnergyJoules = %v, want >= 0", e)
	}
}

func TestWindowAverageZeroSpan(t *testing.T) {
	// All window samples at one timestamp: no time base to weight by.
	// This used to return NaN (0/0).
	m := NewMeter(0)
	m.Record(simtime.Second, 140)
	m.Record(simtime.Second, 160)
	m.Record(simtime.Second, 180)
	got := m.WindowAverageWatts(10 * simtime.Second)
	if math.IsNaN(got) {
		t.Fatal("WindowAverageWatts = NaN on zero-span window")
	}
	if got != 180 {
		t.Errorf("WindowAverageWatts = %v, want 180 (latest reading)", got)
	}
}

// TestAverageWithinSampleRange: the time-weighted average of any
// noiseless trace lies within [min, max] of its samples.
func TestAverageWithinSampleRange(t *testing.T) {
	f := func(watts []float64) bool {
		if len(watts) == 0 {
			return true
		}
		m := NewMeter(0)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, w := range watts {
			w = math.Abs(math.Mod(w, 1000)) // keep finite and positive
			if math.IsNaN(w) {
				w = 0
			}
			lo = math.Min(lo, w)
			hi = math.Max(hi, w)
			m.Record(simtime.Duration(i)*simtime.Second, w)
		}
		avg := m.AverageWatts()
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
