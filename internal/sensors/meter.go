// Package sensors models the measurement instruments of the study:
// the Watts Up!-style wall power meter the paper used to capture
// average node power, including the energy integration behind
// Table II's "Computed Energy Consumption" column.
package sensors

import (
	"math"

	"nodecap/internal/simtime"
)

// Sample is one meter reading.
type Sample struct {
	At    simtime.Duration
	Watts float64
}

// Meter accumulates timestamped power readings. The simulated machine
// feeds it one reading per sampling interval (1 s on the real meter);
// noise, if configured, is deterministic so runs are reproducible.
type Meter struct {
	// NoiseWatts is the peak amplitude of deterministic pseudo-noise
	// added to each recorded sample, imitating wall-meter jitter.
	// Zero disables it.
	NoiseWatts float64

	samples []Sample
	nextSeq uint64
}

// NewMeter returns a meter with the given noise amplitude.
func NewMeter(noiseWatts float64) *Meter {
	return &Meter{NoiseWatts: noiseWatts}
}

// Record appends a reading taken at time at. The stored reading is
// clamped at 0 W: pseudo-noise on a near-idle reading can swing below
// zero, and a negative wall sample would poison trapezoidal energy.
func (m *Meter) Record(at simtime.Duration, watts float64) {
	if m.NoiseWatts > 0 {
		watts += m.NoiseWatts * noise(m.nextSeq)
	}
	m.nextSeq++
	if watts < 0 {
		watts = 0
	}
	m.samples = append(m.samples, Sample{At: at, Watts: watts})
}

// noise maps a sequence number to a deterministic value in [-1, 1]
// using a splitmix64-style integer hash.
func noise(seq uint64) float64 {
	z := seq + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z)/float64(math.MaxUint64)*2 - 1
}

// Len reports the number of recorded samples.
func (m *Meter) Len() int { return len(m.samples) }

// Samples returns the recorded readings (shared slice; callers must
// not modify it).
func (m *Meter) Samples() []Sample { return m.samples }

// AverageWatts reports the time-weighted mean power over the recorded
// span, or 0 with no samples. With a single sample it returns that
// sample's value.
func (m *Meter) AverageWatts() float64 {
	switch len(m.samples) {
	case 0:
		return 0
	case 1:
		return m.samples[0].Watts
	}
	span := m.samples[len(m.samples)-1].At - m.samples[0].At
	if span <= 0 {
		return m.samples[0].Watts
	}
	return m.EnergyJoules() / span.Seconds()
}

// WindowAverageWatts reports the time-weighted mean over samples taken
// in the trailing window ending at the last sample. The BMC's control
// loop uses a short window so it reacts to recent consumption.
func (m *Meter) WindowAverageWatts(window simtime.Duration) float64 {
	if len(m.samples) == 0 {
		return 0
	}
	cutoff := m.samples[len(m.samples)-1].At - window
	start := len(m.samples) - 1
	for start > 0 && m.samples[start-1].At >= cutoff {
		start--
	}
	w := m.samples[start:]
	if len(w) < 2 {
		return w[len(w)-1].Watts
	}
	span := w[len(w)-1].At - w[0].At
	if span <= 0 {
		// Every window sample shares one timestamp (possible when the
		// clock did not advance between recordings): no time base to
		// weight by, so report the latest reading rather than 0/0.
		return w[len(w)-1].Watts
	}
	var joules float64
	for i := 1; i < len(w); i++ {
		dt := (w[i].At - w[i-1].At).Seconds()
		joules += dt * (w[i].Watts + w[i-1].Watts) / 2
	}
	return joules / span.Seconds()
}

// EnergyJoules integrates the samples trapezoidally, the way the
// paper computes energy from the meter trace.
func (m *Meter) EnergyJoules() float64 {
	var joules float64
	for i := 1; i < len(m.samples); i++ {
		dt := (m.samples[i].At - m.samples[i-1].At).Seconds()
		joules += dt * (m.samples[i].Watts + m.samples[i-1].Watts) / 2
	}
	return joules
}

// Last reports the most recent sample; ok is false when none exist.
func (m *Meter) Last() (Sample, bool) {
	if len(m.samples) == 0 {
		return Sample{}, false
	}
	return m.samples[len(m.samples)-1], true
}

// Reset discards all samples but keeps the noise sequence advancing so
// successive runs see different (still deterministic) jitter.
func (m *Meter) Reset() { m.samples = m.samples[:0] }
