package stats_test

import (
	"fmt"

	"nodecap/internal/stats"
)

// The percent-difference presentation of Table II: each capped datum
// against the baseline, rounded to the nearest integer.
func ExamplePercentDiff() {
	baseline := 89.0 // seconds, Stereo Matching uncapped
	at120W := 3168.0 // 0:52:48 under the 120 W cap
	fmt.Printf("%+d%%\n", stats.RoundPercent(stats.PercentDiff(at120W, baseline)))
	// Output: +3460%
}

// Figures 1 and 2 normalize each metric series to its own maximum.
func ExampleNormalize() {
	freqs := []float64{2701, 2168, 1200}
	for _, v := range stats.Normalize(freqs) {
		fmt.Printf("%.3f ", v)
	}
	fmt.Println()
	// Output: 1.000 0.803 0.444
}

func ExampleFormatCount() {
	fmt.Println(stats.FormatCount(1664150370))
	// Output: 1,664,150,370
}
