// Package stats provides the small numerical toolkit the study's
// tables are built from: multi-trial averaging, the percent-difference
// columns of Table II, and the normalization used by Figures 1 and 2.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than
// two values).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// PercentDiff reports (val-base)/base in percent. It returns 0 when
// the base is 0, matching how the paper treats empty baselines.
func PercentDiff(val, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (val - base) / base * 100
}

// RoundPercent rounds a percent difference to the nearest integer, the
// presentation used throughout Table II.
func RoundPercent(p float64) int {
	return int(math.Round(p))
}

// Normalize scales xs by its maximum absolute value so the largest
// magnitude becomes 1, the scheme behind Figures 1 and 2. A zero
// series is returned unchanged.
func Normalize(xs []float64) []float64 {
	var peak float64
	for _, x := range xs {
		if a := math.Abs(x); a > peak {
			peak = a
		}
	}
	out := make([]float64, len(xs))
	if peak == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / peak
	}
	return out
}

// FormatCount renders a large counter value with comma separators, as
// Table II prints raw event counts.
func FormatCount(v float64) string {
	n := int64(math.Round(v))
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	for i := len(s) - 3; i > 0; i -= 3 {
		s = s[:i] + "," + s[i:]
	}
	if neg {
		s = "-" + s
	}
	return s
}
