package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Error("Stddev of one value != 0")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("Stddev = %v", got)
	}
}

func TestPercentDiff(t *testing.T) {
	if got := PercentDiff(110, 100); got != 10 {
		t.Errorf("PercentDiff = %v", got)
	}
	if got := PercentDiff(90, 100); got != -10 {
		t.Errorf("PercentDiff = %v", got)
	}
	if got := PercentDiff(5, 0); got != 0 {
		t.Errorf("PercentDiff with zero base = %v", got)
	}
	// The paper's A9 row (0:52:48 vs 0:01:29 baseline): +3,460% on
	// whole seconds; the printed +3,467% uses unrounded sub-second
	// baselines.
	if got := RoundPercent(PercentDiff(3168, 89)); got != 3460 {
		t.Errorf("A9-style percent = %d", got)
	}
}

func TestRoundPercent(t *testing.T) {
	if RoundPercent(2.5) != 3 || RoundPercent(-2.5) != -3 || RoundPercent(0.4) != 0 {
		t.Error("rounding wrong")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 1})
	want := []float64{0.5, 1, 0.25}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v", i, got[i])
		}
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero series changed")
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		out := Normalize(xs)
		for _, v := range out {
			if math.Abs(v) > 1+1e-12 {
				return false
			}
		}
		return len(out) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatCount(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{999, "999"},
		{1000, "1,000"},
		{1664150370, "1,664,150,370"}, // Table II row A0
		{-12345, "-12,345"},
	}
	for _, c := range cases {
		if got := FormatCount(c.v); got != c.want {
			t.Errorf("FormatCount(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
