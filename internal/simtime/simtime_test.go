package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestUnitRatios(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Errorf("Nanosecond = %d", Nanosecond)
	}
	if Second != 1_000_000_000_000*Picosecond {
		t.Errorf("Second = %d", Second)
	}
	if Hour != 3600*Second {
		t.Errorf("Hour = %d", Hour)
	}
}

func TestFromNanos(t *testing.T) {
	cases := []struct {
		ns   float64
		want Duration
	}{
		{0, 0},
		{1, Nanosecond},
		{1.5, 1500},
		{0.0004, 0}, // rounds down
		{0.0006, 1}, // rounds up
		{60, 60 * Nanosecond},
	}
	for _, c := range cases {
		if got := FromNanos(c.ns); got != c.want {
			t.Errorf("FromNanos(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 0.25, 1, 91, 377, 10139} {
		d := FromSeconds(s)
		if got := d.Seconds(); got != s {
			t.Errorf("FromSeconds(%v).Seconds() = %v", s, got)
		}
	}
}

func TestFromStd(t *testing.T) {
	if got := FromStd(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromStd(3ms) = %v", got)
	}
	if got := (2 * Second).Std(); got != 2*time.Second {
		t.Errorf("(2s).Std() = %v", got)
	}
}

func TestHMS(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{91 * Second, "0:01:31"},                    // Stereo baseline in Table I
		{6*Minute + 17*Second, "0:06:17"},           // SIRE baseline in Table I
		{2*Hour + 48*Minute + 59*Second, "2:48:59"}, // SIRE at 120 W in Table II
		{52*Minute + 48*Second, "0:52:48"},          // Stereo at 120 W
		{Second/2 + 1, "0:00:01"},                   // rounds to nearest second
		{0, "0:00:00"},
	}
	for _, c := range cases {
		if got := c.d.HMS(); got != c.want {
			t.Errorf("HMS(%d) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	if got := (500 * Picosecond).String(); got != "500ps" {
		t.Errorf("String = %q", got)
	}
	if got := (1500 * Picosecond).String(); got != "1.50ns" {
		t.Errorf("String = %q", got)
	}
	if got := (90 * Second).String(); got != "0:01:30" {
		t.Errorf("String = %q", got)
	}
}

func TestCycleTime(t *testing.T) {
	// One cycle at 2700 MHz is 370.37 ps, rounded to 370 ps.
	if got := CycleTime(2700); got != 370 {
		t.Errorf("CycleTime(2700) = %d, want 370", got)
	}
	if got := CycleTime(1200); got != 833 {
		t.Errorf("CycleTime(1200) = %d, want 833", got)
	}
	if got := CycleTime(0); got != 0 {
		t.Errorf("CycleTime(0) = %d, want 0", got)
	}
}

func TestCyclesNoCumulativeError(t *testing.T) {
	// A billion cycles at 2.7 GHz should be ~370.37 ms, not the
	// 370 ms that per-cycle truncation would give.
	d := Cycles(1_000_000_000, 2700)
	wantNs := 1e9 / 2700 * 1000 // ns
	if got := d.Nanos(); got < wantNs*0.9999 || got > wantNs*1.0001 {
		t.Errorf("Cycles(1e9, 2700) = %v ns, want ~%v ns", got, wantNs)
	}
}

func TestCyclesAt(t *testing.T) {
	if got := Second.CyclesAt(2700); got != 2_700_000_000 {
		t.Errorf("Second.CyclesAt(2700) = %d", got)
	}
	if got := Second.CyclesAt(0); got != 0 {
		t.Errorf("CyclesAt(0) = %d", got)
	}
}

func TestCyclesRoundTripProperty(t *testing.T) {
	// For any positive cycle count and supported frequency, converting
	// cycles -> duration -> cycles loses at most one cycle to rounding.
	f := func(n uint32, fsel uint8) bool {
		freqs := []int{1200, 1500, 2000, 2400, 2700}
		freq := freqs[int(fsel)%len(freqs)]
		cycles := int64(n%1_000_000) + 1
		d := Cycles(cycles, freq)
		back := d.CyclesAt(freq)
		diff := back - cycles
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %d", c.Now())
	}
	c.Advance(5 * Millisecond)
	c.Advance(0)
	if c.Now() != 5*Millisecond {
		t.Errorf("Now = %v", c.Now())
	}
	c.AdvanceTo(3 * Millisecond) // in the past: no-op
	if c.Now() != 5*Millisecond {
		t.Errorf("AdvanceTo past moved clock to %v", c.Now())
	}
	c.AdvanceTo(7 * Millisecond)
	if c.Now() != 7*Millisecond {
		t.Errorf("AdvanceTo future: Now = %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Reset: Now = %v", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var got []int
	q.Schedule(30, func(Duration) { got = append(got, 3) })
	q.Schedule(10, func(Duration) { got = append(got, 1) })
	q.Schedule(20, func(Duration) { got = append(got, 2) })
	q.RunUntil(25)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("RunUntil(25) fired %v", got)
	}
	q.RunUntil(100)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("RunUntil(100) fired %v", got)
	}
}

func TestEventQueueFIFOTieBreak(t *testing.T) {
	q := NewEventQueue()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(42, func(Duration) { got = append(got, i) })
	}
	q.RunUntil(42)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order %v", got)
		}
	}
}

func TestEventQueueRescheduleDuringRun(t *testing.T) {
	q := NewEventQueue()
	var fired []Duration
	var tick func(now Duration)
	tick = func(now Duration) {
		fired = append(fired, now)
		if now < 50 {
			q.Schedule(now+10, tick)
		}
	}
	q.Schedule(10, tick)
	q.RunUntil(35)
	if len(fired) != 3 { // 10, 20, 30
		t.Fatalf("fired at %v", fired)
	}
	q.RunUntil(1000)
	if len(fired) != 5 { // + 40, 50
		t.Fatalf("fired at %v", fired)
	}
}

func TestEventQueuePeekAndClear(t *testing.T) {
	q := NewEventQueue()
	if _, ok := q.PeekTime(); ok {
		t.Error("PeekTime on empty queue reported ok")
	}
	q.Schedule(7, func(Duration) {})
	if at, ok := q.PeekTime(); !ok || at != 7 {
		t.Errorf("PeekTime = %v, %v", at, ok)
	}
	q.Clear()
	if q.Len() != 0 {
		t.Errorf("Len after Clear = %d", q.Len())
	}
}

func TestEventQueueHeapProperty(t *testing.T) {
	// Random schedule times must always pop in non-decreasing order.
	f := func(times []uint16) bool {
		q := NewEventQueue()
		for _, at := range times {
			q.Schedule(Duration(at), func(Duration) {})
		}
		last := Duration(-1)
		for q.Len() > 0 {
			e := q.Pop()
			if e.At < last {
				return false
			}
			last = e.At
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
