// Package simtime provides the virtual time base for the node simulator.
//
// All simulated latencies are expressed as Duration values with
// picosecond resolution. Picoseconds are fine-grained enough to
// represent a single clock cycle at any frequency the simulated
// platform supports (one cycle at 2.7 GHz is ~370.4 ps) while an int64
// still spans more than 100 days of simulated time.
package simtime

import (
	"fmt"
	"time"
)

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// FromNanos converts a floating-point nanosecond count to a Duration,
// rounding to the nearest picosecond.
func FromNanos(ns float64) Duration {
	return Duration(ns*1e3 + 0.5)
}

// FromSeconds converts a floating-point second count to a Duration.
func FromSeconds(s float64) Duration {
	return Duration(s * 1e12)
}

// FromStd converts a time.Duration to a simulated Duration.
func FromStd(d time.Duration) Duration {
	return Duration(d.Nanoseconds()) * Nanosecond
}

// Nanos reports d in nanoseconds.
func (d Duration) Nanos() float64 { return float64(d) / 1e3 }

// Seconds reports d in seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

// Std converts d to a time.Duration, saturating on overflow of the
// nanosecond representation.
func (d Duration) Std() time.Duration {
	return time.Duration(d/Nanosecond) * time.Nanosecond
}

// String renders d using the most natural unit, matching the paper's
// h:m:s presentation for long times.
func (d Duration) String() string {
	switch {
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.2fns", d.Nanos())
	case d < Second:
		return d.Std().String()
	default:
		return d.HMS()
	}
}

// HMS renders d as h:mm:ss (rounded to the nearest second), the format
// used by Table II of the paper.
func (d Duration) HMS() string {
	secs := int64((d + Second/2) / Second)
	h := secs / 3600
	m := (secs % 3600) / 60
	s := secs % 60
	return fmt.Sprintf("%d:%02d:%02d", h, m, s)
}

// CyclesAt reports how many whole cycles of the given frequency fit in d.
func (d Duration) CyclesAt(freqMHz int) int64 {
	if freqMHz <= 0 {
		return 0
	}
	// cycles = d[s] * f[Hz] = d[ps] * f[MHz] * 1e-6
	return int64(float64(d) * float64(freqMHz) * 1e-6)
}

// CycleTime returns the duration of one clock cycle at freqMHz.
func CycleTime(freqMHz int) Duration {
	if freqMHz <= 0 {
		return 0
	}
	return Duration(1e6/float64(freqMHz) + 0.5)
}

// Cycles returns the duration of n cycles at freqMHz without
// accumulating per-cycle rounding error.
func Cycles(n int64, freqMHz int) Duration {
	if freqMHz <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n)*1e6/float64(freqMHz) + 0.5)
}

// Clock is a monotonically advancing virtual clock.
type Clock struct {
	now Duration
}

// NewClock returns a clock positioned at time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current simulated time.
func (c *Clock) Now() Duration { return c.now }

// Advance moves the clock forward by d. It panics if d is negative:
// simulated time never runs backwards, and a negative latency always
// indicates a modelling bug upstream.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %d", d))
	}
	c.now += d
}

// AdvanceTo moves the clock to the absolute time t if t is in the
// future; it is a no-op otherwise.
func (c *Clock) AdvanceTo(t Duration) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Only experiment harnesses reset
// clocks, between independent runs.
func (c *Clock) Reset() { c.now = 0 }
