package simtime

import "container/heap"

// Event is a callback scheduled at an absolute simulated time.
type Event struct {
	At Duration
	Fn func(now Duration)

	index int // heap bookkeeping
	seq   uint64
}

// EventQueue is a deterministic priority queue of events ordered by
// time, with FIFO tie-breaking so that two events scheduled for the
// same instant fire in scheduling order. The node simulator uses it to
// interleave periodic activities (BMC control ticks, meter samples)
// with workload execution.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Schedule enqueues fn to run at time at.
func (q *EventQueue) Schedule(at Duration, fn func(now Duration)) *Event {
	e := &Event{At: at, Fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return q.h.Len() }

// PeekTime reports the time of the earliest pending event. The second
// result is false when the queue is empty.
func (q *EventQueue) PeekTime() (Duration, bool) {
	if q.h.Len() == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest event. It panics on an empty
// queue; callers check Len or PeekTime first.
func (q *EventQueue) Pop() *Event {
	return heap.Pop(&q.h).(*Event)
}

// RunUntil fires, in order, every event scheduled at or before t.
// Events may schedule further events; those are honoured if they also
// fall at or before t.
func (q *EventQueue) RunUntil(t Duration) {
	for {
		at, ok := q.PeekTime()
		if !ok || at > t {
			return
		}
		e := q.Pop()
		e.Fn(e.At)
	}
}

// Clear drops all pending events.
func (q *EventQueue) Clear() {
	q.h = q.h[:0]
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
