// Package faults provides a fault-injecting network transport for
// exercising the DCM↔BMC control plane under degraded conditions:
// connect refusals, added latency, blackholed writes (a peer that
// accepts TCP but never answers), connection resets, and corrupted
// bytes. All probabilistic faults draw from a seeded generator so a
// given seed reproduces the same fault schedule, which keeps the
// fleet-degradation tests deterministic.
//
// A Transport wraps dialed connections in fault-injecting conns. Its
// Profile can be swapped at runtime — SetProfile applies to every
// subsequent operation on both new and already-established
// connections, so a test can partition a node mid-poll and heal it
// later without redialing.
package faults

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Profile configures which faults a Transport injects. The zero value
// is fully transparent.
type Profile struct {
	// Seed keys the fault schedule; transports built from equal
	// profiles replay identical decisions. Zero means seed 1.
	Seed int64

	// DialErrorProb is the probability [0,1] that Dial fails outright
	// with a refused-connection error.
	DialErrorProb float64

	// ConnectLatency is added to every successful Dial.
	ConnectLatency time.Duration

	// ReadLatency and WriteLatency are added before each Read/Write.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// DropWrites blackholes the connection: writes report success but
	// deliver nothing, so the peer never responds and the caller's
	// read deadline is what ends the exchange.
	DropWrites bool

	// ResetProb is the per-operation probability [0,1] that the
	// connection is torn down with a reset-style error.
	ResetProb float64

	// CorruptProb is the per-read probability [0,1] that one delivered
	// byte is bit-flipped (caught downstream by the IPMI checksum).
	CorruptProb float64
}

// Stats counts the faults a Transport has injected.
type Stats struct {
	Dials          int
	DialsRefused   int
	Resets         int
	DroppedWrites  int
	CorruptedReads int
}

// Transport dials and wraps connections, injecting the faults its
// current Profile describes. Safe for concurrent use.
type Transport struct {
	mu    sync.Mutex
	rng   *rand.Rand
	p     Profile
	stats Stats
}

// New builds a Transport with profile p.
func New(p Profile) *Transport {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Transport{rng: rand.New(rand.NewSource(seed)), p: p}
}

// SetProfile replaces the active profile. Existing connections pick up
// the new behaviour on their next operation (the rng keeps its state,
// so healing is Profile{} rather than a reseed).
func (t *Transport) SetProfile(p Profile) {
	t.mu.Lock()
	t.p = p
	t.mu.Unlock()
}

// Profile returns the active profile.
func (t *Transport) Profile() Profile {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.p
}

// Transparent reports whether the profile injects no faults at all —
// only the seed may differ from the zero profile. A transparent
// transport passes traffic through untouched.
func (p Profile) Transparent() bool {
	return p == Profile{Seed: p.Seed}
}

// Stats returns a snapshot of the injected-fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// chance draws one probabilistic decision from the seeded schedule.
func (t *Transport) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return t.rng.Float64() < p
}

// Dial connects with timeout and wraps the connection. A timeout of
// zero dials without bound.
func (t *Transport) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	t.mu.Lock()
	t.stats.Dials++
	refused := t.chance(t.p.DialErrorProb)
	delay := t.p.ConnectLatency
	if refused {
		t.stats.DialsRefused++
	}
	t.mu.Unlock()
	if refused {
		return nil, fmt.Errorf("faults: dial %s %s: injected connection refused", network, addr)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return t.Wrap(conn), nil
}

// Wrap layers fault injection over an existing connection (e.g. a
// net.Pipe end in tests).
func (t *Transport) Wrap(conn net.Conn) net.Conn {
	return &faultConn{Conn: conn, t: t}
}

// errReset is the reset-style error injected connections fail with.
type errReset struct{ op string }

func (e errReset) Error() string { return "faults: injected connection reset during " + e.op }

// faultConn injects the transport's current profile into one
// connection. Deadlines pass through to the wrapped conn, so a
// blackholed request still ends when the caller's read deadline fires.
type faultConn struct {
	net.Conn
	t *Transport
}

func (c *faultConn) Read(b []byte) (int, error) {
	c.t.mu.Lock()
	reset := c.t.chance(c.t.p.ResetProb)
	corrupt := c.t.chance(c.t.p.CorruptProb)
	delay := c.t.p.ReadLatency
	if reset {
		c.t.stats.Resets++
	}
	c.t.mu.Unlock()
	if reset {
		c.Conn.Close()
		return 0, errReset{"read"}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	n, err := c.Conn.Read(b)
	if corrupt && n > 0 {
		c.t.mu.Lock()
		i := c.t.rng.Intn(n)
		c.t.stats.CorruptedReads++
		c.t.mu.Unlock()
		b[i] ^= 0x40
	}
	return n, err
}

func (c *faultConn) Write(b []byte) (int, error) {
	c.t.mu.Lock()
	reset := c.t.chance(c.t.p.ResetProb)
	drop := c.t.p.DropWrites
	delay := c.t.p.WriteLatency
	if reset {
		c.t.stats.Resets++
	}
	if drop && !reset {
		c.t.stats.DroppedWrites++
	}
	c.t.mu.Unlock()
	if reset {
		c.Conn.Close()
		return 0, errReset{"write"}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return len(b), nil
	}
	return c.Conn.Write(b)
}
