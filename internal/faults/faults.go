// Package faults provides a fault-injecting network transport for
// exercising the DCM↔BMC control plane under degraded conditions:
// connect refusals, added latency, blackholed writes (a peer that
// accepts TCP but never answers), connection resets, and corrupted
// bytes. All probabilistic faults draw from a seeded generator so a
// given seed reproduces the same fault schedule, which keeps the
// fleet-degradation tests deterministic.
//
// A Transport wraps dialed connections in fault-injecting conns. Its
// Profile can be swapped at runtime — SetProfile applies to every
// subsequent operation on both new and already-established
// connections, so a test can partition a node mid-poll and heal it
// later without redialing.
package faults

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Profile configures which faults a Transport injects. The zero value
// is fully transparent.
type Profile struct {
	// Seed keys the fault schedule; transports built from equal
	// profiles replay identical decisions. Zero means seed 1.
	Seed int64

	// DialErrorProb is the probability [0,1] that Dial fails outright
	// with a refused-connection error.
	DialErrorProb float64

	// ConnectLatency is added to every successful Dial.
	ConnectLatency time.Duration

	// ReadLatency and WriteLatency are added before each Read/Write.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// ReadJitter/WriteJitter/ConnectJitter bound an extra uniform
	// latency on top of the fixed values above, so a storm is a
	// distribution rather than a square wave. Draws come from a
	// per-connection splitmix64 stream keyed by the transport seed and
	// the connection's dial ordinal — deterministic per connection no
	// matter how goroutines interleave across connections.
	ReadJitter    time.Duration
	WriteJitter   time.Duration
	ConnectJitter time.Duration

	// FlapPeriod/FlapDuty describe a flapping link: for FlapDuty
	// fraction of every FlapPeriod the connection blackholes writes
	// (the peer never answers, so the caller's read deadline ends the
	// exchange), then heals, repeatedly. The phase offset is drawn from
	// the seed, so a fleet of flappers with distinct seeds
	// desynchronizes realistically.
	FlapPeriod time.Duration
	FlapDuty   float64

	// DropWrites blackholes the connection: writes report success but
	// deliver nothing, so the peer never responds and the caller's
	// read deadline is what ends the exchange.
	DropWrites bool

	// ResetProb is the per-operation probability [0,1] that the
	// connection is torn down with a reset-style error.
	ResetProb float64

	// CorruptProb is the per-read probability [0,1] that one delivered
	// byte is bit-flipped (caught downstream by the IPMI checksum).
	CorruptProb float64
}

// Stats counts the faults a Transport has injected.
type Stats struct {
	Dials          int
	DialsRefused   int
	Resets         int
	DroppedWrites  int
	FlapDrops      int
	CorruptedReads int
}

// Transport dials and wraps connections, injecting the faults its
// current Profile describes. Safe for concurrent use.
type Transport struct {
	mu    sync.Mutex
	rng   *rand.Rand
	seed  int64
	start time.Time
	conns uint64
	p     Profile
	stats Stats
}

// New builds a Transport with profile p.
func New(p Profile) *Transport {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Transport{
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
		start: time.Now(),
		p:     p,
	}
}

// SetProfile replaces the active profile. Existing connections pick up
// the new behaviour on their next operation (the rng keeps its state,
// so healing is Profile{} rather than a reseed).
func (t *Transport) SetProfile(p Profile) {
	t.mu.Lock()
	t.p = p
	t.mu.Unlock()
}

// Profile returns the active profile.
func (t *Transport) Profile() Profile {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.p
}

// Transparent reports whether the profile injects no faults at all —
// only the seed may differ from the zero profile. A transparent
// transport passes traffic through untouched.
func (p Profile) Transparent() bool {
	return p == Profile{Seed: p.Seed}
}

// Stats returns a snapshot of the injected-fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Counter-based jitter streams (the splitmix idiom from
// internal/fleet): each connection's latency jitter is a pure function
// of (transport seed, connection ordinal, draw count), so one
// connection's schedule never depends on how goroutines interleave on
// another.
const splitmixGamma = 0x9e3779b97f4a7c15

// splitmixFin finalizes a SplitMix64 state word into an output word.
func splitmixFin(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// jitterKey derives connection conn's stream state from the transport
// seed; the odd multiplier decorrelates adjacent connections.
func jitterKey(seed int64, conn uint64) uint64 {
	return splitmixFin(uint64(seed)*splitmixGamma + conn*0xd1342543de82ef95 + 1)
}

// jitterFrac returns draw n of the stream in [0, 1).
func jitterFrac(key, n uint64) float64 {
	return float64(splitmixFin(key+n*splitmixGamma)>>11) / float64(1<<53)
}

// jitter draws the next uniform [0, max) sample from the connection's
// stream. Callers hold t.mu (the draw counter is guarded by it).
func (c *faultConn) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	c.draws++
	return time.Duration(jitterFrac(c.key, c.draws) * float64(max))
}

// flappedDown reports whether a flapping profile currently has the
// link in its down phase. Callers hold t.mu.
func (t *Transport) flappedDown() bool {
	if t.p.FlapPeriod <= 0 || t.p.FlapDuty <= 0 {
		return false
	}
	if t.p.FlapDuty >= 1 {
		return true
	}
	period := t.p.FlapPeriod
	off := time.Duration(jitterFrac(jitterKey(t.seed, 0), 0) * float64(period))
	phase := (time.Since(t.start) + off) % period
	return phase < time.Duration(t.p.FlapDuty*float64(period))
}

// chance draws one probabilistic decision from the seeded schedule.
func (t *Transport) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return t.rng.Float64() < p
}

// Dial connects with timeout and wraps the connection. A timeout of
// zero dials without bound.
func (t *Transport) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	t.mu.Lock()
	t.stats.Dials++
	refused := t.chance(t.p.DialErrorProb)
	delay := t.p.ConnectLatency
	if j := t.p.ConnectJitter; j > 0 {
		// Keyed by the dial ordinal: the nth dial's connect jitter is
		// the same whatever else the transport served in between.
		delay += time.Duration(jitterFrac(jitterKey(t.seed, uint64(t.stats.Dials)), 0) * float64(j))
	}
	if refused {
		t.stats.DialsRefused++
	}
	t.mu.Unlock()
	if refused {
		return nil, fmt.Errorf("faults: dial %s %s: injected connection refused", network, addr)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return t.Wrap(conn), nil
}

// Wrap layers fault injection over an existing connection (e.g. a
// net.Pipe end in tests).
func (t *Transport) Wrap(conn net.Conn) net.Conn {
	t.mu.Lock()
	t.conns++
	key := jitterKey(t.seed, t.conns)
	t.mu.Unlock()
	return &faultConn{Conn: conn, t: t, key: key}
}

// errReset is the reset-style error injected connections fail with.
type errReset struct{ op string }

func (e errReset) Error() string { return "faults: injected connection reset during " + e.op }

// faultConn injects the transport's current profile into one
// connection. Deadlines pass through to the wrapped conn, so a
// blackholed request still ends when the caller's read deadline fires.
type faultConn struct {
	net.Conn
	t     *Transport
	key   uint64 // this connection's jitter stream
	draws uint64 // jitter draw counter, guarded by t.mu
}

func (c *faultConn) Read(b []byte) (int, error) {
	c.t.mu.Lock()
	reset := c.t.chance(c.t.p.ResetProb)
	corrupt := c.t.chance(c.t.p.CorruptProb)
	delay := c.t.p.ReadLatency + c.jitter(c.t.p.ReadJitter)
	if reset {
		c.t.stats.Resets++
	}
	c.t.mu.Unlock()
	if reset {
		c.Conn.Close()
		return 0, errReset{"read"}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	n, err := c.Conn.Read(b)
	if corrupt && n > 0 {
		c.t.mu.Lock()
		i := c.t.rng.Intn(n)
		c.t.stats.CorruptedReads++
		c.t.mu.Unlock()
		b[i] ^= 0x40
	}
	return n, err
}

func (c *faultConn) Write(b []byte) (int, error) {
	c.t.mu.Lock()
	reset := c.t.chance(c.t.p.ResetProb)
	drop := c.t.p.DropWrites
	if !drop && c.t.flappedDown() {
		drop = true
		if !reset {
			c.t.stats.FlapDrops++
		}
	}
	delay := c.t.p.WriteLatency + c.jitter(c.t.p.WriteJitter)
	if reset {
		c.t.stats.Resets++
	}
	if drop && !reset && c.t.p.DropWrites {
		c.t.stats.DroppedWrites++
	}
	c.t.mu.Unlock()
	if reset {
		c.Conn.Close()
		return 0, errReset{"write"}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return len(b), nil
	}
	return c.Conn.Write(b)
}
