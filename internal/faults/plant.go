// Sensor/actuator fault injection: where faults.Transport degrades the
// wire between DCM and a BMC, FaultyPlant degrades the layer *below*
// the BMC — the power sensor it reads and the P-state actuator it
// drives. The bmc package's defensive control loop (plausibility
// range, stuck-at detection, fail-safe mode) is exercised against this
// wrapper.
package faults

import (
	"math/rand"
	"sync"

	"nodecap/internal/bmc"
)

// PlantProfile configures which sensor/actuator faults a FaultyPlant
// injects. The zero value is fully transparent.
type PlantProfile struct {
	// Seed keys the fault schedule; equal profiles replay identical
	// decisions. Zero means seed 1.
	Seed int64

	// StuckAfterReads freezes the sensor: after that many successful
	// reads every subsequent read repeats the last delivered value.
	// Zero disables.
	StuckAfterReads int

	// DropoutProb is the per-read probability [0,1] that the sensor
	// delivers nothing (PowerSample returns ok=false).
	DropoutProb float64

	// DriftWattsPerRead adds a cumulative bias: each delivered reading
	// carries drift grown by this much per read (calibration walk-off).
	DriftWattsPerRead float64

	// SpikeProb is the per-read probability [0,1] that the reading is
	// replaced by SpikeWatts (an EMI-style outlier).
	SpikeProb  float64
	SpikeWatts float64

	// IgnoreActuations makes SetPState a silent no-op — the firmware
	// commands a transition the silicon never performs.
	IgnoreActuations bool
}

// PlantStats counts the faults a FaultyPlant has injected.
type PlantStats struct {
	Reads             int
	Dropouts          int
	Spikes            int
	StuckReads        int
	IgnoredActuations int
}

// FaultyPlant wraps a bmc.Plant, injecting the sensor/actuator faults
// its current PlantProfile describes. It implements bmc.PowerSampler
// (dropouts) and, when the inner plant reports a floor, forwards
// bmc.FloorReporter. Safe for concurrent use.
type FaultyPlant struct {
	inner bmc.Plant

	mu    sync.Mutex
	rng   *rand.Rand
	p     PlantProfile
	stats PlantStats
	drift float64
	last  float64 // last delivered reading, replayed when stuck
	have  bool
}

// NewPlant wraps inner with profile p.
func NewPlant(inner bmc.Plant, p PlantProfile) *FaultyPlant {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultyPlant{inner: inner, rng: rand.New(rand.NewSource(seed)), p: p}
}

// SetPlantProfile replaces the active profile; the next read uses it.
// Healing is PlantProfile{} — the rng and stuck/drift state persist so
// the schedule stays deterministic across a mid-test heal.
func (f *FaultyPlant) SetPlantProfile(p PlantProfile) {
	f.mu.Lock()
	f.p = p
	f.mu.Unlock()
}

// PlantProfile returns the active profile.
func (f *FaultyPlant) PlantProfile() PlantProfile {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.p
}

// Transparent reports whether the profile injects no faults at all —
// only the seed may differ from the zero profile. A transparent plant
// behaves exactly like its inner plant, so invariant checkers can
// hold it to the clean-plant contract.
func (p PlantProfile) Transparent() bool {
	return p == PlantProfile{Seed: p.Seed}
}

// PlantStats returns a snapshot of the injected-fault counters.
func (f *FaultyPlant) PlantStats() PlantStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// PowerSample reads the (possibly lying) sensor; ok=false is a
// dropout.
func (f *FaultyPlant) PowerSample() (float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Reads++
	if f.p.DropoutProb > 0 && f.rng.Float64() < f.p.DropoutProb {
		f.stats.Dropouts++
		return f.last, false
	}
	if f.p.StuckAfterReads > 0 && f.have && f.stats.Reads > f.p.StuckAfterReads {
		f.stats.StuckReads++
		return f.last, true
	}
	w := f.inner.PowerWatts()
	if f.p.SpikeProb > 0 && f.rng.Float64() < f.p.SpikeProb {
		f.stats.Spikes++
		w = f.p.SpikeWatts
	}
	f.drift += f.p.DriftWattsPerRead
	w += f.drift
	f.last = w
	f.have = true
	return w, true
}

// PowerWatts serves plain consumers: the last delivered value stands
// in during a dropout.
func (f *FaultyPlant) PowerWatts() float64 {
	w, ok := f.PowerSample()
	if !ok {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.last
	}
	return w
}

func (f *FaultyPlant) PStateIndex() int { return f.inner.PStateIndex() }
func (f *FaultyPlant) NumPStates() int  { return f.inner.NumPStates() }

// SetPState forwards the actuation unless the profile swallows it.
func (f *FaultyPlant) SetPState(i int) {
	f.mu.Lock()
	ignore := f.p.IgnoreActuations
	if ignore {
		f.stats.IgnoredActuations++
	}
	f.mu.Unlock()
	if !ignore {
		f.inner.SetPState(i)
	}
}

func (f *FaultyPlant) GatingLevel() int     { return f.inner.GatingLevel() }
func (f *FaultyPlant) MaxGatingLevel() int  { return f.inner.MaxGatingLevel() }
func (f *FaultyPlant) SetGatingLevel(l int) { f.inner.SetGatingLevel(l) }

// CapFloorWatts forwards the inner plant's floor; 0 (unknown) when the
// inner plant does not report one.
func (f *FaultyPlant) CapFloorWatts() float64 {
	if fr, ok := f.inner.(bmc.FloorReporter); ok {
		return fr.CapFloorWatts()
	}
	return 0
}
