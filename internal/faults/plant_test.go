package faults

import (
	"testing"

	"nodecap/internal/bmc"
)

// stubPlant is a fixed-power bmc.Plant whose actuations are recorded.
type stubPlant struct {
	watts  float64
	pstate int
	sets   int
}

func (p *stubPlant) PowerWatts() float64 { return p.watts }
func (p *stubPlant) PStateIndex() int    { return p.pstate }
func (p *stubPlant) NumPStates() int     { return 16 }
func (p *stubPlant) SetPState(i int) {
	if i < 0 {
		i = 0
	}
	if i > 15 {
		i = 15
	}
	p.pstate = i
	p.sets++
}
func (p *stubPlant) GatingLevel() int     { return 0 }
func (p *stubPlant) MaxGatingLevel() int  { return 8 }
func (p *stubPlant) SetGatingLevel(l int) {}

// flooredStub additionally reports a platform floor.
type flooredStub struct{ stubPlant }

func (p *flooredStub) CapFloorWatts() float64 { return 124 }

var _ bmc.Plant = (*FaultyPlant)(nil)
var _ bmc.PowerSampler = (*FaultyPlant)(nil)
var _ bmc.FloorReporter = (*FaultyPlant)(nil)

func sample(f *FaultyPlant, n int) (delivered []float64, dropouts int) {
	for i := 0; i < n; i++ {
		if w, ok := f.PowerSample(); ok {
			delivered = append(delivered, w)
		} else {
			dropouts++
		}
	}
	return delivered, dropouts
}

func TestTransparentByDefault(t *testing.T) {
	inner := &stubPlant{watts: 150}
	f := NewPlant(inner, PlantProfile{})
	got, drops := sample(f, 50)
	if drops != 0 {
		t.Errorf("zero profile dropped %d reads", drops)
	}
	for _, w := range got {
		if w != 150 {
			t.Fatalf("zero profile altered reading: %v", w)
		}
	}
	f.SetPState(7)
	if inner.pstate != 7 || inner.sets != 1 {
		t.Errorf("actuation not forwarded: pstate=%d sets=%d", inner.pstate, inner.sets)
	}
	if st := f.PlantStats(); st.Reads != 50 || st.Dropouts+st.Spikes+st.StuckReads+st.IgnoredActuations != 0 {
		t.Errorf("stats %+v for a transparent plant", st)
	}
}

func TestDeterministicPlantSchedule(t *testing.T) {
	prof := PlantProfile{Seed: 42, DropoutProb: 0.3, SpikeProb: 0.1, SpikeWatts: 900}
	mk := func() ([]float64, []bool) {
		f := NewPlant(&stubPlant{watts: 150}, prof)
		var ws []float64
		var oks []bool
		for i := 0; i < 200; i++ {
			w, ok := f.PowerSample()
			ws = append(ws, w)
			oks = append(oks, ok)
		}
		return ws, oks
	}
	w1, ok1 := mk()
	w2, ok2 := mk()
	for i := range w1 {
		if w1[i] != w2[i] || ok1[i] != ok2[i] {
			t.Fatalf("schedules diverge at read %d: (%v,%v) vs (%v,%v)", i, w1[i], ok1[i], w2[i], ok2[i])
		}
	}
	// A different seed yields a different schedule.
	prof.Seed = 43
	w3, ok3 := mk()
	same := true
	for i := range w1 {
		if w1[i] != w3[i] || ok1[i] != ok3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

func TestStuckSensorRepeatsLastDelivered(t *testing.T) {
	inner := &stubPlant{watts: 150}
	f := NewPlant(inner, PlantProfile{StuckAfterReads: 3})
	got, _ := sample(f, 3)
	frozen := got[len(got)-1]
	inner.watts = 130 // real draw changes; the stuck sensor must not see it
	got, _ = sample(f, 20)
	for _, w := range got {
		if w != frozen {
			t.Fatalf("stuck sensor delivered %v, want frozen %v", w, frozen)
		}
	}
	if st := f.PlantStats(); st.StuckReads != 20 {
		t.Errorf("StuckReads = %d, want 20", st.StuckReads)
	}
}

func TestDropoutsCountedAndBounded(t *testing.T) {
	f := NewPlant(&stubPlant{watts: 150}, PlantProfile{Seed: 7, DropoutProb: 0.5})
	_, drops := sample(f, 1000)
	st := f.PlantStats()
	if st.Dropouts != drops {
		t.Errorf("Dropouts = %d, observed %d", st.Dropouts, drops)
	}
	if drops < 350 || drops > 650 {
		t.Errorf("%d/1000 dropouts at p=0.5 — schedule implausible", drops)
	}
	// PowerWatts degrades gracefully: a dropout replays the last value.
	if w := f.PowerWatts(); w != 150 {
		t.Errorf("PowerWatts during dropouts = %v", w)
	}
}

func TestSpikesReplaceReading(t *testing.T) {
	f := NewPlant(&stubPlant{watts: 150}, PlantProfile{Seed: 3, SpikeProb: 0.2, SpikeWatts: 900})
	got, _ := sample(f, 500)
	spikes := 0
	for _, w := range got {
		switch w {
		case 900:
			spikes++
		case 150:
		default:
			t.Fatalf("unexpected reading %v", w)
		}
	}
	if st := f.PlantStats(); st.Spikes != spikes || spikes == 0 {
		t.Errorf("Spikes = %d, observed %d", st.Spikes, spikes)
	}
}

func TestDriftAccumulates(t *testing.T) {
	f := NewPlant(&stubPlant{watts: 150}, PlantProfile{DriftWattsPerRead: 0.5})
	got, _ := sample(f, 4)
	want := []float64{150.5, 151, 151.5, 152}
	for i, w := range got {
		if w != want[i] {
			t.Fatalf("read %d = %v, want %v", i, w, want[i])
		}
	}
}

func TestIgnoredActuations(t *testing.T) {
	inner := &stubPlant{watts: 150}
	f := NewPlant(inner, PlantProfile{IgnoreActuations: true})
	f.SetPState(9)
	f.SetPState(12)
	if inner.sets != 0 {
		t.Errorf("inner saw %d actuations through an ignoring profile", inner.sets)
	}
	if st := f.PlantStats(); st.IgnoredActuations != 2 {
		t.Errorf("IgnoredActuations = %d, want 2", st.IgnoredActuations)
	}
	// Healing restores the actuator.
	f.SetPlantProfile(PlantProfile{})
	f.SetPState(5)
	if inner.pstate != 5 {
		t.Errorf("actuator still dead after heal: pstate=%d", inner.pstate)
	}
}

func TestHealRestoresCleanReadings(t *testing.T) {
	f := NewPlant(&stubPlant{watts: 150}, PlantProfile{Seed: 5, DropoutProb: 1})
	_, drops := sample(f, 10)
	if drops != 10 {
		t.Fatalf("expected 10 dropouts, got %d", drops)
	}
	f.SetPlantProfile(PlantProfile{})
	got, drops := sample(f, 10)
	if drops != 0 || len(got) != 10 {
		t.Fatalf("healed sensor still dropping: %d dropouts", drops)
	}
	for _, w := range got {
		if w != 150 {
			t.Fatalf("healed sensor delivered %v", w)
		}
	}
}

func TestFloorForwarding(t *testing.T) {
	if got := NewPlant(&stubPlant{}, PlantProfile{}).CapFloorWatts(); got != 0 {
		t.Errorf("floor %v for a floorless inner plant, want 0 (unknown)", got)
	}
	if got := NewPlant(&flooredStub{}, PlantProfile{}).CapFloorWatts(); got != 124 {
		t.Errorf("floor %v, want 124 forwarded from inner plant", got)
	}
}

func TestFaultyPlantDrivesBMCIntoFailSafe(t *testing.T) {
	// End-to-end across the two packages: a FaultyPlant with a fully
	// dead sensor must push the defensive controller into fail-safe.
	inner := &stubPlant{watts: 150}
	f := NewPlant(inner, PlantProfile{})
	b := bmc.New(bmc.FailSafeConfig(), f)
	b.SetPolicy(bmc.Policy{Enabled: true, CapWatts: 140})
	for i := 0; i < 20; i++ {
		b.Tick()
	}
	f.SetPlantProfile(PlantProfile{DropoutProb: 1})
	for i := 0; i < 20; i++ {
		b.Tick()
	}
	if !b.FailSafe() {
		t.Fatal("dead sensor never tripped the controller's fail-safe")
	}
	if inner.pstate != inner.NumPStates()-1 {
		t.Errorf("fail-safe holds P%d, want slowest", inner.pstate)
	}
}
