package faults

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 1024)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func roundTrip(t *testing.T, conn net.Conn, msg []byte, timeout time.Duration) ([]byte, error) {
	t.Helper()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(msg); err != nil {
		return nil, err
	}
	buf := make([]byte, len(msg))
	n, err := conn.Read(buf)
	return buf[:n], err
}

func TestTransparentProfile(t *testing.T) {
	addr := echoServer(t)
	tr := New(Profile{})
	conn, err := tr.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := roundTrip(t, conn, []byte("hello"), time.Second)
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("round trip = %q, %v", got, err)
	}
}

func TestDialRefused(t *testing.T) {
	addr := echoServer(t)
	tr := New(Profile{DialErrorProb: 1})
	if _, err := tr.Dial("tcp", addr, time.Second); err == nil {
		t.Fatal("injected dial refusal did not error")
	}
	if s := tr.Stats(); s.DialsRefused != 1 {
		t.Errorf("stats = %+v, want 1 refused dial", s)
	}
}

func TestDropWritesBlackholesUntilDeadline(t *testing.T) {
	addr := echoServer(t)
	tr := New(Profile{DropWrites: true})
	conn, err := tr.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_, err = roundTrip(t, conn, []byte("ping"), 100*time.Millisecond)
	if err == nil {
		t.Fatal("blackholed write still produced a response")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline did not bound the blackholed read: %v", elapsed)
	}
	if s := tr.Stats(); s.DroppedWrites == 0 {
		t.Errorf("stats = %+v, want dropped writes", s)
	}
}

func TestHealRestoresService(t *testing.T) {
	addr := echoServer(t)
	tr := New(Profile{DropWrites: true})
	conn, err := tr.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, []byte("ping"), 50*time.Millisecond); err == nil {
		t.Fatal("blackhole inactive")
	}
	tr.SetProfile(Profile{}) // heal without redialing
	got, err := roundTrip(t, conn, []byte("pong"), time.Second)
	if err != nil || !bytes.Equal(got, []byte("pong")) {
		t.Fatalf("healed round trip = %q, %v", got, err)
	}
}

func TestResetTearsDownConn(t *testing.T) {
	addr := echoServer(t)
	tr := New(Profile{ResetProb: 1})
	conn, err := tr.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write on resetting transport succeeded")
	}
	if s := tr.Stats(); s.Resets != 1 {
		t.Errorf("stats = %+v, want 1 reset", s)
	}
}

func TestCorruptFlipsAByte(t *testing.T) {
	addr := echoServer(t)
	tr := New(Profile{CorruptProb: 1})
	conn, err := tr.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("checksummed-frame")
	got, err := roundTrip(t, conn, msg, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Error("corrupting read delivered pristine bytes")
	}
	if s := tr.Stats(); s.CorruptedReads == 0 {
		t.Errorf("stats = %+v, want corrupted reads", s)
	}
}

// TestDeterministicSchedule: two transports with the same seed inject
// the same fault sequence.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		tr := New(Profile{Seed: seed, DialErrorProb: 0.5})
		out := make([]bool, 32)
		for i := range out {
			out[i] = tr.chance(0.5)
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a, b)
		}
	}
	c := schedule(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestLatencyIsAdded(t *testing.T) {
	addr := echoServer(t)
	tr := New(Profile{WriteLatency: 30 * time.Millisecond, ReadLatency: 30 * time.Millisecond})
	conn, err := tr.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := roundTrip(t, conn, []byte("slow"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("round trip took %v, want >= 60ms of injected latency", elapsed)
	}
}
