package faults

import (
	"testing"
	"time"
)

// TestJitterStreamDeterministic: a connection's jitter schedule is a
// pure function of (seed, connection ordinal, draw count) — the
// property that makes storm replays identical run-to-run.
func TestJitterStreamDeterministic(t *testing.T) {
	k1 := jitterKey(42, 1)
	k2 := jitterKey(42, 1)
	if k1 != k2 {
		t.Fatalf("jitterKey not deterministic: %x vs %x", k1, k2)
	}
	for n := uint64(0); n < 100; n++ {
		if a, b := jitterFrac(k1, n), jitterFrac(k2, n); a != b {
			t.Fatalf("draw %d differs: %v vs %v", n, a, b)
		}
	}
	if jitterKey(42, 1) == jitterKey(42, 2) || jitterKey(42, 1) == jitterKey(43, 1) {
		t.Error("adjacent streams collide")
	}
}

// TestJitterFracRange: draws are uniform-ish in [0, 1) — never out of
// range, and spread across the interval rather than clumped.
func TestJitterFracRange(t *testing.T) {
	key := jitterKey(7, 3)
	lo, hi := 1.0, 0.0
	for n := uint64(0); n < 4096; n++ {
		v := jitterFrac(key, n)
		if v < 0 || v >= 1 {
			t.Fatalf("draw %d = %v out of [0,1)", n, v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > 0.05 || hi < 0.95 {
		t.Errorf("4096 draws spanned [%v, %v], want near-full coverage of [0,1)", lo, hi)
	}
}

// TestJitteredLatencyIsAdded: ReadJitter stretches a round trip beyond
// the fixed floor, and the jittered profile is not transparent.
func TestJitteredLatencyIsAdded(t *testing.T) {
	p := Profile{Seed: 9, ReadLatency: 10 * time.Millisecond, ReadJitter: 20 * time.Millisecond}
	if p.Transparent() {
		t.Fatal("jittered profile reported transparent")
	}
	addr := echoServer(t)
	tr := New(p)
	conn, err := tr.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := roundTrip(t, conn, []byte("ping"), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("round trip took %v, want at least the 10ms latency floor", elapsed)
	}
}

// TestFlapProfileDropsAndHeals: a flapping profile with full duty
// blackholes writes like DropWrites; duty 0 passes traffic untouched.
func TestFlapProfileDropsAndHeals(t *testing.T) {
	addr := echoServer(t)
	tr := New(Profile{Seed: 5, FlapPeriod: time.Hour, FlapDuty: 1})
	conn, err := tr.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(t, conn, []byte("ping"), 100*time.Millisecond); err == nil {
		t.Fatal("flapped-down link still answered")
	}
	if tr.Stats().FlapDrops == 0 {
		t.Error("flap drop not counted")
	}

	tr.SetProfile(Profile{Seed: 5}) // heal
	if got, err := roundTrip(t, conn, []byte("pong"), time.Second); err != nil || string(got) != "pong" {
		t.Fatalf("healed link round trip = %q, %v", got, err)
	}
}
