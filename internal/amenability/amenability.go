// Package amenability implements the final item of the paper's future
// work, the one its conclusion calls most important: "develop a
// methodology for characterizing applications with regard to their
// amenability to power capped execution".
//
// The methodology has two parts, both built from short instrumented
// runs rather than full cap sweeps:
//
//  1. Platform calibration (once per platform): for each candidate cap,
//     observe the operating point the capping firmware settles at —
//     effective frequency and gating depth. Any steady load works; the
//     calibration is a property of the platform and controller, not of
//     the application.
//
//  2. Application profiling (once per application): an uncapped run
//     yields the busy/memory-stall split; two forced-gating runs at the
//     same frequency yield the application's sensitivity to the
//     sub-DVFS techniques (cache/TLB way gating, then memory gating).
//     Streaming codes like SIRE/RSM show ratios near 1 for way gating;
//     cache-resident codes like Stereo Matching show large ones — the
//     paper's central contrast, reduced to two numbers.
//
// PredictSlowdown combines the two: DVFS stretches only the busy
// fraction (memory time is frequency-invariant), and the gating ratio
// multiplies in once the calibration says the cap pushes the platform
// into the ladder. AmenableCap then answers the fielded-systems
// question directly: the lowest cap whose predicted slowdown is
// tolerable.
package amenability

import (
	"fmt"
	"sort"

	"nodecap/internal/machine"
	"nodecap/internal/pool"
	"nodecap/internal/simtime"
)

// AppProfile characterizes one application.
type AppProfile struct {
	Name string
	// BusyFraction and MemStallFraction split uncapped execution time
	// into frequency-scalable and frequency-invariant parts.
	BusyFraction     float64
	MemStallFraction float64
	BaselineTime     simtime.Duration
	// WayGatingRatio is t(way-gated)/t(baseline) at full frequency:
	// sensitivity to cache/TLB gating (ladder level 6).
	WayGatingRatio float64
	// DeepGatingRatio is t(fully gated)/t(baseline) at full frequency:
	// sensitivity including memory gating (deepest ladder level).
	DeepGatingRatio float64
}

// ProfileApp measures an application's profile with three short runs,
// executed on up to parallelism workers (<= 0 means one per CPU; the
// runs are independent machines, so the profile is identical at any
// width). mk must build identical workload instances and must be safe
// to call concurrently.
func ProfileApp(name string, mk func() machine.Workload, cfg machine.Config, parallelism int) AppProfile {
	levels := [3]int{0, 6, len(cfg.Ladder) - 1}
	var runs [3]runMetrics
	pool.ForEach(len(levels), parallelism, func(i int) {
		runs[i] = runAt(mk(), cfg, levels[i])
	})
	base, wayGated, deepGated := runs[0], runs[1], runs[2]

	p := AppProfile{
		Name:         name,
		BaselineTime: base.time,
	}
	total := base.busy + base.stall
	if total > 0 {
		p.BusyFraction = float64(base.busy) / float64(total)
		p.MemStallFraction = float64(base.stall) / float64(total)
	}
	if base.time > 0 {
		p.WayGatingRatio = float64(wayGated.time) / float64(base.time)
		p.DeepGatingRatio = float64(deepGated.time) / float64(base.time)
	}
	return p
}

type runMetrics struct {
	time        simtime.Duration
	busy, stall simtime.Duration
}

// runAt executes the workload with the gating ladder pinned at level
// (0 = baseline) and no cap, at full frequency.
func runAt(w machine.Workload, cfg machine.Config, level int) runMetrics {
	m := machine.New(cfg)
	if level > 0 {
		m.ForceGatingLevel(level)
	}
	res := m.RunWorkload(w)
	return runMetrics{
		time:  res.ExecTime,
		busy:  m.Core().BusyTime(),
		stall: m.Core().StallTime(),
	}
}

// CalPoint is one platform operating point: what the firmware settles
// at when the given cap is enforced against a steady load.
type CalPoint struct {
	CapWatts    float64
	FreqMHz     float64
	GatingLevel int
}

// Calibration is the platform's cap-to-operating-point map.
type Calibration struct {
	BaseFreqMHz float64
	MaxGating   int
	Points      []CalPoint // sorted by descending cap
}

// calibrationLoad is a steady mixed load for platform calibration.
type calibrationLoad struct{ iters int }

func (c *calibrationLoad) Name() string   { return "calibration" }
func (c *calibrationLoad) CodePages() int { return 16 }
func (c *calibrationLoad) Run(m *machine.Machine) {
	base := m.Alloc(32 << 20)
	elems := (32 << 20) / 8
	pos := 0
	for i := 0; i < c.iters; i++ {
		m.Compute(24, 20)
		m.Load(base + uint64(pos)*8)
		pos += 97 // mixed locality
		if pos >= elems {
			pos -= elems
		}
	}
}

// Calibrate maps each cap to the platform's settled operating point.
// The caps are measured on up to parallelism workers (<= 0 means one
// per CPU); each cap gets its own machine, and the points land in a
// pre-indexed slice, so the result is identical at any width.
func Calibrate(cfg machine.Config, caps []float64, parallelism int) Calibration {
	cal := Calibration{
		BaseFreqMHz: float64(cfg.PStates.Fastest().FreqMHz),
		MaxGating:   len(cfg.Ladder) - 1,
		Points:      make([]CalPoint, len(caps)),
	}
	pool.ForEach(len(caps), parallelism, func(i int) {
		m := machine.New(cfg)
		m.SetPolicy(caps[i])
		// Two runs: the first converges the controller, the second is
		// the settled observation.
		m.RunWorkload(&calibrationLoad{iters: 400000})
		res := m.RunWorkload(&calibrationLoad{iters: 400000})
		cal.Points[i] = CalPoint{
			CapWatts:    caps[i],
			FreqMHz:     res.AvgFreqMHz,
			GatingLevel: res.FinalGatingLevel,
		}
	})
	sort.Slice(cal.Points, func(i, j int) bool {
		return cal.Points[i].CapWatts > cal.Points[j].CapWatts
	})
	return cal
}

// Point returns the calibration entry for cap.
func (c Calibration) Point(cap float64) (CalPoint, error) {
	for _, p := range c.Points {
		if p.CapWatts == cap {
			return p, nil
		}
	}
	return CalPoint{}, fmt.Errorf("amenability: cap %.0f W not calibrated", cap)
}

// PredictSlowdown estimates the application's time-to-solution factor
// at the given cap from the profile and the platform calibration:
//
//	slowdown = (busy x fBase/fCap + memStall) x gatingFactor
//
// where gatingFactor interpolates the profile's two gating ratios over
// the calibrated gating depth.
func (p AppProfile) PredictSlowdown(cal Calibration, cap float64) (float64, error) {
	pt, err := cal.Point(cap)
	if err != nil {
		return 0, err
	}
	freqFactor := 1.0
	if pt.FreqMHz > 0 {
		freqFactor = p.BusyFraction*(cal.BaseFreqMHz/pt.FreqMHz) + p.MemStallFraction
	}
	return freqFactor * p.gatingFactor(pt.GatingLevel, cal.MaxGating), nil
}

// gatingFactor interpolates the measured sensitivities piecewise-
// linearly in ladder depth: 1 at level 0, WayGatingRatio at the
// way-gating plateau (level 6), DeepGatingRatio at the deepest level.
func (p AppProfile) gatingFactor(level, maxLevel int) float64 {
	const wayLevel = 6
	switch {
	case level <= 0 || p.WayGatingRatio <= 0:
		return 1
	case level <= wayLevel:
		f := float64(level) / wayLevel
		return 1 + f*(p.WayGatingRatio-1)
	case maxLevel <= wayLevel:
		return p.WayGatingRatio
	default:
		f := float64(level-wayLevel) / float64(maxLevel-wayLevel)
		return p.WayGatingRatio + f*(p.DeepGatingRatio-p.WayGatingRatio)
	}
}

// AmenableCap reports the lowest calibrated cap whose predicted
// slowdown stays within tolerable (a factor, e.g. 1.4 for the paper's
// "acceptable increases"). ok is false when no calibrated cap
// qualifies.
func (p AppProfile) AmenableCap(cal Calibration, tolerable float64) (capWatts float64, ok bool) {
	for _, pt := range cal.Points { // descending caps
		s, err := p.PredictSlowdown(cal, pt.CapWatts)
		if err != nil {
			continue
		}
		if s <= tolerable {
			capWatts, ok = pt.CapWatts, true
		}
	}
	return capWatts, ok
}

// Score is a single scalar for ranking applications: the predicted
// slowdown at the deepest calibrated cap (lower = more amenable, the
// paper's SIRE/RSM < Stereo Matching ordering).
func (p AppProfile) Score(cal Calibration) float64 {
	if len(cal.Points) == 0 {
		return 0
	}
	worst := cal.Points[len(cal.Points)-1]
	s, err := p.PredictSlowdown(cal, worst.CapWatts)
	if err != nil {
		return 0
	}
	return s
}
