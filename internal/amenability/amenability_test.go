package amenability

import (
	"testing"

	"nodecap/internal/machine"
	"nodecap/internal/workloads/sar"
	"nodecap/internal/workloads/stereo"
)

func stereoMk() func() machine.Workload {
	cfg := stereo.SmallConfig()
	cfg.Width, cfg.Height = 416, 416
	cfg.Sweeps = 1
	return func() machine.Workload { return stereo.New(cfg) }
}

func sarMk() func() machine.Workload {
	cfg := sar.SmallConfig()
	cfg.Apertures = 96
	cfg.SamplesPerAperture = 8192
	return func() machine.Workload { return sar.New(cfg) }
}

func TestProfilesCaptureThePaperContrast(t *testing.T) {
	cfg := machine.Romley()
	st := ProfileApp("stereo", stereoMk(), cfg, 0)
	sa := ProfileApp("sar", sarMk(), cfg, 0)

	// SAR streams: more memory-stall time than the cache-resident
	// stereo matcher.
	if sa.MemStallFraction <= st.MemStallFraction {
		t.Errorf("SAR mem-stall %.2f not above stereo %.2f",
			sa.MemStallFraction, st.MemStallFraction)
	}
	// Stereo is far more sensitive to way gating.
	if st.WayGatingRatio <= sa.WayGatingRatio {
		t.Errorf("stereo way-gating ratio %.2f not above SAR %.2f",
			st.WayGatingRatio, sa.WayGatingRatio)
	}
	// Both suffer badly from deep (memory) gating.
	if st.DeepGatingRatio < 3 || sa.DeepGatingRatio < 3 {
		t.Errorf("deep gating ratios too small: stereo %.1f, SAR %.1f",
			st.DeepGatingRatio, sa.DeepGatingRatio)
	}
	// Fractions are a partition of time.
	for _, p := range []AppProfile{st, sa} {
		if s := p.BusyFraction + p.MemStallFraction; s < 0.99 || s > 1.01 {
			t.Errorf("%s fractions sum to %.3f", p.Name, s)
		}
	}
}

func TestCalibrationShape(t *testing.T) {
	cfg := machine.Romley()
	cal := Calibrate(cfg, []float64{150, 130, 120}, 0)
	if len(cal.Points) != 3 {
		t.Fatalf("points = %d", len(cal.Points))
	}
	// Descending caps; frequency non-increasing; gating non-decreasing.
	for i := 1; i < len(cal.Points); i++ {
		if cal.Points[i].CapWatts >= cal.Points[i-1].CapWatts {
			t.Error("caps not descending")
		}
		if cal.Points[i].FreqMHz > cal.Points[i-1].FreqMHz+50 {
			t.Errorf("frequency rose as cap fell: %+v", cal.Points)
		}
		if cal.Points[i].GatingLevel < cal.Points[i-1].GatingLevel {
			t.Errorf("gating relaxed as cap fell: %+v", cal.Points)
		}
	}
	// 150 W: DVFS region; 120 W: deep in the ladder.
	if cal.Points[0].GatingLevel != 0 {
		t.Errorf("150 W gating = %d", cal.Points[0].GatingLevel)
	}
	if cal.Points[2].GatingLevel < cal.MaxGating-1 {
		t.Errorf("120 W gating = %d, want near %d", cal.Points[2].GatingLevel, cal.MaxGating)
	}
}

func TestPredictionMatchesMeasurementShape(t *testing.T) {
	cfg := machine.Romley()
	caps := []float64{150, 140, 130, 120}
	cal := Calibrate(cfg, caps, 0)

	for _, app := range []struct {
		name string
		mk   func() machine.Workload
	}{{"stereo", stereoMk()}, {"sar", sarMk()}} {
		prof := ProfileApp(app.name, app.mk, cfg, 0)
		prev := 0.0
		for _, cap := range caps {
			pred, err := prof.PredictSlowdown(cal, cap)
			if err != nil {
				t.Fatal(err)
			}
			if pred < prev {
				t.Errorf("%s: prediction not monotone at %.0f W", app.name, cap)
			}
			prev = pred

			// Measure the real slowdown.
			m := machine.New(cfg)
			m.SetPolicy(cap)
			res := m.RunWorkload(app.mk())
			measured := res.ExecTime.Seconds() / prof.BaselineTime.Seconds()
			// Within a factor of two at every cap: the methodology is
			// a screening tool, not a cycle-accurate model.
			if pred > measured*2 || pred < measured/2 {
				t.Errorf("%s at %.0f W: predicted %.2fx vs measured %.2fx",
					app.name, cap, pred, measured)
			}
		}
	}
}

func TestAmenabilityOrderingMatchesPaper(t *testing.T) {
	cfg := machine.Romley()
	cal := Calibrate(cfg, []float64{150, 140, 130, 120}, 0)
	st := ProfileApp("stereo", stereoMk(), cfg, 0)
	sa := ProfileApp("sar", sarMk(), cfg, 0)
	// The paper: SIRE/RSM is more amenable to capping than Stereo
	// Matching. Lower score = more amenable.
	if sa.Score(cal) >= st.Score(cal) {
		t.Errorf("ordering lost: SAR score %.2f >= stereo %.2f", sa.Score(cal), st.Score(cal))
	}
}

func TestAmenableCap(t *testing.T) {
	cfg := machine.Romley()
	cal := Calibrate(cfg, []float64{150, 140, 130, 120}, 0)
	sa := ProfileApp("sar", sarMk(), cfg, 0)
	cap, ok := sa.AmenableCap(cal, 1.4)
	if !ok {
		t.Fatal("no amenable cap found for SAR at 1.4x")
	}
	if cap < 120 || cap > 150 {
		t.Errorf("amenable cap = %.0f W", cap)
	}
	// An impossible tolerance finds nothing.
	if _, ok := sa.AmenableCap(cal, 0.5); ok {
		t.Error("0.5x tolerance reported an amenable cap")
	}
}

func TestPointLookupError(t *testing.T) {
	cal := Calibrate(machine.Romley(), []float64{150}, 0)
	p := AppProfile{BusyFraction: 1}
	if _, err := p.PredictSlowdown(cal, 777); err == nil {
		t.Error("uncalibrated cap accepted")
	}
}

func TestGatingFactorInterpolation(t *testing.T) {
	p := AppProfile{WayGatingRatio: 3, DeepGatingRatio: 9}
	cases := []struct {
		level int
		want  float64
	}{
		{0, 1}, {3, 2}, {6, 3}, {9, 9},
	}
	for _, c := range cases {
		if got := p.gatingFactor(c.level, 9); got != c.want {
			t.Errorf("gatingFactor(%d) = %v, want %v", c.level, got, c.want)
		}
	}
}
