package cache

import "testing"

// TestAccessZeroAlloc pins the hot path's allocation budget at zero:
// every simulated memory op scans three cache levels, so a single
// per-access allocation would dominate the simulator's profile. The
// mix covers MRU hits, scan hits, fills, and evictions.
func TestAccessZeroAlloc(t *testing.T) {
	c := New(Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8,
		HitLatencyCycles: 4, WriteBack: true})
	var i uint64
	allocs := testing.AllocsPerRun(20000, func() {
		// Stride over more lines than the cache holds so fills and
		// evictions (incl. dirty write-backs) stay on the path.
		c.Access((i%1024)*64, i%3 == 0)
		c.Access((i%1024)*64, false) // immediate re-touch: MRU hit
		i++
	})
	if allocs != 0 {
		t.Errorf("Cache.Access allocates %.1f times per op, want 0", allocs)
	}
}
