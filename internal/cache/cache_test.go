package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tiny returns a small cache for direct-inspection tests:
// 4 sets x 2 ways x 64 B lines = 512 B.
func tiny() *Cache {
	return New(Config{Name: "T", SizeBytes: 512, LineBytes: 64, Ways: 2, WriteBack: true})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.Sets() != 64 {
		t.Errorf("Sets = %d, want 64", good.Sets())
	}
	bad := []Config{
		{Name: "a", SizeBytes: 0, LineBytes: 64, Ways: 8},
		{Name: "b", SizeBytes: 32 << 10, LineBytes: 48, Ways: 8}, // line not pow2
		{Name: "c", SizeBytes: 33 << 10, LineBytes: 64, Ways: 8}, // not divisible
		{Name: "d", SizeBytes: 24 << 10, LineBytes: 64, Ways: 8}, // sets = 48, not pow2
		{Name: "e", SizeBytes: 32 << 10, LineBytes: 64, Ways: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted, want error", c.Name)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with bad config did not panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 100, LineBytes: 64, Ways: 2})
}

func TestPaperGeometries(t *testing.T) {
	// The four caches of the E5-2680 from Section III of the paper.
	for _, cfg := range []Config{
		{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8},
		{Name: "L3", SizeBytes: 20 << 20, LineBytes: 64, Ways: 20},
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := tiny()
	if r := c.Access(0x1000, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Error("second access missed")
	}
	if r := c.Access(0x1038, false); !r.Hit { // same 64 B line
		t.Error("same-line access missed")
	}
	if r := c.Access(0x1040, false); r.Hit { // next line
		t.Error("next-line access hit")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny() // 2-way: three distinct tags in one set evict the LRU one
	// Set stride is 4 sets * 64 B = 256 B.
	a, b, d := uint64(0x0000), uint64(0x0100), uint64(0x0200) // same set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU, b is LRU
	c.Access(d, false) // evicts b
	if !c.Contains(a) {
		t.Error("a evicted, want b")
	}
	if c.Contains(b) {
		t.Error("b still resident")
	}
	if !c.Contains(d) {
		t.Error("d not resident")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := tiny()
	c.Access(0x0000, true)  // dirty
	c.Access(0x0100, false) // clean
	r := c.Access(0x0200, false)
	// LRU victim is 0x0000 (dirty) -> must report a write-back.
	if !r.WritebackValid || r.WritebackAddr != 0x0000 {
		t.Errorf("writeback = %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := tiny()
	c.Access(0x0000, false)
	c.Access(0x0100, false)
	r := c.Access(0x0200, false)
	if r.WritebackValid {
		t.Errorf("clean eviction produced writeback %+v", r)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := New(Config{Name: "WT", SizeBytes: 512, LineBytes: 64, Ways: 2, WriteBack: false})
	if r := c.Access(0x0000, true); r.Hit {
		t.Error("cold write hit")
	}
	if c.Contains(0x0000) {
		t.Error("write-miss allocated in no-allocate cache")
	}
	c.Access(0x0000, false) // read fill
	if !c.Contains(0x0000) {
		t.Error("read did not allocate")
	}
	if r := c.Access(0x0000, true); !r.Hit {
		t.Error("write to resident line missed")
	}
}

func TestWayGatingFlushesAndShrinks(t *testing.T) {
	c := tiny()
	c.Access(0x0000, true)  // way 0, dirty
	c.Access(0x0100, false) // way 1, clean
	dirty := c.SetActiveWays(1)
	if c.ActiveWays() != 1 {
		t.Fatalf("ActiveWays = %d", c.ActiveWays())
	}
	if len(dirty) != 0 {
		// Which way holds which line depends on fill order: way 0 got
		// 0x0000 (dirty). Gating disables way 1 which holds the clean
		// line, so no dirty flushes.
		t.Errorf("dirty flushes = %v", dirty)
	}
	if c.Contains(0x0100) {
		t.Error("line in gated way still resident")
	}
	if !c.Contains(0x0000) {
		t.Error("line in active way lost")
	}
	if c.Stats().GateFlush != 1 {
		t.Errorf("GateFlush = %d", c.Stats().GateFlush)
	}
}

func TestWayGatingReportsDirtyFlushes(t *testing.T) {
	c := tiny()
	c.Access(0x0000, false) // way 0 clean
	c.Access(0x0100, true)  // way 1 dirty
	dirty := c.SetActiveWays(1)
	if len(dirty) != 1 || dirty[0] != 0x0100 {
		t.Errorf("dirty flushes = %#x", dirty)
	}
}

func TestWayGatingClamps(t *testing.T) {
	c := tiny()
	c.SetActiveWays(0)
	if c.ActiveWays() != 1 {
		t.Errorf("ActiveWays after gate-to-0 = %d", c.ActiveWays())
	}
	c.SetActiveWays(99)
	if c.ActiveWays() != 2 {
		t.Errorf("ActiveWays after ungate-to-99 = %d", c.ActiveWays())
	}
}

func TestGatingIncreasesConflictMisses(t *testing.T) {
	// With 2 ways, alternating between two same-set lines hits after
	// warmup. With 1 way they thrash: every access misses.
	run := func(ways int) uint64 {
		c := tiny()
		c.SetActiveWays(ways)
		c.ResetStats()
		for i := 0; i < 100; i++ {
			c.Access(0x0000, false)
			c.Access(0x0100, false)
		}
		return c.Stats().Misses
	}
	full, gated := run(2), run(1)
	if full != 2 {
		t.Errorf("full-ways misses = %d, want 2 (compulsory only)", full)
	}
	if gated != 200 {
		t.Errorf("gated misses = %d, want 200 (thrash)", gated)
	}
}

func TestFlush(t *testing.T) {
	c := tiny()
	c.Access(0x0000, true)
	c.Access(0x0100, false)
	dirty := c.Flush()
	if len(dirty) != 1 || dirty[0] != 0x0000 {
		t.Errorf("Flush dirty = %#x", dirty)
	}
	if c.Contains(0x0000) || c.Contains(0x0100) {
		t.Error("lines survive Flush")
	}
}

func TestInvalidate(t *testing.T) {
	c := tiny()
	c.Access(0x0000, true)
	if !c.Invalidate(0x0000) {
		t.Error("Invalidate of dirty line reported clean")
	}
	if c.Contains(0x0000) {
		t.Error("line survives Invalidate")
	}
	if c.Invalidate(0x4000) {
		t.Error("Invalidate of absent line reported dirty")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := tiny()
	c.Access(0x0000, false)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("stats not reset")
	}
	if r := c.Access(0x0000, false); !r.Hit {
		t.Error("contents lost on ResetStats")
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	c := New(Config{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, WriteBack: true})
	f := func(a uint64) bool {
		line := c.LineAddr(a)
		set, tag := c.indexOf(a)
		return c.reconstruct(set, tag) == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLRUStackProperty checks the inclusion (stack) property of LRU:
// for the same access trace, a cache with more ways never misses more
// than one with fewer ways. This is the invariant that makes
// way-gating monotonically harmful, which the stereo-matching blow-up
// in the paper depends on.
func TestLRUStackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]uint64, 2000)
		for i := range trace {
			trace[i] = uint64(rng.Intn(64)) * 64 // 64 distinct lines
		}
		// Writes must be identical across configurations for the
		// traces to be comparable, so precompute them.
		writes := make([]bool, len(trace))
		for i := range writes {
			writes[i] = rng.Intn(2) == 0
		}
		// Same set count (16), varying ways: misses must be
		// non-decreasing as associativity shrinks.
		var prev uint64
		first := true
		for _, ways := range []int{8, 4, 2, 1} {
			c := New(Config{Name: "P", SizeBytes: 64 * 16 * ways, LineBytes: 64, Ways: ways, WriteBack: true})
			for i, a := range trace {
				c.Access(a, writes[i])
			}
			m := c.Stats().Misses
			if !first && m < prev {
				return false
			}
			prev, first = m, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestHitsPlusMissesEqualsAccesses is a basic accounting invariant
// under arbitrary traces.
func TestHitsPlusMissesEqualsAccesses(t *testing.T) {
	f := func(addrs []uint32, writes []bool) bool {
		c := New(Config{Name: "Q", SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, WriteBack: true})
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUpdate(t *testing.T) {
	c := tiny()
	if c.Update(0x0000) {
		t.Error("Update of absent line reported hit")
	}
	if c.Contains(0x0000) {
		t.Error("Update allocated")
	}
	c.Access(0x0000, false) // clean fill
	if !c.Update(0x0000) {
		t.Error("Update of resident line reported miss")
	}
	// The line is now dirty: evicting it must produce a write-back.
	c.Access(0x0100, false)
	r := c.Access(0x0200, false)
	if !r.WritebackValid || r.WritebackAddr != 0x0000 {
		t.Errorf("eviction after Update: %+v", r)
	}
}

func TestEvictionAddressReported(t *testing.T) {
	c := tiny()
	c.Access(0x0000, false) // clean
	c.Access(0x0100, false)
	r := c.Access(0x0200, false)
	if !r.EvictedValid || r.EvictedAddr != 0x0000 {
		t.Errorf("clean eviction not reported: %+v", r)
	}
	if r.WritebackValid {
		t.Errorf("clean eviction flagged dirty: %+v", r)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty MissRate != 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if got := s.MissRate(); got != 0.3 {
		t.Errorf("MissRate = %v", got)
	}
}

func TestRandomReplacementLosesStackProperty(t *testing.T) {
	// Under LRU, a 2-line cyclic pattern in a 2-way set always hits
	// after warmup; Random replacement sometimes evicts the wrong way
	// and re-misses. This behavioural difference is what the
	// replacement ablation bench measures at scale.
	runPolicy := func(p ReplacementPolicy) uint64 {
		c := New(Config{Name: "R", SizeBytes: 512, LineBytes: 64, Ways: 2,
			WriteBack: true, Replacement: p})
		for i := 0; i < 300; i++ {
			c.Access(0x0000, false)
			c.Access(0x0100, false)
			c.Access(uint64(0x0200+(i%3)*0x100), false) // conflicting churn
		}
		return c.Stats().Misses
	}
	lru, random := runPolicy(LRU), runPolicy(Random)
	if lru == random {
		t.Errorf("LRU (%d) and Random (%d) miss counts identical; policies not distinct", lru, random)
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	run := func() uint64 {
		c := New(Config{Name: "R", SizeBytes: 512, LineBytes: 64, Ways: 2,
			WriteBack: true, Replacement: Random})
		for i := 0; i < 500; i++ {
			c.Access(uint64(i%5)*0x100, false)
		}
		return c.Stats().Misses
	}
	if run() != run() {
		t.Error("Random replacement not deterministic across identical runs")
	}
}

// TestDirtyDataNeverSilentlyDropped: every line ever stored must leave
// the cache through an observable dirty channel — an eviction
// write-back, a gating flush, or a final Flush — at least once. This
// is the property the hierarchy's write-back plumbing depends on: a
// violation means modified data vanished.
func TestDirtyDataNeverSilentlyDropped(t *testing.T) {
	f := func(ops []uint16, gateAt uint8) bool {
		c := New(Config{Name: "P", SizeBytes: 2 << 10, LineBytes: 64, Ways: 4, WriteBack: true})
		stored := map[uint64]bool{}
		emitted := map[uint64]bool{}
		note := func(r AccessResult) {
			if r.WritebackValid {
				emitted[r.WritebackAddr] = true
			}
		}
		for i, op := range ops {
			addr := uint64(op%512) * 64 // 512 lines over an 8-set cache
			write := op&0x8000 != 0
			if write {
				stored[addr] = true
			}
			note(c.Access(addr, write))
			if i == int(gateAt) {
				for _, a := range c.SetActiveWays(1 + int(gateAt)%4) {
					emitted[a] = true
				}
			}
		}
		for _, a := range c.Flush() {
			emitted[a] = true
		}
		// Every stored line must have been emitted dirty somewhere.
		// (A stored line later re-read stays dirty in a write-back
		// cache, so reads cannot clean it.)
		for a := range stored {
			if !emitted[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
