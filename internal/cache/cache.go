// Package cache implements a set-associative cache model with true-LRU
// replacement, a write-back/write-allocate policy, and way gating.
//
// Way gating is the mechanism the paper infers for sub-DVFS power
// capping: the platform powers down some ways of a cache, shrinking
// its effective associativity and capacity. SetActiveWays models this,
// flushing (and reporting) the lines held in the disabled ways so that
// the hierarchy can charge write-back traffic for them.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes the geometry and timing of one cache level.
type Config struct {
	Name      string // "L1D", "L2", ... used in error and stats output
	SizeBytes int    // total capacity
	LineBytes int    // line size; power of two
	Ways      int    // associativity
	// HitLatencyCycles is the load-to-use latency of a hit, in core
	// cycles. The hierarchy converts it to time at the current
	// frequency.
	HitLatencyCycles int
	// WriteBack selects write-back/write-allocate (true) or
	// write-through/no-allocate (false) behaviour.
	WriteBack bool
	// Replacement selects the victim policy; the zero value is LRU.
	Replacement ReplacementPolicy
}

// ReplacementPolicy selects how a fill chooses its victim way.
type ReplacementPolicy int

const (
	// LRU evicts the least-recently-used line (true LRU). Its stack
	// property makes way gating monotonically harmful, which the
	// study's stereo-matching miss cliff depends on; the ablation
	// bench compares it against Random.
	LRU ReplacementPolicy = iota
	// Random evicts a pseudo-random way (deterministic xorshift).
	Random
)

// Sets reports the number of sets implied by the geometry.
func (c Config) Sets() int {
	return c.SizeBytes / (c.LineBytes * c.Ways)
}

// Validate reports a descriptive error when the geometry is not
// realizable (non-power-of-two line or set count, sizes that do not
// divide evenly, or non-positive fields).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*ways %d",
			c.Name, c.SizeBytes, c.LineBytes*c.Ways)
	}
	if s := c.Sets(); bits.OnesCount(uint(s)) != 1 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, s)
	}
	return nil
}

// Stats accumulates access counts for one cache.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	ReadMisses uint64
	Writebacks uint64 // dirty lines pushed to the next level
	Fills      uint64 // lines allocated
	GateFlush  uint64 // lines flushed by way gating
}

// MissRate reports misses per access, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit bool
	// WritebackAddr is the address of a dirty line evicted to make
	// room for the fill; valid only when WritebackValid is set.
	WritebackAddr  uint64
	WritebackValid bool
	// EvictedAddr is the address of any valid line (clean or dirty)
	// replaced by the fill; valid only when EvictedValid is set. An
	// inclusive outer level uses it to back-invalidate inner levels.
	EvictedAddr  uint64
	EvictedValid bool
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lastUse orders lines for LRU. A per-cache monotonic counter is
	// cheaper than list manipulation and exact for LRU purposes.
	lastUse uint64
}

// Cache is one level of a memory hierarchy. It tracks only tags and
// metadata; data contents live in the workload's real Go memory.
type Cache struct {
	cfg        Config
	sets       [][]line
	setMask    uint64
	lineShift  uint
	activeWays int
	useClock   uint64
	rng        uint64 // Random replacement state
	stats      Stats
}

// New builds a cache from cfg, panicking on invalid geometry: every
// configuration in this codebase is static, so a bad one is a
// programming error, not a runtime condition.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	c := &Cache{
		cfg:        cfg,
		sets:       make([][]line, nsets),
		setMask:    uint64(nsets - 1),
		lineShift:  uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		activeWays: cfg.Ways,
		rng:        0x243F6A8885A308D3, // fixed seed: deterministic runs
	}
	backing := make([]line, nsets*cfg.Ways)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing cache contents,
// mirroring how PAPI counters are reset between measurement intervals
// while the caches stay warm.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// ActiveWays reports how many ways are currently powered.
func (c *Cache) ActiveWays() int { return c.activeWays }

// indexOf splits an address into set index and tag.
func (c *Cache) indexOf(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.lineShift
	return blk & c.setMask, blk >> uint(bits.Len64(c.setMask))
}

// LineAddr reports the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

// Access performs one read (write=false) or write (write=true) of the
// line containing addr, updating LRU state and statistics. On a miss
// the line is filled (write-allocate) unless the cache is configured
// write-through, in which case write misses do not allocate.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.stats.Accesses++
	c.useClock++
	setIdx, tag := c.indexOf(addr)
	set := c.sets[setIdx][:c.activeWays]

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stats.Hits++
			set[i].lastUse = c.useClock
			if write && c.cfg.WriteBack {
				set[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}

	c.stats.Misses++
	if !write {
		c.stats.ReadMisses++
	}
	if write && !c.cfg.WriteBack {
		// Write-through/no-allocate: the write goes straight down.
		return AccessResult{}
	}

	// Fill: choose an invalid way, else the policy's victim.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		if c.cfg.Replacement == Random {
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 7
			c.rng ^= c.rng << 17
			victim = int(c.rng % uint64(len(set)))
		} else {
			victim = 0
			for i := range set {
				if set[i].lastUse < set[victim].lastUse {
					victim = i
				}
			}
		}
	}
	res := AccessResult{}
	v := &set[victim]
	if v.valid {
		res.EvictedAddr = c.reconstruct(setIdx, v.tag)
		res.EvictedValid = true
		if v.dirty {
			c.stats.Writebacks++
			res.WritebackAddr = res.EvictedAddr
			res.WritebackValid = true
		}
	}
	c.stats.Fills++
	v.valid = true
	v.dirty = write && c.cfg.WriteBack
	v.tag = tag
	v.lastUse = c.useClock
	return res
}

// Update marks the line containing addr dirty if it is resident,
// reporting whether it was. The hierarchy uses it for write-back
// traffic from an inner level: an inclusive outer level normally holds
// the line, and when it does not the write-back is simply forwarded
// downward rather than allocating here.
func (c *Cache) Update(addr uint64) bool {
	setIdx, tag := c.indexOf(addr)
	set := c.sets[setIdx][:c.activeWays]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.useClock++
			set[i].lastUse = c.useClock
			if c.cfg.WriteBack {
				set[i].dirty = true
			}
			return true
		}
	}
	return false
}

// Contains reports whether the line holding addr is resident. It does
// not perturb LRU state or statistics; it exists for tests and for the
// hierarchy's inclusion checks.
func (c *Cache) Contains(addr uint64) bool {
	setIdx, tag := c.indexOf(addr)
	set := c.sets[setIdx][:c.activeWays]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// reconstruct rebuilds a line-aligned address from set index and tag.
func (c *Cache) reconstruct(setIdx, tag uint64) uint64 {
	return (tag<<uint(bits.Len64(c.setMask)) | setIdx) << c.lineShift
}

// SetActiveWays gates the cache down (or back up) to n powered ways,
// clamped to [1, cfg.Ways]. Lines resident in ways being powered off
// are flushed; the addresses of dirty ones are returned so the caller
// can charge write-back traffic. Re-enabling ways returns nil: the
// re-powered ways come up invalid.
func (c *Cache) SetActiveWays(n int) []uint64 {
	if n < 1 {
		n = 1
	}
	if n > c.cfg.Ways {
		n = c.cfg.Ways
	}
	if n >= c.activeWays {
		c.activeWays = n
		return nil
	}
	var dirty []uint64
	for setIdx := range c.sets {
		for w := n; w < c.activeWays; w++ {
			l := &c.sets[setIdx][w]
			if l.valid {
				c.stats.GateFlush++
				if l.dirty {
					dirty = append(dirty, c.reconstruct(uint64(setIdx), l.tag))
				}
				l.valid = false
				l.dirty = false
			}
		}
	}
	c.activeWays = n
	return dirty
}

// Flush invalidates every line, returning the addresses of dirty ones.
func (c *Cache) Flush() []uint64 {
	var dirty []uint64
	for setIdx := range c.sets {
		for w := range c.sets[setIdx] {
			l := &c.sets[setIdx][w]
			if l.valid && l.dirty {
				dirty = append(dirty, c.reconstruct(uint64(setIdx), l.tag))
			}
			l.valid = false
			l.dirty = false
		}
	}
	return dirty
}

// Invalidate drops the line containing addr if resident, reporting
// whether it was dirty. The hierarchy uses it to maintain inclusion
// when an outer level evicts.
func (c *Cache) Invalidate(addr uint64) (wasDirty bool) {
	setIdx, tag := c.indexOf(addr)
	set := c.sets[setIdx] // search gated ways too: they are invalid anyway
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			wasDirty = set[i].dirty
			set[i].valid = false
			set[i].dirty = false
			return wasDirty
		}
	}
	return false
}
