// Package cache implements a set-associative cache model with true-LRU
// replacement, a write-back/write-allocate policy, and way gating.
//
// Way gating is the mechanism the paper infers for sub-DVFS power
// capping: the platform powers down some ways of a cache, shrinking
// its effective associativity and capacity. SetActiveWays models this,
// flushing (and reporting) the lines held in the disabled ways so that
// the hierarchy can charge write-back traffic for them.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes the geometry and timing of one cache level.
type Config struct {
	Name      string // "L1D", "L2", ... used in error and stats output
	SizeBytes int    // total capacity
	LineBytes int    // line size; power of two
	Ways      int    // associativity
	// HitLatencyCycles is the load-to-use latency of a hit, in core
	// cycles. The hierarchy converts it to time at the current
	// frequency.
	HitLatencyCycles int
	// WriteBack selects write-back/write-allocate (true) or
	// write-through/no-allocate (false) behaviour.
	WriteBack bool
	// Replacement selects the victim policy; the zero value is LRU.
	Replacement ReplacementPolicy
}

// ReplacementPolicy selects how a fill chooses its victim way.
type ReplacementPolicy int

const (
	// LRU evicts the least-recently-used line (true LRU). Its stack
	// property makes way gating monotonically harmful, which the
	// study's stereo-matching miss cliff depends on; the ablation
	// bench compares it against Random.
	LRU ReplacementPolicy = iota
	// Random evicts a pseudo-random way (deterministic xorshift).
	Random
)

// Sets reports the number of sets implied by the geometry.
func (c Config) Sets() int {
	return c.SizeBytes / (c.LineBytes * c.Ways)
}

// Validate reports a descriptive error when the geometry is not
// realizable (non-power-of-two line or set count, sizes that do not
// divide evenly, or non-positive fields).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*ways %d",
			c.Name, c.SizeBytes, c.LineBytes*c.Ways)
	}
	if s := c.Sets(); bits.OnesCount(uint(s)) != 1 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, s)
	}
	return nil
}

// Stats accumulates access counts for one cache.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	ReadMisses uint64
	Writebacks uint64 // dirty lines pushed to the next level
	Fills      uint64 // lines allocated
	GateFlush  uint64 // lines flushed by way gating
}

// MissRate reports misses per access, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit bool
	// WritebackAddr is the address of a dirty line evicted to make
	// room for the fill; valid only when WritebackValid is set.
	WritebackAddr  uint64
	WritebackValid bool
	// EvictedAddr is the address of any valid line (clean or dirty)
	// replaced by the fill; valid only when EvictedValid is set. An
	// inclusive outer level uses it to back-invalidate inner levels.
	EvictedAddr  uint64
	EvictedValid bool
}

// Cache is one level of a memory hierarchy. It tracks only tags and
// metadata; data contents live in the workload's real Go memory.
//
// The line state is stored structure-of-arrays, flat and set-major
// (set s owns index range [s*ways, (s+1)*ways)): the hit scan walks a
// packed array of tag words and touches nothing else, so an 8-way set
// costs one host cache line instead of the three an array-of-structs
// layout spreads it over — the difference is the simulator's op
// throughput, since every simulated access scans three cache levels.
//
// tags packs each way's tag and valid bit into one comparable word:
// tag<<1|1 when valid, 0 when invalid, so one load-and-compare decides
// a way. The packing is lossless for any address below 2^63 shifted
// down by at least one line-offset or set-index bit — every geometry
// this simulator builds (the machine lays its regions out below 2^31).
type Cache struct {
	cfg   Config
	tags  []uint64 // tagv per way (tag<<1|1, 0 = invalid)
	use   []uint64 // LRU clocks; a monotonic counter is exact for LRU
	dirty []bool
	// full marks sets whose active ways are all valid: their scans skip
	// first-invalid tracking. A set earns its bit on the first miss that
	// finds no invalid way and loses it whenever a line is dropped
	// (Invalidate, Flush, way gating).
	full       []bool
	setMask    uint64
	lineShift  uint
	tagShift   uint // set-index width; splits a block into set and tag
	ways       int
	activeWays int
	writeback  bool // cfg.WriteBack, hoisted for the access path
	random     bool // cfg.Replacement == Random, hoisted likewise
	// mruIdx/mruBlk remember the last line that hit or filled: the MRU
	// filter in front of the set scan. Stream-dominated workloads (the
	// stride probe, SAR) touch the same line repeatedly, and a
	// repeated-line hit skips the scan entirely. mruIdx is -1 when no
	// resident line is cached.
	mruIdx   int
	mruBlk   uint64
	useClock uint64
	rng      uint64 // Random replacement state
	stats    Stats
}

// New builds a cache from cfg, panicking on invalid geometry: every
// configuration in this codebase is static, so a bad one is a
// programming error, not a runtime condition. The set mask, line
// shift, and tag shift are precomputed here so the per-access path
// never re-derives geometry.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Sets() * cfg.Ways
	return &Cache{
		cfg:        cfg,
		tags:       make([]uint64, n),
		use:        make([]uint64, n),
		dirty:      make([]bool, n),
		full:       make([]bool, cfg.Sets()),
		setMask:    uint64(cfg.Sets() - 1),
		lineShift:  uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		tagShift:   uint(bits.Len64(uint64(cfg.Sets() - 1))),
		ways:       cfg.Ways,
		activeWays: cfg.Ways,
		writeback:  cfg.WriteBack,
		random:     cfg.Replacement == Random,
		mruIdx:     -1,
		rng:        0x243F6A8885A308D3, // fixed seed: deterministic runs
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing cache contents,
// mirroring how PAPI counters are reset between measurement intervals
// while the caches stay warm.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// ActiveWays reports how many ways are currently powered.
func (c *Cache) ActiveWays() int { return c.activeWays }

// indexOf splits an address into set index and tag.
func (c *Cache) indexOf(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.lineShift
	return blk & c.setMask, blk >> c.tagShift
}

// LineAddr reports the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

// Eviction flags reported by AccessPacked.
const (
	// EvictedFlag marks a valid line (clean or dirty) replaced by the
	// fill; its address is the second return value.
	EvictedFlag = 1 << 0
	// WritebackFlag marks the evicted line dirty: the caller owes a
	// write-back of the same address to the next level.
	WritebackFlag = 1 << 1
)

// Access performs one read (write=false) or write (write=true) of the
// line containing addr, updating LRU state and statistics. On a miss
// the line is filled (write-allocate) unless the cache is configured
// write-through, in which case write misses do not allocate.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	hit, ev, flags := c.AccessPacked(addr, write)
	res := AccessResult{Hit: hit}
	if flags&EvictedFlag != 0 {
		res.EvictedAddr, res.EvictedValid = ev, true
		if flags&WritebackFlag != 0 {
			res.WritebackAddr, res.WritebackValid = ev, true
		}
	}
	return res
}

// AccessPacked is Access with the outcome packed into scalar returns
// (hit, evicted-line address, EvictedFlag|WritebackFlag bits). The
// hierarchy scans three levels per simulated memory op, and returning
// a 40-byte AccessResult by value at each level was a measurable slice
// of the op budget; three scalars travel back in registers. The MRU
// filter and the flat scan produce statistics and LRU state identical
// to a plain set scan; only the work to get there differs.
func (c *Cache) AccessPacked(addr uint64, write bool) (hit bool, evictedAddr uint64, evFlags uint32) {
	c.stats.Accesses++
	c.useClock++
	blk := addr >> c.lineShift
	tagv := (blk>>c.tagShift)<<1 | 1
	markDirty := write && c.writeback

	// MRU filter: a repeated-line access skips the set scan.
	if blk == c.mruBlk && c.mruIdx >= 0 {
		if c.tags[c.mruIdx] == tagv {
			c.stats.Hits++
			c.use[c.mruIdx] = c.useClock
			if markDirty {
				c.dirty[c.mruIdx] = true
			}
			return true, 0, 0
		}
	}

	setIdx := blk & c.setMask
	base := int(setIdx) * c.ways
	tags := c.tags[base : base+c.activeWays]
	inv := -1
	if c.full[setIdx] {
		// Steady state: every active way is valid, so the scan is a
		// pure tag compare with no invalid-way bookkeeping.
		for i := range tags {
			if tags[i] == tagv {
				c.stats.Hits++
				c.use[base+i] = c.useClock
				if markDirty {
					c.dirty[base+i] = true
				}
				c.mruBlk, c.mruIdx = blk, base+i
				return true, 0, 0
			}
		}
	} else {
		// Warm-up: one pass decides hit or miss and remembers the first
		// invalid way so the fill below rarely needs a second scan.
		for i := range tags {
			if tags[i] == tagv {
				c.stats.Hits++
				c.use[base+i] = c.useClock
				if markDirty {
					c.dirty[base+i] = true
				}
				c.mruBlk, c.mruIdx = blk, base+i
				return true, 0, 0
			}
			if inv < 0 && tags[i] == 0 {
				inv = i
			}
		}
		if inv < 0 {
			c.full[setIdx] = true
		}
	}

	c.stats.Misses++
	if !write {
		c.stats.ReadMisses++
	}
	if write && !c.writeback {
		// Write-through/no-allocate: the write goes straight down.
		return false, 0, 0
	}

	// Fill: the first invalid way, else the policy's victim.
	victim := inv
	if victim < 0 {
		if c.random {
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 7
			c.rng ^= c.rng << 17
			victim = int(c.rng % uint64(len(tags)))
		} else {
			use := c.use[base : base+c.activeWays]
			victim = 0
			oldest := use[0]
			for i := 1; i < len(use); i++ {
				if use[i] < oldest {
					oldest = use[i]
					victim = i
				}
			}
		}
	}
	vi := base + victim
	if old := c.tags[vi]; old != 0 {
		evictedAddr = c.reconstruct(setIdx, old>>1)
		evFlags = EvictedFlag
		if c.dirty[vi] {
			c.stats.Writebacks++
			evFlags |= WritebackFlag
		}
	}
	c.stats.Fills++
	c.tags[vi] = tagv
	c.dirty[vi] = markDirty
	c.use[vi] = c.useClock
	c.mruBlk, c.mruIdx = blk, vi
	return false, evictedAddr, evFlags
}

// Update marks the line containing addr dirty if it is resident,
// reporting whether it was. The hierarchy uses it for write-back
// traffic from an inner level: an inclusive outer level normally holds
// the line, and when it does not the write-back is simply forwarded
// downward rather than allocating here.
func (c *Cache) Update(addr uint64) bool {
	blk := addr >> c.lineShift
	tagv := (blk>>c.tagShift)<<1 | 1
	base := int(blk&c.setMask) * c.ways
	tags := c.tags[base : base+c.activeWays]
	for i := range tags {
		if tags[i] == tagv {
			c.useClock++
			c.use[base+i] = c.useClock
			if c.cfg.WriteBack {
				c.dirty[base+i] = true
			}
			return true
		}
	}
	return false
}

// Contains reports whether the line holding addr is resident. It does
// not perturb LRU state or statistics; it exists for tests and for the
// hierarchy's inclusion checks.
func (c *Cache) Contains(addr uint64) bool {
	blk := addr >> c.lineShift
	tagv := (blk>>c.tagShift)<<1 | 1
	base := int(blk&c.setMask) * c.ways
	tags := c.tags[base : base+c.activeWays]
	for i := range tags {
		if tags[i] == tagv {
			return true
		}
	}
	return false
}

// reconstruct rebuilds a line-aligned address from set index and tag.
func (c *Cache) reconstruct(setIdx, tag uint64) uint64 {
	return (tag<<c.tagShift | setIdx) << c.lineShift
}

// SetActiveWays gates the cache down (or back up) to n powered ways,
// clamped to [1, cfg.Ways]. Lines resident in ways being powered off
// are flushed; the addresses of dirty ones are returned so the caller
// can charge write-back traffic. Re-enabling ways returns nil: the
// re-powered ways come up invalid.
func (c *Cache) SetActiveWays(n int) []uint64 {
	if n < 1 {
		n = 1
	}
	if n > c.cfg.Ways {
		n = c.cfg.Ways
	}
	if n != c.activeWays {
		// Any associativity change invalidates the full-set bits: gating
		// down drops lines below, and gating up adds empty ways.
		for i := range c.full {
			c.full[i] = false
		}
	}
	if n >= c.activeWays {
		c.activeWays = n
		return nil
	}
	var dirty []uint64
	nsets := len(c.tags) / c.ways
	for setIdx := 0; setIdx < nsets; setIdx++ {
		for w := n; w < c.activeWays; w++ {
			i := setIdx*c.ways + w
			if c.tags[i] != 0 {
				c.stats.GateFlush++
				if c.dirty[i] {
					dirty = append(dirty, c.reconstruct(uint64(setIdx), c.tags[i]>>1))
				}
				c.tags[i] = 0
				c.dirty[i] = false
			}
		}
	}
	c.activeWays = n
	c.mruIdx = -1 // the cached line may just have been gated off
	return dirty
}

// Flush invalidates every line, returning the addresses of dirty ones.
func (c *Cache) Flush() []uint64 {
	var dirty []uint64
	for i := range c.tags {
		if c.tags[i] != 0 && c.dirty[i] {
			dirty = append(dirty, c.reconstruct(uint64(i/c.ways), c.tags[i]>>1))
		}
		c.tags[i] = 0
		c.dirty[i] = false
	}
	for i := range c.full {
		c.full[i] = false
	}
	c.mruIdx = -1
	return dirty
}

// Invalidate drops the line containing addr if resident, reporting
// whether it was dirty. The hierarchy uses it to maintain inclusion
// when an outer level evicts.
func (c *Cache) Invalidate(addr uint64) (wasDirty bool) {
	blk := addr >> c.lineShift
	tagv := (blk>>c.tagShift)<<1 | 1
	base := int(blk&c.setMask) * c.ways
	tags := c.tags[base : base+c.ways] // search gated ways too: they are invalid anyway
	for i := range tags {
		if tags[i] == tagv {
			wasDirty = c.dirty[base+i]
			tags[i] = 0
			c.dirty[base+i] = false
			c.full[blk&c.setMask] = false
			if c.mruIdx == base+i {
				c.mruIdx = -1
			}
			return wasDirty
		}
	}
	return false
}
