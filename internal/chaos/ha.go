// HA drills: the chaos fleet can run the manager as a primary/standby
// pair sharing a lease in the fleet's state dir, with the primary's
// store streaming journal records to the standby's replica over the
// pump-driven replication session. Everything is tick-synchronous —
// the lease clock is derived from the tick counter, the replication
// pump moves at most one batch per tick, and failover is a pure
// function of the event schedule — so HA scenarios replay
// bit-identically like the rest of the harness.
package chaos

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/dcm/store"
)

const (
	// haLeaseTick is how much simulated lease-clock time one control
	// tick represents.
	haLeaseTick = time.Millisecond
	// HALeaseTTLTicks is the lease term in ticks: a primary that
	// misses this many renewals is up for takeover. Exported so tests
	// can reason about failover latency.
	HALeaseTTLTicks = 12
	// haPumpBatch bounds how many replication frames move per tick,
	// so a standby visibly lags a write burst instead of syncing
	// atomically.
	haPumpBatch = 32
)

// haMember is one of the two control-plane processes.
type haMember struct {
	id  string
	dir string

	// mgr and node are set while the member runs a manager: the acting
	// leader, or a deposed duelist that does not yet know it lost.
	mgr  *dcm.Manager
	node *dcm.HANode

	// st and rep are set while the member is a standby replica.
	st  *store.Store
	rep *store.Replica

	// stalled stops the member's lease renewals (a paused leader);
	// dead marks a killed process awaiting EvRevive.
	stalled bool
	dead    bool
}

// haCluster is the pair plus the shared lease and replication session.
type haCluster struct {
	f     *Fleet
	lease *store.LeaseFile
	ttl   time.Duration
	// leaseNS backs the lease clock: tick × haLeaseTick, stored
	// atomically because lease reads happen inside manager calls.
	leaseNS int64

	members   [2]*haMember
	leaderIdx int // -1 while no member leads
	// duelIdx is a deposed ex-leader still actuating on a stale epoch
	// (-1 when none); the fence at the nodes must stop it.
	duelIdx int

	// feed is the primary-side replication session; nil forces a
	// redial (fresh HELLO) on the next pump.
	feed     *store.Feed
	replDown bool
	// pendingTear is the EvReplTear byte seed applied to the standby's
	// journal at its next promotion.
	pendingTear int
}

// leaseNow is the injectable clock for the shared lease: simulated
// lease time, advanced once per tick — never the manager's simClock,
// whose per-read advance would make lease expiry depend on call counts.
func (a *haCluster) leaseNow() time.Time {
	return time.Unix(0, atomic.LoadInt64(&a.leaseNS))
}

// standbyIdx returns the member currently holding a replica, or -1.
func (a *haCluster) standbyIdx() int {
	for i, m := range a.members {
		if i != a.leaderIdx && m.rep != nil && !m.dead {
			return i
		}
	}
	return -1
}

// stop closes whatever each member still has open.
func (a *haCluster) stop() {
	for _, m := range a.members {
		if m.mgr != nil {
			m.mgr.Close()
			m.mgr = nil
		}
		if m.st != nil {
			m.st.Close()
			m.st = nil
		}
	}
}

// setupHA builds the pair: member 0 acquires the lease and leads,
// member 1 opens an empty store and replicates. Each member gets its
// own state dir under the fleet's; the lease lives beside them,
// reachable by both — the shared-filesystem deployment dcmd models.
func (f *Fleet) setupHA() error {
	a := &haCluster{f: f, duelIdx: -1, ttl: HALeaseTTLTicks * haLeaseTick}
	a.lease = &store.LeaseFile{Path: store.LeasePath(f.dir), Clock: a.leaseNow}
	for i := range a.members {
		a.members[i] = &haMember{
			id:  fmt.Sprintf("dcm-%d", i),
			dir: filepath.Join(f.dir, fmt.Sprintf("m%d", i)),
		}
	}

	m0 := a.members[0]
	mgr, err := f.newManagerAt(m0.dir)
	if err != nil {
		return err
	}
	node := &dcm.HANode{ID: m0.id, Lease: a.lease, TTL: a.ttl, Mgr: mgr}
	role, err := node.Start()
	if err != nil {
		mgr.Close()
		return fmt.Errorf("chaos: initial lease acquire: %w", err)
	}
	if role != dcm.RolePrimary {
		mgr.Close()
		return fmt.Errorf("chaos: first member came up %s, want primary", role)
	}
	// The epoch doubles as the replication generation: strictly
	// increasing across leaderships, never reused.
	mgr.Store().SetGen(mgr.Epoch())
	m0.mgr, m0.node = mgr, node
	a.leaderIdx = 0

	m1 := a.members[1]
	st, err := store.Open(m1.dir)
	if err != nil {
		mgr.Close()
		return fmt.Errorf("chaos: opening standby store: %w", err)
	}
	st.SetSync(false)
	m1.st = st
	m1.rep = store.NewReplica(st)

	f.ha = a
	f.mgr = mgr
	return nil
}

// haTick advances the HA machinery one control tick: lease clock,
// leader renewal, replication pump, standby takeover.
func (f *Fleet) haTick(tick int, iv *invariants, v *Verdict) error {
	a := f.ha
	atomic.StoreInt64(&a.leaseNS, int64(tick)*int64(haLeaseTick))

	if a.leaderIdx >= 0 {
		ldr := a.members[a.leaderIdx]
		if !ldr.stalled && ldr.node != nil {
			// Renewal cannot change leadership here — the peer takes
			// over only through promoteStandby below — so an error is
			// a lease I/O failure, which is a harness fault.
			if _, err := ldr.node.Tick(); err != nil {
				return fmt.Errorf("chaos: leader lease renewal: %w", err)
			}
		}
	}

	f.pumpRepl()

	sby := a.standbyIdx()
	if sby < 0 || a.members[sby].rep.Gen() == 0 {
		// No replica, or one that has never synced: promoting it would
		// install an empty fleet, so it waits for a first snapshot.
		return nil
	}
	l, ok, err := a.lease.Read()
	if err != nil {
		return fmt.Errorf("chaos: reading lease: %w", err)
	}
	if ok && !l.Expired(a.leaseNow()) {
		return nil
	}
	return f.promoteStandby(tick, sby, iv, v)
}

// pumpRepl moves one batch of replication frames primary → standby.
// Session errors are not harness failures: the feed is dropped and the
// next tick redials with a fresh HELLO, exactly as dcmd's replication
// client reconnects.
func (f *Fleet) pumpRepl() {
	a := f.ha
	if a.replDown || a.leaderIdx < 0 || f.mgr == nil {
		return
	}
	sby := a.standbyIdx()
	if sby < 0 {
		return
	}
	rep := a.members[sby].rep
	if a.feed == nil {
		a.feed = f.mgr.Store().NewFeed(rep.Hello())
	}
	frames, err := a.feed.Pending(haPumpBatch)
	if err != nil {
		a.feed = nil
		return
	}
	for _, fr := range frames {
		if f.scenario.BreakReplication && fr.Kind == store.ReplRec && fr.Rec != nil && fr.Rec.Node != nil {
			// The "broken guard": silently skew every node record in
			// flight. The replica applies and acks it happily — only
			// the replica_convergence check can tell.
			rec := *fr.Rec
			node := *rec.Node
			node.CapWatts += 17
			rec.Node = &node
			fr.Rec = &rec
		}
		ack, err := rep.Handle(fr)
		if err != nil {
			a.feed = nil
			return
		}
		if ack != nil {
			a.feed.Ack(*ack)
		}
	}
}

// promoteStandby fails the fleet over to member idx: crash its replica
// store, tear its journal at any pending cut, recover a manager from
// what survived, verify the recovered state against the harness's
// independent leader book (replica_convergence), then take the lease
// and re-anchor the shadow model at the new leadership.
func (f *Fleet) promoteStandby(tick, idx int, iv *invariants, v *Verdict) error {
	a := f.ha
	m := a.members[idx]
	cursor := m.rep.Cursor()
	a.feed = nil

	// The replicated journal inherits the primary's torn-tail rules:
	// kill the store without compaction and cut the tail where the
	// schedule says.
	m.st.Crash()
	lost, err := tearJournal(m.dir, a.pendingTear)
	a.pendingTear = 0
	if err != nil {
		return err
	}
	if uint64(lost) > cursor {
		return fmt.Errorf("chaos: replica tear lost %d records but cursor is %d", lost, cursor)
	}
	if cursor > uint64(len(f.shadow)) {
		return fmt.Errorf("chaos: replica cursor %d beyond shadow length %d", cursor, len(f.shadow))
	}
	v.ReplicaLostRecords += lost

	mgr, err := f.newManagerAt(m.dir)
	if err != nil {
		return err
	}
	got, _ := mgr.StoreState()
	// The expectation is independent of every replication frame the
	// standby saw: the base state the leadership started from, folded
	// with the records the leader journaled, up to what the replica
	// acknowledged minus what the tear destroyed. Records past the
	// cursor were never replicated — lost by design, which is exactly
	// what asynchronous replication promises.
	want := store.ReplayFrom(f.base, f.shadow[:int(cursor)-lost])
	iv.checkReplicaConvergence(tick, got, want)

	node := &dcm.HANode{ID: m.id, Lease: a.lease, TTL: a.ttl, Mgr: mgr}
	role, err := node.Start()
	if role != dcm.RolePrimary {
		mgr.Close()
		if err == nil {
			err = errors.New("lease still held")
		}
		return fmt.Errorf("chaos: standby %s failed to take the lease: %w", m.id, err)
	}
	// Announce-round push errors are tolerated: a partitioned node
	// misses the fence advance, and reconciliation retries it.
	mgr.Store().SetGen(mgr.Epoch())

	// An ex-leader that still runs a manager keeps actuating on its
	// stale epoch until the fence stops it: the duel the single_writer
	// invariant referees.
	if old := a.leaderIdx; old >= 0 && a.members[old].mgr != nil && !a.members[old].dead {
		a.duelIdx = old
	}
	m.mgr, m.node = mgr, node
	m.st, m.rep = nil, nil
	a.leaderIdx = idx
	f.mgr = mgr

	// Re-anchor the leader book at the restored state: base is what
	// the new leader's store opened with, shadow restarts with the
	// records its promotion journaled — the announce round's setcaps
	// (every restored desired policy, name order), then the re-armed
	// budget.
	f.base = store.ReplayFrom(got, nil)
	f.shadow = f.shadow[:0]
	names := make([]string, 0, len(got.Nodes))
	for name, rec := range got.Nodes {
		if rec.HaveCap {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		rec := got.Nodes[name]
		f.shadow = append(f.shadow, store.Record{Op: store.OpSetCap, Name: name, Node: &rec})
	}
	if w, g, ivl, ok := mgr.RestoredBudget(); ok {
		mgr.StartAutoBalance(w, g, ivl)
		f.shadow = append(f.shadow, store.Record{
			Op: store.OpBudget, Budget: &store.BudgetRecord{Watts: w, Group: g, Interval: ivl},
		})
	}
	for i := range f.registered {
		f.registered[i] = false
	}
	for i := range f.srvs {
		if _, ok := got.Nodes[f.name(i)]; ok {
			f.registered[i] = true
		}
	}
	v.Failovers++
	return nil
}

// haKill murders the acting leader mid-budget-push: it allocates a
// rebalance, pushes (and journals) only the first half of the
// decreases-first order, then crashes without compaction and tears the
// dead journal. The torn records are cosmetic — a revived member
// resyncs from a snapshot, never its old journal — but counting them
// keeps the verdict honest about what the crash destroyed.
func (f *Fleet) haKill(e Event, v *Verdict) error {
	a := f.ha
	if a.leaderIdx < 0 || f.mgr == nil {
		return nil
	}
	ldr := a.members[a.leaderIdx]
	if group := f.group(); len(group) > 0 {
		if allocs, err := f.mgr.AllocateBudget(f.budget, group); err == nil {
			half := f.orderDecreasesFirst(allocs)[:len(allocs)/2]
			for _, alc := range half {
				// Push failures still journal the desired cap; the
				// shadow mirrors the journal, not the plant.
				_ = f.mgr.SetNodeCap(alc.Name, alc.CapWatts)
			}
			f.mirrorAllocs(half)
		}
	}
	a.feed = nil
	f.mgr.Crash()
	lost, err := tearJournal(ldr.dir, e.TornBytes)
	if err != nil {
		return err
	}
	v.LostRecords += lost
	v.Crashes++
	ldr.mgr, ldr.node = nil, nil
	ldr.dead = true
	ldr.stalled = false
	a.leaderIdx = -1
	f.mgr = nil
	return nil
}

// orderDecreasesFirst mirrors ApplyBudget's push order: allocations at
// or below the node's current enabled desired cap first, then raises.
func (f *Fleet) orderDecreasesFirst(allocs []dcm.Allocation) []dcm.Allocation {
	contribution := make(map[string]float64, len(allocs))
	for _, st := range f.mgr.Nodes() {
		if st.CapEnabled {
			contribution[st.Name] = st.CapWatts
		}
	}
	ordered := make([]dcm.Allocation, 0, len(allocs))
	for _, a := range allocs {
		if a.CapWatts <= contribution[a.Name] {
			ordered = append(ordered, a)
		}
	}
	for _, a := range allocs {
		if a.CapWatts > contribution[a.Name] {
			ordered = append(ordered, a)
		}
	}
	return ordered
}

// haRevive brings a dead member back as a fresh replica. Its store
// reopens from whatever its torn journal recovers, but the replica
// starts with no resume claim (generation zero), so its first session
// takes a full snapshot of the current leader — the old state never
// leaks forward.
func (f *Fleet) haRevive(v *Verdict) error {
	for _, m := range f.ha.members {
		if !m.dead {
			continue
		}
		st, err := store.Open(m.dir)
		if err != nil {
			return fmt.Errorf("chaos: reviving %s: %w", m.id, err)
		}
		st.SetSync(false)
		m.st = st
		m.rep = store.NewReplica(st)
		m.dead = false
		m.stalled = false
		v.Restarts++
		return nil
	}
	return nil
}

// haDuel drives a deposed ex-leader at the same poll/rebalance cadence
// as the real run loop. Its pushes carry the old epoch, so with the
// fence intact every one is refused (ErrStaleEpoch → Fenced) and the
// duelist concedes within a rebalance period; with fencing broken they
// actuate the plant and the single_writer invariant fires.
func (f *Fleet) haDuel(tick, pollEvery, rebalanceEvery int) {
	a := f.ha
	if a.duelIdx < 0 {
		return
	}
	d := a.members[a.duelIdx]
	if d.mgr == nil {
		a.duelIdx = -1
		return
	}
	if tick%pollEvery == pollEvery-1 {
		d.mgr.Poll()
	}
	if tick%rebalanceEvery == rebalanceEvery-1 {
		if group := f.group(); len(group) > 0 {
			_, _ = d.mgr.ApplyBudget(f.budget, group)
		}
	}
	if d.mgr.Fenced() {
		// Positive proof a newer leader actuated the fleet: a real
		// deployment alerts and exits here; the drill just stops it.
		d.mgr.Crash()
		d.mgr, d.node = nil, nil
		d.dead = true
		a.duelIdx = -1
	}
}
