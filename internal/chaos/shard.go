package chaos

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/shard"
)

// Sharded-mode fleet state: a two-level control plane (shard.Tree
// aggregator over per-shard leaf managers) replaces the solo manager.
// Every leaf dials nodes through the same memLink fault surface the
// solo manager uses, and the aggregator's fenced-handoff batch plane
// runs through an ipmi.Mux over the same per-node servers — so batch
// fences and per-leaf pushes contend on one watermark, exactly as
// deployed. The mux transport models the management network: it stays
// up when individual manager↔node links are partitioned (those faults
// hit the leaf dial path, not the handoff plane), and a leaf's
// "partition" from the tree is EvLeafIsolate — the aggregator seizes
// its shard while the isolated manager keeps actuating on stale state,
// the duel the plant-side fence must win.
type shardedCluster struct {
	tree     *shard.Tree
	leaves   []*shardLeaf
	mux      *ipmi.Mux
	snapPath string

	// pushLog records every cap push the plant ADMITTED, attributed to
	// the leaf whose connection carried it. The single_owner checker
	// drains it each tick: an admitted push from a non-owner means a
	// handoff left two writers actuating.
	pushLog []ownedPush
}

type shardLeaf struct {
	name     string
	mgr      *dcm.Manager // nil while crashed
	isolated bool         // seized from the tree, manager still running
	crashed  bool
	// staleBudget is the last shard budget the aggregator granted this
	// leaf. An isolated leaf keeps re-applying it — the stale-state
	// actuation the fencing epoch exists to refuse.
	staleBudget float64
	gen         int // state-dir generation, bumped per restart
}

type ownedPush struct{ node, leaf int }

func (sh *shardedCluster) leafName(li int) string { return fmt.Sprintf("leaf-%02d", li) }

// setupSharded builds the tree, its leaves, and the mux batch plane.
func (f *Fleet) setupSharded() error {
	s := f.scenario
	sh := &shardedCluster{
		mux:      ipmi.NewMux(),
		snapPath: shard.SnapshotPathIn(f.dir),
	}
	for i, srv := range f.srvs {
		sh.mux.Register(uint32(i), srv)
	}
	sh.tree = shard.NewTree(uint64(s.Seed), 0, &chaosBatch{mux: sh.mux}, sh.snapPath)
	sh.tree.BreakHandoff = s.BreakHandoff
	sh.tree.BreakAggregator = s.BreakAggregator
	sh.tree.SetTelemetry(f.trace)
	f.sh = sh
	for li := 0; li < s.Shards; li++ {
		lf := &shardLeaf{name: sh.leafName(li)}
		mgr, err := f.newLeafManager(lf, li)
		if err != nil {
			return err
		}
		lf.mgr = mgr
		sh.leaves = append(sh.leaves, lf)
		if _, err := sh.tree.AddLeaf(lf.name, mgr); err != nil {
			return fmt.Errorf("chaos: adding leaf %s: %w", lf.name, err)
		}
	}
	return nil
}

// newLeafManager builds one leaf's manager at its current state-dir
// generation. A restarted leaf gets a FRESH directory: leaf recovery is
// by rejoin (the tree re-registers its shard), not by journal replay,
// so the solo-mode shadow model stays out of sharded runs.
func (f *Fleet) newLeafManager(lf *shardLeaf, li int) (*dcm.Manager, error) {
	dir := filepath.Join(f.dir, fmt.Sprintf("%s-g%d", lf.name, lf.gen))
	return f.newManagerWith(dir, f.leafDialer(li))
}

// leafDialer is f.dialer with leaf attribution: pushes this manager's
// connections land are logged for the single_owner checker.
func (f *Fleet) leafDialer(leaf int) dcm.Dialer {
	return func(addr string) (dcm.BMC, error) {
		i, ok := f.nameIdx[addr]
		if !ok {
			return nil, fmt.Errorf("chaos: unknown address %q", addr)
		}
		if down, _ := f.linkState(i); down {
			return nil, errLinkDown
		}
		return &memLink{f: f, i: i, leaf: leaf}, nil
	}
}

// notePush logs an admitted cap push for the single_owner drain. Run
// loop and poll workers are sequential in sharded mode (one poll
// worker, one loop), so no lock beyond linkMu is needed — but pushes
// can come from Poll reconciliation inside mgr.Poll, same goroutine.
func (f *Fleet) notePush(node, leaf int) {
	f.sh.pushLog = append(f.sh.pushLog, ownedPush{node: node, leaf: leaf})
}

// drainPushes consumes the admitted-push log.
func (sh *shardedCluster) drainPushes() []ownedPush {
	out := sh.pushLog
	sh.pushLog = nil
	return out
}

// registerAllSharded bulk-registers every sim node with the tree —
// one snapshot persist for the whole fleet instead of one per node.
func (f *Fleet) registerAllSharded() error {
	infos := make([]shard.NodeInfo, f.scenario.Nodes)
	for i := range infos {
		infos[i] = shard.NodeInfo{Name: f.name(i), Addr: f.nodeAddr(i), ID: uint32(i)}
	}
	if err := f.sh.tree.AddNodes(infos); err != nil {
		return fmt.Errorf("chaos: registering sharded fleet: %w", err)
	}
	for i := range f.registered {
		f.registered[i] = true
	}
	return nil
}

// shardTick drives the sharded control plane's deterministic cadence:
// leaf polls at the poll cadence, the aggregator's budget cascade at
// the rebalance cadence — and, after each cascade, every isolated
// leaf re-applies its stale grant, duelling the fence.
func (f *Fleet) shardTick(tick, pollEvery, rebalanceEvery int) {
	sh := f.sh
	if tick%pollEvery == pollEvery-1 {
		for _, lf := range sh.leaves {
			if lf.mgr != nil {
				lf.mgr.Poll()
			}
		}
	}
	if tick%rebalanceEvery == rebalanceEvery-1 {
		// Cascade errors (pushes to partitioned nodes) are expected chaos;
		// the granted budgets are recorded regardless.
		res, _ := sh.tree.Rebalance(f.budget)
		for _, lf := range sh.leaves {
			if g, ok := res.Leaves[lf.name]; ok {
				lf.staleBudget = g
			}
		}
		for _, lf := range sh.leaves {
			if !lf.isolated || lf.mgr == nil {
				continue
			}
			group := leafGroup(lf.mgr)
			if len(group) > 0 {
				_, _ = lf.mgr.ApplyBudget(lf.staleBudget, group)
			}
		}
	}
}

// leafGroup lists a leaf manager's registered node names, sorted.
func leafGroup(mgr *dcm.Manager) []string {
	sts := mgr.Nodes()
	out := make([]string, 0, len(sts))
	for _, st := range sts {
		out = append(out, st.Name)
	}
	sort.Strings(out)
	return out
}

// shardIsolate partitions a leaf away from the aggregator: the tree
// seizes its shard (fenced handoff to the survivors) while the leaf's
// manager keeps running on stale registrations. Returns nodes moved.
func (f *Fleet) shardIsolate(li int, v *Verdict) error {
	lf := f.sh.leaves[li]
	if lf.isolated || lf.crashed || lf.mgr == nil {
		return nil
	}
	moved, err := f.sh.tree.Seize(lf.name)
	if err != nil {
		return fmt.Errorf("chaos: isolating %s: %w", lf.name, err)
	}
	lf.isolated = true
	v.Handoffs += moved
	return nil
}

// shardRejoin heals the leaf's aggregator link: the tree readmits it,
// purging its stale registrations and handing its ring share back with
// a fresh fencing epoch.
func (f *Fleet) shardRejoin(li int, v *Verdict) error {
	lf := f.sh.leaves[li]
	if !lf.isolated || lf.mgr == nil {
		return nil
	}
	moved, err := f.sh.tree.Rejoin(lf.name, lf.mgr)
	if err != nil {
		return fmt.Errorf("chaos: rejoining %s: %w", lf.name, err)
	}
	lf.isolated = false
	v.Handoffs += moved
	return nil
}

// shardCrash kills a leaf manager outright. Its shard is seized (if it
// was still a member) and its process state is gone — the restart
// builds a fresh manager in a fresh state dir.
func (f *Fleet) shardCrash(li int, v *Verdict) error {
	lf := f.sh.leaves[li]
	if lf.crashed || lf.mgr == nil {
		return nil
	}
	lf.mgr.Crash()
	lf.mgr = nil
	if !lf.isolated {
		moved, err := f.sh.tree.Seize(lf.name)
		if err != nil {
			return fmt.Errorf("chaos: seizing crashed %s: %w", lf.name, err)
		}
		v.Handoffs += moved
	}
	lf.isolated = false
	lf.crashed = true
	v.LeafCrashes++
	return nil
}

// shardRestart brings a crashed leaf back as a fresh process and
// rejoins it to the tree.
func (f *Fleet) shardRestart(li int, v *Verdict) error {
	lf := f.sh.leaves[li]
	if !lf.crashed {
		return nil
	}
	lf.gen++
	mgr, err := f.newLeafManager(lf, li)
	if err != nil {
		return err
	}
	moved, err := f.sh.tree.Rejoin(lf.name, mgr)
	if err != nil {
		return fmt.Errorf("chaos: restarting %s: %w", lf.name, err)
	}
	lf.mgr = mgr
	lf.crashed = false
	v.Handoffs += moved
	v.LeafRestarts++
	return nil
}

// shardAggRestart restarts the aggregator from its journaled shard
// map: the new tree must recover the exact node→leaf ownership the old
// one persisted, re-attach the live leaves, and seize the shards of
// leaves that died or stayed isolated across the restart.
func (f *Fleet) shardAggRestart(v *Verdict) error {
	sh := f.sh
	st, err := shard.LoadSnapshot(sh.snapPath)
	if err != nil {
		return fmt.Errorf("chaos: loading shard map: %w", err)
	}
	tree, err := shard.NewTreeFromState(st, &chaosBatch{mux: sh.mux}, sh.snapPath)
	if err != nil {
		return fmt.Errorf("chaos: restoring tree: %w", err)
	}
	tree.BreakHandoff = f.scenario.BreakHandoff
	tree.BreakAggregator = f.scenario.BreakAggregator
	tree.SetTelemetry(f.trace)
	byName := make(map[string]*shardLeaf, len(sh.leaves))
	for _, lf := range sh.leaves {
		byName[lf.name] = lf
	}
	// Re-attach every survivor before seizing any casualty: a seize
	// migrates the dead leaf's nodes to the surviving members, and the
	// handoff can only fence and register through leaves that are
	// already re-bound to their managers.
	var dead []string
	for _, name := range tree.Leaves() {
		lf := byName[name]
		if lf != nil && lf.mgr != nil && !lf.isolated && !lf.crashed {
			if err := tree.Attach(name, lf.mgr); err != nil {
				return fmt.Errorf("chaos: re-attaching %s: %w", name, err)
			}
			continue
		}
		// Member in the snapshot but dead or isolated now: seize it.
		dead = append(dead, name)
	}
	for _, name := range dead {
		moved, err := tree.Seize(name)
		if err != nil {
			return fmt.Errorf("chaos: seizing %s after aggregator restart: %w", name, err)
		}
		v.Handoffs += moved
	}
	sh.tree = tree
	v.AggRestarts++
	return nil
}

// chaosBatch adapts the fleet's ipmi.Mux to shard.BatchTransport,
// round-tripping real batch frames through Mux.Handle — the same
// dispatch (and the same per-node fence watermarks) the leaf memLinks
// hit.
type chaosBatch struct {
	mux *ipmi.Mux
	seq uint32
}

func (c *chaosBatch) exchange(cmd uint8, payload []byte) ([]byte, error) {
	c.seq++
	resp := c.mux.Handle(ipmi.Frame{Seq: c.seq, NetFn: ipmi.NetFnOEM, Cmd: cmd, Payload: payload})
	if len(resp.Payload) < 1 {
		return nil, io.ErrUnexpectedEOF
	}
	if cc := resp.Payload[0]; cc != ipmi.CCOK {
		return nil, fmt.Errorf("chaos: batch completion code %#02x", cc)
	}
	return resp.Payload[1:], nil
}

func (c *chaosBatch) BatchPoll(ids []uint32) ([]ipmi.BatchPollResult, error) {
	payload, err := ipmi.EncodeBatchPollRequest(ids)
	if err != nil {
		return nil, err
	}
	b, err := c.exchange(ipmi.CmdBatchPoll, payload)
	if err != nil {
		return nil, err
	}
	return ipmi.DecodeBatchPollResponse(b)
}

func (c *chaosBatch) BatchSet(entries []ipmi.BatchSetEntry) ([]ipmi.BatchSetResult, error) {
	payload, err := ipmi.EncodeBatchSetRequest(entries)
	if err != nil {
		return nil, err
	}
	b, err := c.exchange(ipmi.CmdBatchSet, payload)
	if err != nil {
		return nil, err
	}
	return ipmi.DecodeBatchSetResponse(b)
}

// stop releases leaf managers.
func (sh *shardedCluster) stop() {
	for _, lf := range sh.leaves {
		if lf.mgr != nil {
			lf.mgr.Close()
			lf.mgr = nil
		}
	}
}
