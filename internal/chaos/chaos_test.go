package chaos

import (
	"encoding/json"
	"testing"
)

// mustRun builds and runs a scenario, failing the test on harness
// errors (not on invariant violations — callers assert those).
func mustRun(t *testing.T, name string, seed int64, ticks, nodes int) Verdict {
	t.Helper()
	s, err := Build(name, seed, ticks, nodes)
	if err != nil {
		t.Fatal(err)
	}
	s.StateDir = t.TempDir()
	v, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// assertPass fails with the recorded violations when a scenario that
// must hold did not.
func assertPass(t *testing.T, v Verdict) {
	t.Helper()
	if !v.Pass {
		t.Fatalf("scenario %q seed %d: %d violations, first: %v",
			v.Scenario, v.Seed, v.ViolationCount, v.Violations)
	}
}

// TestScheduleDeterministic: the same (name, seed, ticks, nodes)
// yields a bit-identical event schedule.
func TestScheduleDeterministic(t *testing.T) {
	a, err := Build("mixed", 42, 1500, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("mixed", 42, 1500, 6)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("schedules diverge:\n%s\n%s", aj, bj)
	}
	c, err := Build("mixed", 43, 1500, 6)
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(c)
	if string(cj) == string(aj) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestVerdictDeterministic: two in-process runs of the same scenario
// produce bit-identical verdict JSON — the property that makes chaos
// failures reproducible from just (scenario, seed).
func TestVerdictDeterministic(t *testing.T) {
	v1 := mustRun(t, "mixed", 7, 900, 6)
	v2 := mustRun(t, "mixed", 7, 900, 6)
	j1, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(v2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("verdicts diverge:\n%s\n%s", j1, j2)
	}
}

// TestStaleNodeReplayDeterministic: regression for the allocator
// consulting the real clock. A node partitioned early and never healed
// goes stale, so every subsequent rebalance takes the stale-pinning
// path in AllocateBudget — the code path that used to call time.Now()
// directly. With the manager's clock injected (the fleet's simClock),
// two runs of the same scenario must produce bit-identical verdict
// JSON even though staleness verdicts are being made on every
// rebalance.
func TestStaleNodeReplayDeterministic(t *testing.T) {
	scenario := func() Scenario {
		return Scenario{
			Name:  "stale-node-replay",
			Seed:  11,
			Ticks: 600,
			Nodes: 4,
			Events: []Event{
				// Partition node 2 before the first rebalance and never
				// heal it: it fails every poll and stays stale for the
				// rest of the run.
				{Tick: 10, Kind: EvPartition, Node: 2},
			},
		}
	}
	run := func() Verdict {
		s := scenario()
		s.StateDir = t.TempDir()
		v, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	v1, v2 := run(), run()
	if v1.EventsApplied != 1 {
		t.Fatalf("partition event not applied: %+v", v1)
	}
	assertPass(t, v1)
	if v1.Checks[InvBudgetConserved] == 0 {
		t.Error("budget_conserved never asserted — rebalances (and their staleness verdicts) did not run")
	}
	j1, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(v2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("stale-node verdicts diverge across replays:\n%s\n%s", j1, j2)
	}
}

// TestPartitionScenarioHolds: symmetric and asymmetric partitions
// must not breach any invariant — a cut-off node keeps enforcing its
// last cap out-of-band.
func TestPartitionScenarioHolds(t *testing.T) {
	v := mustRun(t, "partition", 1, 1200, 5)
	assertPass(t, v)
	if v.Checks[InvCapRespected] == 0 {
		t.Error("cap_respected never asserted")
	}
	if v.Checks[InvBudgetConserved] == 0 {
		t.Error("budget_conserved never asserted")
	}
	if v.Checks[InvNoFailSafeSpeedup] == 0 {
		t.Error("no_failsafe_speedup never asserted")
	}
	if v.EventsApplied == 0 {
		t.Error("no events applied")
	}
}

// TestCrashRestartScenarioHolds: torn-write crashes and restarts must
// recover exactly the surviving journal prefix, and rolled-back cap
// state must still conserve the budget (decreases-first push order).
func TestCrashRestartScenarioHolds(t *testing.T) {
	v := mustRun(t, "crash-restart", 2, 1500, 5)
	assertPass(t, v)
	if v.Crashes == 0 || v.Restarts == 0 {
		t.Fatalf("scenario injected no crash/restart pairs: %+v", v)
	}
	if v.Checks[InvRecoveryIntegrity] != v.Restarts {
		t.Errorf("recovery checked %d times for %d restarts",
			v.Checks[InvRecoveryIntegrity], v.Restarts)
	}
}

// TestSensorStormScenarioHolds: blinded sensors must drive fail-safe
// entries (the defensive controller working) without any fail-safe
// speedup or cap breach.
func TestSensorStormScenarioHolds(t *testing.T) {
	v := mustRun(t, "sensor-storm", 3, 1200, 5)
	assertPass(t, v)
	if v.FailSafeEntries == 0 {
		t.Error("storm never drove a fail-safe entry")
	}
	if v.SensorFaults == 0 {
		t.Error("storm injected no sensor faults")
	}
}

// TestChurnScenarioHolds: Add/RemoveNode under load.
func TestChurnScenarioHolds(t *testing.T) {
	v := mustRun(t, "churn", 4, 1200, 5)
	assertPass(t, v)
}

// TestMixedScenarioHolds: all fault classes composed.
func TestMixedScenarioHolds(t *testing.T) {
	v := mustRun(t, "mixed", 5, 1500, 6)
	assertPass(t, v)
	if v.Crashes == 0 {
		t.Error("mixed scenario injected no crashes")
	}
}

// TestBrokenGuardCaught: with the fail-safe floor deliberately broken
// (the plant creeps back up on untrusted data), the invariant checker
// MUST flag no_failsafe_speedup — proving the harness detects real
// violations rather than vacuously passing.
func TestBrokenGuardCaught(t *testing.T) {
	s, err := Build("sensor-storm", 3, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.BreakFailSafeFloor = true
	s.StateDir = t.TempDir()
	v, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("broken fail-safe floor not caught by the invariant checker")
	}
	found := false
	for _, viol := range v.Violations {
		if contains(viol.Msg, InvNoFailSafeSpeedup) {
			found = true
			if len(viol.Trace) == 0 {
				t.Error("violation carries no trailing trace window")
			}
			for _, ev := range viol.Trace {
				if ev.WallNS != 0 {
					t.Errorf("trace event %+v carries a wall-clock stamp; verdicts must be simtime-only", ev)
				}
			}
			break
		}
	}
	if !found {
		t.Fatalf("violations do not implicate %s: %v", InvNoFailSafeSpeedup, v.Violations)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestBrokenGuardVerdictDeterministic: even failing verdicts — trace
// windows included — replay bit-identically, so one (scenario, seed)
// pair is a complete bug report.
func TestBrokenGuardVerdictDeterministic(t *testing.T) {
	run := func() Verdict {
		s, err := Build("sensor-storm", 3, 1200, 5)
		if err != nil {
			t.Fatal(err)
		}
		s.BreakFailSafeFloor = true
		s.StateDir = t.TempDir()
		v, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	j1, _ := json.Marshal(run())
	j2, _ := json.Marshal(run())
	if string(j1) != string(j2) {
		t.Fatalf("failing verdicts diverge:\n%s\n%s", j1, j2)
	}
}

// TestTornCutLosesRecordsButNeverIntegrity: across many seeds the
// torn cuts land at different byte offsets (including mid-record);
// recovery integrity must hold at every one of them.
func TestTornCutLosesRecordsButNeverIntegrity(t *testing.T) {
	sawLoss := false
	for seed := int64(10); seed < 16; seed++ {
		v := mustRun(t, "crash-restart", seed, 900, 4)
		assertPass(t, v)
		if v.LostRecords > 0 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Error("no torn cut ever destroyed a record across 6 seeds; the drill is not exercising torn writes")
	}
}

// TestWireModeSoak: the same harness over real TCP sockets through
// faults.Transport. Not bit-deterministic (socket timing feeds the
// fault stream), but every invariant must still hold.
func TestWireModeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("wire soak uses real sockets and wall-clock timeouts")
	}
	s, err := Build("partition", 21, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Wire = true
	s.StateDir = t.TempDir()
	v, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	assertPass(t, v)
}

// TestRunRejectsBadScenarios: harness errors are errors, not verdicts.
func TestRunRejectsBadScenarios(t *testing.T) {
	if _, err := Run(Scenario{Name: "x", Ticks: 0, Nodes: 3}); err == nil {
		t.Error("zero ticks accepted")
	}
	if _, err := Run(Scenario{Name: "x", Ticks: 10, Nodes: 2, Events: []Event{{Tick: 1, Kind: EvPartition, Node: 5}}}); err == nil {
		t.Error("out-of-range event target accepted")
	}
	if _, err := Build("nope", 1, 10, 2); err == nil {
		t.Error("unknown scenario name accepted")
	}
}
