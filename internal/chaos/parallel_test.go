package chaos

import (
	"encoding/json"
	"runtime"
	"testing"
)

// TestVerdictParallelismDeterminism pins the tentpole determinism
// claim at the verdict level: the same scenario stepped sequentially,
// at 4 shards, and at NumCPU shards yields bit-identical verdict JSON
// — including the violation trace windows, whose event order depends
// on the engine's node-major merge of shard-local fail-safe events.
func TestVerdictParallelismDeterminism(t *testing.T) {
	for _, name := range []string{"sensor-storm", "partition", "churn"} {
		t.Run(name, func(t *testing.T) {
			s, err := Build(name, 11, 400, 16)
			if err != nil {
				t.Fatalf("building scenario: %v", err)
			}
			s.Parallelism = 1
			base, err := Run(s)
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			baseJSON, _ := json.Marshal(base)
			for _, par := range []int{4, runtime.NumCPU()} {
				s, err := Build(name, 11, 400, 16)
				if err != nil {
					t.Fatalf("building scenario: %v", err)
				}
				s.Parallelism = par
				v, err := Run(s)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				got, _ := json.Marshal(v)
				if string(got) != string(baseJSON) {
					t.Fatalf("parallelism %d verdict diverged:\n%s\nwant:\n%s", par, got, baseJSON)
				}
			}
		})
	}
}
