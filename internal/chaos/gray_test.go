package chaos

import (
	"encoding/json"
	"testing"
)

// TestLatencyStormScenarioHolds: slow-but-alive nodes must be isolated
// by the latency trip without breaching any invariant — in particular,
// caps allocated to the healthy remainder must keep landing on time
// (cap_push_bounded) and nobody healthy may go unsampled
// (no_starvation).
func TestLatencyStormScenarioHolds(t *testing.T) {
	v := mustRun(t, "latency-storm", 6, 1200, 5)
	assertPass(t, v)
	if v.BreakerOpens == 0 {
		t.Error("latency storm never tripped a breaker — the slow-exchange trip is not firing")
	}
	if v.Checks[InvCapPushBounded] == 0 {
		t.Error("cap_push_bounded never asserted")
	}
	if v.Checks[InvNoStarvation] == 0 {
		t.Error("no_starvation never asserted")
	}
}

// TestFlapperScenarioHolds: a link cycling up/down must end up
// quarantined (the flap detector working) rather than violating the
// sampling or push bounds for the rest of the fleet.
func TestFlapperScenarioHolds(t *testing.T) {
	v := mustRun(t, "flapper", 7, 1200, 5)
	assertPass(t, v)
	if v.BreakerOpens == 0 {
		t.Error("flapper never opened a breaker")
	}
	if v.Quarantines == 0 {
		t.Error("flapper never drove a quarantine — flap detection is not firing")
	}
	if v.Checks[InvCapPushBounded] == 0 || v.Checks[InvNoStarvation] == 0 {
		t.Error("gray invariants never asserted")
	}
}

// TestSlowHerdScenarioHolds: the ISSUE's acceptance shape — half the
// fleet slow at once, dragging the poll round over its brownout
// budget, while caps pushed to the healthy half must still land within
// the bound.
func TestSlowHerdScenarioHolds(t *testing.T) {
	v := mustRun(t, "slow-herd", 8, 1500, 6)
	assertPass(t, v)
	if v.BreakerOpens == 0 {
		t.Error("slow herd never tripped a breaker")
	}
	if v.Sheds == 0 {
		t.Error("slow herd never drove a brownout shed — the poll budget is not binding")
	}
	if v.Checks[InvCapPushBounded] == 0 {
		t.Error("cap_push_bounded never asserted for the healthy half")
	}
	if v.Checks[InvNoStarvation] == 0 {
		t.Error("no_starvation never asserted")
	}
}

// TestGrayVerdictDeterministic: gray-failure runs — jittered latency
// schedules, flap phases, shed levels and all — replay to bit-identical
// verdict JSON, so a failing (scenario, seed) pair is a complete bug
// report.
func TestGrayVerdictDeterministic(t *testing.T) {
	for _, name := range []string{"latency-storm", "flapper", "slow-herd"} {
		j1, _ := json.Marshal(mustRun(t, name, 9, 900, 5))
		j2, _ := json.Marshal(mustRun(t, name, 9, 900, 5))
		if string(j1) != string(j2) {
			t.Fatalf("%s verdicts diverge:\n%s\n%s", name, j1, j2)
		}
	}
}

// TestBrokenBreakerCaught: with the defense layer deliberately
// misconfigured — open breakers gate cap pushes and never grant
// half-open probes — BOTH gray checkers must fire: a healed node's
// withheld cap ages past cap_push_bounded, and the never-probed node
// starves past no_starvation. Proves the checkers detect real
// regressions rather than vacuously passing.
func TestBrokenBreakerCaught(t *testing.T) {
	s, err := Build("latency-storm", 6, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.BreakBreaker = true
	s.StateDir = t.TempDir()
	v, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("broken breaker not caught by the gray invariants")
	}
	var pushCaught, starveCaught bool
	for _, viol := range v.Violations {
		if contains(viol.Msg, InvCapPushBounded) {
			pushCaught = true
		}
		if contains(viol.Msg, InvNoStarvation) {
			starveCaught = true
		}
	}
	if !pushCaught {
		t.Errorf("%s never fired against a breaker that withholds pushes; violations: %v", InvCapPushBounded, v.Violations)
	}
	if !starveCaught {
		t.Errorf("%s never fired against a breaker that never probes; violations: %v", InvNoStarvation, v.Violations)
	}
}
