// Package chaos is a deterministic chaos harness for the DCM↔BMC
// control plane: it drives a simulated fleet of capped nodes through a
// seeded schedule of composed failures — network partitions (including
// asymmetric ones), sensor storms, manager crash-restarts with torn
// journal writes, and node churn under load — while a fleet-wide
// invariant checker asserts, after every control tick, the properties
// the paper's architecture is supposed to guarantee:
//
//  1. cap_respected — no node's sustained true power exceeds the cap
//     its BMC has applied, beyond the settle tolerance, while the
//     sensor is honest and the controller is not in fail-safe. A cap
//     below the platform floor is exempt: the paper's 120 W rows pin
//     at the floor by design.
//  2. budget_conserved — the sum of the manager's enabled desired
//     caps never exceeds the group budget, including across
//     crash-restart (every journal prefix is within budget because
//     ApplyBudget pushes decreases first) and stale-node repinning.
//  3. no_failsafe_speedup — while the controller distrusts its sensor
//     the plant never steps a P-state up, and never runs faster than
//     the configured fail-safe floor.
//  4. recovery_integrity — after every injected crash, the state the
//     reopened store recovers equals the fold of every journaled
//     operation that survived the torn cut (tracked by an independent
//     shadow model).
//  5. single_writer — at most one fencing epoch ever actuates a node's
//     plant at a time, and never backwards: once a push carrying epoch
//     E lands, no push with a lower epoch lands after it. A deposed
//     leader duelling the fence must lose (HA scenarios).
//  6. replica_convergence — at every failover, the state the promoted
//     standby recovers from its (possibly torn) replicated journal
//     equals the fold of the primary's journaled history up to the
//     replication cursor minus the torn tail (HA scenarios).
//  7. cap_push_bounded — a cap allocated to a clean-link node is
//     applied by that node's BMC within CapPushBoundTicks, however
//     much of the rest of the fleet is slow or flapping (solo
//     scenarios; the priority-lane guarantee).
//  8. no_starvation — every clean-link node's power reading is
//     fetched at least once every StarvationRounds poll rounds:
//     breaker holds, brownout shedding and busy-skips may delay a
//     sample but never orphan a healthy node (solo scenarios).
//  9. tree_budget_conserved — in sharded scenarios, the sum of the
//     leaf managers' enabled desired caps (each node counted once,
//     under its current owner) never exceeds the datacenter budget,
//     at every tick including mid-handoff; when the budget sits below
//     the platform minimums the bound is the minimum sum instead.
// 10. single_owner — in sharded scenarios, every cap push a plant
//     admits was carried by the node's CURRENT owning leaf: each
//     node's fence watermark advances under exactly one leaf. A
//     deposed or isolated leaf's pushes must be refused by the
//     plant-side fence, not merely expected to stop.
//
// Determinism: a Scenario is a pure function of (name, seed, ticks,
// nodes). All randomness comes from seeded math/rand streams — the
// schedule generator and the per-node sensor-noise/fault streams —
// and the manager is configured so its own jittered timers never draw
// randomness (1 ns delays skip the jitter draw). The manager's wall
// clock is the fleet's injected deterministic counter, so staleness
// verdicts, backoff gates and sample stamps are a function of the
// clock-read sequence rather than real time. Running the same
// in-process scenario twice yields bit-identical verdict JSON. Wire
// mode (real TCP sockets through faults.Transport) exercises the same
// schedule but is NOT bit-deterministic: socket timing feeds the
// transport's fault stream.
package chaos

import (
	"fmt"
	"os"
	"sort"
	"time"

	"nodecap/internal/dcm/store"
	"nodecap/internal/telemetry"
)

// Event kinds. Node-scoped kinds target Event.Node; crash/restart act
// on the manager globally.
const (
	// EvPartition blackholes the manager↔node link both ways.
	EvPartition = "partition"
	// EvPartitionAsym delivers requests but loses responses: the node
	// applies commands the manager believes failed.
	EvPartitionAsym = "partition-asym"
	// EvHeal restores the node's link.
	EvHeal = "heal"
	// EvSensorStorm makes the node's power sensor drop every reading
	// (the BMC must ride through on fail-safe).
	EvSensorStorm = "sensor-storm"
	// EvSensorHeal restores the node's sensor.
	EvSensorHeal = "sensor-heal"
	// EvCrash kills the manager without graceful shutdown and tears
	// the journal at a byte offset derived from Event.TornBytes.
	EvCrash = "crash"
	// EvRestart reopens the state dir with a fresh manager and runs
	// the recovery-integrity check.
	EvRestart = "restart"
	// EvRemoveNode unregisters the node mid-sweep (the node machine
	// keeps running — capping is out-of-band).
	EvRemoveNode = "remove-node"
	// EvAddNode (re-)registers the node.
	EvAddNode = "add-node"

	// Gray-failure event kinds: the node stays alive but its link
	// degrades — the failure mode the breaker/priority-lane layer
	// (DESIGN §12) defends against.

	// EvSlow makes every IPMI exchange with the node take
	// Event.LatencyUS µs of simulated time (±25 % seeded jitter per
	// call) — slow-but-alive, answering correctly just very late.
	EvSlow = "slow"
	// EvSlowHeal restores the node's exchange latency.
	EvSlowHeal = "slow-heal"
	// EvFlap makes the node's link cycle up/down with a period of
	// Event.Period ticks (down half of each period) — the breaker must
	// quarantine it rather than pay an endless probe tax.
	EvFlap = "flap"
	// EvFlapHeal stops the flapping and leaves the link up.
	EvFlapHeal = "flap-heal"

	// HA event kinds (require Scenario.HA; they act on the manager
	// pair, not a node).

	// EvKillPrimary crashes the acting leader mid-budget-push — half
	// the decreases-first sweep journaled and pushed — and tears its
	// journal at Event.TornBytes. The standby takes over when the
	// lease runs out.
	EvKillPrimary = "kill-primary"
	// EvRevive restarts a killed member as a standby replica; it
	// resyncs from a full snapshot (generation zero HELLO).
	EvRevive = "revive"
	// EvLeaseStall pauses the leader's lease renewals without stopping
	// its manager: the stalled process keeps actuating while the
	// standby takes over — the split-brain duel the node-side fence
	// must win.
	EvLeaseStall = "lease-stall"
	// EvReplDown partitions the replication link (manager↔node links
	// stay up); the standby's cursor freezes where it was.
	EvReplDown = "repl-down"
	// EvReplHeal restores the replication link; the session resumes
	// from the standby's cursor (or degrades to a snapshot).
	EvReplHeal = "repl-heal"
	// EvReplTear arms a torn-tail cut of the standby's replicated
	// journal, applied at its next promotion (the replica's crash).
	EvReplTear = "repl-tear"

	// Sharded-tree event kinds (require Scenario.Shards > 0; they act
	// on leaf managers and the aggregator, not a node).

	// EvLeafIsolate partitions leaf Event.Leaf away from the
	// aggregator: the tree seizes its shard with fenced handoff while
	// the isolated manager keeps actuating on stale registrations and a
	// stale budget — the duel the plant-side fence must win.
	EvLeafIsolate = "leaf-isolate"
	// EvLeafRejoin heals the leaf's aggregator link; the tree readmits
	// it (purging its stale state) and hands its ring share back.
	EvLeafRejoin = "leaf-rejoin"
	// EvLeafCrash kills leaf Event.Leaf's manager outright; the tree
	// seizes its shard.
	EvLeafCrash = "leaf-crash"
	// EvLeafRestart brings a crashed leaf back as a fresh process (new
	// state dir) and rejoins it to the tree.
	EvLeafRestart = "leaf-restart"
	// EvAggRestart restarts the aggregator from its journaled shard
	// map: ownership must be recovered exactly, live leaves
	// re-attached, dead ones seized.
	EvAggRestart = "agg-restart"
)

// Event is one scheduled fault (or recovery) in a scenario timeline.
type Event struct {
	Tick int    `json:"tick"`
	Kind string `json:"kind"`
	// Node indexes the target node for node-scoped kinds.
	Node int `json:"node,omitempty"`
	// TornBytes seeds the torn-write cut for EvCrash: the journal is
	// truncated at TornBytes modulo (journal length + 1), so a crash
	// can land mid-record, between records, or lose nothing.
	TornBytes int `json:"torn_bytes,omitempty"`
	// LatencyUS is EvSlow's per-exchange latency in simulated µs.
	LatencyUS int `json:"latency_us,omitempty"`
	// Period is EvFlap's up/down cycle length in ticks.
	Period int `json:"period,omitempty"`
	// Leaf indexes the target leaf manager for sharded event kinds.
	Leaf int `json:"leaf,omitempty"`
}

// Scenario is a reproducible chaos timeline. Identical scenarios
// (including Seed) replay identical schedules; in-process runs also
// produce bit-identical verdicts.
type Scenario struct {
	Name  string `json:"name"`
	Seed  int64  `json:"seed"`
	Ticks int    `json:"ticks"`
	Nodes int    `json:"nodes"`
	// BudgetWatts is the group budget rebalanced across registered
	// nodes; 0 means 140 W per node.
	BudgetWatts float64 `json:"budget_watts,omitempty"`
	// PollEvery / RebalanceEvery are in ticks; 0 means the defaults
	// (5 and 25).
	PollEvery      int     `json:"poll_every,omitempty"`
	RebalanceEvery int     `json:"rebalance_every,omitempty"`
	Events         []Event `json:"events"`

	// HA runs the control plane as a lease-coordinated primary/standby
	// pair with journal replication; enables the HA event kinds and
	// the single_writer / replica_convergence invariants. Incompatible
	// with Wire and with EvCrash/EvRestart (use EvKillPrimary and
	// EvRevive, which respect pair membership).
	HA bool `json:"ha,omitempty"`

	// Shards > 0 runs the control plane as a two-level sharded tree:
	// that many leaf managers own consistent-hash shards of the fleet
	// under a cascading budget aggregator (internal/shard). Enables the
	// sharded event kinds and the tree_budget_conserved / single_owner
	// invariants. Incompatible with HA, Wire, and EvCrash/EvRestart
	// (use the leaf/aggregator event kinds instead).
	Shards int `json:"shards,omitempty"`

	// BreakFailSafeFloor disables the fail-safe P-state floor in the
	// simulated plant (the plant creeps back up while the controller
	// distrusts its sensor). It exists to prove the invariant checker
	// detects real violations; see TestBrokenGuardCaught.
	BreakFailSafeFloor bool `json:"break_fail_safe_floor,omitempty"`

	// BreakFencing disables the stale-epoch fence in every simulated
	// node's IPMI server, so a deposed leader's pushes actuate the
	// plant. Exists to prove single_writer catches real split-brain;
	// see TestBrokenFencingCaught.
	BreakFencing bool `json:"break_fencing,omitempty"`

	// BreakReplication corrupts every node record crossing the
	// replication link (the replica applies and acknowledges skewed
	// caps). Exists to prove replica_convergence catches real
	// divergence; see TestBrokenReplicationCaught.
	BreakReplication bool `json:"break_replication,omitempty"`

	// BreakBreaker misconfigures the gray-failure defense two ways at
	// once: open breakers gate cap pushes (so a withheld cap ages past
	// its bound) and never grant half-open probes (so a healed node is
	// never sampled again). Exists to prove cap_push_bounded and
	// no_starvation both catch real regressions; see
	// TestBrokenBreakerCaught.
	BreakBreaker bool `json:"break_breaker,omitempty"`

	// BreakHandoff skips the fencing-epoch bump on shard migration, so
	// a deposed leaf keeps pushing at the epoch the new owner uses and
	// the plant admits both writers. Exists to prove single_owner
	// catches a broken handoff; see TestBrokenHandoffCaught.
	BreakHandoff bool `json:"break_handoff,omitempty"`

	// BreakAggregator makes the budget cascade over-allocate (1.5× per
	// leaf), violating cross-level conservation. Exists to prove
	// tree_budget_conserved catches a broken aggregator; see
	// TestBrokenAggregatorCaught.
	BreakAggregator bool `json:"break_aggregator,omitempty"`

	// Wire runs the fleet over real TCP sockets through
	// faults.Transport instead of in-process frame dispatch. Slower
	// and not bit-deterministic; asymmetric partitions degrade to
	// symmetric ones.
	Wire bool `json:"wire,omitempty"`

	// StateDir overrides the manager's state directory (default: a
	// fresh temp dir removed when Run returns).
	StateDir string `json:"-"`

	// Parallelism bounds the engine's tick shards: 0 selects
	// GOMAXPROCS, 1 forces the sequential pass. Verdicts are
	// bit-identical at every setting (the engine shards nodes into
	// contiguous ranges and merges trace events in node order), so
	// this is a throughput knob, not part of the scenario's identity —
	// hence excluded from the JSON form.
	Parallelism int `json:"-"`
}

// Verdict is the outcome of one scenario run. In-process verdicts are
// bit-identical across runs of the same scenario.
type Verdict struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Nodes    int    `json:"nodes"`
	Ticks    int    `json:"ticks"`
	// SimSeconds is the simulated time covered (ticks × the BMC
	// control period).
	SimSeconds float64 `json:"sim_seconds"`

	Events        int `json:"events"`
	EventsApplied int `json:"events_applied"`
	Crashes       int `json:"crashes"`
	Restarts      int `json:"restarts"`
	// LostRecords counts journal records destroyed by torn cuts —
	// operations the recovered state is allowed (and required) to
	// have forgotten.
	LostRecords int `json:"lost_records"`

	// HA outcomes. Failovers counts standby promotions; FencedPushes
	// counts cap pushes nodes refused for carrying a stale epoch;
	// ReplicaLostRecords counts replicated-journal records destroyed
	// by torn cuts at promotion.
	Failovers          int    `json:"failovers,omitempty"`
	FencedPushes       uint64 `json:"fenced_pushes,omitempty"`
	ReplicaLostRecords int    `json:"replica_lost_records,omitempty"`

	// Sharded-tree outcomes. Shards echoes the scenario's leaf count;
	// Handoffs counts node ownership migrations (fenced handoffs);
	// LeafCrashes/LeafRestarts count leaf manager lifecycle events;
	// AggRestarts counts aggregator restarts from the journaled shard
	// map.
	Shards       int `json:"shards,omitempty"`
	Handoffs     int `json:"handoffs,omitempty"`
	LeafCrashes  int `json:"leaf_crashes,omitempty"`
	LeafRestarts int `json:"leaf_restarts,omitempty"`
	AggRestarts  int `json:"agg_restarts,omitempty"`

	// FailSafeEntries / SensorFaults aggregate the fleet's defensive
	// controller stats.
	FailSafeEntries uint64 `json:"fail_safe_entries"`
	SensorFaults    uint64 `json:"sensor_faults"`

	// Gray-failure defense outcomes (breaker trips, quarantines,
	// brownout sheds, busy-skips, priority-lane pushes).
	BreakerOpens uint64 `json:"breaker_opens,omitempty"`
	Quarantines  uint64 `json:"quarantines,omitempty"`
	Sheds        uint64 `json:"sheds,omitempty"`
	BusySkips    uint64 `json:"busy_skips,omitempty"`
	LanePushes   uint64 `json:"lane_pushes,omitempty"`

	// Checks counts how many times each invariant was asserted.
	Checks map[string]int `json:"checks"`
	// Violations lists the first violations found (bounded);
	// ViolationCount is the true total.
	Violations     []Violation `json:"violations"`
	ViolationCount int         `json:"violation_count"`
	Pass           bool        `json:"pass"`
}

// Violation is one invariant failure, captured with the trailing
// window of fleet control-decision trace events — the cap pushes,
// backoffs, fail-safe transitions, and budget reallocations that led
// up to it. In-process runs stamp events with the simulated tick only
// (no wall clock), so the window is bit-identical across replays.
type Violation struct {
	Msg   string            `json:"msg"`
	Trace []telemetry.Event `json:"trace,omitempty"`
}

// Defaults for Scenario zero fields.
const (
	DefaultPollEvery      = 5
	DefaultRebalanceEvery = 25
	DefaultBudgetPerNodeW = 140
)

// Run executes one scenario and returns its verdict. The error is for
// harness failures (bad scenario, state-dir I/O); invariant violations
// are reported in the verdict, not the error.
func Run(s Scenario) (Verdict, error) {
	if s.Ticks <= 0 || s.Nodes <= 0 {
		return Verdict{}, fmt.Errorf("chaos: scenario needs positive ticks and nodes (got %d, %d)", s.Ticks, s.Nodes)
	}
	if s.HA && s.Wire {
		return Verdict{}, fmt.Errorf("chaos: HA scenarios are in-process only (wire mode unsupported)")
	}
	if s.Shards > 0 {
		if s.HA {
			return Verdict{}, fmt.Errorf("chaos: sharded scenarios are incompatible with HA (the tree is its own availability story)")
		}
		if s.Wire {
			return Verdict{}, fmt.Errorf("chaos: sharded scenarios are in-process only (wire mode unsupported)")
		}
	}
	haKinds := map[string]bool{
		EvKillPrimary: true, EvRevive: true, EvLeaseStall: true,
		EvReplDown: true, EvReplHeal: true, EvReplTear: true,
	}
	leafKinds := map[string]bool{
		EvLeafIsolate: true, EvLeafRejoin: true, EvLeafCrash: true, EvLeafRestart: true,
	}
	for _, e := range s.Events {
		if e.Node < 0 || e.Node >= s.Nodes {
			return Verdict{}, fmt.Errorf("chaos: event %q at tick %d targets node %d outside [0,%d)", e.Kind, e.Tick, e.Node, s.Nodes)
		}
		if haKinds[e.Kind] && !s.HA {
			return Verdict{}, fmt.Errorf("chaos: event %q at tick %d requires an HA scenario", e.Kind, e.Tick)
		}
		if s.HA && (e.Kind == EvCrash || e.Kind == EvRestart) {
			return Verdict{}, fmt.Errorf("chaos: event %q at tick %d is for solo scenarios; HA uses %q/%q", e.Kind, e.Tick, EvKillPrimary, EvRevive)
		}
		if (leafKinds[e.Kind] || e.Kind == EvAggRestart) && s.Shards <= 0 {
			return Verdict{}, fmt.Errorf("chaos: event %q at tick %d requires a sharded scenario", e.Kind, e.Tick)
		}
		if leafKinds[e.Kind] && (e.Leaf < 0 || e.Leaf >= s.Shards) {
			return Verdict{}, fmt.Errorf("chaos: event %q at tick %d targets leaf %d outside [0,%d)", e.Kind, e.Tick, e.Leaf, s.Shards)
		}
		if s.Shards > 0 && (e.Kind == EvCrash || e.Kind == EvRestart) {
			return Verdict{}, fmt.Errorf("chaos: event %q at tick %d is for solo scenarios; sharded uses %q/%q", e.Kind, e.Tick, EvLeafCrash, EvLeafRestart)
		}
		if e.Kind == EvSlow && e.LatencyUS <= 0 {
			return Verdict{}, fmt.Errorf("chaos: event %q at tick %d needs a positive latency_us", e.Kind, e.Tick)
		}
		if e.Kind == EvFlap && e.Period <= 0 {
			return Verdict{}, fmt.Errorf("chaos: event %q at tick %d needs a positive period", e.Kind, e.Tick)
		}
	}
	pollEvery := s.PollEvery
	if pollEvery <= 0 {
		pollEvery = DefaultPollEvery
	}
	rebalanceEvery := s.RebalanceEvery
	if rebalanceEvery <= 0 {
		rebalanceEvery = DefaultRebalanceEvery
	}

	dir := s.StateDir
	if dir == "" {
		d, err := os.MkdirTemp("", "chaos-state-*")
		if err != nil {
			return Verdict{}, fmt.Errorf("chaos: %w", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}

	f, err := newFleet(s, dir)
	if err != nil {
		return Verdict{}, err
	}
	defer f.stop()
	budget := f.budget
	if f.sh != nil {
		// Bulk registration: one shard-map persist for the whole fleet
		// instead of one per node (O(n²) at datacenter scale).
		if err := f.registerAllSharded(); err != nil {
			return Verdict{}, err
		}
	} else {
		for i := 0; i < s.Nodes; i++ {
			if err := f.addNode(i); err != nil {
				return Verdict{}, fmt.Errorf("chaos: registering node %d: %w", i, err)
			}
		}
	}
	if s.HA {
		// Arm the continuous balancing mode so the budget is journaled
		// (and replicated): a promoted standby must re-arm it from its
		// restored state. The interval is far beyond the run, so the
		// loop's own ticker never fires — the run loop rebalances on
		// the deterministic tick cadence instead.
		group := f.group()
		f.mgr.StartAutoBalance(budget, group, time.Hour)
		f.shadow = append(f.shadow, store.Record{
			Op: store.OpBudget, Budget: &store.BudgetRecord{Watts: budget, Group: group, Interval: time.Hour},
		})
	}

	events := append([]Event(nil), s.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Tick < events[j].Tick })

	v := Verdict{
		Scenario:   s.Name,
		Seed:       s.Seed,
		Nodes:      s.Nodes,
		Ticks:      s.Ticks,
		SimSeconds: float64(s.Ticks) * controlPeriodSeconds,
		Events:     len(events),
	}
	iv := newInvariants(f, budget)

	next := 0
	for tick := 0; tick < s.Ticks; tick++ {
		f.trace.SetTick(int64(tick))
		for next < len(events) && events[next].Tick <= tick {
			if err := f.applyEvent(events[next], iv, &v); err != nil {
				return Verdict{}, err
			}
			next++
		}
		f.applyFlaps(tick)
		f.tickNodes()
		if f.ha != nil {
			if err := f.haTick(tick, iv, &v); err != nil {
				return Verdict{}, err
			}
		}
		if f.mgr != nil && tick%pollEvery == pollEvery-1 {
			f.mgr.Poll()
			iv.notePoll()
		}
		if f.mgr != nil && tick%rebalanceEvery == rebalanceEvery-1 {
			if group := f.group(); len(group) > 0 {
				// Push failures (partitioned nodes) are expected; the
				// desired caps are journaled regardless, so the shadow
				// must mirror every returned allocation.
				allocs, _ := f.mgr.ApplyBudget(budget, group)
				f.mirrorAllocs(allocs)
				iv.noteAllocs(allocs, tick)
			}
		}
		if f.sh != nil {
			f.shardTick(tick, pollEvery, rebalanceEvery)
		}
		if f.ha != nil {
			f.haDuel(tick, pollEvery, rebalanceEvery)
		}
		iv.checkTick(tick)
	}

	v.Checks = iv.checks
	v.Violations = iv.violations
	v.ViolationCount = iv.violationCount
	snap := f.reg.Snapshot()
	if s.HA || s.Shards > 0 {
		v.FencedPushes = snap.Counters["dcm_fenced_pushes_total"]
	}
	v.Shards = s.Shards
	v.BreakerOpens = snap.Counters["dcm_breaker_opens_total"]
	v.Quarantines = snap.Counters["dcm_quarantines_total"]
	v.Sheds = snap.Counters["dcm_sheds_total"]
	v.BusySkips = snap.Counters["dcm_busy_skips_total"]
	v.LanePushes = snap.Counters["dcm_lane_pushes_total"]
	st := f.eng.Stats()
	v.FailSafeEntries = st.FailSafeEntries
	v.SensorFaults = st.SensorFaults
	v.Pass = v.ViolationCount == 0
	return v, nil
}
