package chaos

import (
	"encoding/json"
	"testing"
)

// TestFailoverKillScenarioHolds: killing the leader mid-budget-push
// (journal torn, half a decreases-first sweep landed) fails over to
// the standby repeatedly, and every invariant — including the
// convergence of each promoted replica with the dead primary's
// journaled history — holds throughout.
func TestFailoverKillScenarioHolds(t *testing.T) {
	v := mustRun(t, "failover-kill", 1, 1200, 5)
	assertPass(t, v)
	if v.Failovers == 0 {
		t.Fatal("failover-kill scheduled no failovers")
	}
	if v.Crashes == 0 {
		t.Fatal("failover-kill killed no leaders")
	}
	if got := v.Checks[InvReplicaConvergence]; got != v.Failovers {
		t.Fatalf("replica_convergence checked %d times for %d failovers", got, v.Failovers)
	}
}

// TestFenceDuelScenarioHolds: a stalled leader that keeps actuating
// while the standby takes over must be stopped by the node-side fence
// — fenced pushes observed, zero stale actuations reaching a plant.
func TestFenceDuelScenarioHolds(t *testing.T) {
	v := mustRun(t, "fence-duel", 1, 1200, 5)
	assertPass(t, v)
	if v.Failovers == 0 {
		t.Fatal("fence-duel promoted no standby")
	}
	if v.FencedPushes == 0 {
		t.Fatal("fence-duel recorded no fenced pushes: the duel never happened")
	}
}

// TestReplicaTornTailScenarioHolds: failover onto replicas whose
// journals were torn at seeded offsets. At least one seed must
// actually destroy acknowledged replicated records, or the scenario
// is not exercising the torn-tail recovery path it exists for.
func TestReplicaTornTailScenarioHolds(t *testing.T) {
	sawLoss := false
	for seed := int64(1); seed <= 4; seed++ {
		v := mustRun(t, "replica-torn-tail", seed, 1200, 5)
		assertPass(t, v)
		if v.Failovers == 0 {
			t.Fatalf("seed %d: no failovers", seed)
		}
		if v.ReplicaLostRecords > 0 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Fatal("no seed tore any replicated records; torn-tail path unexercised")
	}
}

// TestHAVerdictsDeterministic: HA runs — lease timing, replication
// pumping, failover, fencing duels included — replay bit-identically.
func TestHAVerdictsDeterministic(t *testing.T) {
	for _, name := range []string{"failover-kill", "fence-duel", "replica-torn-tail"} {
		v1 := mustRun(t, name, 5, 900, 4)
		v2 := mustRun(t, name, 5, 900, 4)
		j1, err := json.Marshal(v1)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := json.Marshal(v2)
		if err != nil {
			t.Fatal(err)
		}
		if string(j1) != string(j2) {
			t.Fatalf("%s: verdicts diverge:\n%s\n%s", name, j1, j2)
		}
	}
}

// TestBrokenFencingCaught: with the nodes' stale-epoch fence disabled,
// a deposed leader's pushes actuate the plant — and the single_writer
// invariant must flag it. Proves the checker detects real split-brain
// rather than vacuously passing.
func TestBrokenFencingCaught(t *testing.T) {
	s, err := Build("fence-duel", 1, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.BreakFencing = true
	s.StateDir = t.TempDir()
	v, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("disabled fence not caught by the single_writer invariant")
	}
	found := false
	for _, viol := range v.Violations {
		if contains(viol.Msg, InvSingleWriter) {
			found = true
			if len(viol.Trace) == 0 {
				t.Error("violation carries no trailing trace window")
			}
			break
		}
	}
	if !found {
		t.Fatalf("no single_writer violation recorded; first: %v", v.Violations[0])
	}
}

// TestBrokenReplicationCaught: with every replicated node record
// silently skewed in flight, the promoted standby's state diverges
// from the primary's journaled history — and replica_convergence must
// flag it. The replica itself applies and acknowledges the corrupt
// records happily, so only the independent leader book can tell.
func TestBrokenReplicationCaught(t *testing.T) {
	s, err := Build("failover-kill", 1, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.BreakReplication = true
	s.StateDir = t.TempDir()
	v, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("corrupted replication not caught by the replica_convergence invariant")
	}
	found := false
	for _, viol := range v.Violations {
		if contains(viol.Msg, InvReplicaConvergence) {
			found = true
			if len(viol.Trace) == 0 {
				t.Error("violation carries no trailing trace window")
			}
			break
		}
	}
	if !found {
		t.Fatalf("no replica_convergence violation recorded; first: %v", v.Violations[0])
	}
}

// TestHAValidation: HA event kinds demand an HA scenario, solo
// crash-restart events are refused in HA mode, and wire mode is
// incompatible with HA.
func TestHAValidation(t *testing.T) {
	base := Scenario{Name: "x", Ticks: 100, Nodes: 2}

	s := base
	s.Events = []Event{{Tick: 1, Kind: EvKillPrimary}}
	if _, err := Run(s); err == nil {
		t.Error("kill-primary accepted without HA")
	}

	s = base
	s.HA = true
	s.Events = []Event{{Tick: 1, Kind: EvCrash}}
	if _, err := Run(s); err == nil {
		t.Error("solo crash event accepted in HA mode")
	}

	s = base
	s.HA = true
	s.Wire = true
	if _, err := Run(s); err == nil {
		t.Error("HA accepted with wire mode")
	}
}
