package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/dcm/store"
	"nodecap/internal/faults"
	"nodecap/internal/fleet"
	"nodecap/internal/ipmi"
	"nodecap/internal/telemetry"
)

const (
	maxCapWatts = 180.0

	// controlPeriodSeconds converts ticks to simulated seconds (the
	// BMC default control period is 100 µs of simtime).
	controlPeriodSeconds = 100e-6
)

// Fleet is the simulated data center a scenario runs against: the
// batch simulation engine holding every node's plant and BMC state as
// structure-of-arrays slices (internal/fleet), the per-node IPMI
// management surface layered on top of it, the (possibly crashed)
// manager, and the shadow model of every journaled operation used by
// the recovery-integrity check.
type Fleet struct {
	scenario Scenario
	dir      string
	budget   float64

	// eng steps all nodes in one batched pass per tick; srvs are the
	// per-node IPMI dispatch tables (the fenced management path).
	eng  *fleet.Engine
	srvs []*ipmi.Server

	// Per-node manager↔node link state, guarded by linkMu (the poll
	// workers and, in wire mode, server connection goroutines read it
	// concurrently with the run loop's fault injection). latNS is the
	// injected per-exchange latency (EvSlow); latDraws counts each
	// node's jitter draws so the jittered latency stream is a pure
	// function of (seed, node, draw); flapPeriod/flapFrom describe an
	// active EvFlap; sampled marks nodes whose power reading the
	// manager fetched since the last notePoll (the no_starvation feed).
	linkMu     sync.Mutex
	down       []bool
	asym       []bool
	latNS      []int64
	latDraws   []uint64
	flapPeriod []int
	flapFrom   []int
	sampled    []bool

	nameIdx map[string]int

	mgr        *dcm.Manager // nil while crashed
	registered []bool
	meta       []nodeMeta

	// base and shadow are the independent model of the acting manager's
	// durable state: base is the state its store held when it opened,
	// shadow mirrors, in order, every record it journaled since. A torn
	// cut trims the shadow's tail by exactly the lost line count. In HA
	// mode the pair is re-anchored at every promotion, and shadow
	// indices double as replication sequence numbers (the store's seq
	// counts exactly the records applied since open).
	base   store.State
	shadow []store.Record

	// ha is the primary/standby pair state; nil outside HA mode.
	ha *haCluster

	// sh is the two-level sharded control plane; nil outside sharded
	// mode (Scenario.Shards > 0). Mutually exclusive with ha and mgr.
	sh *shardedCluster

	// Wire-mode plumbing.
	transports []*faults.Transport
	wireAddrs  []string

	// Fleet-wide observability: wall-clock stamping is disabled on the
	// trace so in-process verdicts (which embed trace windows) stay
	// bit-identical, and the run loop stamps the simulated tick instead.
	reg   *telemetry.Registry
	trace *telemetry.Trace

	// clockNS backs simClock, the deterministic wall clock injected
	// into every manager this fleet builds. It survives crash/restart
	// cycles (it lives on the fleet, not the manager), so timestamps
	// keep advancing monotonically across manager generations.
	clockNS int64
}

// nodeMeta is the manager-visible registration data the shadow model
// mirrors into journal records.
type nodeMeta struct {
	addr     string
	min, max float64
}

func newFleet(s Scenario, dir string) (*Fleet, error) {
	f := &Fleet{
		scenario:   s,
		dir:        dir,
		srvs:       make([]*ipmi.Server, s.Nodes),
		down:       make([]bool, s.Nodes),
		asym:       make([]bool, s.Nodes),
		latNS:      make([]int64, s.Nodes),
		latDraws:   make([]uint64, s.Nodes),
		flapPeriod: make([]int, s.Nodes),
		flapFrom:   make([]int, s.Nodes),
		sampled:    make([]bool, s.Nodes),
		nameIdx:    make(map[string]int, s.Nodes),
		registered: make([]bool, s.Nodes),
		meta:       make([]nodeMeta, s.Nodes),
		reg:        telemetry.NewRegistry(),
		trace:      telemetry.NewTrace(telemetry.DefaultTraceCapacity),
	}
	f.budget = s.BudgetWatts
	if f.budget <= 0 {
		f.budget = DefaultBudgetPerNodeW * float64(s.Nodes)
	}
	f.trace.SetWallClock(nil)
	f.eng = fleet.New(fleet.Config{
		Nodes:              s.Nodes,
		Seed:               s.Seed,
		NamePrefix:         "node-",
		BreakFailSafeFloor: s.BreakFailSafeFloor,
		Parallelism:        s.Parallelism,
	})
	f.eng.SetTelemetry(f.reg, f.trace)
	for i := 0; i < s.Nodes; i++ {
		f.nameIdx[f.eng.Name(i)] = i
		f.srvs[i] = ipmi.NewServer(&nodeCtl{f: f, i: i})
		if s.BreakFencing {
			f.srvs[i].SetFencingEnabled(false)
		}
	}
	if s.Wire {
		f.transports = make([]*faults.Transport, s.Nodes)
		f.wireAddrs = make([]string, s.Nodes)
		for i := range f.srvs {
			addr, err := f.srvs[i].Listen("127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("chaos: listening for node %d: %w", i, err)
			}
			f.wireAddrs[i] = addr
			f.transports[i] = faults.New(faults.Profile{Seed: s.Seed + int64(i) + 1})
		}
	}
	if s.HA {
		if err := f.setupHA(); err != nil {
			return nil, err
		}
		return f, nil
	}
	if s.Shards > 0 {
		if err := f.setupSharded(); err != nil {
			return nil, err
		}
		return f, nil
	}
	mgr, err := f.newManagerAt(f.dir)
	if err != nil {
		return nil, err
	}
	f.mgr = mgr
	return f, nil
}

func (f *Fleet) name(i int) string { return f.eng.Name(i) }

func (f *Fleet) setLink(i int, down, asym bool) {
	f.linkMu.Lock()
	f.down[i], f.asym[i] = down, asym
	f.linkMu.Unlock()
}

func (f *Fleet) linkState(i int) (down, asym bool) {
	f.linkMu.Lock()
	defer f.linkMu.Unlock()
	return f.down[i], f.asym[i]
}

func (f *Fleet) setLat(i int, ns int64) {
	f.linkMu.Lock()
	f.latNS[i] = ns
	f.linkMu.Unlock()
}

func (f *Fleet) setFlap(i, period, from int) {
	f.linkMu.Lock()
	f.flapPeriod[i], f.flapFrom[i] = period, from
	f.linkMu.Unlock()
	if period == 0 {
		f.setLink(i, false, false)
	}
}

// applyFlaps drives every flapping node's link for this tick: up for
// the first half of each period, down for the second. Pure function of
// (event schedule, tick), so flap schedules replay bit-identically.
func (f *Fleet) applyFlaps(tick int) {
	f.linkMu.Lock()
	for i, period := range f.flapPeriod {
		if period <= 0 {
			continue
		}
		half := period / 2
		if half < 1 {
			half = 1
		}
		f.down[i] = ((tick-f.flapFrom[i])/half)%2 == 1
	}
	f.linkMu.Unlock()
}

// injectLatency advances the sim clock by node i's jittered
// per-exchange latency (no-op for non-slow nodes), so the manager
// *measures* the storm through its ordinary clock reads. The jitter is
// ±25 % around the injected base, drawn from a splitmix64 stream keyed
// by (scenario seed, node, draw count) — one node's schedule never
// depends on another's call interleaving.
func (f *Fleet) injectLatency(i int) {
	f.linkMu.Lock()
	base := f.latNS[i]
	var d int64
	if base > 0 {
		f.latDraws[i]++
		frac := grayFrac(f.scenario.Seed, i, f.latDraws[i])
		d = int64(float64(base) * (0.75 + 0.5*frac))
	}
	f.linkMu.Unlock()
	if d > 0 {
		atomic.AddInt64(&f.clockNS, d)
	}
}

// grayFrac is draw n of node i's latency-jitter stream in [0, 1) —
// the splitmix64 counter idiom from internal/fleet.
func grayFrac(seed int64, i int, n uint64) float64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xd1342543de82ef95 + n*0x9e3779b97f4a7c15 + 1
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// markSampled records that the manager fetched node i's power reading;
// takeSampled consumes the marks (called once per poll round by the
// no_starvation checker).
func (f *Fleet) markSampled(i int) {
	f.linkMu.Lock()
	f.sampled[i] = true
	f.linkMu.Unlock()
}

func (f *Fleet) takeSampled(dst []bool) {
	f.linkMu.Lock()
	copy(dst, f.sampled)
	for i := range f.sampled {
		f.sampled[i] = false
	}
	f.linkMu.Unlock()
}

// refreshElig writes each node's link cleanliness — not partitioned,
// not slow, not flapping — into dst in one lock acquisition. The
// gray-failure invariants audit only clean-link nodes ("healthy" in
// the scenario's sense); a sick node is the defense layer's input, not
// its obligation.
func (f *Fleet) refreshElig(dst []bool) {
	f.linkMu.Lock()
	for i := range dst {
		dst[i] = !f.down[i] && !f.asym[i] && f.latNS[i] == 0 && f.flapPeriod[i] == 0
	}
	f.linkMu.Unlock()
}

// simClock is the deterministic wall clock injected into the manager.
// Each read advances simulated time by 1 µs, so every timestamp-
// dependent decision (staleness verdicts, backoff gates, sample
// stamps) is a pure function of the read sequence — which, with one
// poll worker and a sequential run loop, is itself deterministic.
// 1 µs per read keeps the 1 ns backoff/staleness windows behaving as
// before: any gate armed at read k has expired by read k+1.
func (f *Fleet) simClock() time.Time {
	return time.Unix(0, atomic.AddInt64(&f.clockNS, 1000))
}

// newManagerAt builds a manager wired to the fleet and attached to
// the given state dir. Backoff and staleness windows are 1 ns:
// wall-clock gates always open by the next poll, and delays this
// small skip the jitter draw, so the manager's rng never influences
// the run. The manager's clock is the fleet's simClock, so no
// decision ever consults real time — the property the replay
// regression test pins. Journal fsync is disabled: a simulated crash
// rereads the file rather than cutting power (the bytes on disk are
// identical either way), and fleet-scale scenarios journal far too
// many records to fsync each one inside the CI budget.
func (f *Fleet) newManagerAt(dir string) (*dcm.Manager, error) {
	return f.newManagerWith(dir, f.dialer())
}

// newManagerWith is newManagerAt with an explicit dialer — sharded
// leaves dial through leaf-attributed links.
func (f *Fleet) newManagerWith(dir string, dial dcm.Dialer) (*dcm.Manager, error) {
	mgr := dcm.NewManager(dial)
	mgr.RetryBaseDelay = time.Nanosecond
	mgr.RetryMaxDelay = time.Nanosecond
	mgr.StaleAfter = time.Nanosecond
	mgr.Clock = f.simClock
	// One poll worker keeps trace append order a function of the sorted
	// node list alone, so verdict trace windows replay bit-identically.
	mgr.PollConcurrency = 1
	// Gray-failure defense, scaled to simClock's 1 µs-per-read pace: a
	// healthy in-process exchange measures ~1 µs, a stormed node
	// hundreds of µs, so 50 µs cleanly separates the populations. The
	// open hold (60 µs) spans a few poll rounds; quarantine doubles it.
	// Both must stay well under StarvationRounds' worth of poll rounds
	// (a round advances the clock ≥ ~3 µs per registered node), or a
	// healed node still serving its hold trips no_starvation.
	mgr.Breaker = dcm.BreakerConfig{
		FailureThreshold: 3,
		SlowThreshold:    50 * time.Microsecond,
		SlowConsecutive:  2,
		OpenTimeout:      60 * time.Microsecond,
		FlapWindow:       5 * time.Millisecond,
		FlapMax:          4,
		QuarantineHold:   120 * time.Microsecond,
	}
	mgr.PollBudget = 400 * time.Microsecond
	if f.scenario.BreakBreaker {
		// Self-test sabotage: verdicts still trip, but open breakers gate
		// cap pushes and never probe, so healed nodes stay dark — the
		// -break-breaker run must make both gray invariants fire.
		mgr.BreakerHoldsPushes = true
		mgr.BreakerNeverProbes = true
	}
	mgr.SetTelemetry(f.reg, f.trace)
	if err := mgr.OpenStateDir(dir); err != nil {
		return nil, fmt.Errorf("chaos: opening state dir: %w", err)
	}
	mgr.Store().SetSync(false)
	return mgr, nil
}

func (f *Fleet) dialer() dcm.Dialer {
	return func(addr string) (dcm.BMC, error) {
		if f.scenario.Wire {
			for i, wa := range f.wireAddrs {
				if wa == addr {
					conn, err := f.transports[i].Dial("tcp", addr, time.Second)
					if err != nil {
						return nil, err
					}
					c := ipmi.NewClientConn(conn)
					c.SetRequestTimeout(250 * time.Millisecond)
					return c, nil
				}
			}
			return nil, fmt.Errorf("chaos: unknown address %q", addr)
		}
		i, ok := f.nameIdx[addr]
		if !ok {
			return nil, fmt.Errorf("chaos: unknown address %q", addr)
		}
		if down, _ := f.linkState(i); down {
			return nil, errLinkDown
		}
		return &memLink{f: f, i: i, leaf: -1}, nil
	}
}

func (f *Fleet) nodeAddr(i int) string {
	if f.scenario.Wire {
		return f.wireAddrs[i]
	}
	return f.name(i)
}

// addNode registers sim node i with the manager and mirrors the
// journaled add record. In sharded mode the tree routes it to its
// ring owner instead (no shadow model — leaf recovery is by rejoin,
// not replay).
func (f *Fleet) addNode(i int) error {
	if f.sh != nil {
		if err := f.sh.tree.AddNode(f.name(i), f.nodeAddr(i), uint32(i)); err != nil {
			return err
		}
		f.registered[i] = true
		return nil
	}
	if f.mgr == nil {
		return errors.New("chaos: manager crashed")
	}
	name := f.name(i)
	if err := f.mgr.AddNode(name, f.nodeAddr(i)); err != nil {
		return err
	}
	f.registered[i] = true
	// Mirror the journaled record with the manager's own view, so
	// float round-trips through the wire codec cannot skew the shadow.
	for _, st := range f.mgr.Nodes() {
		if st.Name == name {
			f.meta[i] = nodeMeta{addr: st.Addr, min: st.MinCapWatts, max: st.MaxCapWatts}
			f.shadow = append(f.shadow, store.Record{
				Op: store.OpAddNode, Name: name,
				Node: &store.NodeRecord{Addr: st.Addr, MinCapWatts: st.MinCapWatts, MaxCapWatts: st.MaxCapWatts},
			})
			return nil
		}
	}
	return fmt.Errorf("chaos: node %q missing after AddNode", name)
}

func (f *Fleet) removeNode(i int) error {
	if f.sh != nil {
		if !f.registered[i] {
			return nil
		}
		if err := f.sh.tree.RemoveNode(f.name(i)); err != nil {
			return err
		}
		f.registered[i] = false
		return nil
	}
	if f.mgr == nil || !f.registered[i] {
		return nil
	}
	name := f.name(i)
	if err := f.mgr.RemoveNode(name); err != nil {
		return err
	}
	f.registered[i] = false
	f.shadow = append(f.shadow, store.Record{Op: store.OpRemoveNode, Name: name})
	return nil
}

// mirrorAllocs appends the setcap records ApplyBudget journaled, in
// push order (the desired cap is journaled before each push, even
// ones that then fail).
func (f *Fleet) mirrorAllocs(allocs []dcm.Allocation) {
	for _, a := range allocs {
		idx, ok := f.nameIdx[a.Name]
		if !ok {
			continue
		}
		m := f.meta[idx]
		f.shadow = append(f.shadow, store.Record{
			Op: store.OpSetCap, Name: a.Name,
			Node: &store.NodeRecord{
				Addr: m.addr, MinCapWatts: m.min, MaxCapWatts: m.max,
				HaveCap: true, CapEnabled: a.CapWatts > 0, CapWatts: a.CapWatts,
			},
		})
	}
}

// group lists the currently registered node names, sorted.
func (f *Fleet) group() []string {
	var out []string
	for i, ok := range f.registered {
		if ok {
			out = append(out, f.name(i))
		}
	}
	sort.Strings(out)
	return out
}

// tearJournal truncates dir's journal at a cut derived from tornBytes
// (modulo length+1, so the cut can land mid-record, between records,
// or lose nothing) and returns the number of record lines destroyed.
func tearJournal(dir string, tornBytes int) (lost int, err error) {
	path := store.JournalPath(dir)
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("chaos: reading journal: %w", err)
	}
	cut := len(b)
	if tornBytes > 0 {
		cut = tornBytes % (len(b) + 1)
	}
	if cut == len(b) {
		return 0, nil
	}
	lost = bytes.Count(b, []byte{'\n'}) - bytes.Count(b[:cut], []byte{'\n'})
	if err := os.Truncate(path, int64(cut)); err != nil {
		return 0, fmt.Errorf("chaos: tearing journal: %w", err)
	}
	return lost, nil
}

// crash kills the manager the hard way — no compaction — then tears
// the journal tail, trimming the shadow by the lost record count.
// Returns the number of journal records destroyed.
func (f *Fleet) crash(tornBytes int) (lost int, err error) {
	if f.mgr == nil {
		return 0, nil
	}
	f.mgr.Crash()
	f.mgr = nil
	lost, err = tearJournal(f.dir, tornBytes)
	if err != nil {
		return 0, err
	}
	if lost > len(f.shadow) {
		return 0, fmt.Errorf("chaos: torn cut lost %d records but shadow holds %d", lost, len(f.shadow))
	}
	f.shadow = f.shadow[:len(f.shadow)-lost]
	return lost, nil
}

// restart reopens the state dir with a fresh manager and rebuilds the
// registration map from what actually survived. It returns the
// recovered state and the shadow's expectation for the
// recovery-integrity check.
func (f *Fleet) restart() (got, want store.State, err error) {
	if f.mgr != nil {
		return store.State{}, store.State{}, nil
	}
	mgr, err := f.newManagerAt(f.dir)
	if err != nil {
		return store.State{}, store.State{}, err
	}
	f.mgr = mgr
	got, _ = mgr.StoreState()
	want = store.ReplayFrom(f.base, f.shadow)
	for i := range f.registered {
		f.registered[i] = false
	}
	for i := range f.srvs {
		if _, ok := got.Nodes[f.name(i)]; ok {
			f.registered[i] = true
		}
	}
	return got, want, nil
}

// tickNodes advances every sim node one control period in a single
// batched engine pass. Nodes tick whether or not the manager is alive
// (capping is out-of-band).
func (f *Fleet) tickNodes() {
	f.eng.Tick(1)
}

// applyEvent executes one scheduled event, updating verdict counters
// and (for restarts) running the recovery-integrity check.
func (f *Fleet) applyEvent(e Event, iv *invariants, v *Verdict) error {
	switch e.Kind {
	case EvPartition:
		f.setLink(e.Node, true, false)
		if f.scenario.Wire {
			f.transports[e.Node].SetProfile(faults.Profile{
				Seed: f.scenario.Seed + int64(e.Node) + 1, DialErrorProb: 1, DropWrites: true,
			})
		}
	case EvPartitionAsym:
		// Wire mode cannot lose only responses; degrade to symmetric.
		f.setLink(e.Node, f.scenario.Wire, !f.scenario.Wire)
		if f.scenario.Wire {
			f.transports[e.Node].SetProfile(faults.Profile{
				Seed: f.scenario.Seed + int64(e.Node) + 1, DialErrorProb: 1, DropWrites: true,
			})
		}
	case EvHeal:
		f.setLink(e.Node, false, false)
		if f.scenario.Wire {
			f.transports[e.Node].SetProfile(faults.Profile{Seed: f.scenario.Seed + int64(e.Node) + 1})
		}
	case EvSlow:
		f.setLat(e.Node, int64(e.LatencyUS)*1000)
		if f.scenario.Wire {
			lat := time.Duration(e.LatencyUS) * time.Microsecond
			f.transports[e.Node].SetProfile(faults.Profile{
				Seed:        f.scenario.Seed + int64(e.Node) + 1,
				ReadLatency: lat, ReadJitter: lat / 2,
			})
		}
	case EvSlowHeal:
		f.setLat(e.Node, 0)
		if f.scenario.Wire {
			f.transports[e.Node].SetProfile(faults.Profile{Seed: f.scenario.Seed + int64(e.Node) + 1})
		}
	case EvFlap:
		f.setFlap(e.Node, e.Period, e.Tick)
		if f.scenario.Wire {
			f.transports[e.Node].SetProfile(faults.Profile{
				Seed:       f.scenario.Seed + int64(e.Node) + 1,
				FlapPeriod: time.Duration(e.Period) * 10 * time.Millisecond,
				FlapDuty:   0.5,
			})
		}
	case EvFlapHeal:
		f.setFlap(e.Node, 0, e.Tick)
		if f.scenario.Wire {
			f.transports[e.Node].SetProfile(faults.Profile{Seed: f.scenario.Seed + int64(e.Node) + 1})
		}
	case EvSensorStorm:
		f.eng.SetDropout(e.Node, true)
	case EvSensorHeal:
		f.eng.SetDropout(e.Node, false)
	case EvCrash:
		if f.mgr == nil {
			return nil
		}
		lost, err := f.crash(e.TornBytes)
		if err != nil {
			return err
		}
		v.Crashes++
		v.LostRecords += lost
	case EvRestart:
		if f.mgr != nil {
			return nil
		}
		got, want, err := f.restart()
		if err != nil {
			return err
		}
		v.Restarts++
		iv.checkRecovery(e.Tick, got, want)
	case EvRemoveNode:
		if err := f.removeNode(e.Node); err != nil {
			return nil // unknown node after a rolled-back add; expected
		}
	case EvAddNode:
		if (f.mgr == nil && f.sh == nil) || f.registered[e.Node] {
			return nil
		}
		if err := f.addNode(e.Node); err != nil {
			return nil // link down; the dial failing IS the chaos
		}
	case EvLeafIsolate:
		if err := f.shardIsolate(e.Leaf, v); err != nil {
			return err
		}
	case EvLeafRejoin:
		if err := f.shardRejoin(e.Leaf, v); err != nil {
			return err
		}
	case EvLeafCrash:
		if err := f.shardCrash(e.Leaf, v); err != nil {
			return err
		}
	case EvLeafRestart:
		if err := f.shardRestart(e.Leaf, v); err != nil {
			return err
		}
	case EvAggRestart:
		if err := f.shardAggRestart(v); err != nil {
			return err
		}
	case EvKillPrimary:
		if err := f.haKill(e, v); err != nil {
			return err
		}
	case EvRevive:
		if err := f.haRevive(v); err != nil {
			return err
		}
	case EvLeaseStall:
		if f.ha.leaderIdx >= 0 {
			f.ha.members[f.ha.leaderIdx].stalled = true
		}
	case EvReplDown:
		f.ha.replDown = true
		f.ha.feed = nil
	case EvReplHeal:
		f.ha.replDown = false
	case EvReplTear:
		f.ha.pendingTear = e.TornBytes
	default:
		return fmt.Errorf("chaos: unknown event kind %q", e.Kind)
	}
	v.EventsApplied++
	return nil
}

// stop releases fleet resources (managers, wire listeners, the
// engine's tick shards).
func (f *Fleet) stop() {
	if f.ha != nil {
		f.ha.stop()
		f.mgr = nil
	} else if f.sh != nil {
		f.sh.stop()
	} else if f.mgr != nil {
		f.mgr.Close()
		f.mgr = nil
	}
	for _, srv := range f.srvs {
		srv.Close()
	}
	f.eng.Close()
}
