package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nodecap/internal/bmc"
	"nodecap/internal/dcm"
	"nodecap/internal/dcm/store"
	"nodecap/internal/faults"
	"nodecap/internal/ipmi"
	"nodecap/internal/telemetry"
)

// The simulated platform: an analytic plant with the paper's power
// envelope — ~157 W busy at P0, DVFS worth 2 W per P-state down to
// 127 W, then a 4-level gating ladder worth 1.2 W each, for a
// ~122.2 W floor (the paper's nodes floor at ~123-125 W).
const (
	numPStates     = 16
	maxGatingLevel = 4
	p0Watts        = 157.0
	wattsPerPState = 2.0
	wattsPerGate   = 1.2
	noiseWatts     = 0.4 // sensor noise amplitude (uniform ±)

	maxCapWatts = 180.0

	// failSafePState is the fail-safe floor the fleet's BMCs hold
	// (P12 ≈ 133 W — safely under every feasible cap).
	failSafePState = 12

	// controlPeriodSeconds converts ticks to simulated seconds (the
	// BMC default control period is 100 µs of simtime).
	controlPeriodSeconds = 100e-6
)

// simPlant is the analytic plant. All access is serialized by the
// owning simNode's mutex.
type simPlant struct {
	pstate int
	gating int
	rng    *rand.Rand // sensor noise only; TrueWatts never draws
}

// TrueWatts is the node's actual draw — what the invariant checker
// audits. It never consumes randomness.
func (p *simPlant) TrueWatts() float64 {
	return p0Watts - wattsPerPState*float64(p.pstate) - wattsPerGate*float64(p.gating)
}

// PowerWatts is the sensor reading: truth plus bounded noise.
func (p *simPlant) PowerWatts() float64 {
	return p.TrueWatts() + (p.rng.Float64()*2-1)*noiseWatts
}

func (p *simPlant) PStateIndex() int { return p.pstate }
func (p *simPlant) NumPStates() int  { return numPStates }
func (p *simPlant) SetPState(i int) {
	if i < 0 {
		i = 0
	}
	if i > numPStates-1 {
		i = numPStates - 1
	}
	p.pstate = i
}
func (p *simPlant) GatingLevel() int    { return p.gating }
func (p *simPlant) MaxGatingLevel() int { return maxGatingLevel }
func (p *simPlant) SetGatingLevel(l int) {
	if l < 0 {
		l = 0
	}
	if l > maxGatingLevel {
		l = maxGatingLevel
	}
	p.gating = l
}
func (p *simPlant) CapFloorWatts() float64 {
	return p0Watts - wattsPerPState*(numPStates-1) - wattsPerGate*maxGatingLevel
}

// simNode is one simulated machine: plant → fault injector → BMC,
// plus the per-tick bookkeeping the invariant checker reads. mu
// guards everything — the manager's poll workers (and, in wire mode,
// the IPMI server's connection goroutines) call in concurrently with
// the tick loop.
type simNode struct {
	name, addr string
	index      int

	mu     sync.Mutex
	plant  *simPlant
	faulty *faults.FaultyPlant
	ctl    *bmc.BMC
	srv    *ipmi.Server

	breakFloor bool
	down, asym bool

	// sinceCapChange counts ticks since the last material policy
	// change (> 1 W or an enabled flip); the cap-respected invariant
	// waits out the controller's settle window after one. Allocation
	// jitter from sensor noise re-pushes sub-watt deltas every
	// rebalance, which must NOT reset the clock.
	sinceCapChange int
	// Pre/post tick observations for the fail-safe-speedup invariant.
	prePState, postPState     int
	preFailSafe, postFailSafe bool
	overTicks                 int // consecutive settled ticks above cap

	// Fencing observations for the single-writer invariant: the highest
	// epoch that ever actuated this node's plant, and how many pushes
	// carrying a LOWER epoch actuated anyway. With the server-side
	// fence intact the count stays zero — stale pushes are rejected
	// before they reach the plant — so a nonzero count is positive
	// proof of split-brain actuation.
	actEpoch         uint64
	epochRegressions int
	regSeen          int // checker's consumed watermark
}

func newSimNode(i int, seed int64, breakFloor bool) *simNode {
	plant := &simPlant{rng: rand.New(rand.NewSource(seed ^ int64(i)<<16 | 1))}
	faulty := faults.NewPlant(plant, faults.PlantProfile{Seed: seed + int64(i)*7919})
	cfg := bmc.FailSafeConfig()
	cfg.FailSafePState = failSafePState
	n := &simNode{
		name:       fmt.Sprintf("node-%d", i),
		addr:       fmt.Sprintf("node-%d", i),
		index:      i,
		plant:      plant,
		faulty:     faulty,
		ctl:        bmc.New(cfg, faulty),
		breakFloor: breakFloor,
	}
	n.srv = ipmi.NewServer(&nodeCtl{n: n})
	return n
}

// tick runs one BMC control period and records the observations the
// invariant checker needs.
func (n *simNode) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.prePState = n.plant.pstate
	n.preFailSafe = n.ctl.FailSafe()
	n.ctl.Tick()
	if n.breakFloor && n.ctl.FailSafe() {
		// The "broken guard": the plant ignores the fail-safe clamp
		// and creeps back toward full speed on untrusted sensor data.
		if p := n.plant.pstate; p > 0 {
			n.plant.pstate = p - 1
		}
	}
	n.postPState = n.plant.pstate
	n.postFailSafe = n.ctl.FailSafe()
	n.sinceCapChange++
}

func (n *simNode) stats() bmc.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ctl.Stats()
}

func (n *simNode) setLink(down, asym bool) {
	n.mu.Lock()
	n.down, n.asym = down, asym
	n.mu.Unlock()
}

func (n *simNode) linkState() (down, asym bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down, n.asym
}

func (n *simNode) setSensorProfile(p faults.PlantProfile) {
	// FaultyPlant has its own lock; keep profile swaps ordered with
	// ticks by taking the node lock too.
	n.mu.Lock()
	n.faulty.SetPlantProfile(p)
	n.mu.Unlock()
}

// nodeCtl adapts a simNode to ipmi.NodeControl, the BMC's management
// surface.
type nodeCtl struct{ n *simNode }

func (c *nodeCtl) DeviceInfo() ipmi.DeviceInfo {
	return ipmi.DeviceInfo{
		DeviceID:       0x20,
		FirmwareMajor:  1,
		ManufacturerID: 343, // Intel's IANA enterprise number
		ProductID:      0x0C4A,
	}
}

// PowerReading reports the controller's smoothed estimate rather than
// a fresh sensor draw: management polls must not perturb the seeded
// per-tick noise stream, and DCM's demand signal is a recent average
// anyway.
func (c *nodeCtl) PowerReading() ipmi.PowerReading {
	c.n.mu.Lock()
	defer c.n.mu.Unlock()
	w := c.n.ctl.SmoothedWatts()
	if w == 0 {
		w = c.n.plant.TrueWatts()
	}
	return ipmi.PowerReading{CurrentWatts: w, AverageWatts: w}
}

func (c *nodeCtl) SetPowerLimit(lim ipmi.PowerLimit) error {
	c.n.mu.Lock()
	defer c.n.mu.Unlock()
	// Record the actuation epoch for the single-writer invariant. This
	// runs only for pushes the ipmi.Server fence admitted, so a
	// regression here means a stale epoch actuated the plant.
	if lim.Epoch < c.n.actEpoch {
		c.n.epochRegressions++
	} else {
		c.n.actEpoch = lim.Epoch
	}
	old := c.n.ctl.Policy()
	err := c.n.ctl.SetPolicy(bmc.Policy{Enabled: lim.Enabled, CapWatts: lim.CapWatts})
	if old.Enabled != lim.Enabled || math.Abs(old.CapWatts-lim.CapWatts) > 1 {
		c.n.sinceCapChange = 0
		c.n.overTicks = 0
	}
	if err != nil && !errors.Is(err, bmc.ErrInfeasibleCap) {
		return err
	}
	// Infeasible caps are applied-but-flagged (the paper's 120 W
	// rows); surfaced via Health, not as a wire error.
	return nil
}

func (c *nodeCtl) PowerLimit() ipmi.PowerLimit {
	c.n.mu.Lock()
	defer c.n.mu.Unlock()
	p := c.n.ctl.Policy()
	return ipmi.PowerLimit{Enabled: p.Enabled, CapWatts: p.CapWatts}
}

func (c *nodeCtl) PStateInfo() ipmi.PStateInfo {
	c.n.mu.Lock()
	defer c.n.mu.Unlock()
	i := c.n.plant.pstate
	return ipmi.PStateInfo{
		Index:   uint8(i),
		Count:   numPStates,
		FreqMHz: uint16(3000 - 120*i),
	}
}

func (c *nodeCtl) GatingLevel() int {
	c.n.mu.Lock()
	defer c.n.mu.Unlock()
	return c.n.plant.gating
}

func (c *nodeCtl) Capabilities() ipmi.Capabilities {
	c.n.mu.Lock()
	defer c.n.mu.Unlock()
	return ipmi.Capabilities{
		MinCapWatts: c.n.plant.CapFloorWatts(),
		MaxCapWatts: maxCapWatts,
	}
}

func (c *nodeCtl) Health() ipmi.Health {
	c.n.mu.Lock()
	defer c.n.mu.Unlock()
	h := c.n.ctl.Health()
	return ipmi.Health{
		FailSafe:      h.FailSafe,
		SensorFaults:  uint32(h.SensorFaults),
		InfeasibleCap: h.InfeasibleCap,
	}
}

var (
	errLinkDown = errors.New("chaos: link partitioned")
	errLinkAsym = errors.New("chaos: response lost (asymmetric partition)")
)

// memLink implements dcm.BMC by round-tripping real wire frames
// through the node's ipmi.Server dispatch table in-process — the full
// codec path without socket timing. An asymmetric partition applies
// the request but loses the response, exactly the failure mode where
// a manager must not assume a failed push changed nothing.
type memLink struct {
	n   *simNode
	seq uint32
}

func (l *memLink) call(cmd uint8, payload []byte) ([]byte, error) {
	down, asym := l.n.linkState()
	if down {
		return nil, errLinkDown
	}
	l.seq++
	req := ipmi.Frame{Seq: l.seq, NetFn: ipmi.NetFnOEM, Cmd: cmd, Payload: payload}
	b, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	onWire, err := ipmi.ReadFrame(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	resp := l.n.srv.Handle(onWire)
	if asym {
		return nil, errLinkAsym
	}
	rb, err := resp.Marshal()
	if err != nil {
		return nil, err
	}
	back, err := ipmi.ReadFrame(bytes.NewReader(rb))
	if err != nil {
		return nil, err
	}
	if len(back.Payload) == 0 {
		return nil, errors.New("chaos: empty response payload")
	}
	switch cc := back.Payload[0]; cc {
	case ipmi.CCOK:
	case ipmi.CCStaleEpoch:
		// Surface the fencing verdict as the sentinel error, exactly as
		// the TCP client does, so the manager's fenced detection fires
		// through the in-process path too.
		return nil, ipmi.ErrStaleEpoch
	default:
		return nil, fmt.Errorf("chaos: completion code %#02x", cc)
	}
	return back.Payload[1:], nil
}

func (l *memLink) GetDeviceID() (ipmi.DeviceInfo, error) {
	p, err := l.call(ipmi.CmdGetDeviceID, nil)
	if err != nil {
		return ipmi.DeviceInfo{}, err
	}
	return ipmi.DecodeDeviceInfo(p)
}

func (l *memLink) GetPowerReading() (ipmi.PowerReading, error) {
	p, err := l.call(ipmi.CmdGetPowerReading, nil)
	if err != nil {
		return ipmi.PowerReading{}, err
	}
	return ipmi.DecodePowerReading(p)
}

func (l *memLink) SetPowerLimit(lim ipmi.PowerLimit) error {
	_, err := l.call(ipmi.CmdSetPowerLimit, ipmi.EncodePowerLimit(lim))
	return err
}

func (l *memLink) GetPowerLimit() (ipmi.PowerLimit, error) {
	p, err := l.call(ipmi.CmdGetPowerLimit, nil)
	if err != nil {
		return ipmi.PowerLimit{}, err
	}
	return ipmi.DecodePowerLimit(p)
}

func (l *memLink) GetPStateInfo() (ipmi.PStateInfo, error) {
	p, err := l.call(ipmi.CmdGetPStateInfo, nil)
	if err != nil {
		return ipmi.PStateInfo{}, err
	}
	return ipmi.DecodePStateInfo(p)
}

func (l *memLink) GetGatingLevel() (int, error) {
	p, err := l.call(ipmi.CmdGetGatingLevel, nil)
	if err != nil {
		return 0, err
	}
	if len(p) < 1 {
		return 0, errors.New("chaos: short gating payload")
	}
	return int(p[0]), nil
}

func (l *memLink) GetCapabilities() (ipmi.Capabilities, error) {
	p, err := l.call(ipmi.CmdGetCapabilities, nil)
	if err != nil {
		return ipmi.Capabilities{}, err
	}
	return ipmi.DecodeCapabilities(p)
}

func (l *memLink) GetHealth() (ipmi.Health, error) {
	p, err := l.call(ipmi.CmdGetHealth, nil)
	if err != nil {
		return ipmi.Health{}, err
	}
	return ipmi.DecodeHealth(p)
}

func (l *memLink) Close() error { return nil }

// nodeMeta is the manager-visible registration data the shadow model
// mirrors into journal records.
type nodeMeta struct {
	addr     string
	min, max float64
}

// Fleet is the simulated data center a scenario runs against: the sim
// nodes, the (possibly crashed) manager, and the shadow model of
// every journaled operation used by the recovery-integrity check.
type Fleet struct {
	scenario Scenario
	dir      string
	budget   float64
	sims     []*simNode

	mgr        *dcm.Manager // nil while crashed
	registered []bool
	meta       []nodeMeta

	// base and shadow are the independent model of the acting manager's
	// durable state: base is the state its store held when it opened,
	// shadow mirrors, in order, every record it journaled since. A torn
	// cut trims the shadow's tail by exactly the lost line count. In HA
	// mode the pair is re-anchored at every promotion, and shadow
	// indices double as replication sequence numbers (the store's seq
	// counts exactly the records applied since open).
	base   store.State
	shadow []store.Record

	// ha is the primary/standby pair state; nil outside HA mode.
	ha *haCluster

	// Wire-mode plumbing.
	transports []*faults.Transport
	wireAddrs  []string

	// Fleet-wide observability: wall-clock stamping is disabled on the
	// trace so in-process verdicts (which embed trace windows) stay
	// bit-identical, and the run loop stamps the simulated tick instead.
	reg   *telemetry.Registry
	trace *telemetry.Trace

	// clockNS backs simClock, the deterministic wall clock injected
	// into every manager this fleet builds. It survives crash/restart
	// cycles (it lives on the fleet, not the manager), so timestamps
	// keep advancing monotonically across manager generations.
	clockNS int64
}

func newFleet(s Scenario, dir string) (*Fleet, error) {
	f := &Fleet{
		scenario:   s,
		dir:        dir,
		sims:       make([]*simNode, s.Nodes),
		registered: make([]bool, s.Nodes),
		meta:       make([]nodeMeta, s.Nodes),
		reg:        telemetry.NewRegistry(),
		trace:      telemetry.NewTrace(telemetry.DefaultTraceCapacity),
	}
	f.budget = s.BudgetWatts
	if f.budget <= 0 {
		f.budget = DefaultBudgetPerNodeW * float64(s.Nodes)
	}
	f.trace.SetWallClock(nil)
	for i := range f.sims {
		f.sims[i] = newSimNode(i, s.Seed, s.BreakFailSafeFloor)
		f.sims[i].ctl.SetTelemetry(f.reg, f.trace, f.sims[i].name)
		if s.BreakFencing {
			f.sims[i].srv.SetFencingEnabled(false)
		}
	}
	if s.Wire {
		f.transports = make([]*faults.Transport, s.Nodes)
		f.wireAddrs = make([]string, s.Nodes)
		for i, n := range f.sims {
			addr, err := n.srv.Listen("127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("chaos: listening for node %d: %w", i, err)
			}
			f.wireAddrs[i] = addr
			f.transports[i] = faults.New(faults.Profile{Seed: s.Seed + int64(i) + 1})
		}
	}
	if s.HA {
		if err := f.setupHA(); err != nil {
			return nil, err
		}
		return f, nil
	}
	mgr, err := f.newManagerAt(f.dir)
	if err != nil {
		return nil, err
	}
	f.mgr = mgr
	return f, nil
}

// simClock is the deterministic wall clock injected into the manager.
// Each read advances simulated time by 1 µs, so every timestamp-
// dependent decision (staleness verdicts, backoff gates, sample
// stamps) is a pure function of the read sequence — which, with one
// poll worker and a sequential run loop, is itself deterministic.
// 1 µs per read keeps the 1 ns backoff/staleness windows behaving as
// before: any gate armed at read k has expired by read k+1.
func (f *Fleet) simClock() time.Time {
	return time.Unix(0, atomic.AddInt64(&f.clockNS, 1000))
}

// newManagerAt builds a manager wired to the fleet and attached to
// the given state dir. Backoff and staleness windows are 1 ns:
// wall-clock gates always open by the next poll, and delays this
// small skip the jitter draw, so the manager's rng never influences
// the run. The manager's clock is the fleet's simClock, so no
// decision ever consults real time — the property the replay
// regression test pins.
func (f *Fleet) newManagerAt(dir string) (*dcm.Manager, error) {
	mgr := dcm.NewManager(f.dialer())
	mgr.RetryBaseDelay = time.Nanosecond
	mgr.RetryMaxDelay = time.Nanosecond
	mgr.StaleAfter = time.Nanosecond
	mgr.Clock = f.simClock
	// One poll worker keeps trace append order a function of the sorted
	// node list alone, so verdict trace windows replay bit-identically.
	mgr.PollConcurrency = 1
	mgr.SetTelemetry(f.reg, f.trace)
	if err := mgr.OpenStateDir(dir); err != nil {
		return nil, fmt.Errorf("chaos: opening state dir: %w", err)
	}
	return mgr, nil
}

func (f *Fleet) dialer() dcm.Dialer {
	byAddr := make(map[string]*simNode, len(f.sims))
	for i, n := range f.sims {
		addr := n.addr
		if f.scenario.Wire {
			addr = f.wireAddrs[i]
		}
		byAddr[addr] = n
	}
	return func(addr string) (dcm.BMC, error) {
		n, ok := byAddr[addr]
		if !ok {
			return nil, fmt.Errorf("chaos: unknown address %q", addr)
		}
		if f.scenario.Wire {
			conn, err := f.transports[n.index].Dial("tcp", addr, time.Second)
			if err != nil {
				return nil, err
			}
			c := ipmi.NewClientConn(conn)
			c.SetRequestTimeout(250 * time.Millisecond)
			return c, nil
		}
		if down, _ := n.linkState(); down {
			return nil, errLinkDown
		}
		return &memLink{n: n}, nil
	}
}

func (f *Fleet) nodeAddr(i int) string {
	if f.scenario.Wire {
		return f.wireAddrs[i]
	}
	return f.sims[i].addr
}

// addNode registers sim node i with the manager and mirrors the
// journaled add record.
func (f *Fleet) addNode(i int) error {
	if f.mgr == nil {
		return errors.New("chaos: manager crashed")
	}
	name := f.sims[i].name
	if err := f.mgr.AddNode(name, f.nodeAddr(i)); err != nil {
		return err
	}
	f.registered[i] = true
	// Mirror the journaled record with the manager's own view, so
	// float round-trips through the wire codec cannot skew the shadow.
	for _, st := range f.mgr.Nodes() {
		if st.Name == name {
			f.meta[i] = nodeMeta{addr: st.Addr, min: st.MinCapWatts, max: st.MaxCapWatts}
			f.shadow = append(f.shadow, store.Record{
				Op: store.OpAddNode, Name: name,
				Node: &store.NodeRecord{Addr: st.Addr, MinCapWatts: st.MinCapWatts, MaxCapWatts: st.MaxCapWatts},
			})
			return nil
		}
	}
	return fmt.Errorf("chaos: node %q missing after AddNode", name)
}

func (f *Fleet) removeNode(i int) error {
	if f.mgr == nil || !f.registered[i] {
		return nil
	}
	name := f.sims[i].name
	if err := f.mgr.RemoveNode(name); err != nil {
		return err
	}
	f.registered[i] = false
	f.shadow = append(f.shadow, store.Record{Op: store.OpRemoveNode, Name: name})
	return nil
}

// mirrorAllocs appends the setcap records ApplyBudget journaled, in
// push order (the desired cap is journaled before each push, even
// ones that then fail).
func (f *Fleet) mirrorAllocs(allocs []dcm.Allocation) {
	for _, a := range allocs {
		var idx = -1
		for i, n := range f.sims {
			if n.name == a.Name {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		m := f.meta[idx]
		f.shadow = append(f.shadow, store.Record{
			Op: store.OpSetCap, Name: a.Name,
			Node: &store.NodeRecord{
				Addr: m.addr, MinCapWatts: m.min, MaxCapWatts: m.max,
				HaveCap: true, CapEnabled: a.CapWatts > 0, CapWatts: a.CapWatts,
			},
		})
	}
}

// group lists the currently registered node names, sorted.
func (f *Fleet) group() []string {
	var out []string
	for i, ok := range f.registered {
		if ok {
			out = append(out, f.sims[i].name)
		}
	}
	sort.Strings(out)
	return out
}

// tearJournal truncates dir's journal at a cut derived from tornBytes
// (modulo length+1, so the cut can land mid-record, between records,
// or lose nothing) and returns the number of record lines destroyed.
func tearJournal(dir string, tornBytes int) (lost int, err error) {
	path := store.JournalPath(dir)
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("chaos: reading journal: %w", err)
	}
	cut := len(b)
	if tornBytes > 0 {
		cut = tornBytes % (len(b) + 1)
	}
	if cut == len(b) {
		return 0, nil
	}
	lost = bytes.Count(b, []byte{'\n'}) - bytes.Count(b[:cut], []byte{'\n'})
	if err := os.Truncate(path, int64(cut)); err != nil {
		return 0, fmt.Errorf("chaos: tearing journal: %w", err)
	}
	return lost, nil
}

// crash kills the manager the hard way — no compaction — then tears
// the journal tail, trimming the shadow by the lost record count.
// Returns the number of journal records destroyed.
func (f *Fleet) crash(tornBytes int) (lost int, err error) {
	if f.mgr == nil {
		return 0, nil
	}
	f.mgr.Crash()
	f.mgr = nil
	lost, err = tearJournal(f.dir, tornBytes)
	if err != nil {
		return 0, err
	}
	if lost > len(f.shadow) {
		return 0, fmt.Errorf("chaos: torn cut lost %d records but shadow holds %d", lost, len(f.shadow))
	}
	f.shadow = f.shadow[:len(f.shadow)-lost]
	return lost, nil
}

// restart reopens the state dir with a fresh manager and rebuilds the
// registration map from what actually survived. It returns the
// recovered state and the shadow's expectation for the
// recovery-integrity check.
func (f *Fleet) restart() (got, want store.State, err error) {
	if f.mgr != nil {
		return store.State{}, store.State{}, nil
	}
	mgr, err := f.newManagerAt(f.dir)
	if err != nil {
		return store.State{}, store.State{}, err
	}
	f.mgr = mgr
	got, _ = mgr.StoreState()
	want = store.ReplayFrom(f.base, f.shadow)
	for i := range f.registered {
		f.registered[i] = false
	}
	for i, n := range f.sims {
		if _, ok := got.Nodes[n.name]; ok {
			f.registered[i] = true
		}
	}
	return got, want, nil
}

// tickNodes advances every sim node one control period. Nodes tick
// whether or not the manager is alive (capping is out-of-band).
func (f *Fleet) tickNodes() {
	for _, n := range f.sims {
		n.tick()
	}
}

// applyEvent executes one scheduled event, updating verdict counters
// and (for restarts) running the recovery-integrity check.
func (f *Fleet) applyEvent(e Event, iv *invariants, v *Verdict) error {
	n := f.sims[e.Node]
	switch e.Kind {
	case EvPartition:
		n.setLink(true, false)
		if f.scenario.Wire {
			f.transports[e.Node].SetProfile(faults.Profile{
				Seed: f.scenario.Seed + int64(e.Node) + 1, DialErrorProb: 1, DropWrites: true,
			})
		}
	case EvPartitionAsym:
		// Wire mode cannot lose only responses; degrade to symmetric.
		n.setLink(f.scenario.Wire, !f.scenario.Wire)
		if f.scenario.Wire {
			f.transports[e.Node].SetProfile(faults.Profile{
				Seed: f.scenario.Seed + int64(e.Node) + 1, DialErrorProb: 1, DropWrites: true,
			})
		}
	case EvHeal:
		n.setLink(false, false)
		if f.scenario.Wire {
			f.transports[e.Node].SetProfile(faults.Profile{Seed: f.scenario.Seed + int64(e.Node) + 1})
		}
	case EvSensorStorm:
		n.setSensorProfile(faults.PlantProfile{
			Seed: f.scenario.Seed + int64(e.Node)*7919, DropoutProb: 1,
		})
	case EvSensorHeal:
		n.setSensorProfile(faults.PlantProfile{Seed: f.scenario.Seed + int64(e.Node)*7919})
	case EvCrash:
		if f.mgr == nil {
			return nil
		}
		lost, err := f.crash(e.TornBytes)
		if err != nil {
			return err
		}
		v.Crashes++
		v.LostRecords += lost
	case EvRestart:
		if f.mgr != nil {
			return nil
		}
		got, want, err := f.restart()
		if err != nil {
			return err
		}
		v.Restarts++
		iv.checkRecovery(e.Tick, got, want)
	case EvRemoveNode:
		if err := f.removeNode(e.Node); err != nil {
			return nil // unknown node after a rolled-back add; expected
		}
	case EvAddNode:
		if f.mgr == nil || f.registered[e.Node] {
			return nil
		}
		if err := f.addNode(e.Node); err != nil {
			return nil // link down; the dial failing IS the chaos
		}
	case EvKillPrimary:
		if err := f.haKill(e, v); err != nil {
			return err
		}
	case EvRevive:
		if err := f.haRevive(v); err != nil {
			return err
		}
	case EvLeaseStall:
		if f.ha.leaderIdx >= 0 {
			f.ha.members[f.ha.leaderIdx].stalled = true
		}
	case EvReplDown:
		f.ha.replDown = true
		f.ha.feed = nil
	case EvReplHeal:
		f.ha.replDown = false
	case EvReplTear:
		f.ha.pendingTear = e.TornBytes
	default:
		return fmt.Errorf("chaos: unknown event kind %q", e.Kind)
	}
	v.EventsApplied++
	return nil
}

// stop releases fleet resources (managers, wire listeners).
func (f *Fleet) stop() {
	if f.ha != nil {
		f.ha.stop()
		f.mgr = nil
	} else if f.mgr != nil {
		f.mgr.Close()
		f.mgr = nil
	}
	for _, n := range f.sims {
		n.srv.Close()
	}
}
