package chaos

import (
	"fmt"
	"reflect"

	"nodecap/internal/dcm/store"
)

// Invariant names (the keys of Verdict.Checks).
const (
	InvCapRespected       = "cap_respected"
	InvBudgetConserved    = "budget_conserved"
	InvNoFailSafeSpeedup  = "no_failsafe_speedup"
	InvRecoveryIntegrity  = "recovery_integrity"
	InvSingleWriter       = "single_writer"
	InvReplicaConvergence = "replica_convergence"
)

// Checker tuning.
const (
	// TolWatts is the slack allowed over an applied cap: sensor noise
	// (±0.4 W) plus controller guard-band dithering.
	TolWatts = 2.0
	// SustainTicks is how many consecutive settled over-cap ticks
	// constitute a violation (a transient dither spike is not).
	SustainTicks = 8
	// SettleTicks is the convergence window granted after a material
	// cap change before the cap is enforced by the checker.
	SettleTicks = 40

	maxRecordedViolations = 25

	// violationTraceWindow is how many trailing control-decision trace
	// events each recorded violation carries for post-mortem context.
	violationTraceWindow = 12
)

// invariants is the per-run checker state.
type invariants struct {
	f      *Fleet
	budget float64

	checks         map[string]int
	violations     []Violation
	violationCount int
}

func newInvariants(f *Fleet, budget float64) *invariants {
	return &invariants{
		f:      f,
		budget: budget,
		checks: map[string]int{
			InvCapRespected:       0,
			InvBudgetConserved:    0,
			InvNoFailSafeSpeedup:  0,
			InvRecoveryIntegrity:  0,
			InvSingleWriter:       0,
			InvReplicaConvergence: 0,
		},
		violations: []Violation{},
	}
}

func (iv *invariants) violate(format string, args ...any) {
	iv.violationCount++
	if len(iv.violations) < maxRecordedViolations {
		iv.violations = append(iv.violations, Violation{
			Msg:   fmt.Sprintf(format, args...),
			Trace: iv.f.trace.Tail(violationTraceWindow, ""),
		})
	}
}

// checkTick asserts the fleet-wide per-node invariants in ONE fused
// pass over the engine's structure-of-arrays audit view, under a
// single engine lock — one mutex acquisition per tick instead of one
// per node per invariant, which is what makes a 10k-node × 10k-tick
// audit affordable. Then the budget invariant sums the manager's
// desired caps (allocation-free).
//
// The per-node invariants:
//
//   - cap_respected: no node's sustained TRUE power exceeds the cap
//     its own BMC has applied (not the manager's desired cap — a
//     partitioned node correctly keeps enforcing the last cap it
//     heard) beyond tolerance. Exempt while: the policy is disabled,
//     the cap is below the platform floor (applied-but-infeasible,
//     the paper's 120 W rows), the controller is in fail-safe (it
//     refuses to actuate on a lying sensor), the sensor fault
//     injector is active (a plant told to ignore actuations cannot
//     honour anything), or the cap changed within the settle window.
//   - no_failsafe_speedup: while the controller distrusts its sensor
//     (fail-safe), the plant must never step a P-state up, and must
//     never run faster than the configured fail-safe floor.
//     Observations are the pre/post snapshots the engine recorded
//     during the tick, so a policy push between the tick and this
//     check cannot blur them.
//   - single_writer: the fencing epoch actuating a node's plant never
//     moves backwards. The engine records, past the server-side
//     fence, the highest epoch that ever reached each node and counts
//     pushes carrying a lower one; any such regression means a
//     deposed leader's command actuated hardware after a newer
//     leader's — split-brain, the exact thing the fence exists to
//     make impossible. The count is consumed against a watermark so
//     each regression is reported once, at the tick it happened.
func (iv *invariants) checkTick(tick int) {
	e := iv.f.eng
	p := e.Params()
	floor := e.FloorWatts()
	fsFloor := int32(p.FailSafePState)
	var capChecks, fsChecks, writerChecks int

	e.Lock()
	a := e.Audit()
	n := e.Nodes()
	for i := 0; i < n; i++ {
		// cap_respected
		capW := a.CapWatts[i]
		eligible := a.CapEnabled[i] &&
			!a.PostFailSafe[i] &&
			!a.Dropout[i] &&
			capW >= floor-1e-9 &&
			a.SinceCapChange[i] > SettleTicks
		if !eligible {
			a.OverTicks[i] = 0
		} else {
			capChecks++
			truth := p.P0Watts - p.WattsPerPState*float64(a.PState[i]) - p.WattsPerGate*float64(a.Gating[i])
			if truth > capW+TolWatts {
				a.OverTicks[i]++
			} else {
				a.OverTicks[i] = 0
			}
			if a.OverTicks[i] == SustainTicks {
				iv.violate("tick %d: %s: %s: true power %.2f W above applied cap %.2f W for %d settled ticks",
					tick, e.Name(i), InvCapRespected, truth, capW, a.OverTicks[i])
			}
		}

		// no_failsafe_speedup
		fsChecks++
		pre, post := a.PrePState[i], a.PostPState[i]
		if a.PreFailSafe[i] && a.PostFailSafe[i] && post < pre {
			iv.violate("tick %d: %s: %s: P-state stepped up %d→%d during fail-safe",
				tick, e.Name(i), InvNoFailSafeSpeedup, pre, post)
		} else if a.PostFailSafe[i] && post < fsFloor {
			iv.violate("tick %d: %s: %s: P%d faster than fail-safe floor P%d",
				tick, e.Name(i), InvNoFailSafeSpeedup, post, fsFloor)
		}

		// single_writer
		writerChecks++
		reg, prev := a.EpochRegressions[i], a.RegSeen[i]
		a.RegSeen[i] = reg
		if reg > prev {
			iv.violate("tick %d: %s: %s: %d stale-epoch actuation(s) reached the plant",
				tick, e.Name(i), InvSingleWriter, reg-prev)
		}
	}
	e.Unlock()

	iv.checks[InvCapRespected] += capChecks
	iv.checks[InvNoFailSafeSpeedup] += fsChecks
	iv.checks[InvSingleWriter] += writerChecks
	iv.checkBudgetConserved(tick)
}

// checkBudgetConserved: the sum of the manager's enabled desired caps
// never exceeds the group budget. This must hold across crash-restart
// rollback too, which is exactly why ApplyBudget pushes (and
// journals) decreases before increases: every journal prefix sums
// within budget. Skipped while the manager is down — there is no
// allocator state to audit.
func (iv *invariants) checkBudgetConserved(tick int) {
	if iv.f.mgr == nil {
		return
	}
	sum := iv.f.mgr.DesiredCapSum()
	iv.checks[InvBudgetConserved]++
	if sum > iv.budget+1e-6 {
		iv.violate("tick %d: %s: allocated caps sum %.3f W over budget %.3f W",
			tick, InvBudgetConserved, sum, iv.budget)
	}
}

// checkReplicaConvergence: at a failover, the state the promoted
// standby recovered from its replicated journal (after the torn-tail
// cut) must equal the fold of the primary's journaled history up to
// the acknowledged replication cursor minus the torn records —
// verified against the harness's independent leader book, so a
// corrupted or skipped frame anywhere in the replication path shows up
// as divergence.
func (iv *invariants) checkReplicaConvergence(tick int, got, want store.State) {
	iv.checks[InvReplicaConvergence]++
	if !reflect.DeepEqual(normalizeState(got), normalizeState(want)) {
		iv.violate("tick %d: %s: promoted standby diverges from primary's journaled history: got %+v, want %+v",
			tick, InvReplicaConvergence, got, want)
	}
}

// checkRecovery: after a crash-restart, the state the reopened store
// recovered must equal the fold of every shadow-tracked operation
// that survived the torn cut — nothing more (resurrected writes),
// nothing less (lost acknowledged writes), nothing skewed (float or
// codec drift).
func (iv *invariants) checkRecovery(tick int, got, want store.State) {
	iv.checks[InvRecoveryIntegrity]++
	if !reflect.DeepEqual(normalizeState(got), normalizeState(want)) {
		iv.violate("tick %d: %s: recovered state diverges from journaled history: got %+v, want %+v",
			tick, InvRecoveryIntegrity, got, want)
	}
}

// normalizeState maps an empty node set and budget to canonical nil
// forms so DeepEqual compares semantics, not map allocation identity.
func normalizeState(s store.State) store.State {
	if len(s.Nodes) == 0 {
		s.Nodes = nil
	}
	if s.Budget != nil && len(s.Budget.Group) == 0 {
		b := *s.Budget
		b.Group = nil
		s.Budget = &b
	}
	return s
}
