package chaos

import (
	"fmt"
	"reflect"

	"nodecap/internal/dcm"
	"nodecap/internal/dcm/store"
)

// Invariant names (the keys of Verdict.Checks).
const (
	InvCapRespected       = "cap_respected"
	InvBudgetConserved    = "budget_conserved"
	InvNoFailSafeSpeedup  = "no_failsafe_speedup"
	InvRecoveryIntegrity  = "recovery_integrity"
	InvSingleWriter       = "single_writer"
	InvReplicaConvergence = "replica_convergence"
	InvCapPushBounded     = "cap_push_bounded"
	InvNoStarvation       = "no_starvation"
	InvTreeBudget         = "tree_budget_conserved"
	InvSingleOwner        = "single_owner"
)

// Checker tuning.
const (
	// TolWatts is the slack allowed over an applied cap: sensor noise
	// (±0.4 W) plus controller guard-band dithering.
	TolWatts = 2.0
	// SustainTicks is how many consecutive settled over-cap ticks
	// constitute a violation (a transient dither spike is not).
	SustainTicks = 8
	// SettleTicks is the convergence window granted after a material
	// cap change before the cap is enforced by the checker.
	SettleTicks = 40

	maxRecordedViolations = 25

	// violationTraceWindow is how many trailing control-decision trace
	// events each recorded violation carries for post-mortem context.
	violationTraceWindow = 12

	// CapPushBoundTicks is cap_push_bounded's deadline: a cap allocated
	// to a clean-link node must be applied by that node's BMC within
	// this many ticks, no matter how much of the rest of the fleet is
	// slow or flapping — the end-to-end guarantee the priority lane and
	// breaker isolation exist to provide.
	CapPushBoundTicks = 60

	// StarvationRounds is no_starvation's deadline, in poll rounds: a
	// clean-link node must have its power reading fetched at least once
	// every StarvationRounds rounds. Sized to let a just-healed node sit
	// out a full quarantine hold plus a few probe gates before the
	// checker calls it starved.
	StarvationRounds = 16

	// capPushTolW absorbs the wire codec's 0.01 W cap resolution when
	// matching an applied cap against the allocated one.
	capPushTolW = 0.011
)

// invariants is the per-run checker state.
type invariants struct {
	f      *Fleet
	budget float64

	// Gray-failure checker state (solo scenarios only; the HA pair
	// resets manager-side counters at every promotion). pollRounds
	// counts completed manager poll rounds; lastSampled[i] is the round
	// node i's power reading was last fetched (frozen while the node is
	// ineligible). pending* track the newest budget allocation to each
	// clean-link node that its BMC has not yet applied. elig/sampledBuf
	// are reused snapshot buffers.
	gray        bool
	pollRounds  int
	lastSampled []int
	pendingOn   []bool
	pendingCap  []float64
	pendingTick []int
	elig        []bool
	sampledBuf  []bool

	checks         map[string]int
	violations     []Violation
	violationCount int
}

func newInvariants(f *Fleet, budget float64) *invariants {
	n := f.scenario.Nodes
	return &invariants{
		f:           f,
		budget:      budget,
		gray:        !f.scenario.HA && f.scenario.Shards == 0,
		lastSampled: make([]int, n),
		pendingOn:   make([]bool, n),
		pendingCap:  make([]float64, n),
		pendingTick: make([]int, n),
		elig:        make([]bool, n),
		sampledBuf:  make([]bool, n),
		checks: map[string]int{
			InvCapRespected:       0,
			InvBudgetConserved:    0,
			InvNoFailSafeSpeedup:  0,
			InvRecoveryIntegrity:  0,
			InvSingleWriter:       0,
			InvReplicaConvergence: 0,
			InvCapPushBounded:     0,
			InvNoStarvation:       0,
			InvTreeBudget:         0,
			InvSingleOwner:        0,
		},
		violations: []Violation{},
	}
}

// notePoll records one completed manager poll round, consuming the
// fleet's sampled marks into the starvation clock.
func (iv *invariants) notePoll() {
	if !iv.gray {
		return
	}
	iv.pollRounds++
	iv.f.takeSampled(iv.sampledBuf)
	for i, s := range iv.sampledBuf {
		if s {
			iv.lastSampled[i] = iv.pollRounds
		}
	}
}

// noteAllocs arms cap_push_bounded for every allocation handed to a
// clean-link node: its BMC must apply that cap within
// CapPushBoundTicks. Allocations to sick nodes are not tracked — the
// bound is a promise about healthy nodes under a degraded fleet, not
// about the degraded nodes themselves.
func (iv *invariants) noteAllocs(allocs []dcm.Allocation, tick int) {
	if !iv.gray || iv.f.mgr == nil {
		return
	}
	iv.f.refreshElig(iv.elig)
	for _, a := range allocs {
		i, ok := iv.f.nameIdx[a.Name]
		if !ok || !iv.f.registered[i] || !iv.elig[i] || a.CapWatts <= 0 {
			continue
		}
		// A re-allocation to a still-unresolved node updates the cap to
		// match but keeps the original deadline: the node has owed *some*
		// applied cap since the first unmet allocation, and restarting
		// the clock every rebalance would let a wedged push path skate
		// forever.
		if !iv.pendingOn[i] {
			iv.pendingTick[i] = tick
		}
		iv.pendingOn[i] = true
		iv.pendingCap[i] = a.CapWatts
	}
}

// clearGray drops all armed cap-push deadlines and rebases the
// starvation clock — called while the manager is down (there is no
// pusher or poller to hold to a deadline).
func (iv *invariants) clearGray() {
	for i := range iv.pendingOn {
		iv.pendingOn[i] = false
		iv.lastSampled[i] = iv.pollRounds
	}
}

func (iv *invariants) violate(format string, args ...any) {
	iv.violationCount++
	if len(iv.violations) < maxRecordedViolations {
		iv.violations = append(iv.violations, Violation{
			Msg:   fmt.Sprintf(format, args...),
			Trace: iv.f.trace.Tail(violationTraceWindow, ""),
		})
	}
}

// checkTick asserts the fleet-wide per-node invariants in ONE fused
// pass over the engine's structure-of-arrays audit view, under a
// single engine lock — one mutex acquisition per tick instead of one
// per node per invariant, which is what makes a 10k-node × 10k-tick
// audit affordable. Then the budget invariant sums the manager's
// desired caps (allocation-free).
//
// The per-node invariants:
//
//   - cap_respected: no node's sustained TRUE power exceeds the cap
//     its own BMC has applied (not the manager's desired cap — a
//     partitioned node correctly keeps enforcing the last cap it
//     heard) beyond tolerance. Exempt while: the policy is disabled,
//     the cap is below the platform floor (applied-but-infeasible,
//     the paper's 120 W rows), the controller is in fail-safe (it
//     refuses to actuate on a lying sensor), the sensor fault
//     injector is active (a plant told to ignore actuations cannot
//     honour anything), or the cap changed within the settle window.
//   - no_failsafe_speedup: while the controller distrusts its sensor
//     (fail-safe), the plant must never step a P-state up, and must
//     never run faster than the configured fail-safe floor.
//     Observations are the pre/post snapshots the engine recorded
//     during the tick, so a policy push between the tick and this
//     check cannot blur them.
//   - single_writer: the fencing epoch actuating a node's plant never
//     moves backwards. The engine records, past the server-side
//     fence, the highest epoch that ever reached each node and counts
//     pushes carrying a lower one; any such regression means a
//     deposed leader's command actuated hardware after a newer
//     leader's — split-brain, the exact thing the fence exists to
//     make impossible. The count is consumed against a watermark so
//     each regression is reported once, at the tick it happened.
//
// Two more ride the same fused pass in gray-failure (solo) scenarios:
//
//   - cap_push_bounded: every budget allocation handed to a clean-link
//     node is applied by that node's BMC within CapPushBoundTicks,
//     however degraded the rest of the fleet is. A node that turns
//     sick mid-deadline is released from it.
//   - no_starvation: every clean-link node's power reading is fetched
//     at least once every StarvationRounds poll rounds — breaker
//     holds, brownout shedding and busy-skips may delay a sample but
//     never orphan a healthy node.
func (iv *invariants) checkTick(tick int) {
	e := iv.f.eng
	p := e.Params()
	floor := e.FloorWatts()
	fsFloor := int32(p.FailSafePState)
	var capChecks, fsChecks, writerChecks, pushChecks int

	grayOn := iv.gray
	if grayOn {
		if iv.f.mgr == nil {
			iv.clearGray()
			grayOn = false
		} else {
			iv.f.refreshElig(iv.elig)
		}
	}

	e.Lock()
	a := e.Audit()
	n := e.Nodes()
	for i := 0; i < n; i++ {
		// cap_respected
		capW := a.CapWatts[i]
		eligible := a.CapEnabled[i] &&
			!a.PostFailSafe[i] &&
			!a.Dropout[i] &&
			capW >= floor-1e-9 &&
			a.SinceCapChange[i] > SettleTicks
		if !eligible {
			a.OverTicks[i] = 0
		} else {
			capChecks++
			truth := p.P0Watts - p.WattsPerPState*float64(a.PState[i]) - p.WattsPerGate*float64(a.Gating[i])
			if truth > capW+TolWatts {
				a.OverTicks[i]++
			} else {
				a.OverTicks[i] = 0
			}
			if a.OverTicks[i] == SustainTicks {
				iv.violate("tick %d: %s: %s: true power %.2f W above applied cap %.2f W for %d settled ticks",
					tick, e.Name(i), InvCapRespected, truth, capW, a.OverTicks[i])
			}
		}

		// no_failsafe_speedup
		fsChecks++
		pre, post := a.PrePState[i], a.PostPState[i]
		if a.PreFailSafe[i] && a.PostFailSafe[i] && post < pre {
			iv.violate("tick %d: %s: %s: P-state stepped up %d→%d during fail-safe",
				tick, e.Name(i), InvNoFailSafeSpeedup, pre, post)
		} else if a.PostFailSafe[i] && post < fsFloor {
			iv.violate("tick %d: %s: %s: P%d faster than fail-safe floor P%d",
				tick, e.Name(i), InvNoFailSafeSpeedup, post, fsFloor)
		}

		// single_writer
		writerChecks++
		reg, prev := a.EpochRegressions[i], a.RegSeen[i]
		a.RegSeen[i] = reg
		if reg > prev {
			iv.violate("tick %d: %s: %s: %d stale-epoch actuation(s) reached the plant",
				tick, e.Name(i), InvSingleWriter, reg-prev)
		}

		// cap_push_bounded
		if grayOn && iv.pendingOn[i] {
			switch {
			case !iv.f.registered[i] || !iv.elig[i]:
				// The node turned sick (or left the group) mid-deadline;
				// the bound is only promised to healthy members.
				iv.pendingOn[i] = false
			case a.CapEnabled[i] &&
				a.CapWatts[i] >= iv.pendingCap[i]-capPushTolW &&
				a.CapWatts[i] <= iv.pendingCap[i]+capPushTolW:
				iv.pendingOn[i] = false
				pushChecks++
			case tick-iv.pendingTick[i] > CapPushBoundTicks:
				iv.violate("tick %d: %s: %s: cap %.2f W allocated at tick %d still not applied after %d ticks",
					tick, e.Name(i), InvCapPushBounded, iv.pendingCap[i], iv.pendingTick[i], tick-iv.pendingTick[i])
				iv.pendingOn[i] = false
				pushChecks++
			}
		}
	}
	e.Unlock()

	iv.checks[InvCapRespected] += capChecks
	iv.checks[InvNoFailSafeSpeedup] += fsChecks
	iv.checks[InvSingleWriter] += writerChecks
	iv.checks[InvCapPushBounded] += pushChecks
	if grayOn {
		iv.checkStarvation(tick)
	}
	iv.checkBudgetConserved(tick)
	if iv.f.sh != nil {
		iv.checkShardTick(tick)
	}
}

// checkShardTick asserts the sharded-tree invariants:
//
//   - single_owner: every cap push the plant admitted this tick was
//     carried by the node's CURRENT owning leaf. Handoffs run at event
//     time (tick start) and pushes after, so ownership is current when
//     the log drains. A push from anyone else means the fencing epoch
//     failed to depose the old writer — the dual-writer state
//     -break-handoff manufactures.
//   - tree_budget_conserved: the sum of enabled desired caps across
//     attached leaves (each node counted once, under its owner — a
//     seized leaf's caps are fenced void) never exceeds the datacenter
//     budget. When the cascade flagged the budget infeasible the bound
//     is the attached platform-minimum sum instead: the tree pins to
//     minimums rather than pushing caps the plants cannot honour. The
//     minimum sum is only computed on the slow path (sum over budget),
//     keeping the per-tick audit allocation-free at fleet scale.
func (iv *invariants) checkShardTick(tick int) {
	sh := iv.f.sh
	for _, p := range sh.drainPushes() {
		iv.checks[InvSingleOwner]++
		name := iv.f.name(p.node)
		owner, ok := sh.tree.Owner(name)
		if pusher := sh.leaves[p.leaf].name; !ok || owner != pusher {
			iv.violate("tick %d: %s: %s: plant admitted a cap push from leaf %s but the owner is %q",
				tick, name, InvSingleOwner, pusher, owner)
		}
	}

	iv.checks[InvTreeBudget]++
	sum := sh.tree.DesiredSum()
	if sum <= iv.budget+1e-6 {
		return
	}
	bound := iv.budget
	if sh.tree.Infeasible() {
		var minSum float64
		for _, lf := range sh.leaves {
			if lf.mgr != nil && !lf.isolated && !lf.crashed {
				for _, st := range lf.mgr.Nodes() {
					minSum += st.MinCapWatts
				}
			}
		}
		if sum <= minSum+1e-6 {
			return
		}
		bound = minSum
	}
	iv.violate("tick %d: %s: leaf-pushed caps sum %.3f W over datacenter budget bound %.3f W",
		tick, InvTreeBudget, sum, bound)
}

// checkStarvation asserts no_starvation against the poll-round clock:
// a clean-link registered node whose last sample is more than
// StarvationRounds rounds old has been orphaned by the defense layer.
// Ineligible nodes ride the clock at age zero, so a healing node owes
// nothing for time it was legitimately dark.
func (iv *invariants) checkStarvation(tick int) {
	for i := range iv.lastSampled {
		if !iv.f.registered[i] || !iv.elig[i] {
			iv.lastSampled[i] = iv.pollRounds
			continue
		}
		iv.checks[InvNoStarvation]++
		if iv.pollRounds-iv.lastSampled[i] > StarvationRounds {
			iv.violate("tick %d: %s: %s: healthy node unsampled for %d poll rounds (bound %d)",
				tick, iv.f.name(i), InvNoStarvation, iv.pollRounds-iv.lastSampled[i], StarvationRounds)
			iv.lastSampled[i] = iv.pollRounds
		}
	}
}

// checkBudgetConserved: the sum of the manager's enabled desired caps
// never exceeds the group budget. This must hold across crash-restart
// rollback too, which is exactly why ApplyBudget pushes (and
// journals) decreases before increases: every journal prefix sums
// within budget. Skipped while the manager is down — there is no
// allocator state to audit.
func (iv *invariants) checkBudgetConserved(tick int) {
	if iv.f.mgr == nil {
		return
	}
	sum := iv.f.mgr.DesiredCapSum()
	iv.checks[InvBudgetConserved]++
	if sum > iv.budget+1e-6 {
		iv.violate("tick %d: %s: allocated caps sum %.3f W over budget %.3f W",
			tick, InvBudgetConserved, sum, iv.budget)
	}
}

// checkReplicaConvergence: at a failover, the state the promoted
// standby recovered from its replicated journal (after the torn-tail
// cut) must equal the fold of the primary's journaled history up to
// the acknowledged replication cursor minus the torn records —
// verified against the harness's independent leader book, so a
// corrupted or skipped frame anywhere in the replication path shows up
// as divergence.
func (iv *invariants) checkReplicaConvergence(tick int, got, want store.State) {
	iv.checks[InvReplicaConvergence]++
	if !reflect.DeepEqual(normalizeState(got), normalizeState(want)) {
		iv.violate("tick %d: %s: promoted standby diverges from primary's journaled history: got %+v, want %+v",
			tick, InvReplicaConvergence, got, want)
	}
}

// checkRecovery: after a crash-restart, the state the reopened store
// recovered must equal the fold of every shadow-tracked operation
// that survived the torn cut — nothing more (resurrected writes),
// nothing less (lost acknowledged writes), nothing skewed (float or
// codec drift).
func (iv *invariants) checkRecovery(tick int, got, want store.State) {
	iv.checks[InvRecoveryIntegrity]++
	if !reflect.DeepEqual(normalizeState(got), normalizeState(want)) {
		iv.violate("tick %d: %s: recovered state diverges from journaled history: got %+v, want %+v",
			tick, InvRecoveryIntegrity, got, want)
	}
}

// normalizeState maps an empty node set and budget to canonical nil
// forms so DeepEqual compares semantics, not map allocation identity.
func normalizeState(s store.State) store.State {
	if len(s.Nodes) == 0 {
		s.Nodes = nil
	}
	if s.Budget != nil && len(s.Budget.Group) == 0 {
		b := *s.Budget
		b.Group = nil
		s.Budget = &b
	}
	return s
}
