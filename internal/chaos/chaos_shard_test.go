package chaos

import (
	"encoding/json"
	"runtime"
	"testing"
)

// TestShardHandoffScenarioHolds: leaves isolated and rejoined under
// load — every node's ownership migrates with fenced handoff, the
// isolated leaf's stale-budget pushes are refused by the plant-side
// fence, and the tree-wide budget stays conserved at every tick.
func TestShardHandoffScenarioHolds(t *testing.T) {
	v := mustRun(t, "shard-handoff", 7, 1200, 12)
	assertPass(t, v)
	if v.Shards != 4 {
		t.Errorf("expected 4 shards for 12 nodes, got %d", v.Shards)
	}
	if v.Handoffs == 0 {
		t.Error("scenario migrated no node ownership")
	}
	if v.Checks[InvTreeBudget] != v.Ticks {
		t.Errorf("tree_budget_conserved asserted %d times over %d ticks", v.Checks[InvTreeBudget], v.Ticks)
	}
	if v.Checks[InvSingleOwner] == 0 {
		t.Error("single_owner never audited an admitted push")
	}
	if v.FencedPushes == 0 {
		t.Error("no isolated-leaf push was ever fenced — the duel never happened")
	}
	if v.Checks[InvCapRespected] == 0 {
		t.Error("cap_respected never asserted")
	}
}

// TestLeafCrashScenarioHolds: leaf crash-restart cycles plus
// aggregator restarts from the journaled shard map.
func TestLeafCrashScenarioHolds(t *testing.T) {
	v := mustRun(t, "leaf-crash", 3, 1200, 12)
	assertPass(t, v)
	if v.LeafCrashes == 0 || v.LeafRestarts == 0 {
		t.Fatalf("scenario injected no leaf crash/restart pairs: %+v", v)
	}
	if v.AggRestarts == 0 {
		t.Error("scenario never restarted the aggregator")
	}
	if v.Handoffs == 0 {
		t.Error("no ownership ever migrated")
	}
}

// TestShardVerdictDeterministicAcrossParallelism: the sharded verdict
// is bit-identical across runs and across engine parallelism 1, 4, and
// NumCPU — parallelism is a throughput knob, not scenario identity.
func TestShardVerdictDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallel int) string {
		s, err := Build("shard-handoff", 7, 900, 12)
		if err != nil {
			t.Fatal(err)
		}
		s.Parallelism = parallel
		s.StateDir = t.TempDir()
		v, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	base := run(1)
	for _, p := range []int{1, 4, runtime.NumCPU()} {
		if got := run(p); got != base {
			t.Fatalf("verdict diverges at parallelism %d:\n%s\n%s", p, base, got)
		}
	}
}

// TestBrokenHandoffCaught: with the fencing-epoch bump skipped on
// migration, a deposed leaf's pushes are admitted next to the new
// owner's — single_owner MUST flag the dual writers.
func TestBrokenHandoffCaught(t *testing.T) {
	s, err := Build("shard-handoff", 7, 1200, 12)
	if err != nil {
		t.Fatal(err)
	}
	s.BreakHandoff = true
	s.StateDir = t.TempDir()
	v, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("broken handoff not caught by the invariant checker")
	}
	found := false
	for _, viol := range v.Violations {
		if contains(viol.Msg, InvSingleOwner) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("violations do not implicate %s: %v", InvSingleOwner, v.Violations)
	}
}

// TestBrokenAggregatorCaught: with the cascade over-allocating 1.5×
// per leaf, the leaf-pushed cap sum blows past the datacenter budget —
// tree_budget_conserved MUST flag it.
func TestBrokenAggregatorCaught(t *testing.T) {
	s, err := Build("shard-handoff", 7, 600, 12)
	if err != nil {
		t.Fatal(err)
	}
	s.BreakAggregator = true
	s.StateDir = t.TempDir()
	v, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("broken aggregator not caught by the invariant checker")
	}
	found := false
	for _, viol := range v.Violations {
		if contains(viol.Msg, InvTreeBudget) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("violations do not implicate %s: %v", InvTreeBudget, v.Violations)
	}
}

// TestShardScenarioValidation: sharded event kinds and modes are
// rejected outside sharded scenarios, and vice versa.
func TestShardScenarioValidation(t *testing.T) {
	if _, err := Run(Scenario{Name: "x", Ticks: 10, Nodes: 2, Events: []Event{{Tick: 1, Kind: EvLeafIsolate}}}); err == nil {
		t.Error("leaf event accepted without Shards")
	}
	if _, err := Run(Scenario{Name: "x", Ticks: 10, Nodes: 2, Shards: 2, Events: []Event{{Tick: 1, Kind: EvLeafCrash, Leaf: 5}}}); err == nil {
		t.Error("out-of-range leaf target accepted")
	}
	if _, err := Run(Scenario{Name: "x", Ticks: 10, Nodes: 2, Shards: 2, HA: true}); err == nil {
		t.Error("sharded+HA accepted")
	}
	if _, err := Run(Scenario{Name: "x", Ticks: 10, Nodes: 2, Shards: 2, Wire: true}); err == nil {
		t.Error("sharded+wire accepted")
	}
	if _, err := Run(Scenario{Name: "x", Ticks: 10, Nodes: 2, Shards: 2, Events: []Event{{Tick: 1, Kind: EvCrash}}}); err == nil {
		t.Error("solo crash event accepted in sharded scenario")
	}
}
