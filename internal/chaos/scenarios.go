package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// ScenarioNames lists the built-in scenario generators, in the order
// `cmd/chaos -list` prints them.
var ScenarioNames = []string{
	"partition", "crash-restart", "sensor-storm", "churn", "mixed",
	"latency-storm", "flapper", "slow-herd",
	"failover-kill", "fence-duel", "replica-torn-tail",
	"shard-handoff", "leaf-crash",
}

// Build generates the named scenario's event schedule. The schedule
// is a pure function of (name, seed, ticks, nodes): the same inputs
// yield a bit-identical Scenario.
func Build(name string, seed int64, ticks, nodes int) (Scenario, error) {
	if ticks <= 0 {
		return Scenario{}, fmt.Errorf("chaos: ticks must be positive, got %d", ticks)
	}
	if nodes <= 0 {
		return Scenario{}, fmt.Errorf("chaos: nodes must be positive, got %d", nodes)
	}
	s := Scenario{Name: name, Seed: seed, Ticks: ticks, Nodes: nodes}
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "partition":
		s.Events = partitionEvents(rng, ticks, nodes, 0, nodes)
	case "crash-restart":
		s.Events = crashEvents(rng, ticks)
	case "sensor-storm":
		s.Events = stormEvents(rng, ticks, nodes, 0, nodes)
	case "churn":
		s.Events = churnEvents(rng, ticks, nodes, 0, nodes)
	case "mixed":
		// Disjoint node thirds keep the fault classes from fighting
		// over one node (a partitioned node cannot be re-added, a
		// storming node's caps are fail-safe-exempt anyway); crashes
		// hit the manager globally.
		third := nodes / 3
		if third == 0 {
			third = 1
		}
		var ev []Event
		ev = append(ev, partitionEvents(rng, ticks, nodes, 0, third)...)
		ev = append(ev, stormEvents(rng, ticks, nodes, third, 2*third)...)
		ev = append(ev, churnEvents(rng, ticks, nodes, 2*third, nodes)...)
		ev = append(ev, crashEvents(rng, ticks)...)
		s.Events = ev
	case "latency-storm":
		s.Events = latencyEvents(rng, ticks, nodes, 0, nodes)
	case "flapper":
		s.Events = flapEvents(rng, ticks, nodes, 0, nodes)
	case "slow-herd":
		s.Events = herdEvents(rng, ticks, nodes)
	case "failover-kill":
		s.HA = true
		s.Events = failoverEvents(rng, ticks)
	case "fence-duel":
		s.HA = true
		s.Events = duelEvents(rng, ticks)
	case "replica-torn-tail":
		s.HA = true
		s.Events = replicaTearEvents(rng, ticks)
	case "shard-handoff":
		s.Shards = shardCountFor(nodes)
		s.Events = shardHandoffEvents(rng, ticks, s.Shards)
	case "leaf-crash":
		s.Shards = shardCountFor(nodes)
		s.Events = leafCrashEvents(rng, ticks, s.Shards)
	default:
		return Scenario{}, fmt.Errorf("chaos: unknown scenario %q (have %s)",
			name, strings.Join(ScenarioNames, ", "))
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].Tick < s.Events[j].Tick })
	return s, nil
}

// pick returns a node index in [lo, hi) (hi clamped to nodes).
func pick(rng *rand.Rand, lo, hi, nodes int) int {
	if hi > nodes {
		hi = nodes
	}
	if hi <= lo {
		return lo % nodes
	}
	return lo + rng.Intn(hi-lo)
}

// partitionEvents cuts links in [lo,hi) for random windows; every
// third cut is asymmetric (commands land, acknowledgements vanish).
func partitionEvents(rng *rand.Rand, ticks, nodes, lo, hi int) []Event {
	var ev []Event
	cycle := 0
	// Start after the first rebalance so there are caps to defend.
	for t := DefaultRebalanceEvery + 10 + rng.Intn(20); t < ticks-60; t += 80 + rng.Intn(80) {
		n := pick(rng, lo, hi, nodes)
		kind := EvPartition
		if cycle%3 == 2 {
			kind = EvPartitionAsym
		}
		cycle++
		heal := t + 30 + rng.Intn(60)
		if heal >= ticks-5 {
			heal = ticks - 5
		}
		ev = append(ev,
			Event{Tick: t, Kind: kind, Node: n},
			Event{Tick: heal, Kind: EvHeal, Node: n},
		)
	}
	return ev
}

// stormEvents blinds sensors in [lo,hi) for windows long enough to
// force fail-safe entry (> FaultToleranceTicks) and recovery
// (> RecoveryTicks after heal).
func stormEvents(rng *rand.Rand, ticks, nodes, lo, hi int) []Event {
	var ev []Event
	for t := DefaultRebalanceEvery + 15 + rng.Intn(20); t < ticks-80; t += 100 + rng.Intn(80) {
		n := pick(rng, lo, hi, nodes)
		heal := t + 25 + rng.Intn(50)
		if heal >= ticks-20 {
			heal = ticks - 20
		}
		ev = append(ev,
			Event{Tick: t, Kind: EvSensorStorm, Node: n},
			Event{Tick: heal, Kind: EvSensorHeal, Node: n},
		)
	}
	return ev
}

// churnEvents removes and re-adds nodes in [lo,hi) under load.
func churnEvents(rng *rand.Rand, ticks, nodes, lo, hi int) []Event {
	var ev []Event
	for t := DefaultRebalanceEvery + 20 + rng.Intn(20); t < ticks-60; t += 90 + rng.Intn(70) {
		n := pick(rng, lo, hi, nodes)
		back := t + 20 + rng.Intn(40)
		if back >= ticks-5 {
			back = ticks - 5
		}
		ev = append(ev,
			Event{Tick: t, Kind: EvRemoveNode, Node: n},
			Event{Tick: back, Kind: EvAddNode, Node: n},
		)
	}
	return ev
}

// latencyEvents storms nodes in [lo,hi) with slow-but-alive windows:
// every exchange answers correctly but hundreds of µs late (an order
// of magnitude over the breaker's slow threshold), so the latency trip
// — not failure counting — must isolate the node.
func latencyEvents(rng *rand.Rand, ticks, nodes, lo, hi int) []Event {
	var ev []Event
	for t := DefaultRebalanceEvery + 10 + rng.Intn(20); t < ticks-60; t += 90 + rng.Intn(70) {
		n := pick(rng, lo, hi, nodes)
		heal := t + 30 + rng.Intn(50)
		if heal >= ticks-10 {
			heal = ticks - 10
		}
		ev = append(ev,
			Event{Tick: t, Kind: EvSlow, Node: n, LatencyUS: 250 + rng.Intn(200)},
			Event{Tick: heal, Kind: EvSlowHeal, Node: n},
		)
	}
	return ev
}

// flapEvents cycles links in [lo,hi) up and down on short periods for
// sustained windows — each down half-period fails the node's polls and
// each up half-period tempts the breaker to close again. The flap
// detector must quarantine rather than pay the probe tax forever.
func flapEvents(rng *rand.Rand, ticks, nodes, lo, hi int) []Event {
	var ev []Event
	for t := DefaultRebalanceEvery + 10 + rng.Intn(20); t < ticks-80; t += 110 + rng.Intn(70) {
		n := pick(rng, lo, hi, nodes)
		heal := t + 40 + rng.Intn(50)
		if heal >= ticks-15 {
			heal = ticks - 15
		}
		ev = append(ev,
			Event{Tick: t, Kind: EvFlap, Node: n, Period: 8 + rng.Intn(9)},
			Event{Tick: heal, Kind: EvFlapHeal, Node: n},
		)
	}
	return ev
}

// herdEvents storms half the fleet at once with long slow windows
// spanning several rebalances — the ISSUE's cap_push_bounded
// acceptance shape: caps allocated to the healthy half must still land
// on time while every slow node drags the poll loop toward brownout.
func herdEvents(rng *rand.Rand, ticks, nodes int) []Event {
	half := nodes / 2
	if half == 0 {
		half = 1
	}
	var ev []Event
	for t := DefaultRebalanceEvery + 10 + rng.Intn(15); t < ticks-100; t += 180 + rng.Intn(80) {
		heal := t + 70 + rng.Intn(60)
		if heal >= ticks-10 {
			heal = ticks - 10
		}
		lat := 250 + rng.Intn(150)
		for n := 0; n < half; n++ {
			ev = append(ev,
				Event{Tick: t, Kind: EvSlow, Node: n, LatencyUS: lat + 10*n},
				Event{Tick: heal, Kind: EvSlowHeal, Node: n},
			)
		}
	}
	return ev
}

// failoverEvents kills the acting leader mid-budget-push and revives
// the corpse as a standby once the survivor has taken over — repeated,
// so leadership ping-pongs between the members. Cycles are spaced so
// at most one member is ever dead (the promotion gate requires a
// synced replica) and each new leader has time to resync its peer.
func failoverEvents(rng *rand.Rand, ticks int) []Event {
	var ev []Event
	for t := 2*DefaultRebalanceEvery + 5 + rng.Intn(25); t < ticks-80; t += 140 + rng.Intn(100) {
		revive := t + 25 + rng.Intn(30)
		ev = append(ev,
			Event{Tick: t, Kind: EvKillPrimary, TornBytes: rng.Intn(1 << 17)},
			Event{Tick: revive, Kind: EvRevive},
		)
	}
	return ev
}

// duelEvents stages split-brain: the replication link drops, then the
// leader's lease renewals stall without stopping its manager — the
// standby times out the lease and promotes while the old leader keeps
// pushing caps on its stale epoch. The node-side fence must refuse
// every one. The healed link and revive let the loser rejoin before
// the next round.
func duelEvents(rng *rand.Rand, ticks int) []Event {
	var ev []Event
	for t := 2*DefaultRebalanceEvery + 5 + rng.Intn(25); t < ticks-120; t += 160 + rng.Intn(120) {
		ev = append(ev,
			Event{Tick: t, Kind: EvReplDown},
			Event{Tick: t, Kind: EvLeaseStall},
			Event{Tick: t + 35 + rng.Intn(10), Kind: EvReplHeal},
			Event{Tick: t + 65 + rng.Intn(10), Kind: EvRevive},
		)
	}
	return ev
}

// replicaTearEvents is failover with torn replicated journals: each
// kill is preceded by arming a torn-tail cut that lands on the
// standby's journal when it promotes, so recovery must hold on a
// replica that lost acknowledged records to the tear.
func replicaTearEvents(rng *rand.Rand, ticks int) []Event {
	var ev []Event
	for t := 2*DefaultRebalanceEvery + 5 + rng.Intn(25); t < ticks-80; t += 140 + rng.Intn(100) {
		revive := t + 25 + rng.Intn(30)
		ev = append(ev,
			Event{Tick: t - 1, Kind: EvReplTear, TornBytes: rng.Intn(1 << 16)},
			Event{Tick: t, Kind: EvKillPrimary, TornBytes: rng.Intn(1 << 17)},
			Event{Tick: revive, Kind: EvRevive},
		)
	}
	return ev
}

// shardCountFor sizes the leaf tier: 4 shards once the fleet is big
// enough for every shard to own a couple of nodes, 2 below that.
func shardCountFor(nodes int) int {
	if nodes >= 8 {
		return 4
	}
	return 2
}

// shardHandoffEvents rotates isolation across the leaves: each cycle
// partitions one leaf away from the aggregator — its shard migrates to
// the survivors with fenced handoff while the isolated manager keeps
// re-applying its stale budget — then heals it. Windows are long
// enough (≥ 30 ticks, more than a rebalance period) that the isolated
// leaf always duels the fence at least once, and cycles are spaced so
// at most one leaf is out at a time.
func shardHandoffEvents(rng *rand.Rand, ticks, shards int) []Event {
	var ev []Event
	leaf := 0
	for t := 2*DefaultRebalanceEvery + 5 + rng.Intn(20); t < ticks-80; t += 120 + rng.Intn(80) {
		rejoin := t + 30 + rng.Intn(40)
		ev = append(ev,
			Event{Tick: t, Kind: EvLeafIsolate, Leaf: leaf},
			Event{Tick: rejoin, Kind: EvLeafRejoin, Leaf: leaf},
		)
		leaf = (leaf + 1) % shards
	}
	return ev
}

// leafCrashEvents rotates crash-restart across the leaves, with an
// aggregator restart from the journaled shard map after every other
// cycle — ownership must be recovered exactly, every time.
func leafCrashEvents(rng *rand.Rand, ticks, shards int) []Event {
	var ev []Event
	leaf, cycle := 0, 0
	for t := 2*DefaultRebalanceEvery + 5 + rng.Intn(20); t < ticks-80; t += 140 + rng.Intn(80) {
		restart := t + 30 + rng.Intn(30)
		ev = append(ev,
			Event{Tick: t, Kind: EvLeafCrash, Leaf: leaf},
			Event{Tick: restart, Kind: EvLeafRestart, Leaf: leaf},
		)
		if cycle%2 == 1 {
			ev = append(ev, Event{Tick: restart + 15, Kind: EvAggRestart})
		}
		leaf = (leaf + 1) % shards
		cycle++
	}
	return ev
}

// crashEvents kills and restarts the manager with seeded torn-write
// offsets. Restart follows a few ticks later, so the fleet runs
// headless in between (caps keep being enforced out-of-band).
func crashEvents(rng *rand.Rand, ticks int) []Event {
	var ev []Event
	for t := 2*DefaultRebalanceEvery + 5 + rng.Intn(25); t < ticks-40; t += 130 + rng.Intn(110) {
		restart := t + 8 + rng.Intn(25)
		if restart >= ticks-10 {
			restart = ticks - 10
		}
		ev = append(ev,
			Event{Tick: t, Kind: EvCrash, TornBytes: rng.Intn(1 << 17)},
			Event{Tick: restart, Kind: EvRestart},
		)
	}
	return ev
}
