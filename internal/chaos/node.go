package chaos

import (
	"bytes"
	"errors"
	"fmt"

	"nodecap/internal/fleet"
	"nodecap/internal/ipmi"
)

var (
	errLinkDown = errors.New("chaos: link partitioned")
	errLinkAsym = errors.New("chaos: response lost (asymmetric partition)")
)

// nodeCtl adapts engine node i to ipmi.NodeControl, the BMC's
// management surface. All state lives in the fleet engine; the adapter
// carries only the index.
type nodeCtl struct {
	f *Fleet
	i int
}

func (c *nodeCtl) DeviceInfo() ipmi.DeviceInfo {
	return ipmi.DeviceInfo{
		DeviceID:       0x20,
		FirmwareMajor:  1,
		ManufacturerID: 343, // Intel's IANA enterprise number
		ProductID:      0x0C4A,
	}
}

// PowerReading reports the controller's smoothed estimate rather than
// a fresh sensor draw: management polls must not perturb the seeded
// per-tick noise stream, and DCM's demand signal is a recent average
// anyway.
func (c *nodeCtl) PowerReading() ipmi.PowerReading {
	// Feed for the no_starvation checker: the manager demonstrably read
	// this node's power since the last poll-round audit.
	c.f.markSampled(c.i)
	w := c.f.eng.ManagementWatts(c.i)
	return ipmi.PowerReading{CurrentWatts: w, AverageWatts: w}
}

// SetPowerLimit lands an admitted push on the engine. The engine
// records the actuation epoch for the single-writer invariant — this
// runs only for pushes the ipmi.Server fence admitted, so a regression
// there means a stale epoch actuated the plant. Infeasible caps are
// applied-but-flagged (the paper's 120 W rows); surfaced via Health,
// not as a wire error.
func (c *nodeCtl) SetPowerLimit(lim ipmi.PowerLimit) error {
	c.f.eng.PushPolicy(c.i, lim.Enabled, lim.CapWatts, lim.Epoch)
	return nil
}

func (c *nodeCtl) PowerLimit() ipmi.PowerLimit {
	enabled, capW := c.f.eng.Policy(c.i)
	return ipmi.PowerLimit{Enabled: enabled, CapWatts: capW}
}

func (c *nodeCtl) PStateInfo() ipmi.PStateInfo {
	i := c.f.eng.PState(c.i)
	return ipmi.PStateInfo{
		Index:   uint8(i),
		Count:   fleet.NumPStates,
		FreqMHz: uint16(3000 - 120*i),
	}
}

func (c *nodeCtl) GatingLevel() int {
	return c.f.eng.GatingLevel(c.i)
}

func (c *nodeCtl) Capabilities() ipmi.Capabilities {
	return ipmi.Capabilities{
		MinCapWatts: c.f.eng.FloorWatts(),
		MaxCapWatts: maxCapWatts,
	}
}

func (c *nodeCtl) Health() ipmi.Health {
	h := c.f.eng.NodeHealth(c.i)
	return ipmi.Health{
		FailSafe:      h.FailSafe,
		SensorFaults:  uint32(h.SensorFaults),
		InfeasibleCap: h.InfeasibleCap,
	}
}

// memLink implements dcm.BMC by round-tripping real wire frames
// through the node's ipmi.Server dispatch table in-process — the full
// codec path without socket timing. An asymmetric partition applies
// the request but loses the response, exactly the failure mode where
// a manager must not assume a failed push changed nothing.
type memLink struct {
	f   *Fleet
	i   int
	seq uint32
	// leaf is the sharded-mode leaf index whose manager owns this
	// connection (-1 for the solo/HA manager). Admitted cap pushes are
	// attributed to it for the single_owner checker.
	leaf int
}

func (l *memLink) call(cmd uint8, payload []byte) ([]byte, error) {
	down, asym := l.f.linkState(l.i)
	if down {
		return nil, errLinkDown
	}
	// A stormed node answers correctly but late: advance simulated time
	// by this exchange's jittered latency so the manager's clock reads
	// around the call measure the slowness for real.
	l.f.injectLatency(l.i)
	l.seq++
	req := ipmi.Frame{Seq: l.seq, NetFn: ipmi.NetFnOEM, Cmd: cmd, Payload: payload}
	b, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	onWire, err := ipmi.ReadFrame(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	resp := l.f.srvs[l.i].Handle(onWire)
	if asym {
		return nil, errLinkAsym
	}
	rb, err := resp.Marshal()
	if err != nil {
		return nil, err
	}
	back, err := ipmi.ReadFrame(bytes.NewReader(rb))
	if err != nil {
		return nil, err
	}
	if len(back.Payload) == 0 {
		return nil, errors.New("chaos: empty response payload")
	}
	switch cc := back.Payload[0]; cc {
	case ipmi.CCOK:
	case ipmi.CCStaleEpoch:
		// Surface the fencing verdict as the sentinel error, exactly as
		// the TCP client does, so the manager's fenced detection fires
		// through the in-process path too.
		return nil, ipmi.ErrStaleEpoch
	default:
		return nil, fmt.Errorf("chaos: completion code %#02x", cc)
	}
	return back.Payload[1:], nil
}

func (l *memLink) GetDeviceID() (ipmi.DeviceInfo, error) {
	p, err := l.call(ipmi.CmdGetDeviceID, nil)
	if err != nil {
		return ipmi.DeviceInfo{}, err
	}
	return ipmi.DecodeDeviceInfo(p)
}

func (l *memLink) GetPowerReading() (ipmi.PowerReading, error) {
	p, err := l.call(ipmi.CmdGetPowerReading, nil)
	if err != nil {
		return ipmi.PowerReading{}, err
	}
	return ipmi.DecodePowerReading(p)
}

func (l *memLink) SetPowerLimit(lim ipmi.PowerLimit) error {
	_, err := l.call(ipmi.CmdSetPowerLimit, ipmi.EncodePowerLimit(lim))
	if err == nil && l.leaf >= 0 && l.f.sh != nil {
		// The plant admitted this push on a leaf-attributed connection;
		// single_owner audits it against current tree ownership.
		l.f.notePush(l.i, l.leaf)
	}
	return err
}

func (l *memLink) GetPowerLimit() (ipmi.PowerLimit, error) {
	p, err := l.call(ipmi.CmdGetPowerLimit, nil)
	if err != nil {
		return ipmi.PowerLimit{}, err
	}
	return ipmi.DecodePowerLimit(p)
}

func (l *memLink) GetPStateInfo() (ipmi.PStateInfo, error) {
	p, err := l.call(ipmi.CmdGetPStateInfo, nil)
	if err != nil {
		return ipmi.PStateInfo{}, err
	}
	return ipmi.DecodePStateInfo(p)
}

func (l *memLink) GetGatingLevel() (int, error) {
	p, err := l.call(ipmi.CmdGetGatingLevel, nil)
	if err != nil {
		return 0, err
	}
	if len(p) < 1 {
		return 0, errors.New("chaos: short gating payload")
	}
	return int(p[0]), nil
}

func (l *memLink) GetCapabilities() (ipmi.Capabilities, error) {
	p, err := l.call(ipmi.CmdGetCapabilities, nil)
	if err != nil {
		return ipmi.Capabilities{}, err
	}
	return ipmi.DecodeCapabilities(p)
}

func (l *memLink) GetHealth() (ipmi.Health, error) {
	p, err := l.call(ipmi.CmdGetHealth, nil)
	if err != nil {
		return ipmi.Health{}, err
	}
	return ipmi.DecodeHealth(p)
}

func (l *memLink) Close() error { return nil }
