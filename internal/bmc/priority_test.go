package bmc

import (
	"testing"

	"nodecap/internal/telemetry"
)

// tierPlant is a scripted two-tier plant: power decreases linearly in
// each tier's P-state and each gating ladder. Serving and batch tiers
// have one core's worth of swing each; batch gating buys less than
// shared gating, as on the real ladder.
type tierPlant struct {
	servP, batchP   int
	sharedG, batchG int
	npstates        int
	maxSharedG      int
	maxBatchG       int
	floor           int
	base, perP      float64
	perSharedG      float64
	perBatchG       float64
}

func newTierPlant() *tierPlant {
	// 180 W with both tiers at P0 ungated; each tier's full P-state
	// swing is 15*1.0 = 15 W, shared gating up to 8*0.5 = 4 W, batch
	// gating up to 4*0.3 = 1.2 W.
	return &tierPlant{
		npstates: 16, maxSharedG: 8, maxBatchG: 4, floor: 5,
		base: 180, perP: 1.0, perSharedG: 0.5, perBatchG: 0.3,
	}
}

func clampi(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (p *tierPlant) PowerWatts() float64 {
	return p.base - float64(p.servP+p.batchP)*p.perP -
		float64(p.sharedG)*p.perSharedG - float64(p.batchG)*p.perBatchG
}
func (p *tierPlant) PStateIndex() int { return p.servP }
func (p *tierPlant) NumPStates() int  { return p.npstates }
func (p *tierPlant) SetPState(i int) {
	i = clampi(i, 0, p.npstates-1)
	p.servP, p.batchP = i, i
}
func (p *tierPlant) GatingLevel() int        { return p.sharedG }
func (p *tierPlant) MaxGatingLevel() int     { return p.maxSharedG }
func (p *tierPlant) SetGatingLevel(l int)    { p.sharedG = clampi(l, 0, p.maxSharedG) }
func (p *tierPlant) BatchPState() int        { return p.batchP }
func (p *tierPlant) SetBatchPState(i int)    { p.batchP = clampi(i, 0, p.npstates-1) }
func (p *tierPlant) ServingPState() int      { return p.servP }
func (p *tierPlant) SetServingPState(i int)  { p.servP = clampi(i, 0, p.npstates-1) }
func (p *tierPlant) ServingFloorPState() int { return p.floor }
func (p *tierPlant) BatchGatingLevel() int   { return p.batchG }
func (p *tierPlant) MaxBatchGatingLevel() int {
	return p.maxBatchG
}
func (p *tierPlant) SetBatchGatingLevel(l int) { p.batchG = clampi(l, 0, p.maxBatchG) }

var _ PriorityPlant = (*tierPlant)(nil)

// TestPriorityEscalationOrder drives an unreachable cap and checks the
// controller exhausts the mechanisms in the documented order: batch
// P-state, batch gating, serving down to its floor, shared gating,
// and only then the floor break down to the slowest P-state.
func TestPriorityEscalationOrder(t *testing.T) {
	p := newTierPlant()
	cfg := DefaultConfig()
	cfg.StepWattsPerPState = 0 // one step per tick: observable ordering
	b := New(cfg, p)
	if err := b.SetPolicy(Policy{Enabled: true, CapWatts: 100}); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}

	type stage func() bool
	stages := []struct {
		name string
		done stage
	}{
		{"batch P-state exhausted first", func() bool { return p.batchP == p.npstates-1 }},
		{"batch gating exhausted second", func() bool { return p.batchG == p.maxBatchG }},
		{"serving brought to its floor third", func() bool { return p.servP == p.floor }},
		{"shared gating exhausted fourth", func() bool { return p.sharedG == p.maxSharedG }},
		{"floor broken last", func() bool { return p.servP == p.npstates-1 }},
	}
	for si, st := range stages {
		for i := 0; i < 64 && !st.done(); i++ {
			b.Tick()
		}
		if !st.done() {
			t.Fatalf("stage %d (%s) never completed: plant %+v", si, st.name, *p)
		}
		// No later stage may have started while an earlier one had
		// headroom left.
		switch si {
		case 0:
			if p.batchG != 0 || p.servP != 0 || p.sharedG != 0 {
				t.Fatalf("stage %s: later mechanisms engaged early: %+v", st.name, *p)
			}
		case 1:
			if p.servP != 0 || p.sharedG != 0 {
				t.Fatalf("stage %s: serving/shared engaged before batch exhausted: %+v", st.name, *p)
			}
		case 2:
			if p.sharedG != 0 {
				t.Fatalf("stage %s: shared gating engaged before serving reached its floor: %+v", st.name, *p)
			}
		case 3:
			if p.servP != p.floor {
				t.Fatalf("stage %s: floor broken before shared gating exhausted: %+v", st.name, *p)
			}
		}
	}

	st := b.Stats()
	if st.BatchSteals == 0 || st.FloorHolds == 0 || st.FloorBreaks == 0 {
		t.Fatalf("stats did not record the escalation: %+v", st)
	}
	run(b, 10)
	if b.Stats().AtFloorTicks == 0 {
		t.Fatalf("fully escalated yet AtFloorTicks == 0: %+v", b.Stats())
	}
}

// TestPriorityFeasibleCapSparesServing checks a cap the batch tier can
// absorb alone never touches the serving tier.
func TestPriorityFeasibleCapSparesServing(t *testing.T) {
	p := newTierPlant()
	b := New(DefaultConfig(), p)
	// 170 W needs ~10 W: well inside the batch tier's 15 W swing.
	if err := b.SetPolicy(Policy{Enabled: true, CapWatts: 170}); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	run(b, 200)
	if p.servP != 0 || p.sharedG != 0 {
		t.Fatalf("feasible cap touched the serving tier: %+v", *p)
	}
	if p.batchP == 0 {
		t.Fatalf("batch tier never slowed under a 170 W cap: %+v", *p)
	}
	st := b.Stats()
	if st.BatchSteals == 0 {
		t.Fatalf("no batch steals recorded: %+v", st)
	}
	if st.FloorBreaks != 0 {
		t.Fatalf("floor broken under a feasible cap: %+v", st)
	}
}

// TestPriorityDeescalationRestoresServingFirst breaks the floor under
// an unreachable cap, then relaxes the cap and checks the serving tier
// is restored to its floor before anything else is given back.
func TestPriorityDeescalationRestoresServingFirst(t *testing.T) {
	p := newTierPlant()
	cfg := DefaultConfig()
	cfg.StepWattsPerPState = 0
	b := New(cfg, p)
	if err := b.SetPolicy(Policy{Enabled: true, CapWatts: 100}); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	run(b, 256)
	if p.servP != p.npstates-1 {
		t.Fatalf("setup: floor not broken: %+v", *p)
	}

	// Plenty of headroom now: 180-base plant fully escalated draws
	// ~143 W; a 200 W cap un-escalates everything.
	if err := b.SetPolicy(Policy{Enabled: true, CapWatts: 200}); err != nil {
		t.Fatalf("relax: %v", err)
	}
	for p.servP > p.floor {
		before := *p
		b.Tick()
		if p.batchG != before.batchG || p.batchP != before.batchP || p.sharedG != before.sharedG {
			t.Fatalf("batch/shared relaxed while serving still below its floor: %+v -> %+v", before, *p)
		}
	}
	run(b, 512)
	if p.servP != 0 || p.batchP != 0 || p.sharedG != 0 || p.batchG != 0 {
		t.Fatalf("full headroom did not fully de-escalate: %+v", *p)
	}
}

// TestPriorityFailSafeClampPerTier enters fail-safe with the batch
// tier already slower than the fail-safe floor and checks the clamp
// slows the serving tier without speeding the batch tier up.
func TestPriorityFailSafeClampPerTier(t *testing.T) {
	p := newTierPlant()
	cfg := FailSafeConfig()
	cfg.FailSafePState = 10
	b := New(cfg, p)
	if err := b.SetPolicy(Policy{Enabled: true, CapWatts: 170}); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	p.batchP = 14  // slower than the fail-safe floor
	p.base = -1000 // sensor now reads an implausible negative power
	run(b, cfg.FaultToleranceTicks+2)
	if !b.FailSafe() {
		t.Fatal("controller did not enter fail-safe")
	}
	if p.servP != 10 {
		t.Fatalf("serving tier not clamped to the fail-safe floor: %+v", *p)
	}
	if p.batchP != 14 {
		t.Fatalf("fail-safe clamp moved the batch tier (14 -> %d); it must never speed up on distrusted data", p.batchP)
	}
}

// TestPriorityTelemetry checks counters and trace events flow for the
// priority-specific decisions.
func TestPriorityTelemetry(t *testing.T) {
	p := newTierPlant()
	cfg := DefaultConfig()
	cfg.StepWattsPerPState = 0
	b := New(cfg, p)
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTrace(1024)
	b.SetTelemetry(reg, tr, "n1")
	if err := b.SetPolicy(Policy{Enabled: true, CapWatts: 100}); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	run(b, 256)

	st := b.Stats()
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"bmc_batch_steals_total", st.BatchSteals},
		{"bmc_floor_holds_total", st.FloorHolds},
		{"bmc_floor_breaks_total", st.FloorBreaks},
	} {
		if got := reg.Counter(c.name).Value(); got != c.want {
			t.Errorf("counter %s = %d, stats say %d", c.name, got, c.want)
		}
	}
	kinds := map[string]int{}
	for _, ev := range tr.Tail(1024, "n1") {
		kinds[ev.Kind]++
	}
	for _, k := range []string{telemetry.EvBatchSteal, telemetry.EvFloorHold, telemetry.EvFloorBreak} {
		if kinds[k] == 0 {
			t.Errorf("no %q trace events recorded; kinds seen: %v", k, kinds)
		}
	}
}

// TestPriorityDisableResetsBatchGating checks policy removal restores
// the batch-only ladder along with everything else.
func TestPriorityDisableResetsBatchGating(t *testing.T) {
	p := newTierPlant()
	b := New(DefaultConfig(), p)
	if err := b.SetPolicy(Policy{Enabled: true, CapWatts: 100}); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	run(b, 256)
	if p.batchG == 0 {
		t.Fatalf("setup: batch gating never engaged: %+v", *p)
	}
	if err := b.SetPolicy(Policy{}); err != nil {
		t.Fatalf("disable: %v", err)
	}
	if p.batchG != 0 || p.sharedG != 0 || p.servP != 0 || p.batchP != 0 {
		t.Fatalf("disable left residual escalation: %+v", *p)
	}
}
