// Package bmc models the Baseboard Management Controller of Section II
// of the paper: the out-of-band firmware that monitors node power and
// dynamically regulates it to honour a cap set by Intel Data Center
// Manager.
//
// The control strategy reproduces what the paper describes and infers:
//
//   - The primary actuator is the P-state. When consumption exceeds
//     the cap the BMC steps the CPUs to slower P-states; when it falls
//     comfortably below, it steps back up. A cap that falls between
//     the power levels of two adjacent P-states makes the controller
//     dither between them, which is why Table II reports non-grid
//     average frequencies such as 2168 MHz.
//   - When consumption still exceeds the cap at the slowest P-state
//     (caps of roughly 130 W and below on this platform), the BMC
//     escalates through a gating ladder — cache way gating, TLB entry
//     gating, memory-controller duty cycling — the sub-DVFS techniques
//     the paper's counter data reveals. These buy only a few watts at
//     a large performance cost.
package bmc

import (
	"fmt"

	"nodecap/internal/simtime"
)

// Plant is the machine surface the BMC actuates. The machine package
// implements it; tests substitute scripted plants.
type Plant interface {
	// PowerWatts reports the node's current power draw as seen by the
	// BMC's onboard sensor.
	PowerWatts() float64
	// PStateIndex and NumPStates describe the DVFS position; higher
	// index is slower.
	PStateIndex() int
	NumPStates() int
	// SetPState requests a DVFS transition (clamped by the plant).
	SetPState(i int)
	// GatingLevel and MaxGatingLevel describe the sub-DVFS ladder
	// position; 0 is ungated.
	GatingLevel() int
	MaxGatingLevel() int
	// SetGatingLevel reconfigures the memory hierarchy to ladder
	// level l (clamped by the plant).
	SetGatingLevel(l int)
}

// Policy is a power-capping policy, as pushed by DCM over IPMI.
type Policy struct {
	Enabled  bool
	CapWatts float64
}

// Config tunes the control loop.
type Config struct {
	// ControlPeriod is the interval between control decisions.
	ControlPeriod simtime.Duration
	// GuardBandWatts is how far below the cap the controller aims;
	// real firmware undershoots so transients do not breach the cap.
	GuardBandWatts float64
	// HysteresisWatts is the undershoot beyond the target required
	// before the controller raises the P-state, preventing limit
	// cycles from consuming the whole run in P-state transitions.
	HysteresisWatts float64
	// GateRelaxHysteresisWatts is the (much smaller) undershoot that
	// relaxes one gating-ladder level. Firmware prefers DVFS-only
	// operation — gating costs enormous performance per watt — so it
	// is undone eagerly. This also differentiates a barely-reachable
	// cap (hovering in the shallow ladder) from an unreachable one
	// (pinned at the floor).
	GateRelaxHysteresisWatts float64
	// Smoothing is the EWMA coefficient applied to power readings
	// (weight of the newest sample), in (0, 1].
	Smoothing float64
	// StepWattsPerPState scales proportional descent: when consumption
	// exceeds the target by several steps' worth the controller drops
	// several P-states in one tick, limiting EWMA-lag overshoot into
	// the gating ladder.
	StepWattsPerPState float64
}

// DefaultConfig returns the tuning used throughout the study.
// The control period is expressed in simulated time and is much
// shorter than real Node Manager's because the simulated runs are
// scaled-down; the ratio of control period to run length is what
// matters for convergence and dithering.
func DefaultConfig() Config {
	return Config{
		ControlPeriod:            100 * simtime.Microsecond,
		GuardBandWatts:           0.5,
		HysteresisWatts:          2.0,
		GateRelaxHysteresisWatts: 0.3,
		Smoothing:                0.6,
		StepWattsPerPState:       2.0,
	}
}

// Validate reports nonsensical tunings.
func (c Config) Validate() error {
	if c.ControlPeriod <= 0 {
		return fmt.Errorf("bmc: non-positive control period")
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		return fmt.Errorf("bmc: smoothing %v outside (0,1]", c.Smoothing)
	}
	if c.GuardBandWatts < 0 || c.HysteresisWatts < 0 || c.GateRelaxHysteresisWatts < 0 {
		return fmt.Errorf("bmc: negative guard band or hysteresis")
	}
	return nil
}

// Stats counts controller activity.
type Stats struct {
	Ticks        uint64
	StepsDown    uint64 // P-state slow-downs
	StepsUp      uint64
	GateEscalate uint64
	GateRelax    uint64
	OverCapTicks uint64 // ticks where smoothed power exceeded the cap
	AtFloorTicks uint64 // ticks fully escalated yet still over cap
}

// OverCapFraction reports the fraction of control ticks whose smoothed
// power exceeded the cap — a controller-quality metric the ablation
// benches compare.
func (s Stats) OverCapFraction() float64 {
	if s.Ticks == 0 {
		return 0
	}
	return float64(s.OverCapTicks) / float64(s.Ticks)
}

// BMC is the controller instance for one node.
type BMC struct {
	cfg      Config
	plant    Plant
	policy   Policy
	smoothed float64
	haveEWMA bool
	stats    Stats
}

// New builds a BMC for plant; panics on invalid static config.
func New(cfg Config, plant Plant) *BMC {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &BMC{cfg: cfg, plant: plant}
}

// Config returns the controller tuning.
func (b *BMC) Config() Config { return b.cfg }

// Policy returns the active policy.
func (b *BMC) Policy() Policy { return b.policy }

// SetPolicy installs a capping policy. Disabling the policy restores
// full speed and removes all gating, as deactivating a DCM policy
// does.
func (b *BMC) SetPolicy(p Policy) {
	b.policy = p
	if !p.Enabled {
		b.plant.SetGatingLevel(0)
		b.plant.SetPState(0)
		b.haveEWMA = false
	}
}

// Stats returns a snapshot of controller activity.
func (b *BMC) Stats() Stats { return b.stats }

// ResetStats zeroes the activity counters.
func (b *BMC) ResetStats() { b.stats = Stats{} }

// SmoothedWatts reports the EWMA-filtered power estimate the
// controller is acting on.
func (b *BMC) SmoothedWatts() float64 { return b.smoothed }

// Tick runs one control decision. The machine calls it every
// ControlPeriod of simulated time.
func (b *BMC) Tick() {
	b.stats.Ticks++
	if !b.policy.Enabled {
		return
	}
	w := b.plant.PowerWatts()
	if !b.haveEWMA {
		b.smoothed = w
		b.haveEWMA = true
	} else {
		a := b.cfg.Smoothing
		b.smoothed = a*w + (1-a)*b.smoothed
	}

	cap := b.policy.CapWatts
	target := cap - b.cfg.GuardBandWatts
	if b.smoothed > cap {
		b.stats.OverCapTicks++
	}

	switch {
	case b.smoothed > target:
		// Too hot: slow down (proportionally to the excess), then gate.
		if p := b.plant.PStateIndex(); p < b.plant.NumPStates()-1 {
			steps := 1
			if b.cfg.StepWattsPerPState > 0 {
				steps += int((b.smoothed - target) / b.cfg.StepWattsPerPState)
			}
			b.plant.SetPState(p + steps)
			b.stats.StepsDown++
			return
		}
		if g := b.plant.GatingLevel(); g < b.plant.MaxGatingLevel() {
			b.plant.SetGatingLevel(g + 1)
			b.stats.GateEscalate++
			return
		}
		// Fully escalated and still above target: the cap is below
		// the platform's floor (the paper's 120 W rows).
		b.stats.AtFloorTicks++
	default:
		// At or under target. Ungating is cheap headroom-wise and
		// hugely valuable performance-wise, so it triggers on a small
		// undershoot; speeding the clock back up waits for a solid
		// margin.
		if g := b.plant.GatingLevel(); g > 0 {
			if b.smoothed < target-b.cfg.GateRelaxHysteresisWatts {
				b.plant.SetGatingLevel(g - 1)
				b.stats.GateRelax++
			}
			return
		}
		if b.smoothed < target-b.cfg.HysteresisWatts {
			if p := b.plant.PStateIndex(); p > 0 {
				b.plant.SetPState(p - 1)
				b.stats.StepsUp++
			}
		}
	}
}
