// Package bmc models the Baseboard Management Controller of Section II
// of the paper: the out-of-band firmware that monitors node power and
// dynamically regulates it to honour a cap set by Intel Data Center
// Manager.
//
// The control strategy reproduces what the paper describes and infers:
//
//   - The primary actuator is the P-state. When consumption exceeds
//     the cap the BMC steps the CPUs to slower P-states; when it falls
//     comfortably below, it steps back up. A cap that falls between
//     the power levels of two adjacent P-states makes the controller
//     dither between them, which is why Table II reports non-grid
//     average frequencies such as 2168 MHz.
//   - When consumption still exceeds the cap at the slowest P-state
//     (caps of roughly 130 W and below on this platform), the BMC
//     escalates through a gating ladder — cache way gating, TLB entry
//     gating, memory-controller duty cycling — the sub-DVFS techniques
//     the paper's counter data reveals. These buy only a few watts at
//     a large performance cost.
//
// The controller is additionally defensive about its own instrument:
// real capping firmware must stay safe when the power sensor lies. A
// reading can be missing (dropout), outside the plausible envelope,
// NaN/Inf, or frozen (stuck-at). After FaultToleranceTicks consecutive
// untrusted readings while a policy is enabled the BMC enters
// fail-safe mode — it clamps the plant at a safe P-state floor and
// refuses to step *up* on data it cannot trust — and leaves only after
// RecoveryTicks consecutive sane readings.
package bmc

import (
	"errors"
	"fmt"
	"math"

	"nodecap/internal/simtime"
	"nodecap/internal/telemetry"
)

// Plant is the machine surface the BMC actuates. The machine package
// implements it; tests substitute scripted plants.
type Plant interface {
	// PowerWatts reports the node's current power draw as seen by the
	// BMC's onboard sensor.
	PowerWatts() float64
	// PStateIndex and NumPStates describe the DVFS position; higher
	// index is slower.
	PStateIndex() int
	NumPStates() int
	// SetPState requests a DVFS transition (clamped by the plant).
	SetPState(i int)
	// GatingLevel and MaxGatingLevel describe the sub-DVFS ladder
	// position; 0 is ungated.
	GatingLevel() int
	MaxGatingLevel() int
	// SetGatingLevel reconfigures the memory hierarchy to ladder
	// level l (clamped by the plant).
	SetGatingLevel(l int)
}

// PowerSampler is an optional Plant extension whose sensor can fail to
// deliver a sample at all. When the plant implements it the controller
// reads through PowerSample and treats ok=false as a dropout; plants
// without it are assumed to always deliver.
type PowerSampler interface {
	PowerSample() (watts float64, ok bool)
}

// FloorReporter is an optional Plant extension that reports the
// platform's minimum achievable power (full DVFS + gating escalation).
// A reported floor ≤ 0 means unknown. The BMC uses it only to flag
// infeasible caps — the policy is still applied, matching the paper's
// 120 W rows where the node simply pins at its ~123-125 W floor.
type FloorReporter interface {
	CapFloorWatts() float64
}

// ErrInfeasibleCap marks a SetPolicy whose cap lies below the platform
// floor. The policy IS applied; the error is advisory.
var ErrInfeasibleCap = errors.New("cap below platform floor")

// Policy is a power-capping policy, as pushed by DCM over IPMI.
type Policy struct {
	Enabled  bool
	CapWatts float64
}

// Config tunes the control loop.
type Config struct {
	// ControlPeriod is the interval between control decisions.
	ControlPeriod simtime.Duration
	// GuardBandWatts is how far below the cap the controller aims;
	// real firmware undershoots so transients do not breach the cap.
	GuardBandWatts float64
	// HysteresisWatts is the undershoot beyond the target required
	// before the controller raises the P-state, preventing limit
	// cycles from consuming the whole run in P-state transitions.
	HysteresisWatts float64
	// GateRelaxHysteresisWatts is the (much smaller) undershoot that
	// relaxes one gating-ladder level. Firmware prefers DVFS-only
	// operation — gating costs enormous performance per watt — so it
	// is undone eagerly. This also differentiates a barely-reachable
	// cap (hovering in the shallow ladder) from an unreachable one
	// (pinned at the floor).
	GateRelaxHysteresisWatts float64
	// Smoothing is the EWMA coefficient applied to power readings
	// (weight of the newest sample), in (0, 1].
	Smoothing float64
	// StepWattsPerPState scales proportional descent: when consumption
	// exceeds the target by several steps' worth the controller drops
	// several P-states in one tick, limiting EWMA-lag overshoot into
	// the gating ladder.
	StepWattsPerPState float64

	// MinPlausibleWatts / MaxPlausibleWatts bound the sensor's
	// plausible envelope; a reading outside it is untrusted. Both zero
	// disables the range check (NaN/Inf and negative readings are
	// always untrusted).
	MinPlausibleWatts float64
	MaxPlausibleWatts float64
	// StuckSensorTicks flags the sensor as untrusted after that many
	// consecutive *identical* delivered readings. Zero disables stuck
	// detection — it assumes a naturally-noisy sensor, and a simulated
	// plant in steady state reports exactly constant power.
	StuckSensorTicks int
	// FaultToleranceTicks (K) is how many consecutive untrusted
	// control periods are tolerated before entering fail-safe mode.
	// Zero disables fail-safe entirely (untrusted readings are still
	// counted and never actuated on).
	FaultToleranceTicks int
	// RecoveryTicks (M) is how many consecutive sane readings are
	// required to leave fail-safe mode; values below 1 behave as 1.
	RecoveryTicks int
	// FailSafePState is the P-state floor held in fail-safe mode. ≤ 0
	// or out of range means the slowest P-state.
	FailSafePState int
}

// DefaultConfig returns the tuning used throughout the study.
// The control period is expressed in simulated time and is much
// shorter than real Node Manager's because the simulated runs are
// scaled-down; the ratio of control period to run length is what
// matters for convergence and dithering. Fail-safe is disabled by
// default — the study's plants have trustworthy sensors.
func DefaultConfig() Config {
	return Config{
		ControlPeriod:            100 * simtime.Microsecond,
		GuardBandWatts:           0.5,
		HysteresisWatts:          2.0,
		GateRelaxHysteresisWatts: 0.3,
		Smoothing:                0.6,
		StepWattsPerPState:       2.0,
	}
}

// FailSafeConfig returns DefaultConfig hardened for a fallible sensor:
// a plausibility envelope generously bracketing the platform
// (idle ~101 W, busy ~157 W), a 5-tick fault watchdog and a 10-tick
// recovery requirement. Stuck-at detection stays opt-in because the
// simulated sensor is exactly constant in steady state.
func FailSafeConfig() Config {
	c := DefaultConfig()
	c.MinPlausibleWatts = 50
	c.MaxPlausibleWatts = 400
	c.FaultToleranceTicks = 5
	c.RecoveryTicks = 10
	return c
}

// Validate reports nonsensical tunings.
func (c Config) Validate() error {
	if c.ControlPeriod <= 0 {
		return fmt.Errorf("bmc: non-positive control period")
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		return fmt.Errorf("bmc: smoothing %v outside (0,1]", c.Smoothing)
	}
	if c.GuardBandWatts < 0 || c.HysteresisWatts < 0 || c.GateRelaxHysteresisWatts < 0 {
		return fmt.Errorf("bmc: negative guard band or hysteresis")
	}
	if c.MinPlausibleWatts < 0 || c.MaxPlausibleWatts < 0 {
		return fmt.Errorf("bmc: negative plausibility bound")
	}
	if c.MaxPlausibleWatts > 0 && c.MinPlausibleWatts > c.MaxPlausibleWatts {
		return fmt.Errorf("bmc: plausibility range [%v, %v] inverted",
			c.MinPlausibleWatts, c.MaxPlausibleWatts)
	}
	if c.StuckSensorTicks < 0 || c.FaultToleranceTicks < 0 || c.RecoveryTicks < 0 {
		return fmt.Errorf("bmc: negative fault-tolerance tick count")
	}
	return nil
}

// Stats counts controller activity.
type Stats struct {
	Ticks        uint64
	StepsDown    uint64 // P-state slow-downs
	StepsUp      uint64
	GateEscalate uint64
	GateRelax    uint64
	OverCapTicks uint64 // ticks where smoothed power exceeded the cap
	AtFloorTicks uint64 // ticks fully escalated yet still over cap

	// Priority-plant activity (zero on uniform plants).
	BatchSteals uint64 // actuations that took power from the batch tier only
	FloorHolds  uint64 // escalations absorbed elsewhere with serving held at its floor
	FloorBreaks uint64 // serving-tier steps below the configured floor

	SensorFaults    uint64 // untrusted readings (dropout/range/NaN/stuck)
	FailSafeEntries uint64 // transitions into fail-safe mode
	FailSafeTicks   uint64 // ticks spent in fail-safe mode
}

// OverCapFraction reports the fraction of control ticks whose smoothed
// power exceeded the cap — a controller-quality metric the ablation
// benches compare.
func (s Stats) OverCapFraction() float64 {
	if s.Ticks == 0 {
		return 0
	}
	return float64(s.OverCapTicks) / float64(s.Ticks)
}

// Health is the defensive-controller status a BMC reports out-of-band
// (surfaced over IPMI to DCM).
type Health struct {
	// FailSafe is true while the controller distrusts its sensor and
	// holds the fail-safe P-state floor.
	FailSafe bool
	// SensorFaults counts untrusted readings over the BMC's lifetime.
	SensorFaults uint64
	// InfeasibleCap is true when the active policy's cap lies below
	// the platform floor (the node pins at the floor, over budget).
	InfeasibleCap bool
}

// BMC is the controller instance for one node.
type BMC struct {
	cfg      Config
	plant    Plant
	policy   Policy
	smoothed float64
	haveEWMA bool
	stats    Stats

	failSafe   bool
	badTicks   int     // consecutive untrusted readings
	saneTicks  int     // consecutive trusted readings while in fail-safe
	lastRaw    float64 // last delivered raw reading (stuck detection)
	haveRaw    bool
	stuckRun   int // consecutive identical delivered readings
	infeasible bool

	// Telemetry sinks (SetTelemetry); nil-safe, zero-alloc when wired.
	trace           *telemetry.Trace
	traceNode       string
	mSensorFaults   *telemetry.Counter
	mFailSafeEnters *telemetry.Counter
	mFailSafeExits  *telemetry.Counter
	mBatchSteals    *telemetry.Counter
	mFloorHolds     *telemetry.Counter
	mFloorBreaks    *telemetry.Counter
}

// New builds a BMC for plant; panics on invalid static config.
func New(cfg Config, plant Plant) *BMC {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &BMC{cfg: cfg, plant: plant}
}

// Config returns the controller tuning.
func (b *BMC) Config() Config { return b.cfg }

// SetTelemetry wires fleet metrics and the decision trace into the
// controller; node labels this BMC's trace events. Either sink may be
// nil. Counters are shared fleet-wide (same registry, same names), so
// per-node fault history stays in Stats while the registry aggregates.
// The instrumented Tick remains allocation-free.
func (b *BMC) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Trace, node string) {
	b.trace = tr
	b.traceNode = node
	b.mSensorFaults = reg.Counter("bmc_sensor_faults_total")
	b.mFailSafeEnters = reg.Counter("bmc_failsafe_entries_total")
	b.mFailSafeExits = reg.Counter("bmc_failsafe_exits_total")
	b.mBatchSteals = reg.Counter("bmc_batch_steals_total")
	b.mFloorHolds = reg.Counter("bmc_floor_holds_total")
	b.mFloorBreaks = reg.Counter("bmc_floor_breaks_total")
}

// Policy returns the active policy.
func (b *BMC) Policy() Policy { return b.policy }

// SetPolicy installs a capping policy. Disabling the policy restores
// full speed and removes all gating, as deactivating a DCM policy
// does, and clears any fail-safe condition — the operator has taken
// over. The returned error is advisory: a cap below the platform
// floor (when the plant reports one) yields ErrInfeasibleCap but the
// policy is applied regardless, matching the paper's 120 W rows.
//
// Re-pushing the policy already in force is a no-op that preserves the
// defensive state: a manager reconciliation sweep or periodic
// rebalance that lands on the same cap must not reset fail-safe or the
// sensor-vetting counters — only a *changed* operator intent does.
func (b *BMC) SetPolicy(p Policy) error {
	if p == b.policy {
		if b.infeasible {
			return fmt.Errorf("bmc: %w: %.1f W (policy already in force; node pinned at the floor)",
				ErrInfeasibleCap, p.CapWatts)
		}
		return nil
	}
	if b.failSafe {
		// The operator's changed intent overrides the defensive clamp.
		b.mFailSafeExits.Inc()
		b.trace.Append(telemetry.Event{Node: b.traceNode, Kind: telemetry.EvFailSafeExit})
	}
	b.policy = p
	b.failSafe = false
	b.badTicks = 0
	b.saneTicks = 0
	b.stuckRun = 0
	b.haveRaw = false
	b.infeasible = false
	if !p.Enabled {
		b.plant.SetGatingLevel(0)
		if pp := b.priorityPlant(); pp != nil {
			pp.SetBatchGatingLevel(0)
		}
		b.plant.SetPState(0)
		b.haveEWMA = false
		return nil
	}
	if fr, ok := b.plant.(FloorReporter); ok {
		if floor := fr.CapFloorWatts(); floor > 0 && p.CapWatts < floor {
			b.infeasible = true
			return fmt.Errorf("bmc: %w: %.1f W < %.1f W floor (policy applied; node will pin at the floor)",
				ErrInfeasibleCap, p.CapWatts, floor)
		}
	}
	return nil
}

// Stats returns a snapshot of controller activity.
func (b *BMC) Stats() Stats { return b.stats }

// ResetStats zeroes the activity counters.
func (b *BMC) ResetStats() { b.stats = Stats{} }

// SmoothedWatts reports the EWMA-filtered power estimate the
// controller is acting on.
func (b *BMC) SmoothedWatts() float64 { return b.smoothed }

// FailSafe reports whether the controller is holding its fail-safe
// floor because it distrusts the power sensor.
func (b *BMC) FailSafe() bool { return b.failSafe }

// Health returns the defensive-controller status.
func (b *BMC) Health() Health {
	return Health{
		FailSafe:      b.failSafe,
		SensorFaults:  b.stats.SensorFaults,
		InfeasibleCap: b.infeasible,
	}
}

// readSensor takes one reading, through PowerSample when the plant can
// drop out.
func (b *BMC) readSensor() (float64, bool) {
	if ps, ok := b.plant.(PowerSampler); ok {
		return ps.PowerSample()
	}
	return b.plant.PowerWatts(), true
}

// sensorTrusted judges one reading and maintains the stuck-at tracker.
// Dropouts do not advance the tracker — a frozen sensor is one that
// keeps *delivering* the same number.
func (b *BMC) sensorTrusted(w float64, delivered bool) bool {
	if !delivered {
		return false
	}
	if b.cfg.StuckSensorTicks > 0 {
		if b.haveRaw && w == b.lastRaw {
			b.stuckRun++
		} else {
			b.stuckRun = 0
		}
	}
	b.lastRaw = w
	b.haveRaw = true
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return false
	}
	if b.cfg.MinPlausibleWatts > 0 && w < b.cfg.MinPlausibleWatts {
		return false
	}
	if b.cfg.MaxPlausibleWatts > 0 && w > b.cfg.MaxPlausibleWatts {
		return false
	}
	if b.cfg.StuckSensorTicks > 0 && b.stuckRun >= b.cfg.StuckSensorTicks {
		return false
	}
	return true
}

// failSafeFloor resolves the configured fail-safe P-state.
func (b *BMC) failSafeFloor() int {
	slowest := b.plant.NumPStates() - 1
	if f := b.cfg.FailSafePState; f > 0 && f <= slowest {
		return f
	}
	return slowest
}

// clampFailSafe enforces the fail-safe floor: the plant may be slower
// than the floor (left where the last trusted control decision put
// it), never faster. Priority plants clamp tier by tier.
func (b *BMC) clampFailSafe() {
	if pp := b.priorityPlant(); pp != nil {
		b.clampTierFailSafe(pp)
		return
	}
	if floor := b.failSafeFloor(); b.plant.PStateIndex() < floor {
		b.plant.SetPState(floor)
		b.stats.StepsDown++
	}
}

// Tick runs one control decision. The machine calls it every
// ControlPeriod of simulated time.
func (b *BMC) Tick() {
	b.stats.Ticks++
	if !b.policy.Enabled {
		return
	}

	w, delivered := b.readSensor()
	if !b.sensorTrusted(w, delivered) {
		// Never actuate — in particular never step up — on data the
		// controller cannot trust.
		b.stats.SensorFaults++
		b.mSensorFaults.Inc()
		b.saneTicks = 0
		b.badTicks++
		if k := b.cfg.FaultToleranceTicks; k > 0 && !b.failSafe && b.badTicks >= k {
			b.failSafe = true
			b.stats.FailSafeEntries++
			b.mFailSafeEnters.Inc()
			b.trace.Append(telemetry.Event{Node: b.traceNode, Kind: telemetry.EvFailSafeEnter})
			b.haveEWMA = false
		}
		if b.failSafe {
			b.stats.FailSafeTicks++
			b.clampFailSafe()
		}
		return
	}
	b.badTicks = 0
	if b.failSafe {
		b.stats.FailSafeTicks++
		b.saneTicks++
		m := b.cfg.RecoveryTicks
		if m < 1 {
			m = 1
		}
		if b.saneTicks < m {
			b.clampFailSafe()
			return
		}
		// M consecutive sane readings: resume control with a fresh
		// EWMA so stale pre-fault history cannot drive the first step.
		b.failSafe = false
		b.saneTicks = 0
		b.haveEWMA = false
		b.mFailSafeExits.Inc()
		b.trace.Append(telemetry.Event{Node: b.traceNode, Kind: telemetry.EvFailSafeExit})
	}

	if !b.haveEWMA {
		b.smoothed = w
		b.haveEWMA = true
	} else {
		a := b.cfg.Smoothing
		b.smoothed = a*w + (1-a)*b.smoothed
	}

	cap := b.policy.CapWatts
	target := cap - b.cfg.GuardBandWatts
	if b.smoothed > cap {
		b.stats.OverCapTicks++
	}

	if pp := b.priorityPlant(); pp != nil {
		b.tickPriority(pp)
		return
	}

	switch {
	case b.smoothed > target:
		// Too hot: slow down (proportionally to the excess), then gate.
		if p := b.plant.PStateIndex(); p < b.plant.NumPStates()-1 {
			steps := 1
			if b.cfg.StepWattsPerPState > 0 {
				steps += int((b.smoothed - target) / b.cfg.StepWattsPerPState)
			}
			b.plant.SetPState(p + steps)
			b.stats.StepsDown++
			return
		}
		if g := b.plant.GatingLevel(); g < b.plant.MaxGatingLevel() {
			b.plant.SetGatingLevel(g + 1)
			b.stats.GateEscalate++
			return
		}
		// Fully escalated and still above target: the cap is below
		// the platform's floor (the paper's 120 W rows).
		b.stats.AtFloorTicks++
	default:
		// At or under target. Ungating is cheap headroom-wise and
		// hugely valuable performance-wise, so it triggers on a small
		// undershoot; speeding the clock back up waits for a solid
		// margin.
		if g := b.plant.GatingLevel(); g > 0 {
			if b.smoothed < target-b.cfg.GateRelaxHysteresisWatts {
				b.plant.SetGatingLevel(g - 1)
				b.stats.GateRelax++
			}
			return
		}
		if b.smoothed < target-b.cfg.HysteresisWatts {
			if p := b.plant.PStateIndex(); p > 0 {
				b.plant.SetPState(p - 1)
				b.stats.StepsUp++
			}
		}
	}
}
