package bmc

import (
	"testing"

	"nodecap/internal/simtime"
)

// linearPlant models node power as a simple decreasing function of
// P-state index and gating level, enough to exercise the controller.
type linearPlant struct {
	pstate, gating int
	npstates, maxG int
	// power = base - pstate*perP - gating*perG
	base, perP, perG float64
}

func newLinearPlant() *linearPlant {
	// 155 W at P0 ungated, down to 155-15*1.8=128 at P15, minus up to
	// 8*0.5=4 W of gating: floor 124 W — the platform's shape.
	return &linearPlant{npstates: 16, maxG: 8, base: 155, perP: 1.8, perG: 0.5}
}

func (p *linearPlant) PowerWatts() float64 {
	return p.base - float64(p.pstate)*p.perP - float64(p.gating)*p.perG
}
func (p *linearPlant) PStateIndex() int { return p.pstate }
func (p *linearPlant) NumPStates() int  { return p.npstates }
func (p *linearPlant) SetPState(i int) {
	if i < 0 {
		i = 0
	}
	if i >= p.npstates {
		i = p.npstates - 1
	}
	p.pstate = i
}
func (p *linearPlant) GatingLevel() int    { return p.gating }
func (p *linearPlant) MaxGatingLevel() int { return p.maxG }
func (p *linearPlant) SetGatingLevel(l int) {
	if l < 0 {
		l = 0
	}
	if l > p.maxG {
		l = p.maxG
	}
	p.gating = l
}

func run(b *BMC, n int) {
	for i := 0; i < n; i++ {
		b.Tick()
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{ControlPeriod: 0, Smoothing: 0.5},
		{ControlPeriod: simtime.Millisecond, Smoothing: 0},
		{ControlPeriod: simtime.Millisecond, Smoothing: 1.5},
		{ControlPeriod: simtime.Millisecond, Smoothing: 0.5, GuardBandWatts: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(Config{}, newLinearPlant())
}

func TestDisabledPolicyDoesNothing(t *testing.T) {
	p := newLinearPlant()
	b := New(DefaultConfig(), p)
	run(b, 50)
	if p.pstate != 0 || p.gating != 0 {
		t.Errorf("disabled policy actuated: P%d G%d", p.pstate, p.gating)
	}
	if b.Stats().Ticks != 50 {
		t.Errorf("Ticks = %d", b.Stats().Ticks)
	}
}

func TestHighCapNoThrottle(t *testing.T) {
	// Cap 160 W against a 155 W plant: no slow-down (the paper's A1/B1
	// rows show baseline-like behaviour at a 160 W cap).
	p := newLinearPlant()
	b := New(DefaultConfig(), p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 160})
	run(b, 200)
	if p.pstate != 0 || p.gating != 0 {
		t.Errorf("160 W cap throttled a 155 W plant: P%d G%d", p.pstate, p.gating)
	}
	if b.Stats().OverCapTicks != 0 {
		t.Errorf("OverCapTicks = %d", b.Stats().OverCapTicks)
	}
}

func TestConvergesToDVFSOnlyOperatingPoint(t *testing.T) {
	// Cap 140 W: plant reaches 139.4 W at P9 or so; gating must stay 0.
	p := newLinearPlant()
	b := New(DefaultConfig(), p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 140})
	run(b, 500)
	if p.gating != 0 {
		t.Errorf("moderate cap engaged gating level %d", p.gating)
	}
	if got := p.PowerWatts(); got > 140 {
		t.Errorf("converged power %v above cap", got)
	}
	if p.pstate == 0 || p.pstate == 15 {
		t.Errorf("P-state %d not an intermediate point", p.pstate)
	}
}

func TestEscalatesGatingWhenDVFSSaturates(t *testing.T) {
	// Cap 126 W: P15 gives 128 W; gating must engage to reach <= 124.5.
	p := newLinearPlant()
	b := New(DefaultConfig(), p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 126})
	run(b, 500)
	if p.pstate != 15 {
		t.Errorf("P-state = %d, want 15", p.pstate)
	}
	if p.gating == 0 {
		t.Error("gating never engaged")
	}
	if got := p.PowerWatts(); got > 126 {
		t.Errorf("converged power %v above cap", got)
	}
}

func TestUnreachableCapHitsFloor(t *testing.T) {
	// Cap 120 W: floor is 124 W; the controller must fully escalate
	// and record at-floor operation (the paper's A9/B9 overshoot).
	p := newLinearPlant()
	b := New(DefaultConfig(), p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 120})
	run(b, 500)
	if p.pstate != 15 || p.gating != p.maxG {
		t.Errorf("not fully escalated: P%d G%d", p.pstate, p.gating)
	}
	if b.Stats().AtFloorTicks == 0 {
		t.Error("AtFloorTicks = 0")
	}
	if got := p.PowerWatts(); got <= 120 {
		t.Errorf("plant below an unreachable cap: %v", got)
	}
}

func TestRecoversWhenLoadDrops(t *testing.T) {
	p := newLinearPlant()
	b := New(DefaultConfig(), p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 126})
	run(b, 500)
	// Load drops: idle plant well under the cap.
	p.base = 101
	run(b, 500)
	if p.gating != 0 {
		t.Errorf("gating %d retained at idle", p.gating)
	}
	if p.pstate != 0 {
		t.Errorf("P-state %d retained at idle", p.pstate)
	}
}

func TestDisableRestoresFullSpeed(t *testing.T) {
	p := newLinearPlant()
	b := New(DefaultConfig(), p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 120})
	run(b, 500)
	b.SetPolicy(Policy{Enabled: false})
	if p.pstate != 0 || p.gating != 0 {
		t.Errorf("disable left P%d G%d", p.pstate, p.gating)
	}
}

// ditherPlant has a power gap around the cap so no P-state sits inside
// the guard window: the controller must oscillate between two states.
type ditherPlant struct {
	linearPlant
	history []int
}

func (p *ditherPlant) SetPState(i int) {
	p.linearPlant.SetPState(i)
	p.history = append(p.history, p.pstate)
}

func TestDithersBetweenAdjacentPStates(t *testing.T) {
	p := &ditherPlant{linearPlant: *newLinearPlant()}
	p.perP = 4 // coarse 4 W steps: most caps fall between states
	cfg := DefaultConfig()
	cfg.HysteresisWatts = 0.5 // narrow band forces visible dithering
	b := New(cfg, p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 145})
	run(b, 2000)
	// Count distinct states visited in the steady-state tail.
	tail := p.history[len(p.history)-100:]
	seen := map[int]bool{}
	for _, s := range tail {
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Errorf("no dithering in steady state: visited %v", seen)
	}
}

func TestSmoothedWattsTracksPlant(t *testing.T) {
	p := newLinearPlant()
	b := New(DefaultConfig(), p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 200})
	run(b, 100)
	if got := b.SmoothedWatts(); got != p.PowerWatts() {
		t.Errorf("SmoothedWatts = %v, plant = %v", got, p.PowerWatts())
	}
}

func TestResetStats(t *testing.T) {
	p := newLinearPlant()
	b := New(DefaultConfig(), p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 126})
	run(b, 100)
	b.ResetStats()
	if b.Stats() != (Stats{}) {
		t.Errorf("stats not reset: %+v", b.Stats())
	}
}
