package bmc

import (
	"errors"
	"testing"
)

// faultPlant is a linearPlant whose sensor path can be scripted: when
// override is set it replaces the delivered sample entirely, so tests
// can freeze, drop, or spike the reading independently of the plant's
// true draw.
type faultPlant struct {
	*linearPlant
	override func() (watts float64, ok bool)
}

func (p *faultPlant) PowerSample() (float64, bool) {
	if p.override != nil {
		return p.override()
	}
	return p.PowerWatts(), true
}

// flooredPlant additionally reports its platform floor (124 W for the
// stock linearPlant), implementing FloorReporter.
type flooredPlant struct{ *linearPlant }

func (p *flooredPlant) CapFloorWatts() float64 {
	return p.base - float64(p.npstates-1)*p.perP - float64(p.maxG)*p.perG
}

func TestFailSafeConfigValid(t *testing.T) {
	if err := FailSafeConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsFaultConfig(t *testing.T) {
	base := FailSafeConfig()
	mutate := []func(*Config){
		func(c *Config) { c.MinPlausibleWatts = -1 },
		func(c *Config) { c.MaxPlausibleWatts = -1 },
		func(c *Config) { c.MinPlausibleWatts = 300; c.MaxPlausibleWatts = 200 },
		func(c *Config) { c.StuckSensorTicks = -1 },
		func(c *Config) { c.FaultToleranceTicks = -1 },
		func(c *Config) { c.RecoveryTicks = -1 },
	}
	for i, mut := range mutate {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad fault config %d accepted", i)
		}
	}
}

func TestStuckAtIdleSensorHoldsFailSafeFloor(t *testing.T) {
	// The sensor freezes at the idle reading (101 W, inside the
	// plausible envelope) while the node actually runs hot. A naive
	// controller would un-throttle to full speed on the phantom
	// headroom; the defensive one must detect the stuck sensor, clamp
	// to the fail-safe floor, and hold it until RecoveryTicks sane
	// readings arrive.
	cfg := FailSafeConfig()
	cfg.StuckSensorTicks = 3
	p := &faultPlant{linearPlant: newLinearPlant()}
	b := New(cfg, p)
	if err := b.SetPolicy(Policy{Enabled: true, CapWatts: 140}); err != nil {
		t.Fatal(err)
	}
	run(b, 200) // converge on the healthy sensor
	converged := p.pstate
	if converged == 0 {
		t.Fatal("controller never throttled against a 140 W cap")
	}

	p.override = func() (float64, bool) { return 101, true }
	run(b, 100)
	if !b.FailSafe() {
		t.Fatal("stuck-at-idle sensor never tripped fail-safe")
	}
	floor := p.npstates - 1
	if p.pstate != floor {
		t.Fatalf("fail-safe holds P%d, want floor P%d", p.pstate, floor)
	}
	st := b.Stats()
	if st.FailSafeEntries != 1 {
		t.Errorf("FailSafeEntries = %d, want 1", st.FailSafeEntries)
	}
	if st.SensorFaults == 0 {
		t.Error("SensorFaults = 0 despite a stuck sensor")
	}

	// Heal with a jittering (naturally noisy) sensor. For the first
	// RecoveryTicks-1 sane readings the controller must keep the clamp;
	// only after RecoveryTicks does it resume control.
	tick := 0
	p.override = func() (float64, bool) {
		tick++
		return p.PowerWatts() + 0.01*float64(tick%2), true
	}
	for i := 0; i < cfg.RecoveryTicks-1; i++ {
		b.Tick()
		if !b.FailSafe() {
			t.Fatalf("left fail-safe after only %d sane readings, want %d", i+1, cfg.RecoveryTicks)
		}
		if p.pstate != floor {
			t.Fatalf("clamp released at P%d during recovery probation", p.pstate)
		}
	}
	b.Tick()
	if b.FailSafe() {
		t.Fatalf("still in fail-safe after %d sane readings", cfg.RecoveryTicks)
	}
	run(b, 300)
	if p.pstate == floor {
		t.Error("controller never resumed stepping up after recovery")
	}
	if got := p.PowerWatts(); got > 140 {
		t.Errorf("post-recovery power %v above cap", got)
	}
}

func TestDropoutsTripFailSafe(t *testing.T) {
	cfg := FailSafeConfig()
	p := &faultPlant{linearPlant: newLinearPlant()}
	b := New(cfg, p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 150})
	run(b, 100)

	p.override = func() (float64, bool) { return 0, false }
	// badTicks must reach K before entry; one extra tick clamps.
	run(b, cfg.FaultToleranceTicks-1)
	if b.FailSafe() {
		t.Fatalf("entered fail-safe before %d dropouts", cfg.FaultToleranceTicks)
	}
	run(b, 2)
	if !b.FailSafe() {
		t.Fatal("dropouts never tripped fail-safe")
	}
	if p.pstate != p.npstates-1 {
		t.Errorf("fail-safe holds P%d, want slowest", p.pstate)
	}
	if h := b.Health(); !h.FailSafe || h.SensorFaults == 0 {
		t.Errorf("Health = %+v, want fail-safe with faults", h)
	}
}

func TestUntrustedReadingNeverStepsUp(t *testing.T) {
	// Before the watchdog even fires, an implausible reading must not
	// actuate — in particular a phantom-idle 10 W reading must not
	// speed the node up.
	cfg := FailSafeConfig()
	p := &faultPlant{linearPlant: newLinearPlant()}
	b := New(cfg, p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 140})
	run(b, 200)
	held := p.pstate

	p.override = func() (float64, bool) { return 10, true } // below MinPlausibleWatts
	for i := 0; i < cfg.FaultToleranceTicks-1; i++ {
		b.Tick()
		if p.pstate < held {
			t.Fatalf("stepped up to P%d on an implausible reading", p.pstate)
		}
	}
	run(b, 5)
	if p.pstate < held {
		t.Errorf("fail-safe left node faster (P%d) than last trusted point (P%d)", p.pstate, held)
	}
}

func TestTransientSpikeCountedWithoutFailSafe(t *testing.T) {
	// An isolated out-of-envelope spike is logged as a sensor fault but
	// must not trip the watchdog: badTicks resets on the next sane
	// reading.
	cfg := FailSafeConfig()
	p := &faultPlant{linearPlant: newLinearPlant()}
	b := New(cfg, p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 150})
	tick := 0
	p.override = func() (float64, bool) {
		tick++
		if tick%7 == 0 {
			return 5000, true // far above MaxPlausibleWatts
		}
		return p.PowerWatts(), true
	}
	run(b, 200)
	if b.FailSafe() {
		t.Error("isolated spikes tripped fail-safe")
	}
	if got := b.Stats().SensorFaults; got == 0 {
		t.Error("spikes not counted as sensor faults")
	}
}

func TestDisableDuringFailSafeRestoresUncapped(t *testing.T) {
	cfg := FailSafeConfig()
	p := &faultPlant{linearPlant: newLinearPlant()}
	b := New(cfg, p)
	b.SetPolicy(Policy{Enabled: true, CapWatts: 140})
	run(b, 100)
	p.override = func() (float64, bool) { return 0, false }
	run(b, 50)
	if !b.FailSafe() {
		t.Fatal("fail-safe never engaged")
	}

	// Operator disables the policy mid-fail-safe: the node must return
	// to full speed with the fault latch cleared.
	if err := b.SetPolicy(Policy{Enabled: false}); err != nil {
		t.Fatal(err)
	}
	if p.pstate != 0 || p.gating != 0 {
		t.Errorf("disable left P%d G%d", p.pstate, p.gating)
	}
	if b.FailSafe() || b.Health().FailSafe {
		t.Error("fail-safe latch survived policy disable")
	}
	run(b, 50)
	if p.pstate != 0 {
		t.Errorf("disabled policy actuated to P%d", p.pstate)
	}
}

func TestInfeasibleCapAdvisoryButApplied(t *testing.T) {
	p := &flooredPlant{newLinearPlant()}
	b := New(DefaultConfig(), p)
	err := b.SetPolicy(Policy{Enabled: true, CapWatts: 120})
	if !errors.Is(err, ErrInfeasibleCap) {
		t.Fatalf("SetPolicy(120) error = %v, want ErrInfeasibleCap", err)
	}
	if !b.Health().InfeasibleCap {
		t.Error("Health().InfeasibleCap false after infeasible SetPolicy")
	}
	// Advisory only: the policy is live and drives the node to its
	// floor, exactly the paper's 120 W rows.
	run(b, 500)
	if p.pstate != p.npstates-1 || p.gating != p.maxG {
		t.Errorf("infeasible cap not enforced: P%d G%d", p.pstate, p.gating)
	}

	// A feasible cap clears the flag.
	if err := b.SetPolicy(Policy{Enabled: true, CapWatts: 140}); err != nil {
		t.Fatalf("SetPolicy(140) = %v", err)
	}
	if b.Health().InfeasibleCap {
		t.Error("InfeasibleCap latch survived a feasible SetPolicy")
	}
}
