package bmc

import "nodecap/internal/telemetry"

// PriorityPlant is an optional Plant extension for machines whose
// cores are split into a latency-critical serving tier and a batch
// tier with independent DVFS (the SST-BF deployment model: per-core
// high/low priority with a frequency floor on the high side).
//
// When the plant implements it, the controller's escalation path
// becomes priority-aware: a cap steals power from the batch tier
// first — dropping its P-state, then gating its private cache ways
// and TLB entries — and touches the serving tier only when the batch
// side is fully squeezed, holding the serving tier at its configured
// frequency floor. The floor is broken only when the cap is otherwise
// infeasible (every other mechanism exhausted), mirroring how the
// paper's 120 W rows pin at the platform floor.
//
// The inherited Plant methods keep their package-wide meaning:
// SetPState moves both tiers (used when a policy is disabled), and
// GatingLevel/SetGatingLevel drive the shared-structure ladder
// (L3 ways, DRAM duty) that affects every core.
type PriorityPlant interface {
	Plant
	// BatchPState / SetBatchPState drive the batch tier's operating
	// point; index semantics match Plant.PStateIndex (higher = slower).
	BatchPState() int
	SetBatchPState(i int)
	// ServingPState / SetServingPState drive the serving tier.
	ServingPState() int
	SetServingPState(i int)
	// ServingFloorPState is the slowest P-state the serving tier may
	// be held at before the controller must break the floor.
	ServingFloorPState() int
	// BatchGatingLevel ladder positions gate only the batch cores'
	// private structures (cache ways, TLB entries); shared structures
	// stay on the Plant-level ladder.
	BatchGatingLevel() int
	MaxBatchGatingLevel() int
	SetBatchGatingLevel(l int)
}

// priorityPlant returns the plant's priority surface, or nil when the
// plant is a uniform (fair-share) machine.
func (b *BMC) priorityPlant() PriorityPlant {
	if pp, ok := b.plant.(PriorityPlant); ok {
		return pp
	}
	return nil
}

// clampTierFailSafe enforces the fail-safe floor tier by tier: neither
// tier may run faster than the floor while the sensor is distrusted,
// but a tier already slower is left where the last trusted decision
// put it (a package-wide SetPState could speed the batch tier *up* on
// untrusted data, which is exactly what fail-safe must never do).
func (b *BMC) clampTierFailSafe(pp PriorityPlant) {
	floor := b.failSafeFloor()
	if pp.ServingPState() < floor {
		pp.SetServingPState(floor)
		b.stats.StepsDown++
	}
	if pp.BatchPState() < floor {
		pp.SetBatchPState(floor)
		b.stats.StepsDown++
	}
}

// tickPriority is the priority-aware control decision, called by Tick
// with the trusted smoothed reading already folded in. One actuation
// per tick, like the uniform path.
//
// Escalation order (too hot): batch P-state down → batch private
// gating → serving P-state down to its floor → shared-structure
// gating → break the floor (serving below its floor; the cap is
// infeasible without it). De-escalation reverses the priority: the
// serving tier is restored first (below-floor recovery is eager, like
// ungating), then shared structures ungate, then the batch tier gets
// its ways and clocks back.
func (b *BMC) tickPriority(pp PriorityPlant) {
	target := b.policy.CapWatts - b.cfg.GuardBandWatts
	slowest := pp.NumPStates() - 1
	floor := pp.ServingFloorPState()
	if floor < 0 {
		floor = 0
	}
	if floor > slowest {
		floor = slowest
	}

	if b.smoothed > target {
		// Too hot: steal from the batch tier first.
		steps := 1
		if b.cfg.StepWattsPerPState > 0 {
			steps += int((b.smoothed - target) / b.cfg.StepWattsPerPState)
		}
		if p := pp.BatchPState(); p < slowest {
			pp.SetBatchPState(p + steps)
			b.stats.StepsDown++
			b.recordBatchSteal(int64(pp.BatchPState()))
			return
		}
		if g := pp.BatchGatingLevel(); g < pp.MaxBatchGatingLevel() {
			pp.SetBatchGatingLevel(g + 1)
			b.stats.GateEscalate++
			b.recordBatchSteal(int64(g + 1))
			return
		}
		// Batch fully squeezed: bring the serving tier down, but no
		// further than its floor.
		if p := pp.ServingPState(); p < floor {
			next := p + steps
			if next > floor {
				next = floor
			}
			pp.SetServingPState(next)
			b.stats.StepsDown++
			if next == floor {
				b.recordFloorHold(int64(floor))
			}
			return
		}
		// Serving at its floor: gate the shared structures before
		// considering a break.
		if g := pp.GatingLevel(); g < pp.MaxGatingLevel() {
			pp.SetGatingLevel(g + 1)
			b.stats.GateEscalate++
			if pp.ServingPState() == floor {
				b.recordFloorHold(int64(floor))
			}
			return
		}
		// Everything else is exhausted: the cap is infeasible while the
		// floor stands. Break it one step at a time.
		if p := pp.ServingPState(); p < slowest {
			pp.SetServingPState(p + 1)
			b.stats.StepsDown++
			b.recordFloorBreak(int64(p + 1))
			return
		}
		b.stats.AtFloorTicks++
		return
	}

	// At or under target: give watts back in priority order.
	if p := pp.ServingPState(); p > floor {
		// Below-floor recovery is eager (small hysteresis): restoring
		// the serving tier's floor is the whole point of the policy.
		if b.smoothed < target-b.cfg.GateRelaxHysteresisWatts {
			pp.SetServingPState(p - 1)
			b.stats.StepsUp++
		}
		return
	}
	if g := pp.GatingLevel(); g > 0 {
		if b.smoothed < target-b.cfg.GateRelaxHysteresisWatts {
			pp.SetGatingLevel(g - 1)
			b.stats.GateRelax++
		}
		return
	}
	if b.smoothed < target-b.cfg.HysteresisWatts {
		if p := pp.ServingPState(); p > 0 {
			pp.SetServingPState(p - 1)
			b.stats.StepsUp++
			return
		}
		if g := pp.BatchGatingLevel(); g > 0 {
			pp.SetBatchGatingLevel(g - 1)
			b.stats.GateRelax++
			return
		}
		if p := pp.BatchPState(); p > 0 {
			pp.SetBatchPState(p - 1)
			b.stats.StepsUp++
		}
	}
}

func (b *BMC) recordBatchSteal(n int64) {
	b.stats.BatchSteals++
	b.mBatchSteals.Inc()
	b.trace.Append(telemetry.Event{Node: b.traceNode, Kind: telemetry.EvBatchSteal, N: n})
}

func (b *BMC) recordFloorHold(n int64) {
	b.stats.FloorHolds++
	b.mFloorHolds.Inc()
	b.trace.Append(telemetry.Event{Node: b.traceNode, Kind: telemetry.EvFloorHold, N: n})
}

func (b *BMC) recordFloorBreak(n int64) {
	b.stats.FloorBreaks++
	b.mFloorBreaks.Inc()
	b.trace.Append(telemetry.Event{Node: b.traceNode, Kind: telemetry.EvFloorBreak, N: n})
}
