// Package profiling is the thin pprof plumbing shared by the
// command-line tools: every binary that grows -cpuprofile/-memprofile
// flags uses these helpers so CI artifacts are produced identically
// (and the flag wiring stays one line per profile kind).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns a stop
// function that flushes and closes it. An empty path is a no-op (the
// returned stop still must be safe to call).
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: creating cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: starting cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap dumps the allocation profile to path, after a GC so the
// live-heap numbers are current. An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: creating heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		return fmt.Errorf("profiling: writing heap profile: %w", err)
	}
	return nil
}
