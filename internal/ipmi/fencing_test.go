package ipmi

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPowerLimitEpochWire: the fencing epoch rides as an optional
// 8-byte trailer; an epoch-zero limit keeps the 5-byte legacy layout
// and a legacy payload decodes as epoch zero.
func TestPowerLimitEpochWire(t *testing.T) {
	fenced := PowerLimit{Enabled: true, CapWatts: 137.25, Epoch: 42}
	enc := EncodePowerLimit(fenced)
	if len(enc) != 13 {
		t.Fatalf("fenced power limit = %d bytes, want 13", len(enc))
	}
	got, err := DecodePowerLimit(enc)
	if err != nil || got != fenced {
		t.Errorf("fenced round trip = %+v, %v", got, err)
	}

	legacy := PowerLimit{Enabled: true, CapWatts: 140}
	enc = EncodePowerLimit(legacy)
	if len(enc) != 5 {
		t.Fatalf("unfenced power limit = %d bytes, want legacy 5", len(enc))
	}
	got, err = DecodePowerLimit(enc)
	if err != nil || got != legacy {
		t.Errorf("legacy round trip = %+v, %v", got, err)
	}

	if _, err := DecodePowerLimit(make([]byte, 9)); err == nil {
		t.Error("9-byte power limit accepted")
	}
}

// setCap builds a SetPowerLimit request frame.
func setCap(watts float64, epoch uint64) Frame {
	return Frame{NetFn: NetFnOEM, Cmd: CmdSetPowerLimit,
		Payload: EncodePowerLimit(PowerLimit{Enabled: true, CapWatts: watts, Epoch: epoch})}
}

// TestServerFencesStaleEpoch: once a fenced writer has actuated, any
// lower non-zero epoch is refused with CCStaleEpoch and never reaches
// the control plant; equal and higher epochs pass.
func TestServerFencesStaleEpoch(t *testing.T) {
	ctl := &fakeControl{}
	srv := NewServer(ctl)

	if cc := srv.Handle(setCap(140, 3)).Payload[0]; cc != CCOK {
		t.Fatalf("epoch 3 push cc = %#x", cc)
	}
	if got := srv.FenceEpoch(); got != 3 {
		t.Fatalf("FenceEpoch = %d, want 3", got)
	}
	// Deposed leader: lower epoch is fenced, plant untouched.
	if cc := srv.Handle(setCap(100, 2)).Payload[0]; cc != CCStaleEpoch {
		t.Errorf("stale epoch cc = %#x, want CCStaleEpoch", cc)
	}
	if lim := ctl.PowerLimit(); lim.CapWatts != 140 {
		t.Errorf("stale push reached the plant: cap = %v", lim.CapWatts)
	}
	// Same epoch (the live leader re-pushing) and newer epochs pass.
	if cc := srv.Handle(setCap(150, 3)).Payload[0]; cc != CCOK {
		t.Errorf("same-epoch push cc = %#x", cc)
	}
	if cc := srv.Handle(setCap(130, 4)).Payload[0]; cc != CCOK {
		t.Errorf("newer-epoch push cc = %#x", cc)
	}
	if got := srv.FenceEpoch(); got != 4 {
		t.Errorf("FenceEpoch = %d, want 4", got)
	}
	// Epoch zero (unfenced legacy writer) is always admitted.
	if cc := srv.Handle(setCap(125, 0)).Payload[0]; cc != CCOK {
		t.Errorf("legacy unfenced push cc = %#x", cc)
	}
	// The broken-guard knob lets stale epochs through (chaos self-test
	// support) without forgetting the watermark.
	srv.SetFencingEnabled(false)
	if cc := srv.Handle(setCap(90, 1)).Payload[0]; cc != CCOK {
		t.Errorf("fencing-off stale push cc = %#x", cc)
	}
	srv.SetFencingEnabled(true)
	if cc := srv.Handle(setCap(90, 1)).Payload[0]; cc != CCStaleEpoch {
		t.Errorf("fencing-on stale push cc = %#x, want CCStaleEpoch", cc)
	}
}

// TestClientSurfacesErrStaleEpoch: a CCStaleEpoch completion code maps
// to ErrStaleEpoch so the manager can distinguish "deposed — step
// down" from transport faults, and the stream stays usable (it was a
// well-formed exchange).
func TestClientSurfacesErrStaleEpoch(t *testing.T) {
	srv := NewServer(&fakeControl{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetPowerLimit(PowerLimit{Enabled: true, CapWatts: 140, Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	err = c.SetPowerLimit(PowerLimit{Enabled: true, CapWatts: 130, Epoch: 4})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale push error = %v, want ErrStaleEpoch", err)
	}
	if _, err := c.GetPowerLimit(); err != nil {
		t.Errorf("stream poisoned by fencing rejection: %v", err)
	}
}

// TestCloseRacesInFlightRequest: Close landing while a request is
// blocked mid-exchange must surface ErrBroken on the in-flight call —
// not a hang, a panic, or a bare "use of closed network connection"
// the redial logic cannot classify. Run under -race in CI.
func TestCloseRacesInFlightRequest(t *testing.T) {
	addr := silentServer(t)
	c, err := DialTimeout(addr, time.Second, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := c.GetPowerReading() // blocks: the server never answers
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the exchange get in flight
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrBroken) {
			t.Errorf("in-flight call after Close = %v, want ErrBroken", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after Close")
	}
	// Subsequent calls fail fast with the same classification.
	if _, err := c.GetDeviceID(); !errors.Is(err, ErrBroken) {
		t.Errorf("call after Close = %v, want ErrBroken", err)
	}
}

// TestCloseStormUnderLoad: many concurrent callers racing one Close —
// every outcome must be a clean error, never a panic or deadlock.
func TestCloseStormUnderLoad(t *testing.T) {
	srv := NewServer(&fakeControl{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := c.GetPowerReading(); err != nil {
					if !errors.Is(err, ErrBroken) {
						t.Errorf("racing call error = %v, want ErrBroken", err)
					}
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Errorf("Close under load: %v", err)
	}
	wg.Wait()
}
