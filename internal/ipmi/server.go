package ipmi

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nodecap/internal/telemetry"
)

// NodeControl is the management surface a BMC endpoint exposes over
// IPMI. Implementations must be safe for concurrent use (the server
// serializes per connection but accepts several connections).
type NodeControl interface {
	DeviceInfo() DeviceInfo
	PowerReading() PowerReading
	SetPowerLimit(PowerLimit) error
	PowerLimit() PowerLimit
	PStateInfo() PStateInfo
	GatingLevel() int
	Capabilities() Capabilities
	Health() Health
}

// Server serves the BMC management endpoint over TCP (the BMC's
// dedicated NIC in the paper's architecture).
type Server struct {
	ctl NodeControl

	// fence is the highest non-zero fencing epoch this endpoint has
	// honoured; SetPowerLimit pushes stamped with a lower non-zero
	// epoch are rejected with CCStaleEpoch before they reach ctl.
	fence atomic.Uint64
	// fencingOff disables the stale-epoch rejection. It exists only so
	// the chaos harness can prove its single_writer invariant catches a
	// BMC that forgets to fence (see chaos.Scenario.BreakFencing).
	fencingOff atomic.Bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer builds a server for ctl.
func NewServer(ctl NodeControl) *Server {
	return &Server{ctl: ctl, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("ipmi: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return // EOF, malformed frame, or closed connection
		}
		resp := s.Handle(req)
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// Handle processes one request frame and produces the response frame.
// Exposed so in-process tests can exercise the dispatch table without
// sockets.
func (s *Server) Handle(req Frame) Frame {
	resp := Frame{Seq: req.Seq, NetFn: NetFnOEMResponse, Cmd: req.Cmd}
	fail := func(cc byte) Frame {
		resp.Payload = []byte{cc}
		return resp
	}
	if req.NetFn != NetFnOEM {
		return fail(CCInvalidCommand)
	}
	switch req.Cmd {
	case CmdGetDeviceID:
		resp.Payload = append([]byte{CCOK}, EncodeDeviceInfo(s.ctl.DeviceInfo())...)
	case CmdGetPowerReading:
		resp.Payload = append([]byte{CCOK}, EncodePowerReading(s.ctl.PowerReading())...)
	case CmdSetPowerLimit:
		lim, err := DecodePowerLimit(req.Payload)
		if err != nil {
			return fail(CCInvalidData)
		}
		if !s.admitEpoch(lim.Epoch) {
			return fail(CCStaleEpoch)
		}
		if err := s.ctl.SetPowerLimit(lim); err != nil {
			return fail(CCUnspecified)
		}
		resp.Payload = []byte{CCOK}
	case CmdGetPowerLimit:
		resp.Payload = append([]byte{CCOK}, EncodePowerLimit(s.ctl.PowerLimit())...)
	case CmdGetPStateInfo:
		resp.Payload = append([]byte{CCOK}, EncodePStateInfo(s.ctl.PStateInfo())...)
	case CmdGetGatingLevel:
		resp.Payload = []byte{CCOK, byte(s.ctl.GatingLevel())}
	case CmdGetCapabilities:
		resp.Payload = append([]byte{CCOK}, EncodeCapabilities(s.ctl.Capabilities())...)
	case CmdGetHealth:
		resp.Payload = append([]byte{CCOK}, EncodeHealth(s.ctl.Health())...)
	default:
		return fail(CCInvalidCommand)
	}
	return resp
}

// admitEpoch applies the fencing rule for one SetPowerLimit push and
// advances the watermark. Epoch-zero (unfenced) pushes are always
// admitted: a solo manager predates leases, and rejecting it would
// strand every pre-HA deployment. Once any fenced writer has actuated,
// a *lower* non-zero epoch is a deposed leader and is refused.
func (s *Server) admitEpoch(epoch uint64) bool {
	if epoch == 0 {
		return true
	}
	for {
		cur := s.fence.Load()
		if epoch < cur {
			return s.fencingOff.Load()
		}
		if s.fence.CompareAndSwap(cur, epoch) {
			return true
		}
	}
}

// FenceEpoch reports the highest fencing epoch honoured so far.
func (s *Server) FenceEpoch() uint64 { return s.fence.Load() }

// SetFencingEnabled toggles stale-epoch rejection (default on). Only
// the chaos harness's broken-guard self-test should ever turn it off.
func (s *Server) SetFencingEnabled(on bool) { s.fencingOff.Store(!on) }

// Close stops the listener and all connections, waiting for handlers
// to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// Default client timeouts; see DialTimeout.
const (
	DefaultConnectTimeout = 5 * time.Second
	DefaultRequestTimeout = 10 * time.Second
)

// ErrBroken reports that an earlier exchange on this client failed
// mid-frame (timeout, reset, short read), so the stream can no longer
// be trusted to be frame-aligned. The owner must redial.
var ErrBroken = errors.New("ipmi: connection broken by earlier I/O failure")

// ErrStaleEpoch reports that the BMC fenced a SetPowerLimit push: the
// caller's leadership epoch is older than one the node has already
// honoured. The caller must stop actuating and step down.
var ErrStaleEpoch = errors.New("ipmi: power limit rejected: stale fencing epoch")

// Client is a DCM-side connection to one BMC.
type Client struct {
	mu         sync.Mutex
	conn       net.Conn
	seq        uint32
	reqTimeout time.Duration
	broken     bool
	closed     atomic.Bool

	// Wire-level telemetry (SetCounters); nil-safe, so an unwired
	// client pays one predictable no-op per exchange.
	mRequests *telemetry.Counter
	mFailures *telemetry.Counter
}

// Dial connects to a BMC endpoint with the default timeouts.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, DefaultConnectTimeout, DefaultRequestTimeout)
}

// DialTimeout connects to a BMC endpoint, bounding the TCP connect by
// connectTimeout and every subsequent request/response exchange by
// requestTimeout (zero disables the respective bound).
func DialTimeout(addr string, connectTimeout, requestTimeout time.Duration) (*Client, error) {
	d := net.Dialer{Timeout: connectTimeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, reqTimeout: requestTimeout}, nil
}

// NewClientConn wraps an existing connection (e.g. a net.Pipe end in
// tests, or a fault-injecting wrapper). No request timeout is set;
// use SetRequestTimeout to bound exchanges.
func NewClientConn(conn net.Conn) *Client { return &Client{conn: conn} }

// SetRequestTimeout bounds each request/response exchange; zero
// disables the bound.
func (c *Client) SetRequestTimeout(d time.Duration) {
	c.mu.Lock()
	c.reqTimeout = d
	c.mu.Unlock()
}

// SetCounters wires per-exchange telemetry: requests counts every
// attempted exchange, failures the subset that errored (broken stream,
// timeout, frame mismatch, or a non-OK completion code). Either may be
// nil.
func (c *Client) SetCounters(requests, failures *telemetry.Counter) {
	c.mu.Lock()
	c.mRequests = requests
	c.mFailures = failures
	c.mu.Unlock()
}

// Close shuts the connection. Idempotent: a second Close returns nil.
// It deliberately does not take c.mu, so a hung in-flight call can
// still be aborted by closing the socket underneath it.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	return c.conn.Close()
}

// call performs one request/response exchange.
func (c *Client) call(cmd uint8, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mRequests.Inc()
	b, err := c.exchangeLocked(cmd, payload)
	if err != nil {
		c.mFailures.Inc()
	}
	return b, err
}

// exchangeLocked is call's body; c.mu must be held.
func (c *Client) exchangeLocked(cmd uint8, payload []byte) ([]byte, error) {
	if c.broken || c.closed.Load() {
		// A Close that lands between call and lock acquisition must read
		// as the deliberate teardown it is, not a fresh socket error.
		c.broken = true
		return nil, ErrBroken
	}
	if c.reqTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.reqTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	c.seq++
	req := Frame{Seq: c.seq, NetFn: NetFnOEM, Cmd: cmd, Payload: payload}
	if err := WriteFrame(c.conn, req); err != nil {
		return nil, c.brokenErr(err)
	}
	resp, err := ReadFrame(c.conn)
	if err != nil {
		return nil, c.brokenErr(err)
	}
	if resp.Seq != req.Seq {
		c.broken = true
		return nil, fmt.Errorf("ipmi: sequence mismatch: sent %d got %d", req.Seq, resp.Seq)
	}
	if resp.NetFn != NetFnOEMResponse || resp.Cmd != cmd {
		c.broken = true
		return nil, fmt.Errorf("ipmi: mismatched response netfn=%#x cmd=%#x", resp.NetFn, resp.Cmd)
	}
	if len(resp.Payload) < 1 {
		c.broken = true
		return nil, io.ErrUnexpectedEOF
	}
	if cc := resp.Payload[0]; cc != CCOK {
		// A completion-code failure is a well-formed exchange; the
		// stream stays aligned and usable.
		if cc == CCStaleEpoch {
			return nil, ErrStaleEpoch
		}
		return nil, fmt.Errorf("ipmi: completion code %#x", cc)
	}
	return resp.Payload[1:], nil
}

// brokenErr marks the stream broken after an I/O failure and picks the
// error the caller should see. If the failure was induced by Close
// yanking the socket out from under an in-flight exchange, the
// deterministic answer is ErrBroken — not whichever "use of closed
// connection" or reset error the race happened to surface.
func (c *Client) brokenErr(err error) error {
	c.broken = true
	if c.closed.Load() {
		return ErrBroken
	}
	return err
}

// GetDeviceID fetches the node's identity.
func (c *Client) GetDeviceID() (DeviceInfo, error) {
	b, err := c.call(CmdGetDeviceID, nil)
	if err != nil {
		return DeviceInfo{}, err
	}
	return DecodeDeviceInfo(b)
}

// GetPowerReading fetches current and windowed-average power.
func (c *Client) GetPowerReading() (PowerReading, error) {
	b, err := c.call(CmdGetPowerReading, nil)
	if err != nil {
		return PowerReading{}, err
	}
	return DecodePowerReading(b)
}

// SetPowerLimit pushes a capping policy to the BMC.
func (c *Client) SetPowerLimit(lim PowerLimit) error {
	_, err := c.call(CmdSetPowerLimit, EncodePowerLimit(lim))
	return err
}

// GetPowerLimit fetches the active policy.
func (c *Client) GetPowerLimit() (PowerLimit, error) {
	b, err := c.call(CmdGetPowerLimit, nil)
	if err != nil {
		return PowerLimit{}, err
	}
	return DecodePowerLimit(b)
}

// GetPStateInfo fetches DVFS state.
func (c *Client) GetPStateInfo() (PStateInfo, error) {
	b, err := c.call(CmdGetPStateInfo, nil)
	if err != nil {
		return PStateInfo{}, err
	}
	return DecodePStateInfo(b)
}

// GetGatingLevel fetches the sub-DVFS gating ladder position.
func (c *Client) GetGatingLevel() (int, error) {
	b, err := c.call(CmdGetGatingLevel, nil)
	if err != nil {
		return 0, err
	}
	if len(b) != 1 {
		return 0, fmt.Errorf("ipmi: gating payload length %d", len(b))
	}
	return int(b[0]), nil
}

// GetCapabilities fetches the platform's cap range.
func (c *Client) GetCapabilities() (Capabilities, error) {
	b, err := c.call(CmdGetCapabilities, nil)
	if err != nil {
		return Capabilities{}, err
	}
	return DecodeCapabilities(b)
}

// GetHealth fetches the BMC's defensive-controller status.
func (c *Client) GetHealth() (Health, error) {
	b, err := c.call(CmdGetHealth, nil)
	if err != nil {
		return Health{}, err
	}
	return DecodeHealth(b)
}
