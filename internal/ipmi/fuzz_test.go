package ipmi

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hammers the wire decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-marshal to the same
// frame (decode∘encode = identity on the accepted set).
func FuzzReadFrame(f *testing.F) {
	seed, _ := Frame{Seq: 9, NetFn: NetFnOEM, Cmd: CmdGetPowerReading, Payload: []byte{1, 2}}.Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'N', 'C', 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := fr.Marshal()
		if err != nil {
			t.Fatalf("accepted frame fails to marshal: %v", err)
		}
		back, err := ReadFrame(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Seq != fr.Seq || back.NetFn != fr.NetFn || back.Cmd != fr.Cmd ||
			!bytes.Equal(back.Payload, fr.Payload) {
			t.Fatalf("round trip mutated frame: %+v vs %+v", back, fr)
		}
	})
}

// FuzzDecodePowerLimit checks the payload codec never panics and
// accepted values round-trip.
func FuzzDecodePowerLimit(f *testing.F) {
	f.Add(EncodePowerLimit(PowerLimit{Enabled: true, CapWatts: 140}))
	f.Fuzz(func(t *testing.T, data []byte) {
		pl, err := DecodePowerLimit(data)
		if err != nil {
			return
		}
		got, err := DecodePowerLimit(EncodePowerLimit(pl))
		if err != nil || got != pl {
			t.Fatalf("round trip: %+v vs %+v (%v)", got, pl, err)
		}
	})
}
