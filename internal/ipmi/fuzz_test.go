package ipmi

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hammers the wire decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-marshal to the same
// frame (decode∘encode = identity on the accepted set).
func FuzzReadFrame(f *testing.F) {
	seed, _ := Frame{Seq: 9, NetFn: NetFnOEM, Cmd: CmdGetPowerReading, Payload: []byte{1, 2}}.Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{'N', 'C', 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := fr.Marshal()
		if err != nil {
			t.Fatalf("accepted frame fails to marshal: %v", err)
		}
		back, err := ReadFrame(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Seq != fr.Seq || back.NetFn != fr.NetFn || back.Cmd != fr.Cmd ||
			!bytes.Equal(back.Payload, fr.Payload) {
			t.Fatalf("round trip mutated frame: %+v vs %+v", back, fr)
		}
	})
}

// FuzzDecodePowerLimit checks the payload codec never panics and
// accepted values round-trip.
func FuzzDecodePowerLimit(f *testing.F) {
	f.Add(EncodePowerLimit(PowerLimit{Enabled: true, CapWatts: 140}))
	f.Fuzz(func(t *testing.T, data []byte) {
		pl, err := DecodePowerLimit(data)
		if err != nil {
			return
		}
		got, err := DecodePowerLimit(EncodePowerLimit(pl))
		if err != nil || got != pl {
			t.Fatalf("round trip: %+v vs %+v (%v)", got, pl, err)
		}
	})
}

// FuzzPayloadCodecs drives every remaining payload decoder with the
// same arbitrary bytes: none may panic, and any value a decoder
// accepts must survive its encode∘decode round trip.
func FuzzPayloadCodecs(f *testing.F) {
	f.Add(EncodeDeviceInfo(DeviceInfo{DeviceID: 0x20, ManufacturerID: 343, ProductID: 2861}))
	f.Add(EncodePowerReading(PowerReading{CurrentWatts: 157.3, AverageWatts: 151.2}))
	f.Add(EncodePStateInfo(PStateInfo{Index: 3, Count: 16, FreqMHz: 2400}))
	f.Add(EncodeCapabilities(Capabilities{MinCapWatts: 123, MaxCapWatts: 180}))
	f.Add(EncodeHealth(Health{FailSafe: true, SensorFaults: 7, InfeasibleCap: true}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 9))

	f.Fuzz(func(t *testing.T, data []byte) {
		if d, err := DecodeDeviceInfo(data); err == nil {
			if got, err := DecodeDeviceInfo(EncodeDeviceInfo(d)); err != nil || got != d {
				t.Fatalf("device info round trip: %+v vs %+v (%v)", got, d, err)
			}
		}
		if p, err := DecodePowerReading(data); err == nil {
			if got, err := DecodePowerReading(EncodePowerReading(p)); err != nil || got != p {
				t.Fatalf("power reading round trip: %+v vs %+v (%v)", got, p, err)
			}
		}
		if p, err := DecodePStateInfo(data); err == nil {
			if got, err := DecodePStateInfo(EncodePStateInfo(p)); err != nil || got != p {
				t.Fatalf("pstate round trip: %+v vs %+v (%v)", got, p, err)
			}
		}
		if c, err := DecodeCapabilities(data); err == nil {
			if got, err := DecodeCapabilities(EncodeCapabilities(c)); err != nil || got != c {
				t.Fatalf("capabilities round trip: %+v vs %+v (%v)", got, c, err)
			}
		}
		if h, err := DecodeHealth(data); err == nil {
			if got, err := DecodeHealth(EncodeHealth(h)); err != nil || got != h {
				t.Fatalf("health round trip: %+v vs %+v (%v)", got, h, err)
			}
		}
	})
}

// FuzzServerHandle throws arbitrary request frames at the dispatch
// table. Whatever arrives, the server must answer — never panic — with
// a well-formed response frame: marshalable, re-readable, echoing the
// request Seq, carrying the response NetFn and at least a completion
// code.
func FuzzServerHandle(f *testing.F) {
	f.Add(uint32(1), uint8(NetFnOEM), uint8(CmdGetPowerReading), []byte{})
	f.Add(uint32(2), uint8(NetFnOEM), uint8(CmdSetPowerLimit),
		EncodePowerLimit(PowerLimit{Enabled: true, CapWatts: 140}))
	f.Add(uint32(3), uint8(NetFnOEM), uint8(CmdSetPowerLimit), []byte{1, 2})
	f.Add(uint32(4), uint8(0x00), uint8(CmdGetDeviceID), []byte{})
	f.Add(uint32(5), uint8(NetFnOEM), uint8(0xEE), bytes.Repeat([]byte{0xA5}, 32))

	srv := NewServer(&fakeControl{})
	f.Fuzz(func(t *testing.T, seq uint32, netfn, cmd uint8, payload []byte) {
		resp := srv.Handle(Frame{Seq: seq, NetFn: netfn, Cmd: cmd, Payload: payload})
		if resp.Seq != seq {
			t.Fatalf("response seq %d for request %d", resp.Seq, seq)
		}
		if resp.NetFn != NetFnOEMResponse {
			t.Fatalf("response netfn %#x", resp.NetFn)
		}
		if len(resp.Payload) < 1 {
			t.Fatal("response without completion code")
		}
		out, err := resp.Marshal()
		if err != nil {
			t.Fatalf("response does not marshal: %v", err)
		}
		back, err := ReadFrame(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("response does not re-read: %v", err)
		}
		if back.Seq != seq || back.Cmd != resp.Cmd {
			t.Fatalf("response mutated on the wire: %+v vs %+v", back, resp)
		}
	})
}
