package ipmi

import (
	"errors"
	"net"
	"testing"
	"time"
)

// silentServer accepts TCP connections, reads and discards everything,
// and never responds — the "accepts TCP but never answers" BMC failure
// mode.
func silentServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 256)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestRequestTimeoutOnSilentBMC(t *testing.T) {
	addr := silentServer(t)
	c, err := DialTimeout(addr, time.Second, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.GetPowerReading()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("request against silent BMC succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("error = %v, want a net timeout", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("timeout took %v, want ~100ms", elapsed)
	}
}

func TestBrokenClientFailsFast(t *testing.T) {
	addr := silentServer(t)
	c, err := DialTimeout(addr, time.Second, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.GetPowerReading(); err == nil {
		t.Fatal("first request succeeded")
	}
	// The stream is no longer frame-aligned; subsequent calls must
	// fail immediately instead of waiting out another timeout.
	start := time.Now()
	_, err = c.GetGatingLevel()
	if !errors.Is(err, ErrBroken) {
		t.Errorf("error = %v, want ErrBroken", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("broken client took %v to fail", elapsed)
	}
}

func TestDialTimeoutConnectsToRealServer(t *testing.T) {
	srv := NewServer(ctlStub{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTimeout(addr, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.GetDeviceID(); err != nil {
		t.Fatalf("exchange over DialTimeout client: %v", err)
	}
	// A well-formed completion-code failure must NOT poison the
	// stream.
	if _, err := c.call(0x7F, nil); err == nil {
		t.Fatal("unknown command succeeded")
	}
	if _, err := c.GetDeviceID(); err != nil {
		t.Fatalf("client poisoned by completion-code failure: %v", err)
	}
}

// ctlStub is a minimal NodeControl for wire tests.
type ctlStub struct{}

func (ctlStub) DeviceInfo() DeviceInfo         { return DeviceInfo{DeviceID: 9} }
func (ctlStub) PowerReading() PowerReading     { return PowerReading{CurrentWatts: 150} }
func (ctlStub) SetPowerLimit(PowerLimit) error { return nil }
func (ctlStub) PowerLimit() PowerLimit         { return PowerLimit{} }
func (ctlStub) PStateInfo() PStateInfo         { return PStateInfo{Index: 1, Count: 16, FreqMHz: 2700} }
func (ctlStub) GatingLevel() int               { return 0 }
func (ctlStub) Capabilities() Capabilities     { return Capabilities{MinCapWatts: 120, MaxCapWatts: 180} }
func (ctlStub) Health() Health                 { return Health{} }
