package ipmi

import (
	"bytes"
	"testing"
)

func TestBatchCodecRoundTrip(t *testing.T) {
	ids := []uint32{1, 7, 0xFFFFFFFF, 0}
	b, err := EncodeBatchPollRequest(ids)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchPollRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("ids = %v", got)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("ids = %v", got)
		}
	}

	polls := []BatchPollResult{
		{ID: 3, CC: CCOK, Reading: PowerReading{CurrentWatts: 151.25, AverageWatts: 149.5},
			Limit: PowerLimit{Enabled: true, CapWatts: 140}},
		{ID: 9, CC: CCNotPresent},
	}
	b, err = EncodeBatchPollResponse(polls)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := DecodeBatchPollResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range polls {
		if gp[i] != polls[i] {
			t.Fatalf("poll[%d] = %+v want %+v", i, gp[i], polls[i])
		}
	}

	sets := []BatchSetEntry{
		{ID: 3, Limit: PowerLimit{Enabled: true, CapWatts: 131.5, Epoch: 42}},
		{ID: 5, Limit: PowerLimit{}},
	}
	b, err = EncodeBatchSetRequest(sets)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := DecodeBatchSetRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sets {
		if gs[i] != sets[i] {
			t.Fatalf("set[%d] = %+v want %+v", i, gs[i], sets[i])
		}
	}

	results := []BatchSetResult{{ID: 3, CC: CCOK}, {ID: 5, CC: CCStaleEpoch}}
	b, err = EncodeBatchSetResponse(results)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := DecodeBatchSetResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if gr[i] != results[i] {
			t.Fatalf("result[%d] = %+v want %+v", i, gr[i], results[i])
		}
	}
}

func TestBatchCRCDetectsCorruption(t *testing.T) {
	b, err := EncodeBatchSetRequest([]BatchSetEntry{
		{ID: 1, Limit: PowerLimit{Enabled: true, CapWatts: 140, Epoch: 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0x10
		if _, err := DecodeBatchSetRequest(bad); err == nil {
			// The count byte, an entry byte, or the trailer itself — any
			// flip must fail the length check or the CRC.
			t.Errorf("corruption at byte %d undetected", i)
		}
	}
}

func TestBatchEncodersBoundFrameSize(t *testing.T) {
	big := make([]uint32, 200)
	if _, err := EncodeBatchPollRequest(big); err == nil {
		t.Error("200-id poll request encoded past one frame")
	}
	if _, err := EncodeBatchPollResponse(make([]BatchPollResult, 40)); err == nil {
		t.Error("40-entry poll response encoded past one frame")
	}
	if _, err := EncodeBatchSetRequest(make([]BatchSetEntry, 40)); err == nil {
		t.Error("40-entry set request encoded past one frame")
	}
}

func TestMuxDispatchAndCompletionCodes(t *testing.T) {
	mux := NewMux()
	good := &fakeControl{}
	bad := &fakeControl{fail: true}
	mux.Register(1, NewServer(good))
	mux.Register(2, NewServer(bad))

	entries := []BatchSetEntry{
		{ID: 1, Limit: PowerLimit{Enabled: true, CapWatts: 140}},
		{ID: 2, Limit: PowerLimit{Enabled: true, CapWatts: 140}},
		{ID: 9, Limit: PowerLimit{Enabled: true, CapWatts: 140}},
	}
	payload, err := EncodeBatchSetRequest(entries)
	if err != nil {
		t.Fatal(err)
	}
	resp := mux.Handle(Frame{Seq: 1, NetFn: NetFnOEM, Cmd: CmdBatchSet, Payload: payload})
	if cc := ccOf(resp); cc != CCOK {
		t.Fatalf("batch set cc = %#x", cc)
	}
	results, err := DecodeBatchSetResponse(resp.Payload[1:])
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{CCOK, CCUnspecified, CCNotPresent}
	for i, r := range results {
		if r.CC != want[i] {
			t.Errorf("entry %d cc = %#x want %#x", i, r.CC, want[i])
		}
	}
	if lim := good.PowerLimit(); !lim.Enabled || lim.CapWatts != 140 {
		t.Errorf("node 1 limit = %+v", lim)
	}

	payload, err = EncodeBatchPollRequest([]uint32{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	resp = mux.Handle(Frame{Seq: 2, NetFn: NetFnOEM, Cmd: CmdBatchPoll, Payload: payload})
	polls, err := DecodeBatchPollResponse(resp.Payload[1:])
	if err != nil {
		t.Fatal(err)
	}
	if polls[0].CC != CCOK || polls[0].Reading.CurrentWatts != 151.2 ||
		!polls[0].Limit.Enabled || polls[0].Limit.CapWatts != 140 {
		t.Errorf("poll[0] = %+v", polls[0])
	}
	if polls[1].CC != CCNotPresent {
		t.Errorf("poll[1] cc = %#x", polls[1].CC)
	}

	// A multiplexed connection has no implied node: single-node commands
	// and garbage payloads are rejected, never dispatched.
	resp = mux.Handle(Frame{Seq: 3, NetFn: NetFnOEM, Cmd: CmdGetPowerReading})
	if cc := ccOf(resp); cc != CCInvalidCommand {
		t.Errorf("single-node cmd cc = %#x", cc)
	}
	resp = mux.Handle(Frame{Seq: 4, NetFn: NetFnOEM, Cmd: CmdBatchSet, Payload: []byte{1, 2, 3}})
	if cc := ccOf(resp); cc != CCInvalidData {
		t.Errorf("garbage batch cc = %#x", cc)
	}
}

// TestMuxSharesFenceWithDirectPath is the property the whole sharded
// handoff rests on: a batch push and a direct per-node push advance the
// SAME fencing watermark, so a deposed writer cannot dodge the fence by
// switching transports.
func TestMuxSharesFenceWithDirectPath(t *testing.T) {
	ctl := &fakeControl{}
	srv := NewServer(ctl)
	mux := NewMux()
	mux.Register(7, srv)

	// New owner actuates epoch 5 over the batched path.
	payload, _ := EncodeBatchSetRequest([]BatchSetEntry{
		{ID: 7, Limit: PowerLimit{Enabled: true, CapWatts: 130, Epoch: 5}},
	})
	resp := mux.Handle(Frame{Seq: 1, NetFn: NetFnOEM, Cmd: CmdBatchSet, Payload: payload})
	results, err := DecodeBatchSetResponse(resp.Payload[1:])
	if err != nil || results[0].CC != CCOK {
		t.Fatalf("epoch-5 batch push: %v cc=%#x", err, results[0].CC)
	}
	if srv.FenceEpoch() != 5 {
		t.Fatalf("fence = %d want 5", srv.FenceEpoch())
	}

	// Deposed owner (epoch 3) must be fenced on BOTH paths.
	direct := srv.Handle(Frame{Seq: 2, NetFn: NetFnOEM, Cmd: CmdSetPowerLimit,
		Payload: EncodePowerLimit(PowerLimit{Enabled: true, CapWatts: 170, Epoch: 3})})
	if cc := ccOf(direct); cc != CCStaleEpoch {
		t.Errorf("direct stale push cc = %#x", cc)
	}
	payload, _ = EncodeBatchSetRequest([]BatchSetEntry{
		{ID: 7, Limit: PowerLimit{Enabled: true, CapWatts: 170, Epoch: 3}},
	})
	resp = mux.Handle(Frame{Seq: 3, NetFn: NetFnOEM, Cmd: CmdBatchSet, Payload: payload})
	results, _ = DecodeBatchSetResponse(resp.Payload[1:])
	if results[0].CC != CCStaleEpoch {
		t.Errorf("batched stale push cc = %#x", results[0].CC)
	}
	if lim := ctl.PowerLimit(); lim.CapWatts != 130 {
		t.Errorf("stale push actuated: %+v", lim)
	}
}

func TestClientBatchChunksOverTCP(t *testing.T) {
	mux := NewMux()
	const n = 60 // forces three MaxBatchEntries chunks
	ctls := make([]*fakeControl, n)
	for i := range ctls {
		ctls[i] = &fakeControl{}
		mux.Register(uint32(i), NewServer(ctls[i]))
	}
	addr, err := mux.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	entries := make([]BatchSetEntry, n)
	ids := make([]uint32, n)
	for i := range entries {
		ids[i] = uint32(i)
		entries[i] = BatchSetEntry{
			ID:    uint32(i),
			Limit: PowerLimit{Enabled: true, CapWatts: 120 + float64(i), Epoch: 2},
		}
	}
	results, err := c.BatchSet(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.ID != uint32(i) || r.CC != CCOK {
			t.Fatalf("result[%d] = %+v", i, r)
		}
	}
	polls, err := c.BatchPoll(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range polls {
		if p.ID != uint32(i) || p.CC != CCOK || p.Limit.CapWatts != 120+float64(i) {
			t.Fatalf("poll[%d] = %+v", i, p)
		}
	}
}

// FuzzBatchFrameCodec drives all four batch payload codecs with the
// same arbitrary bytes: none may panic, anything accepted must survive
// its encode∘decode round trip, and the mux dispatch must answer any
// batch frame with a well-formed response.
func FuzzBatchFrameCodec(f *testing.F) {
	if b, err := EncodeBatchPollRequest([]uint32{1, 2, 3}); err == nil {
		f.Add(uint8(CmdBatchPoll), b)
	}
	if b, err := EncodeBatchPollResponse([]BatchPollResult{
		{ID: 1, CC: CCOK, Reading: PowerReading{CurrentWatts: 150}, Limit: PowerLimit{Enabled: true, CapWatts: 140}},
	}); err == nil {
		f.Add(uint8(CmdBatchPoll), b)
	}
	if b, err := EncodeBatchSetRequest([]BatchSetEntry{
		{ID: 9, Limit: PowerLimit{Enabled: true, CapWatts: 131, Epoch: 3}},
	}); err == nil {
		f.Add(uint8(CmdBatchSet), b)
	}
	if b, err := EncodeBatchSetResponse([]BatchSetResult{{ID: 9, CC: CCStaleEpoch}}); err == nil {
		f.Add(uint8(CmdBatchSet), b)
	}
	f.Add(uint8(CmdBatchSet), []byte{})
	f.Add(uint8(CmdBatchPoll), bytes.Repeat([]byte{0xFF}, 64))

	mux := NewMux()
	mux.Register(1, NewServer(&fakeControl{}))
	f.Fuzz(func(t *testing.T, cmd uint8, data []byte) {
		if ids, err := DecodeBatchPollRequest(data); err == nil {
			b, err := EncodeBatchPollRequest(ids)
			if err != nil {
				t.Fatalf("accepted poll request fails to encode: %v", err)
			}
			if !bytes.Equal(b, data) {
				t.Fatalf("poll request round trip mutated bytes")
			}
		}
		if rs, err := DecodeBatchPollResponse(data); err == nil {
			b, err := EncodeBatchPollResponse(rs)
			if err != nil {
				t.Fatalf("accepted poll response fails to encode: %v", err)
			}
			back, err := DecodeBatchPollResponse(b)
			if err != nil || len(back) != len(rs) {
				t.Fatalf("poll response round trip: %v", err)
			}
			for i := range rs {
				if back[i] != rs[i] {
					t.Fatalf("poll response entry %d mutated: %+v vs %+v", i, back[i], rs[i])
				}
			}
		}
		if es, err := DecodeBatchSetRequest(data); err == nil {
			b, err := EncodeBatchSetRequest(es)
			if err != nil {
				t.Fatalf("accepted set request fails to encode: %v", err)
			}
			back, err := DecodeBatchSetRequest(b)
			if err != nil || len(back) != len(es) {
				t.Fatalf("set request round trip: %v", err)
			}
			for i := range es {
				if back[i] != es[i] {
					t.Fatalf("set request entry %d mutated: %+v vs %+v", i, back[i], es[i])
				}
			}
		}
		if rs, err := DecodeBatchSetResponse(data); err == nil {
			b, err := EncodeBatchSetResponse(rs)
			if err != nil {
				t.Fatalf("accepted set response fails to encode: %v", err)
			}
			if !bytes.Equal(b, data) {
				t.Fatalf("set response round trip mutated bytes")
			}
		}
		resp := mux.Handle(Frame{Seq: 1, NetFn: NetFnOEM, Cmd: cmd, Payload: data})
		if len(resp.Payload) < 1 || resp.NetFn != NetFnOEMResponse {
			t.Fatalf("mux response malformed: %+v", resp)
		}
		if _, err := resp.Marshal(); err != nil {
			t.Fatalf("mux response does not marshal: %v", err)
		}
	})
}
