package ipmi

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Seq: 42, NetFn: NetFnOEM, Cmd: CmdGetPowerReading, Payload: []byte{1, 2, 3}}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || got.NetFn != f.NetFn || got.Cmd != f.Cmd || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip = %+v", got)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seq uint32, netfn, cmd uint8, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		fr := Frame{Seq: seq, NetFn: netfn, Cmd: cmd, Payload: payload}
		buf, err := fr.Marshal()
		if err != nil {
			return false
		}
		got, err := ReadFrame(bytes.NewReader(buf))
		if err != nil {
			return false
		}
		return got.Seq == seq && got.NetFn == netfn && got.Cmd == cmd && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	f := Frame{Seq: 7, NetFn: NetFnOEM, Cmd: CmdGetDeviceID, Payload: []byte{9, 9}}
	buf, _ := f.Marshal()
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
			// Flipping a payload or header bit must break the checksum,
			// magic, version, or length check.
			t.Errorf("corruption at byte %d undetected", i)
		}
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	f := Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Marshal(); err == nil {
		t.Error("oversized payload marshalled")
	}
}

func TestPayloadCodecs(t *testing.T) {
	di := DeviceInfo{DeviceID: 3, FirmwareMajor: 2, FirmwareMinor: 5, ManufacturerID: 0x000157, ProductID: 0x0B2D}
	got, err := DecodeDeviceInfo(EncodeDeviceInfo(di))
	if err != nil || got != di {
		t.Errorf("device info = %+v, %v", got, err)
	}
	pr := PowerReading{CurrentWatts: 153.37, AverageWatts: 149.5}
	gp, err := DecodePowerReading(EncodePowerReading(pr))
	if err != nil || gp != pr {
		t.Errorf("power reading = %+v, %v", gp, err)
	}
	pl := PowerLimit{Enabled: true, CapWatts: 137.25}
	gl, err := DecodePowerLimit(EncodePowerLimit(pl))
	if err != nil || gl != pl {
		t.Errorf("power limit = %+v, %v", gl, err)
	}
	ps := PStateInfo{Index: 15, Count: 16, FreqMHz: 1200}
	gps, err := DecodePStateInfo(EncodePStateInfo(ps))
	if err != nil || gps != ps {
		t.Errorf("pstate = %+v, %v", gps, err)
	}
	cap := Capabilities{MinCapWatts: 123.5, MaxCapWatts: 200}
	gc, err := DecodeCapabilities(EncodeCapabilities(cap))
	if err != nil || gc != cap {
		t.Errorf("capabilities = %+v, %v", gc, err)
	}
}

// TestCapabilitiesTierWire: the priority tier rides as the optional
// ninth capability byte; a legacy 8-byte payload from pre-tier
// firmware still decodes, with the tier defaulting to low.
func TestCapabilitiesTierWire(t *testing.T) {
	cap := Capabilities{MinCapWatts: 123.5, MaxCapWatts: 200, Tier: TierHigh}
	enc := EncodeCapabilities(cap)
	if len(enc) != 9 {
		t.Fatalf("encoded capabilities = %d bytes, want 9", len(enc))
	}
	gc, err := DecodeCapabilities(enc)
	if err != nil || gc != cap {
		t.Errorf("tiered capabilities = %+v, %v", gc, err)
	}
	legacy := enc[:8] // pre-tier firmware omits the tier byte
	gl, err := DecodeCapabilities(legacy)
	if err != nil {
		t.Fatalf("legacy 8-byte capabilities rejected: %v", err)
	}
	if gl.Tier != TierLow || gl.MinCapWatts != cap.MinCapWatts || gl.MaxCapWatts != cap.MaxCapWatts {
		t.Errorf("legacy decode = %+v, want tier low with cap range intact", gl)
	}
}

func TestCodecLengthChecks(t *testing.T) {
	if _, err := DecodeDeviceInfo([]byte{1}); err == nil {
		t.Error("short device info accepted")
	}
	if _, err := DecodePowerReading(nil); err == nil {
		t.Error("empty power reading accepted")
	}
	if _, err := DecodePowerLimit([]byte{1, 2}); err == nil {
		t.Error("short power limit accepted")
	}
	if _, err := DecodePStateInfo([]byte{1}); err == nil {
		t.Error("short pstate accepted")
	}
	if _, err := DecodeCapabilities([]byte{1}); err == nil {
		t.Error("short capabilities accepted")
	}
	if _, err := DecodeHealth([]byte{1}); err == nil {
		t.Error("short health accepted")
	}
	for _, h := range []Health{{}, {FailSafe: true}, {InfeasibleCap: true, SensorFaults: 42}} {
		got, err := DecodeHealth(EncodeHealth(h))
		if err != nil || got != h {
			t.Errorf("health round trip: %+v -> %+v, %v", h, got, err)
		}
	}
}

// fakeControl is a scripted NodeControl.
type fakeControl struct {
	mu    sync.Mutex
	limit PowerLimit
	fail  bool
}

func (f *fakeControl) DeviceInfo() DeviceInfo {
	return DeviceInfo{DeviceID: 1, FirmwareMajor: 1, ManufacturerID: 343, ProductID: 2861}
}
func (f *fakeControl) PowerReading() PowerReading {
	return PowerReading{CurrentWatts: 151.2, AverageWatts: 150.0}
}
func (f *fakeControl) SetPowerLimit(l PowerLimit) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errors.New("nope")
	}
	f.limit = l
	return nil
}
func (f *fakeControl) PowerLimit() PowerLimit {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.limit
}
func (f *fakeControl) PStateInfo() PStateInfo { return PStateInfo{Index: 3, Count: 16, FreqMHz: 2400} }
func (f *fakeControl) GatingLevel() int       { return 2 }
func (f *fakeControl) Capabilities() Capabilities {
	return Capabilities{MinCapWatts: 123, MaxCapWatts: 180}
}
func (f *fakeControl) Health() Health { return Health{FailSafe: true, SensorFaults: 7} }

func TestClientServerOverTCP(t *testing.T) {
	ctl := &fakeControl{}
	srv := NewServer(ctl)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	di, err := c.GetDeviceID()
	if err != nil || di.ProductID != 2861 {
		t.Errorf("GetDeviceID = %+v, %v", di, err)
	}
	pr, err := c.GetPowerReading()
	if err != nil || pr.CurrentWatts != 151.2 {
		t.Errorf("GetPowerReading = %+v, %v", pr, err)
	}
	if err := c.SetPowerLimit(PowerLimit{Enabled: true, CapWatts: 140}); err != nil {
		t.Errorf("SetPowerLimit: %v", err)
	}
	lim, err := c.GetPowerLimit()
	if err != nil || !lim.Enabled || lim.CapWatts != 140 {
		t.Errorf("GetPowerLimit = %+v, %v", lim, err)
	}
	ps, err := c.GetPStateInfo()
	if err != nil || ps.FreqMHz != 2400 {
		t.Errorf("GetPStateInfo = %+v, %v", ps, err)
	}
	g, err := c.GetGatingLevel()
	if err != nil || g != 2 {
		t.Errorf("GetGatingLevel = %d, %v", g, err)
	}
	caps, err := c.GetCapabilities()
	if err != nil || caps.MinCapWatts != 123 {
		t.Errorf("GetCapabilities = %+v, %v", caps, err)
	}
	h, err := c.GetHealth()
	if err != nil || !h.FailSafe || h.InfeasibleCap || h.SensorFaults != 7 {
		t.Errorf("GetHealth = %+v, %v", h, err)
	}
}

func TestServerErrorPaths(t *testing.T) {
	srv := NewServer(&fakeControl{fail: true})
	// Unknown command.
	resp := srv.Handle(Frame{NetFn: NetFnOEM, Cmd: 0x99})
	if resp.Payload[0] != CCInvalidCommand {
		t.Errorf("unknown command cc = %#x", resp.Payload[0])
	}
	// Wrong netfn.
	resp = srv.Handle(Frame{NetFn: 0x06, Cmd: CmdGetDeviceID})
	if resp.Payload[0] != CCInvalidCommand {
		t.Errorf("wrong netfn cc = %#x", resp.Payload[0])
	}
	// Bad payload.
	resp = srv.Handle(Frame{NetFn: NetFnOEM, Cmd: CmdSetPowerLimit, Payload: []byte{1}})
	if resp.Payload[0] != CCInvalidData {
		t.Errorf("bad payload cc = %#x", resp.Payload[0])
	}
	// Control rejection.
	resp = srv.Handle(Frame{NetFn: NetFnOEM, Cmd: CmdSetPowerLimit,
		Payload: EncodePowerLimit(PowerLimit{Enabled: true, CapWatts: 1})})
	if resp.Payload[0] != CCUnspecified {
		t.Errorf("rejected set cc = %#x", resp.Payload[0])
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := NewServer(&fakeControl{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				if _, err := c.GetPowerReading(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestClientOverPipe(t *testing.T) {
	// NewClientConn serves in-process transports (tests, embedding).
	srv := NewServer(&fakeControl{})
	a, b := net.Pipe()
	defer a.Close()
	go func() {
		for {
			req, err := ReadFrame(b)
			if err != nil {
				return
			}
			if err := WriteFrame(b, srv.Handle(req)); err != nil {
				return
			}
		}
	}()
	c := NewClientConn(a)
	pr, err := c.GetPowerReading()
	if err != nil || pr.AverageWatts != 150 {
		t.Errorf("pipe GetPowerReading = %+v, %v", pr, err)
	}
}

func TestClientErrorCompletionCodes(t *testing.T) {
	// A control that rejects SetPowerLimit surfaces as a client error.
	srv := NewServer(&fakeControl{fail: true})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetPowerLimit(PowerLimit{Enabled: true, CapWatts: 1}); err == nil {
		t.Error("rejected SetPowerLimit returned no error")
	}
}

func TestClientSurvivesServerClose(t *testing.T) {
	srv := NewServer(&fakeControl{})
	addr, _ := srv.Listen("127.0.0.1:0")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.GetDeviceID(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.GetDeviceID(); err == nil {
		t.Error("call after server close succeeded")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port succeeded")
	}
}

func TestListenOnBadAddress(t *testing.T) {
	srv := NewServer(&fakeControl{})
	if _, err := srv.Listen("256.0.0.1:99999"); err == nil {
		t.Error("Listen on invalid address succeeded")
	}
}

func TestListenAfterClose(t *testing.T) {
	srv := NewServer(&fakeControl{})
	srv.Close()
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen after Close succeeded")
	}
}

// TestClientCloseIdempotent: crash-recovery drills and defer stacks
// close clients more than once; every call after the first must be a
// nil no-op, and calls after Close must fail rather than hang.
func TestClientCloseIdempotent(t *testing.T) {
	srv := NewServer(&fakeControl{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetDeviceID(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("first Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := c.GetDeviceID(); err == nil {
		t.Error("call on a closed client succeeded")
	}
}
