// Package ipmi implements the out-of-band management protocol between
// Intel Data Center Manager and a node's BMC, in the architecture of
// Section II-A of the paper: DCM talks to each Baseboard Management
// Controller over the BMC's dedicated NIC, without involving the host
// operating system.
//
// The wire format is a simplified IPMI-style binary framing: a fixed
// header with sequence number, network function and command codes, a
// length-prefixed payload, and a two's-complement checksum. Command
// numbers follow the Intel Node Manager OEM extension style (power
// reading, power limit, capability discovery).
package ipmi

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol constants.
const (
	magic0  = 'N'
	magic1  = 'C'
	version = 1

	// NetFnOEM is the network function used for the power-management
	// command set (Intel NM uses an OEM netFn).
	NetFnOEM = 0x2E
	// NetFnOEMResponse marks response frames.
	NetFnOEMResponse = 0x2F

	// MaxPayload bounds frame payloads; management traffic is tiny.
	MaxPayload = 512
)

// Command codes.
const (
	CmdGetDeviceID     = 0x01
	CmdGetPowerReading = 0x02
	CmdSetPowerLimit   = 0x03
	CmdGetPowerLimit   = 0x04
	CmdGetPStateInfo   = 0x05
	CmdGetGatingLevel  = 0x06
	CmdGetCapabilities = 0x07
	CmdGetHealth       = 0x08
)

// Completion codes (subset of IPMI's, plus one OEM extension).
const (
	CCOK             = 0x00
	CCInvalidCommand = 0xC1
	CCInvalidData    = 0xCC
	CCUnspecified    = 0xFF
	// CCStaleEpoch (OEM) rejects a SetPowerLimit whose fencing epoch is
	// older than one this BMC has already honoured: the writer lost the
	// leadership lease and must stop actuating.
	CCStaleEpoch = 0xD5
)

// Frame is one protocol data unit.
type Frame struct {
	Seq     uint32
	NetFn   uint8
	Cmd     uint8
	Payload []byte
}

// header layout: magic(2) version(1) seq(4) netfn(1) cmd(1) len(2).
const headerLen = 11

// checksum computes the two's-complement checksum IPMI uses: the sum
// of all bytes plus the checksum equals zero mod 256.
func checksum(parts ...[]byte) byte {
	var s byte
	for _, p := range parts {
		for _, b := range p {
			s += b
		}
	}
	return byte(-int8(s))
}

// Marshal encodes f for the wire.
func (f Frame) Marshal() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("ipmi: payload %d exceeds max %d", len(f.Payload), MaxPayload)
	}
	buf := make([]byte, headerLen+len(f.Payload)+1)
	buf[0], buf[1], buf[2] = magic0, magic1, version
	binary.BigEndian.PutUint32(buf[3:], f.Seq)
	buf[7] = f.NetFn
	buf[8] = f.Cmd
	binary.BigEndian.PutUint16(buf[9:], uint16(len(f.Payload)))
	copy(buf[headerLen:], f.Payload)
	buf[len(buf)-1] = checksum(buf[:len(buf)-1])
	return buf, nil
}

// ReadFrame decodes one frame from r, verifying magic, version, bounds
// and checksum.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return Frame{}, fmt.Errorf("ipmi: bad magic %#x %#x", hdr[0], hdr[1])
	}
	if hdr[2] != version {
		return Frame{}, fmt.Errorf("ipmi: unsupported version %d", hdr[2])
	}
	plen := binary.BigEndian.Uint16(hdr[9:])
	if plen > MaxPayload {
		return Frame{}, fmt.Errorf("ipmi: payload length %d exceeds max", plen)
	}
	body := make([]byte, int(plen)+1)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	sum := checksum(hdr[:], body[:plen])
	if body[plen] != sum {
		return Frame{}, fmt.Errorf("ipmi: checksum mismatch: got %#x want %#x", body[plen], sum)
	}
	return Frame{
		Seq:     binary.BigEndian.Uint32(hdr[3:]),
		NetFn:   hdr[7],
		Cmd:     hdr[8],
		Payload: body[:plen:plen],
	}, nil
}

// WriteFrame encodes and writes f to w.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := f.Marshal()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// --- payload codecs -------------------------------------------------

// Watts are carried as centiwatts in a uint32, IPMI style (no floats
// on the wire).
func putWatts(b []byte, w float64) {
	binary.BigEndian.PutUint32(b, uint32(w*100+0.5))
}

func getWatts(b []byte) float64 {
	return float64(binary.BigEndian.Uint32(b)) / 100
}

// DeviceInfo describes a managed node.
type DeviceInfo struct {
	DeviceID       uint8
	FirmwareMajor  uint8
	FirmwareMinor  uint8
	ManufacturerID uint32
	ProductID      uint16
}

// EncodeDeviceInfo packs a GetDeviceID response payload.
func EncodeDeviceInfo(d DeviceInfo) []byte {
	b := make([]byte, 9)
	b[0] = d.DeviceID
	b[1] = d.FirmwareMajor
	b[2] = d.FirmwareMinor
	binary.BigEndian.PutUint32(b[3:], d.ManufacturerID)
	binary.BigEndian.PutUint16(b[7:], d.ProductID)
	return b
}

// DecodeDeviceInfo unpacks a GetDeviceID response payload.
func DecodeDeviceInfo(b []byte) (DeviceInfo, error) {
	if len(b) != 9 {
		return DeviceInfo{}, fmt.Errorf("ipmi: device info payload length %d", len(b))
	}
	return DeviceInfo{
		DeviceID:       b[0],
		FirmwareMajor:  b[1],
		FirmwareMinor:  b[2],
		ManufacturerID: binary.BigEndian.Uint32(b[3:]),
		ProductID:      binary.BigEndian.Uint16(b[7:]),
	}, nil
}

// PowerReading is a GetPowerReading response.
type PowerReading struct {
	CurrentWatts float64
	AverageWatts float64
}

// EncodePowerReading packs a power reading.
func EncodePowerReading(p PowerReading) []byte {
	b := make([]byte, 8)
	putWatts(b[0:], p.CurrentWatts)
	putWatts(b[4:], p.AverageWatts)
	return b
}

// DecodePowerReading unpacks a power reading.
func DecodePowerReading(b []byte) (PowerReading, error) {
	if len(b) != 8 {
		return PowerReading{}, fmt.Errorf("ipmi: power reading payload length %d", len(b))
	}
	return PowerReading{CurrentWatts: getWatts(b[0:]), AverageWatts: getWatts(b[4:])}, nil
}

// PowerLimit is a Set/GetPowerLimit payload.
type PowerLimit struct {
	Enabled  bool
	CapWatts float64
	// Epoch is the writer's leadership epoch, used as a fencing token:
	// a BMC that has honoured epoch E rejects pushes stamped with any
	// lower non-zero epoch (CCStaleEpoch). Zero means unfenced — a solo
	// manager with no HA pair.
	Epoch uint64
}

// EncodePowerLimit packs a power limit: flag(1) centiwatts(4), plus an
// optional trailing epoch(8) when the writer is fenced. Epoch-zero
// limits use the 5-byte legacy layout so pre-HA peers interoperate.
func EncodePowerLimit(p PowerLimit) []byte {
	n := 5
	if p.Epoch > 0 {
		n = 13
	}
	b := make([]byte, n)
	if p.Enabled {
		b[0] = 1
	}
	putWatts(b[1:], p.CapWatts)
	if p.Epoch > 0 {
		binary.BigEndian.PutUint64(b[5:], p.Epoch)
	}
	return b
}

// DecodePowerLimit unpacks a power limit. The epoch is optional: a
// 5-byte payload (pre-HA firmware or an unfenced writer) decodes as
// epoch zero.
func DecodePowerLimit(b []byte) (PowerLimit, error) {
	if len(b) != 5 && len(b) != 13 {
		return PowerLimit{}, fmt.Errorf("ipmi: power limit payload length %d", len(b))
	}
	p := PowerLimit{Enabled: b[0] != 0, CapWatts: getWatts(b[1:])}
	if len(b) == 13 {
		p.Epoch = binary.BigEndian.Uint64(b[5:])
	}
	return p, nil
}

// PStateInfo is a GetPStateInfo response.
type PStateInfo struct {
	Index   uint8
	Count   uint8
	FreqMHz uint16
}

// EncodePStateInfo packs P-state information.
func EncodePStateInfo(p PStateInfo) []byte {
	b := make([]byte, 4)
	b[0] = p.Index
	b[1] = p.Count
	binary.BigEndian.PutUint16(b[2:], p.FreqMHz)
	return b
}

// DecodePStateInfo unpacks P-state information.
func DecodePStateInfo(b []byte) (PStateInfo, error) {
	if len(b) != 4 {
		return PStateInfo{}, fmt.Errorf("ipmi: pstate payload length %d", len(b))
	}
	return PStateInfo{Index: b[0], Count: b[1], FreqMHz: binary.BigEndian.Uint16(b[2:])}, nil
}

// Capabilities is a GetCapabilities response: the cap range the
// platform can honour, plus the priority tier the platform advertises
// for budget allocation.
type Capabilities struct {
	MinCapWatts float64 // at/below this the platform cannot track the cap
	MaxCapWatts float64
	Tier        uint8 // TierLow or TierHigh
}

// Wire values for Capabilities.Tier.
const (
	TierLow  uint8 = 0
	TierHigh uint8 = 1
)

// EncodeCapabilities packs a capability range: min(4) max(4) tier(1).
func EncodeCapabilities(c Capabilities) []byte {
	b := make([]byte, 9)
	putWatts(b[0:], c.MinCapWatts)
	putWatts(b[4:], c.MaxCapWatts)
	b[8] = c.Tier
	return b
}

// DecodeCapabilities unpacks a capability range. The tier byte is
// optional: an 8-byte payload (pre-tier firmware) decodes as TierLow.
func DecodeCapabilities(b []byte) (Capabilities, error) {
	if len(b) != 8 && len(b) != 9 {
		return Capabilities{}, fmt.Errorf("ipmi: capabilities payload length %d", len(b))
	}
	c := Capabilities{MinCapWatts: getWatts(b[0:]), MaxCapWatts: getWatts(b[4:])}
	if len(b) == 9 {
		c.Tier = b[8]
	}
	return c, nil
}

// Health is a GetHealth response: the BMC's defensive-controller
// status (fail-safe mode, lifetime sensor-fault count, infeasible
// active cap).
type Health struct {
	FailSafe      bool
	SensorFaults  uint32
	InfeasibleCap bool
}

// Health flag bits.
const (
	healthFailSafe      = 1 << 0
	healthInfeasibleCap = 1 << 1
)

// EncodeHealth packs a health report: flags(1) sensorFaults(4).
func EncodeHealth(h Health) []byte {
	b := make([]byte, 5)
	if h.FailSafe {
		b[0] |= healthFailSafe
	}
	if h.InfeasibleCap {
		b[0] |= healthInfeasibleCap
	}
	binary.BigEndian.PutUint32(b[1:], h.SensorFaults)
	return b
}

// DecodeHealth unpacks a health report.
func DecodeHealth(b []byte) (Health, error) {
	if len(b) != 5 {
		return Health{}, fmt.Errorf("ipmi: health payload length %d", len(b))
	}
	return Health{
		FailSafe:      b[0]&healthFailSafe != 0,
		InfeasibleCap: b[0]&healthInfeasibleCap != 0,
		SensorFaults:  binary.BigEndian.Uint32(b[1:]),
	}, nil
}
