package ipmi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
)

// Batched session multiplexing: one shared connection carries the
// management traffic for many logical node sessions, so a leaf manager
// fronting a 10k-node shard does not need 10k TCP connections. A batch
// frame addresses nodes by numeric ID and returns a per-node completion
// code for every entry, so one dead node cannot fail a whole batch.
//
// Batch payloads carry their own CRC-32 (IEEE) trailer on top of the
// frame checksum: the frame checksum is a single byte and batch frames
// are the largest payloads in the protocol, where a one-byte sum is
// weakest. The CRC covers every payload byte before the trailer.

// Batch command codes.
const (
	CmdBatchPoll = 0x09
	CmdBatchSet  = 0x0A
)

// CCNotPresent (IPMI "requested sensor, data, or record not present")
// is the per-entry completion code for a node ID the endpoint does not
// multiplex.
const CCNotPresent = 0xCB

// MaxBatchEntries bounds one batch frame. 24 entries keeps every batch
// payload direction — including the 18-byte-per-entry poll response —
// inside MaxPayload; Client.BatchPoll/BatchSet chunk transparently.
const MaxBatchEntries = 24

// Per-entry wire sizes.
const (
	batchPollReqEntry  = 4              // id
	batchPollRespEntry = 4 + 1 + 8 + 5  // id cc reading(8) limit flag+centiwatts(5)
	batchSetReqEntry   = 4 + 1 + 4 + 8  // id flag centiwatts epoch
	batchSetRespEntry  = 4 + 1          // id cc
	batchOverhead      = 1 + 4          // count byte + crc32 trailer
)

// BatchPollResult is one node's slot in a BatchPoll response. Reading
// and Limit are meaningful only when CC == CCOK; Limit carries the
// applied policy (flag + watts, no epoch) so a new owner can learn —
// and re-assert under its own epoch — the caps a previous owner left
// behind during a shard handoff.
type BatchPollResult struct {
	ID      uint32
	CC      byte
	Reading PowerReading
	Limit   PowerLimit
}

// BatchSetEntry is one node's slot in a BatchSet request. The limit's
// epoch rides every entry (fixed 8-byte field, unlike the single-node
// codec's optional trailer) and is fenced per node by the endpoint.
type BatchSetEntry struct {
	ID    uint32
	Limit PowerLimit
}

// BatchSetResult is one node's slot in a BatchSet response.
type BatchSetResult struct {
	ID uint32
	CC byte
}

// sealBatch appends the CRC-32 trailer over everything written so far.
func sealBatch(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// openBatch validates the count byte, the exact entry length and the
// CRC trailer, returning the entry bytes and count.
func openBatch(b []byte, entrySize int) ([]byte, int, error) {
	if len(b) < batchOverhead {
		return nil, 0, fmt.Errorf("ipmi: batch payload length %d", len(b))
	}
	n := int(b[0])
	if len(b) != 1+n*entrySize+4 {
		return nil, 0, fmt.Errorf("ipmi: batch payload length %d for %d entries of %d", len(b), n, entrySize)
	}
	body := b[: len(b)-4 : len(b)-4]
	if got, want := binary.BigEndian.Uint32(b[len(b)-4:]), crc32.ChecksumIEEE(body); got != want {
		return nil, 0, fmt.Errorf("ipmi: batch crc mismatch: got %#x want %#x", got, want)
	}
	return body[1:], n, nil
}

// EncodeBatchPollRequest packs a BatchPoll request: count(1) ids(4n)
// crc(4).
func EncodeBatchPollRequest(ids []uint32) ([]byte, error) {
	if err := checkBatchLen(len(ids), batchPollReqEntry); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 1+len(ids)*batchPollReqEntry+4)
	b = append(b, byte(len(ids)))
	for _, id := range ids {
		b = binary.BigEndian.AppendUint32(b, id)
	}
	return sealBatch(b), nil
}

// DecodeBatchPollRequest unpacks a BatchPoll request.
func DecodeBatchPollRequest(b []byte) ([]uint32, error) {
	body, n, err := openBatch(b, batchPollReqEntry)
	if err != nil {
		return nil, err
	}
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = binary.BigEndian.Uint32(body[i*batchPollReqEntry:])
	}
	return ids, nil
}

// EncodeBatchPollResponse packs a BatchPoll response: count(1) then per
// entry id(4) cc(1) current(4) average(4) capEnabled(1) capWatts(4),
// then crc(4).
func EncodeBatchPollResponse(results []BatchPollResult) ([]byte, error) {
	if err := checkBatchLen(len(results), batchPollRespEntry); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 1+len(results)*batchPollRespEntry+4)
	b = append(b, byte(len(results)))
	for _, r := range results {
		b = binary.BigEndian.AppendUint32(b, r.ID)
		b = append(b, r.CC)
		var e [17]byte
		putWatts(e[0:], r.Reading.CurrentWatts)
		putWatts(e[4:], r.Reading.AverageWatts)
		if r.Limit.Enabled {
			e[8] = 1
		}
		putWatts(e[9:], r.Limit.CapWatts)
		b = append(b, e[:13]...)
	}
	return sealBatch(b), nil
}

// DecodeBatchPollResponse unpacks a BatchPoll response.
func DecodeBatchPollResponse(b []byte) ([]BatchPollResult, error) {
	body, n, err := openBatch(b, batchPollRespEntry)
	if err != nil {
		return nil, err
	}
	out := make([]BatchPollResult, n)
	for i := range out {
		e := body[i*batchPollRespEntry:]
		out[i] = BatchPollResult{
			ID: binary.BigEndian.Uint32(e),
			CC: e[4],
			Reading: PowerReading{
				CurrentWatts: getWatts(e[5:]),
				AverageWatts: getWatts(e[9:]),
			},
			Limit: PowerLimit{Enabled: e[13] != 0, CapWatts: getWatts(e[14:])},
		}
	}
	return out, nil
}

// EncodeBatchSetRequest packs a BatchSet request: count(1) then per
// entry id(4) enabled(1) centiwatts(4) epoch(8), then crc(4).
func EncodeBatchSetRequest(entries []BatchSetEntry) ([]byte, error) {
	if err := checkBatchLen(len(entries), batchSetReqEntry); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 1+len(entries)*batchSetReqEntry+4)
	b = append(b, byte(len(entries)))
	for _, e := range entries {
		b = binary.BigEndian.AppendUint32(b, e.ID)
		if e.Limit.Enabled {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		var w [4]byte
		putWatts(w[:], e.Limit.CapWatts)
		b = append(b, w[:]...)
		b = binary.BigEndian.AppendUint64(b, e.Limit.Epoch)
	}
	return sealBatch(b), nil
}

// DecodeBatchSetRequest unpacks a BatchSet request.
func DecodeBatchSetRequest(b []byte) ([]BatchSetEntry, error) {
	body, n, err := openBatch(b, batchSetReqEntry)
	if err != nil {
		return nil, err
	}
	out := make([]BatchSetEntry, n)
	for i := range out {
		e := body[i*batchSetReqEntry:]
		out[i] = BatchSetEntry{
			ID: binary.BigEndian.Uint32(e),
			Limit: PowerLimit{
				Enabled:  e[4] != 0,
				CapWatts: getWatts(e[5:]),
				Epoch:    binary.BigEndian.Uint64(e[9:]),
			},
		}
	}
	return out, nil
}

// EncodeBatchSetResponse packs a BatchSet response: count(1) then per
// entry id(4) cc(1), then crc(4).
func EncodeBatchSetResponse(results []BatchSetResult) ([]byte, error) {
	if err := checkBatchLen(len(results), batchSetRespEntry); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 1+len(results)*batchSetRespEntry+4)
	b = append(b, byte(len(results)))
	for _, r := range results {
		b = binary.BigEndian.AppendUint32(b, r.ID)
		b = append(b, r.CC)
	}
	return sealBatch(b), nil
}

// DecodeBatchSetResponse unpacks a BatchSet response.
func DecodeBatchSetResponse(b []byte) ([]BatchSetResult, error) {
	body, n, err := openBatch(b, batchSetRespEntry)
	if err != nil {
		return nil, err
	}
	out := make([]BatchSetResult, n)
	for i := range out {
		e := body[i*batchSetRespEntry:]
		out[i] = BatchSetResult{ID: binary.BigEndian.Uint32(e), CC: e[4]}
	}
	return out, nil
}

// checkBatchLen bounds one encoded batch to a single frame.
func checkBatchLen(n, entrySize int) error {
	if n > 255 || batchOverhead+n*entrySize > MaxPayload {
		return fmt.Errorf("ipmi: batch of %d entries exceeds one frame", n)
	}
	return nil
}

// Mux multiplexes many node endpoints behind one listener. Batch
// entries are dispatched through each node's own *Server.Handle as
// inner frames, so the per-node fencing watermark is shared between
// the batched path and any direct per-node connection — a deposed
// leaf cannot sneak a stale cap past the fence by switching transports.
type Mux struct {
	mu    sync.RWMutex
	nodes map[uint32]*Server

	lnMu     sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewMux builds an empty multiplexer.
func NewMux() *Mux {
	return &Mux{nodes: make(map[uint32]*Server), conns: make(map[net.Conn]struct{})}
}

// Register exposes srv as node id. Re-registering an id replaces the
// previous endpoint.
func (m *Mux) Register(id uint32, srv *Server) {
	m.mu.Lock()
	m.nodes[id] = srv
	m.mu.Unlock()
}

// Unregister removes node id; subsequent batch entries for it complete
// with CCNotPresent.
func (m *Mux) Unregister(id uint32) {
	m.mu.Lock()
	delete(m.nodes, id)
	m.mu.Unlock()
}

// node looks up one endpoint.
func (m *Mux) node(id uint32) *Server {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.nodes[id]
}

// Handle processes one batch request frame. Non-batch commands are
// rejected: a multiplexed connection has no single implied node to
// route them to.
func (m *Mux) Handle(req Frame) Frame {
	resp := Frame{Seq: req.Seq, NetFn: NetFnOEMResponse, Cmd: req.Cmd}
	fail := func(cc byte) Frame {
		resp.Payload = []byte{cc}
		return resp
	}
	if req.NetFn != NetFnOEM {
		return fail(CCInvalidCommand)
	}
	switch req.Cmd {
	case CmdBatchPoll:
		ids, err := DecodeBatchPollRequest(req.Payload)
		if err != nil {
			return fail(CCInvalidData)
		}
		results := make([]BatchPollResult, len(ids))
		for i, id := range ids {
			results[i] = m.pollOne(req.Seq, id)
		}
		b, err := EncodeBatchPollResponse(results)
		if err != nil {
			return fail(CCInvalidData)
		}
		resp.Payload = append([]byte{CCOK}, b...)
	case CmdBatchSet:
		entries, err := DecodeBatchSetRequest(req.Payload)
		if err != nil {
			return fail(CCInvalidData)
		}
		results := make([]BatchSetResult, len(entries))
		for i, e := range entries {
			results[i] = BatchSetResult{ID: e.ID, CC: m.setOne(req.Seq, e)}
		}
		b, err := EncodeBatchSetResponse(results)
		if err != nil {
			return fail(CCInvalidData)
		}
		resp.Payload = append([]byte{CCOK}, b...)
	default:
		return fail(CCInvalidCommand)
	}
	return resp
}

// pollOne reads one node's power and applied limit through its own
// server dispatch.
func (m *Mux) pollOne(seq uint32, id uint32) BatchPollResult {
	r := BatchPollResult{ID: id}
	srv := m.node(id)
	if srv == nil {
		r.CC = CCNotPresent
		return r
	}
	pr := srv.Handle(Frame{Seq: seq, NetFn: NetFnOEM, Cmd: CmdGetPowerReading})
	if cc := ccOf(pr); cc != CCOK {
		r.CC = cc
		return r
	}
	reading, err := DecodePowerReading(pr.Payload[1:])
	if err != nil {
		r.CC = CCUnspecified
		return r
	}
	r.Reading = reading
	pl := srv.Handle(Frame{Seq: seq, NetFn: NetFnOEM, Cmd: CmdGetPowerLimit})
	if cc := ccOf(pl); cc != CCOK {
		r.CC = cc
		return r
	}
	lim, err := DecodePowerLimit(pl.Payload[1:])
	if err != nil {
		r.CC = CCUnspecified
		return r
	}
	r.Limit = lim
	r.CC = CCOK
	return r
}

// setOne pushes one node's limit through its own server dispatch —
// including the fencing check, whose watermark this shares with the
// per-node path.
func (m *Mux) setOne(seq uint32, e BatchSetEntry) byte {
	srv := m.node(e.ID)
	if srv == nil {
		return CCNotPresent
	}
	return ccOf(srv.Handle(Frame{
		Seq: seq, NetFn: NetFnOEM, Cmd: CmdSetPowerLimit,
		Payload: EncodePowerLimit(e.Limit),
	}))
}

// ccOf extracts a response frame's completion code.
func ccOf(f Frame) byte {
	if len(f.Payload) < 1 {
		return CCUnspecified
	}
	return f.Payload[0]
}

// Listen starts accepting multiplexed connections on addr and returns
// the bound address.
func (m *Mux) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	m.lnMu.Lock()
	if m.closed {
		m.lnMu.Unlock()
		ln.Close()
		return "", errors.New("ipmi: mux closed")
	}
	m.listener = ln
	m.lnMu.Unlock()
	m.wg.Add(1)
	go m.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (m *Mux) acceptLoop(ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		m.lnMu.Lock()
		if m.closed {
			m.lnMu.Unlock()
			conn.Close()
			return
		}
		m.conns[conn] = struct{}{}
		m.lnMu.Unlock()
		m.wg.Add(1)
		go m.serveConn(conn)
	}
}

func (m *Mux) serveConn(conn net.Conn) {
	defer m.wg.Done()
	defer func() {
		conn.Close()
		m.lnMu.Lock()
		delete(m.conns, conn)
		m.lnMu.Unlock()
	}()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if err := WriteFrame(conn, m.Handle(req)); err != nil {
			return
		}
	}
}

// Close stops the listener and all connections.
func (m *Mux) Close() error {
	m.lnMu.Lock()
	m.closed = true
	ln := m.listener
	for c := range m.conns {
		c.Close()
	}
	m.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	m.wg.Wait()
	return nil
}

// BatchPoll reads power and applied limits for ids over a multiplexed
// connection, chunking transparently at MaxBatchEntries. Results come
// back in request order, one per id, each with its own completion code.
func (c *Client) BatchPoll(ids []uint32) ([]BatchPollResult, error) {
	out := make([]BatchPollResult, 0, len(ids))
	for len(ids) > 0 {
		n := min(len(ids), MaxBatchEntries)
		payload, err := EncodeBatchPollRequest(ids[:n])
		if err != nil {
			return nil, err
		}
		b, err := c.call(CmdBatchPoll, payload)
		if err != nil {
			return nil, err
		}
		results, err := DecodeBatchPollResponse(b)
		if err != nil {
			return nil, c.markBroken(err)
		}
		if len(results) != n {
			return nil, c.markBroken(fmt.Errorf("ipmi: batch poll returned %d results for %d ids", len(results), n))
		}
		out = append(out, results...)
		ids = ids[n:]
	}
	return out, nil
}

// BatchSet pushes limits for entries over a multiplexed connection,
// chunking transparently at MaxBatchEntries. Every entry gets its own
// completion code; a fenced or absent node fails only its slot.
func (c *Client) BatchSet(entries []BatchSetEntry) ([]BatchSetResult, error) {
	out := make([]BatchSetResult, 0, len(entries))
	for len(entries) > 0 {
		n := min(len(entries), MaxBatchEntries)
		payload, err := EncodeBatchSetRequest(entries[:n])
		if err != nil {
			return nil, err
		}
		b, err := c.call(CmdBatchSet, payload)
		if err != nil {
			return nil, err
		}
		results, err := DecodeBatchSetResponse(b)
		if err != nil {
			return nil, c.markBroken(err)
		}
		if len(results) != n {
			return nil, c.markBroken(fmt.Errorf("ipmi: batch set returned %d results for %d entries", len(results), n))
		}
		out = append(out, results...)
		entries = entries[n:]
	}
	return out, nil
}

// markBroken poisons the stream after a malformed batch response: the
// frame was aligned but its content cannot be trusted.
func (c *Client) markBroken(err error) error {
	c.mu.Lock()
	c.broken = true
	c.mu.Unlock()
	return err
}
