package cpu

import (
	"testing"
	"testing/quick"

	"nodecap/internal/simtime"
)

func TestSandyBridgePStates(t *testing.T) {
	tab := SandyBridgePStates()
	if len(tab) != 16 {
		t.Fatalf("P-state count = %d, want 16 (Section III)", len(tab))
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.Fastest().FreqMHz != 2700 {
		t.Errorf("P0 freq = %d", tab.Fastest().FreqMHz)
	}
	if tab.Slowest().FreqMHz != 1200 {
		t.Errorf("P15 freq = %d", tab.Slowest().FreqMHz)
	}
	if tab.Fastest().VoltageMV != 1100 || tab.Slowest().VoltageMV != 800 {
		t.Errorf("voltage endpoints = %d, %d", tab.Fastest().VoltageMV, tab.Slowest().VoltageMV)
	}
	// Monotone voltage.
	for i := 1; i < len(tab); i++ {
		if tab[i].VoltageMV > tab[i-1].VoltageMV {
			t.Errorf("voltage not descending at P%d", i)
		}
	}
}

func TestByFreq(t *testing.T) {
	tab := SandyBridgePStates()
	p, ok := tab.ByFreq(2000)
	if !ok || p.FreqMHz != 2000 {
		t.Errorf("ByFreq(2000) = %v, %v", p, ok)
	}
	if _, ok := tab.ByFreq(1234); ok {
		t.Error("ByFreq(1234) found a state")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []PStateTable{
		{},
		{{Index: 0, FreqMHz: 0, VoltageMV: 100}},
		{{Index: 1, FreqMHz: 1000, VoltageMV: 100}},                                            // wrong index
		{{Index: 0, FreqMHz: 1000, VoltageMV: 900}, {Index: 1, FreqMHz: 1000, VoltageMV: 900}}, // not descending
	}
	for i, tab := range bad {
		if err := tab.Validate(); err == nil {
			t.Errorf("bad table %d accepted", i)
		}
	}
}

func TestPStateString(t *testing.T) {
	p := PState{Index: 3, FreqMHz: 2400, VoltageMV: 1040}
	if got := p.String(); got != "P3(2400MHz,1040mV)" {
		t.Errorf("String = %q", got)
	}
}

func newCore(t *testing.T) *Core {
	t.Helper()
	c, err := NewCore(0, SandyBridgePStates(), SandyBridgeCStates())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetPStateClampsAndCharges(t *testing.T) {
	c := newCore(t)
	if lat := c.SetPState(0); lat != 0 {
		t.Errorf("no-op transition charged %v", lat)
	}
	if lat := c.SetPState(5); lat != 10*simtime.Microsecond {
		t.Errorf("transition latency = %v", lat)
	}
	if c.PState().FreqMHz != 2200 {
		t.Errorf("P5 freq = %d", c.PState().FreqMHz)
	}
	c.SetPState(100)
	if c.PStateIndex() != 15 {
		t.Errorf("clamped index = %d", c.PStateIndex())
	}
	c.SetPState(-1)
	if c.PStateIndex() != 0 {
		t.Errorf("clamped index = %d", c.PStateIndex())
	}
	if c.Transitions() != 3 {
		t.Errorf("Transitions = %d", c.Transitions())
	}
}

func TestCStateLadder(t *testing.T) {
	c := newCore(t)
	if c.CState().Name != "C0" {
		t.Errorf("initial C-state %s", c.CState().Name)
	}
	c.EnterCState(6)
	if c.CState().Name != "C6" {
		t.Errorf("EnterCState(6) -> %s", c.CState().Name)
	}
	c.EnterCState(4) // deepest <= 4 is C3
	if c.CState().Name != "C3" {
		t.Errorf("EnterCState(4) -> %s", c.CState().Name)
	}
	wake := c.Wake()
	if c.CState().Name != "C0" {
		t.Errorf("after Wake -> %s", c.CState().Name)
	}
	if wake != 50*simtime.Microsecond {
		t.Errorf("C3 wake latency = %v", wake)
	}
}

func TestAverageFrequencyTimeWeighted(t *testing.T) {
	c := newCore(t)
	// 1 ms at 2700, 1 ms at 1200 -> average 1950.
	c.AccountBusy(simtime.Millisecond)
	c.SetPState(15)
	c.AccountBusy(simtime.Millisecond)
	if got := c.AverageFreqMHz(); got < 1949 || got > 1951 {
		t.Errorf("AverageFreqMHz = %v, want ~1950", got)
	}
}

func TestAverageFrequencyIncludesStalls(t *testing.T) {
	c := newCore(t)
	c.SetPState(15)
	c.AccountStall(2 * simtime.Millisecond)
	if got := c.AverageFreqMHz(); got != 1200 {
		t.Errorf("AverageFreqMHz = %v", got)
	}
}

func TestActivity(t *testing.T) {
	c := newCore(t)
	if c.Activity() != 0 {
		t.Errorf("idle Activity = %v", c.Activity())
	}
	c.AccountBusy(3 * simtime.Millisecond)
	c.AccountStall(simtime.Millisecond)
	if got := c.Activity(); got != 0.75 {
		t.Errorf("Activity = %v", got)
	}
}

func TestCyclesTrackFrequency(t *testing.T) {
	c := newCore(t)
	c.AccountBusy(simtime.Second)
	if c.Cycles != 2_700_000_000 {
		t.Errorf("Cycles at 2.7GHz for 1s = %d", c.Cycles)
	}
	c.ResetCounters()
	c.SetPState(15)
	c.AccountBusy(simtime.Second)
	if c.Cycles != 1_200_000_000 {
		t.Errorf("Cycles at 1.2GHz for 1s = %d", c.Cycles)
	}
}

func TestResetCountersKeepsState(t *testing.T) {
	c := newCore(t)
	c.SetPState(7)
	c.AccountBusy(simtime.Millisecond)
	c.InstructionsCommitted = 42
	c.ResetCounters()
	if c.Cycles != 0 || c.InstructionsCommitted != 0 || c.BusyTime() != 0 {
		t.Error("counters not reset")
	}
	if c.PStateIndex() != 7 {
		t.Error("P-state lost on counter reset")
	}
}

func TestNewCoreRejectsBadInput(t *testing.T) {
	if _, err := NewCore(0, PStateTable{}, SandyBridgeCStates()); err == nil {
		t.Error("empty P-state table accepted")
	}
	if _, err := NewCore(0, SandyBridgePStates(), nil); err == nil {
		t.Error("empty C-state list accepted")
	}
}

// TestAverageFreqBoundedProperty: the time-weighted average frequency
// always lies within the P-state table's range.
func TestAverageFreqBoundedProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		c := MustCore(0, SandyBridgePStates(), SandyBridgeCStates())
		for _, s := range steps {
			c.SetPState(int(s) % 16)
			c.AccountBusy(simtime.Duration(s%7+1) * simtime.Microsecond)
		}
		avg := c.AverageFreqMHz()
		return avg >= 1200 && avg <= 2700
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
