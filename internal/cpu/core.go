package cpu

import (
	"fmt"

	"nodecap/internal/simtime"
)

// Core models one processor core's power-management state plus the
// cycle/instruction accounting the study's counters are built on.
// Memory-hierarchy timing lives in internal/mem; the machine package
// drives both.
type Core struct {
	id      int
	pstates PStateTable
	cstates []CState

	curP int // index into pstates
	curC int // index into cstates

	// Time-weighted frequency accumulation for the "Average
	// Frequency" column of Table II.
	freqTimeProduct float64          // Σ freqMHz * dt(ps)
	busyTime        simtime.Duration // time attributed to execution
	stallTime       simtime.Duration // time stalled on memory

	transitions uint64 // P-state changes

	// Architectural counters (the PAPI events of Section III).
	InstructionsCommitted uint64
	InstructionsExecuted  uint64 // includes speculative work
	LoadsExecuted         uint64
	StoresExecuted        uint64
	Cycles                uint64
}

// NewCore builds a core with the given P-state table at P0/C0.
func NewCore(id int, pstates PStateTable, cstates []CState) (*Core, error) {
	if err := pstates.Validate(); err != nil {
		return nil, err
	}
	if len(cstates) == 0 {
		return nil, fmt.Errorf("cpu: core %d: no C-states", id)
	}
	return &Core{id: id, pstates: pstates, cstates: cstates}, nil
}

// MustCore is NewCore for static configurations.
func MustCore(id int, pstates PStateTable, cstates []CState) *Core {
	c, err := NewCore(id, pstates, cstates)
	if err != nil {
		panic(err)
	}
	return c
}

// ID reports the core number.
func (c *Core) ID() int { return c.id }

// PStates returns the core's P-state table.
func (c *Core) PStates() PStateTable { return c.pstates }

// PState reports the current operating point.
func (c *Core) PState() PState { return c.pstates[c.curP] }

// PStateIndex reports the current P-state index.
func (c *Core) PStateIndex() int { return c.curP }

// SetPState moves the core to P-state index i (clamped to the table),
// returning the transition latency: Sandy Bridge voltage/frequency
// transitions stall the core for on the order of 10 µs.
func (c *Core) SetPState(i int) simtime.Duration {
	if i < 0 {
		i = 0
	}
	if i >= len(c.pstates) {
		i = len(c.pstates) - 1
	}
	if i == c.curP {
		return 0
	}
	c.curP = i
	c.transitions++
	return 10 * simtime.Microsecond
}

// Transitions reports how many P-state changes have occurred.
func (c *Core) Transitions() uint64 { return c.transitions }

// CState reports the current idle state.
func (c *Core) CState() CState { return c.cstates[c.curC] }

// EnterCState moves to the deepest C-state with Index <= idx,
// returning the wake latency that will be paid on the next EnterC0.
func (c *Core) EnterCState(idx int) {
	best := 0
	for i, s := range c.cstates {
		if s.Index <= idx {
			best = i
		}
	}
	c.curC = best
}

// Wake returns the core to C0, reporting the exit latency.
func (c *Core) Wake() simtime.Duration {
	wake := simtime.FromNanos(c.cstates[c.curC].WakeMicros * 1000)
	c.curC = 0
	return wake
}

// AccountBusy charges d of execution time at the current frequency:
// cycles advance and the time-weighted frequency average includes it.
func (c *Core) AccountBusy(d simtime.Duration) {
	c.busyTime += d
	f := c.PState().FreqMHz
	c.freqTimeProduct += float64(f) * float64(d)
	c.Cycles += uint64(d.CyclesAt(f))
}

// AccountStall charges d of memory-stall time. Stall cycles still tick
// (the paper computes execution time as cycle count x clock speed) and
// still weight the average frequency, but the machine's power model
// treats stalled time as low-activity.
func (c *Core) AccountStall(d simtime.Duration) {
	c.stallTime += d
	f := c.PState().FreqMHz
	c.freqTimeProduct += float64(f) * float64(d)
	c.Cycles += uint64(d.CyclesAt(f))
}

// BusyTime and StallTime report accumulated execution and stall time.
func (c *Core) BusyTime() simtime.Duration  { return c.busyTime }
func (c *Core) StallTime() simtime.Duration { return c.stallTime }

// AverageFreqMHz reports the time-weighted average frequency over all
// accounted time — the quantity in Table II's "Average Frequency"
// column (e.g., 2168 for a run dithered between 2100 and 2200 MHz).
func (c *Core) AverageFreqMHz() float64 {
	total := c.busyTime + c.stallTime
	if total == 0 {
		return float64(c.PState().FreqMHz)
	}
	return c.freqTimeProduct / float64(total)
}

// Activity reports the busy fraction of accounted time, the power
// model's demand input.
func (c *Core) Activity() float64 {
	total := c.busyTime + c.stallTime
	if total == 0 {
		return 0
	}
	return float64(c.busyTime) / float64(total)
}

// ResetCounters clears all counters and accounting but keeps the
// current P/C-state, mirroring a PAPI counter reset.
func (c *Core) ResetCounters() {
	c.freqTimeProduct = 0
	c.busyTime = 0
	c.stallTime = 0
	c.InstructionsCommitted = 0
	c.InstructionsExecuted = 0
	c.LoadsExecuted = 0
	c.StoresExecuted = 0
	c.Cycles = 0
}
