// Package cpu models the processor's ACPI power-management states and
// per-core execution bookkeeping: P-states (DVFS operating points),
// C-states (idle sleep states), and the transition costs between them.
//
// The modelled part corresponds to Section II of the paper: P-states
// map to frequency/voltage pairs with higher state numbers meaning
// lower speed and power; C-states deeper than C0 progressively shut
// components down in exchange for longer wake-up times.
package cpu

import "fmt"

// PState is one ACPI performance state: a frequency/voltage operating
// point. P0 is the fastest.
type PState struct {
	Index     int
	FreqMHz   int
	VoltageMV int
}

func (p PState) String() string {
	return fmt.Sprintf("P%d(%dMHz,%dmV)", p.Index, p.FreqMHz, p.VoltageMV)
}

// PStateTable is an ordered list of P-states, fastest first.
type PStateTable []PState

// SandyBridgePStates builds the 16-entry P-state table of the modelled
// E5-2680: 2.7 GHz down to 1.2 GHz in 100 MHz steps (the paper reports
// 16 P-states per core and Table II shows the frequency floor at
// 1200 MHz). Voltage scales linearly from 1.10 V at P0 to 0.80 V at
// P15, the usual Sandy Bridge VF-curve shape.
func SandyBridgePStates() PStateTable {
	const (
		fMax, fMin = 2700, 1200
		vMax, vMin = 1100, 800
		step       = 100
	)
	n := (fMax-fMin)/step + 1 // 16
	t := make(PStateTable, n)
	for i := 0; i < n; i++ {
		f := fMax - i*step
		v := vMin + (f-fMin)*(vMax-vMin)/(fMax-fMin)
		t[i] = PState{Index: i, FreqMHz: f, VoltageMV: v}
	}
	return t
}

// Validate reports an error when the table is empty, unordered, or has
// non-positive entries.
func (t PStateTable) Validate() error {
	if len(t) == 0 {
		return fmt.Errorf("cpu: empty P-state table")
	}
	for i, p := range t {
		if p.FreqMHz <= 0 || p.VoltageMV <= 0 {
			return fmt.Errorf("cpu: P%d has non-positive freq/voltage", i)
		}
		if p.Index != i {
			return fmt.Errorf("cpu: P-state %d has index %d", i, p.Index)
		}
		if i > 0 && p.FreqMHz >= t[i-1].FreqMHz {
			return fmt.Errorf("cpu: P-state table not descending at %d", i)
		}
	}
	return nil
}

// Fastest and Slowest return the table extremes.
func (t PStateTable) Fastest() PState { return t[0] }
func (t PStateTable) Slowest() PState { return t[len(t)-1] }

// ByFreq returns the P-state with the given frequency, or false.
func (t PStateTable) ByFreq(mhz int) (PState, bool) {
	for _, p := range t {
		if p.FreqMHz == mhz {
			return p, true
		}
	}
	return PState{}, false
}

// CState is an ACPI CPU operating (idle) state. C0 is "executing";
// deeper states shut down more of the core and wake more slowly.
type CState struct {
	Index int
	Name  string
	// WakeMicros is the exit latency back to C0.
	WakeMicros float64
	// PowerFraction is the core's static+clock power in this state
	// relative to an idle-in-C0 core (1.0); deeper states approach 0.
	PowerFraction float64
}

// SandyBridgeCStates returns the C-state ladder of the modelled part.
func SandyBridgeCStates() []CState {
	return []CState{
		{Index: 0, Name: "C0", WakeMicros: 0, PowerFraction: 1.0},
		{Index: 1, Name: "C1", WakeMicros: 1, PowerFraction: 0.60},
		{Index: 3, Name: "C3", WakeMicros: 50, PowerFraction: 0.25},
		{Index: 6, Name: "C6", WakeMicros: 100, PowerFraction: 0.05},
	}
}
