// Package tlb models translation lookaside buffers with LRU
// replacement and entry gating.
//
// The paper's low-cap counter data shows instruction-TLB misses
// exploding by up to 8,481% while data-TLB misses stay nearly flat,
// which the authors attribute to power-management techniques that
// reconfigure architectural structures. Entry gating — powering down a
// fraction of the TLB's entries — is the mechanism modelled here.
package tlb

import (
	"fmt"
	"math/bits"
)

// Config describes a TLB's geometry.
type Config struct {
	Name      string
	Entries   int // total entries; Entries/Ways sets, power of two
	Ways      int
	PageBytes int // power of two; 4 KiB on the modelled platform
	// MissPenaltyCycles is the page-walk cost charged per miss, in
	// core cycles (the hardware walker competes with the core for the
	// cache ports, so it scales with frequency like cache latency).
	MissPenaltyCycles int
}

// Sets reports the number of sets.
func (c Config) Sets() int { return c.Entries / c.Ways }

// Validate reports an error for unrealizable geometry.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.PageBytes <= 0 {
		return fmt.Errorf("tlb %s: non-positive geometry %+v", c.Name, c)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb %s: entries %d not divisible by ways %d", c.Name, c.Entries, c.Ways)
	}
	if bits.OnesCount(uint(c.Sets())) != 1 {
		return fmt.Errorf("tlb %s: set count %d not a power of two", c.Name, c.Sets())
	}
	if bits.OnesCount(uint(c.PageBytes)) != 1 {
		return fmt.Errorf("tlb %s: page size %d not a power of two", c.Name, c.PageBytes)
	}
	return nil
}

// Stats counts TLB activity.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	GateDrop uint64 // entries dropped by gating
}

// MissRate reports misses per access, 0 when untouched.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// TLB is a set-associative translation buffer. Translations are
// identity-mapped (the simulator has no real page tables); only the
// hit/miss behaviour and its cost matter to the study.
//
// Entry state is stored structure-of-arrays, flat and set-major, the
// same layout the cache uses: the lookup scan walks a packed array of
// tag words (vpn-tag<<1|1 when valid, 0 when invalid) and decides each
// way with a single load-and-compare.
type TLB struct {
	cfg        Config
	tags       []uint64 // tagv per way (tag<<1|1, 0 = invalid)
	use        []uint64 // LRU clocks
	setMask    uint64
	pageShift  uint
	tagShift   uint // set-index width; splits a vpn into set and tag
	ways       int
	activeWays int
	// mruIdx/mruVpn remember the last translation that hit: repeated
	// same-page accesses (any streaming workload touches a page ~64
	// line-accesses in a row) skip the set scan. mruIdx is -1 when no
	// resident entry is cached.
	mruIdx   int
	mruVpn   uint64
	useClock uint64
	stats    Stats
}

// New builds a TLB, panicking on invalid static geometry. The shifts
// and masks the lookup needs are precomputed here.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Sets() * cfg.Ways
	return &TLB{
		cfg:        cfg,
		tags:       make([]uint64, n),
		use:        make([]uint64, n),
		setMask:    uint64(cfg.Sets() - 1),
		pageShift:  uint(bits.TrailingZeros(uint(cfg.PageBytes))),
		tagShift:   uint(bits.Len64(uint64(cfg.Sets() - 1))),
		ways:       cfg.Ways,
		activeWays: cfg.Ways,
		mruIdx:     -1,
	}
}

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters, leaving translations resident.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// ActiveWays reports the number of powered ways.
func (t *TLB) ActiveWays() int { return t.activeWays }

// Lookup translates the page containing addr, reporting whether it hit.
// Misses install the translation (hardware-walked, identity-mapped).
func (t *TLB) Lookup(addr uint64) bool {
	t.stats.Accesses++
	t.useClock++
	vpn := addr >> t.pageShift
	tagv := (vpn>>t.tagShift)<<1 | 1

	// MRU filter: a repeated-page access skips the set scan.
	if vpn == t.mruVpn && t.mruIdx >= 0 && t.tags[t.mruIdx] == tagv {
		t.stats.Hits++
		t.use[t.mruIdx] = t.useClock
		return true
	}

	base := int(vpn&t.setMask) * t.ways
	set := t.tags[base : base+t.activeWays]
	for i := range set {
		if set[i] == tagv {
			t.stats.Hits++
			t.use[base+i] = t.useClock
			t.mruVpn, t.mruIdx = vpn, base+i
			return true
		}
	}
	t.stats.Misses++
	victim := 0
	for i := range set {
		if set[i] == 0 {
			victim = i
			break
		}
		if t.use[base+i] < t.use[base+victim] {
			victim = i
		}
	}
	set[victim] = tagv
	t.use[base+victim] = t.useClock
	t.mruVpn, t.mruIdx = vpn, base+victim
	return false
}

// SetActiveWays gates the TLB to n powered ways, clamped to
// [1, cfg.Ways]. Entries in disabled ways are dropped (translations
// are clean; nothing to write back).
func (t *TLB) SetActiveWays(n int) {
	if n < 1 {
		n = 1
	}
	if n > t.cfg.Ways {
		n = t.cfg.Ways
	}
	if n < t.activeWays {
		nsets := len(t.tags) / t.ways
		for setIdx := 0; setIdx < nsets; setIdx++ {
			for w := n; w < t.activeWays; w++ {
				if idx := setIdx*t.ways + w; t.tags[idx] != 0 {
					t.stats.GateDrop++
					t.tags[idx] = 0
				}
			}
		}
		t.mruIdx = -1 // the cached translation may just have been gated off
	}
	t.activeWays = n
}

// Flush invalidates all entries (e.g., on a context switch).
func (t *TLB) Flush() {
	for i := range t.tags {
		t.tags[i] = 0
	}
	t.mruIdx = -1
}

// Reach reports the bytes of address space covered by a fully
// populated TLB at the current gating level.
func (t *TLB) Reach() int64 {
	return int64(t.cfg.Sets()) * int64(t.activeWays) * int64(t.cfg.PageBytes)
}
