// Package tlb models translation lookaside buffers with LRU
// replacement and entry gating.
//
// The paper's low-cap counter data shows instruction-TLB misses
// exploding by up to 8,481% while data-TLB misses stay nearly flat,
// which the authors attribute to power-management techniques that
// reconfigure architectural structures. Entry gating — powering down a
// fraction of the TLB's entries — is the mechanism modelled here.
package tlb

import (
	"fmt"
	"math/bits"
)

// Config describes a TLB's geometry.
type Config struct {
	Name      string
	Entries   int // total entries; Entries/Ways sets, power of two
	Ways      int
	PageBytes int // power of two; 4 KiB on the modelled platform
	// MissPenaltyCycles is the page-walk cost charged per miss, in
	// core cycles (the hardware walker competes with the core for the
	// cache ports, so it scales with frequency like cache latency).
	MissPenaltyCycles int
}

// Sets reports the number of sets.
func (c Config) Sets() int { return c.Entries / c.Ways }

// Validate reports an error for unrealizable geometry.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.PageBytes <= 0 {
		return fmt.Errorf("tlb %s: non-positive geometry %+v", c.Name, c)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb %s: entries %d not divisible by ways %d", c.Name, c.Entries, c.Ways)
	}
	if bits.OnesCount(uint(c.Sets())) != 1 {
		return fmt.Errorf("tlb %s: set count %d not a power of two", c.Name, c.Sets())
	}
	if bits.OnesCount(uint(c.PageBytes)) != 1 {
		return fmt.Errorf("tlb %s: page size %d not a power of two", c.Name, c.PageBytes)
	}
	return nil
}

// Stats counts TLB activity.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	GateDrop uint64 // entries dropped by gating
}

// MissRate reports misses per access, 0 when untouched.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type entry struct {
	vpn     uint64
	valid   bool
	lastUse uint64
}

// TLB is a set-associative translation buffer. Translations are
// identity-mapped (the simulator has no real page tables); only the
// hit/miss behaviour and its cost matter to the study.
type TLB struct {
	cfg        Config
	sets       [][]entry
	setMask    uint64
	pageShift  uint
	activeWays int
	useClock   uint64
	stats      Stats
}

// New builds a TLB, panicking on invalid static geometry.
func New(cfg Config) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	t := &TLB{
		cfg:        cfg,
		sets:       make([][]entry, nsets),
		setMask:    uint64(nsets - 1),
		pageShift:  uint(bits.TrailingZeros(uint(cfg.PageBytes))),
		activeWays: cfg.Ways,
	}
	backing := make([]entry, nsets*cfg.Ways)
	for i := range t.sets {
		t.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return t
}

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters, leaving translations resident.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// ActiveWays reports the number of powered ways.
func (t *TLB) ActiveWays() int { return t.activeWays }

// Lookup translates the page containing addr, reporting whether it hit.
// Misses install the translation (hardware-walked, identity-mapped).
func (t *TLB) Lookup(addr uint64) bool {
	t.stats.Accesses++
	t.useClock++
	vpn := addr >> t.pageShift
	setIdx := vpn & t.setMask
	tag := vpn >> uint(bits.Len64(t.setMask))
	set := t.sets[setIdx][:t.activeWays]

	for i := range set {
		if set[i].valid && set[i].vpn == tag {
			t.stats.Hits++
			set[i].lastUse = t.useClock
			return true
		}
	}
	t.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim] = entry{vpn: tag, valid: true, lastUse: t.useClock}
	return false
}

// SetActiveWays gates the TLB to n powered ways, clamped to
// [1, cfg.Ways]. Entries in disabled ways are dropped (translations
// are clean; nothing to write back).
func (t *TLB) SetActiveWays(n int) {
	if n < 1 {
		n = 1
	}
	if n > t.cfg.Ways {
		n = t.cfg.Ways
	}
	if n < t.activeWays {
		for setIdx := range t.sets {
			for w := n; w < t.activeWays; w++ {
				if t.sets[setIdx][w].valid {
					t.stats.GateDrop++
					t.sets[setIdx][w].valid = false
				}
			}
		}
	}
	t.activeWays = n
}

// Flush invalidates all entries (e.g., on a context switch).
func (t *TLB) Flush() {
	for setIdx := range t.sets {
		for w := range t.sets[setIdx] {
			t.sets[setIdx][w].valid = false
		}
	}
}

// Reach reports the bytes of address space covered by a fully
// populated TLB at the current gating level.
func (t *TLB) Reach() int64 {
	return int64(t.cfg.Sets()) * int64(t.activeWays) * int64(t.cfg.PageBytes)
}
