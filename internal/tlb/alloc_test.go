package tlb

import "testing"

// TestLookupZeroAlloc pins the translation path's allocation budget at
// zero; the lookup runs before every cache access, so any allocation
// here is paid twice per simulated op (ITLB + DTLB).
func TestLookupZeroAlloc(t *testing.T) {
	tl := New(Config{Name: "DTLB", Entries: 64, Ways: 4, PageBytes: 4096,
		MissPenaltyCycles: 30})
	var i uint64
	allocs := testing.AllocsPerRun(20000, func() {
		// Walk more pages than the TLB reaches so misses and evictions
		// stay on the path, with a same-page re-touch for the MRU hit.
		tl.Lookup((i % 257) * 4096)
		tl.Lookup((i%257)*4096 + 64)
		i++
	})
	if allocs != 0 {
		t.Errorf("TLB.Lookup allocates %.1f times per op, want 0", allocs)
	}
}
