package tlb

import (
	"testing"
	"testing/quick"
)

func small() *TLB {
	// 8 entries, 2-way, 4 KiB pages -> 4 sets.
	return New(Config{Name: "S", Entries: 8, Ways: 2, PageBytes: 4096, MissPenaltyCycles: 30})
}

func TestValidate(t *testing.T) {
	good := Config{Name: "DTLB", Entries: 64, Ways: 4, PageBytes: 4096}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "a", Entries: 0, Ways: 4, PageBytes: 4096},
		{Name: "b", Entries: 63, Ways: 4, PageBytes: 4096}, // not divisible
		{Name: "c", Entries: 24, Ways: 4, PageBytes: 4096}, // sets = 6
		{Name: "d", Entries: 64, Ways: 4, PageBytes: 5000}, // page not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(Config{Name: "bad", Entries: 63, Ways: 4, PageBytes: 4096})
}

func TestMissThenHit(t *testing.T) {
	tl := small()
	if tl.Lookup(0x1000) {
		t.Error("cold lookup hit")
	}
	if !tl.Lookup(0x1000) {
		t.Error("warm lookup missed")
	}
	if !tl.Lookup(0x1FFF) { // same 4 KiB page
		t.Error("same-page lookup missed")
	}
	if tl.Lookup(0x2000) { // next page
		t.Error("next-page lookup hit")
	}
	s := tl.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := small()                                            // 4 sets: pages p, p+4, ... map to the same set
	pg := func(i int) uint64 { return uint64(i) * 4 * 4096 } // all set 0
	tl.Lookup(pg(0))
	tl.Lookup(pg(1))
	tl.Lookup(pg(0)) // 0 MRU, 1 LRU
	tl.Lookup(pg(2)) // evicts 1
	if !tl.Lookup(pg(0)) {
		t.Error("MRU translation evicted")
	}
	if tl.Lookup(pg(1)) {
		t.Error("evicted translation still resident")
	}
}

func TestGatingShrinksReachAndDropsEntries(t *testing.T) {
	tl := small()
	if tl.Reach() != 8*4096 {
		t.Errorf("full Reach = %d", tl.Reach())
	}
	tl.Lookup(0x0000)
	tl.Lookup(0x4000) // same set, second way
	tl.SetActiveWays(1)
	if tl.ActiveWays() != 1 {
		t.Fatalf("ActiveWays = %d", tl.ActiveWays())
	}
	if tl.Reach() != 4*4096 {
		t.Errorf("gated Reach = %d", tl.Reach())
	}
	if tl.Stats().GateDrop != 1 {
		t.Errorf("GateDrop = %d", tl.Stats().GateDrop)
	}
}

func TestGatingCausesThrashing(t *testing.T) {
	// Two pages in one set: fine 2-way, thrash 1-way — the iTLB-miss
	// explosion mechanism.
	run := func(ways int) uint64 {
		tl := small()
		tl.SetActiveWays(ways)
		tl.ResetStats()
		for i := 0; i < 100; i++ {
			tl.Lookup(0x0000)
			tl.Lookup(0x4000)
		}
		return tl.Stats().Misses
	}
	if full := run(2); full != 2 {
		t.Errorf("2-way misses = %d, want 2", full)
	}
	if gated := run(1); gated != 200 {
		t.Errorf("1-way misses = %d, want 200", gated)
	}
}

func TestGatingClamps(t *testing.T) {
	tl := small()
	tl.SetActiveWays(-3)
	if tl.ActiveWays() != 1 {
		t.Errorf("ActiveWays = %d", tl.ActiveWays())
	}
	tl.SetActiveWays(100)
	if tl.ActiveWays() != 2 {
		t.Errorf("ActiveWays = %d", tl.ActiveWays())
	}
}

func TestFlush(t *testing.T) {
	tl := small()
	tl.Lookup(0x1000)
	tl.Flush()
	if tl.Lookup(0x1000) {
		t.Error("translation survives Flush")
	}
}

func TestResetStatsKeepsTranslations(t *testing.T) {
	tl := small()
	tl.Lookup(0x1000)
	tl.ResetStats()
	if tl.Stats().Accesses != 0 {
		t.Error("stats not reset")
	}
	if !tl.Lookup(0x1000) {
		t.Error("translation lost")
	}
}

func TestAccountingInvariant(t *testing.T) {
	f := func(addrs []uint32) bool {
		tl := New(Config{Name: "Q", Entries: 16, Ways: 4, PageBytes: 4096})
		for _, a := range addrs {
			tl.Lookup(uint64(a))
		}
		s := tl.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetWithinReachEventuallyAllHits(t *testing.T) {
	// Touch every page the TLB can hold twice; the second pass must be
	// all hits (LRU with sequential fill keeps the set resident).
	tl := New(Config{Name: "R", Entries: 64, Ways: 4, PageBytes: 4096})
	pages := tl.Reach() / 4096
	for p := int64(0); p < pages; p++ {
		tl.Lookup(uint64(p) * 4096)
	}
	tl.ResetStats()
	for p := int64(0); p < pages; p++ {
		tl.Lookup(uint64(p) * 4096)
	}
	if m := tl.Stats().Misses; m != 0 {
		t.Errorf("second pass misses = %d, want 0", m)
	}
}
