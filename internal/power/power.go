// Package power models node-level power consumption for the simulated
// platform: CMOS dynamic power (C·f·V², Section II-B of the paper),
// active-core leakage, uncore/L3 clock power, DRAM activity power, and
// the small savings available from gating architectural structures.
//
// The model is calibrated against the paper's measurements:
//
//	idle node                 100–103 W
//	one busy core, no cap     153–157 W  (Table I)
//	one busy core at 1.2 GHz  ~127–131 W (Table II caps 130/135)
//	full gating floor         ~123–125 W (Table II caps 120/125 —
//	                          the platform cannot honour 120 W)
package power

import "fmt"

// Params holds the calibration constants of the node power model.
// DefaultParams returns the values tuned for the paper's platform; all
// fields are exported so ablation studies can perturb them.
type Params struct {
	// IdleWatts is the whole-node power with every core in a deep
	// C-state: fans, VRs, chipset, DRAM background, leakage.
	IdleWatts float64

	// CoreDynamicWatts is the switching power of one fully active core
	// at the reference operating point (RefFreqMHz, RefVoltageMV).
	// Scaled by f·V² for other operating points.
	CoreDynamicWatts float64
	RefFreqMHz       int
	RefVoltageMV     int

	// StallDynFraction is the fraction of core dynamic power still
	// burned while the core is stalled on memory (clocks keep toggling,
	// the OoO engine keeps replaying). Activity interpolates between
	// this floor and 1.
	StallDynFraction float64

	// CoreActiveLeakWatts is the extra leakage of a core held in C0
	// relative to the deep-idle baseline folded into IdleWatts.
	CoreActiveLeakWatts float64

	// UncoreWatts is the ring/L3/home-agent clock power with any core
	// active, at the reference frequency. The uncore clock tracks core
	// frequency only partially: scaled by
	// UncoreFloorFraction + (1-UncoreFloorFraction)·f/fRef.
	UncoreWatts         float64
	UncoreFloorFraction float64

	// DRAMActiveWatts is the memory power at 100% bandwidth
	// utilization, scaled linearly with utilization.
	DRAMActiveWatts float64

	// Gating savings. These are deliberately small: the paper's
	// central low-cap finding is that sub-DVFS techniques buy only a
	// few watts at enormous performance cost.
	L3WayLeakWatts    float64 // per gated L3 way
	L2WayLeakWatts    float64 // per gated L2 way
	L1WayLeakWatts    float64 // per gated L1 way (per L1 cache)
	TLBGateWatts      float64 // at fully gated TLBs, scaled by gated fraction
	DRAMDutySaveWatts float64 // at duty→0, scaled by (1-duty)

	// ClockModFloorFraction is the dynamic power left while the core
	// clock is modulated off (ACPI T-states): gating the clock stops
	// almost all switching, unlike a memory stall where the pipeline
	// keeps toggling.
	ClockModFloorFraction float64
}

// DefaultParams returns the calibrated model for the S2R2/E5-2680
// platform of the paper.
func DefaultParams() Params {
	return Params{
		IdleWatts:             101.0,
		CoreDynamicWatts:      26.0,
		RefFreqMHz:            2700,
		RefVoltageMV:          1100,
		StallDynFraction:      0.80,
		CoreActiveLeakWatts:   10.0,
		UncoreWatts:           13.0,
		UncoreFloorFraction:   0.55,
		DRAMActiveWatts:       12.0,
		L3WayLeakWatts:        0.05,
		L2WayLeakWatts:        0.06,
		L1WayLeakWatts:        0.03,
		TLBGateWatts:          0.10,
		DRAMDutySaveWatts:     1.20,
		ClockModFloorFraction: 0.10,
	}
}

// Validate reports obviously broken calibrations.
func (p Params) Validate() error {
	if p.IdleWatts <= 0 || p.CoreDynamicWatts < 0 || p.RefFreqMHz <= 0 || p.RefVoltageMV <= 0 {
		return fmt.Errorf("power: non-positive base parameters")
	}
	if p.StallDynFraction < 0 || p.StallDynFraction > 1 {
		return fmt.Errorf("power: StallDynFraction %v outside [0,1]", p.StallDynFraction)
	}
	if p.UncoreFloorFraction < 0 || p.UncoreFloorFraction > 1 {
		return fmt.Errorf("power: UncoreFloorFraction %v outside [0,1]", p.UncoreFloorFraction)
	}
	return nil
}

// DVFSFactor is the dynamic-power scaling between the reference point
// and (freqMHz, voltageMV): the f·V² law of Section II-B.
func (p Params) DVFSFactor(freqMHz, voltageMV int) float64 {
	fr := float64(freqMHz) / float64(p.RefFreqMHz)
	vr := float64(voltageMV) / float64(p.RefVoltageMV)
	return fr * vr * vr
}

// NodeState captures everything the power model needs about the
// machine at one instant.
type NodeState struct {
	FreqMHz   int
	VoltageMV int
	// ActiveCores is the number of cores in C0.
	ActiveCores int
	// Activity is the busy (non-memory-stalled) fraction of the
	// active cores' time, in [0,1].
	Activity float64
	// MemUtil is DRAM bandwidth utilization in [0,1].
	MemUtil float64
	// Gated structure counts.
	L3WaysGated int
	L2WaysGated int
	L1WaysGated int // summed over L1I and L1D
	// TLBGatedFraction is the powered-down fraction of TLB capacity.
	TLBGatedFraction float64
	// DRAMDuty is the memory-controller duty cycle in (0,1].
	DRAMDuty float64
	// ClockDuty is the core clock-modulation (T-state) duty cycle in
	// (0,1]; 1 (or 0, the zero value) means unmodulated.
	ClockDuty float64
}

// Breakdown is the per-component decomposition of node power.
type Breakdown struct {
	Idle        float64
	CoreDynamic float64
	CoreLeak    float64
	Uncore      float64
	DRAM        float64
	GateSavings float64 // reported positive; subtracted from the total
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Idle + b.CoreDynamic + b.CoreLeak + b.Uncore + b.DRAM - b.GateSavings
}

// Breakdown evaluates the model for state s.
func (p Params) Breakdown(s NodeState) Breakdown {
	b := Breakdown{Idle: p.IdleWatts}
	if s.ActiveCores <= 0 {
		return b
	}
	act := clamp01(s.Activity)
	dvfs := p.DVFSFactor(s.FreqMHz, s.VoltageMV)
	b.CoreDynamic = p.CoreDynamicWatts * dvfs *
		(p.StallDynFraction + (1-p.StallDynFraction)*act) * float64(s.ActiveCores)
	if s.ClockDuty > 0 && s.ClockDuty < 1 {
		b.CoreDynamic *= s.ClockDuty + (1-s.ClockDuty)*p.ClockModFloorFraction
	}
	b.CoreLeak = p.CoreActiveLeakWatts * float64(s.ActiveCores)
	fr := float64(s.FreqMHz) / float64(p.RefFreqMHz)
	b.Uncore = p.UncoreWatts * (p.UncoreFloorFraction + (1-p.UncoreFloorFraction)*fr)
	b.DRAM = p.DRAMActiveWatts * clamp01(s.MemUtil)

	duty := s.DRAMDuty
	if duty <= 0 || duty > 1 {
		duty = 1
	}
	b.GateSavings = p.L3WayLeakWatts*float64(s.L3WaysGated) +
		p.L2WayLeakWatts*float64(s.L2WaysGated) +
		p.L1WayLeakWatts*float64(s.L1WaysGated) +
		p.TLBGateWatts*clamp01(s.TLBGatedFraction) +
		p.DRAMDutySaveWatts*(1-duty)
	return b
}

// NodeWatts evaluates the total node power for state s.
func (p Params) NodeWatts(s NodeState) float64 {
	return p.Breakdown(s).Total()
}

// TierState describes one DVFS tier of a mixed-frequency node: a group
// of cores sharing an operating point (the SST-BF deployment model,
// where latency-critical cores run a different P-state than batch
// cores on the same socket).
type TierState struct {
	FreqMHz     int
	VoltageMV   int
	ActiveCores int
	// Activity is the busy fraction of this tier's active cores' C0
	// time (busy vs memory-stalled).
	Activity float64
	// DutyCycle is the fraction of wall time this tier's cores spent in
	// C0 at all; the rest was true idle (parked between open-loop
	// request arrivals), which burns neither dynamic power nor active
	// leakage. Zero means 1 (always in C0).
	DutyCycle float64
}

// NodeWattsTiered evaluates node power when cores are split across
// DVFS tiers. Core dynamic power and active leakage are summed per
// tier; the uncore clock tracks the fastest tier (the ring runs at the
// highest core clock); everything else — idle floor, DRAM, gating
// savings — comes from s, whose FreqMHz/ActiveCores/Activity fields
// are ignored. With no tiers it degenerates to NodeWatts(s).
func (p Params) NodeWattsTiered(s NodeState, tiers []TierState) float64 {
	if len(tiers) == 0 {
		return p.NodeWatts(s)
	}
	base := s
	base.ActiveCores = 0 // idle + DRAM + gating only
	b := Breakdown{Idle: p.IdleWatts}
	b.DRAM = p.DRAMActiveWatts * clamp01(s.MemUtil)
	duty := s.DRAMDuty
	if duty <= 0 || duty > 1 {
		duty = 1
	}
	b.GateSavings = p.L3WayLeakWatts*float64(s.L3WaysGated) +
		p.L2WayLeakWatts*float64(s.L2WaysGated) +
		p.L1WayLeakWatts*float64(s.L1WaysGated) +
		p.TLBGateWatts*clamp01(s.TLBGatedFraction) +
		p.DRAMDutySaveWatts*(1-duty)

	fastest := 0
	anyActive := false
	for _, t := range tiers {
		if t.ActiveCores <= 0 {
			continue
		}
		anyActive = true
		if t.FreqMHz > fastest {
			fastest = t.FreqMHz
		}
		act := clamp01(t.Activity)
		duty := t.DutyCycle
		if duty <= 0 || duty > 1 {
			duty = 1
		}
		dvfs := p.DVFSFactor(t.FreqMHz, t.VoltageMV)
		dyn := p.CoreDynamicWatts * dvfs *
			(p.StallDynFraction + (1-p.StallDynFraction)*act) * float64(t.ActiveCores) * duty
		if s.ClockDuty > 0 && s.ClockDuty < 1 {
			dyn *= s.ClockDuty + (1-s.ClockDuty)*p.ClockModFloorFraction
		}
		b.CoreDynamic += dyn
		b.CoreLeak += p.CoreActiveLeakWatts * float64(t.ActiveCores) * duty
	}
	if !anyActive {
		return b.Idle // all cores idle: match NodeWatts' early return
	}
	fr := float64(fastest) / float64(p.RefFreqMHz)
	b.Uncore = p.UncoreWatts * (p.UncoreFloorFraction + (1-p.UncoreFloorFraction)*fr)
	return b.Total()
}

// FloorWatts reports the minimum busy power reachable with every
// mechanism engaged: slowest P-state, collapsed activity, all
// structures gated. The BMC uses it to recognize unreachable caps
// (the paper's 120 W rows, where measured power exceeds the cap).
func (p Params) FloorWatts(slowestFreqMHz, slowestVoltageMV int, maxGate NodeState) float64 {
	s := maxGate
	s.FreqMHz = slowestFreqMHz
	s.VoltageMV = slowestVoltageMV
	s.ActiveCores = 1
	s.Activity = 0
	s.MemUtil = 0
	return p.NodeWatts(s)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
