package power

import (
	"testing"
	"testing/quick"
)

func busyState(freq, volt int, act, mem float64) NodeState {
	return NodeState{
		FreqMHz: freq, VoltageMV: volt,
		ActiveCores: 1, Activity: act, MemUtil: mem, DRAMDuty: 1,
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	p := DefaultParams()
	p.IdleWatts = -1
	if err := p.Validate(); err == nil {
		t.Error("negative idle accepted")
	}
	p = DefaultParams()
	p.StallDynFraction = 1.5
	if err := p.Validate(); err == nil {
		t.Error("StallDynFraction > 1 accepted")
	}
	p = DefaultParams()
	p.UncoreFloorFraction = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative UncoreFloorFraction accepted")
	}
}

func TestDVFSFactor(t *testing.T) {
	p := DefaultParams()
	if got := p.DVFSFactor(2700, 1100); got != 1.0 {
		t.Errorf("reference factor = %v", got)
	}
	// 1200 MHz at 800 mV: (1200/2700)*(800/1100)^2 ~= 0.2351
	got := p.DVFSFactor(1200, 800)
	if got < 0.234 || got > 0.236 {
		t.Errorf("min-P-state factor = %v, want ~0.235", got)
	}
}

// TestCalibrationIdle checks the paper's idle band of 100-103 W.
func TestCalibrationIdle(t *testing.T) {
	p := DefaultParams()
	w := p.NodeWatts(NodeState{FreqMHz: 1200, VoltageMV: 800, ActiveCores: 0, DRAMDuty: 1})
	if w < 100 || w > 103 {
		t.Errorf("idle = %.1f W, want 100-103 (paper Section III)", w)
	}
}

// TestCalibrationBusyUncapped checks the Table I band of 153-157 W for
// one busy core at the top operating point.
func TestCalibrationBusyUncapped(t *testing.T) {
	p := DefaultParams()
	// Compute-leaning workload (Stereo Matching): high activity,
	// modest memory traffic -> ~153 W.
	stereo := p.NodeWatts(busyState(2700, 1100, 0.95, 0.25))
	if stereo < 151 || stereo > 155 {
		t.Errorf("stereo-like busy = %.1f W, want ~153", stereo)
	}
	// Memory-streaming workload (SIRE/RSM): lower activity, high
	// bandwidth -> ~157 W.
	sire := p.NodeWatts(busyState(2700, 1100, 0.75, 0.65))
	if sire < 154 || sire > 159 {
		t.Errorf("SIRE-like busy = %.1f W, want ~157", sire)
	}
}

// TestCalibrationMinPState checks the ~127-131 W band at 1.2 GHz
// (Table II caps 130/135, where frequency pins at 1200-1285 MHz).
func TestCalibrationMinPState(t *testing.T) {
	p := DefaultParams()
	w := p.NodeWatts(busyState(1200, 800, 0.9, 0.15))
	if w < 126 || w > 131 {
		t.Errorf("busy at min P-state = %.1f W, want 126-131", w)
	}
}

// TestCalibrationGatingFloor checks that the fully gated floor lands
// in the paper's ~122-125 W band: low enough for 125 W caps, too high
// for 120 W caps (Table II rows A9/B9 overshoot their cap).
func TestCalibrationGatingFloor(t *testing.T) {
	p := DefaultParams()
	floor := p.FloorWatts(1200, 800, NodeState{
		L3WaysGated: 16, L2WaysGated: 6, L1WaysGated: 12,
		TLBGatedFraction: 0.75, DRAMDuty: 0.05,
	})
	if floor < 121.5 || floor > 125 {
		t.Errorf("gating floor = %.2f W, want 121.5-125 (cannot honour 120 W)", floor)
	}
	if floor <= 120 {
		t.Errorf("floor %.2f W <= 120: paper's unreachable-cap behaviour lost", floor)
	}
}

func TestBreakdownTotalConsistent(t *testing.T) {
	p := DefaultParams()
	s := busyState(2000, 950, 0.8, 0.4)
	s.L3WaysGated = 4
	b := p.Breakdown(s)
	want := b.Idle + b.CoreDynamic + b.CoreLeak + b.Uncore + b.DRAM - b.GateSavings
	if got := b.Total(); got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
	if got := p.NodeWatts(s); got != want {
		t.Errorf("NodeWatts = %v, want %v", got, want)
	}
}

func TestIdleIgnoresGatingAndActivity(t *testing.T) {
	p := DefaultParams()
	b := p.Breakdown(NodeState{ActiveCores: 0, Activity: 0.9, MemUtil: 0.9, DRAMDuty: 1})
	if b.Total() != p.IdleWatts {
		t.Errorf("idle with junk fields = %v", b.Total())
	}
}

// TestPowerMonotoneInFrequency: with everything else fixed, power must
// not decrease as the operating point speeds up. This is the property
// that makes the BMC's P-state search well-defined.
func TestPowerMonotoneInFrequency(t *testing.T) {
	p := DefaultParams()
	type op struct{ f, v int }
	ops := []op{{1200, 800}, {1500, 860}, {1800, 920}, {2100, 980}, {2400, 1040}, {2700, 1100}}
	prev := 0.0
	for _, o := range ops {
		w := p.NodeWatts(busyState(o.f, o.v, 0.9, 0.3))
		if w < prev {
			t.Errorf("power decreased at %d MHz: %v < %v", o.f, w, prev)
		}
		prev = w
	}
}

// TestGatingAlwaysSaves: gating any structure never increases power.
func TestGatingAlwaysSaves(t *testing.T) {
	p := DefaultParams()
	f := func(l3, l2, l1 uint8, tlbFrac float64, duty float64) bool {
		base := busyState(1200, 800, 0.5, 0.2)
		gated := base
		gated.L3WaysGated = int(l3 % 20)
		gated.L2WaysGated = int(l2 % 8)
		gated.L1WaysGated = int(l1 % 16)
		gated.TLBGatedFraction = clamp01(tlbFrac)
		if duty < 0.05 {
			duty = 0.05
		}
		if duty > 1 {
			duty = 1
		}
		gated.DRAMDuty = duty
		return p.NodeWatts(gated) <= p.NodeWatts(base)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestActivityRaisesPower: more activity means more dynamic power.
func TestActivityRaisesPower(t *testing.T) {
	p := DefaultParams()
	lo := p.NodeWatts(busyState(2700, 1100, 0.1, 0.3))
	hi := p.NodeWatts(busyState(2700, 1100, 0.9, 0.3))
	if hi <= lo {
		t.Errorf("activity 0.9 (%v W) <= activity 0.1 (%v W)", hi, lo)
	}
}

// TestGatingSavingsAreSmall: the paper's conclusion 3 — sub-DVFS
// techniques yield only small power decreases. Full gating must save
// less than 8 W.
func TestGatingSavingsAreSmall(t *testing.T) {
	p := DefaultParams()
	s := busyState(1200, 800, 0.5, 0.2)
	s.L3WaysGated = 16
	s.L2WaysGated = 6
	s.L1WaysGated = 12
	s.TLBGatedFraction = 0.75
	s.DRAMDuty = 0.05
	b := p.Breakdown(s)
	if b.GateSavings <= 0 || b.GateSavings >= 8 {
		t.Errorf("full gating saves %.2f W, want (0, 8)", b.GateSavings)
	}
}

func TestClampingOfBadInputs(t *testing.T) {
	p := DefaultParams()
	s := busyState(2700, 1100, 2.5, -3) // out-of-range activity/mem
	s.DRAMDuty = 0                      // treated as ungated
	w := p.NodeWatts(s)
	wantMax := p.NodeWatts(busyState(2700, 1100, 1, 0))
	if w != wantMax {
		t.Errorf("clamped power = %v, want %v", w, wantMax)
	}
}
