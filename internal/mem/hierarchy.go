// Package mem composes the cache, TLB, and DRAM models into the full
// memory hierarchy of the simulated node and times individual
// accesses through it.
//
// The geometry defaults reproduce the platform of Section III of the
// paper — per core 32 KB 8-way L1I and L1D, 256 KB 8-way unified L2,
// a 20 MB 20-way shared L3, 64 B lines throughout — with the level
// access times the paper's stride probe inferred (Figure 3): ~1.5 ns
// to L1, ~3.5 ns to L2, ~8.6 ns to L3, ~60 ns to memory at 2.7 GHz.
// Cache latencies are expressed in core cycles and therefore stretch
// as DVFS lowers the frequency; DRAM latency is wall-clock.
package mem

import (
	"fmt"

	"nodecap/internal/cache"
	"nodecap/internal/dram"
	"nodecap/internal/simtime"
	"nodecap/internal/tlb"
)

// AccessKind distinguishes the three ways the core touches memory.
type AccessKind int

const (
	Load AccessKind = iota
	Store
	IFetch
)

func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case IFetch:
		return "ifetch"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Level identifies where an access was satisfied.
type Level int

const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelMemory
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMemory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Config assembles the hierarchy's geometry and timing.
type Config struct {
	L1I, L1D, L2, L3 cache.Config
	ITLB, DTLB       tlb.Config
	DRAM             dram.Config
	// PeakBytesPerSec is the single-core effective memory bandwidth
	// used to convert DRAM traffic into the power model's utilization
	// input. The simulator serializes misses, so this is the
	// serialized-stream rate, not the platform's peak.
	PeakBytesPerSec float64
}

// DefaultConfig returns the paper's platform (one core's view).
func DefaultConfig() Config {
	return Config{
		L1I: cache.Config{Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8,
			HitLatencyCycles: 4, WriteBack: false},
		L1D: cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8,
			HitLatencyCycles: 4, WriteBack: true},
		L2: cache.Config{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Ways: 8,
			HitLatencyCycles: 6, WriteBack: true},
		L3: cache.Config{Name: "L3", SizeBytes: 20 << 20, LineBytes: 64, Ways: 20,
			HitLatencyCycles: 13, WriteBack: true},
		ITLB: tlb.Config{Name: "ITLB", Entries: 128, Ways: 4, PageBytes: 4096,
			MissPenaltyCycles: 20},
		DTLB: tlb.Config{Name: "DTLB", Entries: 64, Ways: 4, PageBytes: 4096,
			MissPenaltyCycles: 30},
		DRAM:            dram.Config{RowHitNanos: 50, RowMissNanos: 65, Banks: 8, RowBytes: 8192},
		PeakBytesPerSec: 1.6e9,
	}
}

// Result reports one access's outcome.
type Result struct {
	Latency simtime.Duration
	Level   Level
	TLBMiss bool
}

// Hierarchy is one core's memory system.
type Hierarchy struct {
	cfg  Config
	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *cache.Cache
	l3   *cache.Cache
	itlb *tlb.TLB
	dtlb *tlb.TLB
	ram  *dram.DRAM

	// Per-access constants hoisted out of cfg so the hot path loads
	// scalars instead of walking nested config structs.
	l1iHit, l1dHit, l2Hit, l3Hit int64
	itlbMiss, dtlbMiss           int64
	lineBytes                    uint64

	dramBytes uint64 // traffic accumulator for bandwidth utilization
}

// New assembles a hierarchy; the component constructors panic on
// invalid static geometry.
func New(cfg Config) *Hierarchy {
	if cfg.PeakBytesPerSec <= 0 {
		cfg.PeakBytesPerSec = DefaultConfig().PeakBytesPerSec
	}
	return &Hierarchy{
		cfg:       cfg,
		l1i:       cache.New(cfg.L1I),
		l1d:       cache.New(cfg.L1D),
		l2:        cache.New(cfg.L2),
		l3:        cache.New(cfg.L3),
		itlb:      tlb.New(cfg.ITLB),
		dtlb:      tlb.New(cfg.DTLB),
		ram:       dram.New(cfg.DRAM),
		l1iHit:    int64(cfg.L1I.HitLatencyCycles),
		l1dHit:    int64(cfg.L1D.HitLatencyCycles),
		l2Hit:     int64(cfg.L2.HitLatencyCycles),
		l3Hit:     int64(cfg.L3.HitLatencyCycles),
		itlbMiss:  int64(cfg.ITLB.MissPenaltyCycles),
		dtlbMiss:  int64(cfg.DTLB.MissPenaltyCycles),
		lineBytes: uint64(cfg.L3.LineBytes),
	}
}

// Component accessors, used by the BMC's gating ladder and by tests.
func (h *Hierarchy) L1I() *cache.Cache { return h.l1i }
func (h *Hierarchy) L1D() *cache.Cache { return h.l1d }
func (h *Hierarchy) L2() *cache.Cache  { return h.l2 }
func (h *Hierarchy) L3() *cache.Cache  { return h.l3 }
func (h *Hierarchy) ITLB() *tlb.TLB    { return h.itlb }
func (h *Hierarchy) DTLB() *tlb.TLB    { return h.dtlb }
func (h *Hierarchy) DRAM() *dram.DRAM  { return h.ram }
func (h *Hierarchy) Config() Config    { return h.cfg }

// Access times one memory access beginning at absolute time now with
// the core running at freqMHz. It updates all level statistics,
// maintains L3 inclusion, and routes write-back traffic.
func (h *Hierarchy) Access(now simtime.Duration, freqMHz int, addr uint64, kind AccessKind) Result {
	var res Result
	var cycles int64

	// Address translation.
	write := kind == Store
	l1 := h.l1d
	l1Hit := h.l1dHit
	if kind == IFetch {
		if !h.itlb.Lookup(addr) {
			res.TLBMiss = true
			cycles += h.itlbMiss
		}
		l1 = h.l1i
		l1Hit = h.l1iHit
	} else if !h.dtlb.Lookup(addr) {
		res.TLBMiss = true
		cycles += h.dtlbMiss
	}

	cycles += l1Hit
	hit1, ev1, fl1 := l1.AccessPacked(addr, write)
	if fl1&cache.WritebackFlag != 0 {
		h.writeback(now, 1, ev1)
	}
	if hit1 {
		res.Level = LevelL1
		res.Latency = simtime.Cycles(cycles, freqMHz)
		return res
	}

	cycles += h.l2Hit
	hit2, ev2, fl2 := h.l2.AccessPacked(addr, write)
	if fl2&cache.WritebackFlag != 0 {
		h.writeback(now, 2, ev2)
	}
	if hit2 {
		res.Level = LevelL2
		res.Latency = simtime.Cycles(cycles, freqMHz)
		return res
	}

	cycles += h.l3Hit
	hit3, ev3, fl3 := h.l3.AccessPacked(addr, write)
	if fl3&cache.EvictedFlag != 0 {
		h.backInvalidate(now, ev3)
		if fl3&cache.WritebackFlag != 0 {
			h.dramWrite(now, ev3)
		}
	}
	if hit3 {
		res.Level = LevelL3
		res.Latency = simtime.Cycles(cycles, freqMHz)
		return res
	}

	// Miss to memory: line fill on the critical path.
	res.Level = LevelMemory
	onChip := simtime.Cycles(cycles, freqMHz)
	dramLat := h.ram.Access(now+onChip, addr, false)
	h.dramBytes += h.lineBytes
	res.Latency = onChip + dramLat
	return res
}

// writeback pushes a dirty line from level (1 = L1D, 2 = L2) downward.
// Write-back traffic is off the critical path (posted through write
// buffers), so it updates state and counters but returns no latency.
func (h *Hierarchy) writeback(now simtime.Duration, fromLevel int, addr uint64) {
	if fromLevel <= 1 {
		if h.l2.Update(addr) {
			return
		}
	}
	if h.l3.Update(addr) {
		return
	}
	h.dramWrite(now, addr)
}

// dramWrite posts one line write to memory (row-buffer state and
// counters only; posted writes are not on the load critical path).
func (h *Hierarchy) dramWrite(now simtime.Duration, addr uint64) {
	h.ram.Access(now, addr, true)
	h.dramBytes += h.lineBytes
}

// backInvalidate enforces L3 inclusion: a line evicted from L3 may not
// survive in the inner levels. Dirty inner copies are written to
// memory.
func (h *Hierarchy) backInvalidate(now simtime.Duration, addr uint64) {
	dirty := h.l1d.Invalidate(addr)
	h.l1i.Invalidate(addr)
	if h.l2.Invalidate(addr) {
		dirty = true
	}
	if dirty {
		h.dramWrite(now, addr)
	}
}

// gateCache gates a cache level down to n ways, writing the flushed
// dirty lines to memory and enforcing inclusion for L3 shrinks.
func (h *Hierarchy) gateCache(now simtime.Duration, c *cache.Cache, n int, isL3 bool) {
	for _, addr := range c.SetActiveWays(n) {
		h.dramWrite(now, addr)
	}
	if isL3 && n < c.Config().Ways {
		// Inclusion after an L3 shrink: anything no longer in L3 must
		// leave the inner levels. Flushing the inner levels entirely is
		// the simple, conservative hardware response.
		for _, a := range h.l1d.Flush() {
			if h.l2.Update(a) || h.l3.Update(a) {
				continue
			}
			h.dramWrite(now, a)
		}
		h.l1i.Flush()
		for _, a := range h.l2.Flush() {
			if h.l3.Update(a) {
				continue
			}
			h.dramWrite(now, a)
		}
	}
}

// Gating is the hierarchy's power-gating posture, set by the BMC.
type Gating struct {
	L1Ways   int // per L1 cache; 0 means "all ways"
	L2Ways   int
	L3Ways   int
	ITLBWays int
	DTLBWays int
	DRAMDuty float64         // (0,1]; 1 means ungated
	DRAMGate dram.GateConfig // full gate config; Duty overrides OnFraction if set
}

// ApplyGating reconfigures the hierarchy to the posture g at time now.
// Zero-valued fields mean "fully powered".
func (h *Hierarchy) ApplyGating(now simtime.Duration, g Gating) {
	or := func(v, full int) int {
		if v <= 0 {
			return full
		}
		return v
	}
	h.gateCache(now, h.l1d, or(g.L1Ways, h.cfg.L1D.Ways), false)
	h.gateCache(now, h.l1i, or(g.L1Ways, h.cfg.L1I.Ways), false)
	h.gateCache(now, h.l2, or(g.L2Ways, h.cfg.L2.Ways), false)
	h.gateCache(now, h.l3, or(g.L3Ways, h.cfg.L3.Ways), true)
	h.itlb.SetActiveWays(or(g.ITLBWays, h.cfg.ITLB.Ways))
	h.dtlb.SetActiveWays(or(g.DTLBWays, h.cfg.DTLB.Ways))

	gate := g.DRAMGate
	if gate.Period == 0 {
		gate = dram.Ungated
	}
	if g.DRAMDuty > 0 {
		gate.OnFraction = g.DRAMDuty
	}
	h.ram.SetGate(gate)
}

// GatedState summarizes the posture for the power model.
type GatedState struct {
	L1WaysGated      int // summed across L1I and L1D
	L2WaysGated      int
	L3WaysGated      int
	TLBGatedFraction float64
	DRAMDuty         float64
}

// Gated reports the current gating posture.
func (h *Hierarchy) Gated() GatedState {
	itlbFrac := 1 - float64(h.itlb.ActiveWays())/float64(h.cfg.ITLB.Ways)
	dtlbFrac := 1 - float64(h.dtlb.ActiveWays())/float64(h.cfg.DTLB.Ways)
	return GatedState{
		L1WaysGated:      (h.cfg.L1D.Ways - h.l1d.ActiveWays()) + (h.cfg.L1I.Ways - h.l1i.ActiveWays()),
		L2WaysGated:      h.cfg.L2.Ways - h.l2.ActiveWays(),
		L3WaysGated:      h.cfg.L3.Ways - h.l3.ActiveWays(),
		TLBGatedFraction: (itlbFrac + dtlbFrac) / 2,
		DRAMDuty:         h.ram.Gate().OnFraction,
	}
}

// TakeDRAMBytes returns and resets the DRAM traffic accumulator; the
// machine divides by the elapsed interval to obtain bandwidth
// utilization for the power model.
func (h *Hierarchy) TakeDRAMBytes() uint64 {
	b := h.dramBytes
	h.dramBytes = 0
	return b
}

// ResetStats clears every component's counters (a PAPI reset), leaving
// contents and gating intact.
func (h *Hierarchy) ResetStats() {
	h.l1i.ResetStats()
	h.l1d.ResetStats()
	h.l2.ResetStats()
	h.l3.ResetStats()
	h.itlb.ResetStats()
	h.dtlb.ResetStats()
	h.ram.ResetStats()
	h.dramBytes = 0
}
