package mem

import (
	"testing"

	"nodecap/internal/simtime"
)

const freq = 2700 // MHz, the uncapped operating point

func TestDefaultConfigMatchesPaperGeometry(t *testing.T) {
	cfg := DefaultConfig()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"L1D size", cfg.L1D.SizeBytes, 32 << 10},
		{"L1I size", cfg.L1I.SizeBytes, 32 << 10},
		{"L2 size", cfg.L2.SizeBytes, 256 << 10},
		{"L3 size", cfg.L3.SizeBytes, 20 << 20},
		{"L1D ways", cfg.L1D.Ways, 8},
		{"L2 ways", cfg.L2.Ways, 8},
		{"L3 ways", cfg.L3.Ways, 20},
		{"line", cfg.L1D.LineBytes, 64},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

// TestAccessLatenciesMatchStrideProbe checks the per-level access
// times against the values the paper's Figure 3 infers at 2.7 GHz:
// L1 ~1.5 ns, L2 ~3.5 ns, L3 ~8.6 ns, memory ~60 ns.
func TestAccessLatenciesMatchStrideProbe(t *testing.T) {
	h := New(DefaultConfig())
	addr := uint64(0x10000)
	// Warm the line all the way in.
	h.Access(0, freq, addr, Load)

	within := func(got simtime.Duration, lo, hi float64) bool {
		ns := got.Nanos()
		return ns >= lo && ns <= hi
	}

	// L1 hit.
	r := h.Access(0, freq, addr, Load)
	if r.Level != LevelL1 || !within(r.Latency, 1.2, 1.8) {
		t.Errorf("L1 hit: level=%v lat=%.2fns, want ~1.5ns", r.Level, r.Latency.Nanos())
	}

	// L2 hit: evict from L1 by filling its set (same set in L1: L1D
	// has 64 sets * 64 B = 4 KiB stride), keeping within one L2 set's
	// capacity not required — just touch 8 conflicting lines.
	for i := 1; i <= 8; i++ {
		h.Access(0, freq, addr+uint64(i)*4096, Load)
	}
	r = h.Access(0, freq, addr, Load)
	if r.Level != LevelL2 || !within(r.Latency, 3.0, 4.2) {
		t.Errorf("L2 hit: level=%v lat=%.2fns, want ~3.5ns", r.Level, r.Latency.Nanos())
	}

	// Memory access (cold line far away).
	r = h.Access(0, freq, 1<<30, Load)
	if r.Level != LevelMemory || !within(r.Latency, 55, 95) {
		t.Errorf("memory: level=%v lat=%.2fns, want ~60-90ns", r.Level, r.Latency.Nanos())
	}
}

func TestL3HitLatency(t *testing.T) {
	h := New(DefaultConfig())
	base := uint64(0x100000)
	// Evict from L1 and L2 but not the 20 MB L3: touch 9 lines that
	// conflict in L2 (L2 set stride = 512 sets * 64 B = 32 KiB).
	h.Access(0, freq, base, Load)
	for i := 1; i <= 9; i++ {
		h.Access(0, freq, base+uint64(i)*(32<<10), Load)
	}
	// The conflicting pages above also pushed base's page out of the
	// DTLB (32 KiB apart means only two DTLB sets absorb ten pages).
	// Re-warm the translation via a neighbouring line in the same page
	// so the measurement below isolates the L3 hit cost.
	h.Access(0, freq, base+64, Load)
	r := h.Access(0, freq, base, Load)
	if r.Level != LevelL3 {
		t.Fatalf("expected L3 hit, got %v", r.Level)
	}
	if ns := r.Latency.Nanos(); ns < 7.5 || ns > 10.5 {
		t.Errorf("L3 hit latency = %.2fns, want ~8.6ns", ns)
	}
}

func TestCacheLatencyScalesWithFrequency(t *testing.T) {
	h := New(DefaultConfig())
	addr := uint64(0x2000)
	h.Access(0, freq, addr, Load)
	fast := h.Access(0, 2700, addr, Load).Latency
	slow := h.Access(0, 1200, addr, Load).Latency
	ratio := float64(slow) / float64(fast)
	if ratio < 2.2 || ratio > 2.3 { // 2700/1200 = 2.25
		t.Errorf("L1 latency ratio 1.2GHz/2.7GHz = %.3f, want 2.25", ratio)
	}
}

func TestDRAMLatencyDoesNotScaleWithFrequency(t *testing.T) {
	h := New(DefaultConfig())
	fast := h.Access(0, 2700, 1<<30, Load).Latency
	slow := h.Access(0, 1200, 2<<30, Load).Latency
	// Both dominated by ~65 ns DRAM; the cycle part (cache lookups plus
	// a cold DTLB walk) differs by a few tens of ns.
	diff := slow.Nanos() - fast.Nanos()
	if diff < 0 || diff > 30 {
		t.Errorf("DRAM-bound latency gap across frequency = %.1fns", diff)
	}
}

func TestTLBMissPenalty(t *testing.T) {
	h := New(DefaultConfig())
	r := h.Access(0, freq, 0x5000, Load)
	if !r.TLBMiss {
		t.Error("cold access did not miss DTLB")
	}
	warm := h.Access(0, freq, 0x5000, Load)
	if warm.TLBMiss {
		t.Error("warm access missed DTLB")
	}
	if warm.Latency >= r.Latency {
		t.Errorf("TLB-hit access (%v) not faster than TLB-miss fill (%v)", warm.Latency, r.Latency)
	}
}

func TestIFetchUsesInstructionSide(t *testing.T) {
	h := New(DefaultConfig())
	h.Access(0, freq, 0x8000, IFetch)
	if h.L1I().Stats().Accesses != 1 || h.L1D().Stats().Accesses != 0 {
		t.Errorf("IFetch routed wrong: L1I=%d L1D=%d",
			h.L1I().Stats().Accesses, h.L1D().Stats().Accesses)
	}
	if h.ITLB().Stats().Accesses != 1 || h.DTLB().Stats().Accesses != 0 {
		t.Errorf("IFetch TLB routing: ITLB=%d DTLB=%d",
			h.ITLB().Stats().Accesses, h.DTLB().Stats().Accesses)
	}
}

func TestStoreMakesLineDirtyAndWritesBack(t *testing.T) {
	h := New(DefaultConfig())
	h.Access(0, freq, 0, Store)
	// Thrash the L1 set: stores to 8 more conflicting lines force the
	// dirty line out; the L2 (inclusive-ish) absorbs the write-back.
	for i := 1; i <= 8; i++ {
		h.Access(0, freq, uint64(i)*4096, Store)
	}
	if h.L1D().Stats().Writebacks == 0 {
		t.Error("no L1D writebacks recorded")
	}
}

func TestInclusionBackInvalidate(t *testing.T) {
	// Build a tiny hierarchy so L3 evictions are easy to force.
	cfg := DefaultConfig()
	cfg.L3.SizeBytes = 8 << 10 // 8 KiB, 2-way: 64 sets
	cfg.L3.Ways = 2
	h := New(cfg)
	// Three lines in the same L3 set: set stride = 64 sets * 64 B = 4 KiB.
	// All three also fit in one 8-way L1D set, so after the third load
	// the L3 evicts its LRU line (a — inner-level hits are silent and
	// do not refresh L3 recency) and must back-invalidate it from the
	// inner levels despite it being L1-resident.
	a, b, c := uint64(0), uint64(4096), uint64(8192)
	h.Access(0, freq, a, Load)
	h.Access(0, freq, b, Load)
	h.Access(0, freq, c, Load) // evicts a from L3
	if h.L1D().Contains(a) || h.L2().Contains(a) {
		t.Error("inclusion violated: a survives in inner level after L3 eviction")
	}
	if !h.L1D().Contains(b) || !h.L1D().Contains(c) {
		t.Error("b or c lost from L1D")
	}
}

func TestApplyGatingAndGatedState(t *testing.T) {
	h := New(DefaultConfig())
	h.ApplyGating(0, Gating{L1Ways: 4, L2Ways: 2, L3Ways: 4, ITLBWays: 1, DTLBWays: 2, DRAMDuty: 0.5})
	g := h.Gated()
	if g.L1WaysGated != 8 { // (8-4) on each of L1I and L1D
		t.Errorf("L1WaysGated = %d", g.L1WaysGated)
	}
	if g.L2WaysGated != 6 || g.L3WaysGated != 16 {
		t.Errorf("L2/L3 gated = %d/%d", g.L2WaysGated, g.L3WaysGated)
	}
	if g.DRAMDuty != 0.5 {
		t.Errorf("DRAMDuty = %v", g.DRAMDuty)
	}
	// (ITLB 3/4 gated + DTLB 2/4 gated)/2 = 0.625
	if g.TLBGatedFraction < 0.62 || g.TLBGatedFraction > 0.63 {
		t.Errorf("TLBGatedFraction = %v", g.TLBGatedFraction)
	}
	// Ungate everything.
	h.ApplyGating(0, Gating{})
	g = h.Gated()
	if g.L1WaysGated != 0 || g.L2WaysGated != 0 || g.L3WaysGated != 0 || g.DRAMDuty != 1 {
		t.Errorf("ungated state = %+v", g)
	}
}

func TestGatingL3FlushesInnerLevels(t *testing.T) {
	h := New(DefaultConfig())
	h.Access(0, freq, 0x1000, Load)
	h.ApplyGating(0, Gating{L3Ways: 4})
	if h.L1D().Contains(0x1000) || h.L2().Contains(0x1000) {
		t.Error("inner levels retain lines after L3 gating flush")
	}
}

func TestDRAMDutyGatingSlowsMisses(t *testing.T) {
	h := New(DefaultConfig())
	h.ApplyGating(0, Gating{DRAMDuty: 0.05, DRAMGate: h.DRAM().Gate()})
	var total simtime.Duration
	n := 40
	for i := 0; i < n; i++ {
		// Arrival times spread across gate periods.
		now := simtime.Duration(i) * 337 * simtime.Microsecond
		total += h.Access(now, freq, uint64(1+i)<<20, Load).Latency
	}
	avg := total.Nanos() / float64(n)
	if avg < 1000 {
		t.Errorf("deep-gated average miss latency = %.0fns, want >1µs", avg)
	}
}

func TestTakeDRAMBytes(t *testing.T) {
	h := New(DefaultConfig())
	h.Access(0, freq, 1<<30, Load)
	if got := h.TakeDRAMBytes(); got != 64 {
		t.Errorf("TakeDRAMBytes = %d, want 64", got)
	}
	if got := h.TakeDRAMBytes(); got != 0 {
		t.Errorf("second TakeDRAMBytes = %d, want 0", got)
	}
}

func TestResetStats(t *testing.T) {
	h := New(DefaultConfig())
	h.Access(0, freq, 0x1000, Load)
	h.Access(0, freq, 0x1000, IFetch)
	h.ResetStats()
	if h.L1D().Stats().Accesses != 0 || h.L1I().Stats().Accesses != 0 ||
		h.DTLB().Stats().Accesses != 0 || h.DRAM().Stats().Reads != 0 {
		t.Error("stats survive ResetStats")
	}
	// Contents survive.
	if r := h.Access(0, freq, 0x1000, Load); r.Level != LevelL1 {
		t.Errorf("contents lost: level = %v", r.Level)
	}
}

func TestAccessKindAndLevelStrings(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || IFetch.String() != "ifetch" {
		t.Error("AccessKind strings wrong")
	}
	if LevelL1.String() != "L1" || LevelMemory.String() != "memory" {
		t.Error("Level strings wrong")
	}
	if AccessKind(9).String() != "AccessKind(9)" || Level(9).String() != "Level(9)" {
		t.Error("fallback strings wrong")
	}
}

func TestWritebackCascadesToMemory(t *testing.T) {
	// A dirty line evicted from L1D whose copy is absent from L2 and
	// L3 must be posted to DRAM.
	cfg := DefaultConfig()
	cfg.L3.SizeBytes = 8 << 10 // tiny L3 so back-invalidation is easy
	cfg.L3.Ways = 2
	h := New(cfg)

	h.Access(0, freq, 0, Store) // dirty in L1D, resident in L3
	// Evict the line from L3 (back-invalidates L1D/L2, writes to DRAM
	// because the L1 copy was dirty).
	h.Access(0, freq, 4096, Load)
	h.Access(0, freq, 8192, Load)
	if h.DRAM().Stats().Writes == 0 {
		t.Error("dirty back-invalidated line never reached DRAM")
	}
	if h.L1D().Contains(0) {
		t.Error("inclusion violated after dirty back-invalidation")
	}
}

func TestGatingFlushWritesDirtyLines(t *testing.T) {
	h := New(DefaultConfig())
	// Dirty all 20 ways of one L3 set (set stride = 16384 sets x 64 B
	// = 1 MiB): the L1/L2 cascade pushes the dirty copies down into the
	// L3. Gating the L3 to one way must flush the dirty lines held in
	// the disabled ways out to memory.
	for i := 0; i < 20; i++ {
		h.Access(0, freq, uint64(i)<<20, Store)
	}
	before := h.DRAM().Stats().Writes
	h.ApplyGating(0, Gating{L3Ways: 1})
	if got := h.DRAM().Stats().Writes; got <= before {
		t.Errorf("gating flush produced no DRAM writes (before %d, after %d)", before, got)
	}
}

func TestHierarchyAccessors(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	if h.L3().Config().SizeBytes != 20<<20 {
		t.Error("L3 accessor wrong")
	}
	if h.Config().DRAM.Banks != cfg.DRAM.Banks {
		t.Error("Config accessor wrong")
	}
}

func TestNewDefaultsPeakBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PeakBytesPerSec = 0
	h := New(cfg)
	if h.Config().PeakBytesPerSec <= 0 {
		t.Error("PeakBytesPerSec not defaulted")
	}
}

func TestLevelStringsComplete(t *testing.T) {
	if LevelL2.String() != "L2" || LevelL3.String() != "L3" {
		t.Error("level strings wrong")
	}
	if Store.String() != "store" {
		t.Error("kind string wrong")
	}
}

func TestDirtyL2WritebackReachesL3(t *testing.T) {
	h := New(DefaultConfig())
	// Dirty a line, evict it from L1 into L2 (dirty), then force its
	// eviction from L2: the write-back should land in L3 (Update hit),
	// not DRAM.
	base := uint64(0x200000)
	h.Access(0, freq, base, Store)
	for i := 1; i <= 8; i++ {
		h.Access(0, freq, base+uint64(i)*4096, Store) // same L1 set
	}
	writesBefore := h.DRAM().Stats().Writes
	for i := 1; i <= 9; i++ {
		h.Access(0, freq, base+uint64(i)*(32<<10), Load) // same L2 set
	}
	// The L3 still holds the line, so no *new* critical writes beyond
	// row traffic are required; the line must be recoverable at L3.
	r := h.Access(0, freq, base, Load)
	if r.Level == LevelMemory {
		t.Error("dirty line lost to memory instead of L3")
	}
	_ = writesBefore
}
