package machine

import (
	"testing"

	"nodecap/internal/simtime"
)

// computeWork is a compute-bound synthetic workload: tight loops over
// a tiny L1-resident buffer.
type computeWork struct {
	iters int
}

func (w *computeWork) Name() string   { return "compute" }
func (w *computeWork) CodePages() int { return 48 }
func (w *computeWork) Run(m *Machine) {
	base := m.Alloc(4096)
	for i := 0; i < w.iters; i++ {
		m.Compute(40, 30)
		m.Load(base + uint64(i%64)*64)
		m.Store(base + uint64(i%64)*64)
	}
}

// streamWork streams a buffer larger than the L3, SIRE-style.
type streamWork struct {
	bytes  int
	passes int
}

func (w *streamWork) Name() string   { return "stream" }
func (w *streamWork) CodePages() int { return 16 }
func (w *streamWork) Run(m *Machine) {
	base := m.Alloc(w.bytes)
	elems := w.bytes / 8
	for p := 0; p < w.passes; p++ {
		for i := 0; i < elems; i++ {
			m.Load(base + uint64(i)*8)
			m.Compute(8, 6)
		}
	}
}

func capped(t *testing.T, w Workload, cap float64, seed uint64) RunResult {
	t.Helper()
	m := New(RomleyWithSeed(seed))
	m.SetPolicy(cap)
	return m.RunWorkload(w)
}

// RomleyWithSeed is a test helper mirroring what the experiment runner
// does per trial.
func RomleyWithSeed(seed uint64) Config {
	cfg := Romley()
	cfg.Seed = seed
	return cfg
}

func TestUncappedComputePower(t *testing.T) {
	r := capped(t, &computeWork{iters: 1200000}, 0, 1)
	if r.AvgPowerWatts < 144 || r.AvgPowerWatts > 158 {
		t.Errorf("compute-bound uncapped power = %.1f W, want ~145-156", r.AvgPowerWatts)
	}
	if r.AvgFreqMHz < 2699 || r.AvgFreqMHz > 2701 {
		t.Errorf("uncapped frequency = %.0f, want 2700", r.AvgFreqMHz)
	}
	if r.ExecTime <= 0 {
		t.Error("non-positive exec time")
	}
}

func TestUncappedStreamPower(t *testing.T) {
	r := capped(t, &streamWork{bytes: 24 << 20, passes: 1}, 0, 1)
	if r.AvgPowerWatts < 150 || r.AvgPowerWatts > 160 {
		t.Errorf("streaming uncapped power = %.1f W, want ~153-158", r.AvgPowerWatts)
	}
}

func TestHighCapBehavesLikeBaseline(t *testing.T) {
	base := capped(t, &computeWork{iters: 1200000}, 0, 2)
	c160 := capped(t, &computeWork{iters: 1200000}, 160, 2)
	ratio := float64(c160.ExecTime) / float64(base.ExecTime)
	if ratio < 0.99 || ratio > 1.10 {
		t.Errorf("160 W cap time ratio = %.3f, want ~1.00-1.06 (paper A1: +3%%)", ratio)
	}
	if c160.AvgFreqMHz < 2690 {
		t.Errorf("160 W cap frequency = %.0f", c160.AvgFreqMHz)
	}
}

func TestModerateCapUsesDVFSOnly(t *testing.T) {
	r := capped(t, &computeWork{iters: 1200000}, 140, 3)
	if r.FinalGatingLevel != 0 {
		t.Errorf("140 W cap ended at gating level %d, want 0", r.FinalGatingLevel)
	}
	if r.AvgFreqMHz >= 2700 || r.AvgFreqMHz <= 1200 {
		t.Errorf("140 W cap avg frequency = %.0f, want intermediate", r.AvgFreqMHz)
	}
	if r.AvgPowerWatts > 143 {
		t.Errorf("140 W cap average power = %.1f W", r.AvgPowerWatts)
	}
}

func TestLowCapPinsFrequencyFloor(t *testing.T) {
	r := capped(t, &computeWork{iters: 600000}, 130, 4)
	// The controller settles at P14/P15 (the paper's A7/B7 rows report
	// 1200-1207 MHz); allow for the convergence transient.
	if r.AvgFreqMHz > 1400 {
		t.Errorf("130 W cap avg frequency = %.0f, want near the 1200 MHz floor", r.AvgFreqMHz)
	}
}

func TestVeryLowCapEngagesGating(t *testing.T) {
	r := capped(t, &computeWork{iters: 600000}, 125, 5)
	if r.FinalGatingLevel == 0 && r.BMCStats.GateEscalate == 0 {
		t.Error("125 W cap never engaged the gating ladder")
	}
	if r.AvgFreqMHz > 1250 {
		t.Errorf("125 W cap avg frequency = %.0f", r.AvgFreqMHz)
	}
}

func TestUnreachableCapOvershoots(t *testing.T) {
	r := capped(t, &computeWork{iters: 600000}, 120, 6)
	if r.AvgPowerWatts <= 120 {
		t.Errorf("120 W cap average power = %.1f W; paper's platform floor is ~124 W", r.AvgPowerWatts)
	}
	if r.AvgPowerWatts > 127 {
		t.Errorf("120 W cap average power = %.1f W, want near the ~122-125 floor", r.AvgPowerWatts)
	}
	if r.BMCStats.AtFloorTicks == 0 {
		t.Error("controller never reported at-floor operation")
	}
}

func TestExecutionTimeMonotoneInCap(t *testing.T) {
	w := func() Workload { return &computeWork{iters: 600000} }
	var prev simtime.Duration
	for i, cap := range []float64{0, 150, 140, 130, 120} {
		r := capped(t, w(), cap, 7)
		if i > 0 && r.ExecTime < prev*95/100 {
			t.Errorf("time decreased at cap %.0f: %v < %v", cap, r.ExecTime, prev)
		}
		prev = r.ExecTime
	}
}

func TestEnergyRisesAtDeepCaps(t *testing.T) {
	base := capped(t, &computeWork{iters: 600000}, 0, 8)
	deep := capped(t, &computeWork{iters: 600000}, 125, 8)
	if deep.EnergyJoules <= base.EnergyJoules {
		t.Errorf("125 W energy %.1f J <= baseline %.1f J; paper shows large energy growth",
			deep.EnergyJoules, base.EnergyJoules)
	}
	if deep.ExecTime <= base.ExecTime*2 {
		t.Errorf("125 W time %v not much larger than baseline %v", deep.ExecTime, base.ExecTime)
	}
}

func TestCommittedInstructionsInvariantAcrossCaps(t *testing.T) {
	// Section IV: "for each application the number of instructions
	// committed is identical" across caps.
	a := capped(t, &computeWork{iters: 20000}, 0, 9)
	b := capped(t, &computeWork{iters: 20000}, 125, 9)
	if a.Counters.InstructionsCommitted != b.Counters.InstructionsCommitted {
		t.Errorf("committed instructions differ: %d vs %d",
			a.Counters.InstructionsCommitted, b.Counters.InstructionsCommitted)
	}
	// Issued (speculative) counts drift, but only slightly (<= ~2%).
	ai, bi := float64(a.Counters.InstructionsIssued), float64(b.Counters.InstructionsIssued)
	if bi >= ai {
		t.Errorf("slower run issued more instructions: %v >= %v", bi, ai)
	}
	if (ai-bi)/ai > 0.05 {
		t.Errorf("issued-instruction drift %.2f%% too large", (ai-bi)/ai*100)
	}
}

func TestITLBMissesExplodeAtDeepCaps(t *testing.T) {
	// Workload with a code footprint that fits the full ITLB but
	// thrashes a gated one.
	w := func() Workload { return &computeWork{iters: 600000} }
	base := capped(t, w(), 0, 10)
	deep := capped(t, w(), 120, 10)
	if base.Counters.ITLBMisses == 0 {
		t.Skip("no baseline iTLB activity to compare")
	}
	ratio := float64(deep.Counters.ITLBMisses) / float64(base.Counters.ITLBMisses)
	if ratio < 3 {
		t.Errorf("iTLB miss ratio at 120 W = %.1fx, want explosive growth (paper: 64-85x)", ratio)
	}
}

func TestStreamL3MissesStableUnderWayGating(t *testing.T) {
	// SIRE-like streaming: L3 misses are compulsory; way gating must
	// not change them much (Table II rows B0-B9: 0% difference).
	w := func() Workload { return &streamWork{bytes: 24 << 20, passes: 1} }
	base := capped(t, w(), 0, 11)
	deep := capped(t, w(), 125, 11)
	rb := float64(base.Counters.L3Misses)
	rd := float64(deep.Counters.L3Misses)
	if rd < rb*0.9 || rd > rb*1.25 {
		t.Errorf("stream L3 misses changed %.0f -> %.0f under deep cap; want stable", rb, rd)
	}
}

func TestAllocLaysOutDisjointRegions(t *testing.T) {
	m := New(Romley())
	a := m.Alloc(10000)
	b := m.Alloc(4096)
	if a%4096 != 0 || b%4096 != 0 {
		t.Error("allocations not page aligned")
	}
	if b < a+10000 {
		t.Errorf("regions overlap: a=%#x (10000B), b=%#x", a, b)
	}
}

func TestCounterSnapshotMonotone(t *testing.T) {
	m := New(Romley())
	before := m.CounterSnapshot()
	(&computeWork{iters: 1000}).Run(m)
	after := m.CounterSnapshot()
	if after.InstructionsCommitted <= before.InstructionsCommitted {
		t.Error("committed instructions did not advance")
	}
	if after.Cycles <= before.Cycles {
		t.Error("cycles did not advance")
	}
}

func TestAdvanceIdleFiresEvents(t *testing.T) {
	m := New(Romley())
	m.SetPolicy(140)
	m.AdvanceIdle(10 * simtime.Millisecond)
	if m.BMC().Stats().Ticks == 0 {
		t.Error("no BMC ticks during idle advance")
	}
	if m.Meter().Len() == 0 {
		t.Error("no meter samples during idle advance")
	}
	// Idle power well under cap: controller must sit at P0.
	if m.Core().PStateIndex() != 0 {
		t.Errorf("idle P-state = %d", m.Core().PStateIndex())
	}
}

func TestSpeculativeLoadsScaleWithFrequency(t *testing.T) {
	run := func(cap float64) uint64 {
		m := New(Romley())
		m.SetPolicy(cap)
		m.AdvanceIdle(2 * simtime.Millisecond)
		base := m.Alloc(1 << 20)
		start := m.CounterSnapshot()
		for i := 0; i < 20000; i++ {
			m.Load(base + uint64(i*64))
		}
		return m.CounterSnapshot().Loads - start.Loads - 20000 // spec extras
	}
	fast := run(0)
	// Force the slow path by directly running capped long enough to
	// reach the floor frequency.
	m := New(Romley())
	m.SetPolicy(130)
	m.AdvanceIdle(2 * simtime.Millisecond)
	w := &streamWork{bytes: 4 << 20, passes: 1}
	m.RunWorkload(w) // drags frequency down
	base := m.Alloc(1 << 20)
	s0 := m.CounterSnapshot()
	for i := 0; i < 20000; i++ {
		m.Load(base + uint64(i*64))
	}
	slow := m.CounterSnapshot().Loads - s0.Loads - 20000
	if slow >= fast {
		t.Errorf("speculative loads at low frequency (%d) >= at full speed (%d)", slow, fast)
	}
}

func TestGatingLevelAppliedToHierarchy(t *testing.T) {
	m := New(Romley())
	p := (*plant)(m)
	p.SetGatingLevel(4)
	g := m.Hierarchy().Gated()
	if g.L3WaysGated != 14 || g.L2WaysGated != 4 {
		t.Errorf("level 4 gating = %+v", g)
	}
	p.SetGatingLevel(0)
	if m.Hierarchy().Gated().L3WaysGated != 0 {
		t.Error("ungating did not restore ways")
	}
}

func TestPlantClampsGatingLevel(t *testing.T) {
	m := New(Romley())
	p := (*plant)(m)
	p.SetGatingLevel(999)
	if m.GatingLevel() != len(m.Config().Ladder)-1 {
		t.Errorf("gating level = %d", m.GatingLevel())
	}
	p.SetGatingLevel(-5)
	if m.GatingLevel() != 0 {
		t.Errorf("gating level = %d", m.GatingLevel())
	}
}

func TestLadderMonotonePower(t *testing.T) {
	// Each ladder level must not increase node power, or the BMC's
	// escalation search breaks.
	cfg := Romley()
	m := New(cfg)
	p := (*plant)(m)
	m.Core().SetPState(15)
	prev := 1e18
	for l := 0; l < len(cfg.Ladder); l++ {
		p.SetGatingLevel(l)
		g := m.Hierarchy().Gated()
		st := powerStateForTest(m, g)
		w := cfg.Power.NodeWatts(st)
		if w > prev+1e-9 {
			t.Errorf("ladder level %d raises power: %.2f > %.2f", l, w, prev)
		}
		prev = w
	}
}

func TestDVFSOnlyLadderHasSingleLevel(t *testing.T) {
	if got := len(DVFSOnlyLadder()); got != 1 {
		t.Errorf("DVFSOnlyLadder has %d levels", got)
	}
}

func TestCapFloorWatts(t *testing.T) {
	m := New(Romley())
	floor := m.CapFloorWatts()
	// The paper's platform cannot honour 120 W but does reach ~123-125.
	if floor <= 120 || floor >= 126 {
		t.Errorf("CapFloorWatts = %.2f, want in (120, 126)", floor)
	}
}

func TestControlHookFires(t *testing.T) {
	cfg := Romley()
	calls := 0
	cfg.ControlHook = func(m *Machine) { calls++ }
	m := New(cfg)
	m.AdvanceIdle(5 * simtime.Millisecond)
	if calls == 0 {
		t.Error("control hook never fired")
	}
}

// DefaultTStates is the ACPI-style clock-modulation ladder used by the
// T-state tests and ablation.
func defaultTStates() []float64 { return []float64{0.75, 0.5, 0.25, 0.125} }

func TestTStatesExtendEscalation(t *testing.T) {
	cfg := Romley()
	cfg.TStates = defaultTStates()
	m := New(cfg)
	p := (*plant)(m)
	if got := p.MaxGatingLevel(); got != len(cfg.Ladder)-1+4 {
		t.Fatalf("MaxGatingLevel = %d", got)
	}
	p.SetGatingLevel(len(cfg.Ladder) - 1 + 2) // second T-state
	if m.clockDuty != 0.5 {
		t.Errorf("clockDuty = %v, want 0.5", m.clockDuty)
	}
	// Hierarchy stays at the deepest ladder level.
	if m.Hierarchy().Gated().L3WaysGated != 16 {
		t.Errorf("hierarchy gating = %+v", m.Hierarchy().Gated())
	}
	p.SetGatingLevel(0)
	if m.clockDuty != 1 {
		t.Errorf("clockDuty after ungating = %v", m.clockDuty)
	}
}

func TestClockModulationStretchesTime(t *testing.T) {
	run := func(duty float64) simtime.Duration {
		cfg := Romley()
		// A bare DVFS ladder keeps the hierarchy ungated so the
		// instruction fetches stay free L1I hits and the measurement
		// isolates the clock modulation itself.
		cfg.Ladder = DVFSOnlyLadder()
		cfg.TStates = []float64{duty}
		m := New(cfg)
		(*plant)(m).SetGatingLevel(len(cfg.Ladder)) // first T-state
		start := m.Now()
		for i := 0; i < 5000; i++ {
			m.Compute(30, 24)
		}
		return m.Now() - start
	}
	full := run(1) // duty 1 behaves unmodulated
	half := run(0.5)
	ratio := float64(half) / float64(full)
	// Somewhat under 2x: instruction-fetch miss stalls are wall-bound,
	// not clock-bound, and do not stretch.
	if ratio < 1.7 || ratio > 2.1 {
		t.Errorf("50%% clock modulation stretched time %.2fx, want ~1.8-2x", ratio)
	}
}

// TestTStatesReachThePaperUnreachableCap: with clock modulation
// available, the platform could have honoured 120 W — the ablation
// answer to the paper's Table II overshoot rows.
func TestTStatesReachThePaperUnreachableCap(t *testing.T) {
	cfg := Romley()
	cfg.TStates = defaultTStates()
	m := New(cfg)
	m.SetPolicy(120)
	r := m.RunWorkload(&computeWork{iters: 600000})
	if r.AvgPowerWatts > 120.8 {
		t.Errorf("with T-states, 120 W cap average = %.1f W; want honoured", r.AvgPowerWatts)
	}
	if r.FinalGatingLevel <= len(cfg.Ladder)-1 {
		t.Errorf("T-states never engaged: level %d", r.FinalGatingLevel)
	}
}

func TestDeepMemoryGatingLadderShape(t *testing.T) {
	l := DeepMemoryGatingLadder()
	d := DefaultLadder()
	if len(l) != len(d) {
		t.Fatalf("deep ladder length %d != default %d", len(l), len(d))
	}
	// Shallow levels identical; deepest two harsher.
	for i := 0; i < len(l)-2; i++ {
		if l[i].DRAMGate != d[i].DRAMGate {
			t.Errorf("level %d differs from default", i)
		}
	}
	last := l[len(l)-1].DRAMGate
	if last.OnFraction >= d[len(d)-1].DRAMGate.OnFraction {
		t.Error("deep ladder not harsher than default")
	}
	if last.Period <= d[len(d)-1].DRAMGate.Period {
		t.Error("deep ladder period not longer")
	}
}
