// Package machine assembles the simulated node: cores with DVFS,
// the memory hierarchy, the power model, the wall power meter, and the
// BMC with its capping policy — the complete platform of Section III
// of the paper. Workloads execute against a Machine through a small
// operation API (Compute/Load/Store), and the machine advances virtual
// time, fires periodic control events, and collects every metric the
// study reports.
package machine

import (
	"nodecap/internal/bmc"
	"nodecap/internal/counters"
	"nodecap/internal/cpu"
	"nodecap/internal/mem"
	"nodecap/internal/power"
	"nodecap/internal/sensors"
	"nodecap/internal/simtime"
)

// SMMConfig models the firmware overhead of enforcing a cap: each
// control tick the management interrupt handler runs briefly,
// stalling the core and touching its own code and data pages. This is
// the "overhead associated with power capping" the paper suspects
// behind the memory-metric perturbations it sees even at a 160 W cap.
type SMMConfig struct {
	CodePages      int
	DataPages      int
	FetchesPerTick int
	LoadsPerTick   int
	StallPerTick   simtime.Duration
}

// DefaultSMM returns the calibrated firmware-overhead model.
func DefaultSMM() SMMConfig {
	return SMMConfig{
		CodePages:      24,
		DataPages:      8,
		FetchesPerTick: 48,
		LoadsPerTick:   12,
		StallPerTick:   1 * simtime.Microsecond,
	}
}

// Config assembles a Machine.
type Config struct {
	Hierarchy mem.Config
	Power     power.Params
	PStates   cpu.PStateTable
	CStates   []cpu.CState
	BMC       bmc.Config
	Ladder    GatingLadder
	SMM       SMMConfig
	// MeterInterval is the wall meter's sampling period (the scaled
	// analogue of the Watts Up! meter's 1 s).
	MeterInterval   simtime.Duration
	MeterNoiseWatts float64
	// IFetchEvery is the number of committed instructions per modelled
	// instruction fetch.
	IFetchEvery int
	// SpecEvery is the number of committed memory operations per
	// speculative access at the fastest P-state; the speculative rate
	// scales with frequency, which is why executed-instruction and L1
	// miss counts drift slightly across caps (Section IV).
	SpecEvery int
	// Seed perturbs run-to-run phase (meter noise sequence, SMM code
	// walk) so repeated runs average like the paper's five trials.
	Seed uint64
	// ControlHook, when set, is invoked at every BMC control tick
	// after the controller has run. The node daemon uses it to apply
	// out-of-band management commands (policy pushes over IPMI) at a
	// point where mutating the machine is safe, even mid-workload.
	ControlHook func(m *Machine)
	// WrapPlant, when set, wraps the actuation/sensing surface the BMC
	// sees. Fault-injection tests and the node daemon use it to slide a
	// faults.FaultyPlant between the firmware and the silicon; the
	// machine itself is untouched.
	WrapPlant func(p bmc.Plant) bmc.Plant
	// OpTrace, when set, observes every committed operation the
	// running workload issues (Compute/Load/Store), in order. The
	// trace package uses it to record replayable workload traces; the
	// hook sees logical operations, not the machine's synthesized
	// fetches or firmware traffic.
	OpTrace func(op TraceOp)
	// TStates, when non-empty, appends ACPI clock-modulation duty
	// cycles (descending, e.g. 0.75, 0.5, 0.25, 0.125) to the gating
	// ladder as its deepest levels. The paper's platform did not use
	// them — its 120 W caps overshoot — so they are off by default;
	// enabling them is the "could the platform have honoured 120 W?"
	// ablation.
	TStates []float64
}

// Romley returns the full configuration of the modelled S2R2 platform
// with two 2.7 GHz eight-core E5-2680 processors (the study pins its
// applications to a single core, which is what the machine executes).
func Romley() Config {
	return Config{
		Hierarchy:       mem.DefaultConfig(),
		Power:           power.DefaultParams(),
		PStates:         cpu.SandyBridgePStates(),
		CStates:         cpu.SandyBridgeCStates(),
		BMC:             bmc.DefaultConfig(),
		Ladder:          DefaultLadder(),
		SMM:             DefaultSMM(),
		MeterInterval:   50 * simtime.Microsecond,
		MeterNoiseWatts: 0.8,
		IFetchEvery:     12,
		SpecEvery:       32,
	}
}

// Address-space layout: fixed, page-aligned regions far enough apart
// that workload data, workload code, and firmware never collide.
const (
	codeRegionBase = 16 << 20  // workload code
	smmRegionBase  = 512 << 20 // firmware code+data
	dataRegionBase = 1 << 30   // workload heap allocations
)

// Machine is one simulated node.
type Machine struct {
	cfg       Config
	clock     *simtime.Clock
	events    *simtime.EventQueue
	nextEvent simtime.Duration
	hasEvent  bool

	core  *cpu.Core
	hier  *mem.Hierarchy
	meter *sensors.Meter
	ctrl  *bmc.BMC

	gatingLevel int
	clockDuty   float64 // T-state duty; 0 or 1 = unmodulated
	running     bool

	// Power-window accumulators since the last power update.
	accBusy, accStall simtime.Duration
	lastPowerAt       simtime.Duration
	curPower          float64
	curActivity       float64
	curMemUtil        float64

	// Workload facilities.
	allocNext    uint64
	codePages    int
	ifetchDown   int
	fetchSeq     uint64
	specAcc      float64
	pendingStall simtime.Duration

	// Hot-path constants hoisted out of cfg at construction.
	fastestMHz  int
	specLineOff uint64

	smmSeq uint64
}

// New builds a machine from cfg; invalid static configuration panics.
func New(cfg Config) *Machine {
	if err := cfg.Power.Validate(); err != nil {
		panic(err)
	}
	if len(cfg.Ladder) == 0 {
		panic("machine: empty gating ladder")
	}
	if cfg.MeterInterval <= 0 {
		panic("machine: non-positive meter interval")
	}
	if cfg.IFetchEvery <= 0 {
		cfg.IFetchEvery = 12
	}
	if cfg.SpecEvery <= 0 {
		cfg.SpecEvery = 32
	}
	m := &Machine{
		cfg:         cfg,
		clock:       simtime.NewClock(),
		events:      simtime.NewEventQueue(),
		core:        cpu.MustCore(0, cfg.PStates, cfg.CStates),
		hier:        mem.New(cfg.Hierarchy),
		meter:       sensors.NewMeter(cfg.MeterNoiseWatts),
		allocNext:   dataRegionBase,
		codePages:   16,
		ifetchDown:  cfg.IFetchEvery,
		fastestMHz:  cfg.PStates.Fastest().FreqMHz,
		specLineOff: uint64(cfg.Hierarchy.L1D.LineBytes),
	}
	var pl bmc.Plant = (*plant)(m)
	if cfg.WrapPlant != nil {
		if wrapped := cfg.WrapPlant(pl); wrapped != nil {
			pl = wrapped
		}
	}
	m.ctrl = bmc.New(cfg.BMC, pl)
	// The node draws idle power from the instant it exists; events
	// will refine the estimate as soon as activity accumulates.
	m.curPower = cfg.Power.NodeWatts(power.NodeState{DRAMDuty: 1})
	// Perturb the run phase so repeated runs differ like real trials.
	m.clock.Advance(simtime.Duration(cfg.Seed%97) * 731 * simtime.Nanosecond)
	m.fetchSeq = cfg.Seed * 1021
	m.smmSeq = cfg.Seed * 2053
	m.scheduleMeter(m.clock.Now() + m.cfg.MeterInterval)
	m.scheduleBMC(m.clock.Now() + m.cfg.BMC.ControlPeriod)
	m.refreshNextEvent()
	return m
}

// Accessors used by the experiment layers.
func (m *Machine) Now() simtime.Duration     { return m.clock.Now() }
func (m *Machine) Core() *cpu.Core           { return m.core }
func (m *Machine) Hierarchy() *mem.Hierarchy { return m.hier }
func (m *Machine) Meter() *sensors.Meter     { return m.meter }
func (m *Machine) BMC() *bmc.BMC             { return m.ctrl }
func (m *Machine) Config() Config            { return m.cfg }
func (m *Machine) GatingLevel() int          { return m.gatingLevel }

// PowerWatts reports the node power computed at the most recent
// control or meter event — the BMC-visible instantaneous reading.
func (m *Machine) PowerWatts() float64 { return m.curPower }

// SetBusy marks the node as actively executing (or idle) for the power
// model when the caller drives Compute/Load/Store directly instead of
// going through RunWorkload — the gating-detection probes do this.
// RunWorkload manages the flag itself.
func (m *Machine) SetBusy(busy bool) { m.running = busy }

// CapFloorWatts estimates the lowest cap the platform can actually
// track: the busy power at the slowest P-state with the gating ladder
// fully escalated. Caps below this are accepted but overshoot, as the
// paper's 120 W rows do; the BMC advertises it via GetCapabilities.
func (m *Machine) CapFloorWatts() float64 {
	deepest := m.cfg.Ladder[len(m.cfg.Ladder)-1]
	hcfg := m.cfg.Hierarchy
	ways := func(v, full int) int {
		if v <= 0 {
			return full
		}
		return v
	}
	duty := deepest.DRAMGate.OnFraction
	if deepest.DRAMGate.Period == 0 {
		duty = 1
	}
	if deepest.DRAMDuty > 0 {
		duty = deepest.DRAMDuty
	}
	if scale := deepest.DRAMGate.LatencyScale; scale > 1 {
		duty *= 0.6 + 0.4/scale
	}
	itlbFrac := 1 - float64(ways(deepest.ITLBWays, hcfg.ITLB.Ways))/float64(hcfg.ITLB.Ways)
	dtlbFrac := 1 - float64(ways(deepest.DTLBWays, hcfg.DTLB.Ways))/float64(hcfg.DTLB.Ways)
	slow := m.cfg.PStates.Slowest()
	return m.cfg.Power.FloorWatts(slow.FreqMHz, slow.VoltageMV, power.NodeState{
		L3WaysGated:      hcfg.L3.Ways - ways(deepest.L3Ways, hcfg.L3.Ways),
		L2WaysGated:      hcfg.L2.Ways - ways(deepest.L2Ways, hcfg.L2.Ways),
		L1WaysGated:      2 * (hcfg.L1D.Ways - ways(deepest.L1Ways, hcfg.L1D.Ways)),
		TLBGatedFraction: (itlbFrac + dtlbFrac) / 2,
		DRAMDuty:         duty,
	})
}

// SetPolicy installs the capping policy (CapWatts <= 0 disables
// capping entirely, the paper's baseline configuration). The returned
// error is advisory — a cap below the platform floor yields
// bmc.ErrInfeasibleCap but is applied regardless, as the paper's
// 120 W rows require.
func (m *Machine) SetPolicy(capWatts float64) error {
	return m.ctrl.SetPolicy(bmc.Policy{Enabled: capWatts > 0, CapWatts: capWatts})
}

// Alloc reserves size bytes of simulated address space, page-aligned,
// and returns the base address. Data contents live in the workload's
// own Go slices; Alloc only lays out the simulated addresses.
func (m *Machine) Alloc(size int) uint64 {
	base := m.allocNext
	pages := uint64(size+4095) / 4096
	m.allocNext += (pages + 1) * 4096 // guard page between regions
	return base
}

// SetCodeFootprint declares how many 4 KiB pages of instruction
// working set the running workload has; the machine synthesizes
// instruction fetches over them.
func (m *Machine) SetCodeFootprint(pages int) {
	if pages < 1 {
		pages = 1
	}
	m.codePages = pages
}

// freq reports the current core frequency in MHz.
func (m *Machine) freq() int { return m.core.PState().FreqMHz }

// TraceOpKind labels one logical workload operation.
type TraceOpKind byte

// Trace operation kinds.
const (
	TraceCompute TraceOpKind = 'c'
	TraceLoad    TraceOpKind = 'l'
	TraceStore   TraceOpKind = 's'
)

// TraceOp is one observed workload operation.
type TraceOp struct {
	Kind   TraceOpKind
	Addr   uint64 // loads and stores
	Cycles int64  // compute
	Instrs uint64 // compute
}

// Compute executes instrs committed instructions taking cycles core
// cycles of pure execution (no memory operands beyond L1-resident
// state folded into the cycle count).
func (m *Machine) Compute(cycles int64, instrs uint64) {
	if cycles <= 0 {
		cycles = 1
	}
	if m.cfg.OpTrace != nil {
		m.cfg.OpTrace(TraceOp{Kind: TraceCompute, Cycles: cycles, Instrs: instrs})
	}
	m.drainPendingStall()
	d := simtime.Cycles(cycles, m.freq())
	m.advanceBusy(d)
	m.core.InstructionsCommitted += instrs
	m.core.InstructionsExecuted += instrs
	m.fetchForInstrs(instrs)
	m.runDueEvents()
}

// Load performs one committed data read at addr.
func (m *Machine) Load(addr uint64) {
	if m.cfg.OpTrace != nil {
		m.cfg.OpTrace(TraceOp{Kind: TraceLoad, Addr: addr})
	}
	m.memop(addr, mem.Load)
}

// Store performs one committed data write at addr.
func (m *Machine) Store(addr uint64) {
	if m.cfg.OpTrace != nil {
		m.cfg.OpTrace(TraceOp{Kind: TraceStore, Addr: addr})
	}
	m.memop(addr, mem.Store)
}

func (m *Machine) memop(addr uint64, kind mem.AccessKind) {
	m.drainPendingStall()
	m.fetchForInstrs(1)

	freq := m.freq()
	r := m.hier.Access(m.clock.Now(), freq, addr, kind)
	if r.Level <= mem.LevelL3 {
		// On-chip hits: the out-of-order engine overlaps them with
		// useful work, so they count as busy (high-activity) time.
		m.advanceBusy(r.Latency)
	} else {
		m.advanceStall(r.Latency)
	}

	m.core.InstructionsCommitted++
	m.core.InstructionsExecuted++
	if kind == mem.Store {
		m.core.StoresExecuted++
	} else {
		m.core.LoadsExecuted++
	}

	// Speculative work scales with frequency: a faster front end runs
	// further ahead of a stalled retirement point.
	m.specAcc += float64(freq) / float64(m.fastestMHz) / float64(m.cfg.SpecEvery)
	if m.specAcc >= 1 {
		m.specAcc--
		specAddr := addr + m.specLineOff
		m.hier.Access(m.clock.Now(), freq, specAddr, mem.Load)
		m.core.InstructionsExecuted++
		m.core.LoadsExecuted++
	}
	m.runDueEvents()
}

// fetchForInstrs issues the synthesized instruction fetches implied by
// committing n instructions. Fetches that hit the L1I are free (the
// front end runs ahead of retirement); misses stall.
func (m *Machine) fetchForInstrs(n uint64) {
	m.ifetchDown -= int(n)
	for m.ifetchDown <= 0 {
		m.ifetchDown += m.cfg.IFetchEvery
		addr := m.nextFetchAddr()
		r := m.hier.Access(m.clock.Now(), m.freq(), addr, mem.IFetch)
		if r.Level != mem.LevelL1 {
			m.advanceStall(r.Latency)
		}
	}
}

// farCodePages models the long tail of rarely executed code — shared
// libraries, error paths, OS-visible helpers — that keeps a real
// process's baseline iTLB miss count small but non-zero (the paper's
// baselines run tens of thousands of iTLB misses over billions of
// instructions).
const farCodePages = 512

// nextFetchAddr walks the workload's code footprint: most fetches spin
// in a small hot loop, a steady trickle covers the full footprint
// (helpers, branches taken occasionally), and a rare tail reaches the
// far pages.
func (m *Machine) nextFetchAddr() uint64 {
	m.fetchSeq++
	seq := m.fetchSeq
	if seq%499 == 0 {
		h := seq * 0x9E3779B97F4A7C15
		page := (h >> 33) % farCodePages
		return codeRegionBase + uint64(4096*4096) + page*4096
	}
	hot := 4
	if m.codePages < hot {
		hot = m.codePages
	}
	var page uint64
	if seq%5 == 0 && m.codePages > hot {
		// Cold fetch: cycle the whole footprint.
		page = (seq / 5) % uint64(m.codePages)
	} else {
		page = seq % uint64(hot)
	}
	// Vary the line within the page so the L1I sees realistic traffic.
	line := (seq * 13) % 64
	return codeRegionBase + page*4096 + line*64
}

// drainPendingStall applies stall time posted by firmware events.
func (m *Machine) drainPendingStall() {
	if m.pendingStall > 0 {
		d := m.pendingStall
		m.pendingStall = 0
		m.advanceStall(d)
	}
}

func (m *Machine) advanceBusy(d simtime.Duration) {
	m.clock.Advance(d)
	m.core.AccountBusy(d)
	m.accBusy += d
	if m.clockDuty > 0 && m.clockDuty < 1 {
		// Clock modulation: for every duty-cycle's worth of progress
		// the clock is gated for the complementary fraction.
		gap := simtime.Duration(float64(d) * (1 - m.clockDuty) / m.clockDuty)
		m.clock.Advance(gap)
		m.core.AccountStall(gap)
		m.accStall += gap
	}
}

func (m *Machine) advanceStall(d simtime.Duration) {
	m.clock.Advance(d)
	m.core.AccountStall(d)
	m.accStall += d
}

// runDueEvents fires any periodic events the clock has passed.
func (m *Machine) runDueEvents() {
	if !m.hasEvent || m.clock.Now() < m.nextEvent {
		return
	}
	m.events.RunUntil(m.clock.Now())
	m.refreshNextEvent()
}

func (m *Machine) refreshNextEvent() {
	m.nextEvent, m.hasEvent = m.events.PeekTime()
}

// AdvanceIdle advances simulated time with the core idle (deep
// C-state), still firing control and meter events. The experiment
// layer uses it between runs and the stride probe uses it to settle
// the controller.
func (m *Machine) AdvanceIdle(d simtime.Duration) {
	end := m.clock.Now() + d
	m.core.EnterCState(6)
	for {
		at, ok := m.events.PeekTime()
		if !ok || at > end {
			break
		}
		m.clock.AdvanceTo(at)
		m.events.RunUntil(at)
	}
	m.clock.AdvanceTo(end)
	m.refreshNextEvent()
	m.core.Wake()
}

// --- periodic events ---

func (m *Machine) scheduleMeter(at simtime.Duration) {
	m.events.Schedule(at, func(now simtime.Duration) {
		m.updatePower(now)
		m.meter.Record(now, m.curPower)
		m.scheduleMeter(now + m.cfg.MeterInterval)
	})
}

func (m *Machine) scheduleBMC(at simtime.Duration) {
	m.events.Schedule(at, func(now simtime.Duration) {
		m.updatePower(now)
		m.ctrl.Tick()
		if m.ctrl.Policy().Enabled {
			m.firmwareOverhead(now)
		}
		if m.cfg.ControlHook != nil {
			m.cfg.ControlHook(m)
		}
		m.scheduleBMC(now + m.cfg.BMC.ControlPeriod)
	})
}

// updatePower recomputes the node power from activity since the last
// update.
func (m *Machine) updatePower(now simtime.Duration) {
	dt := now - m.lastPowerAt
	if dt <= 0 {
		return
	}
	window := m.accBusy + m.accStall
	if window > 0 {
		m.curActivity = float64(m.accBusy) / float64(window)
	} else if !m.running {
		m.curActivity = 0
	}
	bytes := m.hier.TakeDRAMBytes()
	m.curMemUtil = float64(bytes) / (dt.Seconds() * m.cfg.Hierarchy.PeakBytesPerSec)
	if m.curMemUtil > 1 {
		m.curMemUtil = 1
	}
	m.accBusy, m.accStall = 0, 0
	m.lastPowerAt = now

	active := 0
	if m.running && m.core.CState().Index == 0 {
		active = 1
	}
	g := m.hier.Gated()
	st := power.NodeState{
		FreqMHz:          m.freq(),
		VoltageMV:        m.core.PState().VoltageMV,
		ActiveCores:      active,
		Activity:         m.curActivity,
		MemUtil:          m.curMemUtil,
		L3WaysGated:      g.L3WaysGated,
		L2WaysGated:      g.L2WaysGated,
		L1WaysGated:      g.L1WaysGated,
		TLBGatedFraction: g.TLBGatedFraction,
		DRAMDuty:         m.dutyEquivalent(),
		ClockDuty:        m.clockDuty,
	}
	m.curPower = m.cfg.Power.NodeWatts(st)
}

// dutyEquivalent folds duty cycling and latency scaling into the power
// model's single DRAM-duty input: both reduce memory-interface power,
// duty cycling proportionally and down-clocking more weakly.
func (m *Machine) dutyEquivalent() float64 {
	gate := m.hier.DRAM().Gate()
	duty := gate.OnFraction
	if gate.LatencyScale > 1 {
		duty *= 0.6 + 0.4/gate.LatencyScale
	}
	return duty
}

// firmwareOverhead injects the SMM handler's footprint: a brief core
// stall plus instruction and data traffic in the firmware region.
// Under deep capping the handler runs just as often per wall second
// but vastly more often per unit of workload progress, which is how a
// fixed overhead turns into the TLB-miss amplification of Table II.
func (m *Machine) firmwareOverhead(now simtime.Duration) {
	s := m.cfg.SMM
	if s.FetchesPerTick <= 0 && s.LoadsPerTick <= 0 {
		return
	}
	for i := 0; i < s.FetchesPerTick; i++ {
		m.smmSeq++
		page := m.smmSeq % uint64(max(1, s.CodePages))
		line := (m.smmSeq * 7) % 64
		m.hier.Access(now, m.freq(), smmRegionBase+page*4096+line*64, mem.IFetch)
	}
	for i := 0; i < s.LoadsPerTick; i++ {
		m.smmSeq++
		page := m.smmSeq % uint64(max(1, s.DataPages))
		m.hier.Access(now, m.freq(), smmRegionBase+(64<<12)+page*4096+(m.smmSeq%64)*64, mem.Load)
	}
	m.pendingStall += s.StallPerTick
}

// CounterSnapshot implements counters.Source.
func (m *Machine) CounterSnapshot() counters.Snapshot {
	return counters.Snapshot{
		L1DMisses:             m.hier.L1D().Stats().Misses,
		L1IMisses:             m.hier.L1I().Stats().Misses,
		L2Misses:              m.hier.L2().Stats().Misses,
		L3Misses:              m.hier.L3().Stats().Misses,
		DTLBMisses:            m.hier.DTLB().Stats().Misses,
		ITLBMisses:            m.hier.ITLB().Stats().Misses,
		InstructionsCommitted: m.core.InstructionsCommitted,
		InstructionsIssued:    m.core.InstructionsExecuted,
		Loads:                 m.core.LoadsExecuted,
		Stores:                m.core.StoresExecuted,
		Cycles:                m.core.Cycles,
	}
}

var _ counters.Source = (*Machine)(nil)

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
