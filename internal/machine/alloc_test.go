package machine

import "testing"

// TestLoadSteadyStateZeroAlloc pins the simulator's end-to-end memory
// op (TLB lookups, three cache levels, DRAM timing, event pump) at
// zero steady-state allocations per op. Periodic machinery — meter
// sample appends, BMC control ticks — allocates only on slice growth,
// which amortizes to zero at this run count; anything that allocates
// per op fails the test.
func TestLoadSteadyStateZeroAlloc(t *testing.T) {
	m := New(Romley())
	base := m.Alloc(1 << 22)
	// Warm the hierarchy and the periodic-event slices first so the
	// measured window is steady state.
	for i := 0; i < 100000; i++ {
		m.Load(base + uint64(i%65536)*64)
	}
	var i uint64
	allocs := testing.AllocsPerRun(200000, func() {
		m.Load(base + uint64(i%65536)*64)
		i++
	})
	if allocs != 0 {
		t.Errorf("Machine.Load allocates %.1f times per op in steady state, want 0", allocs)
	}
}
