package machine_test

import (
	"fmt"

	"nodecap/internal/machine"
	"nodecap/internal/simtime"
)

// tinyKernel is a minimal workload for the example: a compute loop
// over an L1-resident buffer.
type tinyKernel struct{}

func (tinyKernel) Name() string   { return "tiny-kernel" }
func (tinyKernel) CodePages() int { return 8 }
func (tinyKernel) Run(m *machine.Machine) {
	base := m.Alloc(4096)
	for i := 0; i < 300000; i++ {
		m.Compute(40, 32)
		m.Load(base + uint64(i%64)*64)
	}
}

// Build the paper's platform, enforce a cap, run a workload, and read
// the study's metrics. The output is deterministic for a fixed seed.
func Example() {
	cfg := machine.Romley()
	m := machine.New(cfg)
	m.SetPolicy(130) // the paper's frequency-floor region

	res := m.RunWorkload(tinyKernel{})

	fmt.Printf("cap        : %.0f W\n", res.CapWatts)
	fmt.Printf("frequency  : pinned near floor = %v\n", res.AvgFreqMHz < 1400)
	fmt.Printf("power      : under cap = %v\n", res.AvgPowerWatts <= 130)
	fmt.Printf("slowdown   : >1.8x = %v\n",
		res.ExecTime > simtime.Duration(1.8*float64(uncappedTime())))
	// Output:
	// cap        : 130 W
	// frequency  : pinned near floor = true
	// power      : under cap = true
	// slowdown   : >1.8x = true
}

func uncappedTime() simtime.Duration {
	m := machine.New(machine.Romley())
	return m.RunWorkload(tinyKernel{}).ExecTime
}
