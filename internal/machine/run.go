package machine

import (
	"nodecap/internal/bmc"
	"nodecap/internal/counters"
	"nodecap/internal/simtime"
)

// Workload is a program the machine can execute: it drives the
// Compute/Load/Store API against addresses it laid out with Alloc.
type Workload interface {
	// Name identifies the workload in results and reports.
	Name() string
	// CodePages is the instruction-footprint estimate (4 KiB pages)
	// used by the machine's fetch synthesis.
	CodePages() int
	// Run executes the workload to completion on m.
	Run(m *Machine)
}

// RunResult carries every metric the paper reports for one run.
type RunResult struct {
	Workload string
	// CapWatts is the enforced cap; 0 means uncapped baseline.
	CapWatts float64

	ExecTime      simtime.Duration
	AvgPowerWatts float64
	EnergyJoules  float64
	AvgFreqMHz    float64

	Counters counters.Snapshot
	BMCStats bmc.Stats
	// FinalGatingLevel is the ladder position when the run finished.
	FinalGatingLevel int
}

// RunWorkload executes w under the machine's current policy and
// returns the measured metrics. The sequence mirrors the study's
// procedure: the policy is already enforced, the node idles briefly
// (letting the controller settle against idle power), then the
// application runs while the meter and counters record.
func (m *Machine) RunWorkload(w Workload) RunResult {
	// Idle lead-in: two control periods, as between real trials.
	m.AdvanceIdle(4 * m.cfg.BMC.ControlPeriod)

	m.SetCodeFootprint(w.CodePages())
	m.meter.Reset()
	m.hier.ResetStats()
	m.core.ResetCounters()
	m.ctrl.ResetStats()

	start := m.clock.Now()
	m.updatePower(start)
	m.meter.Record(start, m.curPower)
	m.running = true

	w.Run(m)
	m.drainPendingStall()

	end := m.clock.Now()
	m.running = false
	m.updatePower(end)
	m.meter.Record(end, m.curPower)

	return RunResult{
		Workload:         w.Name(),
		CapWatts:         m.ctrl.Policy().CapWatts,
		ExecTime:         end - start,
		AvgPowerWatts:    m.meter.AverageWatts(),
		EnergyJoules:     m.meter.EnergyJoules(),
		AvgFreqMHz:       m.core.AverageFreqMHz(),
		Counters:         m.CounterSnapshot(),
		BMCStats:         m.ctrl.Stats(),
		FinalGatingLevel: m.gatingLevel,
	}
}
