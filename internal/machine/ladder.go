package machine

import (
	"nodecap/internal/dram"
	"nodecap/internal/mem"
	"nodecap/internal/simtime"
)

// GatingLadder is the ordered escalation sequence of sub-DVFS power
// reduction techniques the BMC walks through once the slowest P-state
// still exceeds the cap. Each level is cumulative (a superset of the
// previous), so power strictly decreases along the ladder and the
// controller's search is well-defined.
type GatingLadder []mem.Gating

// DefaultLadder reproduces the escalation the paper's counter data
// implies for the modelled platform:
//
//	levels 1–4:  L3 way gating, then L2/L1 way gating and ITLB
//	             shrinking — these explode Stereo Matching's L2/L3
//	             misses (Table II rows A8/A9) and both workloads'
//	             iTLB misses while barely moving SIRE's cache misses;
//	levels 5–6:  memory-interface down-clocking (latency scaling);
//	levels 7–9:  memory-controller duty cycling, the deep "memory
//	             gating" behind Figure 4's enormous erratic access
//	             times and the 120 W rows' 25–35x slowdowns.
func DefaultLadder() GatingLadder {
	const period = 50 * simtime.Microsecond
	gate := func(duty, scale float64) dram.GateConfig {
		return dram.GateConfig{Period: period, OnFraction: duty, WakeNanos: 500, LatencyScale: scale}
	}
	return GatingLadder{
		{}, // level 0: fully powered
		{L3Ways: 16},
		{L3Ways: 12},
		{L3Ways: 8, L2Ways: 6},
		{L3Ways: 6, L2Ways: 4, L1Ways: 6, ITLBWays: 2},
		{L3Ways: 4, L2Ways: 2, L1Ways: 4, ITLBWays: 1, DTLBWays: 2,
			DRAMGate: gate(1, 1.5)},
		{L3Ways: 4, L2Ways: 1, L1Ways: 2, ITLBWays: 1, DTLBWays: 2,
			DRAMGate: gate(1, 2.0)},
		{L3Ways: 4, L2Ways: 1, L1Ways: 2, ITLBWays: 1, DTLBWays: 2,
			DRAMGate: gate(0.6, 2.5)},
		{L3Ways: 4, L2Ways: 1, L1Ways: 2, ITLBWays: 1, DTLBWays: 2,
			DRAMGate: gate(0.45, 2.5)},
		{L3Ways: 4, L2Ways: 1, L1Ways: 2, ITLBWays: 1, DTLBWays: 2,
			DRAMGate: gate(0.15, 2.5)},
	}
}

// DVFSOnlyLadder is the single-level ladder used by the ablation
// study: capping falls back to pure DVFS with no sub-DVFS escalation,
// which cannot reach caps below the slowest P-state's power.
func DVFSOnlyLadder() GatingLadder {
	return GatingLadder{{}}
}

// DeepMemoryGatingLadder is DefaultLadder with far harsher
// memory-controller duty cycling at the deepest levels: long off
// windows (most of a 500 µs period) that push worst-case DRAM access
// times into the 10^4-10^6 ns range of the paper's Figure 4.
//
// The paper's own data is not internally consistent here: Table II's
// 120 W slowdowns (~30x) imply average memory stalls of tens of
// microseconds, while Figure 4's probe saw accesses take up to a
// millisecond. DefaultLadder matches Table II; this ladder matches
// Figure 4's magnitudes (and would blow Table II's low caps far past
// the paper's factors). cmd/powercap-bench selects it with -fig4deep.
func DeepMemoryGatingLadder() GatingLadder {
	l := DefaultLadder()
	deep := func(period simtime.Duration, duty float64) dram.GateConfig {
		return dram.GateConfig{
			Period:       period,
			OnFraction:   duty,
			WakeNanos:    2000,
			LatencyScale: 2.5,
		}
	}
	l[len(l)-2].DRAMGate = deep(500*simtime.Microsecond, 0.08)
	l[len(l)-1].DRAMGate = deep(500*simtime.Microsecond, 0.02)
	return l
}
