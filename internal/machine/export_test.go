package machine

import (
	"nodecap/internal/mem"
	"nodecap/internal/power"
)

// powerStateForTest rebuilds the power-model input for the machine's
// current posture with a fixed busy profile, so tests can compare
// ladder levels on power alone.
func powerStateForTest(m *Machine, g mem.GatedState) power.NodeState {
	return power.NodeState{
		FreqMHz:          m.freq(),
		VoltageMV:        m.core.PState().VoltageMV,
		ActiveCores:      1,
		Activity:         0.5,
		MemUtil:          0.2,
		L3WaysGated:      g.L3WaysGated,
		L2WaysGated:      g.L2WaysGated,
		L1WaysGated:      g.L1WaysGated,
		TLBGatedFraction: g.TLBGatedFraction,
		DRAMDuty:         m.dutyEquivalent(),
	}
}
