package machine

// plant adapts Machine to the bmc.Plant interface. It is a separate
// named type so the actuation surface the firmware sees stays explicit
// and narrow.
type plant Machine

func (p *plant) m() *Machine { return (*Machine)(p) }

// PowerWatts reports the power estimate computed at the current
// control tick — the BMC's out-of-band sensor reading.
func (p *plant) PowerWatts() float64 { return p.m().curPower }

func (p *plant) PStateIndex() int { return p.m().core.PStateIndex() }
func (p *plant) NumPStates() int  { return len(p.m().cfg.PStates) }

// CapFloorWatts implements bmc.FloorReporter so the firmware can flag
// caps the platform cannot track.
func (p *plant) CapFloorWatts() float64 { return p.m().CapFloorWatts() }

// SetPState performs the DVFS transition, posting its stall to the
// running workload (frequency changes halt the clock briefly).
func (p *plant) SetPState(i int) {
	m := p.m()
	m.pendingStall += m.core.SetPState(i)
}

func (p *plant) GatingLevel() int { return p.m().gatingLevel }

// MaxGatingLevel spans the hierarchy ladder plus any configured
// T-state (clock modulation) levels beyond it.
func (p *plant) MaxGatingLevel() int {
	m := p.m()
	return len(m.cfg.Ladder) - 1 + len(m.cfg.TStates)
}

// ForceGatingLevel pins the hierarchy to ladder level l, bypassing the
// controller. Used by the gating-detection microbenchmarks' validation
// and by ablation studies; enabling a capping policy afterwards hands
// control back to the BMC.
func (m *Machine) ForceGatingLevel(l int) {
	(*plant)(m).SetGatingLevel(l)
}

// SetGatingLevel reconfigures the machine to escalation level l:
// hierarchy ladder levels first, then (when configured) the T-state
// clock-modulation levels beyond them. Way flushes and TLB shootdowns
// stall the core briefly.
func (p *plant) SetGatingLevel(l int) {
	m := p.m()
	ladderMax := len(m.cfg.Ladder) - 1
	if l < 0 {
		l = 0
	}
	if max := ladderMax + len(m.cfg.TStates); l > max {
		l = max
	}
	if l == m.gatingLevel {
		return
	}
	m.gatingLevel = l

	hl := l
	if hl > ladderMax {
		hl = ladderMax
	}
	m.hier.ApplyGating(m.clock.Now(), m.cfg.Ladder[hl])
	if l > ladderMax {
		m.clockDuty = m.cfg.TStates[l-ladderMax-1]
	} else {
		m.clockDuty = 1
	}
	m.pendingStall += 5 * 1000 * 1000 // 5 µs in picoseconds
}
