package report

import (
	"strings"
	"testing"

	"nodecap/internal/core"
	"nodecap/internal/sensors"
	"nodecap/internal/simtime"
	"nodecap/internal/workloads/stride"
)

// fakeSweep builds a deterministic SweepResult without running a
// machine.
func fakeSweep() core.SweepResult {
	mk := func(label string, cap, pw, en, fq, ts float64, l2, itlb float64) core.CapResult {
		return core.CapResult{
			Label: label, CapWatts: cap,
			PowerWatts: pw, EnergyJoules: en, FreqMHz: fq,
			TimeSeconds: ts, Time: simtime.FromSeconds(ts),
			Counters: core.CounterMeans{
				L1Misses: 1_000_000, L2Misses: l2, L3Misses: 50_000,
				DTLBMisses: 9_000, ITLBMisses: itlb,
				Loads: 2_000_000, Stores: 500_000,
			},
		}
	}
	return core.SweepResult{
		Workload: "Stereo Matching",
		Baseline: mk("baseline", 0, 153.1, 13626, 2701, 89, 69_000, 61_000),
		Capped: []core.CapResult{
			mk("160", 160, 153.3, 13435, 2701, 92, 67_000, 49_000),
			mk("120", 120, 124.9, 395921, 1200, 3168, 237_000, 4_001_000),
		},
	}
}

func TestTableI(t *testing.T) {
	out := TableI([]core.SweepResult{fakeSweep()})
	if !strings.Contains(out, "Stereo Matching") {
		t.Error("workload name missing")
	}
	if !strings.Contains(out, "153") {
		t.Error("baseline power missing")
	}
	if !strings.Contains(out, "0:01:29") {
		t.Error("baseline time missing")
	}
}

func TestTableIIStructure(t *testing.T) {
	out := TableII(fakeSweep(), "A")
	for _, want := range []string{"A0", "A1", "A2", "baseline", "0:52:48", "237,000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q\n%s", want, out)
		}
	}
	// A2 row: time diff (3168-89)/89 = +3460%.
	if !strings.Contains(out, "3460") {
		t.Errorf("Table II missing +3460%% time diff\n%s", out)
	}
	// Frequency diff at 120 W: (1200-2701)/2701 = -56%.
	if !strings.Contains(out, "-56") {
		t.Errorf("Table II missing -56%% frequency diff\n%s", out)
	}
}

func TestFigure12SeriesNormalized(t *testing.T) {
	series := Figure12Series(fakeSweep(), true)
	names := map[string]bool{}
	for _, s := range series {
		names[s.Name] = true
		if len(s.Values) != 3 {
			t.Errorf("series %s has %d values", s.Name, len(s.Values))
		}
		var peak float64
		for _, v := range s.Values {
			if v > peak {
				peak = v
			}
			if v < 0 || v > 1 {
				t.Errorf("series %s value %v outside [0,1]", s.Name, v)
			}
		}
		if peak < 0.999 {
			t.Errorf("series %s peak %v, want 1", s.Name, peak)
		}
	}
	for _, want := range []string{"L2 Miss Rate", "L3 Miss Rate", "TLB Instruction Misses",
		"Frequency", "Time", "Power Consumption", "Energy Consumption"} {
		if !names[want] {
			t.Errorf("missing series %q", want)
		}
	}
	// Figure 1 (SIRE) omits the cache-miss-rate curves.
	fig1 := Figure12Series(fakeSweep(), false)
	if len(fig1) != len(series)-2 {
		t.Errorf("figure-1 series count = %d, want %d", len(fig1), len(series)-2)
	}
}

func TestFigure12Render(t *testing.T) {
	out := Figure12(fakeSweep(), "Figure 2", true)
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "baseline") {
		t.Error("figure header wrong")
	}
	if !strings.Contains(out, "Energy Consumption") {
		t.Error("series rows missing")
	}
}

func TestFigure12CSV(t *testing.T) {
	out := Figure12CSV(fakeSweep(), false)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "cap,TLB_Instruction_Misses") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func strideFixture() []stride.Point {
	return []stride.Point{
		{ArrayBytes: 4096, StrideBytes: 8, AvgAccessNanos: 1.5},
		{ArrayBytes: 4096, StrideBytes: 2048, AvgAccessNanos: 1.6},
		{ArrayBytes: 1 << 20, StrideBytes: 8, AvgAccessNanos: 2.4},
		{ArrayBytes: 1 << 20, StrideBytes: 2048, AvgAccessNanos: 9.1},
	}
}

func TestStrideFigure(t *testing.T) {
	out := StrideFigure(strideFixture(), "Figure 3")
	for _, want := range []string{"Figure 3", "4K", "1M", "8B", "2K", "9.1"} {
		if !strings.Contains(out, want) {
			t.Errorf("stride figure missing %q\n%s", want, out)
		}
	}
	// The (4K, 2048) exists but (missing combos render "-"): none here.
	if strings.Count(out, "-") != 0 {
		// 4K has stride 2048 and 1M has both: no gaps expected.
		t.Errorf("unexpected gaps\n%s", out)
	}
}

func TestStrideCSV(t *testing.T) {
	out := StrideCSV(strideFixture())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if lines[0] != "array_bytes,stride_bytes,avg_access_ns" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "4096,8,1.500" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestByteLabel(t *testing.T) {
	cases := map[int]string{
		8:        "8B",
		1024:     "1K",
		4096:     "4K",
		1 << 20:  "1M",
		64 << 20: "64M",
		48:       "48B",
	}
	for n, want := range cases {
		if got := byteLabel(n); got != want {
			t.Errorf("byteLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestPowerTraceCSV(t *testing.T) {
	samples := []sensors.Sample{
		{At: 0, Watts: 101},
		{At: simtime.Second / 2, Watts: 153.37},
	}
	out := PowerTraceCSV(samples)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 || lines[0] != "time_s,watts" {
		t.Fatalf("trace = %q", out)
	}
	if lines[2] != "0.500000,153.37" {
		t.Errorf("row = %q", lines[2])
	}
}
