// Package report renders the study's tables and figures from sweep
// results: Table I (baselines), Table II (the full cap sweep with
// percent differences), Figures 1 and 2 (normalized metric series),
// and Figures 3 and 4 (stride-probe curves). Each artefact has a
// plain-text renderer for terminals and a CSV renderer for plotting.
package report

import (
	"fmt"
	"sort"
	"strings"

	"nodecap/internal/core"
	"nodecap/internal/sensors"
	"nodecap/internal/simtime"
	"nodecap/internal/stats"
	"nodecap/internal/workloads/stride"
)

// fmtTime renders an execution time: the paper's h:m:s for runs of a
// second or more, milliseconds for the simulator's scaled runs.
func fmtTime(d simtime.Duration) string {
	if d >= simtime.Second {
		return d.HMS()
	}
	return fmt.Sprintf("%.1fms", d.Nanos()/1e6)
}

// TableI renders the baseline table: average node power and execution
// time per workload, uncapped.
func TableI(results []core.SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: baseline power consumption and execution time\n")
	fmt.Fprintf(&b, "%-18s %22s %16s\n", "Code", "Avg Node Power (W)", "Execution Time")
	for _, r := range results {
		fmt.Fprintf(&b, "%-18s %22.0f %16s\n",
			r.Workload, r.Baseline.PowerWatts, fmtTime(r.Baseline.Time))
	}
	return b.String()
}

// TableII renders the full sweep for one workload in the paper's
// two-block layout: power/energy/frequency/time, then the counter
// columns, each with rounded percent differences against the baseline.
func TableII(res core.SweepResult, rowPrefix string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II (%s): performance data averaged over trials\n", res.Workload)
	fmt.Fprintf(&b, "%-5s %-9s %10s %6s %14s %6s %9s %6s %10s %6s\n",
		"Expt", "Cap(W)", "Power(W)", "%Diff", "Energy(J)", "%Diff", "Freq(MHz)", "%Diff", "Time", "%Diff")
	for i, r := range res.All() {
		d := res.DiffVsBaseline(r)
		label := fmt.Sprintf("%s%d", rowPrefix, i)
		cap := "baseline"
		if r.CapWatts > 0 {
			cap = fmt.Sprintf("%.0f", r.CapWatts)
		}
		fmt.Fprintf(&b, "%-5s %-9s %10.1f %6d %14.1f %6d %9.0f %6d %10s %6d\n",
			label, cap,
			r.PowerWatts, stats.RoundPercent(d.Power),
			r.EnergyJoules, stats.RoundPercent(d.Energy),
			r.FreqMHz, stats.RoundPercent(d.Freq),
			fmtTime(r.Time), stats.RoundPercent(d.Time))
	}
	fmt.Fprintf(&b, "\n%-5s %16s %6s %16s %6s %14s %6s %14s %6s %12s %6s\n",
		"Expt", "L1 Misses", "%Diff", "L2 Misses", "%Diff", "L3 Misses", "%Diff",
		"TLB Data", "%Diff", "TLB Instr", "%Diff")
	for i, r := range res.All() {
		d := res.DiffVsBaseline(r)
		label := fmt.Sprintf("%s%d", rowPrefix, i)
		c := r.Counters
		fmt.Fprintf(&b, "%-5s %16s %6d %16s %6d %14s %6d %14s %6d %12s %6d\n",
			label,
			stats.FormatCount(c.L1Misses), stats.RoundPercent(d.L1),
			stats.FormatCount(c.L2Misses), stats.RoundPercent(d.L2),
			stats.FormatCount(c.L3Misses), stats.RoundPercent(d.L3),
			stats.FormatCount(c.DTLBMisses), stats.RoundPercent(d.DTLB),
			stats.FormatCount(c.ITLBMisses), stats.RoundPercent(d.ITLB))
	}
	return b.String()
}

// FigureSeries is one named, normalized series across the cap sweep.
type FigureSeries struct {
	Name   string
	Values []float64
}

// Figure12Series builds the normalized series of Figure 1 (SIRE/RSM)
// or Figure 2 (Stereo Matching, which adds the L2/L3 miss-rate
// curves).
func Figure12Series(res core.SweepResult, includeCacheMissRates bool) []FigureSeries {
	var out []FigureSeries
	add := func(name string, metric func(core.CapResult) float64) {
		out = append(out, FigureSeries{Name: name, Values: stats.Normalize(res.Series(metric))})
	}
	if includeCacheMissRates {
		add("L2 Miss Rate", func(r core.CapResult) float64 {
			if r.Counters.Loads+r.Counters.Stores == 0 {
				return 0
			}
			return r.Counters.L2Misses / (r.Counters.Loads + r.Counters.Stores)
		})
		add("L3 Miss Rate", func(r core.CapResult) float64 {
			if r.Counters.Loads+r.Counters.Stores == 0 {
				return 0
			}
			return r.Counters.L3Misses / (r.Counters.Loads + r.Counters.Stores)
		})
	}
	add("TLB Instruction Misses", func(r core.CapResult) float64 { return r.Counters.ITLBMisses })
	add("Frequency", func(r core.CapResult) float64 { return r.FreqMHz })
	add("Time", func(r core.CapResult) float64 { return r.TimeSeconds })
	add("Power Consumption", func(r core.CapResult) float64 { return r.PowerWatts })
	add("Energy Consumption", func(r core.CapResult) float64 { return r.EnergyJoules })
	return out
}

// Figure12 renders a normalized-series figure as a text table: one row
// per series, one column per cap, values in [0,1].
func Figure12(res core.SweepResult, title string, includeCacheMissRates bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (normalized to each series' maximum)\n", title)
	fmt.Fprintf(&b, "%-24s", "Series \\ Cap (W)")
	for _, r := range res.All() {
		fmt.Fprintf(&b, " %8s", r.Label)
	}
	b.WriteByte('\n')
	for _, s := range Figure12Series(res, includeCacheMissRates) {
		fmt.Fprintf(&b, "%-24s", s.Name)
		for _, v := range s.Values {
			fmt.Fprintf(&b, " %8.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure12CSV renders the same data as CSV (series per column).
func Figure12CSV(res core.SweepResult, includeCacheMissRates bool) string {
	series := Figure12Series(res, includeCacheMissRates)
	var b strings.Builder
	b.WriteString("cap")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(s.Name, " ", "_"))
	}
	b.WriteByte('\n')
	for i, r := range res.All() {
		fmt.Fprintf(&b, "%s", r.Label)
		for _, s := range series {
			fmt.Fprintf(&b, ",%.6f", s.Values[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StrideFigure renders a stride-probe result in the layout of
// Figures 3 and 4: rows are strides, columns are array sizes, cells
// are average access times in ns.
func StrideFigure(points []stride.Point, title string) string {
	series := stride.SeriesByArray(points)
	sizes := sortedKeys(series)
	strideSet := map[int]bool{}
	for _, pt := range points {
		strideSet[pt.StrideBytes] = true
	}
	var strides []int
	for s := range strideSet {
		strides = append(strides, s)
	}
	sort.Ints(strides)

	lookup := make(map[[2]int]float64, len(points))
	for _, pt := range points {
		lookup[[2]int{pt.ArrayBytes, pt.StrideBytes}] = pt.AvgAccessNanos
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\naccess time (ns); rows = stride, columns = array size\n", title)
	fmt.Fprintf(&b, "%-8s", "stride")
	for _, sz := range sizes {
		fmt.Fprintf(&b, " %9s", byteLabel(sz))
	}
	b.WriteByte('\n')
	for _, st := range strides {
		fmt.Fprintf(&b, "%-8s", byteLabel(st))
		for _, sz := range sizes {
			if v, ok := lookup[[2]int{sz, st}]; ok {
				fmt.Fprintf(&b, " %9.1f", v)
			} else {
				fmt.Fprintf(&b, " %9s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StrideCSV renders probe points as CSV rows.
func StrideCSV(points []stride.Point) string {
	var b strings.Builder
	b.WriteString("array_bytes,stride_bytes,avg_access_ns\n")
	for _, pt := range points {
		fmt.Fprintf(&b, "%d,%d,%.3f\n", pt.ArrayBytes, pt.StrideBytes, pt.AvgAccessNanos)
	}
	return b.String()
}

// byteLabel renders sizes the way the paper labels its axes (8B, 4K,
// 2M, ...).
func byteLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func sortedKeys(m map[int][]stride.Point) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// PowerTraceCSV renders a meter trace as CSV (seconds, watts) — the
// raw material of a Watts Up! log, useful for plotting the
// controller's convergence and dithering.
func PowerTraceCSV(samples []sensors.Sample) string {
	var b strings.Builder
	b.WriteString("time_s,watts\n")
	for _, s := range samples {
		fmt.Fprintf(&b, "%.6f,%.2f\n", s.At.Seconds(), s.Watts)
	}
	return b.String()
}
