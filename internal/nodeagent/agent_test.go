package nodeagent

import (
	"testing"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
)

// tinyWork is a short busy loop so looped runs complete quickly.
type tinyWork struct{}

func (tinyWork) Name() string   { return "tiny" }
func (tinyWork) CodePages() int { return 8 }
func (tinyWork) Run(m *machine.Machine) {
	base := m.Alloc(1 << 16)
	for i := 0; i < 20000; i++ {
		m.Compute(20, 16)
		m.Load(base + uint64(i%1024)*64)
	}
}

func idleAgent(t *testing.T) *Agent {
	t.Helper()
	a := New(machine.Romley(), Options{})
	t.Cleanup(a.Stop)
	return a
}

func TestIdleAgentServesManagement(t *testing.T) {
	a := idleAgent(t)
	pr := a.PowerReading()
	if pr.CurrentWatts < 95 || pr.CurrentWatts > 110 {
		t.Errorf("idle power = %.1f W, want ~101", pr.CurrentWatts)
	}
	ps := a.PStateInfo()
	if ps.Count != 16 {
		t.Errorf("P-state count = %d", ps.Count)
	}
	caps := a.Capabilities()
	if caps.MinCapWatts <= 120 || caps.MinCapWatts >= 126 {
		t.Errorf("advertised floor = %.1f W", caps.MinCapWatts)
	}
	if di := a.DeviceInfo(); di.ManufacturerID != 343 {
		t.Errorf("device info = %+v", di)
	}
}

// TestTierAdvertisedInCapabilities: the configured priority tier rides
// out through the BMC capabilities, where DCM picks it up at
// registration. The default is the low (batch) tier.
func TestTierAdvertisedInCapabilities(t *testing.T) {
	if tier := idleAgent(t).Capabilities().Tier; tier != ipmi.TierLow {
		t.Errorf("default tier = %d, want low (%d)", tier, ipmi.TierLow)
	}
	a := New(machine.Romley(), Options{Tier: ipmi.TierHigh})
	t.Cleanup(a.Stop)
	if tier := a.Capabilities().Tier; tier != ipmi.TierHigh {
		t.Errorf("advertised tier = %d, want high (%d)", tier, ipmi.TierHigh)
	}
}

func TestSetAndGetPowerLimit(t *testing.T) {
	a := idleAgent(t)
	if err := a.SetPowerLimit(ipmi.PowerLimit{Enabled: true, CapWatts: 140}); err != nil {
		t.Fatal(err)
	}
	lim := a.PowerLimit()
	if !lim.Enabled || lim.CapWatts != 140 {
		t.Errorf("limit = %+v", lim)
	}
	a.SetPowerLimit(ipmi.PowerLimit{})
	if a.PowerLimit().Enabled {
		t.Error("disable did not apply")
	}
}

func TestBusyAgentRunsWorkloads(t *testing.T) {
	a := New(machine.Romley(), Options{
		Workload: func() machine.Workload { return tinyWork{} },
	})
	defer a.Stop()
	deadline := time.After(10 * time.Second)
	for {
		if _, n := a.LastRun(); n >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no workload runs completed")
		case <-time.After(time.Millisecond):
		}
	}
	r, _ := a.LastRun()
	if r.Workload != "tiny" || r.ExecTime <= 0 {
		t.Errorf("last run = %+v", r)
	}
}

// longWork is long enough (several ms of virtual time) for the BMC to
// converge within a single run.
type longWork struct{}

func (longWork) Name() string   { return "long" }
func (longWork) CodePages() int { return 8 }
func (longWork) Run(m *machine.Machine) {
	base := m.Alloc(1 << 16)
	for i := 0; i < 800000; i++ {
		m.Compute(20, 16)
		m.Load(base + uint64(i%1024)*64)
	}
}

func TestPolicyAppliesMidStream(t *testing.T) {
	a := New(machine.Romley(), Options{
		Workload: func() machine.Workload { return longWork{} },
	})
	defer a.Stop()
	if err := a.SetPowerLimit(ipmi.PowerLimit{Enabled: true, CapWatts: 130}); err != nil {
		t.Fatal(err)
	}
	// Eventually a run completes under the cap with a low frequency.
	deadline := time.After(10 * time.Second)
	for {
		r, n := a.LastRun()
		if n >= 3 && r.AvgFreqMHz < 1500 && r.CapWatts == 130 {
			return
		}
		select {
		case <-deadline:
			r, n := a.LastRun()
			t.Fatalf("cap never took effect: runs=%d freq=%.0f cap=%.0f", n, r.AvgFreqMHz, r.CapWatts)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestEndToEndDCMToAgent wires the full management stack: DCM manager
// -> IPMI client -> TCP -> IPMI server -> agent -> machine.
func TestEndToEndDCMToAgent(t *testing.T) {
	a := New(machine.Romley(), Options{})
	defer a.Stop()
	srv := ipmi.NewServer(a)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	mgr := dcm.NewManager(nil)
	defer mgr.Close()
	if err := mgr.AddNode("sim0", addr); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetNodeCap("sim0", 145); err != nil {
		t.Fatal(err)
	}
	mgr.Poll()
	ns := mgr.Nodes()
	if len(ns) != 1 || !ns[0].Reachable || ns[0].CapWatts != 145 {
		t.Fatalf("node status = %+v", ns)
	}
	if ns[0].MinCapWatts <= 120 {
		t.Errorf("floor not propagated: %+v", ns[0])
	}
	lim := a.PowerLimit()
	if !lim.Enabled || lim.CapWatts != 145 {
		t.Errorf("agent limit = %+v", lim)
	}
}

func TestStopIdempotent(t *testing.T) {
	a := New(machine.Romley(), Options{})
	a.Stop()
	a.Stop()
	// Do after stop must not hang.
	done := make(chan struct{})
	go func() {
		a.Do(func(*machine.Machine) {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Do after Stop hangs")
	}
}
