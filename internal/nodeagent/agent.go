// Package nodeagent hosts a simulated node as a long-running service:
// it owns the machine (which is single-threaded by design), advances
// its virtual clock, optionally runs workloads in a loop, and exposes
// the BMC management surface so an ipmi.Server can serve it
// concurrently. Management commands are marshalled onto the machine's
// goroutine and applied at safe points — between idle slices, or at
// BMC control ticks while a workload is running, which is exactly when
// real out-of-band policy changes take effect.
package nodeagent

import (
	"sync"
	"time"

	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/simtime"
)

// Options configures an agent.
type Options struct {
	// Workload, when non-nil, builds workload instances the agent runs
	// back to back (a busy node). Nil means the node idles.
	Workload func() machine.Workload
	// IdleSlice is the virtual time advanced per idle iteration.
	IdleSlice simtime.Duration
	// Throttle is wall-clock sleep per idle slice so an idle daemon
	// does not spin a host CPU; zero free-runs (tests).
	Throttle time.Duration
	// Tier is the priority tier the node advertises through its BMC
	// capabilities (ipmi.TierLow or ipmi.TierHigh): a DCM registering
	// this node auto-classifies it for weighted budget allocation.
	Tier uint8
}

// Agent hosts one machine.
type Agent struct {
	opts Options
	cmds chan func(*machine.Machine)

	mu       sync.Mutex
	lastRun  *machine.RunResult
	runCount int

	stop chan struct{}
	done chan struct{}
}

// New builds an agent around cfg. The agent installs its command-drain
// hook into the machine configuration.
func New(cfg machine.Config, opts Options) *Agent {
	if opts.IdleSlice <= 0 {
		opts.IdleSlice = simtime.Millisecond
	}
	a := &Agent{
		opts: opts,
		cmds: make(chan func(*machine.Machine), 64),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	prev := cfg.ControlHook
	cfg.ControlHook = func(m *machine.Machine) {
		if prev != nil {
			prev(m)
		}
		a.drain(m)
	}
	m := machine.New(cfg)
	go a.loop(m)
	return a
}

// loop is the machine-owner goroutine.
func (a *Agent) loop(m *machine.Machine) {
	defer close(a.done)
	for {
		select {
		case <-a.stop:
			a.drain(m)
			return
		default:
		}
		a.drain(m)
		if a.opts.Workload != nil {
			res := m.RunWorkload(a.opts.Workload())
			a.mu.Lock()
			a.lastRun = &res
			a.runCount++
			a.mu.Unlock()
			continue
		}
		m.AdvanceIdle(a.opts.IdleSlice)
		if a.opts.Throttle > 0 {
			time.Sleep(a.opts.Throttle)
		}
	}
}

// drain applies queued management commands.
func (a *Agent) drain(m *machine.Machine) {
	for {
		select {
		case f := <-a.cmds:
			f(m)
		default:
			return
		}
	}
}

// Do runs f on the machine goroutine and waits for it.
func (a *Agent) Do(f func(*machine.Machine)) {
	doneCh := make(chan struct{})
	select {
	case a.cmds <- func(m *machine.Machine) {
		f(m)
		close(doneCh)
	}:
	case <-a.done:
		return
	}
	select {
	case <-doneCh:
	case <-a.done:
	}
}

// Stop halts the loop after the current run or idle slice.
func (a *Agent) Stop() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
}

// LastRun reports the most recent workload result and how many runs
// have completed.
func (a *Agent) LastRun() (machine.RunResult, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var r machine.RunResult
	if a.lastRun != nil {
		r = *a.lastRun
	}
	return r, a.runCount
}

// --- ipmi.NodeControl ------------------------------------------------

var _ ipmi.NodeControl = (*Agent)(nil)

// DeviceInfo identifies the simulated platform.
func (a *Agent) DeviceInfo() ipmi.DeviceInfo {
	return ipmi.DeviceInfo{
		DeviceID:       0x20,
		FirmwareMajor:  1,
		FirmwareMinor:  0,
		ManufacturerID: 343,    // Intel's IANA enterprise number
		ProductID:      0x0B2D, // arbitrary S2R2-family stand-in
	}
}

// PowerReading reports the node's current and recent-average power.
func (a *Agent) PowerReading() ipmi.PowerReading {
	var out ipmi.PowerReading
	a.Do(func(m *machine.Machine) {
		out.CurrentWatts = m.PowerWatts()
		out.AverageWatts = m.Meter().WindowAverageWatts(10 * simtime.Millisecond)
		if out.AverageWatts == 0 {
			out.AverageWatts = out.CurrentWatts
		}
	})
	return out
}

// SetPowerLimit applies a capping policy. An infeasible cap (below
// the platform floor) is still applied — the paper's 120 W rows depend
// on that — so it is NOT a wire error; the condition is surfaced
// through Health().InfeasibleCap instead, where the manager reads it
// without treating the node as failed.
func (a *Agent) SetPowerLimit(lim ipmi.PowerLimit) error {
	a.Do(func(m *machine.Machine) {
		if lim.Enabled {
			m.SetPolicy(lim.CapWatts)
		} else {
			m.SetPolicy(0)
		}
	})
	return nil
}

// PowerLimit reports the active policy.
func (a *Agent) PowerLimit() ipmi.PowerLimit {
	var out ipmi.PowerLimit
	a.Do(func(m *machine.Machine) {
		p := m.BMC().Policy()
		out = ipmi.PowerLimit{Enabled: p.Enabled, CapWatts: p.CapWatts}
	})
	return out
}

// PStateInfo reports DVFS state.
func (a *Agent) PStateInfo() ipmi.PStateInfo {
	var out ipmi.PStateInfo
	a.Do(func(m *machine.Machine) {
		out = ipmi.PStateInfo{
			Index:   uint8(m.Core().PStateIndex()),
			Count:   uint8(len(m.Core().PStates())),
			FreqMHz: uint16(m.Core().PState().FreqMHz),
		}
	})
	return out
}

// GatingLevel reports the sub-DVFS ladder position.
func (a *Agent) GatingLevel() int {
	var out int
	a.Do(func(m *machine.Machine) { out = m.GatingLevel() })
	return out
}

// Capabilities reports the trackable cap range and advertised tier.
func (a *Agent) Capabilities() ipmi.Capabilities {
	var out ipmi.Capabilities
	a.Do(func(m *machine.Machine) {
		out = ipmi.Capabilities{
			MinCapWatts: m.CapFloorWatts(),
			MaxCapWatts: 250,
			Tier:        a.opts.Tier,
		}
	})
	return out
}

// Health reports the BMC's defensive-controller status.
func (a *Agent) Health() ipmi.Health {
	var out ipmi.Health
	a.Do(func(m *machine.Machine) {
		h := m.BMC().Health()
		out = ipmi.Health{
			FailSafe:      h.FailSafe,
			SensorFaults:  uint32(h.SensorFaults),
			InfeasibleCap: h.InfeasibleCap,
		}
	})
	return out
}
