package dcm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"nodecap/internal/ipmi"
)

// fakeBMC is a scripted node.
type fakeBMC struct {
	mu      sync.Mutex
	power   float64
	limit   ipmi.PowerLimit
	minCap  float64
	maxCap  float64
	capTier uint8
	fail    bool
	setErr  error // scripted SetPowerLimit failure (e.g. ipmi.ErrStaleEpoch)
	closed  bool
	pstate  ipmi.PStateInfo
	gating  int
	health  ipmi.Health
}

func newFakeBMC(power float64) *fakeBMC {
	return &fakeBMC{power: power, minCap: 123, maxCap: 180,
		pstate: ipmi.PStateInfo{Index: 0, Count: 16, FreqMHz: 2700}}
}

func (f *fakeBMC) GetDeviceID() (ipmi.DeviceInfo, error) {
	return ipmi.DeviceInfo{DeviceID: 1}, nil
}
func (f *fakeBMC) GetPowerReading() (ipmi.PowerReading, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return ipmi.PowerReading{}, errors.New("unreachable")
	}
	return ipmi.PowerReading{CurrentWatts: f.power, AverageWatts: f.power}, nil
}
func (f *fakeBMC) SetPowerLimit(l ipmi.PowerLimit) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errors.New("unreachable")
	}
	if f.setErr != nil {
		return f.setErr
	}
	f.limit = l
	return nil
}
func (f *fakeBMC) GetPowerLimit() (ipmi.PowerLimit, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.limit, nil
}
func (f *fakeBMC) GetPStateInfo() (ipmi.PStateInfo, error) { return f.pstate, nil }
func (f *fakeBMC) GetGatingLevel() (int, error)            { return f.gating, nil }
func (f *fakeBMC) GetCapabilities() (ipmi.Capabilities, error) {
	return ipmi.Capabilities{MinCapWatts: f.minCap, MaxCapWatts: f.maxCap, Tier: f.capTier}, nil
}
func (f *fakeBMC) GetHealth() (ipmi.Health, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.health, nil
}
func (f *fakeBMC) Close() error { f.closed = true; return nil }

// fleet builds a manager over fakes addressed by name.
func fleet(bmcs map[string]*fakeBMC) *Manager {
	return NewManager(func(addr string) (BMC, error) {
		b, ok := bmcs[addr]
		if !ok {
			return nil, errors.New("no route")
		}
		return b, nil
	})
}

func TestAddRemoveNodes(t *testing.T) {
	bmcs := map[string]*fakeBMC{"a:623": newFakeBMC(150)}
	m := fleet(bmcs)
	if err := m.AddNode("node-a", "a:623"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode("node-a", "a:623"); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := m.AddNode("node-b", "missing:623"); err == nil {
		t.Error("unreachable node accepted")
	}
	ns := m.Nodes()
	if len(ns) != 1 || ns[0].Name != "node-a" || ns[0].MinCapWatts != 123 {
		t.Errorf("Nodes = %+v", ns)
	}
	if err := m.RemoveNode("node-a"); err != nil {
		t.Fatal(err)
	}
	if !bmcs["a:623"].closed {
		t.Error("connection not closed on removal")
	}
	if err := m.RemoveNode("node-a"); err == nil {
		t.Error("double removal accepted")
	}
}

func TestSetNodeCap(t *testing.T) {
	b := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": b})
	m.AddNode("n", "a")
	if err := m.SetNodeCap("n", 140); err != nil {
		t.Fatal(err)
	}
	if !b.limit.Enabled || b.limit.CapWatts != 140 {
		t.Errorf("limit = %+v", b.limit)
	}
	if err := m.SetNodeCap("n", 0); err != nil {
		t.Fatal(err)
	}
	if b.limit.Enabled {
		t.Error("cap 0 did not disable capping")
	}
	if err := m.SetNodeCap("ghost", 140); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestPollAndHistory(t *testing.T) {
	b := newFakeBMC(151)
	m := fleet(map[string]*fakeBMC{"a": b})
	m.AddNode("n", "a")
	m.Poll()
	b.mu.Lock()
	b.power = 149
	b.mu.Unlock()
	m.Poll()
	h, err := m.History("n")
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 || h[0].PowerWatts != 151 || h[1].PowerWatts != 149 {
		t.Errorf("history = %+v", h)
	}
	st := m.Nodes()[0]
	if !st.Reachable || st.Last.PowerWatts != 149 {
		t.Errorf("status = %+v", st)
	}
	// Unreachable node flagged.
	b.mu.Lock()
	b.fail = true
	b.mu.Unlock()
	m.Poll()
	if m.Nodes()[0].Reachable {
		t.Error("unreachable node still marked reachable")
	}
}

func TestHistoryLimit(t *testing.T) {
	b := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": b})
	m.HistoryLimit = 3
	m.AddNode("n", "a")
	for i := 0; i < 10; i++ {
		m.Poll()
	}
	h, _ := m.History("n")
	if len(h) != 3 {
		t.Errorf("history length = %d, want 3", len(h))
	}
}

func TestBackgroundPolling(t *testing.T) {
	b := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": b})
	m.AddNode("n", "a")
	m.StartPolling(5 * time.Millisecond)
	defer m.StopPolling()
	deadline := time.After(2 * time.Second)
	for {
		if h, _ := m.History("n"); len(h) >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("poller produced no samples")
		case <-time.After(5 * time.Millisecond):
		}
	}
	m.StopPolling()
	m.StopPolling() // idempotent
}

func TestWaterfillProportional(t *testing.T) {
	allocs, err := waterfill(300, []demand{
		{name: "a", want: 150, min: 100, max: 180},
		{name: "b", want: 150, min: 100, max: 180},
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs[0].CapWatts != 150 || allocs[1].CapWatts != 150 {
		t.Errorf("equal-demand split = %+v", allocs)
	}
}

func TestWaterfillRespectsDemandAndRedistributes(t *testing.T) {
	// a only wants 120; its slack goes to b.
	allocs, err := waterfill(300, []demand{
		{name: "a", want: 120, min: 100, max: 180},
		{name: "b", want: 200, min: 100, max: 180},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]float64 = map[string]float64{}
	for _, a := range allocs {
		got[a.Name] = a.CapWatts
	}
	if got["a"] < 119.9 || got["a"] > 120.1 {
		t.Errorf("a = %v, want ~120", got["a"])
	}
	if got["b"] < 179.9 { // saturates platform max
		t.Errorf("b = %v, want 180", got["b"])
	}
}

func TestWaterfillInfeasibleBudget(t *testing.T) {
	_, err := waterfill(150, []demand{
		{name: "a", want: 150, min: 100, max: 180},
		{name: "b", want: 150, min: 100, max: 180},
	})
	if err == nil {
		t.Error("infeasible budget accepted")
	}
}

func TestWaterfillEmptyGroup(t *testing.T) {
	if _, err := waterfill(100, nil); err == nil {
		t.Error("empty group accepted")
	}
}

// TestWaterfillInvariants: allocations never exceed the budget, always
// cover each node's minimum, and never exceed its maximum.
func TestWaterfillInvariants(t *testing.T) {
	f := func(wants []uint16, budgetRaw uint32) bool {
		if len(wants) == 0 {
			return true
		}
		if len(wants) > 16 {
			wants = wants[:16]
		}
		ds := make([]demand, len(wants))
		var minSum float64
		for i, w := range wants {
			ds[i] = demand{
				name: string(rune('a' + i)),
				want: 100 + float64(w%200),
				min:  100, max: 250,
			}
			minSum += 100
		}
		budget := minSum + float64(budgetRaw%100000)/100
		allocs, err := waterfill(budget, ds)
		if err != nil {
			return false
		}
		var total float64
		for i, a := range allocs {
			if a.CapWatts < ds[i].min-1e-6 || a.CapWatts > ds[i].max+1e-6 {
				return false
			}
			total += a.CapWatts
		}
		return total <= budget+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyBudgetPushesCaps(t *testing.T) {
	a, b := newFakeBMC(170), newFakeBMC(130)
	m := fleet(map[string]*fakeBMC{"a": a, "b": b})
	m.AddNode("a", "a")
	m.AddNode("b", "b")
	m.Poll()
	allocs, err := m.ApplyBudget(310, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 {
		t.Fatalf("allocs = %+v", allocs)
	}
	if !a.limit.Enabled || !b.limit.Enabled {
		t.Error("caps not pushed")
	}
	// The hungrier node (a at 170 W) gets the larger share.
	if a.limit.CapWatts <= b.limit.CapWatts {
		t.Errorf("allocation ignores demand: a=%v b=%v", a.limit.CapWatts, b.limit.CapWatts)
	}
	if a.limit.CapWatts+b.limit.CapWatts > 310+1e-6 {
		t.Errorf("budget exceeded: %v", a.limit.CapWatts+b.limit.CapWatts)
	}
}

func TestServerHandle(t *testing.T) {
	bmcs := map[string]*fakeBMC{"a": newFakeBMC(150)}
	m := fleet(bmcs)
	s := NewServer(m)

	if r := s.Handle(Request{Op: "add", Name: "n", Addr: "a"}); !r.OK {
		t.Fatalf("add: %+v", r)
	}
	if r := s.Handle(Request{Op: "poll"}); !r.OK || len(r.Nodes) != 1 {
		t.Fatalf("poll: %+v", r)
	}
	if r := s.Handle(Request{Op: "setcap", Name: "n", Cap: 140}); !r.OK {
		t.Fatalf("setcap: %+v", r)
	}
	if r := s.Handle(Request{Op: "setcap"}); r.OK {
		t.Error("setcap without name accepted")
	}
	if r := s.Handle(Request{Op: "nodes"}); !r.OK || r.Nodes[0].CapWatts != 140 {
		t.Fatalf("nodes: %+v", r)
	}
	if r := s.Handle(Request{Op: "budget", Budget: 170, Group: []string{"n"}}); !r.OK || len(r.Allocs) != 1 {
		t.Fatalf("budget: %+v", r)
	}
	if r := s.Handle(Request{Op: "history", Name: "n", Limit: 1}); !r.OK || len(r.History) != 1 {
		t.Fatalf("history: %+v", r)
	}
	if r := s.Handle(Request{Op: "remove", Name: "n"}); !r.OK {
		t.Fatalf("remove: %+v", r)
	}
	if r := s.Handle(Request{Op: "nonsense"}); r.OK {
		t.Error("unknown op accepted")
	}
}

func TestServerOverTCP(t *testing.T) {
	bmcs := map[string]*fakeBMC{"a": newFakeBMC(150)}
	m := fleet(bmcs)
	s := NewServer(m)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if r, err := Call(addr, Request{Op: "add", Name: "n", Addr: "a"}); err != nil || !r.OK {
		t.Fatalf("add over TCP: %+v, %v", r, err)
	}
	r, err := Call(addr, Request{Op: "nodes"})
	if err != nil || !r.OK || len(r.Nodes) != 1 {
		t.Fatalf("nodes over TCP: %+v, %v", r, err)
	}
}

func TestManagerClose(t *testing.T) {
	a, b := newFakeBMC(150), newFakeBMC(140)
	m := fleet(map[string]*fakeBMC{"a": a, "b": b})
	m.AddNode("a", "a")
	m.AddNode("b", "b")
	m.StartPolling(time.Hour)
	m.Close()
	if !a.closed || !b.closed {
		t.Error("Close left connections open")
	}
	if len(m.Nodes()) != 0 {
		t.Error("Close left nodes registered")
	}
}

func TestApplyBudgetUnknownNode(t *testing.T) {
	m := fleet(map[string]*fakeBMC{})
	if _, err := m.ApplyBudget(300, []string{"ghost"}); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestApplyBudgetPushFailure(t *testing.T) {
	a := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": a})
	m.AddNode("a", "a")
	m.Poll()
	a.fail = true
	if _, err := m.ApplyBudget(170, []string{"a"}); err == nil {
		t.Error("push failure not propagated")
	}
}

func TestAllocateBudgetNoHistoryUsesMax(t *testing.T) {
	// Without monitoring history, demand falls back to the platform
	// maximum.
	a := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": a})
	m.AddNode("a", "a")
	allocs, err := m.AllocateBudget(200, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if allocs[0].CapWatts < 170 {
		t.Errorf("no-history allocation = %.1f, want near platform max", allocs[0].CapWatts)
	}
}

func TestWaterfillInvalidRange(t *testing.T) {
	_, err := waterfill(500, []demand{{name: "x", want: 100, min: 200, max: 100}})
	if err == nil {
		t.Error("inverted cap range accepted")
	}
}

func TestHistoryUnknownNode(t *testing.T) {
	m := fleet(map[string]*fakeBMC{})
	if _, err := m.History("ghost"); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestServerHandleErrorOps(t *testing.T) {
	m := fleet(map[string]*fakeBMC{})
	s := NewServer(m)
	if r := s.Handle(Request{Op: "add", Name: "n", Addr: "nowhere"}); r.OK {
		t.Error("add of unreachable node succeeded")
	}
	if r := s.Handle(Request{Op: "remove", Name: "ghost"}); r.OK {
		t.Error("remove of unknown node succeeded")
	}
	if r := s.Handle(Request{Op: "budget", Budget: 10, Group: []string{"ghost"}}); r.OK {
		t.Error("budget over unknown node succeeded")
	}
	if r := s.Handle(Request{Op: "history", Name: "ghost"}); r.OK {
		t.Error("history of unknown node succeeded")
	}
}

func TestCallAgainstClosedServer(t *testing.T) {
	if _, err := Call("127.0.0.1:1", Request{Op: "nodes"}); err == nil {
		t.Error("Call to closed port succeeded")
	}
}

func TestDefaultDialerFailsCleanly(t *testing.T) {
	m := NewManager(nil) // uses DefaultDialer
	if err := m.AddNode("n", "127.0.0.1:1"); err == nil {
		t.Error("AddNode over DefaultDialer to closed port succeeded")
	}
}

func TestAutoBalanceTracksShiftingDemand(t *testing.T) {
	a, b := newFakeBMC(170), newFakeBMC(120)
	m := fleet(map[string]*fakeBMC{"a": a, "b": b})
	m.AddNode("a", "a")
	m.AddNode("b", "b")
	m.Poll()
	m.StartAutoBalance(310, []string{"a", "b"}, 3*time.Millisecond)
	defer m.Close()

	waitFor := func(cond func() bool, what string) {
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	read := func(f *fakeBMC) float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.limit.CapWatts
	}

	// Initially a is hungrier: it should receive the larger cap.
	waitFor(func() bool {
		ca, cb := read(a), read(b)
		return ca > 0 && cb > 0 && ca > cb
	}, "initial demand-weighted split")

	// Demand flips: b heats up, a cools down; the balancer must follow.
	a.mu.Lock()
	a.power = 115
	a.mu.Unlock()
	b.mu.Lock()
	b.power = 175
	b.mu.Unlock()
	waitFor(func() bool { return read(b) > read(a) }, "rebalance after demand flip")

	m.StopAutoBalance()
	m.StopAutoBalance() // idempotent
}
