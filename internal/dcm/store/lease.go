// Lease-based leadership for an HA manager pair. The lease is a small
// JSON file in the shared state dir, written atomically (temp + fsync
// + rename + dir fsync, like the snapshot): whoever holds the
// unexpired lease is the primary, and the epoch — bumped on every
// change of holder or re-acquisition after expiry — is the fencing
// token every cap push carries. File-rename atomicity makes a *torn*
// lease impossible, and the read-modify-write inside Acquire/Release
// is serialized under an exclusive flock on a sidecar lock file, so
// two members racing an expired lease can never both win the same
// epoch: every grant is unique. Epoch fencing at the nodes remains the
// backstop for the failure the lease cannot see — a partitioned
// ex-primary that keeps actuating on a lease it can no longer renew.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// LeaseFileName is the lease's name inside a state dir.
const LeaseFileName = "lease.json"

// Lease is the on-disk leadership record.
type Lease struct {
	Holder string `json:"holder"`
	// Epoch is the fencing token: strictly increasing across every
	// leadership change, never reused.
	Epoch uint64 `json:"epoch"`
	// ExpiresNS is the wall-clock (or injected-clock) nanosecond
	// timestamp past which the lease is up for grabs.
	ExpiresNS int64 `json:"expires_ns"`
}

// Expired reports whether the lease is claimable at time now.
func (l Lease) Expired(now time.Time) bool { return now.UnixNano() >= l.ExpiresNS }

// LeaseFile manages one lease. The Clock is injectable so chaos
// replays of lease expiry are deterministic; nil means time.Now.
type LeaseFile struct {
	Path  string
	Clock func() time.Time
}

// NewLeaseFile manages the lease at path.
func NewLeaseFile(path string) *LeaseFile { return &LeaseFile{Path: path} }

// LeasePath returns the default lease location under a state dir.
func LeasePath(dir string) string { return filepath.Join(dir, LeaseFileName) }

func (lf *LeaseFile) now() time.Time {
	if lf.Clock != nil {
		return lf.Clock()
	}
	return time.Now()
}

// Read loads the current lease. ok is false when no lease has ever
// been written. A corrupt file is an error — renames are atomic, so
// corruption means external damage, and guessing about leadership is
// how split-brain starts.
func (lf *LeaseFile) Read() (Lease, bool, error) {
	b, err := os.ReadFile(lf.Path)
	if os.IsNotExist(err) {
		return Lease{}, false, nil
	}
	if err != nil {
		return Lease{}, false, fmt.Errorf("store: reading lease: %w", err)
	}
	var l Lease
	if err := json.Unmarshal(b, &l); err != nil {
		return Lease{}, false, fmt.Errorf("store: corrupt lease %s: %w", lf.Path, err)
	}
	return l, true, nil
}

// withLock runs fn while holding an exclusive flock on a sidecar lock
// file beside the lease. The lock makes the read-compute-rename
// sequences below atomic across processes (flock conflicts between
// distinct open descriptions, so it also serializes goroutines within
// one), and the kernel drops it when the descriptor closes, so a
// crashed holder never wedges its peer.
func (lf *LeaseFile) withLock(fn func() error) error {
	lock, err := os.OpenFile(lf.Path+".lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: lease lock: %w", err)
	}
	defer lock.Close()
	for {
		err = syscall.Flock(int(lock.Fd()), syscall.LOCK_EX)
		if err != syscall.EINTR {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("store: lease lock: %w", err)
	}
	return fn()
}

// Acquire takes or renews the lease for holder with the given TTL.
// Granted when the lease is free, expired, or already held by holder.
// The epoch is preserved on a live renewal and bumped on every other
// grant — including holder re-acquiring its own *expired* lease,
// because someone else may have held (and fenced at) a higher epoch in
// between. When the lease is held elsewhere, the blocking lease is
// returned with ok false. The whole read-modify-write runs under the
// sidecar flock, so concurrent acquirers serialize: exactly one wins
// an expired lease, and no two grants ever share an epoch.
func (lf *LeaseFile) Acquire(holder string, ttl time.Duration) (Lease, bool, error) {
	if holder == "" {
		return Lease{}, false, fmt.Errorf("store: lease holder must be non-empty")
	}
	var next Lease
	granted := false
	err := lf.withLock(func() error {
		cur, exists, err := lf.Read()
		if err != nil {
			return err
		}
		now := lf.now()
		if exists && cur.Holder != holder && !cur.Expired(now) {
			next = cur // the blocker
			return nil
		}
		next = Lease{Holder: holder, Epoch: 1, ExpiresNS: now.Add(ttl).UnixNano()}
		if exists {
			if cur.Holder == holder && !cur.Expired(now) {
				next.Epoch = cur.Epoch // live renewal
			} else {
				next.Epoch = cur.Epoch + 1 // takeover or expiry re-acquire
			}
		}
		if err := lf.write(next); err != nil {
			return err
		}
		granted = true
		return nil
	})
	if err != nil {
		return Lease{}, false, err
	}
	return next, granted, nil
}

// Release expires holder's lease immediately so a standby can take
// over without waiting out the TTL (graceful shutdown). Releasing a
// lease held by someone else is a no-op.
func (lf *LeaseFile) Release(holder string) error {
	return lf.withLock(func() error {
		cur, exists, err := lf.Read()
		if err != nil || !exists || cur.Holder != holder {
			return err
		}
		cur.ExpiresNS = lf.now().UnixNano()
		return lf.write(cur)
	})
}

// write persists l atomically: temp file, fsync, rename, dir fsync.
func (lf *LeaseFile) write(l Lease) error {
	b, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	dir := filepath.Dir(lf.Path)
	tmp, err := os.CreateTemp(dir, "lease-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: writing lease: %w", err)
	}
	if err := os.Rename(tmpName, lf.Path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}
