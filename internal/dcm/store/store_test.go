package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func addNode(t *testing.T, s *Store, name, addr string) {
	t.Helper()
	if err := s.Apply(Record{Op: OpAddNode, Name: name,
		Node: &NodeRecord{Addr: addr, MinCapWatts: 123, MaxCapWatts: 180}}); err != nil {
		t.Fatal(err)
	}
}

func setCap(t *testing.T, s *Store, name string, watts float64) {
	t.Helper()
	st := s.State()
	n := st.Nodes[name]
	n.HaveCap = true
	n.CapEnabled = watts > 0
	n.CapWatts = watts
	if err := s.Apply(Record{Op: OpSetCap, Name: name, Node: &n}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripWithoutClose(t *testing.T) {
	// No Close = a crash: every Apply is fsync'd, so a reopen must see
	// everything.
	dir := t.TempDir()
	s := mustOpen(t, dir)
	addNode(t, s, "n0", "10.0.0.1:9623")
	addNode(t, s, "n1", "10.0.0.2:9623")
	setCap(t, s, "n0", 140)
	if err := s.Apply(Record{Op: OpBudget,
		Budget: &BudgetRecord{Watts: 300, Group: []string{"n0", "n1"}, Interval: time.Second}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Record{Op: OpRemoveNode, Name: "n1"}); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	st := r.State()
	if len(st.Nodes) != 1 {
		t.Fatalf("nodes = %+v, want just n0", st.Nodes)
	}
	n := st.Nodes["n0"]
	if n.Addr != "10.0.0.1:9623" || !n.HaveCap || !n.CapEnabled || n.CapWatts != 140 {
		t.Errorf("n0 = %+v", n)
	}
	if st.Budget == nil || st.Budget.Watts != 300 || len(st.Budget.Group) != 2 ||
		st.Budget.Interval != time.Second {
		t.Errorf("budget = %+v", st.Budget)
	}
	if r.Replayed() != 5 {
		t.Errorf("replayed %d records, want 5", r.Replayed())
	}
}

func TestRoundTripThroughSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	addNode(t, s, "n0", "a:1")
	setCap(t, s, "n0", 130)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close compacts: journal empty, snapshot holds everything.
	if b, err := os.ReadFile(filepath.Join(dir, journalFile)); err != nil || len(b) != 0 {
		t.Errorf("journal after Close: %d bytes, err %v", len(b), err)
	}
	r := mustOpen(t, dir)
	if n := r.State().Nodes["n0"]; n.CapWatts != 130 || !n.CapEnabled {
		t.Errorf("n0 = %+v", n)
	}
	if r.Replayed() != 0 {
		t.Errorf("replayed %d, want 0 (all in snapshot)", r.Replayed())
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	addNode(t, s, "n0", "a:1")
	setCap(t, s, "n0", 140)
	path := filepath.Join(dir, journalFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last line mid-payload, as a crash mid-append would.
	torn := append(append([]byte(nil), b...), []byte("deadbeef {\"op\":\"setc")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	if n := r.State().Nodes["n0"]; n.CapWatts != 140 {
		t.Errorf("n0 = %+v, want intact prefix", n)
	}
	if r.Replayed() != 2 {
		t.Errorf("replayed %d, want 2", r.Replayed())
	}
	// The tail must be gone from disk so appends restart cleanly.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(b) {
		t.Errorf("journal %d bytes after recovery, want %d", len(after), len(b))
	}
	// And the reopened store keeps working.
	setCap(t, r, "n0", 150)
	rr := mustOpen(t, dir)
	if n := rr.State().Nodes["n0"]; n.CapWatts != 150 {
		t.Errorf("post-recovery n0 = %+v", n)
	}
}

func TestCorruptMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	addNode(t, s, "n0", "a:1")
	setCap(t, s, "n0", 140)
	setCap(t, s, "n0", 150)
	path := filepath.Join(dir, journalFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	// Flip a byte inside the second record's payload.
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x01
	if err := os.WriteFile(path, []byte(lines[0]+string(mid)+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	// Replay keeps only the valid prefix: the add, not either setcap.
	if r.Replayed() != 1 {
		t.Errorf("replayed %d, want 1", r.Replayed())
	}
	if n := r.State().Nodes["n0"]; n.HaveCap {
		t.Errorf("n0 = %+v, want no cap (corrupt suffix dropped)", n)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.SnapshotEvery = 4
	addNode(t, s, "n0", "a:1")
	for i := 0; i < 10; i++ {
		setCap(t, s, "n0", 130+float64(i))
	}
	// 11 applies with a threshold of 4: compaction ran, journal short.
	b, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(b), "\n"); n >= 4 {
		t.Errorf("journal holds %d records after auto-compaction", n)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Errorf("snapshot missing: %v", err)
	}
	r := mustOpen(t, dir)
	if n := r.State().Nodes["n0"]; n.CapWatts != 139 {
		t.Errorf("n0 = %+v, want cap 139", n)
	}
}

func TestUnknownOpIgnored(t *testing.T) {
	st := State{Nodes: map[string]NodeRecord{}}
	st.apply(Record{Op: "future-op", Name: "x"})
	if len(st.Nodes) != 0 {
		t.Error("unknown op mutated state")
	}
}

// TestExhaustiveTornTailSweep crashes the journal at EVERY byte
// offset of a small multi-record journal — mid-checksum, mid-JSON, on
// a newline, at record boundaries — and verifies that recovery at cut
// k restores exactly the records whose trailing newline survived:
// State() equals the pure fold Replay(records[:survivors]), the torn
// file is truncated to a clean prefix, and the reopened store accepts
// new writes.
func TestExhaustiveTornTailSweep(t *testing.T) {
	// Build the canonical op sequence once, capturing the journal
	// bytes it produces.
	master := t.TempDir()
	s := mustOpen(t, master)
	records := []Record{
		{Op: OpAddNode, Name: "n0", Node: &NodeRecord{Addr: "a:1", MinCapWatts: 123, MaxCapWatts: 180}},
		{Op: OpAddNode, Name: "n1", Node: &NodeRecord{Addr: "b:1", MinCapWatts: 123, MaxCapWatts: 180}},
		{Op: OpSetCap, Name: "n0", Node: &NodeRecord{Addr: "a:1", MinCapWatts: 123, MaxCapWatts: 180, HaveCap: true, CapEnabled: true, CapWatts: 141.37}},
		{Op: OpBudget, Budget: &BudgetRecord{Watts: 300, Group: []string{"n0", "n1"}, Interval: time.Second}},
		{Op: OpSetCap, Name: "n1", Node: &NodeRecord{Addr: "b:1", MinCapWatts: 123, MaxCapWatts: 180, HaveCap: true, CapEnabled: true, CapWatts: 150}},
		{Op: OpRemoveNode, Name: "n0"},
	}
	for _, r := range records {
		if err := s.Apply(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Crash(); err != nil { // no compaction: keep the journal
		t.Fatal(err)
	}
	journal, err := os.ReadFile(JournalPath(master))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(journal), "\n"); got != len(records) {
		t.Fatalf("journal holds %d lines, want %d", got, len(records))
	}

	for cut := 0; cut <= len(journal); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(JournalPath(dir), journal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r := mustOpen(t, dir)

		survivors := strings.Count(string(journal[:cut]), "\n")
		if got := r.Replayed(); got != survivors {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, got, survivors)
		}
		want := Replay(records[:survivors])
		got := r.State()
		if len(got.Nodes) != len(want.Nodes) {
			t.Fatalf("cut %d: recovered %d nodes, want %d", cut, len(got.Nodes), len(want.Nodes))
		}
		for name, w := range want.Nodes {
			if g, ok := got.Nodes[name]; !ok || g != w {
				t.Fatalf("cut %d: node %q = %+v, want %+v", cut, name, g, w)
			}
		}
		if (got.Budget == nil) != (want.Budget == nil) {
			t.Fatalf("cut %d: budget presence mismatch", cut)
		}
		if want.Budget != nil && got.Budget.Watts != want.Budget.Watts {
			t.Fatalf("cut %d: budget = %+v, want %+v", cut, got.Budget, want.Budget)
		}

		// The torn tail must be gone from disk...
		onDisk, err := os.ReadFile(JournalPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if want := journal[:len(fullLines(journal[:cut]))]; string(onDisk) != string(want) {
			t.Fatalf("cut %d: journal not truncated to clean prefix (%d bytes on disk)", cut, len(onDisk))
		}
		// ...and the store must still accept writes.
		if err := r.Apply(Record{Op: OpAddNode, Name: "post", Node: &NodeRecord{Addr: "c:1"}}); err != nil {
			t.Fatalf("cut %d: store unusable after recovery: %v", cut, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// fullLines returns the prefix of b up to and including its last
// newline (the bytes replay keeps).
func fullLines(b []byte) []byte {
	i := strings.LastIndexByte(string(b), '\n')
	if i < 0 {
		return nil
	}
	return b[:i+1]
}

// TestStoreCrashIdempotent: Crash after Crash (or Close) is a no-op.
func TestStoreCrashIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	addNode(t, s, "n0", "a:1")
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(SnapshotPath(dir)); !os.IsNotExist(err) {
		t.Error("Crash (or Close-after-Crash) wrote a snapshot")
	}
}
