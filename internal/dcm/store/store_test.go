package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func addNode(t *testing.T, s *Store, name, addr string) {
	t.Helper()
	if err := s.Apply(Record{Op: OpAddNode, Name: name,
		Node: &NodeRecord{Addr: addr, MinCapWatts: 123, MaxCapWatts: 180}}); err != nil {
		t.Fatal(err)
	}
}

func setCap(t *testing.T, s *Store, name string, watts float64) {
	t.Helper()
	st := s.State()
	n := st.Nodes[name]
	n.HaveCap = true
	n.CapEnabled = watts > 0
	n.CapWatts = watts
	if err := s.Apply(Record{Op: OpSetCap, Name: name, Node: &n}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripWithoutClose(t *testing.T) {
	// No Close = a crash: every Apply is fsync'd, so a reopen must see
	// everything.
	dir := t.TempDir()
	s := mustOpen(t, dir)
	addNode(t, s, "n0", "10.0.0.1:9623")
	addNode(t, s, "n1", "10.0.0.2:9623")
	setCap(t, s, "n0", 140)
	if err := s.Apply(Record{Op: OpBudget,
		Budget: &BudgetRecord{Watts: 300, Group: []string{"n0", "n1"}, Interval: time.Second}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Record{Op: OpRemoveNode, Name: "n1"}); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	st := r.State()
	if len(st.Nodes) != 1 {
		t.Fatalf("nodes = %+v, want just n0", st.Nodes)
	}
	n := st.Nodes["n0"]
	if n.Addr != "10.0.0.1:9623" || !n.HaveCap || !n.CapEnabled || n.CapWatts != 140 {
		t.Errorf("n0 = %+v", n)
	}
	if st.Budget == nil || st.Budget.Watts != 300 || len(st.Budget.Group) != 2 ||
		st.Budget.Interval != time.Second {
		t.Errorf("budget = %+v", st.Budget)
	}
	if r.Replayed() != 5 {
		t.Errorf("replayed %d records, want 5", r.Replayed())
	}
}

func TestRoundTripThroughSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	addNode(t, s, "n0", "a:1")
	setCap(t, s, "n0", 130)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close compacts: journal empty, snapshot holds everything.
	if b, err := os.ReadFile(filepath.Join(dir, journalFile)); err != nil || len(b) != 0 {
		t.Errorf("journal after Close: %d bytes, err %v", len(b), err)
	}
	r := mustOpen(t, dir)
	if n := r.State().Nodes["n0"]; n.CapWatts != 130 || !n.CapEnabled {
		t.Errorf("n0 = %+v", n)
	}
	if r.Replayed() != 0 {
		t.Errorf("replayed %d, want 0 (all in snapshot)", r.Replayed())
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	addNode(t, s, "n0", "a:1")
	setCap(t, s, "n0", 140)
	path := filepath.Join(dir, journalFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last line mid-payload, as a crash mid-append would.
	torn := append(append([]byte(nil), b...), []byte("deadbeef {\"op\":\"setc")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	if n := r.State().Nodes["n0"]; n.CapWatts != 140 {
		t.Errorf("n0 = %+v, want intact prefix", n)
	}
	if r.Replayed() != 2 {
		t.Errorf("replayed %d, want 2", r.Replayed())
	}
	// The tail must be gone from disk so appends restart cleanly.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(b) {
		t.Errorf("journal %d bytes after recovery, want %d", len(after), len(b))
	}
	// And the reopened store keeps working.
	setCap(t, r, "n0", 150)
	rr := mustOpen(t, dir)
	if n := rr.State().Nodes["n0"]; n.CapWatts != 150 {
		t.Errorf("post-recovery n0 = %+v", n)
	}
}

func TestCorruptMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	addNode(t, s, "n0", "a:1")
	setCap(t, s, "n0", 140)
	setCap(t, s, "n0", 150)
	path := filepath.Join(dir, journalFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	// Flip a byte inside the second record's payload.
	mid := []byte(lines[1])
	mid[len(mid)/2] ^= 0x01
	if err := os.WriteFile(path, []byte(lines[0]+string(mid)+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir)
	// Replay keeps only the valid prefix: the add, not either setcap.
	if r.Replayed() != 1 {
		t.Errorf("replayed %d, want 1", r.Replayed())
	}
	if n := r.State().Nodes["n0"]; n.HaveCap {
		t.Errorf("n0 = %+v, want no cap (corrupt suffix dropped)", n)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.SnapshotEvery = 4
	addNode(t, s, "n0", "a:1")
	for i := 0; i < 10; i++ {
		setCap(t, s, "n0", 130+float64(i))
	}
	// 11 applies with a threshold of 4: compaction ran, journal short.
	b, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(b), "\n"); n >= 4 {
		t.Errorf("journal holds %d records after auto-compaction", n)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Errorf("snapshot missing: %v", err)
	}
	r := mustOpen(t, dir)
	if n := r.State().Nodes["n0"]; n.CapWatts != 139 {
		t.Errorf("n0 = %+v, want cap 139", n)
	}
}

func TestUnknownOpIgnored(t *testing.T) {
	st := State{Nodes: map[string]NodeRecord{}}
	st.apply(Record{Op: "future-op", Name: "x"})
	if len(st.Nodes) != 0 {
		t.Error("unknown op mutated state")
	}
}
