package store

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"
)

func nodeRec(addr string, cap float64) *NodeRecord {
	return &NodeRecord{Addr: addr, HaveCap: cap > 0, CapEnabled: cap > 0, CapWatts: cap,
		MinCapWatts: 120, MaxCapWatts: 180}
}

func addRec(name string, cap float64) Record {
	return Record{Op: OpAddNode, Name: name, Node: nodeRec(name+":623", cap)}
}

// pump drains feed into rep until the feed is idle, returning how many
// frames flowed. Acks are returned to the feed as a transport would.
func pump(t *testing.T, feed *Feed, rep *Replica) int {
	t.Helper()
	total := 0
	for {
		frames, err := feed.Pending(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) == 0 {
			return total
		}
		for _, fr := range frames {
			ack, err := rep.Handle(fr)
			if err != nil {
				t.Fatalf("replica handle %+v: %v", fr, err)
			}
			if ack != nil {
				feed.Ack(*ack)
			}
			total++
		}
	}
}

// TestReplFrameRoundTrip: every frame kind survives the crc32 line
// framing, and corruption is rejected.
func TestReplFrameRoundTrip(t *testing.T) {
	st := State{Nodes: map[string]NodeRecord{"n0": *nodeRec("n0:623", 140)}}
	rec := addRec("n1", 150)
	frames := []ReplFrame{
		{Kind: ReplHello, Gen: 7, Seq: 42},
		{Kind: ReplSnap, Gen: 7, Seq: 42, State: &st},
		{Kind: ReplRec, Gen: 7, Seq: 43, Rec: &rec},
		{Kind: ReplAck, Seq: 43},
	}
	for _, f := range frames {
		b, err := EncodeReplFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if b[len(b)-1] != '\n' {
			t.Fatalf("frame not newline-terminated: %q", b)
		}
		got, ok := DecodeReplFrame(string(b))
		if !ok {
			t.Fatalf("decode failed for %q", b)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("round trip: got %+v want %+v", got, f)
		}
		// One flipped byte must fail the checksum.
		bad := append([]byte(nil), b...)
		bad[2] ^= 0x10
		if _, ok := DecodeReplFrame(string(bad)); ok {
			t.Error("corrupt frame accepted")
		}
	}
	if _, ok := DecodeReplFrame(`00000000 {"kind":"bogus"}`); ok {
		t.Error("unknown kind accepted")
	}
}

// TestReplFirstContactSnapshots: a gen-0 hello (fresh standby) gets a
// full snapshot, then records stream incrementally.
func TestReplFirstContactSnapshots(t *testing.T) {
	pdir, sdir := t.TempDir(), t.TempDir()
	pri, err := Open(pdir)
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	pri.SetGen(9)
	sby, err := Open(sdir)
	if err != nil {
		t.Fatal(err)
	}
	defer sby.Close()

	if err := pri.Apply(addRec("n0", 140)); err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(sby)
	feed := pri.NewFeed(rep.Hello())
	pump(t, feed, rep)
	if rep.Gen() != 9 || rep.Cursor() != 1 {
		t.Fatalf("replica at gen %d cursor %d, want 9/1", rep.Gen(), rep.Cursor())
	}
	// Incremental records flow without another snapshot.
	if err := pri.Apply(addRec("n1", 150)); err != nil {
		t.Fatal(err)
	}
	if err := pri.Apply(Record{Op: OpSetCap, Name: "n0", Node: nodeRec("n0:623", 130)}); err != nil {
		t.Fatal(err)
	}
	pump(t, feed, rep)
	if !reflect.DeepEqual(sby.State(), pri.State()) {
		t.Fatalf("standby diverged:\n%+v\n%+v", sby.State(), pri.State())
	}
	if feed.Lag() != 0 {
		t.Errorf("lag = %d after full pump", feed.Lag())
	}
}

// TestReplResumeFromCursor: a reconnect with a matching gen and an
// in-ring cursor streams only the missing records — no snapshot.
func TestReplResumeFromCursor(t *testing.T) {
	pri, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	pri.SetGen(3)
	sby, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sby.Close()

	rep := NewReplica(sby)
	feed := pri.NewFeed(rep.Hello())
	pump(t, feed, rep) // initial snapshot (empty)

	for i := 0; i < 5; i++ {
		if err := pri.Apply(addRec(fmt.Sprintf("n%d", i), 140)); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, feed, rep)

	// "Partition": drop the session, apply more records, reconnect.
	for i := 5; i < 9; i++ {
		if err := pri.Apply(addRec(fmt.Sprintf("n%d", i), 140)); err != nil {
			t.Fatal(err)
		}
	}
	feed2 := pri.NewFeed(rep.Hello())
	frames, err := feed2.Pending(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frames {
		if fr.Kind == ReplSnap {
			t.Fatalf("resume degraded to snapshot: %+v", fr)
		}
		if ack, err := rep.Handle(fr); err != nil {
			t.Fatal(err)
		} else if ack != nil {
			feed2.Ack(*ack)
		}
	}
	if !reflect.DeepEqual(sby.State(), pri.State()) {
		t.Fatal("standby diverged after resume")
	}
	// Duplicate delivery (understated cursor) is dropped idempotently.
	dup := ReplFrame{Kind: ReplRec, Gen: 3, Seq: rep.Cursor(), Rec: &Record{Op: OpAddNode, Name: "n0", Node: nodeRec("x", 1)}}
	if ack, err := rep.Handle(dup); err != nil || ack == nil || ack.Seq != rep.Cursor() {
		t.Fatalf("duplicate handle = %+v, %v", ack, err)
	}
	if sby.State().Nodes["n0"].Addr == "x" {
		t.Error("duplicate record was re-applied")
	}
}

// TestReplGenChangeForcesResync: a restarted primary (new gen) must
// answer a stale-gen hello with a snapshot, and a mid-session gen
// mismatch is a session error.
func TestReplGenChangeForcesResync(t *testing.T) {
	pri, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	pri.SetGen(5)
	sby, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sby.Close()
	rep := NewReplicaAt(sby, 4, 17) // tracked the previous incarnation
	feed := pri.NewFeed(rep.Hello())
	frames, err := feed.Pending(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].Kind != ReplSnap {
		t.Fatalf("stale-gen hello got %+v, want one snapshot", frames)
	}
	if _, err := rep.Handle(frames[0]); err != nil {
		t.Fatal(err)
	}
	if rep.Gen() != 5 {
		t.Fatalf("replica gen = %d, want 5", rep.Gen())
	}
	if _, err := rep.Handle(ReplFrame{Kind: ReplRec, Gen: 6, Seq: rep.Cursor() + 1, Rec: &Record{}}); err == nil {
		t.Error("mid-session gen change accepted")
	}
	if _, err := rep.Handle(ReplFrame{Kind: ReplRec, Gen: 5, Seq: rep.Cursor() + 7, Rec: &Record{}}); err == nil {
		t.Error("sequence gap accepted")
	}
}

// TestReplEvictedCursorDegradesToSnapshot: a cursor that fell out of
// the retained ring cannot resume; the session restarts from a
// snapshot instead of serving a gapped stream.
func TestReplEvictedCursorDegradesToSnapshot(t *testing.T) {
	pri, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	pri.SetGen(2)
	pri.SnapshotEvery = 1 << 30 // isolate ring behaviour from compaction
	for i := 0; i < ReplRetain+50; i++ {
		if err := pri.Apply(Record{Op: OpSetCap, Name: "n0", Node: nodeRec("n0:623", float64(i%60)+120)}); err != nil {
			t.Fatal(err)
		}
	}
	sby, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sby.Close()
	rep := NewReplicaAt(sby, 2, 10) // cursor long evicted
	feed := pri.NewFeed(rep.Hello())
	frames, err := feed.Pending(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].Kind != ReplSnap {
		t.Fatalf("evicted cursor got %+v, want snapshot", frames)
	}
	if _, err := rep.Handle(frames[0]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sby.State(), pri.State()) {
		t.Fatal("standby diverged after eviction resync")
	}
}

// TestReplicatedJournalSurvivesTornTail: the standby's replicated
// journal obeys the same torn-tail recovery rules as a primary's own
// crash, and the replica can resume from the post-recovery cursor,
// re-pulling exactly the torn-off records.
func TestReplicatedJournalSurvivesTornTail(t *testing.T) {
	pri, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	pri.SetGen(8)
	sdir := t.TempDir()
	sby, err := Open(sdir)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplica(sby)
	feed := pri.NewFeed(rep.Hello())
	pump(t, feed, rep) // empty snapshot baseline
	cursorAtSnap := rep.Cursor()

	for i := 0; i < 6; i++ {
		if err := pri.Apply(addRec(fmt.Sprintf("n%d", i), 140)); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, feed, rep)

	// Standby crashes; its journal loses a torn tail.
	if err := sby.Crash(); err != nil {
		t.Fatal(err)
	}
	jpath := JournalPath(sdir)
	b, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(b) - len(b)/3 // mid-record tear
	if err := os.Truncate(jpath, int64(cut)); err != nil {
		t.Fatal(err)
	}

	sby2, err := Open(sdir)
	if err != nil {
		t.Fatal(err)
	}
	defer sby2.Close()
	if sby2.Replayed() >= 6 {
		t.Fatalf("tear lost nothing (replayed %d); test needs a real cut", sby2.Replayed())
	}
	// Resume from the surviving prefix: snapshot cursor + replayed.
	rep2 := NewReplicaAt(sby2, 8, cursorAtSnap+uint64(sby2.Replayed()))
	feed2 := pri.NewFeed(rep2.Hello())
	n := pump(t, feed2, rep2)
	if n == 0 {
		t.Fatal("resume after tear pulled nothing")
	}
	if !reflect.DeepEqual(sby2.State(), pri.State()) {
		t.Fatalf("standby diverged after torn-tail resume:\n%+v\n%+v", sby2.State(), pri.State())
	}
}

// TestSetGenForEpochUniqueAcrossIncarnations: reopening a state dir at
// the same lease epoch — a primary crash-restarting inside its own
// TTL, whose live renewal preserves the epoch — must still yield a
// fresh replication generation, or a standby's resume claim from the
// previous incarnation would splice two journals.
func TestSetGenForEpochUniqueAcrossIncarnations(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.SetGenForEpoch(7)
	g1 := s1.Gen()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.SetGenForEpoch(7)
	g2 := s2.Gen()
	if g1 == 0 || g2 == 0 {
		t.Fatalf("zero generation stamped: %d, %d", g1, g2)
	}
	if g1 == g2 {
		t.Fatalf("generation %d reused across store incarnations at the same epoch", g1)
	}
	if g1>>genIncarnationBits != 7 || g2>>genIncarnationBits != 7 {
		t.Errorf("epoch not embedded: %d, %d", g1>>genIncarnationBits, g2>>genIncarnationBits)
	}
}

// TestReplRestartedPrimarySameEpochForcesSnapshot reproduces the
// reviewed divergence: the primary crashes and restarts within its
// lease TTL (same epoch, record sequence back to 0) and applies new
// records of its own; a standby that replicated the first incarnation
// reconnects only after the new incarnation's sequence has passed its
// cursor. The resume claim must degrade to a full snapshot — granting
// it would splice new-incarnation records onto old-incarnation state.
func TestReplRestartedPrimarySameEpochForcesSnapshot(t *testing.T) {
	pdir := t.TempDir()
	pri, err := Open(pdir)
	if err != nil {
		t.Fatal(err)
	}
	pri.SetGenForEpoch(1)
	if err := pri.Apply(addRec("n0", 140)); err != nil {
		t.Fatal(err)
	}
	if err := pri.Apply(addRec("n1", 150)); err != nil {
		t.Fatal(err)
	}
	sby, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sby.Close()
	rep := NewReplica(sby)
	pump(t, pri.NewFeed(rep.Hello()), rep)
	cursor := rep.Cursor()

	// Crash-restart: same dir, same epoch (live lease renewal), fresh
	// sequence numbering. The new incarnation journals until its seq
	// reaches the standby's cursor.
	if err := pri.Crash(); err != nil {
		t.Fatal(err)
	}
	pri2, err := Open(pdir)
	if err != nil {
		t.Fatal(err)
	}
	defer pri2.Close()
	pri2.SetGenForEpoch(1)
	for i := uint64(0); i < cursor; i++ {
		if err := pri2.Apply(addRec(fmt.Sprintf("x%d", i), 160)); err != nil {
			t.Fatal(err)
		}
	}

	feed := pri2.NewFeed(rep.Hello())
	frames, err := feed.Pending(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 || frames[0].Kind != ReplSnap {
		t.Fatalf("restarted primary honoured a cross-incarnation resume claim: %+v", frames)
	}
	for _, fr := range frames {
		ack, err := rep.Handle(fr)
		if err != nil {
			t.Fatal(err)
		}
		if ack != nil {
			feed.Ack(*ack)
		}
	}
	pump(t, feed, rep)
	if !reflect.DeepEqual(sby.State(), pri2.State()) {
		t.Fatalf("standby diverged after restart resync:\n%+v\n%+v", sby.State(), pri2.State())
	}
}

// TestRecoverReplicaResumesAfterRestart: a standby process restart
// recovers its persisted {gen, cursor} resume point, reconnects with a
// claim the primary honours (records, no snapshot), and — crucially —
// carries a non-zero generation, so it stays eligible to take the
// lease even when the primary never comes back. A promotion clears the
// sidecar.
func TestRecoverReplicaResumesAfterRestart(t *testing.T) {
	pri, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	pri.SetGenForEpoch(1)
	if err := pri.Apply(addRec("n0", 140)); err != nil {
		t.Fatal(err)
	}
	if err := pri.Apply(addRec("n1", 150)); err != nil {
		t.Fatal(err)
	}
	sdir := t.TempDir()
	sby, err := Open(sdir)
	if err != nil {
		t.Fatal(err)
	}
	rep := RecoverReplica(sby, sdir)
	if rep.Gen() != 0 || rep.Cursor() != 0 {
		t.Fatalf("fresh dir recovered a claim: gen %d cursor %d", rep.Gen(), rep.Cursor())
	}
	pump(t, pri.NewFeed(rep.Hello()), rep)
	gen, cursor := rep.Gen(), rep.Cursor()
	if gen == 0 || cursor == 0 {
		t.Fatalf("replica did not sync: gen %d cursor %d", gen, cursor)
	}

	// The standby process dies without compaction and restarts.
	if err := sby.Crash(); err != nil {
		t.Fatal(err)
	}
	sby2, err := Open(sdir)
	if err != nil {
		t.Fatal(err)
	}
	defer sby2.Close()
	rep2 := RecoverReplica(sby2, sdir)
	if rep2.Gen() != gen || rep2.Cursor() != cursor {
		t.Fatalf("recovered claim gen %d cursor %d, want %d/%d", rep2.Gen(), rep2.Cursor(), gen, cursor)
	}

	// Records written while the standby was down stream as a resume —
	// any snapshot frame means the persisted claim was not honoured.
	if err := pri.Apply(addRec("n2", 160)); err != nil {
		t.Fatal(err)
	}
	feed := pri.NewFeed(rep2.Hello())
	for {
		frames, err := feed.Pending(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) == 0 {
			break
		}
		for _, fr := range frames {
			if fr.Kind == ReplSnap {
				t.Fatalf("full resync despite recovered resume point: %+v", fr)
			}
			if _, err := rep2.Handle(fr); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !reflect.DeepEqual(sby2.State(), pri.State()) {
		t.Fatalf("standby diverged after restart resume:\n%+v\n%+v", sby2.State(), pri.State())
	}

	// Promotion drops the claim: the next standby lifetime of this dir
	// must start from scratch, not resume over its own primary-era log.
	if err := ClearReplicaMeta(sdir); err != nil {
		t.Fatal(err)
	}
	if r := RecoverReplica(sby2, sdir); r.Gen() != 0 || r.Cursor() != 0 {
		t.Errorf("cleared resume point still recovered: gen %d cursor %d", r.Gen(), r.Cursor())
	}
}

// TestReplOverTCP: the production transport end-to-end — snapshot,
// incremental stream, primary restart with a new gen forcing resync,
// client redial resuming from its cursor.
func TestReplOverTCP(t *testing.T) {
	pdir := t.TempDir()
	pri, err := Open(pdir)
	if err != nil {
		t.Fatal(err)
	}
	pri.SetGen(1)
	srv := NewReplServer(pri)
	srv.PollEvery = 5 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	sby, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sby.Close()
	rep := NewReplica(sby)
	rc := NewReplClient(addr, rep)
	rc.RedialBase = 10 * time.Millisecond
	rc.Start()
	defer rc.Stop()

	for i := 0; i < 4; i++ {
		if err := pri.Apply(addRec(fmt.Sprintf("n%d", i), 140)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "initial replication", func() bool {
		return rep.Gen() == 1 && reflect.DeepEqual(sby.State(), pri.State())
	})

	// Primary "restarts": same dir, new incarnation, more writes. The
	// client must notice the dropped session, redial, and resync.
	srv.Close()
	if err := pri.Close(); err != nil {
		t.Fatal(err)
	}
	pri2, err := Open(pdir)
	if err != nil {
		t.Fatal(err)
	}
	defer pri2.Close()
	pri2.SetGen(2)
	if err := pri2.Apply(addRec("n9", 155)); err != nil {
		t.Fatal(err)
	}
	srv2 := NewReplServer(pri2)
	srv2.PollEvery = 5 * time.Millisecond
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	defer srv2.Close()
	waitFor(t, "resync after primary restart", func() bool {
		return rep.Gen() == 2 && reflect.DeepEqual(sby.State(), pri2.State())
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// FuzzReplicationFrame: the replication codec must round-trip every
// frame it encodes and never panic (or mis-accept) arbitrary input.
func FuzzReplicationFrame(f *testing.F) {
	seed := []ReplFrame{
		{Kind: ReplHello, Gen: 1, Seq: 2},
		{Kind: ReplAck, Seq: 99},
	}
	for _, fr := range seed {
		b, _ := EncodeReplFrame(fr)
		f.Add(b)
	}
	rec := addRec("n0", 140)
	b, _ := EncodeReplFrame(ReplFrame{Kind: ReplRec, Gen: 3, Seq: 7, Rec: &rec})
	f.Add(b)
	f.Add([]byte("00000000 {}\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, ok := DecodeReplFrame(string(data))
		if !ok {
			return
		}
		// Anything the decoder accepts must re-encode and decode to the
		// same frame: decode∘encode is the identity on valid frames.
		enc, err := EncodeReplFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame fails to encode: %+v: %v", fr, err)
		}
		fr2, ok := DecodeReplFrame(string(enc))
		if !ok {
			t.Fatalf("re-encoded frame rejected: %q", enc)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("re-encode changed the frame:\n%+v\n%+v", fr, fr2)
		}
		if !bytes.HasSuffix(enc, []byte("\n")) {
			t.Fatal("encoded frame not newline-terminated")
		}
	})
}
