// Package store persists the DCM manager's desired state — the node
// registry, per-node capping policies, and the active group budget —
// across crashes. Real DCM keeps its policies in a database for the
// same reason: the manager is the source of truth for operator intent,
// and a restart that forgets every cap leaves the fleet uncapped (or a
// rebooted BMC uncapped forever, since polling alone never re-pushes).
//
// The design is the classic snapshot-plus-journal pair:
//
//   - snapshot.json holds a full State, written atomically (temp file
//     in the same directory, fsync, rename, directory fsync).
//   - journal.log is append-only; each line is a crc32-prefixed JSON
//     record, fsync'd per append. Replay tolerates a torn or corrupt
//     tail — the signature of a crash mid-append — by truncating the
//     journal at the first bad line and keeping everything before it.
//
// Apply mutates the in-memory State and journals the mutation; once
// the journal grows past SnapshotEvery records it is folded into a
// fresh snapshot and truncated.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"nodecap/internal/telemetry"
)

const (
	snapshotFile    = "snapshot.json"
	journalFile     = "journal.log"
	incarnationFile = "incarnation"

	// DefaultSnapshotEvery is the journal length (in records) that
	// triggers automatic compaction.
	DefaultSnapshotEvery = 256
)

// NodeRecord is the durable desired state for one managed node.
type NodeRecord struct {
	Addr        string  `json:"addr"`
	MinCapWatts float64 `json:"min_cap_watts,omitempty"`
	MaxCapWatts float64 `json:"max_cap_watts,omitempty"`
	// HaveCap distinguishes "no policy ever set" from "cap disabled":
	// both have CapEnabled false, but only the latter is re-pushed.
	HaveCap    bool    `json:"have_cap,omitempty"`
	CapEnabled bool    `json:"cap_enabled,omitempty"`
	CapWatts   float64 `json:"cap_watts,omitempty"`
}

// BudgetRecord is the durable auto-balance configuration.
type BudgetRecord struct {
	Watts    float64       `json:"watts"`
	Group    []string      `json:"group"`
	Interval time.Duration `json:"interval,omitempty"`
}

// State is the full durable manager state.
type State struct {
	Nodes  map[string]NodeRecord `json:"nodes"`
	Budget *BudgetRecord         `json:"budget,omitempty"`
}

func (s *State) clone() State {
	out := State{Nodes: make(map[string]NodeRecord, len(s.Nodes))}
	for k, v := range s.Nodes {
		out.Nodes[k] = v
	}
	if s.Budget != nil {
		b := *s.Budget
		b.Group = append([]string(nil), s.Budget.Group...)
		out.Budget = &b
	}
	return out
}

// Record ops.
const (
	OpAddNode    = "add"
	OpRemoveNode = "remove"
	OpSetCap     = "setcap"
	OpBudget     = "budget"
)

// Record is one journaled mutation.
type Record struct {
	Op   string `json:"op"`
	Name string `json:"name,omitempty"`
	// Node carries the full record for OpAddNode and OpSetCap.
	Node *NodeRecord `json:"node,omitempty"`
	// Budget carries the configuration for OpBudget; nil clears it.
	Budget *BudgetRecord `json:"budget,omitempty"`
}

// apply folds one record into s. Unknown ops are ignored so an old
// binary can replay a newer journal's prefix.
func (s *State) apply(r Record) {
	switch r.Op {
	case OpAddNode, OpSetCap:
		if r.Name == "" || r.Node == nil {
			return
		}
		s.Nodes[r.Name] = *r.Node
	case OpRemoveNode:
		delete(s.Nodes, r.Name)
	case OpBudget:
		s.Budget = r.Budget
	}
}

// Store is a crash-safe State holder. Safe for concurrent use.
type Store struct {
	// SnapshotEvery is the journal length that triggers automatic
	// compaction on Apply; ≤ 0 means DefaultSnapshotEvery.
	SnapshotEvery int

	mu       sync.Mutex
	dir      string
	state    State
	journal  *os.File
	pending  int // records in the journal since the last snapshot
	closed   bool
	nosync   bool // SetSync(false): skip the per-record fsync
	replayed int  // journal records recovered by Open (tests)
	// inc is this open's incarnation: a per-dir counter durably bumped
	// by every Open, so no two lifetimes of the same state dir share a
	// value. SetGenForEpoch folds it into the replication generation.
	inc uint64

	// Replication source state (see repl.go): gen identifies this
	// store incarnation, seq counts records applied in it, and recent
	// retains the tail of applied records so a reconnecting standby can
	// resume from its cursor instead of taking a full snapshot.
	gen         uint64
	seq         uint64
	recent      []Record // records (recentFirst, seq], oldest first
	recentFirst uint64

	// Telemetry sinks (SetTelemetry); nil-safe when unwired.
	appends     *telemetry.Counter
	compactions *telemetry.Counter
	trace       *telemetry.Trace
}

// SetTelemetry wires journal-append and compaction metrics plus the
// decision trace into the store. Either argument may be nil.
func (s *Store) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Trace) {
	s.mu.Lock()
	s.appends = reg.Counter("store_journal_appends_total")
	s.compactions = reg.Counter("store_compactions_total")
	s.trace = tr
	s.mu.Unlock()
}

// Open loads (or initialises) the store rooted at dir, creating the
// directory if needed. A torn journal tail is truncated; everything
// before it is recovered.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st := State{Nodes: make(map[string]NodeRecord)}
	if b, err := os.ReadFile(filepath.Join(dir, snapshotFile)); err == nil {
		if err := json.Unmarshal(b, &st); err != nil {
			return nil, fmt.Errorf("store: corrupt snapshot %s: %w",
				filepath.Join(dir, snapshotFile), err)
		}
		if st.Nodes == nil {
			st.Nodes = make(map[string]NodeRecord)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}

	inc, err := bumpIncarnation(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, state: st, inc: inc}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	j, err := os.OpenFile(filepath.Join(dir, journalFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.journal = j
	return s, nil
}

// bumpIncarnation durably increments dir's open counter and returns
// the new value. Written with the snapshot's atomic-rename discipline
// before the store is usable, so a crash can lose a bump (the next
// Open redoes it) but can never roll the counter back past a value a
// previous lifetime already returned.
func bumpIncarnation(dir string) (uint64, error) {
	path := filepath.Join(dir, incarnationFile)
	var n uint64
	if b, err := os.ReadFile(path); err == nil {
		if _, perr := fmt.Sscanf(strings.TrimSpace(string(b)), "%d", &n); perr != nil {
			// Renames are atomic, so an unparseable counter is external
			// damage; reusing an incarnation risks splicing replicated
			// logs, so refuse rather than guess.
			return 0, fmt.Errorf("store: corrupt incarnation file %s: %q", path, b)
		}
	} else if !os.IsNotExist(err) {
		return 0, fmt.Errorf("store: %w", err)
	}
	n++
	tmp, err := os.CreateTemp(dir, "incarnation-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := fmt.Fprintf(tmp, "%d\n", n); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: writing incarnation: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return n, nil
}

// Incarnation reports this open's durable per-dir counter (see
// bumpIncarnation); zero only for a Store built without Open.
func (s *Store) Incarnation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc
}

// replayJournal folds journal records into s.state, truncating the
// file at the first torn or corrupt line. Only newline-terminated
// lines are replayed: a final line missing its '\n' is discarded even
// when its checksum happens to verify, because the next append would
// concatenate onto it and corrupt both records' framing.
func (s *Store) replayJournal() error {
	path := filepath.Join(s.dir, journalFile)
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	var good int64 // byte offset of the end of the last valid line
	rest := b
	for {
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			break // unterminated tail (torn append)
		}
		r, ok := decodeLine(string(rest[:i]))
		if !ok {
			break // bad checksum or invalid JSON
		}
		s.state.apply(r)
		s.pending++
		s.replayed++
		good += int64(i) + 1
		rest = rest[i+1:]
	}
	// Anything past `good` is discarded.
	if int64(len(b)) > good {
		if err := os.Truncate(path, good); err != nil {
			return fmt.Errorf("store: truncating torn journal: %w", err)
		}
	}
	return nil
}

// frameLine wraps a JSON payload as "crc32hex payloadJSON\n" — the
// framing shared by journal records and replication frames.
func frameLine(payload []byte) []byte {
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload))
}

// unframeLine verifies a framed line's checksum and returns its JSON
// payload (without the trailing newline).
func unframeLine(line string) ([]byte, bool) {
	sum, payload, ok := strings.Cut(line, " ")
	if !ok || len(sum) != 8 {
		return nil, false
	}
	var want uint32
	if _, err := fmt.Sscanf(sum, "%08x", &want); err != nil {
		return nil, false
	}
	if crc32.ChecksumIEEE([]byte(payload)) != want {
		return nil, false
	}
	return []byte(payload), true
}

// encodeLine formats r as "crc32hex payloadJSON".
func encodeLine(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return frameLine(payload), nil
}

// decodeLine parses one journal line, verifying its checksum.
func decodeLine(line string) (Record, bool) {
	payload, ok := unframeLine(line)
	if !ok {
		return Record{}, false
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, false
	}
	return r, true
}

// State returns a deep copy of the current state.
func (s *Store) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.clone()
}

// Replayed reports how many journal records Open recovered.
func (s *Store) Replayed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed
}

// SetSync toggles the per-record journal fsync (on by default).
// Turning it off trades the power-loss durability guarantee for append
// throughput: the bytes still reach the file (readable by any
// subsequent Open, including after a process kill), but are not forced
// to stable storage per record. The chaos harness disables it —
// simulated crashes reread the file rather than cutting power, and
// fleet-scale runs would otherwise spend their wall-clock budget in
// fsync — while production managers leave it on.
func (s *Store) SetSync(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nosync = !on
}

// Apply folds r into the state and journals it durably (fsync before
// returning). Past SnapshotEvery journal records it compacts.
func (s *Store) Apply(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	line, err := encodeLine(r)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.journal.Write(line); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if !s.nosync {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("store: journal sync: %w", err)
		}
	}
	s.state.apply(r)
	s.pending++
	s.appends.Inc()
	s.seq++
	s.recent = append(s.recent, r)
	if len(s.recent) > ReplRetain {
		drop := len(s.recent) - ReplRetain
		s.recent = append(s.recent[:0], s.recent[drop:]...)
		s.recentFirst += uint64(drop)
	}
	every := s.SnapshotEvery
	if every <= 0 {
		every = DefaultSnapshotEvery
	}
	if s.pending >= every {
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Compact folds the journal into a fresh snapshot and truncates it.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	b, err := json.MarshalIndent(s.state, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, snapshotFile)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if err := s.journal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating journal: %w", err)
	}
	if _, err := s.journal.Seek(0, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.compactions.Inc()
	s.trace.Append(telemetry.Event{Kind: telemetry.EvCompact, N: int64(s.pending)})
	s.pending = 0
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: dir sync: %w", err)
	}
	return nil
}

// Close compacts (so restarts load one clean snapshot) and releases
// the journal. A crash — i.e. no Close — is still safe: every Apply
// was fsync'd.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.compactLocked()
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	s.closed = true
	return err
}

// Crash releases the journal WITHOUT the graceful-shutdown compaction,
// leaving the on-disk snapshot+journal pair exactly as a power loss
// would: the next Open must recover through replay. Idempotent; exists
// for crash-recovery drills (internal/chaos), not production paths.
func (s *Store) Crash() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.journal.Close()
}

// Replay folds a record sequence into a fresh State — the same pure
// fold Open performs, exported so recovery drills can compute the
// state a journal prefix must reproduce.
func Replay(records []Record) State {
	st := State{Nodes: make(map[string]NodeRecord)}
	for _, r := range records {
		st.apply(r)
	}
	return st
}

// JournalPath returns the journal file's location under dir.
func JournalPath(dir string) string { return filepath.Join(dir, journalFile) }

// SnapshotPath returns the snapshot file's location under dir.
func SnapshotPath(dir string) string { return filepath.Join(dir, snapshotFile) }
