package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable lease clock.
type fakeClock struct{ now time.Time }

func (c *fakeClock) read() time.Time         { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestLease(t *testing.T) (*LeaseFile, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	lf := NewLeaseFile(LeasePath(t.TempDir()))
	lf.Clock = clk.read
	return lf, clk
}

func TestLeaseAcquireRenewTakeover(t *testing.T) {
	lf, clk := newTestLease(t)
	ttl := 10 * time.Second

	// First acquisition: epoch 1.
	l, ok, err := lf.Acquire("a", ttl)
	if err != nil || !ok {
		t.Fatalf("first acquire = %+v, %v, %v", l, ok, err)
	}
	if l.Holder != "a" || l.Epoch != 1 {
		t.Fatalf("first lease = %+v", l)
	}

	// A live lease blocks another holder and reports the blocker.
	clk.advance(3 * time.Second)
	if blk, ok, err := lf.Acquire("b", ttl); err != nil || ok || blk.Holder != "a" {
		t.Fatalf("contended acquire = %+v, %v, %v", blk, ok, err)
	}

	// Live renewal by the holder keeps the epoch.
	l2, ok, err := lf.Acquire("a", ttl)
	if err != nil || !ok || l2.Epoch != 1 {
		t.Fatalf("renewal = %+v, %v, %v", l2, ok, err)
	}
	if l2.ExpiresNS <= l.ExpiresNS {
		t.Error("renewal did not extend the expiry")
	}

	// Expiry: a takeover bumps the epoch.
	clk.advance(ttl + time.Second)
	l3, ok, err := lf.Acquire("b", ttl)
	if err != nil || !ok || l3.Holder != "b" || l3.Epoch != 2 {
		t.Fatalf("takeover = %+v, %v, %v", l3, ok, err)
	}

	// Re-acquiring one's own expired lease also bumps: someone may
	// have fenced at a higher epoch in between.
	clk.advance(ttl + time.Second)
	l4, ok, err := lf.Acquire("b", ttl)
	if err != nil || !ok || l4.Epoch != 3 {
		t.Fatalf("expired self re-acquire = %+v, %v, %v", l4, ok, err)
	}
}

// TestLeaseAcquireRaceUniqueEpochs: many acquirers racing one expired
// lease — each through its own LeaseFile (its own lock descriptor, as
// separate processes would hold) — must serialize under the sidecar
// flock: exactly one wins, at exactly one bumped epoch. Without the
// lock the read-modify-write races and several members can return
// ok=true at the SAME epoch — two primaries the node-side fence cannot
// tell apart.
func TestLeaseAcquireRaceUniqueEpochs(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	seed := NewLeaseFile(LeasePath(dir))
	seed.Clock = clk.read
	if _, ok, err := seed.Acquire("seed", time.Second); err != nil || !ok {
		t.Fatal(ok, err)
	}
	clk.advance(2 * time.Second) // the seed's lease is now expired

	const racers = 16
	type result struct {
		l  Lease
		ok bool
	}
	results := make([]result, racers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lf := NewLeaseFile(LeasePath(dir))
			lf.Clock = clk.read
			<-start
			l, ok, err := lf.Acquire(fmt.Sprintf("m%d", i), time.Hour)
			if err != nil {
				t.Errorf("racer %d: %v", i, err)
				return
			}
			results[i] = result{l, ok}
		}(i)
	}
	close(start)
	wg.Wait()

	winners := 0
	for i, r := range results {
		if r.ok {
			winners++
			if r.l.Epoch != 2 {
				t.Errorf("racer %d granted epoch %d, want 2", i, r.l.Epoch)
			}
		}
	}
	if winners != 1 {
		t.Fatalf("%d racers won the expired lease, want exactly 1", winners)
	}
}

func TestLeaseReleaseExpiresImmediately(t *testing.T) {
	lf, _ := newTestLease(t)
	ttl := time.Hour
	if _, ok, err := lf.Acquire("a", ttl); err != nil || !ok {
		t.Fatal(ok, err)
	}
	// Releasing someone else's lease is a no-op.
	if err := lf.Release("b"); err != nil {
		t.Fatal(err)
	}
	if blk, ok, _ := lf.Acquire("b", ttl); ok {
		t.Fatalf("foreign release freed the lease: %+v", blk)
	}
	// The holder's release frees it without waiting out the TTL, and
	// the next holder gets a bumped epoch.
	if err := lf.Release("a"); err != nil {
		t.Fatal(err)
	}
	l, ok, err := lf.Acquire("b", ttl)
	if err != nil || !ok || l.Epoch != 2 {
		t.Fatalf("acquire after release = %+v, %v, %v", l, ok, err)
	}
}

func TestLeaseReadStates(t *testing.T) {
	lf, _ := newTestLease(t)
	if _, ok, err := lf.Read(); err != nil || ok {
		t.Fatalf("missing lease read = %v, %v", ok, err)
	}
	if _, ok, err := lf.Acquire("a", time.Second); err != nil || !ok {
		t.Fatal(ok, err)
	}
	l, ok, err := lf.Read()
	if err != nil || !ok || l.Holder != "a" {
		t.Fatalf("read = %+v, %v, %v", l, ok, err)
	}
	// Corruption is an error, not silent reacquisition.
	if err := os.WriteFile(lf.Path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lf.Read(); err == nil {
		t.Error("corrupt lease read succeeded")
	}
	if _, _, err := lf.Acquire("b", time.Second); err == nil {
		t.Error("acquire over corrupt lease succeeded")
	}
	// Empty holder is rejected.
	lf2 := NewLeaseFile(filepath.Join(t.TempDir(), LeaseFileName))
	if _, _, err := lf2.Acquire("", time.Second); err == nil {
		t.Error("empty holder accepted")
	}
}
