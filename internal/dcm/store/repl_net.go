// TCP transport for the replication session core: newline-delimited
// crc32-framed frames, one session per connection. The primary runs a
// ReplServer next to its store; each standby runs a ReplClient that
// redials with capped jittered backoff and resumes from its cursor.
package store

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ReplServer serves a store's replication feed over TCP.
type ReplServer struct {
	st *Store
	// PollEvery is how often an idle session re-checks the store for
	// new records; ≤ 0 means 50ms.
	PollEvery time.Duration

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewReplServer builds a replication server over st.
func NewReplServer(st *Store) *ReplServer {
	return &ReplServer{st: st, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting standbys on addr and returns the bound
// address.
func (rs *ReplServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("store: repl server closed")
	}
	rs.ln = ln
	rs.mu.Unlock()
	rs.wg.Add(1)
	go rs.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (rs *ReplServer) acceptLoop(ln net.Listener) {
	defer rs.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		rs.mu.Lock()
		if rs.closed {
			rs.mu.Unlock()
			conn.Close()
			return
		}
		rs.conns[conn] = struct{}{}
		rs.mu.Unlock()
		rs.wg.Add(1)
		go rs.serveConn(conn)
	}
}

func (rs *ReplServer) serveConn(conn net.Conn) {
	defer rs.wg.Done()
	defer func() {
		conn.Close()
		rs.mu.Lock()
		delete(rs.conns, conn)
		rs.mu.Unlock()
	}()

	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	hello, ok := DecodeReplFrame(line)
	if !ok || hello.Kind != ReplHello {
		return
	}
	feed := rs.st.NewFeed(hello)

	// Reader side: drain acks for lag accounting until the peer drops.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if fr, ok := DecodeReplFrame(line); ok {
				feed.Ack(fr)
			}
		}
	}()

	poll := rs.PollEvery
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	bw := bufio.NewWriter(conn)
	for {
		select {
		case <-done:
			return
		default:
		}
		frames, err := feed.Pending(64)
		if err != nil {
			return
		}
		if len(frames) == 0 {
			time.Sleep(poll)
			continue
		}
		for _, fr := range frames {
			b, err := EncodeReplFrame(fr)
			if err != nil {
				return
			}
			if _, err := bw.Write(b); err != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops the listener and all sessions.
func (rs *ReplServer) Close() error {
	rs.mu.Lock()
	rs.closed = true
	ln := rs.ln
	for c := range rs.conns {
		c.Close()
	}
	rs.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	rs.wg.Wait()
	return nil
}

// Redial policy defaults for ReplClient.
const (
	DefaultReplRedialBase = 500 * time.Millisecond
	DefaultReplRedialMax  = 30 * time.Second
)

// ReplClient pulls a primary's replication stream into a local
// Replica, redialing with capped jittered exponential backoff and
// resuming from the replica's cursor after every drop.
type ReplClient struct {
	Addr string
	// RedialBase/RedialMax bound the backoff between dial attempts;
	// zero means the defaults above.
	RedialBase, RedialMax time.Duration

	rep *Replica

	mu     sync.Mutex
	conn   net.Conn
	stop   chan struct{}
	wg     sync.WaitGroup
	synced bool // at least one frame applied since the last (re)start
}

// NewReplClient builds a client that feeds rep from the primary at
// addr. Call Start to begin pulling.
func NewReplClient(addr string, rep *Replica) *ReplClient {
	return &ReplClient{Addr: addr, rep: rep}
}

// Start launches the pull loop.
func (rc *ReplClient) Start() {
	rc.mu.Lock()
	if rc.stop != nil {
		rc.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	rc.stop = stop
	rc.mu.Unlock()
	rc.wg.Add(1)
	go rc.loop(stop)
}

func (rc *ReplClient) loop(stop chan struct{}) {
	defer rc.wg.Done()
	base := rc.RedialBase
	if base <= 0 {
		base = DefaultReplRedialBase
	}
	max := rc.RedialMax
	if max <= 0 {
		max = DefaultReplRedialMax
	}
	delay := base
	for {
		select {
		case <-stop:
			return
		default:
		}
		if rc.pullOnce(stop) {
			delay = base // made progress: reset the backoff
		}
		// Jitter in [delay/2, delay] so a herd of standbys does not
		// redial in lockstep.
		d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		select {
		case <-stop:
			return
		case <-time.After(d):
		}
		if delay *= 2; delay > max {
			delay = max
		}
	}
}

// pullOnce runs one session: dial, hello, apply frames until the
// connection drops. Reports whether any frame was applied.
func (rc *ReplClient) pullOnce(stop chan struct{}) bool {
	conn, err := net.DialTimeout("tcp", rc.Addr, 5*time.Second)
	if err != nil {
		return false
	}
	rc.mu.Lock()
	select {
	case <-stop:
		rc.mu.Unlock()
		conn.Close()
		return false
	default:
	}
	rc.conn = conn
	rc.mu.Unlock()
	defer func() {
		conn.Close()
		rc.mu.Lock()
		rc.conn = nil
		rc.mu.Unlock()
	}()

	hello, err := EncodeReplFrame(rc.rep.Hello())
	if err != nil {
		return false
	}
	if _, err := conn.Write(hello); err != nil {
		return false
	}
	progressed := false
	br := bufio.NewReader(conn)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return progressed
		}
		fr, ok := DecodeReplFrame(line)
		if !ok {
			return progressed
		}
		ack, err := rc.rep.Handle(fr)
		if err != nil {
			return progressed // broken session; reconnect re-handshakes
		}
		progressed = true
		if ack != nil {
			b, err := EncodeReplFrame(*ack)
			if err != nil {
				return progressed
			}
			if _, err := conn.Write(b); err != nil {
				return progressed
			}
		}
	}
}

// Cursor reports replication progress.
func (rc *ReplClient) Cursor() uint64 { return rc.rep.Cursor() }

// Stop halts the pull loop and closes any live session.
func (rc *ReplClient) Stop() {
	rc.mu.Lock()
	stop := rc.stop
	rc.stop = nil
	if rc.conn != nil {
		rc.conn.Close()
	}
	rc.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	rc.wg.Wait()
}
